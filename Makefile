# Build, test and benchmark entry points. The bench targets are the
# performance counterpart of the golden-figure tests: `make bench`
# refreshes BENCH_results.json, `make bench-check` gates the current
# tree against the committed BENCH_baseline.json, and `make
# bench-baseline` promotes fresh results to the new baseline (do this
# only on the reference machine, with the regression understood).

GO ?= go
THRESHOLD ?= 0.15

.PHONY: all build test race bench bench-check bench-baseline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/uucs-bench -out BENCH_results.json

bench-check:
	$(GO) run ./cmd/uucs-bench -out BENCH_results.json -compare BENCH_baseline.json -threshold $(THRESHOLD)

bench-baseline:
	$(GO) run ./cmd/uucs-bench -out BENCH_baseline.json
