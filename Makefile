# Build, test and benchmark entry points. The bench targets are the
# performance counterpart of the golden-figure tests: `make bench`
# refreshes BENCH_results.json (generated, not committed), `make
# bench-check` gates the current tree against the committed
# BENCH_baseline.json, and `make bench-baseline` promotes fresh results
# to the new baseline (do this only on the reference machine, with the
# regression understood). `make loadgen-smoke` drives a short
# closed-loop ingest run under the race detector and fails if any
# acked batch is lost or double-counted.

GO ?= go
THRESHOLD ?= 0.15

.PHONY: all build test race bench bench-check bench-baseline loadgen-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/uucs-bench -out BENCH_results.json

bench-check:
	$(GO) run ./cmd/uucs-bench -out BENCH_results.json -compare BENCH_baseline.json -threshold $(THRESHOLD)

bench-baseline:
	$(GO) run ./cmd/uucs-bench -out BENCH_baseline.json

loadgen-smoke:
	$(GO) run -race ./cmd/uucs-loadgen -clients 8 -duration 2s -smoke
