# Build, test and benchmark entry points. The bench targets are the
# performance counterpart of the golden-figure tests: `make bench`
# refreshes BENCH_results.json (generated, not committed), `make
# bench-check` gates the current tree against the committed
# BENCH_baseline.json, and `make bench-baseline` promotes fresh results
# to the new baseline (do this only on the reference machine, with the
# regression understood). `make loadgen-smoke` drives a short
# closed-loop ingest run under the race detector and fails if any
# acked batch is lost or double-counted. `make pop-smoke` streams a
# 10^4-host churned study under the race detector and fails unless
# every scheduled run is accounted exactly once. `make cluster-smoke`
# drives the routed 3-node cluster under the race detector, SIGKILLs
# one node mid-upload, and fails unless the merged multi-node dataset
# holds every acked batch exactly once. `make e2e` runs the
# process-level chaos suite (real binaries, kill -9 inside the journal
# fsync window, seeded regression replay); `make e2e-smoke` and `make
# e2e-seeds` run its halves.

GO ?= go
THRESHOLD ?= 0.15

.PHONY: all build test race bench bench-check bench-baseline loadgen-smoke loadgen-smoke-v2 pop-smoke cluster-smoke e2e e2e-smoke e2e-smoke-v3 e2e-restart e2e-seeds

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/uucs-bench -out BENCH_results.json

bench-check:
	$(GO) run ./cmd/uucs-bench -out BENCH_results.json -compare BENCH_baseline.json -threshold $(THRESHOLD)

bench-baseline:
	$(GO) run ./cmd/uucs-bench -out BENCH_baseline.json

loadgen-smoke:
	$(GO) run -race ./cmd/uucs-loadgen -clients 8 -duration 2s -protocol v3 -smoke

# The legacy-framing gate: the same closed-loop ingest with the fleet
# pinned to the v2 JSON framing, proving rolling upgrades stay safe.
loadgen-smoke-v2:
	$(GO) run -race ./cmd/uucs-loadgen -clients 8 -duration 2s -protocol v2 -smoke

pop-smoke:
	$(GO) run -race ./cmd/uucs-internet -hosts 10000 -runs 2 -churn -smoke

cluster-smoke:
	$(GO) run -race ./cmd/uucs-loadgen -nodes n1,n2,n3 -kill-node n2 -clients 8 -batches 300 -protocol v3 -smoke

e2e:
	scripts/e2e/run.sh

e2e-smoke:
	scripts/e2e/run.sh -smoke

# The crash/restart smoke with every client pinned to the v3 binary
# framing, so the journal replayed across the kill holds verbatim
# binary frames.
e2e-smoke-v3:
	E2E_PROTOCOL=v3 scripts/e2e/run.sh -smoke

# The segmented-journal restart smoke: SIGKILL after several segments
# seal, restart, exactly-once convergence from the multi-segment
# journal.
e2e-restart:
	scripts/e2e/run.sh -restart

e2e-seeds:
	scripts/e2e/run.sh -seeds
