package hostpop

import (
	"fmt"
	"math"

	"uucs/internal/stats"
)

// Day is the diurnal period in simulated seconds.
const Day = 86400.0

// windowAt returns the start and end of host i's availability window
// whose day-cycle contains t. Window k spans
// [Phase - width/2 + k·Day, Phase - width/2 + k·Day + width); t always
// satisfies t >= start for the returned k, and t is inside the window
// iff t < end. Indexing windows explicitly (rather than folding t with
// a modulus) keeps the math exact at window edges, where a fold-based
// formula can livelock advancing by rounding-error slivers.
func (pop *Population) windowAt(i int, t float64) (start, end float64) {
	width := pop.AvailFrac[i] * Day
	base := pop.Phase[i] - width/2
	k := math.Floor((t - base) / Day)
	start = base + k*Day
	// floor over float subtraction can land one window off by an ulp;
	// the guards pin the invariant start <= t < start + Day exactly.
	if start > t {
		start -= Day
	}
	if start+Day <= t {
		start += Day
	}
	return start, start + width
}

// Available reports whether host i is inside its daily availability
// window at simulated time t. The window is centered on the host's
// Phase and spans AvailFrac of the day; join events are window starts,
// leave events are window ends.
func (pop *Population) Available(i int, t float64) bool {
	if pop.AvailFrac[i] >= 1 {
		return true
	}
	_, end := pop.windowAt(i, t)
	return t < end
}

// NextAvailable returns the earliest time >= t at which host i is
// available: t itself inside a window, otherwise the next join event.
func (pop *Population) NextAvailable(i int, t float64) float64 {
	if pop.AvailFrac[i] >= 1 {
		return t
	}
	start, end := pop.windowAt(i, t)
	if t < end {
		return t
	}
	return start + Day
}

// AdvanceAvail returns the simulated time at which `gap` seconds of
// host i's *available* time have elapsed, starting from t. Time spent
// outside availability windows does not count: a host that leaves for
// the night resumes its arrival process where it left off, which is
// how diurnal windows stretch the fleet's Poisson arrivals without
// changing per-window rates.
func (pop *Population) AdvanceAvail(i int, t, gap float64) float64 {
	if pop.AvailFrac[i] >= 1 {
		return t + gap
	}
	width := pop.AvailFrac[i] * Day
	start, _ := pop.windowAt(i, t)
	// Walk whole windows from the containing one; advancing start by
	// Day per iteration (instead of re-deriving it from t) makes
	// progress unconditional, so edge-rounding can never stall the
	// walk.
	for {
		end := start + width
		at := t
		if at < start {
			at = start // wait for the join event
		}
		if at < end {
			if at+gap <= end {
				return at + gap
			}
			gap -= end - at
		}
		start += Day
	}
}

// ChurnConfig parameterizes the crash half of the churn model. Diurnal
// join/leave churn always runs (it is part of the population); crashes
// — a host dying mid-testcase and its unreported run being lost — are
// enabled per study.
type ChurnConfig struct {
	// Enabled turns crash events on.
	Enabled bool
	// CrashMeanGap is the mean available-time seconds between crashes
	// of one host (exponential inter-crash times).
	CrashMeanGap float64
	// DowntimeMean is the mean seconds a crashed host stays away
	// before rejoining (exponential).
	DowntimeMean float64
}

// DefaultChurn matches the volunteer-computing churn regime: a host
// crashes about every 20 active hours and returns within a few hours.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{Enabled: true, CrashMeanGap: 20 * 3600, DowntimeMean: 4 * 3600}
}

// Validate checks the configuration.
func (c ChurnConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.CrashMeanGap <= 0 || c.DowntimeMean < 0 {
		return fmt.Errorf("hostpop: churn needs positive crash gap and non-negative downtime")
	}
	return nil
}

// NextCrash draws host i's next crash event after time t from the
// host's churn stream: the crash lands after an exponential amount of
// *available* time, and the host rejoins after an exponential
// downtime. It returns the crash time and the rejoin time. With churn
// disabled it returns +Inf sentinels from the caller's side — callers
// check Enabled first.
func (c ChurnConfig) NextCrash(pop *Population, i int, t float64, s *stats.Stream) (crashAt, rejoinAt float64) {
	crashAt = pop.AdvanceAvail(i, t, s.Exp(c.CrashMeanGap))
	rejoinAt = crashAt + s.Exp(c.DowntimeMean)
	return crashAt, rejoinAt
}
