package hostpop

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"uucs/internal/stats"
)

func generateT(t *testing.T, n int, p Profile, seed uint64, workers int) *Population {
	t.Helper()
	pop, err := Generate(n, p, seed, workers)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// ksDistance returns the maximum distance between the empirical CDF of
// xs and the marginal's model CDF, excluding the clamp atoms.
func ksDistance(xs []float64, m Marginal) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	worst := 0.0
	for i, x := range sorted {
		if m.Lo > 0 && x <= m.Lo || m.Hi > 0 && x >= m.Hi {
			continue // clamp atom
		}
		f := m.CDF(x)
		for _, emp := range []float64{float64(i) / n, float64(i+1) / n} {
			if d := math.Abs(emp - f); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestMarginalsMatchTargets is the first property test: generated
// hardware columns follow the profile's marginal distributions to a
// KS-style tolerance.
func TestMarginalsMatchTargets(t *testing.T) {
	const n = 20000
	p := Heien()
	pop := generateT(t, n, p, 42, 0)
	// KS critical value at alpha=0.01 for n=20000 is ~0.0115; the
	// copula marginals are exact, so 0.02 leaves comfortable slack
	// without masking a wrong distribution.
	const tol = 0.02
	cases := []struct {
		name string
		col  []float64
		m    Marginal
	}{
		{"cpu", pop.CPUGHz, p.CPUGHz},
		{"mem", pop.MemMB, p.MemMB},
		{"diskbw", pop.DiskMBps, p.DiskMBps},
		{"diskseek", pop.DiskSeekMs, p.DiskSeekMs},
		{"osbase", pop.OSBaseMB, p.OSBaseMB},
	}
	for _, c := range cases {
		if d := ksDistance(c.col, c.m); d > tol {
			t.Errorf("%s marginal KS distance %.4f > %.4f", c.name, d, tol)
		}
	}
	// Availability fractions span the configured envelope.
	lo, hi := 1.0, 0.0
	for _, f := range pop.AvailFrac {
		if f < p.AvailLo || f > p.AvailHi {
			t.Fatalf("availability %v outside [%v, %v]", f, p.AvailLo, p.AvailHi)
		}
		lo, hi = math.Min(lo, f), math.Max(hi, f)
	}
	if hi-lo < 0.4 {
		t.Errorf("availability spread too narrow: %v..%v", lo, hi)
	}
}

// spearman returns the rank correlation of two equal-length columns.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var num, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	return num / math.Sqrt(va*vb)
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	r := make([]float64, len(xs))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

// TestPairwiseRankCorrelations is the second property test: the
// generated columns' Spearman correlations sit within ±0.05 of the
// configured copula correlations.
func TestPairwiseRankCorrelations(t *testing.T) {
	const n = 20000
	p := Heien()
	pop := generateT(t, n, p, 7, 0)
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"cpu-mem", pop.CPUGHz, pop.MemMB, p.CorrCPUMem},
		{"cpu-disk", pop.CPUGHz, pop.DiskMBps, p.CorrCPUDisk},
		{"mem-disk", pop.MemMB, pop.DiskMBps, p.CorrMemDisk},
		// Independent columns must stay uncorrelated.
		{"cpu-seek", pop.CPUGHz, pop.DiskSeekMs, 0},
		{"mem-osbase", pop.MemMB, pop.OSBaseMB, 0},
	}
	for _, c := range cases {
		got := spearman(c.a, c.b)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("%s rank correlation %.3f, want %.3f ± 0.05", c.name, got, c.want)
		}
	}
}

// TestGenerateDeterministicAcrossWorkers is the third property test:
// the same -pop-seed yields a byte-identical population at every
// worker count, and host i's row never depends on the population size
// around it.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	p := Heien()
	serial := generateT(t, 10000, p, 99, 1)
	for _, workers := range []int{2, 4, 8} {
		par := generateT(t, 10000, p, 99, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("population differs between 1 and %d workers", workers)
		}
	}
	// Prefix property: a smaller population is an exact prefix of a
	// larger one — the convergence study's fleets are nested samples.
	small := generateT(t, 1000, p, 99, 0)
	for i := 0; i < small.N; i++ {
		if small.CPUGHz[i] != serial.CPUGHz[i] || small.MemMB[i] != serial.MemMB[i] ||
			small.Phase[i] != serial.Phase[i] {
			t.Fatalf("host %d differs between 1k and 10k populations", i)
		}
	}
	// A different seed draws a different population.
	other := generateT(t, 1000, p, 100, 0)
	if reflect.DeepEqual(small.CPUGHz, other.CPUGHz) {
		t.Error("different seeds produced identical populations")
	}
}

// TestLegacyProfileShape checks the legacy profile reproduces the
// hand-written sampler's distributions: uniform clocks on [0.8, 3.2),
// the five discrete memory modules, and always-on hosts.
func TestLegacyProfileShape(t *testing.T) {
	p := Legacy()
	pop := generateT(t, 5000, p, 3, 0)
	memOK := map[float64]int{256: 0, 384: 0, 512: 0, 768: 0, 1024: 0}
	for i := 0; i < pop.N; i++ {
		if pop.CPUGHz[i] < 0.8 || pop.CPUGHz[i] >= 3.2 {
			t.Fatalf("legacy clock %v out of [0.8, 3.2)", pop.CPUGHz[i])
		}
		if _, ok := memOK[pop.MemMB[i]]; !ok {
			t.Fatalf("legacy memory %v not a module choice", pop.MemMB[i])
		}
		memOK[pop.MemMB[i]]++
		if pop.AvailFrac[i] != 1 {
			t.Fatalf("legacy host %d not always-on", i)
		}
	}
	for mb, count := range memOK {
		frac := float64(count) / float64(pop.N)
		if frac < 0.15 || frac > 0.25 {
			t.Errorf("memory module %v drawn with frequency %v, want ~0.2", mb, frac)
		}
	}
	if d := ksDistance(pop.CPUGHz, p.CPUGHz); d > 0.025 {
		t.Errorf("legacy clock KS distance %v", d)
	}
	// Every legacy machine config must validate.
	for i := 0; i < 100; i++ {
		if err := pop.MachineConfig(i).Validate(); err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}
}

// TestMachineConfigsValidate checks every generated host is a
// physically sensible machine.
func TestMachineConfigsValidate(t *testing.T) {
	pop := generateT(t, 2000, Heien(), 12, 0)
	for i := 0; i < pop.N; i++ {
		if err := pop.MachineConfig(i).Validate(); err != nil {
			t.Fatalf("host %d: %v (cfg %+v)", i, err, pop.MachineConfig(i))
		}
	}
}

// TestMedians cross-checks the selection-based medians against sorting.
func TestMedians(t *testing.T) {
	pop := generateT(t, 4001, Heien(), 5, 0)
	sorted := append([]float64(nil), pop.CPUGHz...)
	sort.Float64s(sorted)
	if got, want := pop.MedianCPUGHz(), sorted[len(sorted)/2]; got != want {
		t.Errorf("MedianCPUGHz = %v, want %v", got, want)
	}
	sorted = append(sorted[:0], pop.MemMB...)
	sort.Float64s(sorted)
	if got, want := pop.MedianMemMB(), sorted[len(sorted)/2]; got != want {
		t.Errorf("MedianMemMB = %v, want %v", got, want)
	}
}

// TestAvailabilityWindows checks the diurnal window math: window width
// equals the availability fraction, NextAvailable lands inside a
// window, and AdvanceAvail accumulates exactly the available time.
func TestAvailabilityWindows(t *testing.T) {
	pop := generateT(t, 50, Heien(), 21, 0)
	for i := 0; i < pop.N; i++ {
		// Sampled fraction of the day the host reports available.
		const steps = 20000
		avail := 0
		for k := 0; k < steps; k++ {
			if pop.Available(i, float64(k)*Day/steps) {
				avail++
			}
		}
		frac := float64(avail) / steps
		if math.Abs(frac-pop.AvailFrac[i]) > 0.01 {
			t.Fatalf("host %d available %v of the day, want %v", i, frac, pop.AvailFrac[i])
		}
		// NextAvailable is available and no earlier than t.
		for _, tt := range []float64{0, 1000, Day / 3, Day - 1, 5 * Day} {
			nt := pop.NextAvailable(i, tt)
			if nt < tt {
				t.Fatalf("NextAvailable went backwards: %v -> %v", tt, nt)
			}
			if !pop.Available(i, nt) {
				t.Fatalf("host %d NextAvailable(%v) = %v not available", i, tt, nt)
			}
		}
		// AdvanceAvail over one full day of available time lands one
		// day's window-width later in available-time terms: walking it
		// in two halves agrees with one step.
		one := pop.AdvanceAvail(i, 0, 10000)
		half := pop.AdvanceAvail(i, pop.AdvanceAvail(i, 0, 5000), 5000)
		if math.Abs(one-half) > 1e-6 {
			t.Fatalf("host %d AdvanceAvail not additive: %v vs %v", i, one, half)
		}
		if !pop.Available(i, one) && pop.AvailFrac[i] < 1 {
			// The advance may land exactly on a window edge; nudge in.
			if !pop.Available(i, pop.NextAvailable(i, one)) {
				t.Fatalf("host %d AdvanceAvail landed outside windows", i)
			}
		}
	}
}

// TestAlwaysOnFastPaths pins the always-on semantics the legacy
// profile and churn-free studies rely on.
func TestAlwaysOnFastPaths(t *testing.T) {
	pop := generateT(t, 10, Legacy(), 2, 0)
	if !pop.Available(3, 12345) || pop.NextAvailable(3, 777) != 777 {
		t.Error("always-on host not always available")
	}
	if got := pop.AdvanceAvail(3, 100, 50); got != 150 {
		t.Errorf("AdvanceAvail = %v, want 150", got)
	}
}

// TestChurnDraws checks crash events land during available time and
// rejoin after them, deterministically per stream.
func TestChurnDraws(t *testing.T) {
	pop := generateT(t, 20, Heien(), 8, 0)
	cfg := DefaultChurn()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	s := stats.NewStream(4)
	for i := 0; i < pop.N; i++ {
		crash, rejoin := cfg.NextCrash(pop, i, 0, s)
		if crash <= 0 || rejoin < crash {
			t.Fatalf("host %d: crash %v rejoin %v", i, crash, rejoin)
		}
	}
	// Same stream seed, same schedule.
	a, b := stats.NewStream(9), stats.NewStream(9)
	c1, r1 := cfg.NextCrash(pop, 0, 0, a)
	c2, r2 := cfg.NextCrash(pop, 0, 0, b)
	if c1 != c2 || r1 != r2 {
		t.Error("churn draws not deterministic")
	}
}

// TestGenerateValidation covers the error paths.
func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0, Heien(), 1, 0); err == nil {
		t.Error("zero hosts accepted")
	}
	bad := Heien()
	bad.CorrCPUMem, bad.CorrCPUDisk, bad.CorrMemDisk = 0.9, -0.9, 0.9
	if _, err := Generate(10, bad, 1, 0); err == nil {
		t.Error("non-PSD copula accepted")
	}
	bad = Heien()
	bad.AvailLo = 0
	if _, err := Generate(10, bad, 1, 0); err == nil {
		t.Error("zero availability accepted")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	for _, name := range []string{"heien", "legacy", ""} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	churn := ChurnConfig{Enabled: true, CrashMeanGap: 0}
	if err := churn.Validate(); err == nil {
		t.Error("zero crash gap accepted")
	}
}
