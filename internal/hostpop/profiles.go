package hostpop

import "fmt"

// Heien returns the default correlated profile. The shape — lognormal
// hardware marginals coupled by a Gaussian copula with moderate
// positive correlations, and hosts available for diurnal daily windows
// — follows Heien, Kondo and Anderson's measurement of BOINC hosts;
// the magnitudes are scaled back to the 2004 desktop era the source
// paper's fleet lived in (sub-4 GHz single-core clocks, sub-2 GB RAM)
// so figures stay comparable with the legacy hand-written configs.
func Heien() Profile {
	return Profile{
		Name: "heien2011",
		// Lognormal medians/sigmas; clamps sit 3+ sigma out so the
		// marginal KS tests see an essentially unclamped lognormal.
		CPUGHz: Marginal{Median: 1.8, Sigma: 0.30, Lo: 0.5, Hi: 4.5},
		// The memory floor sits above the OSBaseMB ceiling (140 MB) so
		// every drawn host is a bootable machine.
		MemMB:    Marginal{Median: 460, Sigma: 0.45, Lo: 192, Hi: 2048},
		DiskMBps: Marginal{Median: 36, Sigma: 0.35, Lo: 8, Hi: 120},
		// Independent nuisance marginals (uniform).
		DiskSeekMs: Marginal{Lo: 6, Hi: 14},
		OSBaseMB:   Marginal{Lo: 90, Hi: 140},
		// Pairwise copula correlations: faster machines carry more
		// memory and somewhat faster disks; memory and disk are bought
		// together.
		CorrCPUMem:  0.45,
		CorrCPUDisk: 0.30,
		CorrMemDisk: 0.35,
		// Hosts are on for 40–95% of each day, centered on their local
		// usage window.
		AvailLo: 0.40,
		AvailHi: 0.95,
	}
}

// Legacy returns a profile reproducing the distributions of the
// original hand-written host-config sampler (internetstudy's
// sampleMachine): independent uniform marginals, discrete memory-module
// choices, and always-on hosts. It exists so the streaming engine can
// be compared against the historical fleet on equal population terms;
// the protocol-level legacy fleet path itself is preserved behind
// `uucs-internet -pop-profile legacy` and pinned by a golden test.
func Legacy() Profile {
	return Profile{
		Name:       "legacy",
		CPUGHz:     Marginal{Lo: 0.8, Hi: 3.2},
		MemMB:      Marginal{Lo: 0, Hi: 1, Choices: []float64{256, 384, 512, 768, 1024}},
		DiskMBps:   Marginal{Lo: 20, Hi: 60},
		DiskSeekMs: Marginal{Lo: 6, Hi: 14},
		OSBaseMB:   Marginal{Lo: 90, Hi: 140},
		AlwaysOn:   true,
	}
}

// ByName resolves a profile name as used by `uucs-internet
// -pop-profile`.
func ByName(name string) (Profile, error) {
	switch name {
	case "heien", "heien2011", "":
		return Heien(), nil
	case "legacy":
		return Legacy(), nil
	}
	return Profile{}, fmt.Errorf("hostpop: unknown profile %q (want heien or legacy)", name)
}
