// Package hostpop generates statistically realistic populations of
// Internet end hosts for the million-host study. The structure follows
// Heien, Kondo and Anderson, "Correlated Resource Models of Internet
// End Hosts" (PAPERS.md): per-resource marginal distributions
// (lognormal for hardware capacities) coupled through a Gaussian
// copula, per-host diurnal availability windows, and a churn model of
// hosts joining, leaving, and crashing mid-testcase. Parameter values
// are scaled to the 2004 desktop era of the source paper's fleet so the
// generated populations stay comparable with the hand-written legacy
// host configs.
//
// A Population is stored as structs-of-arrays: seven float64 columns,
// 56 bytes per host and no per-host pointers, so a 10^6-host
// population costs ~56 MB and zero GC pressure. Every host's draws are
// derived from stats.DeriveSeed(seed, host), a pure function of the
// population seed and the host index — generation parallelizes over
// any worker count with byte-identical output, and host i's hardware
// never depends on how many hosts surround it.
package hostpop

import (
	"fmt"
	"math"

	"uucs/internal/hostsim"
	"uucs/internal/pool"
	"uucs/internal/stats"
)

// Marginal is one resource column's marginal distribution, mapped from
// a standard normal copula coordinate. With Sigma > 0 it is a lognormal
// with the given Median (the natural parameterization in Heien et al.'s
// tables); otherwise it is uniform on [Lo, Hi]. Lo/Hi clamp lognormal
// tails to physically sensible hardware.
type Marginal struct {
	Median, Sigma float64
	Lo, Hi        float64
	// Choices, when non-empty, quantizes the draw to the nearest listed
	// value from below (used for discrete memory-module sizes).
	Choices []float64
}

// FromNormal maps a standard normal variate through the marginal's
// quantile function.
func (m Marginal) FromNormal(z float64) float64 {
	var v float64
	if m.Sigma > 0 {
		v = m.Median * math.Exp(m.Sigma*z)
		if m.Lo > 0 && v < m.Lo {
			v = m.Lo
		}
		if m.Hi > 0 && v > m.Hi {
			v = m.Hi
		}
	} else {
		u := stats.NormalCDF(z)
		v = m.Lo + (m.Hi-m.Lo)*u
	}
	if len(m.Choices) > 0 {
		u := stats.NormalCDF(z)
		i := int(u * float64(len(m.Choices)))
		if i >= len(m.Choices) {
			i = len(m.Choices) - 1
		}
		v = m.Choices[i]
	}
	return v
}

// CDF returns the marginal's cumulative probability at x, for
// goodness-of-fit testing against generated populations. Clamp atoms at
// Lo/Hi are ignored (the profiles keep them in the far tails).
func (m Marginal) CDF(x float64) float64 {
	if m.Sigma > 0 {
		if x <= 0 {
			return 0
		}
		return stats.NormalCDF(math.Log(x/m.Median) / m.Sigma)
	}
	if x < m.Lo {
		return 0
	}
	if x >= m.Hi {
		return 1
	}
	return (x - m.Lo) / (m.Hi - m.Lo)
}

// Profile describes a host population: the three copula-coupled
// hardware marginals, the independent nuisance marginals, the copula's
// pairwise correlations, and the diurnal availability envelope.
type Profile struct {
	// Name identifies the profile ("heien2011", "legacy").
	Name string

	// CPUGHz, MemMB and DiskMBps are coupled through the Gaussian
	// copula: fast machines tend to have more memory and faster disks.
	CPUGHz, MemMB, DiskMBps Marginal
	// DiskSeekMs and OSBaseMB are drawn independently.
	DiskSeekMs, OSBaseMB Marginal

	// CorrCPUMem, CorrCPUDisk and CorrMemDisk are the copula's pairwise
	// correlations (rank correlations of the generated columns match
	// them to within the Gaussian-copula Spearman correction).
	CorrCPUMem, CorrCPUDisk, CorrMemDisk float64

	// AvailLo and AvailHi bound each host's mean daily availability
	// fraction (drawn uniformly). AlwaysOn disables diurnal windows
	// entirely — every host is available around the clock, as the
	// legacy fleet assumed.
	AvailLo, AvailHi float64
	AlwaysOn         bool
}

// cholesky returns the lower-triangular factors of the profile's 3x3
// copula correlation matrix, or an error if it is not positive
// definite.
func (p Profile) cholesky() (l21, l22, l31, l32, l33 float64, err error) {
	r12, r13, r23 := p.CorrCPUMem, p.CorrCPUDisk, p.CorrMemDisk
	for _, r := range []float64{r12, r13, r23} {
		if r <= -1 || r >= 1 {
			return 0, 0, 0, 0, 0, fmt.Errorf("hostpop: copula correlation %g out of (-1, 1)", r)
		}
	}
	l21 = r12
	l22 = math.Sqrt(1 - r12*r12)
	l31 = r13
	l32 = (r23 - r12*r13) / l22
	d := 1 - l31*l31 - l32*l32
	if d <= 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("hostpop: copula correlations (%g, %g, %g) are not positive definite", r12, r13, r23)
	}
	l33 = math.Sqrt(d)
	return l21, l22, l31, l32, l33, nil
}

// Validate checks the profile is generatable.
func (p Profile) Validate() error {
	if _, _, _, _, _, err := p.cholesky(); err != nil {
		return err
	}
	if !p.AlwaysOn && (p.AvailLo <= 0 || p.AvailHi > 1 || p.AvailLo > p.AvailHi) {
		return fmt.Errorf("hostpop: availability range [%g, %g] out of (0, 1]", p.AvailLo, p.AvailHi)
	}
	return nil
}

// Population is a generated host population in structs-of-arrays form.
// All slices have length N; host i's hardware is row i.
type Population struct {
	Profile Profile
	Seed    uint64
	N       int

	CPUGHz     []float64
	MemMB      []float64
	OSBaseMB   []float64
	DiskSeekMs []float64
	DiskMBps   []float64

	// AvailFrac is the fraction of each day the host is on and
	// reachable (1 means always on); Phase is the center of its daily
	// availability window in seconds of day time — effectively the
	// host's timezone and usage habits.
	AvailFrac []float64
	Phase     []float64
}

// genChunk is the number of hosts one generation unit fills; chunking
// amortizes pool dispatch without affecting output (host draws are
// index-derived, not sequential).
const genChunk = 4096

// Generate draws an n-host population from the profile, deterministic
// in seed and byte-identical for every worker count (0 selects
// GOMAXPROCS).
func Generate(n int, p Profile, seed uint64, workers int) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hostpop: population size must be positive, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	l21, l22, l31, l32, l33, err := p.cholesky()
	if err != nil {
		return nil, err
	}
	pop := &Population{
		Profile:    p,
		Seed:       seed,
		N:          n,
		CPUGHz:     make([]float64, n),
		MemMB:      make([]float64, n),
		OSBaseMB:   make([]float64, n),
		DiskSeekMs: make([]float64, n),
		DiskMBps:   make([]float64, n),
		AvailFrac:  make([]float64, n),
		Phase:      make([]float64, n),
	}
	chunks := (n + genChunk - 1) / genChunk
	err = pool.RunScratch(workers, chunks, func() *stats.Stream { return stats.NewStream(0) }, func(c int, s *stats.Stream) error {
		lo, hi := c*genChunk, (c+1)*genChunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			s.Reseed(stats.DeriveSeed(seed, uint64(i)))
			// Copula coordinates: three correlated standard normals.
			w1, w2, w3 := s.Norm(0, 1), s.Norm(0, 1), s.Norm(0, 1)
			z1 := w1
			z2 := l21*w1 + l22*w2
			z3 := l31*w1 + l32*w2 + l33*w3
			pop.CPUGHz[i] = p.CPUGHz.FromNormal(z1)
			pop.MemMB[i] = p.MemMB.FromNormal(z2)
			pop.DiskMBps[i] = p.DiskMBps.FromNormal(z3)
			pop.DiskSeekMs[i] = p.DiskSeekMs.FromNormal(s.Norm(0, 1))
			pop.OSBaseMB[i] = p.OSBaseMB.FromNormal(s.Norm(0, 1))
			if p.AlwaysOn {
				pop.AvailFrac[i] = 1
				pop.Phase[i] = 0
			} else {
				pop.AvailFrac[i] = s.Range(p.AvailLo, p.AvailHi)
				pop.Phase[i] = s.Range(0, Day)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pop, nil
}

// MachineConfig returns host i's hardware as a hostsim configuration.
// The Name is left empty: a million-host study cannot afford a
// formatted string per host, and nothing in the run path reads it.
func (pop *Population) MachineConfig(i int) hostsim.Config {
	return hostsim.Config{
		CPUGHz:     pop.CPUGHz[i],
		MemMB:      pop.MemMB[i],
		OSBaseMB:   pop.OSBaseMB[i],
		DiskSeekMs: pop.DiskSeekMs[i],
		DiskMBps:   pop.DiskMBps[i],
		PageKB:     4,
	}
}

// MedianCPUGHz returns the population's empirical median clock — the
// split point of the host-speed analysis. It is computed with a
// partial selection over a scratch copy, O(n) expected.
func (pop *Population) MedianCPUGHz() float64 {
	scratch := make([]float64, pop.N)
	copy(scratch, pop.CPUGHz)
	return quickselect(scratch, pop.N/2)
}

// MedianMemMB returns the empirical median memory size, the
// memory-split point.
func (pop *Population) MedianMemMB() float64 {
	scratch := make([]float64, pop.N)
	copy(scratch, pop.MemMB)
	return quickselect(scratch, pop.N/2)
}

// quickselect returns the k'th smallest element of xs, reordering xs.
// Median-of-three pivoting keeps sorted and constant inputs O(n).
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		// Median-of-three pivot, moved to xs[lo].
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[mid] < xs[hi] {
			xs[mid], xs[hi] = xs[hi], xs[mid]
		}
		pivot := xs[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if xs[j] < pivot {
				xs[i], xs[j] = xs[j], xs[i]
				i++
			}
		}
		xs[i], xs[hi] = xs[hi], xs[i]
		switch {
		case k == i:
			return xs[i]
		case k < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
	return xs[lo]
}
