package harvest

import (
	"fmt"
	"sort"
	"strings"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Day parameterizes the simulated work day each policy is evaluated
// over.
type Day struct {
	// Hours is the day length.
	Hours float64
	// Window is the scheduling window in seconds (the throttle
	// granularity; the paper's testcases are 120s).
	Window float64
	// ActiveSessionMean and IdleGapMean are the mean lengths of user
	// sessions and the gaps between them, in seconds.
	ActiveSessionMean float64
	IdleGapMean       float64
	// UninstallAfter is the number of complaints after which the user
	// disables the framework on that machine (§1: "the user is likely
	// to disable them"). Zero means never.
	UninstallAfter int
	// TaskMix weights the task a user works on per session; nil selects
	// an office-heavy default.
	TaskMix map[testcase.Task]float64
}

// DefaultDay is an eight-hour office day with two-minute windows.
func DefaultDay() Day {
	return Day{
		Hours:             8,
		Window:            120,
		ActiveSessionMean: 2400, // ~40-minute work sessions
		IdleGapMean:       900,  // ~15-minute breaks, meetings
		UninstallAfter:    3,
		TaskMix: map[testcase.Task]float64{
			testcase.Word:       0.35,
			testcase.Powerpoint: 0.20,
			testcase.IE:         0.35,
			testcase.Quake:      0.10,
		},
	}
}

// Result aggregates one policy's day over a fleet of users.
type Result struct {
	Policy string
	// HarvestedCPUHours is the background CPU time obtained (one-core
	// machine, so a full idle day harvests Hours).
	HarvestedCPUHours float64
	// IdleCPUHours and ActiveCPUHours split the harvest by machine state.
	IdleCPUHours, ActiveCPUHours float64
	// Complaints counts discomfort events across the fleet.
	Complaints int
	// Uninstalls counts machines lost to repeated complaints.
	Uninstalls int
	// Users is the fleet size.
	Users int
}

// String renders the result row.
func (r Result) String() string {
	return fmt.Sprintf("%-18s harvested %6.1f CPU-h (idle %6.1f + active %5.1f)  complaints %3d  uninstalls %2d",
		r.Policy, r.HarvestedCPUHours, r.IdleCPUHours, r.ActiveCPUHours, r.Complaints, r.Uninstalls)
}

// Evaluate runs one policy instance per user over the day and aggregates
// the fleet result. The factory is called once per user so stateful
// policies (feedback throttles) do not leak across machines.
func Evaluate(factory func() Policy, users []*comfort.User, day Day, engine *core.Engine, seed uint64) (Result, error) {
	if len(users) == 0 {
		return Result{}, fmt.Errorf("harvest: no users")
	}
	if day.Hours <= 0 || day.Window <= 0 || day.ActiveSessionMean <= 0 || day.IdleGapMean <= 0 {
		return Result{}, fmt.Errorf("harvest: invalid day %+v", day)
	}
	if engine == nil {
		engine = core.NewEngine()
	}
	res := Result{Policy: factory().Name(), Users: len(users)}
	rng := stats.NewStream(seed)
	appCache := map[testcase.Task]apps.App{}
	appDemand := map[testcase.Task]float64{}
	for _, task := range testcase.Tasks() {
		app, err := apps.New(task)
		if err != nil {
			return Result{}, err
		}
		appCache[task] = app
		appDemand[task] = perSecondCPU(app, rng.Fork())
	}

	for _, u := range users {
		policy := factory()
		urng := rng.Fork()
		complaints := 0
		uninstalled := false
		dayLen := day.Hours * 3600

		t := 0.0
		active := urng.Bool(0.7) // most users start the day working
		sessionTask := sampleTask(day.TaskMix, urng)
		sessionEnd := t + urng.Exp(sessionLen(day, active))
		idleSince := 0.0
		for t < dayLen {
			winEnd := t + day.Window
			if winEnd > sessionEnd {
				winEnd = sessionEnd
			}
			window := winEnd - t
			if window <= 0 {
				// Session boundary: flip state.
				active = !active
				if active {
					sessionTask = sampleTask(day.TaskMix, urng)
				} else {
					idleSince = t
				}
				sessionEnd = t + urng.Exp(sessionLen(day, active))
				continue
			}
			ctx := Context{UserActive: active, Task: sessionTask}
			if !active {
				ctx.IdleFor = t - idleSince
			}
			level := 0.0
			if !uninstalled {
				level = policy.Level(ctx)
				if level < 0 {
					level = 0
				}
			}
			if level > 0 {
				if active {
					// Run the window through the study machinery: does the
					// user click?
					tc := constTestcase(level, window)
					run, err := engine.Execute(tc, appCache[sessionTask], u, urng.Uint64())
					if err != nil {
						return Result{}, err
					}
					borrowed := window
					if run.Terminated == core.Discomfort {
						complaints++
						res.Complaints++
						policy.OnFeedback()
						borrowed = run.Offset // exercisers stop at the click
						if day.UninstallAfter > 0 && complaints >= day.UninstallAfter {
							uninstalled = true
							res.Uninstalls++
						}
					}
					// The borrower's threads share the CPU with the app.
					res.ActiveCPUHours += harvestActive(level, appDemand[sessionTask], borrowed) / 3600
				} else {
					res.IdleCPUHours += harvestIdle(level, window) / 3600
				}
			}
			t = winEnd
		}
	}
	res.HarvestedCPUHours = res.IdleCPUHours + res.ActiveCPUHours
	return res, nil
}

// harvestActive returns the CPU-seconds the borrower obtains during an
// active window: its level-worth of threads share the single CPU with
// the application's demand.
func harvestActive(level, appDemand, window float64) float64 {
	if level <= 0 {
		return 0
	}
	share := level / (level + appDemand)
	got := window * share
	if cap := window * min64(level, 1); got > cap {
		got = cap
	}
	return got
}

// harvestIdle returns the CPU-seconds obtained on an idle machine: a
// single core saturates at level 1.
func harvestIdle(level, window float64) float64 {
	return window * min64(level, 1)
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// sessionLen picks the mean for the next session.
func sessionLen(day Day, active bool) float64 {
	if active {
		return day.ActiveSessionMean
	}
	return day.IdleGapMean
}

// sampleTask draws a session task from the mix.
func sampleTask(mix map[testcase.Task]float64, s *stats.Stream) testcase.Task {
	if len(mix) == 0 {
		return testcase.Word
	}
	tasks := make([]testcase.Task, 0, len(mix))
	for t := range mix {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	total := 0.0
	for _, t := range tasks {
		total += mix[t]
	}
	u := s.Float64() * total
	acc := 0.0
	for _, t := range tasks {
		acc += mix[t]
		if u < acc {
			return t
		}
	}
	return tasks[len(tasks)-1]
}

// constTestcase builds a constant-level CPU testcase for one window.
func constTestcase(level, window float64) *testcase.Testcase {
	tc := testcase.New(fmt.Sprintf("harvest-%.2f", level), 1)
	tc.Shape = testcase.ShapeStep
	tc.Params = fmt.Sprintf("%.2f,%.0f,0", level, window)
	tc.Functions[testcase.CPU] = testcase.Step(level, window, 0, 1)
	return tc
}

// perSecondCPU estimates an app's average CPU demand.
func perSecondCPU(app apps.App, s *stats.Stream) float64 {
	evs := app.Events(300, s)
	total := 0.0
	for _, ev := range evs {
		total += ev.CPU
	}
	return total / 300
}

// Compare evaluates several policies over the same fleet and day and
// renders a comparison table (most harvest first).
func Compare(factories []func() Policy, users []*comfort.User, day Day, engine *core.Engine, seed uint64) ([]Result, string, error) {
	var out []Result
	for _, f := range factories {
		r, err := Evaluate(f, users, day, engine, seed)
		if err != nil {
			return nil, "", err
		}
		out = append(out, r)
	}
	sorted := make([]Result, len(out))
	copy(sorted, out)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].HarvestedCPUHours > sorted[j].HarvestedCPUHours })
	var b strings.Builder
	fmt.Fprintf(&b, "Borrowing-policy harvest over a %.0fh day, %d users (1 CPU each):\n", day.Hours, len(users))
	for _, r := range sorted {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return out, b.String(), nil
}
