package harvest

import (
	"strings"
	"sync"
	"testing"

	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/study"
	"uucs/internal/testcase"
)

// testDay is a short day so the fleet evaluation stays fast in tests.
func testDay() Day {
	d := DefaultDay()
	d.Hours = 3
	return d
}

func testUsers(t *testing.T, n int) []*comfort.User {
	t.Helper()
	users, err := comfort.SamplePopulation(n, comfort.DefaultPopulation(), 21)
	if err != nil {
		t.Fatal(err)
	}
	return users
}

var (
	ceilOnce sync.Once
	ceilMap  map[testcase.Task]float64
	ceilErr  error
)

// studyCeilings runs a compact study once to derive CDF ceilings.
func studyCeilings(t *testing.T) map[testcase.Task]float64 {
	t.Helper()
	ceilOnce.Do(func() {
		cfg := study.DefaultConfig()
		cfg.Users = 12
		res, err := study.Run(cfg)
		if err != nil {
			ceilErr = err
			return
		}
		ceilMap = CeilingsFromStudy(res.DB, 0.05)
	})
	if ceilErr != nil {
		t.Fatal(ceilErr)
	}
	return ceilMap
}

func TestPolicies(t *testing.T) {
	ss := ScreensaverOnly{Delay: 600, Max: 1}
	if ss.Level(Context{UserActive: true}) != 0 {
		t.Error("screensaver borrowed while active")
	}
	if ss.Level(Context{IdleFor: 300}) != 0 {
		t.Error("screensaver borrowed before the timeout")
	}
	if ss.Level(Context{IdleFor: 900}) != 1 {
		t.Error("screensaver did not borrow after the timeout")
	}
	fx := FixedLevel{L: 0.2, Max: 1}
	if fx.Level(Context{UserActive: true, Task: testcase.Quake}) != 0.2 {
		t.Error("fixed level wrong while active")
	}
	if fx.Level(Context{}) != 1 {
		t.Error("fixed level wrong while idle")
	}
	cd := &CDFThrottle{Ceilings: map[testcase.Task]float64{testcase.Word: 2, testcase.Quake: 0.1}, Max: 1, Backoff: 0.5}
	if cd.Level(Context{UserActive: true, Task: testcase.Word}) != 2 {
		t.Error("cdf ceiling wrong for word")
	}
	if cd.Level(Context{UserActive: true, Task: testcase.Quake}) != 0.1 {
		t.Error("cdf ceiling wrong for quake")
	}
	cd.OnFeedback()
	if got := cd.Level(Context{UserActive: true, Task: testcase.Word}); got != 1 {
		t.Errorf("backoff not applied: %v", got)
	}
	if cd.Name() != "cdf+feedback" {
		t.Errorf("name = %q", cd.Name())
	}
	if (&CDFThrottle{}).Name() != "cdf-throttle" {
		t.Error("feedbackless name wrong")
	}
}

func TestHarvestAccounting(t *testing.T) {
	if got := harvestIdle(1, 120); got != 120 {
		t.Errorf("idle harvest at level 1 = %v", got)
	}
	if got := harvestIdle(3, 120); got != 120 {
		t.Errorf("idle harvest saturates at one core: %v", got)
	}
	if got := harvestActive(0, 0.5, 120); got != 0 {
		t.Errorf("no level, no harvest: %v", got)
	}
	// At level 1 against a 0.5-demand app, the borrower gets 2/3.
	if got := harvestActive(1, 0.5, 120); got < 79 || got > 81 {
		t.Errorf("active harvest = %v, want ~80", got)
	}
	// The single core caps low levels.
	if got := harvestActive(0.1, 0.01, 100); got > 10.001 {
		t.Errorf("active harvest exceeded level cap: %v", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	users := testUsers(t, 2)
	if _, err := Evaluate(func() Policy { return FixedLevel{L: 0.1, Max: 1} }, nil, testDay(), nil, 1); err == nil {
		t.Error("no users accepted")
	}
	bad := testDay()
	bad.Window = 0
	if _, err := Evaluate(func() Policy { return FixedLevel{L: 0.1, Max: 1} }, users, bad, nil, 1); err == nil {
		t.Error("bad day accepted")
	}
}

func TestScreensaverHarvestsOnlyIdle(t *testing.T) {
	users := testUsers(t, 6)
	r, err := Evaluate(func() Policy { return ScreensaverOnly{Delay: 600, Max: 1} }, users, testDay(), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveCPUHours != 0 {
		t.Errorf("screensaver harvested %v active hours", r.ActiveCPUHours)
	}
	if r.Complaints != 0 {
		t.Errorf("screensaver caused %d complaints", r.Complaints)
	}
	if r.IdleCPUHours <= 0 {
		t.Error("screensaver harvested nothing at all")
	}
}

func TestAggressiveFixedPolicyAnnoysUsers(t *testing.T) {
	users := testUsers(t, 6)
	r, err := Evaluate(func() Policy { return FixedLevel{L: 2.0, Max: 1} }, users, testDay(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complaints == 0 {
		t.Error("constant contention 2.0 produced no complaints")
	}
	if r.Uninstalls == 0 {
		t.Error("no uninstalls despite sustained annoyance")
	}
}

func TestCDFPolicyBeatsScreensaverWithFewComplaints(t *testing.T) {
	// The paper's argument in one test: CDF-guided borrowing harvests
	// strictly more than screensaver-only while keeping complaints to a
	// small fraction of the fleet's windows.
	users := testUsers(t, 8)
	ceilings := studyCeilings(t)
	day := testDay()
	engine := core.NewEngine()

	ss, err := Evaluate(func() Policy { return ScreensaverOnly{Delay: 600, Max: 1} }, users, day, engine, 5)
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := Evaluate(func() Policy {
		return &CDFThrottle{Ceilings: ceilings, Max: 1, Backoff: 0.5}
	}, users, day, engine, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.HarvestedCPUHours <= ss.HarvestedCPUHours {
		t.Errorf("CDF policy harvested %v <= screensaver %v", cdf.HarvestedCPUHours, ss.HarvestedCPUHours)
	}
	if cdf.Uninstalls > len(users)/3 {
		t.Errorf("CDF policy lost %d of %d machines", cdf.Uninstalls, len(users))
	}
}

func TestCompareRendersTable(t *testing.T) {
	users := testUsers(t, 4)
	day := testDay()
	factories := []func() Policy{
		func() Policy { return ScreensaverOnly{Delay: 600, Max: 1} },
		func() Policy { return FixedLevel{L: 0.2, Max: 1} },
	}
	results, table, err := Compare(factories, users, day, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(table, "screensaver-only") || !strings.Contains(table, "fixed-0.2") {
		t.Errorf("table missing policies:\n%s", table)
	}
}

func TestEvaluateDeterminism(t *testing.T) {
	users := testUsers(t, 4)
	f := func() Policy { return FixedLevel{L: 0.5, Max: 1} }
	a, err := Evaluate(f, users, testDay(), nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(f, users, testDay(), nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.HarvestedCPUHours != b.HarvestedCPUHours || a.Complaints != b.Complaints {
		t.Errorf("evaluation not deterministic: %+v vs %+v", a, b)
	}
}

func TestMinWorthwhileSuppressesBlameOnlyBorrowing(t *testing.T) {
	p := &CDFThrottle{
		Ceilings:      map[testcase.Task]float64{testcase.Quake: 0.02, testcase.Word: 2},
		Max:           1,
		MinWorthwhile: 0.1,
	}
	if got := p.Level(Context{UserActive: true, Task: testcase.Quake}); got != 0 {
		t.Errorf("borrowed %v during Quake despite a worthless ceiling", got)
	}
	if got := p.Level(Context{UserActive: true, Task: testcase.Word}); got != 2 {
		t.Errorf("Word ceiling suppressed: %v", got)
	}
}

func TestFeedbackPolicyPreservesFleet(t *testing.T) {
	// The §5 policy (CDF ceilings + direct feedback + worthwhileness
	// floor) must harvest more than screensaver-only while losing almost
	// no machines — the paper's thesis, end to end.
	users := testUsers(t, 8)
	ceilings := studyCeilings(t)
	day := testDay()
	engine := core.NewEngine()
	ss, err := Evaluate(func() Policy { return ScreensaverOnly{Delay: 600, Max: 1} }, users, day, engine, 7)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Evaluate(func() Policy {
		return &CDFThrottle{Ceilings: ceilings, Max: 1, Backoff: 0.3, MinWorthwhile: 0.1}
	}, users, day, engine, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fb.HarvestedCPUHours <= ss.HarvestedCPUHours {
		t.Errorf("feedback policy harvested %v <= screensaver %v", fb.HarvestedCPUHours, ss.HarvestedCPUHours)
	}
	if fb.Uninstalls > 2 {
		t.Errorf("feedback policy lost %d of %d machines", fb.Uninstalls, len(users))
	}
}
