// Package harvest evaluates resource-borrowing policies end to end: how
// much background work a cycle-stealing framework extracts from a
// desktop fleet, and how many users it discomforts doing so. It
// operationalizes the paper's motivation and advice:
//
//   - §1: "the default behavior in Condor, Sprite and SETI@Home is to
//     execute only when they are quite sure the user is away, when the
//     screen saver has been activated ... If less conservative resource
//     borrowing does not lead to significantly increased user
//     discomfort, the performance of current systems could be increased."
//   - §1: "if they cause the user to feel that the machine is slower
//     than is desirable, the user is likely to disable them" — modeled
//     here as uninstalls after repeated complaints, after which a policy
//     harvests nothing from that machine.
//   - §5: set the throttle from the CDFs, know the user's context, use
//     feedback directly.
//
// The evaluation runs each policy over a simulated work day per user:
// alternating active sessions (the user performs one of the four study
// tasks) and idle gaps. Active windows execute through the same engine,
// app and user models as the controlled study, so discomfort is decided
// by exactly the machinery the paper's CDFs summarize.
package harvest

import (
	"fmt"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Context is what a policy may observe when choosing a borrowing level —
// deliberately limited to what real frameworks can see (activity and,
// for context-aware policies, the foreground task class).
type Context struct {
	// UserActive reports whether the user is at the machine.
	UserActive bool
	// IdleFor is the time since the last user activity, in seconds.
	IdleFor float64
	// Task is the user's foreground task while active.
	Task testcase.Task
}

// Policy decides the CPU borrowing level for the next scheduling window.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Level returns the CPU contention to apply during the next window.
	Level(ctx Context) float64
	// OnFeedback notifies the policy that the user expressed discomfort.
	OnFeedback()
}

// ScreensaverOnly is the conservative default of Condor and SETI@Home:
// borrow only after the machine has been idle long enough for the
// screen saver, then take everything.
type ScreensaverOnly struct {
	// Delay is the screensaver timeout in seconds.
	Delay float64
	// Max is the level used once borrowing starts.
	Max float64
}

// Name implements Policy.
func (p ScreensaverOnly) Name() string { return "screensaver-only" }

// Level implements Policy.
func (p ScreensaverOnly) Level(ctx Context) float64 {
	if ctx.UserActive || ctx.IdleFor < p.Delay {
		return 0
	}
	return p.Max
}

// OnFeedback implements Policy; the screensaver policy never runs while
// the user is present, so feedback never reaches it.
func (p ScreensaverOnly) OnFeedback() {}

// FixedLevel borrows a constant level at all times — the "run at low
// priority" approach, expressed in contention units.
type FixedLevel struct {
	// L is the constant borrowing level.
	L float64
	// Max is the level used when the machine is idle.
	Max float64
}

// Name implements Policy.
func (p FixedLevel) Name() string { return fmt.Sprintf("fixed-%.2g", p.L) }

// Level implements Policy.
func (p FixedLevel) Level(ctx Context) float64 {
	if !ctx.UserActive {
		return p.Max
	}
	return p.L
}

// OnFeedback implements Policy; a fixed policy ignores feedback (that is
// its failure mode).
func (p FixedLevel) OnFeedback() {}

// CDFThrottle sets the level per context from measured discomfort CDFs
// at a target percentile — the paper's §5 advice ("Exploit our CDFs to
// set the throttle ... Know what the user is doing").
type CDFThrottle struct {
	// Ceilings maps each task to its c_target level.
	Ceilings map[testcase.Task]float64
	// Max is the level used when the machine is idle.
	Max float64
	// Backoff, when positive, multiplies the active level by Backoff on
	// every feedback — the §5 "use user feedback directly" refinement.
	// Zero disables feedback handling.
	Backoff float64
	// MinWorthwhile suppresses borrowing entirely when the context
	// ceiling falls below it: the paper's noise floor means the
	// framework gets blamed for jitter whenever it runs during
	// jitter-sensitive tasks, so borrowing 2% of a CPU is all blame and
	// no harvest.
	MinWorthwhile float64

	scale float64
}

// Name implements Policy.
func (p *CDFThrottle) Name() string {
	if p.Backoff > 0 {
		return "cdf+feedback"
	}
	return "cdf-throttle"
}

// Level implements Policy.
func (p *CDFThrottle) Level(ctx Context) float64 {
	if !ctx.UserActive {
		return p.Max
	}
	if p.scale == 0 {
		p.scale = 1
	}
	level := p.Ceilings[ctx.Task] * p.scale
	if level < p.MinWorthwhile {
		return 0
	}
	return level
}

// OnFeedback implements Policy.
func (p *CDFThrottle) OnFeedback() {
	if p.Backoff <= 0 {
		return
	}
	if p.scale == 0 {
		p.scale = 1
	}
	p.scale *= p.Backoff
}

// CeilingsFromStudy extracts per-task CPU ceilings at the target
// percentile from controlled-study results.
func CeilingsFromStudy(db interface {
	TaskResourceCDF(testcase.Task, testcase.Resource) *stats.CDF
}, target float64) map[testcase.Task]float64 {
	out := make(map[testcase.Task]float64, 4)
	for _, task := range testcase.Tasks() {
		cdf := db.TaskResourceCDF(task, testcase.CPU)
		if v, ok := cdf.Percentile(target); ok {
			out[task] = v
		} else {
			out[task] = cdf.Max() // nobody reacted in the explored range
		}
	}
	return out
}
