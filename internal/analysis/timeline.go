package analysis

import (
	"fmt"
	"strings"

	"uucs/internal/apps"
	"uucs/internal/core"
)

// RenderTimeline draws a run's interactivity trace as an ASCII timeline:
// latency (or frame time) over the run, with the discomfort moment
// marked. It needs a run executed with the engine's TraceEvents option.
func RenderTimeline(run *core.Run, width int) string {
	if width < 30 {
		width = 30
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %s (%s, user %d, %s at %.1fs)\n",
		run.TestcaseID, run.Task, run.UserID, run.Terminated, run.Offset)
	if len(run.Trace) == 0 {
		b.WriteString("  (no trace; run with Engine.TraceEvents = true)\n")
		return b.String()
	}
	maxLat := 0.0
	duration := run.Offset
	for _, s := range run.Trace {
		if s.Latency > maxLat {
			maxLat = s.Latency
		}
		if s.Time > duration {
			duration = s.Time
		}
	}
	if maxLat == 0 {
		maxLat = 1
	}
	const rows = 8
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range run.Trace {
		col := int(s.Time / duration * float64(width-1))
		if col < 0 || col >= width {
			continue
		}
		row := int(s.Latency / maxLat * float64(rows-1))
		if row > rows-1 {
			row = rows - 1
		}
		grid[rows-1-row][col] = mark(s.Class)
	}
	// Mark the click column.
	clickCol := -1
	if run.Terminated == core.Discomfort {
		clickCol = int(run.Offset / duration * float64(width-1))
	}
	for i, rowBytes := range grid {
		label := " "
		if i == 0 {
			label = fmt.Sprintf("%.2fs", maxLat)
		}
		line := string(rowBytes)
		if clickCol >= 0 && clickCol < len(rowBytes) && rowBytes[clickCol] == ' ' {
			line = line[:clickCol] + "!" + line[clickCol+1:]
		}
		fmt.Fprintf(&b, "%8s |%s\n", label, line)
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  0%*s%.0fs   (e=echo o=op f=flow L=load F=frame-window !=click)\n",
		"", width-5, "", duration)
	return b.String()
}

// mark maps an event class to its plot glyph.
func mark(c apps.Class) byte {
	switch c {
	case apps.Echo:
		return 'e'
	case apps.Op:
		return 'o'
	case apps.Flow:
		return 'f'
	case apps.LoadOp:
		return 'L'
	case apps.Frame:
		return 'F'
	default:
		return '*'
	}
}
