package analysis

import (
	"fmt"
	"sort"

	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// SkillDiff is one row of the paper's Figure 17: a significant
// difference in average discomfort contention level between two
// self-rating groups for one app/resource combination.
type SkillDiff struct {
	Task     testcase.Task
	Resource testcase.Resource
	Domain   comfort.Domain
	// Hi and Lo are the compared rating groups (e.g. Power vs Typical).
	Hi, Lo comfort.Rating
	// Result is the unpaired t-test. Diff is mean(Lo) - mean(Hi): how
	// much less contention the higher-skill group tolerates, matching
	// the paper's "a Quake Power User will tolerate 0.224 less CPU
	// contention than a Quake Typical User".
	Result stats.TTestResult
}

// Rating label in the paper's style, e.g. "Quake Power vs. Typical".
func (d SkillDiff) Rating() string {
	return fmt.Sprintf("%s %s vs. %s", comfort.DomainLabel(d.Domain), d.Hi, d.Lo)
}

// SkillDifferences reproduces the Figure 17 analysis: for every
// task/resource pair, compare average discomfort contention levels
// between adjacent rating groups (Power vs Typical, Typical vs
// Beginner) for the task's own domain plus the general PC and Windows
// domains, using unpaired t-tests. Rows significant at alpha are
// returned sorted by p-value. users maps user ID to the questionnaire
// record.
func (db *DB) SkillDifferences(users map[int]*comfort.User, alpha float64) []SkillDiff {
	var out []SkillDiff
	for _, task := range testcase.Tasks() {
		domains := []comfort.Domain{taskDomain(task), comfort.DomainPC, comfort.DomainWindows}
		for _, res := range testcase.Resources() {
			runs := db.Filter(ByTask(task), ByResource(res), Discomforted())
			for _, dom := range domains {
				groups := make(map[comfort.Rating][]float64)
				for _, r := range runs {
					u, ok := users[r.UserID]
					if !ok {
						continue
					}
					lvl, ok := r.Level()
					if !ok {
						continue
					}
					rating := u.Ratings[dom]
					groups[rating] = append(groups[rating], lvl)
				}
				pairs := [][2]comfort.Rating{
					{comfort.Power, comfort.Typical},
					{comfort.Typical, comfort.Beginner},
				}
				for _, pr := range pairs {
					hi, lo := pr[0], pr[1]
					res2, err := stats.WelchTTest(groups[lo], groups[hi])
					if err != nil {
						continue // group too small; not reportable
					}
					if !res2.Significant(alpha) {
						continue
					}
					out = append(out, SkillDiff{
						Task: task, Resource: res, Domain: dom,
						Hi: hi, Lo: lo, Result: res2,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Result.P < out[j].Result.P })
	return out
}

// taskDomain maps a task to its questionnaire domain.
func taskDomain(task testcase.Task) comfort.Domain {
	switch task {
	case testcase.Word:
		return comfort.DomainWord
	case testcase.Powerpoint:
		return comfort.DomainPowerpoint
	case testcase.IE:
		return comfort.DomainIE
	case testcase.Quake:
		return comfort.DomainQuake
	default:
		return comfort.DomainPC
	}
}

// FrogResult is the ramp-vs-step comparison of §3.3.5 for one
// task/resource pair: did users tolerate higher contention under a slow
// ramp than under a quick step to the same level?
type FrogResult struct {
	Task     testcase.Task
	Resource testcase.Resource
	// Pairs is the number of users with a discomforted ramp run and a
	// step run to pair.
	Pairs int
	// FracHigherInRamp is the fraction of pairs whose ramp level exceeds
	// the step level (the paper's "96% of users tolerated higher levels
	// in the ramp testcase").
	FracHigherInRamp float64
	// Result is the paired t-test of (ramp level - step level).
	Result stats.TTestResult
}

// FrogInPot pairs, per user, the discomfort level of the ramp run with
// the level of the step run for the given task/resource, and tests
// whether ramps are tolerated to higher levels. Step runs that were
// exhausted (the user tolerated the whole step) count at the step level
// with the ramp necessarily judged against it; ramp-exhausted users are
// excluded because their ramp tolerance is unobserved.
func (db *DB) FrogInPot(task testcase.Task, res testcase.Resource) (FrogResult, error) {
	ramps := db.Filter(ByTask(task), ByResource(res), ByShape(testcase.ShapeRamp), Discomforted())
	steps := db.Filter(ByTask(task), ByResource(res), ByShape(testcase.ShapeStep))
	stepByUser := make(map[int]*core.Run, len(steps))
	for _, r := range steps {
		stepByUser[r.UserID] = r
	}
	var rampLvls, stepLvls []float64
	higher := 0
	for _, r := range ramps {
		s, ok := stepByUser[r.UserID]
		if !ok || s.Terminated != core.Discomfort {
			// Without a step reaction there is no tolerated-step level to
			// compare against.
			continue
		}
		rl, ok1 := r.Level()
		sl, ok2 := s.Level()
		if !ok1 || !ok2 {
			continue
		}
		rampLvls = append(rampLvls, rl)
		stepLvls = append(stepLvls, sl)
		if rl > sl {
			higher++
		}
	}
	fr := FrogResult{Task: task, Resource: res, Pairs: len(rampLvls)}
	if len(rampLvls) == 0 {
		return fr, fmt.Errorf("analysis: no ramp/step pairs for %s/%s", task, res)
	}
	fr.FracHigherInRamp = float64(higher) / float64(len(rampLvls))
	tt, err := stats.PairedTTest(rampLvls, stepLvls)
	if err != nil {
		return fr, err
	}
	fr.Result = tt
	return fr, nil
}
