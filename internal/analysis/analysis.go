// Package analysis turns collections of run records into the paper's
// results: the breakdown of runs (Figure 9), discomfort CDFs per
// resource and per task/resource pair (Figures 10-12 and 18), the f_d,
// c_0.05 and c_a metric tables (Figures 14-16), the sensitivity
// judgement table (Figure 13), skill-level significance tests
// (Figure 17), and the ramp-vs-step "frog in the pot" comparison
// (§3.3.5). It corresponds to the paper's analysis phase (Figure 2):
// results are imported into a database, then a set of tools reduces
// them.
package analysis

import (
	"fmt"

	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// DB is the in-memory result database the analysis tools run against.
type DB struct {
	runs []*core.Run
}

// NewDB imports run records into a database.
func NewDB(runs []*core.Run) *DB { return &DB{runs: runs} }

// Add imports more run records.
func (db *DB) Add(runs ...*core.Run) { db.runs = append(db.runs, runs...) }

// Len returns the number of imported runs.
func (db *DB) Len() int { return len(db.runs) }

// Runs returns all imported runs.
func (db *DB) Runs() []*core.Run { return db.runs }

// Filter returns the runs matching every predicate.
func (db *DB) Filter(preds ...func(*core.Run) bool) []*core.Run {
	var out []*core.Run
	for _, r := range db.runs {
		keep := true
		for _, p := range preds {
			if !p(r) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}

// Predicate constructors.

// ByTask keeps runs for the given task.
func ByTask(task testcase.Task) func(*core.Run) bool {
	return func(r *core.Run) bool { return r.Task == task }
}

// ByResource keeps runs whose primary resource matches.
func ByResource(res testcase.Resource) func(*core.Run) bool {
	return func(r *core.Run) bool { return r.PrimaryResource == res }
}

// ByShape keeps runs generated from the given exercise-function family.
func ByShape(shape testcase.Shape) func(*core.Run) bool {
	return func(r *core.Run) bool { return r.Shape == shape }
}

// Blank keeps blank (noise-floor) runs.
func Blank() func(*core.Run) bool {
	return func(r *core.Run) bool { return r.Blank }
}

// NonBlank keeps runs that exercised something.
func NonBlank() func(*core.Run) bool {
	return func(r *core.Run) bool { return !r.Blank }
}

// Discomforted keeps runs that ended in user feedback.
func Discomforted() func(*core.Run) bool {
	return func(r *core.Run) bool { return r.Terminated == core.Discomfort }
}

// CDF builds the empirical discomfort CDF over the given runs: each
// discomforted run contributes its contention level at the moment of
// feedback, and exhausted runs are censored.
func CDF(runs []*core.Run) *stats.CDF {
	var levels []float64
	exhausted := 0
	for _, r := range runs {
		lvl, ok := r.Level()
		if !ok {
			continue // blank runs have no level axis
		}
		if r.Terminated == core.Discomfort {
			levels = append(levels, lvl)
		} else {
			exhausted++
		}
	}
	return stats.NewCDF(levels, exhausted)
}

// ResourceCDF builds the paper's aggregated per-resource CDF
// (Figures 10-12): ramp runs for the resource, over all tasks.
func (db *DB) ResourceCDF(res testcase.Resource) *stats.CDF {
	return CDF(db.Filter(ByResource(res), ByShape(testcase.ShapeRamp)))
}

// TaskResourceCDF builds one cell of the paper's Figure 18 grid.
func (db *DB) TaskResourceCDF(task testcase.Task, res testcase.Resource) *stats.CDF {
	return CDF(db.Filter(ByTask(task), ByResource(res), ByShape(testcase.ShapeRamp)))
}

// Breakdown is the paper's Figure 9: run counts by task, blank/non-blank
// and outcome, with the blank-testcase discomfort probability (the noise
// floor).
type Breakdown struct {
	Task                 testcase.Task // "" for the Total row
	NonBlankDiscomforted int
	NonBlankExhausted    int
	BlankDiscomforted    int
	BlankExhausted       int
}

// NoiseFloor returns the probability of discomfort from a blank
// testcase.
func (b Breakdown) NoiseFloor() float64 {
	n := b.BlankDiscomforted + b.BlankExhausted
	if n == 0 {
		return 0
	}
	return float64(b.BlankDiscomforted) / float64(n)
}

// Breakdown computes Figure 9: the total first, then one row per task.
func (db *DB) Breakdown() []Breakdown {
	rows := make([]Breakdown, 0, 5)
	total := db.breakdownFor(nil)
	rows = append(rows, total)
	for _, task := range testcase.Tasks() {
		row := db.breakdownFor(ByTask(task))
		row.Task = task
		rows = append(rows, row)
	}
	return rows
}

func (db *DB) breakdownFor(pred func(*core.Run) bool) Breakdown {
	var b Breakdown
	for _, r := range db.runs {
		if pred != nil && !pred(r) {
			continue
		}
		disc := r.Terminated == core.Discomfort
		switch {
		case r.Blank && disc:
			b.BlankDiscomforted++
		case r.Blank:
			b.BlankExhausted++
		case disc:
			b.NonBlankDiscomforted++
		default:
			b.NonBlankExhausted++
		}
	}
	return b
}

// Metrics holds the three derived metrics for one task/resource cell:
// f_d (Figure 14), c_0.05 (Figure 15) and c_a with its 95% CI
// (Figure 16). HasC05 and HasCa are false in the paper's "insufficient
// information" (*) cases.
type Metrics struct {
	Task     testcase.Task     // "" for the Total row
	Resource testcase.Resource // "" for the Total column
	Fd       float64
	C05      float64
	HasC05   bool
	Ca       float64
	CaLo     float64
	CaHi     float64
	HasCa    bool
	DfCount  int
	ExCount  int
}

// metricsFromCDF derives the metric cell from a CDF.
func metricsFromCDF(c *stats.CDF) Metrics {
	m := Metrics{Fd: c.Fd(), DfCount: c.DfCount(), ExCount: c.ExCount()}
	m.C05, m.HasC05 = c.Percentile(0.05)
	m.Ca, m.CaLo, m.CaHi, m.HasCa = c.MeanLevelCI()
	return m
}

// MetricsTable computes Figures 14-16 in one pass: one cell per
// task/resource from ramp runs, a Total row aggregating tasks per
// resource, exactly as the paper's tables are laid out.
func (db *DB) MetricsTable() []Metrics {
	var out []Metrics
	for _, task := range testcase.Tasks() {
		for _, res := range testcase.Resources() {
			m := metricsFromCDF(db.TaskResourceCDF(task, res))
			m.Task, m.Resource = task, res
			out = append(out, m)
		}
	}
	for _, res := range testcase.Resources() {
		m := metricsFromCDF(db.ResourceCDF(res))
		m.Resource = res
		out = append(out, m)
	}
	return out
}

// Cell returns the metrics for a task/resource pair from a MetricsTable
// result; task "" selects the Total row.
func Cell(table []Metrics, task testcase.Task, res testcase.Resource) (Metrics, error) {
	for _, m := range table {
		if m.Task == task && m.Resource == res {
			return m, nil
		}
	}
	return Metrics{}, fmt.Errorf("analysis: no cell for (%q, %q)", task, res)
}
