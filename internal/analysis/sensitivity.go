package analysis

import (
	"uucs/internal/testcase"
)

// Sensitivity is the L/M/H judgement of the paper's Figure 13. The paper
// calls its totals "overall judgements from the study of the CDFs"; this
// file encodes the judgement as an explicit, documented rule so it is
// reproducible: the base letter comes from c_0.05 against per-resource
// bands (how early do the first users react, on the resource's natural
// scale), demoted one level when f_d is low (most users never react at
// all). Applied to the paper's own Figure 14/15 numbers, the rule
// reproduces all 12 task/resource letters of Figure 13.
type Sensitivity int

// Sensitivity levels.
const (
	Low Sensitivity = iota
	Medium
	High
)

// String renders the level as the paper's single letters.
func (s Sensitivity) String() string {
	switch s {
	case Low:
		return "L"
	case Medium:
		return "M"
	case High:
		return "H"
	default:
		return "?"
	}
}

// sensitivityBands gives, per resource, the c_0.05 levels at and above
// which the judgement drops from High to Medium and from Medium to Low.
var sensitivityBands = map[testcase.Resource][2]float64{
	testcase.CPU:    {0.35, 2.0},
	testcase.Memory: {0.05, 0.5},
	testcase.Disk:   {2.2, 2.6},
}

// fdDemoteBelow is the f_d under which the judgement is demoted one
// level: if barely anyone reacts across the whole explored range, the
// context is not sensitive even if its earliest reactions come early.
const fdDemoteBelow = 0.30

// Judge converts a metrics cell into the Figure 13 letter.
func Judge(m Metrics) Sensitivity {
	bands, ok := sensitivityBands[m.Resource]
	if !ok || !m.HasC05 {
		// No reactions at all within the explored range.
		return Low
	}
	var s Sensitivity
	switch {
	case m.C05 < bands[0]:
		s = High
	case m.C05 < bands[1]:
		s = Medium
	default:
		s = Low
	}
	if m.Fd < fdDemoteBelow && s > Low {
		s--
	}
	return s
}

// SensitivityTable computes the Figure 13 letters for every
// task/resource cell plus the Total row, from a MetricsTable result.
func SensitivityTable(table []Metrics) map[testcase.Task]map[testcase.Resource]Sensitivity {
	out := make(map[testcase.Task]map[testcase.Resource]Sensitivity)
	for _, m := range table {
		if _, ok := out[m.Task]; !ok {
			out[m.Task] = make(map[testcase.Resource]Sensitivity)
		}
		out[m.Task][m.Resource] = Judge(m)
	}
	return out
}
