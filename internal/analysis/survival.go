package analysis

import (
	"fmt"

	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Survival analysis over run records: the Kaplan-Meier treatment of the
// study's censored data. A run that exhausted at the top of its ramp is
// a right-censored observation of the user's true discomfort level; the
// paper's empirical CDFs saturate at f_d, while the KM estimator
// recovers the underlying tolerance distribution.

// KMCurve builds the Kaplan-Meier discomfort curve over the given runs:
// discomforted runs contribute events at their level, exhausted runs
// contribute censored observations at the largest contention their
// testcase explored.
func KMCurve(runs []*core.Run) ([]stats.KMPoint, error) {
	var obs []stats.Censored
	for _, r := range runs {
		lvl, ok := r.Level()
		if !ok {
			continue
		}
		obs = append(obs, stats.Censored{Level: lvl, Censored: r.Terminated != core.Discomfort})
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("analysis: no leveled runs for a KM curve")
	}
	return stats.KaplanMeier(obs)
}

// KMResourceCurve builds the KM curve for one resource's ramp runs
// across all tasks — the survival counterpart of Figures 10-12.
func (db *DB) KMResourceCurve(res testcase.Resource) ([]stats.KMPoint, error) {
	return KMCurve(db.Filter(ByResource(res), ByShape(testcase.ShapeRamp)))
}

// KMC05 returns the Kaplan-Meier estimate of c_0.05: the level at which
// 5% of the underlying population is estimated to be discomforted. It
// is never below the naive CDF's c_0.05 denominator treatment... in
// fact with censoring the KM estimate reaches 5% at or before the naive
// CDF, because censored runs shrink the risk set instead of diluting
// the numerator.
func KMC05(curve []stats.KMPoint) (float64, bool) {
	return stats.KMQuantile(curve, 0.05)
}
