package analysis

import (
	"strings"
	"testing"

	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/testcase"
)

// mkRun builds a minimal run record for analysis tests.
func mkRun(task testcase.Task, res testcase.Resource, shape testcase.Shape,
	user int, term core.Termination, level float64) *core.Run {
	r := &core.Run{
		TestcaseID:      "t",
		Task:            task,
		UserID:          user,
		Shape:           shape,
		Terminated:      term,
		Offset:          60,
		PrimaryResource: res,
		Levels:          map[testcase.Resource]float64{},
	}
	if res != "" {
		r.Levels[res] = level
	} else {
		r.Blank = true
	}
	return r
}

func TestDBFilter(t *testing.T) {
	db := NewDB([]*core.Run{
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 0, core.Discomfort, 2),
		mkRun(testcase.Word, testcase.Disk, testcase.ShapeRamp, 0, core.Exhausted, 7),
		mkRun(testcase.Quake, testcase.CPU, testcase.ShapeStep, 1, core.Discomfort, 0.5),
		mkRun(testcase.Quake, "", testcase.ShapeBlank, 1, core.Exhausted, 0),
	})
	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := len(db.Filter(ByTask(testcase.Word))); got != 2 {
		t.Errorf("ByTask = %d", got)
	}
	if got := len(db.Filter(ByResource(testcase.CPU))); got != 2 {
		t.Errorf("ByResource = %d", got)
	}
	if got := len(db.Filter(ByShape(testcase.ShapeRamp))); got != 2 {
		t.Errorf("ByShape = %d", got)
	}
	if got := len(db.Filter(Blank())); got != 1 {
		t.Errorf("Blank = %d", got)
	}
	if got := len(db.Filter(NonBlank(), Discomforted())); got != 2 {
		t.Errorf("NonBlank+Discomforted = %d", got)
	}
	db.Add(mkRun(testcase.IE, testcase.Memory, testcase.ShapeRamp, 2, core.Discomfort, 0.4))
	if db.Len() != 5 {
		t.Errorf("Add failed: %d", db.Len())
	}
}

func TestCDFConstruction(t *testing.T) {
	runs := []*core.Run{
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 0, core.Discomfort, 1),
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 1, core.Discomfort, 3),
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 2, core.Exhausted, 7),
		mkRun(testcase.Word, "", testcase.ShapeBlank, 3, core.Discomfort, 0), // ignored: no level axis
	}
	c := CDF(runs)
	if c.DfCount() != 2 || c.ExCount() != 1 {
		t.Fatalf("CDF counts df=%d ex=%d", c.DfCount(), c.ExCount())
	}
	if got := c.Fd(); got < 0.66 || got > 0.67 {
		t.Errorf("Fd = %v", got)
	}
}

func TestBreakdown(t *testing.T) {
	db := NewDB([]*core.Run{
		mkRun(testcase.Quake, testcase.CPU, testcase.ShapeRamp, 0, core.Discomfort, 1),
		mkRun(testcase.Quake, "", testcase.ShapeBlank, 0, core.Discomfort, 0),
		mkRun(testcase.Quake, "", testcase.ShapeBlank, 1, core.Exhausted, 0),
		mkRun(testcase.Word, testcase.Disk, testcase.ShapeStep, 0, core.Exhausted, 5),
	})
	rows := db.Breakdown()
	if len(rows) != 5 {
		t.Fatalf("breakdown rows = %d", len(rows))
	}
	total := rows[0]
	if total.NonBlankDiscomforted != 1 || total.NonBlankExhausted != 1 ||
		total.BlankDiscomforted != 1 || total.BlankExhausted != 1 {
		t.Errorf("total row: %+v", total)
	}
	if nf := total.NoiseFloor(); nf != 0.5 {
		t.Errorf("noise floor = %v", nf)
	}
	var quakeRow Breakdown
	for _, row := range rows[1:] {
		if row.Task == testcase.Quake {
			quakeRow = row
		}
	}
	if quakeRow.NoiseFloor() != 0.5 {
		t.Errorf("quake noise floor = %v", quakeRow.NoiseFloor())
	}
	empty := Breakdown{}
	if empty.NoiseFloor() != 0 {
		t.Error("empty breakdown noise floor should be 0")
	}
}

func TestMetricsTableAndCell(t *testing.T) {
	var runs []*core.Run
	for i := 0; i < 20; i++ {
		level := 0.5 + float64(i)*0.1
		runs = append(runs, mkRun(testcase.IE, testcase.CPU, testcase.ShapeRamp, i, core.Discomfort, level))
	}
	runs = append(runs, mkRun(testcase.IE, testcase.CPU, testcase.ShapeRamp, 20, core.Exhausted, 2))
	db := NewDB(runs)
	table := db.MetricsTable()
	if len(table) != 15 { // 4 tasks x 3 resources + 3 totals
		t.Fatalf("table size = %d", len(table))
	}
	m, err := Cell(table, testcase.IE, testcase.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if m.DfCount != 20 || m.ExCount != 1 {
		t.Errorf("cell counts: %+v", m)
	}
	if !m.HasC05 || m.C05 != 0.6 { // ceil(0.05*21) = 2nd of sorted levels
		t.Errorf("c05 = %v (has %v)", m.C05, m.HasC05)
	}
	if !m.HasCa || m.Ca < 1.4 || m.Ca > 1.5 {
		t.Errorf("ca = %v", m.Ca)
	}
	// Totals row aggregates per resource.
	tm, err := Cell(table, "", testcase.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if tm.DfCount != 20 {
		t.Errorf("total cell: %+v", tm)
	}
	if _, err := Cell(table, "bogus", testcase.CPU); err == nil {
		t.Error("bogus cell lookup succeeded")
	}
	// Empty cells report no metrics.
	em, err := Cell(table, testcase.Word, testcase.Memory)
	if err != nil {
		t.Fatal(err)
	}
	if em.HasC05 || em.HasCa {
		t.Error("empty cell should have no c05/ca")
	}
}

func TestSensitivityString(t *testing.T) {
	if Low.String() != "L" || Medium.String() != "M" || High.String() != "H" {
		t.Error("letters wrong")
	}
	if Sensitivity(9).String() != "?" {
		t.Error("unknown letter")
	}
}

func TestSensitivityTable(t *testing.T) {
	table := []Metrics{
		{Task: testcase.Word, Resource: testcase.CPU, Fd: 0.71, C05: 3.06, HasC05: true},
		{Task: testcase.Quake, Resource: testcase.CPU, Fd: 0.95, C05: 0.18, HasC05: true},
	}
	st := SensitivityTable(table)
	if st[testcase.Word][testcase.CPU] != Low {
		t.Error("Word CPU should be Low")
	}
	if st[testcase.Quake][testcase.CPU] != High {
		t.Error("Quake CPU should be High")
	}
}

func TestJudgeUnknownResource(t *testing.T) {
	if got := Judge(Metrics{Resource: "gpu", Fd: 0.9, C05: 0.01, HasC05: true}); got != Low {
		t.Errorf("unknown resource judged %v, want Low", got)
	}
}

func TestFrogInPot(t *testing.T) {
	var runs []*core.Run
	// 10 users: ramp click level always 0.2 above their step click level.
	for i := 0; i < 10; i++ {
		stepLvl := 1.0 + float64(i)*0.05
		gap := 0.2 + 0.01*float64(i%3) // slight spread so the t-test has variance
		runs = append(runs,
			mkRun(testcase.Powerpoint, testcase.CPU, testcase.ShapeRamp, i, core.Discomfort, stepLvl+gap),
			mkRun(testcase.Powerpoint, testcase.CPU, testcase.ShapeStep, i, core.Discomfort, stepLvl))
	}
	// One exhausted step user: excluded from pairing.
	runs = append(runs,
		mkRun(testcase.Powerpoint, testcase.CPU, testcase.ShapeRamp, 10, core.Discomfort, 1.5),
		mkRun(testcase.Powerpoint, testcase.CPU, testcase.ShapeStep, 10, core.Exhausted, 1.0))
	db := NewDB(runs)
	fr, err := db.FrogInPot(testcase.Powerpoint, testcase.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pairs != 10 {
		t.Fatalf("pairs = %d", fr.Pairs)
	}
	if fr.FracHigherInRamp != 1.0 {
		t.Errorf("frac = %v", fr.FracHigherInRamp)
	}
	if fr.Result.Diff < 0.19 || fr.Result.Diff > 0.21 {
		t.Errorf("diff = %v", fr.Result.Diff)
	}
	if fr.Result.P > 0.001 {
		t.Errorf("p = %v for a perfectly consistent effect", fr.Result.P)
	}
}

func TestFrogInPotNoPairs(t *testing.T) {
	db := NewDB(nil)
	if _, err := db.FrogInPot(testcase.Word, testcase.CPU); err == nil {
		t.Error("expected error with no data")
	}
}

func TestSkillDifferences(t *testing.T) {
	users := make(map[int]*comfort.User)
	var runs []*core.Run
	// Power users click at low levels, beginners at high levels — a
	// strong, detectable effect in Quake/CPU.
	for i := 0; i < 24; i++ {
		rating := comfort.Power
		level := 0.4 + 0.02*float64(i%12)
		if i >= 12 {
			rating = comfort.Typical
			level = 0.8 + 0.02*float64(i%12)
		}
		users[i] = &comfort.User{ID: i, Ratings: map[comfort.Domain]comfort.Rating{
			comfort.DomainQuake: rating, comfort.DomainPC: comfort.Typical, comfort.DomainWindows: comfort.Typical,
		}}
		runs = append(runs, mkRun(testcase.Quake, testcase.CPU, testcase.ShapeRamp, i, core.Discomfort, level))
	}
	db := NewDB(runs)
	diffs := db.SkillDifferences(users, 0.05)
	if len(diffs) == 0 {
		t.Fatal("no differences found")
	}
	found := false
	for _, d := range diffs {
		if d.Task == testcase.Quake && d.Resource == testcase.CPU && d.Domain == comfort.DomainQuake &&
			d.Hi == comfort.Power && d.Lo == comfort.Typical {
			found = true
			if d.Result.Diff < 0.3 {
				t.Errorf("diff = %v, want ~0.4", d.Result.Diff)
			}
			if d.Rating() != "Quake Power vs. Typical" {
				t.Errorf("Rating() = %q", d.Rating())
			}
		}
	}
	if !found {
		t.Error("Quake/CPU Power vs Typical difference not detected")
	}
}

func TestRenderTimeline(t *testing.T) {
	run := &core.Run{
		TestcaseID: "t", Task: testcase.Quake, UserID: 2,
		Terminated: core.Discomfort, Offset: 30,
		Trace: []core.TraceSample{
			{Time: 5, Class: "echo", Latency: 0.01, Label: "key"},
			{Time: 15, Class: "op", Latency: 0.4, Label: "op"},
			{Time: 29, Class: "frame", Latency: 0.2, FPS: 40, Label: "frame-window"},
		},
	}
	out := RenderTimeline(run, 50)
	for _, want := range []string{"discomfort at 30.0s", "e", "o", "F", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	empty := &core.Run{TestcaseID: "t", Task: testcase.Word, Terminated: core.Exhausted, Offset: 120}
	if !strings.Contains(RenderTimeline(empty, 40), "no trace") {
		t.Error("empty trace not reported")
	}
}
