package analysis

import (
	"testing"

	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func TestKMCurveFromRuns(t *testing.T) {
	runs := []*core.Run{
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 0, core.Discomfort, 1),
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 1, core.Discomfort, 2),
		mkRun(testcase.Word, testcase.CPU, testcase.ShapeRamp, 2, core.Exhausted, 7),
		mkRun(testcase.Word, "", testcase.ShapeBlank, 3, core.Discomfort, 0), // no level: skipped
	}
	curve, err := KMCurve(runs)
	if err != nil {
		t.Fatal(err)
	}
	if err := stats.ValidateKM(curve); err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("steps = %d", len(curve))
	}
	// 3 at risk, event at 1 -> S=2/3; event at 2 -> S=1/3.
	if got := stats.KMDiscomfortAt(curve, 2); got < 0.66 || got > 0.67 {
		t.Errorf("KM discomfort at 2 = %v, want 2/3", got)
	}
}

func TestKMCurveNoData(t *testing.T) {
	if _, err := KMCurve(nil); err == nil {
		t.Error("empty input accepted")
	}
	blankOnly := []*core.Run{mkRun(testcase.Word, "", testcase.ShapeBlank, 0, core.Exhausted, 0)}
	if _, err := KMCurve(blankOnly); err == nil {
		t.Error("blank-only input accepted")
	}
}

func TestKMResourceCurveAndC05(t *testing.T) {
	var runs []*core.Run
	for i := 0; i < 40; i++ {
		term := core.Discomfort
		level := 0.1 * float64(i+1)
		if i%4 == 0 {
			term = core.Exhausted
			level = 5
		}
		runs = append(runs, mkRun(testcase.Quake, testcase.CPU, testcase.ShapeRamp, i, term, level))
	}
	db := NewDB(runs)
	curve, err := db.KMResourceCurve(testcase.CPU)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := KMC05(curve)
	if !ok {
		t.Fatal("KM c05 unreachable")
	}
	// The KM estimate must reach 5% at or before the naive CDF does,
	// because censored runs shrink the risk set instead of diluting it.
	naive, ok2 := db.ResourceCDF(testcase.CPU).Percentile(0.05)
	if !ok2 {
		t.Fatal("naive c05 unavailable")
	}
	if v > naive+1e-9 {
		t.Errorf("KM c05 %v later than naive %v", v, naive)
	}
}
