package exerciser

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uucs/internal/testcase"
)

// MemExerciser implements the paper's memory exerciser: "It keeps a pool
// of allocated pages equal to the size of physical memory in the machine
// and then touches the fraction corresponding to the contention level
// with a high frequency, making its working set size inflate to that
// fraction of the physical memory" (§2.2). The paper avoids contention
// above 1.0 because it "immediately results in thrashing which is not
// only very irritating to all users ... but also very difficult to stop
// punctually"; Play enforces that bound.
type MemExerciser struct {
	// PoolMB is the pool size; 0 auto-detects physical memory.
	PoolMB int
	// PageKB is the touch granularity.
	PageKB int
	// Subinterval is the touch-pass pacing interval.
	Subinterval float64

	clk Clock
	// touch visits one page; tests inject a counter.
	touch func(page []byte)

	pool [][]byte
}

// NewMem returns a real memory exerciser. poolMB of 0 sizes the pool to
// physical memory, as in the paper.
func NewMem(poolMB int) *MemExerciser {
	return &MemExerciser{
		PoolMB:      poolMB,
		PageKB:      4,
		Subinterval: DefaultSubinterval,
		clk:         NewRealClock(),
		touch:       func(p []byte) { p[0]++ },
	}
}

// NewMemForTest injects a clock and touch recorder.
func NewMemForTest(poolMB int, clk Clock, touch func([]byte)) *MemExerciser {
	m := NewMem(poolMB)
	m.clk = clk
	m.touch = touch
	return m
}

// Resource implements Exerciser.
func (e *MemExerciser) Resource() testcase.Resource { return testcase.Memory }

// Play implements Exerciser: it allocates the pool, then each
// subinterval touches the first fraction of pages given by the
// contention level. Pages beyond the touched fraction stay allocated but
// cold, so the OS can reclaim them — only the touched fraction is truly
// borrowed.
func (e *MemExerciser) Play(ctx context.Context, f testcase.ExerciseFunction) error {
	if f.Max() > 1 {
		return fmt.Errorf("exerciser: memory contention %g > 1 would thrash (the paper avoids this)", f.Max())
	}
	if err := e.allocate(); err != nil {
		return err
	}
	defer func() { e.pool = nil }() // release to the collector

	return playback(ctx, e.clk, e.Subinterval, f, func(level, dt float64) error {
		if level < 0 {
			level = 0
		}
		if level > 1 {
			level = 1
		}
		target := int(level * float64(len(e.pool)))
		start := e.clk.Now()
		for i := 0; i < target; i++ {
			e.touch(e.pool[i])
			if i%4096 == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
		}
		// Sleep out the rest of the subinterval.
		if spent := e.clk.Now() - start; spent < dt {
			e.clk.Sleep(dt - spent)
		}
		return nil
	})
}

// allocate builds the page pool.
func (e *MemExerciser) allocate() error {
	poolMB := e.PoolMB
	if poolMB <= 0 {
		poolMB = PhysicalMemoryMB()
	}
	if poolMB <= 0 {
		return fmt.Errorf("exerciser: cannot determine pool size")
	}
	if e.PageKB <= 0 {
		return fmt.Errorf("exerciser: non-positive page size")
	}
	pages := poolMB * 1024 / e.PageKB
	if pages < 1 {
		pages = 1
	}
	// One backing slab, sliced into pages, so allocation is a single
	// request and touching has no pointer-chasing overhead.
	slab := make([]byte, pages*e.PageKB<<10)
	e.pool = make([][]byte, pages)
	for i := range e.pool {
		e.pool[i] = slab[i*e.PageKB<<10 : (i+1)*e.PageKB<<10]
	}
	return nil
}

// PhysicalMemoryMB reports the machine's physical memory from
// /proc/meminfo, or 0 when unavailable (non-Linux hosts must set PoolMB
// explicitly).
func PhysicalMemoryMB() int {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
