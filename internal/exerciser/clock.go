package exerciser

import (
	"sync"
	"time"
)

// Clock abstracts wall time so playback logic can be verified
// deterministically. Times and durations are in seconds.
type Clock interface {
	// Now returns monotonic time in seconds.
	Now() float64
	// Sleep blocks for d seconds.
	Sleep(d float64)
}

// RealClock is the machine's monotonic clock.
type RealClock struct{ origin time.Time }

// NewRealClock returns a clock anchored at construction time.
func NewRealClock() *RealClock { return &RealClock{origin: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() float64 { return time.Since(c.origin).Seconds() }

// Sleep implements Clock.
func (c *RealClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(d * float64(time.Second)))
}

// FakeClock advances only when slept on or stepped; it makes playback
// tests deterministic and instantaneous. It is safe for concurrent use
// so multi-worker exercisers can share one.
type FakeClock struct {
	mu  sync.Mutex
	now float64
}

// NewFakeClock starts at time zero.
func NewFakeClock() *FakeClock { return &FakeClock{} }

// Now implements Clock.
func (c *FakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the fake time.
func (c *FakeClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Advance moves the clock forward without sleeping semantics.
func (c *FakeClock) Advance(d float64) { c.Sleep(d) }
