// Package exerciser implements the paper's resource exercisers (§2.2):
// components that apply the contention described by an exercise function
// to a real machine. The CPU exerciser performs time-based playback with
// calibrated busy-wait loops and stochastic sleeping; the disk exerciser
// runs competing seek+write streams against a scratch file; the memory
// exerciser keeps a pool of allocated pages and touches the fraction
// corresponding to the contention level; and the network exerciser — the
// variant the paper built but excluded from its study because it impacts
// hosts beyond the client machine — pushes paced traffic at a loopback
// sink.
//
// Playback follows the paper's mechanism exactly: time is divided into
// subintervals "each larger than the scheduling resolution of the
// machine"; at contention c, floor(c) workers are busy in every
// subinterval and one more is busy with probability frac(c). The
// scheduling logic is clock-abstracted, so the same code is verified
// deterministically under a fake clock (see clock.go) and runs against
// the real machine in cmd/uucs-exercise. The simulated counterpart used
// by the study lives in internal/hostsim; its tests verify that an
// equal-priority thread observes the 1/(1+c) slowdown this package's
// workers are designed to produce.
package exerciser

import (
	"context"
	"fmt"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Exerciser applies one resource's exercise function.
type Exerciser interface {
	// Resource identifies what this exerciser borrows.
	Resource() testcase.Resource
	// Play applies the exercise function from time zero until it is
	// exhausted or the context is canceled — the paper stops exercisers
	// "immediately" on user feedback, which maps to context
	// cancellation. Play blocks; it returns nil on exhaustion and the
	// context error on cancellation.
	Play(ctx context.Context, f testcase.ExerciseFunction) error
}

// Defaults shared by the exercisers.
const (
	// DefaultSubinterval is the playback subinterval. The paper requires
	// it to exceed the scheduler's resolution; 100ms is comfortably above
	// any desktop OS quantum.
	DefaultSubinterval = 0.100
)

// playback runs the paper's subinterval loop: for each subinterval it
// evaluates the exercise function and calls step with the level and the
// subinterval duration; step does the resource-specific work (spin,
// write, touch, send) and must consume approximately dt of wall time
// when busy. The clock abstracts real time for tests.
func playback(ctx context.Context, clk Clock, sub float64, f testcase.ExerciseFunction,
	step func(level float64, dt float64) error) error {
	if sub <= 0 {
		return fmt.Errorf("exerciser: non-positive subinterval %g", sub)
	}
	duration := f.Duration()
	start := clk.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		elapsed := clk.Now() - start
		if elapsed >= duration-1e-9 {
			return nil
		}
		dt := sub
		if rem := duration - elapsed; rem < dt {
			dt = rem
		}
		level := f.Value(elapsed)
		if err := step(level, dt); err != nil {
			return err
		}
	}
}

// workerBusy decides whether worker idx is busy in a subinterval at the
// given contention level, using the paper's floor+Bernoulli rule.
func workerBusy(idx int, level float64, rng *stats.Stream) bool {
	if level <= 0 {
		return false
	}
	whole := int(level)
	switch {
	case idx < whole:
		return true
	case idx == whole:
		frac := level - float64(whole)
		return frac > 0 && rng.Bool(frac)
	default:
		return false
	}
}

// workersNeeded returns how many workers an exercise function requires.
func workersNeeded(f testcase.ExerciseFunction) int {
	maxLevel := f.Max()
	n := int(maxLevel)
	if float64(n) < maxLevel {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
