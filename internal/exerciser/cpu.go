package exerciser

import (
	"context"
	"fmt"
	"sync"
	"time"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// CPUExerciser implements the paper's CPU exerciser: time-based playback
// of the exercise function with busy-wait loops (§2.2, building on
// Dinda & O'Hallaron's host-load trace playback). At contention 1.5, one
// worker executes busy subintervals with no sleeps and a second executes
// busy subintervals with probability 0.5, sleeping otherwise — so a
// competing equal-priority thread runs at 1/(1.5+1) = 40% of full speed.
type CPUExerciser struct {
	// Subinterval is the busy/sleep decision interval.
	Subinterval float64
	// Seed fixes the stochastic borrowing.
	Seed uint64

	// clk and burn are the real-machine bindings; tests replace them.
	clk  Clock
	burn func(d float64)
}

// NewCPU returns a CPU exerciser bound to the real clock and a
// calibrated busy-wait burner.
func NewCPU(seed uint64) *CPUExerciser {
	return &CPUExerciser{
		Subinterval: DefaultSubinterval,
		Seed:        seed,
		clk:         NewRealClock(),
		burn:        Spin,
	}
}

// NewCPUForTest returns a CPU exerciser with an injected clock and
// burner, for deterministic verification of the playback logic.
func NewCPUForTest(seed uint64, clk Clock, burn func(d float64)) *CPUExerciser {
	return &CPUExerciser{Subinterval: DefaultSubinterval, Seed: seed, clk: clk, burn: burn}
}

// Resource implements Exerciser.
func (e *CPUExerciser) Resource() testcase.Resource { return testcase.CPU }

// Play implements Exerciser using a coordinator/worker design: the
// coordinator walks subintervals and dispatches busy work; each worker
// goroutine spins when told to. Workers never sleep on the shared clock,
// so playback is exact under both real and fake clocks.
func (e *CPUExerciser) Play(ctx context.Context, f testcase.ExerciseFunction) error {
	n := workersNeeded(f)
	type job struct{ d float64 }
	chans := make([]chan job, n)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan job)
		wg.Add(1)
		go func(ch <-chan job) {
			defer wg.Done()
			for j := range ch {
				e.burn(j.d)
			}
		}(chans[i])
	}
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}()

	rng := stats.NewStream(e.Seed)
	return playback(ctx, e.clk, e.Subinterval, f, func(level, dt float64) error {
		busy := 0
		for i := 0; i < n; i++ {
			if workerBusy(i, level, rng) {
				busy++
			}
		}
		// Dispatch the busy workers; they spin concurrently while the
		// coordinator sleeps through the subinterval.
		for i := 0; i < busy; i++ {
			select {
			case chans[i] <- job{d: dt}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		e.clk.Sleep(dt)
		return nil
	})
}

// calibration state for Spin.
var (
	calOnce     sync.Once
	calChunk    int
	calIterRate float64
)

// Calibrate measures the busy-wait loop rate (iterations per second) and
// derives the chunk size Spin uses between clock checks. It runs once;
// later calls return the cached rate.
func Calibrate() float64 {
	calOnce.Do(func() {
		const probe = 20 * time.Millisecond
		start := time.Now()
		iters := 0
		for time.Since(start) < probe {
			for i := 0; i < 1000; i++ {
				spinSink++
			}
			iters += 1000
		}
		elapsed := time.Since(start).Seconds()
		calIterRate = float64(iters) / elapsed
		// Check the clock roughly every 50 microseconds of spinning.
		calChunk = int(calIterRate * 50e-6)
		if calChunk < 100 {
			calChunk = 100
		}
	})
	return calIterRate
}

// spinSink defeats dead-code elimination of the busy loop.
var spinSink uint64

// Spin busy-waits for d seconds using the calibrated loop.
func Spin(d float64) {
	if d <= 0 {
		return
	}
	Calibrate()
	deadline := time.Now().Add(time.Duration(d * float64(time.Second)))
	for time.Now().Before(deadline) {
		for i := 0; i < calChunk; i++ {
			spinSink++
		}
	}
}

// VerifyPlayback is the §2.2 verification for the real CPU exerciser:
// it plays a constant-contention function for the given duration while a
// competing calibrated reference loop runs, and returns the reference
// loop's achieved rate relative to running alone. On an otherwise idle
// machine with at least 1+c free cores unavailable (i.e. a saturated
// machine), the expectation is 1/(1+c); on multi-core machines with idle
// cores the reference thread is not slowed until cores fill up, so this
// is primarily useful pinned to one CPU.
func VerifyPlayback(c float64, duration float64, seed uint64) (float64, error) {
	if c < 0 || duration <= 0 {
		return 0, fmt.Errorf("exerciser: invalid contention %g or duration %g", c, duration)
	}
	Calibrate()
	// Solo baseline.
	solo := countIters(duration / 2)

	f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(c, duration)}
	ex := NewCPU(seed)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ex.Play(ctx, f) }()
	contended := countIters(duration / 2)
	cancel()
	<-done
	if solo == 0 {
		return 0, fmt.Errorf("exerciser: calibration produced no iterations")
	}
	return float64(contended) / float64(solo), nil
}

// countIters runs the reference loop for d seconds and counts iterations.
func countIters(d float64) int {
	deadline := time.Now().Add(time.Duration(d * float64(time.Second)))
	iters := 0
	for time.Now().Before(deadline) {
		for i := 0; i < calChunk; i++ {
			spinSink++
		}
		iters += calChunk
	}
	return iters
}

// constLevels builds a constant exercise vector.
func constLevels(c, duration float64) []float64 {
	n := int(duration)
	if n < 1 {
		n = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = c
	}
	return vals
}
