package exerciser

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// NetExerciser implements the network exerciser the paper prototyped but
// excluded from its study because "all create a significant impact
// beyond the client machine" (§2.2) — implemented here as the paper's
// planned future work. Contention level c borrows c times UnitKBps of
// network bandwidth by pacing UDP datagrams at a sink. Pointing it
// anywhere but loopback recreates the paper's objection, so the
// constructor refuses non-loopback sinks unless explicitly overridden.
type NetExerciser struct {
	// SinkAddr is the UDP destination.
	SinkAddr string
	// UnitKBps is the bandwidth meaning of contention 1.0.
	UnitKBps float64
	// PacketBytes is the datagram size.
	PacketBytes int
	// Subinterval is the pacing interval.
	Subinterval float64
	// AllowNonLoopback permits external sinks (off by default).
	AllowNonLoopback bool
	// Seed randomizes payloads.
	Seed uint64

	clk Clock
	// send transmits one datagram; tests may inject a recorder.
	send func(conn *net.UDPConn, payload []byte) error
}

// NewNet returns a network exerciser targeting the given UDP sink.
func NewNet(sinkAddr string, unitKBps float64, seed uint64) *NetExerciser {
	return &NetExerciser{
		SinkAddr:    sinkAddr,
		UnitKBps:    unitKBps,
		PacketBytes: 1024,
		Subinterval: DefaultSubinterval,
		Seed:        seed,
		clk:         NewRealClock(),
		send: func(conn *net.UDPConn, payload []byte) error {
			_, err := conn.Write(payload)
			return err
		},
	}
}

// Resource implements Exerciser. Network is not one of the study's three
// resources; it reports as "network" for run records of extended
// deployments.
func (e *NetExerciser) Resource() testcase.Resource { return testcase.Resource("network") }

// Play implements Exerciser: each subinterval it sends enough paced
// datagrams to consume level x UnitKBps.
func (e *NetExerciser) Play(ctx context.Context, f testcase.ExerciseFunction) error {
	if e.UnitKBps <= 0 || e.PacketBytes <= 0 {
		return fmt.Errorf("exerciser: net needs positive unit bandwidth and packet size")
	}
	raddr, err := net.ResolveUDPAddr("udp", e.SinkAddr)
	if err != nil {
		return fmt.Errorf("exerciser: net sink: %w", err)
	}
	if !e.AllowNonLoopback && !raddr.IP.IsLoopback() {
		return fmt.Errorf("exerciser: refusing non-loopback sink %s (the paper excluded network exercising because it impacts other hosts; set AllowNonLoopback to override)", e.SinkAddr)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	rng := stats.NewStream(e.Seed)
	payload := make([]byte, e.PacketBytes)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	return playback(ctx, e.clk, e.Subinterval, f, func(level, dt float64) error {
		if level < 0 {
			level = 0
		}
		bytes := level * e.UnitKBps * 1024 * dt
		packets := int(bytes / float64(e.PacketBytes))
		start := e.clk.Now()
		for i := 0; i < packets; i++ {
			if err := e.send(conn, payload); err != nil {
				return err
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		if spent := e.clk.Now() - start; spent < dt {
			e.clk.Sleep(dt - spent)
		}
		return nil
	})
}

// Sink is a UDP discard service for loopback network exercising.
type Sink struct {
	conn  *net.UDPConn
	count atomic.Int64
	bytes atomic.Int64
	done  chan struct{}
}

// NewSink starts a sink on addr (e.g. "127.0.0.1:0") and returns it with
// its bound address.
func NewSink(addr string) (*Sink, string, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, "", err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, "", err
	}
	s := &Sink{conn: conn, done: make(chan struct{})}
	go s.drain()
	return s, conn.LocalAddr().String(), nil
}

func (s *Sink) drain() {
	defer close(s.done)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.count.Add(1)
		s.bytes.Add(int64(n))
	}
}

// Packets returns how many datagrams arrived.
func (s *Sink) Packets() int64 { return s.count.Load() }

// Bytes returns how many payload bytes arrived.
func (s *Sink) Bytes() int64 { return s.bytes.Load() }

// Close stops the sink.
func (s *Sink) Close() error {
	err := s.conn.Close()
	<-s.done
	return err
}
