package exerciser

import (
	"context"
	"fmt"
	"sync"

	"uucs/internal/testcase"
)

// Set runs all of a testcase's exercise functions together on the real
// machine — the client core's execution path (paper Figure 5): "the
// appropriate exercisers are started, passed their exercise functions,
// synchronized, and then let run", and all stop immediately when the
// user expresses discomfort (context cancellation).
type Set struct {
	// CPU, Mem, Disk handle their resources; nil members fall back to
	// defaults built by NewSet.
	CPU  *CPUExerciser
	Mem  *MemExerciser
	Disk *DiskExerciser
}

// NewSet builds a real-machine exerciser set. scratchDir hosts the disk
// exerciser's file; diskFileMB sizes it (the paper used twice physical
// memory; anything large enough to defeat locality works with synced
// writes); memPoolMB of 0 auto-detects physical memory.
func NewSet(scratchDir string, diskFileMB, memPoolMB int, seed uint64) *Set {
	return &Set{
		CPU:  NewCPU(seed),
		Mem:  NewMem(memPoolMB),
		Disk: NewDisk(scratchDir, diskFileMB, seed+1),
	}
}

// Run plays every exercise function in the testcase concurrently and
// waits for all to finish. It returns the first error; context
// cancellation stops every exerciser immediately.
func (s *Set) Run(ctx context.Context, tc *testcase.Testcase) error {
	if err := tc.Validate(); err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	start := func(ex Exerciser, f testcase.ExerciseFunction) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ex.Play(ctx, f); err != nil && ctx.Err() == nil {
				errCh <- fmt.Errorf("%s exerciser: %w", ex.Resource(), err)
				cancel() // one failure stops the set
			}
		}()
	}
	for r, f := range tc.Functions {
		switch r {
		case testcase.CPU:
			if s.CPU == nil {
				return fmt.Errorf("exerciser: set has no CPU exerciser")
			}
			start(s.CPU, f)
		case testcase.Memory:
			if s.Mem == nil {
				return fmt.Errorf("exerciser: set has no memory exerciser")
			}
			start(s.Mem, f)
		case testcase.Disk:
			if s.Disk == nil {
				return fmt.Errorf("exerciser: set has no disk exerciser")
			}
			start(s.Disk, f)
		default:
			return fmt.Errorf("exerciser: no exerciser for resource %q", r)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return ctx.Err()
}
