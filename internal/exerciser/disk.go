package exerciser

import (
	"context"
	"fmt"
	"os"
	"sync"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// DiskExerciser implements the paper's disk-bandwidth exerciser: "the
// busy operation here is a random seek in a large file (2x the memory of
// the machine) followed by a write of a random amount of data. The write
// is forced to be write-through ... and synced" (§2.2). Contention c
// runs c competing seek+write streams (floor plus a probabilistic one).
//
// The scratch-file size is configurable: the paper's 2x-physical-memory
// sizing defeats the buffer cache, which O_SYNC-style syncing achieves
// directly here; tests use small files.
type DiskExerciser struct {
	// Dir is where the scratch file lives.
	Dir string
	// FileMB is the scratch file size.
	FileMB int
	// MaxWriteKB bounds the random write size per operation.
	MaxWriteKB int
	// Subinterval is the busy/sleep decision interval.
	Subinterval float64
	// Seed fixes stream randomness.
	Seed uint64

	clk Clock
	// op performs one seek+write against the scratch file; tests inject
	// a recorder. busyLoop runs ops for a subinterval.
	op func(f *os.File, size int64, rng *stats.Stream) error
}

// NewDisk returns a real disk exerciser writing a scratch file in dir.
func NewDisk(dir string, fileMB int, seed uint64) *DiskExerciser {
	return &DiskExerciser{
		Dir:         dir,
		FileMB:      fileMB,
		MaxWriteKB:  256,
		Subinterval: DefaultSubinterval,
		Seed:        seed,
		clk:         NewRealClock(),
		op:          seekWrite,
	}
}

// NewDiskForTest injects a clock and operation for deterministic tests.
func NewDiskForTest(dir string, fileMB int, seed uint64, clk Clock,
	op func(*os.File, int64, *stats.Stream) error) *DiskExerciser {
	d := NewDisk(dir, fileMB, seed)
	d.clk = clk
	d.op = op
	return d
}

// Resource implements Exerciser.
func (e *DiskExerciser) Resource() testcase.Resource { return testcase.Disk }

// Play implements Exerciser. Each busy stream performs one seek+write
// per subinterval dispatch; on a real disk the synced writes serialize
// in the device queue, producing the competing-stream contention the
// paper verified to level 7.
func (e *DiskExerciser) Play(ctx context.Context, f testcase.ExerciseFunction) error {
	if e.FileMB <= 0 {
		return fmt.Errorf("exerciser: disk scratch size must be positive, got %d MB", e.FileMB)
	}
	scratch, err := e.createScratch()
	if err != nil {
		return err
	}
	defer func() {
		scratch.Close()
		os.Remove(scratch.Name())
	}()

	n := workersNeeded(f)
	type job struct{ size int64 }
	chans := make([]chan job, n)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	rng := stats.NewStream(e.Seed)
	for i := range chans {
		chans[i] = make(chan job)
		wg.Add(1)
		go func(ch <-chan job, wrng *stats.Stream) {
			defer wg.Done()
			for j := range ch {
				if err := e.op(scratch, j.size, wrng); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(chans[i], rng.Fork())
	}
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}()

	fileBytes := int64(e.FileMB) << 20
	return playback(ctx, e.clk, e.Subinterval, f, func(level, dt float64) error {
		select {
		case err := <-errCh:
			return err
		default:
		}
		busy := 0
		for i := 0; i < n; i++ {
			if workerBusy(i, level, rng) {
				busy++
			}
		}
		for i := 0; i < busy; i++ {
			size := int64(rng.Range(4, float64(e.MaxWriteKB))) << 10
			if size > fileBytes {
				size = fileBytes
			}
			select {
			case chans[i] <- job{size: size}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		e.clk.Sleep(dt)
		return nil
	})
}

// createScratch makes the large file the streams seek within.
func (e *DiskExerciser) createScratch() (*os.File, error) {
	if err := os.MkdirAll(e.Dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(e.Dir, "uucs-disk-*.scratch")
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(e.FileMB) << 20); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return f, nil
}

// seekWrite is one real exerciser operation: random seek, random-size
// write, synced to the device.
func seekWrite(f *os.File, size int64, rng *stats.Stream) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	span := info.Size() - size
	if span < 0 {
		span = 0
	}
	off := int64(rng.Float64() * float64(span))
	buf := make([]byte, size)
	for i := 0; i < len(buf); i += 512 {
		buf[i] = byte(rng.Uint64())
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return err
	}
	return f.Sync()
}
