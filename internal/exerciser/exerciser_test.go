package exerciser

import (
	"context"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// burnRecorder collects dispatched busy durations thread-safely.
type burnRecorder struct {
	mu    sync.Mutex
	total float64
	calls int
}

func (r *burnRecorder) burn(d float64) {
	r.mu.Lock()
	r.total += d
	r.calls++
	r.mu.Unlock()
}

func (r *burnRecorder) snapshot() (float64, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.calls
}

func TestCPUPlaybackBusyFraction(t *testing.T) {
	// At constant contention c, total busy time over duration T must be
	// ~c*T — the defining property of time-based playback.
	for _, c := range []float64{0.5, 1.0, 1.5, 3.2} {
		clk := NewFakeClock()
		rec := &burnRecorder{}
		ex := NewCPUForTest(42, clk, rec.burn)
		f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(c, 120)}
		if err := ex.Play(context.Background(), f); err != nil {
			t.Fatalf("c=%v: %v", c, err)
		}
		busy, _ := rec.snapshot()
		want := c * 120
		if math.Abs(busy-want) > 0.08*want+1 {
			t.Errorf("c=%v: busy time %v, want ~%v", c, busy, want)
		}
	}
}

func TestCPUPlaybackTracksRamp(t *testing.T) {
	clk := NewFakeClock()
	var mu sync.Mutex
	perPhase := map[int]float64{} // busy seconds per 30s phase
	ex := NewCPUForTest(7, clk, func(d float64) {
		mu.Lock()
		perPhase[int(clk.Now()/30)] += d
		mu.Unlock()
	})
	f := testcase.Ramp(4, 120, 1)
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// A ramp's busy time must grow phase over phase.
	for p := 1; p < 4; p++ {
		if perPhase[p] <= perPhase[p-1] {
			t.Errorf("phase %d busy %v not greater than phase %d busy %v",
				p, perPhase[p], p-1, perPhase[p-1])
		}
	}
}

func TestCPUPlaybackCancellation(t *testing.T) {
	clk := NewFakeClock()
	rec := &burnRecorder{}
	ex := NewCPUForTest(1, clk, rec.burn)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(2, 60)}
	if err := ex.Play(ctx, f); err == nil {
		t.Fatal("canceled playback returned nil")
	}
	if _, calls := rec.snapshot(); calls != 0 {
		t.Errorf("canceled playback dispatched %d burns", calls)
	}
}

func TestCPUPlaybackExhaustsOnTime(t *testing.T) {
	clk := NewFakeClock()
	rec := &burnRecorder{}
	ex := NewCPUForTest(1, clk, rec.burn)
	f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(1, 10)}
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now(); math.Abs(got-10) > 0.2 {
		t.Errorf("playback consumed %v fake seconds, want ~10", got)
	}
}

func TestWorkerBusyRule(t *testing.T) {
	rng := stats.NewStream(3)
	// Integer level: workers below it always busy, others never.
	for i := 0; i < 100; i++ {
		if !workerBusy(0, 2, rng) || !workerBusy(1, 2, rng) {
			t.Fatal("worker below floor(c) must be busy")
		}
		if workerBusy(2, 2, rng) || workerBusy(3, 2, rng) {
			t.Fatal("worker at/above c must be idle for integer c")
		}
		if workerBusy(0, 0, rng) {
			t.Fatal("zero level must idle everyone")
		}
	}
	// Fractional level: the boundary worker is busy ~frac of the time.
	busy := 0
	n := 20000
	for i := 0; i < n; i++ {
		if workerBusy(1, 1.3, rng) {
			busy++
		}
	}
	frac := float64(busy) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("boundary worker busy fraction %v, want ~0.3", frac)
	}
}

func TestWorkersNeeded(t *testing.T) {
	cases := []struct {
		max  float64
		want int
	}{{0, 1}, {0.5, 1}, {1, 1}, {1.5, 2}, {2, 2}, {7.01, 8}}
	for _, c := range cases {
		f := testcase.ExerciseFunction{Rate: 1, Values: []float64{c.max}}
		if got := workersNeeded(f); got != c.want {
			t.Errorf("workersNeeded(max=%v) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestCalibrateAndSpin(t *testing.T) {
	rate := Calibrate()
	if rate <= 0 {
		t.Fatalf("calibration rate = %v", rate)
	}
	start := time.Now()
	Spin(0.02)
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.018 {
		t.Errorf("Spin(20ms) returned after %v", elapsed)
	}
	if elapsed > 0.2 {
		t.Errorf("Spin(20ms) took %v, far too long", elapsed)
	}
	Spin(-1) // must be a no-op
}

func TestRealCPUPlaybackShortRun(t *testing.T) {
	// A real 0.5s playback at contention 1 must consume about 0.5s of
	// wall time and actually spin.
	ex := NewCPU(1)
	f := testcase.ExerciseFunction{Rate: 1, Values: []float64{1}}
	start := time.Now()
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.9 || elapsed > 3 {
		t.Errorf("1s playback took %v", elapsed)
	}
}

func TestDiskPlaybackOpDispatch(t *testing.T) {
	clk := NewFakeClock()
	var mu sync.Mutex
	ops := 0
	var totalBytes int64
	ex := NewDiskForTest(t.TempDir(), 4, 5, clk, func(_ *os.File, size int64, _ *stats.Stream) error {
		mu.Lock()
		ops++
		totalBytes += size
		mu.Unlock()
		return nil
	})
	f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(2, 30)}
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 2 streams x 10 subintervals/s x 30s = ~600 ops.
	if ops < 550 || ops > 650 {
		t.Errorf("ops = %d, want ~600", ops)
	}
	if totalBytes <= 0 {
		t.Error("no bytes dispatched")
	}
}

func TestDiskPlaybackFractionalStreams(t *testing.T) {
	clk := NewFakeClock()
	var mu sync.Mutex
	ops := 0
	ex := NewDiskForTest(t.TempDir(), 4, 6, clk, func(*os.File, int64, *stats.Stream) error {
		mu.Lock()
		ops++
		mu.Unlock()
		return nil
	})
	f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(0.5, 60)}
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 0.5 streams x 600 subintervals = ~300 ops.
	if ops < 240 || ops > 360 {
		t.Errorf("ops = %d, want ~300", ops)
	}
}

func TestRealDiskExerciserWrites(t *testing.T) {
	dir := t.TempDir()
	ex := NewDisk(dir, 2, 7)
	ex.MaxWriteKB = 16
	f := testcase.ExerciseFunction{Rate: 2, Values: []float64{1, 1}} // 1 second
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	// The scratch file is removed after playback.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("scratch not cleaned up: %v", entries)
	}
}

func TestDiskValidation(t *testing.T) {
	ex := NewDisk(t.TempDir(), 0, 1)
	f := testcase.ExerciseFunction{Rate: 1, Values: []float64{1}}
	if err := ex.Play(context.Background(), f); err == nil {
		t.Error("zero-size scratch accepted")
	}
}

func TestMemPlaybackTouchesFraction(t *testing.T) {
	clk := NewFakeClock()
	var mu sync.Mutex
	touches := 0
	ex := NewMemForTest(1, clk, func([]byte) { // 1 MB pool = 256 pages
		mu.Lock()
		touches++
		mu.Unlock()
	})
	f := testcase.ExerciseFunction{Rate: 1, Values: constLevels(0.5, 10)}
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 128 pages x 100 subintervals = 12800 touches.
	if touches != 128*100 {
		t.Errorf("touches = %d, want %d", touches, 128*100)
	}
}

func TestMemRejectsThrashingLevels(t *testing.T) {
	ex := NewMem(1)
	f := testcase.ExerciseFunction{Rate: 1, Values: []float64{1.5}}
	if err := ex.Play(context.Background(), f); err == nil {
		t.Error("memory contention > 1 accepted")
	}
}

func TestRealMemExerciser(t *testing.T) {
	ex := NewMem(4) // 4 MB pool
	f := testcase.ExerciseFunction{Rate: 2, Values: []float64{0.5, 1.0}}
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalMemoryDetection(t *testing.T) {
	if _, err := os.Stat("/proc/meminfo"); err != nil {
		t.Skip("no /proc/meminfo")
	}
	mb := PhysicalMemoryMB()
	if mb < 64 {
		t.Errorf("physical memory = %d MB, implausible", mb)
	}
}

func TestNetExerciserLoopback(t *testing.T) {
	sink, addr, err := NewSink("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	ex := NewNet(addr, 64, 9) // contention 1.0 = 64 KB/s
	ex.PacketBytes = 512
	f := testcase.ExerciseFunction{Rate: 2, Values: []float64{1, 1}} // 1 second
	if err := ex.Play(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the sink drain
	// ~64 KB in 512B packets = ~128 packets.
	if p := sink.Packets(); p < 100 || p > 160 {
		t.Errorf("sink received %d packets, want ~128", p)
	}
}

func TestNetExerciserRefusesNonLoopback(t *testing.T) {
	ex := NewNet("192.0.2.1:9", 64, 1)
	f := testcase.ExerciseFunction{Rate: 1, Values: []float64{1}}
	if err := ex.Play(context.Background(), f); err == nil {
		t.Error("non-loopback sink accepted without override")
	}
}

func TestSetRunsTestcase(t *testing.T) {
	set := NewSet(t.TempDir(), 2, 2, 11)
	set.Disk.MaxWriteKB = 8
	tc := testcase.New("real", 2)
	tc.Functions[testcase.CPU] = testcase.ExerciseFunction{Rate: 2, Values: []float64{0.5, 0.5}}
	tc.Functions[testcase.Memory] = testcase.ExerciseFunction{Rate: 2, Values: []float64{0.3, 0.3}}
	tc.Functions[testcase.Disk] = testcase.ExerciseFunction{Rate: 2, Values: []float64{1, 1}}
	start := time.Now()
	if err := set.Run(context.Background(), tc); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start).Seconds(); elapsed < 0.9 {
		t.Errorf("set finished in %v, functions last 1s", elapsed)
	}
}

func TestSetStopsOnCancel(t *testing.T) {
	set := NewSet(t.TempDir(), 2, 2, 12)
	tc := testcase.New("cancel", 1)
	tc.Functions[testcase.CPU] = testcase.ExerciseFunction{Rate: 1, Values: constLevels(1, 30)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := set.Run(ctx, tc)
	if err == nil {
		t.Fatal("canceled set returned nil")
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 2 {
		t.Errorf("cancellation took %v, want immediate", elapsed)
	}
}

func TestSetValidatesTestcase(t *testing.T) {
	set := NewSet(t.TempDir(), 2, 2, 13)
	bad := testcase.New("", 1)
	if err := set.Run(context.Background(), bad); err == nil {
		t.Error("invalid testcase accepted")
	}
}
