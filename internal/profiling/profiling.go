// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the study CLIs. It is a thin veneer over runtime/pprof so every
// command exposes profiles the same way `go test` does, and the
// performance work in this repository can always be grounded in a
// profile of the real binaries.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile to memPath (if non-empty). It returns a stop function
// that must run before exit — typically via defer in main — to flush
// both profiles. An empty path disables that profile; Start with both
// empty returns a no-op stop.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}
	return stop, nil
}
