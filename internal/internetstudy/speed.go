package internetstudy

import (
	"fmt"
	"sort"

	"uucs/internal/analysis"
	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// SpeedEffect answers the paper's open question 6 — "How does the level
// depend on the raw power of the host?" — by splitting the fleet at the
// median CPU clock and comparing discomfort with CPU borrowing between
// the two halves. On a slower machine the same foreground work occupies
// a larger CPU share, so the same contention level stretches interactive
// latency further; slow hosts should show a higher discomfort fraction
// and a lower mean tolerated level.
type SpeedEffect struct {
	// MedianGHz is the split point.
	MedianGHz float64
	// Slow and Fast summarize CPU-testcase runs on each half.
	Slow, Fast SpeedGroup
	// TTest compares discomfort levels between the groups (slow minus
	// fast; negative Diff means slow hosts tolerate less).
	TTest stats.TTestResult
	// TTestOK reports whether both groups had enough discomforted runs
	// to test.
	TTestOK bool
}

// SpeedGroup summarizes one half of the fleet (also reused by the
// memory-size split, which fills MeanMB instead of MeanGHz).
type SpeedGroup struct {
	Hosts   int
	Runs    int
	Fd      float64
	MeanGHz float64
	MeanMB  float64
}

// HostSpeedEffect computes the speed analysis from fleet results.
func HostSpeedEffect(res *Results) (SpeedEffect, error) {
	if len(res.Hosts) < 4 {
		return SpeedEffect{}, fmt.Errorf("internetstudy: need at least 4 hosts for a speed split")
	}
	speeds := make([]float64, len(res.Hosts))
	byID := make(map[int]*Host, len(res.Hosts))
	for i, h := range res.Hosts {
		speeds[i] = h.Machine.CPUGHz
		byID[h.ID] = h
	}
	sort.Float64s(speeds)
	median := speeds[len(speeds)/2]

	var se SpeedEffect
	se.MedianGHz = median
	var slowLevels, fastLevels []float64
	slowGHz, fastGHz := 0.0, 0.0
	for _, h := range res.Hosts {
		if h.Machine.CPUGHz < median {
			se.Slow.Hosts++
			slowGHz += h.Machine.CPUGHz
		} else {
			se.Fast.Hosts++
			fastGHz += h.Machine.CPUGHz
		}
	}
	if se.Slow.Hosts > 0 {
		se.Slow.MeanGHz = slowGHz / float64(se.Slow.Hosts)
	}
	if se.Fast.Hosts > 0 {
		se.Fast.MeanGHz = fastGHz / float64(se.Fast.Hosts)
	}

	slowDf, fastDf := 0, 0
	for _, r := range res.DB.Filter(analysis.ByResource(testcase.CPU)) {
		h, ok := byID[r.UserID]
		if !ok {
			continue
		}
		slow := h.Machine.CPUGHz < median
		if slow {
			se.Slow.Runs++
		} else {
			se.Fast.Runs++
		}
		if r.Terminated != core.Discomfort {
			continue
		}
		lvl, ok := r.Level()
		if !ok {
			continue
		}
		if slow {
			slowDf++
			slowLevels = append(slowLevels, lvl)
		} else {
			fastDf++
			fastLevels = append(fastLevels, lvl)
		}
	}
	if se.Slow.Runs > 0 {
		se.Slow.Fd = float64(slowDf) / float64(se.Slow.Runs)
	}
	if se.Fast.Runs > 0 {
		se.Fast.Fd = float64(fastDf) / float64(se.Fast.Runs)
	}
	if tt, err := stats.WelchTTest(slowLevels, fastLevels); err == nil {
		se.TTest = tt
		se.TTestOK = true
	}
	return se, nil
}

// String renders the analysis for reports.
func (se SpeedEffect) String() string {
	s := fmt.Sprintf("host speed split at %.2f GHz: slow(%d hosts, %.2f GHz avg) f_d=%.2f over %d runs; fast(%d hosts, %.2f GHz avg) f_d=%.2f over %d runs",
		se.MedianGHz, se.Slow.Hosts, se.Slow.MeanGHz, se.Slow.Fd, se.Slow.Runs,
		se.Fast.Hosts, se.Fast.MeanGHz, se.Fast.Fd, se.Fast.Runs)
	if se.TTestOK {
		s += fmt.Sprintf("; level diff slow-fast = %.3f (p=%.4f)", se.TTest.Diff, se.TTest.P)
	}
	return s
}
