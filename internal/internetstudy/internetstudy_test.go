package internetstudy

import (
	"reflect"
	"sync"
	"testing"

	"uucs/internal/analysis"
	"uucs/internal/stats"
	"uucs/internal/study"
	"uucs/internal/testcase"
)

var (
	once   sync.Once
	fleet  *Results
	fleetE error
)

// fixture runs a moderate fleet once and shares it; the full default
// config is exercised by the benchmark harness.
func fixture(t *testing.T) *Results {
	t.Helper()
	once.Do(func() {
		cfg := DefaultConfig(t.TempDir())
		cfg.Hosts = 24
		cfg.RunsPerHost = 8
		cfg.TestcaseCount = 120
		fleet, fleetE = Run(cfg)
	})
	if fleetE != nil {
		t.Fatal(fleetE)
	}
	return fleet
}

func TestFleetShape(t *testing.T) {
	res := fixture(t)
	if len(res.Hosts) != 24 {
		t.Fatalf("hosts = %d", len(res.Hosts))
	}
	if len(res.Runs) != 24*8 {
		t.Fatalf("runs = %d, want %d", len(res.Runs), 24*8)
	}
	ids := map[string]bool{}
	for _, h := range res.Hosts {
		if h.ClientID == "" {
			t.Errorf("host %d unregistered", h.ID)
		}
		if ids[h.ClientID] {
			t.Errorf("duplicate client id %s", h.ClientID)
		}
		ids[h.ClientID] = true
		if err := h.Machine.Validate(); err != nil {
			t.Errorf("host %d machine: %v", h.ID, err)
		}
	}
}

func TestFleetHeterogeneity(t *testing.T) {
	res := fixture(t)
	minGHz, maxGHz := 99.0, 0.0
	mems := map[float64]bool{}
	for _, h := range res.Hosts {
		if h.Machine.CPUGHz < minGHz {
			minGHz = h.Machine.CPUGHz
		}
		if h.Machine.CPUGHz > maxGHz {
			maxGHz = h.Machine.CPUGHz
		}
		mems[h.Machine.MemMB] = true
	}
	if maxGHz-minGHz < 1.0 {
		t.Errorf("CPU spread too narrow: %v..%v", minGHz, maxGHz)
	}
	if len(mems) < 3 {
		t.Errorf("memory sizes: %v", mems)
	}
}

func TestFleetTaskAndResourceCoverage(t *testing.T) {
	res := fixture(t)
	tasks := map[testcase.Task]int{}
	shapes := map[testcase.Shape]int{}
	for _, r := range res.Runs {
		tasks[r.Task]++
		shapes[r.Shape]++
	}
	if len(tasks) < 3 {
		t.Errorf("task coverage: %v", tasks)
	}
	if len(shapes) < 4 {
		t.Errorf("shape coverage: %v", shapes)
	}
	// Some runs must have produced discomfort, some exhaustion.
	df := len(res.DB.Filter(analysis.Discomforted()))
	if df == 0 || df == len(res.Runs) {
		t.Errorf("discomforted = %d of %d, implausible", df, len(res.Runs))
	}
}

func TestHostSpeedEffect(t *testing.T) {
	res := fixture(t)
	se, err := HostSpeedEffect(res)
	if err != nil {
		t.Fatal(err)
	}
	if se.Slow.Hosts+se.Fast.Hosts != len(res.Hosts) {
		t.Errorf("split lost hosts: %d+%d", se.Slow.Hosts, se.Fast.Hosts)
	}
	if se.Slow.MeanGHz >= se.Fast.MeanGHz {
		t.Errorf("split means inverted: %v vs %v", se.Slow.MeanGHz, se.Fast.MeanGHz)
	}
	if se.String() == "" {
		t.Error("empty report")
	}
}

func TestHostSpeedEffectDirection(t *testing.T) {
	// With a bigger, CPU-focused fleet, slow hosts must be discomforted
	// at least as often as fast ones — the emergent raw-speed effect the
	// paper's Internet study targets.
	dir := t.TempDir()
	cfg := DefaultConfig(dir)
	cfg.Hosts = 40
	cfg.RunsPerHost = 10
	cfg.TestcaseCount = 150
	cfg.Seed = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se, err := HostSpeedEffect(res)
	if err != nil {
		t.Fatal(err)
	}
	if se.Slow.Runs < 20 || se.Fast.Runs < 20 {
		t.Skipf("too few CPU runs for a stable comparison: %d/%d", se.Slow.Runs, se.Fast.Runs)
	}
	if se.Slow.Fd+0.05 < se.Fast.Fd {
		t.Errorf("slow hosts less discomforted than fast: slow f_d=%v fast f_d=%v", se.Slow.Fd, se.Fast.Fd)
	}
}

// TestFleetParallelMatchesSerial asserts the fleet simulation's
// determinism contract: with per-host streams derived ahead of the
// fan-out and a server whose responses depend only on request identity,
// a parallel fleet collects bit-identical runs in identical order.
func TestFleetParallelMatchesSerial(t *testing.T) {
	run := func(workers int) *Results {
		t.Helper()
		cfg := DefaultConfig(t.TempDir())
		cfg.Hosts = 8
		cfg.RunsPerHost = 4
		cfg.TestcaseCount = 80
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)

	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(parallel.Runs))
	}
	for i := range serial.Runs {
		if !reflect.DeepEqual(serial.Runs[i], parallel.Runs[i]) {
			t.Fatalf("run %d differs between serial and parallel fleet\nserial:   %v\nparallel: %v",
				i, serial.Runs[i], parallel.Runs[i])
		}
	}
	for i := range serial.Hosts {
		if serial.Hosts[i].ClientID != parallel.Hosts[i].ClientID {
			t.Errorf("host %d client id differs: %s vs %s",
				i, serial.Hosts[i].ClientID, parallel.Hosts[i].ClientID)
		}
		if serial.Hosts[i].Machine != parallel.Hosts[i].Machine {
			t.Errorf("host %d machine differs", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Hosts: 0, RunsPerHost: 1, WorkDir: t.TempDir()}); err == nil {
		t.Error("zero hosts accepted")
	}
	if _, err := Run(Config{Hosts: 1, RunsPerHost: 1}); err == nil {
		t.Error("missing workdir accepted")
	}
}

func TestHostSpeedEffectNeedsHosts(t *testing.T) {
	if _, err := HostSpeedEffect(&Results{}); err == nil {
		t.Error("tiny fleet accepted")
	}
}

func TestSampleTaskDistribution(t *testing.T) {
	s := stats.NewStream(9)
	counts := map[testcase.Task]int{}
	for i := 0; i < 10000; i++ {
		counts[sampleTask(s)]++
	}
	for _, tw := range taskWeights {
		frac := float64(counts[tw.task]) / 10000
		if frac < tw.w-0.03 || frac > tw.w+0.03 {
			t.Errorf("task %s frequency %v, want ~%v", tw.task, frac, tw.w)
		}
	}
}

func TestMemorySizeSplit(t *testing.T) {
	res := fixture(t)
	se, err := MemorySizeSplit(res)
	if err != nil {
		t.Fatal(err)
	}
	if se.Small.Hosts+se.Large.Hosts != len(res.Hosts) {
		t.Errorf("split lost hosts: %d+%d", se.Small.Hosts, se.Large.Hosts)
	}
	if se.Small.MeanMB >= se.Large.MeanMB {
		t.Errorf("split means inverted: %v vs %v", se.Small.MeanMB, se.Large.MeanMB)
	}
	if se.String() == "" {
		t.Error("empty report")
	}
	if _, err := MemorySizeSplit(&Results{}); err == nil {
		t.Error("tiny fleet accepted")
	}
}

func TestCompareToControlled(t *testing.T) {
	res := fixture(t)
	cfg := study.DefaultConfig()
	cfg.Users = 16
	lab, err := study.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := CompareToControlled(res, lab.DB, testcase.CPU)
	if err != nil {
		t.Skipf("not enough discomforted CPU runs in this draw: %v", err)
	}
	if ks.D < 0 || ks.D > 1 || ks.P < 0 || ks.P > 1 {
		t.Errorf("implausible KS result: %+v", ks)
	}
	if ks.NA < 5 || ks.NB < 5 {
		t.Errorf("KS sample sizes: %+v", ks)
	}
	// The fleet differs from the lab (heterogeneous hardware, different
	// task mix), but both measure the same human phenomenon, so the CDFs
	// should not be wildly disjoint.
	if ks.D > 0.9 {
		t.Errorf("fleet and lab CDFs disjoint: D = %v", ks.D)
	}
}
