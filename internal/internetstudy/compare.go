package internetstudy

import (
	"fmt"

	"uucs/internal/analysis"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// CompareToControlled tests whether the fleet's discomfort levels for a
// resource are statistically consistent with the controlled study's —
// the §4 question of whether the Internet study's "better estimates for
// the aggregated resource CDFs" agree with the lab. A non-significant
// KS result means the fleet data refines the same distribution; a
// significant one means the populations genuinely differ (different
// hardware mix, different task mix, self-selection).
func CompareToControlled(fleet *Results, controlled *analysis.DB, res testcase.Resource) (stats.KSResult, error) {
	fleetLevels := discomfortLevels(fleet.DB, res)
	labLevels := discomfortLevels(controlled, res)
	if len(fleetLevels) < 5 || len(labLevels) < 5 {
		return stats.KSResult{}, fmt.Errorf("internetstudy: too few discomforted %s runs to compare (%d fleet, %d lab)",
			res, len(fleetLevels), len(labLevels))
	}
	return stats.KSTest(fleetLevels, labLevels)
}

// discomfortLevels extracts the discomfort levels of a resource's ramp
// runs.
func discomfortLevels(db *analysis.DB, res testcase.Resource) []float64 {
	runs := db.Filter(analysis.ByResource(res), analysis.ByShape(testcase.ShapeRamp), analysis.Discomforted())
	var out []float64
	for _, r := range runs {
		if lvl, ok := r.Level(); ok {
			out = append(out, lvl)
		}
	}
	return out
}
