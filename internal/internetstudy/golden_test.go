package internetstudy

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uucs/internal/testcase"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden fleet snapshot in testdata/")

// legacyFigures renders the legacy fleet's headline figures — the
// per-resource CDFs, the host-speed split, and the memory-size split —
// exactly as `uucs-internet -pop-profile legacy` prints them.
func legacyFigures(t *testing.T, res *Results) string {
	t.Helper()
	var b strings.Builder
	for _, r := range testcase.Resources() {
		c := res.DB.ResourceCDF(r)
		fmt.Fprintln(&b, c.Render("Internet-study CDF for "+string(r), 60, 10, 0))
	}
	se, err := HostSpeedEffect(res)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&b, se)
	ms, err := MemorySizeSplit(res)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&b, ms)
	return b.String()
}

// TestLegacyFleetGolden pins the legacy protocol fleet's figures. The
// streaming engine is the default path now; this snapshot guarantees
// `-pop-profile legacy` keeps reproducing the historical results
// byte-for-byte. Behaviour changes must be deliberate: rerun with
// -update and review the diff.
func TestLegacyFleetGolden(t *testing.T) {
	got := legacyFigures(t, fixture(t))
	path := filepath.Join("testdata", "legacy_fleet.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/internetstudy -run TestLegacyFleetGolden -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("legacy fleet drifted from golden %s.\n--- got\n%s\n--- want\n%s\nIf the change is intentional, rerun with -update.",
			path, got, want)
	}
}
