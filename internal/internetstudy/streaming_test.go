package internetstudy

import (
	"reflect"
	"testing"

	"uucs/internal/hostpop"
)

// smallStreamConfig returns a fleet small enough for exhaustive
// comparison testing but large enough to exercise every path: blanks,
// all three resources, diurnal windows, and (when enabled) crashes.
func smallStreamConfig() StreamConfig {
	cfg := DefaultStreamConfig()
	cfg.Hosts = 24
	cfg.RunsPerHost = 6
	cfg.TestcaseCount = 60
	cfg.Seed = 71
	cfg.Workers = 1
	return cfg
}

// aggressiveChurn crashes hosts every few active minutes so even a
// small fleet loses a meaningful number of runs mid-testcase.
func aggressiveChurn() hostpop.ChurnConfig {
	return hostpop.ChurnConfig{Enabled: true, CrashMeanGap: 900, DowntimeMean: 600}
}

// TestStreamingStudyMatchesBatch is the satellite contract: the
// streaming engine's comfort aggregates are bit-identical to aggregates
// computed after the fact from the full in-memory run list — with and
// without churn.
func TestStreamingStudyMatchesBatch(t *testing.T) {
	for _, churn := range []bool{false, true} {
		name := "steady"
		if churn {
			name = "churn"
		}
		t.Run(name, func(t *testing.T) {
			cfg := smallStreamConfig()
			cfg.CollectRuns = true
			if churn {
				cfg.Churn = aggressiveChurn()
			}
			res, err := RunStreaming(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Runs) == 0 || len(res.Runs) != len(res.RunHosts) {
				t.Fatalf("collected %d runs, %d host indices", len(res.Runs), len(res.RunHosts))
			}
			// Batch reference: fold the in-memory run list into fresh
			// aggregates.
			batch := NewStreamAggregates()
			for k, run := range res.Runs {
				batch.Fold(run, res.Pop, res.RunHosts[k], res.MedianGHz, res.MedianMB)
			}
			// Crashed runs are never collected, so compare everything
			// the batch can see.
			if !reflect.DeepEqual(batch.ByResource, res.Agg.ByResource) {
				t.Error("per-resource accumulators differ from batch")
			}
			if !reflect.DeepEqual(batch.SlowCPU, res.Agg.SlowCPU) || !reflect.DeepEqual(batch.FastCPU, res.Agg.FastCPU) {
				t.Error("speed-split accumulators differ from batch")
			}
			if !reflect.DeepEqual(batch.SmallMem, res.Agg.SmallMem) || !reflect.DeepEqual(batch.BigMem, res.Agg.BigMem) {
				t.Error("memory-split accumulators differ from batch")
			}
			if batch.Folded != res.Agg.Folded || batch.Blank != res.Agg.Blank {
				t.Errorf("counts differ: batch folded/blank %d/%d, streamed %d/%d",
					batch.Folded, batch.Blank, res.Agg.Folded, res.Agg.Blank)
			}
			if churn && res.Agg.Crashed == 0 {
				t.Error("aggressive churn produced no crashes")
			}
		})
	}
}

// TestStreamingWorkerCountInvariance asserts byte-identical results —
// aggregates AND the collected run records in order — for every worker
// count, under churn.
func TestStreamingWorkerCountInvariance(t *testing.T) {
	base := smallStreamConfig()
	base.CollectRuns = true
	base.Churn = aggressiveChurn()
	base.BlockSize = 5 // force multiple blocks per worker
	ref, err := RunStreaming(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := RunStreaming(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Agg, ref.Agg) {
			t.Errorf("workers=%d: aggregates differ from serial", workers)
		}
		if !reflect.DeepEqual(got.Runs, ref.Runs) || !reflect.DeepEqual(got.RunHosts, ref.RunHosts) {
			t.Errorf("workers=%d: collected runs differ from serial", workers)
		}
	}
}

// TestStreamingFleetPrefix pins the nested-fleet property behind the
// convergence experiment: with a fixed seed, a smaller fleet's runs are
// exactly the first hosts' runs of a larger fleet.
func TestStreamingFleetPrefix(t *testing.T) {
	small := smallStreamConfig()
	small.Hosts = 10
	small.CollectRuns = true
	big := smallStreamConfig()
	big.Hosts = 24
	big.CollectRuns = true
	sres, err := RunStreaming(small)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := RunStreaming(big)
	if err != nil {
		t.Fatal(err)
	}
	n := len(sres.Runs)
	if n == 0 {
		t.Fatal("no runs collected")
	}
	if !reflect.DeepEqual(sres.Runs, bres.Runs[:n]) {
		t.Error("small fleet's runs are not a prefix of the large fleet's")
	}
	// Medians differ between fleet sizes, so aggregates need not match;
	// the run records themselves must.
}

// TestStreamingChurnAccounting is the pop-smoke assertion in miniature:
// under churn, every scheduled run is accounted exactly once.
func TestStreamingChurnAccounting(t *testing.T) {
	cfg := smallStreamConfig()
	cfg.Hosts = 40
	cfg.Churn = aggressiveChurn()
	res, err := RunStreaming(cfg) // RunStreaming itself checks accounting
	if err != nil {
		t.Fatal(err)
	}
	ag := res.Agg
	want := uint64(cfg.Hosts) * uint64(cfg.RunsPerHost)
	if ag.Attempted != want || ag.Folded+ag.Blank+ag.Crashed != want {
		t.Fatalf("accounting: attempted %d, folded %d + blank %d + crashed %d, want %d",
			ag.Attempted, ag.Folded, ag.Blank, ag.Crashed, want)
	}
	if ag.Crashed == 0 {
		t.Error("no crashes under aggressive churn")
	}
	if ag.Crashed >= ag.Folded {
		t.Errorf("crash rate implausible: %d crashed vs %d folded", ag.Crashed, ag.Folded)
	}
}

// TestStreamingAllocsAmortized pins the zero-alloc run path at the
// study level: growing the run count must not grow allocations
// proportionally. The per-run budget is well under one allocation.
func TestStreamingAllocsAmortized(t *testing.T) {
	cfg := smallStreamConfig()
	cfg.Hosts = 16
	run := func(runs int) func() {
		c := cfg
		c.RunsPerHost = runs
		return func() {
			if _, err := RunStreaming(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	const extra = 24
	few := testing.AllocsPerRun(3, run(2))
	many := testing.AllocsPerRun(3, run(2+extra))
	perRun := (many - few) / float64(cfg.Hosts*extra)
	if perRun > 0.5 {
		t.Errorf("streaming study allocates %.2f per extra run, want < 0.5 (few=%.0f many=%.0f)", perRun, few, many)
	}
}

// TestStreamingSpeedEffect smoke-tests the streamed host-speed split:
// groups partition the fleet and the runs.
func TestStreamingSpeedEffect(t *testing.T) {
	cfg := smallStreamConfig()
	cfg.Hosts = 60
	res, err := RunStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := SpeedEffectStream(res)
	if se.Slow.Hosts+se.Fast.Hosts != cfg.Hosts {
		t.Errorf("speed split loses hosts: %d + %d != %d", se.Slow.Hosts, se.Fast.Hosts, cfg.Hosts)
	}
	cpu := res.Agg.ByResource["cpu"]
	if uint64(se.Slow.Runs+se.Fast.Runs) != cpu.N() {
		t.Errorf("speed split loses runs: %d + %d != %d", se.Slow.Runs, se.Fast.Runs, cpu.N())
	}
	if se.Slow.MeanGHz >= se.Fast.MeanGHz {
		t.Errorf("slow group mean %.2f GHz >= fast group mean %.2f GHz", se.Slow.MeanGHz, se.Fast.MeanGHz)
	}
}

// TestStreamingLegacyProfile runs the streaming engine over the legacy
// always-on population, the configuration -pop-profile legacy compares
// against.
func TestStreamingLegacyProfile(t *testing.T) {
	cfg := smallStreamConfig()
	cfg.Profile = hostpop.Legacy()
	res, err := RunStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Crashed != 0 {
		t.Errorf("crashes without churn: %d", res.Agg.Crashed)
	}
	if res.Agg.Folded == 0 {
		t.Error("no folded runs")
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}
