package internetstudy

// The streaming study engine: the million-host counterpart of Run.
//
// Where Run simulates the fleet faithfully — a real server, a TCP (or
// in-memory) network, per-host client stores on disk — the streaming
// engine answers the scaling question the paper could not: what do the
// aggregate comfort statistics converge to as the fleet grows from the
// study's ~100 hosts toward the Internet population the system was
// designed for? It drops the protocol layer and executes runs directly,
// folding every run record into mergeable fixed-size accumulators
// (stats.LevelAccum) the moment it is produced. Memory is O(hosts) for
// the population columns plus O(1) for the aggregates — never O(runs) —
// and the run path allocates nothing, so 10^6 hosts stream through in
// bounded RSS.
//
// Determinism contract: every host's run sequence is derived from
// stats.DeriveSeed(runRoot, host), a pure function of (Seed, host
// index). Aggregation is bit-exact under any merge order (integer
// accumulators), so results are byte-identical for every worker count
// and block size, and a population generated with the same seed is a
// prefix of any larger one — which is what makes the convergence-vs-
// fleet-size experiment meaningful.

import (
	"fmt"
	"sync"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/hostpop"
	"uucs/internal/hostsim"
	"uucs/internal/pool"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// StreamConfig parameterizes a streaming study.
type StreamConfig struct {
	// Hosts is the fleet size (tested to 10^6).
	Hosts int
	// RunsPerHost is how many testcase arrivals each host attempts.
	RunsPerHost int
	// TestcaseCount is the shared testcase population size.
	TestcaseCount int
	// MeanGap is the mean available-time seconds between a host's
	// testcase arrivals (Poisson over the host's availability windows).
	MeanGap float64
	// Seed drives the population, the testcase suite, and every host's
	// run stream.
	Seed uint64
	// Profile is the host-population profile (hostpop.Heien by default).
	Profile hostpop.Profile
	// Churn enables crash churn: hosts dying mid-testcase, losing the
	// unreported run, and rejoining later. Diurnal join/leave churn is
	// part of the population profile and always applies.
	Churn hostpop.ChurnConfig
	// Population parameterizes the user models.
	Population comfort.PopulationParams
	// Workers bounds the concurrently simulated host blocks; 0 selects
	// GOMAXPROCS. Results are byte-identical for every value.
	Workers int
	// BlockSize is the number of hosts one scheduling unit simulates
	// (0: 2048). It only affects dispatch granularity, never results.
	BlockSize int
	// CollectRuns keeps every folded run record in memory — the small-N
	// reference mode TestStreamingStudyMatchesBatch compares against.
	// Never enable it at large fleet sizes.
	CollectRuns bool
}

// DefaultStreamConfig mirrors DefaultConfig's per-host parameters on the
// correlated population.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Hosts:         100,
		RunsPerHost:   12,
		TestcaseCount: 400,
		MeanGap:       1800,
		Seed:          2004,
		Profile:       hostpop.Heien(),
		Population:    comfort.DefaultPopulation(),
	}
}

// accumLo/accumHi/accumBins fix the shared accumulator geometry:
// contention levels live in [0, 10] (CPU ramps top out near 7, memory
// at 1) and 2048 bins resolve ~0.005 contention.
const (
	accumLo   = 0.0
	accumHi   = 10.0
	accumBins = 2048
)

// StreamAggregates is the full set of streaming accumulators: the
// per-resource comfort CDFs and the host-speed and memory-size splits.
// Every field folds with integer arithmetic, so merging partials from
// any number of workers in any order is bit-exact.
type StreamAggregates struct {
	// ByResource aggregates runs by primary exercised resource.
	ByResource map[testcase.Resource]*stats.LevelAccum
	// SlowCPU and FastCPU split CPU-testcase runs at the population's
	// median clock (the paper's open question 6).
	SlowCPU, FastCPU *stats.LevelAccum
	// SmallMem and BigMem split memory-testcase runs at the median RAM.
	SmallMem, BigMem *stats.LevelAccum

	// Accounting. Every attempted run is exactly one of: folded into
	// ByResource, a blank testcase (noise floor, nothing to fold), or
	// lost to a crash. Attempted == Folded + Blank + Crashed always —
	// the pop-smoke CI job asserts it to prove no run is lost or
	// double-counted by the scheduler.
	Attempted, Folded, Blank, Crashed uint64
}

// NewStreamAggregates returns an empty aggregate set.
func NewStreamAggregates() *StreamAggregates {
	return &StreamAggregates{
		ByResource: map[testcase.Resource]*stats.LevelAccum{
			testcase.CPU:    stats.NewLevelAccum(accumLo, accumHi, accumBins),
			testcase.Memory: stats.NewLevelAccum(accumLo, accumHi, accumBins),
			testcase.Disk:   stats.NewLevelAccum(accumLo, accumHi, accumBins),
		},
		SlowCPU:  stats.NewLevelAccum(accumLo, accumHi, accumBins),
		FastCPU:  stats.NewLevelAccum(accumLo, accumHi, accumBins),
		SmallMem: stats.NewLevelAccum(accumLo, accumHi, accumBins),
		BigMem:   stats.NewLevelAccum(accumLo, accumHi, accumBins),
	}
}

// Fold folds one completed run produced by host i of pop, split at the
// given medians. It is the single aggregation point shared by the
// streaming path and the in-memory reference path, so the two cannot
// diverge.
func (ag *StreamAggregates) Fold(run *core.Run, pop *hostpop.Population, i int, medianGHz, medianMB float64) {
	ag.Attempted++
	r := run.PrimaryResource
	acc, ok := ag.ByResource[r]
	if run.Blank || !ok {
		ag.Blank++
		return
	}
	ag.Folded++
	lvl, discomfort := 0.0, false
	if run.Terminated == core.Discomfort {
		lvl, discomfort = run.Level()
	}
	fold := func(a *stats.LevelAccum) {
		if discomfort {
			a.Observe(lvl)
		} else {
			a.ObserveExhausted()
		}
	}
	fold(acc)
	switch r {
	case testcase.CPU:
		if pop.CPUGHz[i] < medianGHz {
			fold(ag.SlowCPU)
		} else {
			fold(ag.FastCPU)
		}
	case testcase.Memory:
		if pop.MemMB[i] < medianMB {
			fold(ag.SmallMem)
		} else {
			fold(ag.BigMem)
		}
	}
}

// FoldCrashed accounts one run lost to a mid-testcase crash.
func (ag *StreamAggregates) FoldCrashed() {
	ag.Attempted++
	ag.Crashed++
}

// Merge folds other into ag. Bit-exact under any merge order.
func (ag *StreamAggregates) Merge(other *StreamAggregates) {
	for r, a := range ag.ByResource {
		a.Merge(other.ByResource[r])
	}
	ag.SlowCPU.Merge(other.SlowCPU)
	ag.FastCPU.Merge(other.FastCPU)
	ag.SmallMem.Merge(other.SmallMem)
	ag.BigMem.Merge(other.BigMem)
	ag.Attempted += other.Attempted
	ag.Folded += other.Folded
	ag.Blank += other.Blank
	ag.Crashed += other.Crashed
}

// CheckAccounting verifies the no-lost-no-duplicated-runs identity
// against the expected attempt count.
func (ag *StreamAggregates) CheckAccounting(wantAttempts uint64) error {
	if ag.Attempted != wantAttempts {
		return fmt.Errorf("internetstudy: attempted %d runs, scheduled %d", ag.Attempted, wantAttempts)
	}
	if got := ag.Folded + ag.Blank + ag.Crashed; got != ag.Attempted {
		return fmt.Errorf("internetstudy: accounting leak: folded %d + blank %d + crashed %d = %d != attempted %d",
			ag.Folded, ag.Blank, ag.Crashed, got, ag.Attempted)
	}
	var inAccums uint64
	for _, a := range ag.ByResource {
		inAccums += a.N()
	}
	if inAccums != ag.Folded {
		return fmt.Errorf("internetstudy: accumulators hold %d runs, folded %d", inAccums, ag.Folded)
	}
	return nil
}

// StreamResults is everything a streaming study produces.
type StreamResults struct {
	Config StreamConfig
	// Pop is the generated host population.
	Pop *hostpop.Population
	// MedianGHz and MedianMB are the population split points.
	MedianGHz, MedianMB float64
	// Agg holds the streamed comfort aggregates.
	Agg *StreamAggregates
	// Runs holds every folded or blank run in schedule order — only in
	// CollectRuns mode, and nil otherwise.
	Runs []*core.Run
	// RunHosts gives the host index of each collected run.
	RunHosts []int
}

// runLane separates the per-host run streams from the per-host
// population draws, which use DeriveSeed(Seed, host) directly.
const runLane = ^uint64(0)

// streamWorker is one worker's reusable state: engine, scratch, run
// record, user, RNG streams, and partial aggregates. Everything a run
// needs lives here, so the per-run path performs no allocation.
type streamWorker struct {
	scratch *core.Scratch
	run     core.Run
	user    comfort.User
	host    stats.Stream // per-host master (reseeded per host)
	userRng stats.Stream // user regeneration fork
	eng     core.Engine
	apps    map[testcase.Task]apps.App
	agg     *StreamAggregates
}

// RunStreaming executes the streaming study.
func RunStreaming(cfg StreamConfig) (*StreamResults, error) {
	if cfg.Hosts <= 0 || cfg.RunsPerHost <= 0 {
		return nil, fmt.Errorf("internetstudy: need positive hosts and runs per host")
	}
	if cfg.TestcaseCount <= 0 {
		return nil, fmt.Errorf("internetstudy: need a positive testcase count")
	}
	if cfg.MeanGap <= 0 {
		return nil, fmt.Errorf("internetstudy: need a positive mean arrival gap")
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = hostpop.Heien()
	}
	if err := cfg.Churn.Validate(); err != nil {
		return nil, err
	}
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = 2048
	}

	// Shared inputs, derived from the seed exactly once: the testcase
	// suite and the population. Neither depends on worker count.
	master := stats.NewStream(cfg.Seed)
	gen := testcase.DefaultGeneratorConfig()
	gen.Count = cfg.TestcaseCount
	tcs, err := testcase.Generate("inet", gen, master.Fork())
	if err != nil {
		return nil, err
	}
	pop, err := hostpop.Generate(cfg.Hosts, cfg.Profile, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	res := &StreamResults{
		Config:    cfg,
		Pop:       pop,
		MedianGHz: pop.MedianCPUGHz(),
		MedianMB:  pop.MedianMemMB(),
	}
	runRoot := stats.DeriveSeed(cfg.Seed, runLane)

	// Per-block collected runs (reference mode): indexed by block so
	// concatenation order is worker-count independent.
	blocks := (cfg.Hosts + blockSize - 1) / blockSize
	var collected [][]*core.Run
	var collectedHosts [][]int
	if cfg.CollectRuns {
		collected = make([][]*core.Run, blocks)
		collectedHosts = make([][]int, blocks)
	}

	var mu sync.Mutex
	var workers []*streamWorker
	newWorker := func() *streamWorker {
		w := &streamWorker{
			scratch: core.NewScratch(),
			apps:    make(map[testcase.Task]apps.App, len(taskWeights)),
			agg:     NewStreamAggregates(),
		}
		w.eng = core.Engine{Noise: hostsim.DefaultNoise(), MonitorRate: 0}
		for _, tw := range taskWeights {
			app, err := apps.New(tw.task)
			if err != nil {
				panic(err) // static task list; cannot fail
			}
			w.apps[tw.task] = app
		}
		mu.Lock()
		workers = append(workers, w)
		mu.Unlock()
		return w
	}

	err = pool.RunScratch(cfg.Workers, blocks, newWorker, func(b int, w *streamWorker) error {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > cfg.Hosts {
			hi = cfg.Hosts
		}
		for i := lo; i < hi; i++ {
			if err := w.runHost(cfg, res, tcs, runRoot, i, b, collected, collectedHosts); err != nil {
				return fmt.Errorf("internetstudy: host %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge worker partials. LevelAccum merging is bit-exact under any
	// order, so the nondeterministic worker list order cannot leak into
	// the results.
	res.Agg = NewStreamAggregates()
	for _, w := range workers {
		res.Agg.Merge(w.agg)
	}
	if cfg.CollectRuns {
		for b := range collected {
			res.Runs = append(res.Runs, collected[b]...)
			res.RunHosts = append(res.RunHosts, collectedHosts[b]...)
		}
	}
	want := uint64(cfg.Hosts) * uint64(cfg.RunsPerHost)
	if err := res.Agg.CheckAccounting(want); err != nil {
		return nil, err
	}
	return res, nil
}

// runHost simulates one host's whole participation: regenerate its user
// from the host seed, walk its arrival process over availability
// windows, execute each run, fold or discard it, and advance crash
// churn.
func (w *streamWorker) runHost(cfg StreamConfig, res *StreamResults, tcs []*testcase.Testcase, runRoot uint64, i, block int, collected [][]*core.Run, collectedHosts [][]int) error {
	pop := res.Pop
	hs := &w.host
	hs.Reseed(stats.DeriveSeed(runRoot, uint64(i)))

	// The user behind this host, regenerated per host rather than held
	// for the whole fleet (10^6 User structs would dominate RSS).
	w.userRng.Reseed(hs.Uint64())
	comfort.SampleUserInto(&w.user, i, cfg.Population, &w.userRng)
	w.eng.Machine = pop.MachineConfig(i)

	churn := cfg.Churn.Enabled
	var crashAt, rejoinAt float64
	if churn {
		crashAt, rejoinAt = cfg.Churn.NextCrash(pop, i, 0, hs)
	}

	t := 0.0
	for r := 0; r < cfg.RunsPerHost; r++ {
		// Next arrival: Poisson over the host's available time.
		t = pop.AdvanceAvail(i, t, hs.Exp(cfg.MeanGap))
		// Crashes during the idle gap: the host is simply away; the
		// pending arrival executes once it has rejoined.
		for churn && t >= crashAt {
			if rejoinAt > t {
				t = rejoinAt
			}
			crashAt, rejoinAt = cfg.Churn.NextCrash(pop, i, rejoinAt, hs)
		}

		tc := tcs[hs.IntN(len(tcs))]
		task := sampleTask(hs)
		runSeed := hs.Uint64()
		run := &w.run
		if cfg.CollectRuns {
			run = &core.Run{} // collected records must not alias the scratch run
		}
		if err := w.eng.ExecuteInto(w.scratch, run, tc, w.apps[task], &w.user, runSeed); err != nil {
			return err
		}

		if churn && crashAt < t+run.Offset {
			// The host died mid-testcase; the run was never reported.
			w.agg.FoldCrashed()
			t = rejoinAt
			crashAt, rejoinAt = cfg.Churn.NextCrash(pop, i, rejoinAt, hs)
			continue
		}
		w.agg.Fold(run, pop, i, res.MedianGHz, res.MedianMB)
		if cfg.CollectRuns {
			collected[block] = append(collected[block], run)
			collectedHosts[block] = append(collectedHosts[block], i)
		}
		t += run.Offset
	}
	return nil
}

// SpeedEffectStream computes the host-speed analysis (the paper's open
// question 6) from streamed aggregates.
func SpeedEffectStream(res *StreamResults) SpeedEffect {
	var se SpeedEffect
	se.MedianGHz = res.MedianGHz
	slow, fast := res.Agg.SlowCPU, res.Agg.FastCPU
	se.Slow.Runs = int(slow.N())
	se.Fast.Runs = int(fast.N())
	se.Slow.Fd = slow.Fd()
	se.Fast.Fd = fast.Fd()
	var slowGHz, fastGHz float64
	for i := 0; i < res.Pop.N; i++ {
		if res.Pop.CPUGHz[i] < res.MedianGHz {
			se.Slow.Hosts++
			slowGHz += res.Pop.CPUGHz[i]
		} else {
			se.Fast.Hosts++
			fastGHz += res.Pop.CPUGHz[i]
		}
	}
	if se.Slow.Hosts > 0 {
		se.Slow.MeanGHz = slowGHz / float64(se.Slow.Hosts)
	}
	if se.Fast.Hosts > 0 {
		se.Fast.MeanGHz = fastGHz / float64(se.Fast.Hosts)
	}
	if tt, err := slow.TTestAgainst(fast); err == nil {
		se.TTest = tt
		se.TTestOK = true
	}
	return se
}

// Summary renders the study's headline numbers for reports.
func (res *StreamResults) Summary() string {
	ag := res.Agg
	s := fmt.Sprintf("streaming study: %d hosts (%s), %d attempts = %d folded + %d blank + %d crashed\n",
		res.Config.Hosts, res.Pop.Profile.Name, ag.Attempted, ag.Folded, ag.Blank, ag.Crashed)
	for _, r := range testcase.Resources() {
		a := ag.ByResource[r]
		if a.N() == 0 {
			continue
		}
		mean, lo, hi, ok := a.MeanLevelCI()
		if ok {
			s += fmt.Sprintf("  %-6s n=%-8d f_d=%.3f  c_a=%.3f [%.3f, %.3f]\n", r, a.N(), a.Fd(), mean, lo, hi)
		} else {
			s += fmt.Sprintf("  %-6s n=%-8d f_d=%.3f\n", r, a.N(), a.Fd())
		}
	}
	return s
}
