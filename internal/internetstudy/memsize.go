package internetstudy

import (
	"fmt"
	"sort"

	"uucs/internal/analysis"
	"uucs/internal/core"
	"uucs/internal/testcase"
)

// MemorySizeEffect complements the host-speed analysis: memory
// borrowing is specified as a *fraction* of physical memory, so the same
// contention level removes twice the megabytes on a 1 GB machine — but
// the same machine also has twice the slack. The net effect the fleet
// data shows is that small-memory machines overflow earlier: the OS base
// and application working sets consume a larger fraction of RAM, so the
// same borrowed fraction displaces application pages sooner.
type MemorySizeEffect struct {
	// SplitMB is the fleet-median memory size.
	SplitMB float64
	// Small and Large summarize memory-testcase runs on each half.
	Small, Large SpeedGroup
}

// MemorySizeSplit computes the analysis from fleet results.
func MemorySizeSplit(res *Results) (MemorySizeEffect, error) {
	if len(res.Hosts) < 4 {
		return MemorySizeEffect{}, fmt.Errorf("internetstudy: need at least 4 hosts for a memory split")
	}
	sizes := make([]float64, len(res.Hosts))
	byID := make(map[int]*Host, len(res.Hosts))
	for i, h := range res.Hosts {
		sizes[i] = h.Machine.MemMB
		byID[h.ID] = h
	}
	sort.Float64s(sizes)
	median := sizes[len(sizes)/2]

	var se MemorySizeEffect
	se.SplitMB = median
	smallMB, largeMB := 0.0, 0.0
	for _, h := range res.Hosts {
		if h.Machine.MemMB < median {
			se.Small.Hosts++
			smallMB += h.Machine.MemMB
		} else {
			se.Large.Hosts++
			largeMB += h.Machine.MemMB
		}
	}
	if se.Small.Hosts > 0 {
		se.Small.MeanMB = smallMB / float64(se.Small.Hosts)
	}
	if se.Large.Hosts > 0 {
		se.Large.MeanMB = largeMB / float64(se.Large.Hosts)
	}
	smallDf, largeDf := 0, 0
	for _, r := range res.DB.Filter(analysis.ByResource(testcase.Memory)) {
		h, ok := byID[r.UserID]
		if !ok {
			continue
		}
		small := h.Machine.MemMB < median
		if small {
			se.Small.Runs++
		} else {
			se.Large.Runs++
		}
		if r.Terminated == core.Discomfort {
			if small {
				smallDf++
			} else {
				largeDf++
			}
		}
	}
	if se.Small.Runs > 0 {
		se.Small.Fd = float64(smallDf) / float64(se.Small.Runs)
	}
	if se.Large.Runs > 0 {
		se.Large.Fd = float64(largeDf) / float64(se.Large.Runs)
	}
	return se, nil
}

// String renders the analysis.
func (se MemorySizeEffect) String() string {
	return fmt.Sprintf("memory split at %.0f MB: small(%d hosts, %.0f MB avg) f_d=%.2f over %d runs; large(%d hosts, %.0f MB avg) f_d=%.2f over %d runs",
		se.SplitMB, se.Small.Hosts, se.Small.MeanMB, se.Small.Fd, se.Small.Runs,
		se.Large.Hosts, se.Large.MeanMB, se.Large.Fd, se.Large.Runs)
}
