// Package internetstudy simulates the paper's Internet-wide study (§4):
// a fleet of heterogeneous hosts, each running the UUCS client, with
// Poisson arrivals of testcase executions and periodic hot syncs against
// a real server over the loopback network. The paper ran this study to
// sharpen the aggregated CDF estimates, to broaden the context coverage,
// and "to measure the effect of the raw performance of the machine,
// which was not studied in our controlled study" — this package includes
// that host-speed analysis.
package internetstudy

import (
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"time"

	"uucs/internal/analysis"
	"uucs/internal/apps"
	"uucs/internal/client"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/hostsim"
	"uucs/internal/pool"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Config parameterizes a fleet simulation.
type Config struct {
	// Hosts is the number of participating machines (the paper had
	// "about 100 users").
	Hosts int
	// RunsPerHost is how many testcase executions each host performs.
	RunsPerHost int
	// TestcaseCount is the server's testcase population (the paper had
	// over 2000).
	TestcaseCount int
	// SyncEvery makes each host hot sync after this many runs.
	SyncEvery int
	// MeanGap is the mean time between testcase executions on a host in
	// seconds of simulated wall-clock (Poisson arrivals).
	MeanGap float64
	// WorkDir hosts the per-client stores (text files, as in the paper).
	WorkDir string
	// Seed drives everything.
	Seed uint64
	// Population parameterizes the user models.
	Population comfort.PopulationParams
	// Workers bounds the number of concurrently simulated hosts; 0
	// selects GOMAXPROCS and 1 reproduces the serial path. Per-host
	// random streams are derived before the fan-out and the server's
	// responses depend only on each request's identity, so collected
	// results are bit-identical for every value.
	Workers int

	// Listen, when non-nil, opens the server's listener instead of a
	// loopback TCP socket — chaos tests plug their in-memory network in
	// here. The listener's Addr().String() becomes the fleet's server
	// address.
	Listen func(addr string) (net.Listener, error)
	// Dial, when non-nil, opens host hostID's connections — chaos tests
	// wrap each host's transport with its own deterministic fault
	// injector here.
	Dial func(hostID int, addr string) (net.Conn, error)
	// IOTimeout bounds each client protocol message (zero: none).
	IOTimeout time.Duration
	// IdleTimeout reaps silent server-side connections (zero: never).
	IdleTimeout time.Duration
	// Retry overrides the clients' backoff policy when non-zero.
	Retry client.Backoff
	// Sleep, when non-nil, replaces time.Sleep for client backoff —
	// chaos tests inject a virtual clock so retries cost no wall time.
	Sleep func(d time.Duration)

	// StateDir, when non-empty, attaches a durable state directory to
	// the server: every accepted op is journaled (and fsynced, group
	// committed) before its ack, exactly as a production deployment
	// would run.
	StateDir string
	// JournalBatch and JournalDelay forward to the server's group-commit
	// writer (meaningful only with StateDir; zero values pick the
	// server defaults).
	JournalBatch int
	JournalDelay time.Duration
}

// DefaultConfig mirrors the paper's scale. TestcaseCount is kept to a
// few hundred so the default run stays fast; raise it to 2000+ for the
// full population.
func DefaultConfig(workDir string) Config {
	return Config{
		Hosts:         100,
		RunsPerHost:   12,
		TestcaseCount: 400,
		SyncEvery:     4,
		MeanGap:       1800,
		WorkDir:       workDir,
		Seed:          2004,
		Population:    comfort.DefaultPopulation(),
	}
}

// Host describes one fleet member.
type Host struct {
	// ID indexes the host; runs carry it as the user id.
	ID int
	// Machine is the host's hardware.
	Machine hostsim.Config
	// User is the person behind it.
	User *comfort.User
	// ClientID is the server-assigned identifier.
	ClientID string
}

// Results holds everything the fleet produced.
type Results struct {
	Config Config
	Hosts  []*Host
	// Runs is every uploaded run record (from the server's store).
	Runs []*core.Run
	DB   *analysis.DB
}

// Run simulates the fleet: starts a server, populates its testcase
// store, runs every host's client lifecycle (register, sync, execute
// with Poisson arrivals, sync), and collects the uploaded results.
func Run(cfg Config) (*Results, error) {
	if cfg.Hosts <= 0 || cfg.RunsPerHost <= 0 {
		return nil, fmt.Errorf("internetstudy: need positive hosts and runs per host")
	}
	if cfg.WorkDir == "" {
		return nil, fmt.Errorf("internetstudy: need a work directory for client stores")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 4
	}
	rng := stats.NewStream(cfg.Seed)

	// Server with the testcase population.
	srv := server.New(rng.Uint64())
	if cfg.StateDir != "" {
		srv.JournalBatch = cfg.JournalBatch
		srv.JournalDelay = cfg.JournalDelay
		if err := srv.OpenState(cfg.StateDir); err != nil {
			return nil, err
		}
	}
	gen := testcase.DefaultGeneratorConfig()
	gen.Count = cfg.TestcaseCount
	tcs, err := testcase.Generate("inet", gen, rng.Fork())
	if err != nil {
		return nil, err
	}
	if err := srv.AddTestcases(tcs...); err != nil {
		return nil, err
	}
	srv.IdleTimeout = cfg.IdleTimeout
	var addr string
	if cfg.Listen != nil {
		ln, err := cfg.Listen("uucs-server")
		if err != nil {
			return nil, err
		}
		go func() { _ = srv.Serve(ln) }()
		addr = ln.Addr().String()
	} else {
		var err error
		addr, err = srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
	}
	defer srv.Close()

	users, err := comfort.SamplePopulation(cfg.Hosts, cfg.Population, rng.Uint64())
	if err != nil {
		return nil, err
	}

	// Derive every host's machine and random stream serially, in host
	// order, so the fan-out below cannot perturb the draw sequence.
	res := &Results{Config: cfg}
	hosts := make([]*Host, cfg.Hosts)
	hostRngs := make([]*stats.Stream, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hosts[i] = &Host{ID: i, Machine: sampleMachine(rng.Fork()), User: users[i]}
		hostRngs[i] = rng.Fork()
	}
	// One Scratch per worker: every host the worker serves reuses the
	// same run buffers through its client, with bit-identical results.
	err = pool.RunScratch(cfg.Workers, cfg.Hosts, core.NewScratch, func(i int, scratch *core.Scratch) error {
		if err := runHost(cfg, addr, hosts[i], hostRngs[i], scratch); err != nil {
			return fmt.Errorf("internetstudy: host %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Hosts = hosts
	// Uploads from concurrent hosts interleave at the server; each
	// host's own batches stay in execution order, so a stable sort by
	// host restores the serial collection order exactly.
	runs := srv.Results()
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].UserID < runs[j].UserID })
	res.Runs = runs
	res.DB = analysis.NewDB(res.Runs)
	return res, nil
}

// sampleMachine draws a heterogeneous host configuration — the spread of
// desktop hardware an open Internet study would see around 2004.
func sampleMachine(s *stats.Stream) hostsim.Config {
	memChoices := []float64{256, 384, 512, 768, 1024}
	mem := memChoices[s.IntN(len(memChoices))]
	return hostsim.Config{
		Name:       fmt.Sprintf("host-%08x", uint32(s.Uint64())),
		CPUGHz:     s.Range(0.8, 3.2),
		MemMB:      mem,
		OSBaseMB:   s.Range(90, 140),
		DiskSeekMs: s.Range(6, 14),
		DiskMBps:   s.Range(20, 60),
		PageKB:     4,
	}
}

// taskWeights is the fleet's foreground-task mix: mostly office work and
// browsing, with a gaming minority.
var taskWeights = []struct {
	task testcase.Task
	w    float64
}{
	{testcase.Word, 0.30},
	{testcase.Powerpoint, 0.15},
	{testcase.IE, 0.40},
	{testcase.Quake, 0.15},
}

func sampleTask(s *stats.Stream) testcase.Task {
	u := s.Float64()
	acc := 0.0
	for _, tw := range taskWeights {
		acc += tw.w
		if u < acc {
			return tw.task
		}
	}
	return taskWeights[len(taskWeights)-1].task
}

// runHost runs one host's client lifecycle. scratch is the worker-owned
// reusable run state shared by all hosts this worker serves.
func runHost(cfg Config, addr string, host *Host, rng *stats.Stream, scratch *core.Scratch) error {
	store, err := client.OpenStore(filepath.Join(cfg.WorkDir, fmt.Sprintf("host-%03d", host.ID)))
	if err != nil {
		return err
	}
	engine := &core.Engine{Machine: host.Machine, Noise: hostsim.DefaultNoise(), MonitorRate: 0}
	snap := protocol.Snapshot{
		Hostname: host.Machine.Name,
		OS:       "winxp",
		CPUGHz:   host.Machine.CPUGHz,
		MemMB:    host.Machine.MemMB,
		DiskGB:   80,
	}
	cl, err := client.New(store, snap, engine, rng.Uint64())
	if err != nil {
		return err
	}
	cl.Scratch = scratch
	if cfg.Dial != nil {
		hostID := host.ID
		cl.Dialer = func(addr string) (net.Conn, error) { return cfg.Dial(hostID, addr) }
	}
	if cfg.IOTimeout > 0 {
		cl.Timeout = cfg.IOTimeout
	}
	if cfg.Retry != (client.Backoff{}) {
		cl.Retry = cfg.Retry
	}
	if cfg.Sleep != nil {
		cl.Sleep = cfg.Sleep
	}
	if err := cl.Register(addr); err != nil {
		return err
	}
	host.ClientID = cl.ID()
	if _, err := cl.HotSync(addr); err != nil {
		return err
	}
	// Poisson testcase executions; the simulated wall clock only paces
	// the arrival process, so we don't sleep.
	clock := 0.0
	for r := 0; r < cfg.RunsPerHost; r++ {
		clock += cl.NextArrival(cfg.MeanGap)
		tc, err := cl.ChooseTestcase()
		if err != nil {
			return err
		}
		task := sampleTask(rng)
		app, err := apps.New(task)
		if err != nil {
			return err
		}
		// The user model's population index equals the host ID, so run
		// records are keyed by host automatically.
		if _, err := cl.ExecuteRun(tc, app, host.User); err != nil {
			return err
		}
		if (r+1)%cfg.SyncEvery == 0 {
			if _, err := cl.HotSync(addr); err != nil {
				return err
			}
		}
	}
	// Final sync flushes remaining results.
	_, err = cl.HotSync(addr)
	return err
}
