package testcase

import (
	"math"
	"testing"
	"testing/quick"

	"uucs/internal/stats"
)

func TestStepShape(t *testing.T) {
	// The paper's Figure 4 example: step(2.0, 120, 40).
	f := Step(2.0, 120, 40, 1)
	if len(f.Values) != 120 {
		t.Fatalf("step has %d samples, want 120", len(f.Values))
	}
	if f.Value(0) != 0 || f.Value(39.5) != 0 {
		t.Error("step should be zero before b")
	}
	if f.Value(40) != 2.0 || f.Value(119) != 2.0 {
		t.Error("step should be x from b to t")
	}
	if f.Value(121) != 0 {
		t.Error("step should be zero after exhaustion")
	}
	if f.Max() != 2.0 {
		t.Errorf("Max = %v, want 2", f.Max())
	}
}

func TestRampShape(t *testing.T) {
	// The paper's Figure 4 example: ramp(2.0, 120).
	f := Ramp(2.0, 120, 1)
	if len(f.Values) != 120 {
		t.Fatalf("ramp has %d samples, want 120", len(f.Values))
	}
	if f.Value(0) != 0 {
		t.Error("ramp should start at zero")
	}
	if got := f.Value(60); math.Abs(got-1.0) > 0.02 {
		t.Errorf("ramp midpoint = %v, want ~1.0", got)
	}
	// Monotone nondecreasing.
	for i := 1; i < len(f.Values); i++ {
		if f.Values[i] < f.Values[i-1] {
			t.Fatalf("ramp decreases at sample %d", i)
		}
	}
}

func TestRampValueExample(t *testing.T) {
	// The paper's §2.1 example: rate 1 Hz, vector [0, 0.5, 1.0, 1.5, 2.0];
	// from 3 to 4 seconds the contention should be 1.5.
	f := ExerciseFunction{Rate: 1, Values: []float64{0, 0.5, 1.0, 1.5, 2.0}}
	if got := f.Value(3.5); got != 1.5 {
		t.Errorf("Value(3.5) = %v, want 1.5", got)
	}
	if got := f.Value(4.5); got != 2.0 {
		t.Errorf("Value(4.5) = %v, want 2.0", got)
	}
	if got := f.Duration(); got != 5 {
		t.Errorf("Duration = %v, want 5", got)
	}
}

func TestSinShape(t *testing.T) {
	f := Sin(2.0, 30, 120, 2)
	if f.Max() > 2.0+1e-9 {
		t.Errorf("sin exceeds amplitude: %v", f.Max())
	}
	for i, v := range f.Values {
		if v < 0 {
			t.Fatalf("sin negative at %d: %v", i, v)
		}
	}
	if f.Value(0) > 0.01 {
		t.Errorf("sin should start near zero, got %v", f.Value(0))
	}
	if got := f.Value(15); math.Abs(got-2.0) > 0.05 {
		t.Errorf("sin peak at half period = %v, want ~2", got)
	}
}

func TestSawShape(t *testing.T) {
	f := Saw(3.0, 20, 60, 1)
	if f.Value(0) != 0 {
		t.Error("saw should start at zero")
	}
	if got := f.Value(10); math.Abs(got-1.5) > 0.2 {
		t.Errorf("saw midperiod = %v, want ~1.5", got)
	}
	if got := f.Value(21); got > 0.5 {
		t.Errorf("saw should reset each period, got %v just after reset", got)
	}
	if f.Max() > 3.0 {
		t.Errorf("saw exceeds amplitude: %v", f.Max())
	}
}

func TestBlankIsBlank(t *testing.T) {
	f := Blank(120, 1)
	if !f.IsBlank() {
		t.Error("Blank not blank")
	}
	if f.Duration() != 120 {
		t.Errorf("blank duration = %v", f.Duration())
	}
	if Step(1, 10, 0, 1).IsBlank() {
		t.Error("step reported blank")
	}
}

func TestExpExpLoad(t *testing.T) {
	// With rho = arrival*meanSize = 0.5 the average number-in-system of an
	// M/M/1 queue is rho/(1-rho) = 1.0; the sampled series should be in
	// that neighborhood.
	s := stats.NewStream(42)
	f := ExpExp(0.25, 2.0, 2000, 1, s)
	mean := f.Mean()
	if mean < 0.5 || mean > 1.8 {
		t.Errorf("M/M/1 mean contention = %v, want ~1.0", mean)
	}
	for _, v := range f.Values {
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("queue contention must be a non-negative integer, got %v", v)
		}
	}
}

func TestExpParHeavyTail(t *testing.T) {
	s := stats.NewStream(43)
	f := ExpPar(0.2, 0.5, 1.5, 1000, 1, s)
	if f.Max() < 2 {
		t.Errorf("Pareto job sizes should produce bursts, max = %v", f.Max())
	}
	if f.IsBlank() {
		t.Error("exppar produced a blank series")
	}
}

func TestQueueSeriesDeterminism(t *testing.T) {
	a := ExpExp(0.5, 1.0, 200, 1, stats.NewStream(7))
	b := ExpExp(0.5, 1.0, 200, 1, stats.NewStream(7))
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("expexp not deterministic at sample %d", i)
		}
	}
}

func TestLastN(t *testing.T) {
	f := ExerciseFunction{Rate: 1, Values: []float64{1, 2, 3, 4, 5}}
	got := f.LastN(3.5, 5)
	want := []float64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("LastN = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LastN = %v, want %v", got, want)
		}
	}
	// Past exhaustion: the last five values of the function.
	got = f.LastN(100, 5)
	if len(got) != 5 || got[4] != 5 {
		t.Errorf("LastN past end = %v", got)
	}
	if f.LastN(-1, 5) != nil {
		t.Error("LastN before start should be nil")
	}
	if f.LastN(2, 0) != nil {
		t.Error("LastN with n=0 should be nil")
	}
}

func TestValueOutOfRangeProperty(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		s := stats.NewStream(seed)
		f := Ramp(s.Range(0.1, 5), float64(n%100)+10, 1)
		return f.Value(-1) == 0 && f.Value(f.Duration()+1) == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShapesCatalog(t *testing.T) {
	shapes := Shapes()
	if len(shapes) != 7 {
		t.Fatalf("got %d shapes, want 7 (Figure 3 families + blank)", len(shapes))
	}
	for _, sh := range shapes {
		if d := Describe(sh); d == "" || d[:7] == "unknown" {
			t.Errorf("Describe(%s) = %q", sh, d)
		}
	}
	if d := Describe(Shape("bogus")); d == "" {
		t.Error("Describe of unknown shape should still return text")
	}
}
