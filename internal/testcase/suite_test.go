package testcase

import (
	"testing"

	"uucs/internal/stats"
)

func TestControlledSuiteMatchesFigure8(t *testing.T) {
	// Spot-check the exact parameters from the paper's Figure 8.
	checks := []struct {
		task     Task
		idx      int // 0-based testcase number
		resource Resource
		shape    Shape
		max      float64
	}{
		{Word, 0, CPU, ShapeRamp, 7.0},
		{Word, 4, CPU, ShapeStep, 5.5},
		{Powerpoint, 4, CPU, ShapeStep, 0.98},
		{Powerpoint, 2, Disk, ShapeRamp, 8.0},
		{IE, 2, Disk, ShapeRamp, 5.0},
		{IE, 4, CPU, ShapeStep, 1.0},
		{Quake, 0, CPU, ShapeRamp, 1.3},
		{Quake, 4, CPU, ShapeStep, 0.5},
		{Quake, 5, Disk, ShapeStep, 5.0},
	}
	for _, c := range checks {
		suite, err := ControlledSuite(c.task)
		if err != nil {
			t.Fatal(err)
		}
		if len(suite) != 8 {
			t.Fatalf("%s suite has %d testcases, want 8", c.task, len(suite))
		}
		tc := suite[c.idx]
		if tc.Shape != c.shape {
			t.Errorf("%s[%d] shape = %s, want %s", c.task, c.idx, tc.Shape, c.shape)
		}
		if got := tc.PrimaryResource(); got != c.resource {
			t.Errorf("%s[%d] resource = %s, want %s", c.task, c.idx, got, c.resource)
		}
		f := tc.Functions[c.resource]
		// Ramp maxima fall one sample short of the target level x because
		// the final sample is at t-1/rate; allow that margin.
		if got := f.Max(); got > c.max+1e-9 || got < c.max*0.98 {
			t.Errorf("%s[%d] max = %v, want ~%v", c.task, c.idx, got, c.max)
		}
	}
}

func TestControlledSuiteBlanksAndMemory(t *testing.T) {
	for _, task := range Tasks() {
		suite, err := ControlledSuite(task)
		if err != nil {
			t.Fatal(err)
		}
		blanks := 0
		for _, tc := range suite {
			if tc.IsBlank() {
				blanks++
			}
			if tc.Duration() != 120 {
				t.Errorf("%s: testcase %s duration = %v, want 120", task, tc.ID, tc.Duration())
			}
			if err := tc.Validate(); err != nil {
				t.Errorf("%s: %v", task, err)
			}
		}
		if blanks != 2 {
			t.Errorf("%s suite has %d blanks, want 2 (testcases 2 and 7)", task, blanks)
		}
		// Memory testcases always ramp/step to 1.0 in every task.
		for _, idx := range []int{3, 7} {
			f, ok := suite[idx].Functions[Memory]
			if !ok {
				t.Errorf("%s[%d] is not a memory testcase", task, idx)
				continue
			}
			if f.Max() > 1 || f.Max() < 0.97 {
				t.Errorf("%s[%d] memory max = %v, want ~1.0", task, idx, f.Max())
			}
		}
	}
}

func TestControlledSuiteAll(t *testing.T) {
	all, err := ControlledSuiteAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("suite covers %d tasks", len(all))
	}
	total := 0
	ids := make(map[string]bool)
	for _, tcs := range all {
		total += len(tcs)
		for _, tc := range tcs {
			if ids[tc.ID] {
				t.Errorf("duplicate testcase id %s", tc.ID)
			}
			ids[tc.ID] = true
		}
	}
	if total != 32 {
		t.Errorf("total testcases = %d, want 32", total)
	}
}

func TestControlledSuiteUnknownTask(t *testing.T) {
	if _, err := ControlledSuite(Task("emacs")); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestParseTask(t *testing.T) {
	for _, task := range Tasks() {
		got, err := ParseTask(string(task))
		if err != nil || got != task {
			t.Errorf("ParseTask(%s) = %v, %v", task, got, err)
		}
		if TaskLabel(task) == "" {
			t.Errorf("TaskLabel(%s) empty", task)
		}
	}
	if _, err := ParseTask("vi"); err == nil {
		t.Error("ParseTask accepted unknown task")
	}
	if TaskLabel(Task("other")) != "other" {
		t.Error("TaskLabel fallback wrong")
	}
}

func TestGenerator(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Count = 200
	s := stats.NewStream(1)
	tcs, err := Generate("inet", cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 200 {
		t.Fatalf("generated %d", len(tcs))
	}
	blanks, queues := 0, 0
	shapes := make(map[Shape]int)
	for _, tc := range tcs {
		if err := tc.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tc.ID, err)
		}
		shapes[tc.Shape]++
		if tc.IsBlank() {
			blanks++
		}
		if tc.Shape == ShapeExpExp || tc.Shape == ShapeExpPar {
			queues++
		}
		for r, f := range tc.Functions {
			limit := cfg.MaxCPU
			switch r {
			case Disk:
				limit = cfg.MaxDisk
			case Memory:
				limit = 1
			}
			if f.Max() > limit+1e-9 {
				t.Errorf("%s: %s exceeds verified range: %v > %v", tc.ID, r, f.Max(), limit)
			}
		}
	}
	if blanks < 5 || blanks > 50 {
		t.Errorf("blank count = %d, want ~10%%", blanks)
	}
	if queues < 60 {
		t.Errorf("queue-model count = %d, want predominately M/M/1 and M/G/1", queues)
	}
	if len(shapes) < 5 {
		t.Errorf("only %d shape families generated: %v", len(shapes), shapes)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Count = 20
	a, err := Generate("x", cfg, stats.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("x", cfg, stats.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		as, _ := EncodeString(a[i])
		bs, _ := EncodeString(b[i])
		if as != bs {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}

func TestGeneratorBadConfig(t *testing.T) {
	s := stats.NewStream(1)
	if _, err := Generate("x", GeneratorConfig{Count: 0, Rate: 1, Duration: 10}, s); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Generate("x", GeneratorConfig{Count: 1, Rate: 0, Duration: 10}, s); err == nil {
		t.Error("zero rate accepted")
	}
}
