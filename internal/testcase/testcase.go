package testcase

import (
	"fmt"
	"sort"
	"strings"
)

// Resource identifies one of the borrowable resources (paper §2.2).
type Resource string

// The three resources UUCS exercises. The paper also prototyped network
// exercisers but excluded them from the study because they impact hosts
// beyond the client machine; we follow the paper and omit network.
const (
	CPU    Resource = "cpu"
	Memory Resource = "memory"
	Disk   Resource = "disk"
)

// Resources lists all resources in canonical order.
func Resources() []Resource { return []Resource{CPU, Memory, Disk} }

// ParseResource converts a string to a Resource.
func ParseResource(s string) (Resource, error) {
	switch Resource(strings.ToLower(s)) {
	case CPU:
		return CPU, nil
	case Memory:
		return Memory, nil
	case Disk:
		return Disk, nil
	}
	return "", fmt.Errorf("testcase: unknown resource %q", s)
}

// Testcase encodes the details of resource borrowing for one run: a
// unique identifier, a sample rate, and a collection of exercise
// functions, one per resource used during the run (paper §2.1).
type Testcase struct {
	// ID is the globally unique testcase identifier.
	ID string
	// SampleRate is the sample rate in Hz shared by all exercise
	// functions in the testcase.
	SampleRate float64
	// Functions maps each exercised resource to its exercise function.
	// Resources absent from the map are not exercised (contention 0).
	Functions map[Resource]ExerciseFunction
	// Shape records the generating family for analysis grouping; blank
	// testcases use ShapeBlank.
	Shape Shape
	// Params records the generator parameters (e.g. "7.0,120" for a
	// ramp), mirroring the paper's Figure 8 notation.
	Params string
}

// New returns a testcase with the given id and sample rate and no
// exercise functions (a blank testcase until functions are added).
func New(id string, rate float64) *Testcase {
	return &Testcase{ID: id, SampleRate: rate, Functions: make(map[Resource]ExerciseFunction), Shape: ShapeBlank}
}

// Duration returns the longest exercise-function duration in the
// testcase, which is how long a run lasts if the user never reacts.
func (tc *Testcase) Duration() float64 {
	d := 0.0
	for _, f := range tc.Functions {
		if fd := f.Duration(); fd > d {
			d = fd
		}
	}
	return d
}

// IsBlank reports whether the testcase exercises nothing — the paper's
// blank testcases, used to measure the discomfort noise floor.
func (tc *Testcase) IsBlank() bool {
	for _, f := range tc.Functions {
		if !f.IsBlank() {
			return false
		}
	}
	return true
}

// resourceOrder is the canonical resource order as a fixed array, so
// hot paths can iterate it without the slice allocation Resources()
// performs.
var resourceOrder = [...]Resource{CPU, Memory, Disk}

// ExercisedResources returns the resources with non-blank exercise
// functions, in canonical order.
func (tc *Testcase) ExercisedResources() []Resource {
	var out []Resource
	for _, r := range resourceOrder {
		if f, ok := tc.Functions[r]; ok && !f.IsBlank() {
			out = append(out, r)
		}
	}
	return out
}

// PrimaryResource returns the single exercised resource for the
// single-resource testcases used throughout the controlled study, or ""
// for blank or multi-resource testcases. It is allocation-free: the
// run path records it per run.
func (tc *Testcase) PrimaryResource() Resource {
	var primary Resource
	n := 0
	for _, r := range resourceOrder {
		if f, ok := tc.Functions[r]; ok && !f.IsBlank() {
			primary = r
			n++
		}
	}
	if n == 1 {
		return primary
	}
	return ""
}

// Contention returns the contention level for resource r at time t.
func (tc *Testcase) Contention(r Resource, t float64) float64 {
	f, ok := tc.Functions[r]
	if !ok {
		return 0
	}
	return f.Value(t)
}

// LastFive returns, per exercised resource, the last five contention
// values at time t — exactly the per-run data the paper stores (§2.3).
func (tc *Testcase) LastFive(t float64) map[Resource][]float64 {
	return tc.LastFiveInto(nil, t)
}

// LastFiveInto is LastFive reusing a previous run's map and its slices'
// capacity. Stale resources are deleted, so the result is
// content-identical to a fresh LastFive call; with a warmed buffer it
// allocates nothing.
func (tc *Testcase) LastFiveInto(m map[Resource][]float64, t float64) map[Resource][]float64 {
	if m == nil {
		m = make(map[Resource][]float64, len(tc.Functions))
	}
	// Hand buffers from resources this testcase does not exercise to
	// ones it does, so rotating through testcases with different
	// resource sets (the fleet's steady state) still allocates nothing.
	var spare []float64
	for r := range m {
		if _, ok := tc.Functions[r]; !ok {
			if cap(m[r]) > cap(spare) {
				spare = m[r]
			}
			delete(m, r)
		}
	}
	for r, f := range tc.Functions {
		buf := m[r]
		if buf == nil {
			buf, spare = spare, nil
		}
		m[r] = f.AppendLastN(buf[:0], t, 5)
	}
	return m
}

// Validate checks internal consistency: positive sample rate, matching
// per-function rates, non-negative contention, and memory contention no
// greater than one (the paper avoids memory contention > 1 because it
// immediately causes thrashing and is hard to stop punctually).
func (tc *Testcase) Validate() error {
	if tc.ID == "" {
		return fmt.Errorf("testcase: empty id")
	}
	if tc.SampleRate <= 0 {
		return fmt.Errorf("testcase %s: non-positive sample rate %g", tc.ID, tc.SampleRate)
	}
	for r, f := range tc.Functions {
		if f.Rate != tc.SampleRate {
			return fmt.Errorf("testcase %s: %s function rate %g != testcase rate %g", tc.ID, r, f.Rate, tc.SampleRate)
		}
		for i, v := range f.Values {
			if v < 0 {
				return fmt.Errorf("testcase %s: %s sample %d is negative (%g)", tc.ID, r, i, v)
			}
			if r == Memory && v > 1 {
				return fmt.Errorf("testcase %s: memory contention %g > 1 at sample %d (would thrash)", tc.ID, v, i)
			}
		}
	}
	return nil
}

// String summarizes the testcase for logs.
func (tc *Testcase) String() string {
	var parts []string
	for _, r := range Resources() {
		if f, ok := tc.Functions[r]; ok && !f.IsBlank() {
			parts = append(parts, fmt.Sprintf("%s max=%.2f", r, f.Max()))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "blank")
	}
	return fmt.Sprintf("%s [%s %s] %.0fs %s", tc.ID, tc.Shape, tc.Params, tc.Duration(), strings.Join(parts, " "))
}

// SortByID sorts testcases by identifier, for deterministic stores.
func SortByID(tcs []*Testcase) {
	sort.Slice(tcs, func(i, j int) bool { return tcs[i].ID < tcs[j].ID })
}
