package testcase

import (
	"strings"
	"testing"
	"testing/quick"

	"uucs/internal/stats"
)

func TestTestcaseBasics(t *testing.T) {
	tc := New("t1", 1)
	tc.Functions[CPU] = Ramp(2, 120, 1)
	tc.Shape = ShapeRamp
	tc.Params = "2,120"
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if tc.Duration() != 120 {
		t.Errorf("Duration = %v", tc.Duration())
	}
	if tc.IsBlank() {
		t.Error("ramp testcase reported blank")
	}
	if got := tc.PrimaryResource(); got != CPU {
		t.Errorf("PrimaryResource = %v", got)
	}
	if got := tc.Contention(CPU, 60); got < 0.9 || got > 1.1 {
		t.Errorf("Contention(CPU, 60) = %v", got)
	}
	if got := tc.Contention(Disk, 60); got != 0 {
		t.Errorf("unexercised resource contention = %v", got)
	}
}

func TestTestcaseValidation(t *testing.T) {
	tc := New("", 1)
	if err := tc.Validate(); err == nil {
		t.Error("empty id should fail validation")
	}
	tc = New("x", 0)
	if err := tc.Validate(); err == nil {
		t.Error("zero rate should fail validation")
	}
	tc = New("x", 1)
	tc.Functions[Memory] = ExerciseFunction{Rate: 1, Values: []float64{0.5, 1.5}}
	if err := tc.Validate(); err == nil || !strings.Contains(err.Error(), "thrash") {
		t.Errorf("memory contention > 1 should fail validation, got %v", err)
	}
	tc = New("x", 1)
	tc.Functions[CPU] = ExerciseFunction{Rate: 1, Values: []float64{-0.1}}
	if err := tc.Validate(); err == nil {
		t.Error("negative contention should fail validation")
	}
	tc = New("x", 1)
	tc.Functions[CPU] = ExerciseFunction{Rate: 2, Values: []float64{0.1}}
	if err := tc.Validate(); err == nil {
		t.Error("mismatched rates should fail validation")
	}
}

func TestBlankTestcase(t *testing.T) {
	tc := New("b", 1)
	tc.Functions[CPU] = Blank(120, 1)
	if !tc.IsBlank() {
		t.Error("blank testcase not blank")
	}
	if rs := tc.ExercisedResources(); len(rs) != 0 {
		t.Errorf("blank testcase exercises %v", rs)
	}
	if tc.PrimaryResource() != "" {
		t.Error("blank testcase has a primary resource")
	}
	if !strings.Contains(tc.String(), "blank") {
		t.Errorf("String = %q", tc.String())
	}
}

func TestLastFive(t *testing.T) {
	tc := New("t", 1)
	tc.Functions[CPU] = ExerciseFunction{Rate: 1, Values: []float64{0, 1, 2, 3, 4, 5, 6}}
	lf := tc.LastFive(5.5)
	vals := lf[CPU]
	if len(vals) != 5 || vals[0] != 1 || vals[4] != 5 {
		t.Errorf("LastFive = %v", vals)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := New("round-1", 2)
	tc.Shape = ShapeStep
	tc.Params = "2,60,20"
	tc.Functions[CPU] = Step(2, 60, 20, 2)
	tc.Functions[Memory] = ExerciseFunction{Rate: 2, Values: []float64{0.1, 0.2, 0.3}}
	s, err := EncodeString(tc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeString(s)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, s)
	}
	if got.ID != tc.ID || got.SampleRate != tc.SampleRate || got.Shape != tc.Shape || got.Params != tc.Params {
		t.Errorf("metadata mismatch: %+v vs %+v", got, tc)
	}
	if len(got.Functions) != 2 {
		t.Fatalf("decoded %d functions", len(got.Functions))
	}
	for r, f := range tc.Functions {
		gf := got.Functions[r]
		if len(gf.Values) != len(f.Values) {
			t.Fatalf("%s: %d values vs %d", r, len(gf.Values), len(f.Values))
		}
		for i := range f.Values {
			if gf.Values[i] != f.Values[i] {
				t.Fatalf("%s sample %d: %v vs %v", r, i, gf.Values[i], f.Values[i])
			}
		}
	}
}

func TestDecodeMultiple(t *testing.T) {
	text := `# a comment
testcase a
rate 1
shape blank
function cpu 0 0 0
end

testcase b
rate 1
shape ramp 1,3
function disk 0 0.5 1
end
`
	tcs, err := DecodeAll(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 2 || tcs[0].ID != "a" || tcs[1].ID != "b" {
		t.Fatalf("decoded %d testcases", len(tcs))
	}
	if !tcs[0].IsBlank() {
		t.Error("testcase a should be blank")
	}
	if tcs[1].Functions[Disk].Values[2] != 1 {
		t.Error("testcase b disk function wrong")
	}
}

func TestDecodeRateAfterFunction(t *testing.T) {
	text := "testcase a\nfunction cpu 1 2\nrate 4\nend\n"
	tcs, err := DecodeAll(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := tcs[0].Functions[CPU].Rate; got != 4 {
		t.Errorf("function rate = %v, want bound to 4", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"rate 1\n",                                   // rate outside testcase
		"testcase a\nrate 1\n",                       // unterminated
		"testcase a\nrate x\nend\n",                  // bad rate
		"testcase a\nrate 1\nfunction gpu 1\nend\n",  // unknown resource
		"testcase a\nrate 1\nfunction cpu z\nend\n",  // bad sample
		"testcase a\ntestcase b\n",                   // nested
		"bogus directive\n",                          // unknown directive
		"end\n",                                      // end outside
		"testcase a\nrate 1\nshape\nend\n",           // shape missing family
		"testcase a\nrate 1\nfunction cpu -1\nend\n", // negative contention
	}
	for _, c := range cases {
		if _, err := DecodeAll(strings.NewReader(c)); err == nil {
			t.Errorf("decode accepted invalid input %q", c)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	tc := New("", 1)
	var b strings.Builder
	if err := Encode(&b, tc); err == nil {
		t.Error("Encode accepted invalid testcase")
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(seed uint64) bool {
		s := stats.NewStream(seed)
		tcs, err := Generate("p", GeneratorConfig{
			Count: 3, Rate: 1, Duration: 30,
			BlankFraction: 0.2, QueueFraction: 0.5, MaxCPU: 10, MaxDisk: 7,
		}, s)
		if err != nil {
			return false
		}
		var b strings.Builder
		if err := EncodeAll(&b, tcs); err != nil {
			return false
		}
		got, err := DecodeAll(strings.NewReader(b.String()))
		if err != nil || len(got) != len(tcs) {
			return false
		}
		for i := range tcs {
			if got[i].ID != tcs[i].ID || got[i].Shape != tcs[i].Shape {
				return false
			}
			for r, f := range tcs[i].Functions {
				gf, ok := got[i].Functions[r]
				if !ok || len(gf.Values) != len(f.Values) {
					return false
				}
				for j := range f.Values {
					if gf.Values[j] != f.Values[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSortByID(t *testing.T) {
	tcs := []*Testcase{New("c", 1), New("a", 1), New("b", 1)}
	SortByID(tcs)
	if tcs[0].ID != "a" || tcs[2].ID != "c" {
		t.Errorf("sort order: %v %v %v", tcs[0].ID, tcs[1].ID, tcs[2].ID)
	}
}
