// Package testcase implements UUCS testcases and exercise functions
// (paper §2.1). A testcase encodes how to "exercise" a collection of
// resources: it has a unique identifier, a sample rate, and one exercise
// function per resource. An exercise function is a vector of contention
// values sampled at that rate; each value indicates the extent of
// resource borrowing at the corresponding time into the testcase.
//
// The package provides the six exercise-function families of the paper's
// Figure 3 (step, ramp, sin, saw, expexp, exppar), a line-oriented text
// encoding compatible with the paper's text-file testcase stores, the
// exact controlled-study suite of Figure 8, and the randomized generator
// used to populate an Internet-study server with a large testcase
// population.
package testcase

import (
	"fmt"
	"math"

	"uucs/internal/stats"
)

// ExerciseFunction is a time series of contention values for one
// resource, sampled at Rate samples per second. Value i applies from time
// i/Rate to (i+1)/Rate seconds into the testcase. The meaning of
// "contention" is resource-specific (paper §2.2): for CPU and disk it is
// the number of competing equal-priority tasks (possibly fractional); for
// memory it is the fraction of physical memory borrowed.
type ExerciseFunction struct {
	// Rate is the sample rate in Hz. Must be positive.
	Rate float64
	// Values holds the contention level per sample.
	Values []float64
}

// Duration returns the length of the exercise function in seconds.
func (f ExerciseFunction) Duration() float64 {
	if f.Rate <= 0 {
		return 0
	}
	return float64(len(f.Values)) / f.Rate
}

// Value returns the contention level t seconds into the testcase. Before
// time zero and after exhaustion it returns 0.
func (f ExerciseFunction) Value(t float64) float64 {
	if f.Rate <= 0 || t < 0 {
		return 0
	}
	i := int(t * f.Rate)
	if i < 0 || i >= len(f.Values) {
		return 0
	}
	return f.Values[i]
}

// LastN returns the last n contention values at or before time t, oldest
// first — the paper records "the last five contention values used in each
// exercise function at the point of user feedback" with every run.
func (f ExerciseFunction) LastN(t float64, n int) []float64 {
	return f.AppendLastN(nil, t, n)
}

// AppendLastN is LastN appending into dst, allocating only when dst
// lacks capacity. The degenerate cases where LastN returns nil return
// nil here too (dropping dst), so results compare equal to LastN's
// regardless of the buffer passed in.
func (f ExerciseFunction) AppendLastN(dst []float64, t float64, n int) []float64 {
	if f.Rate <= 0 || n <= 0 {
		return nil
	}
	i := int(t * f.Rate)
	if i >= len(f.Values) {
		i = len(f.Values) - 1
	}
	if i < 0 {
		return nil
	}
	start := i - n + 1
	if start < 0 {
		start = 0
	}
	return append(dst, f.Values[start:i+1]...)
}

// Max returns the largest contention value in the function.
func (f ExerciseFunction) Max() float64 {
	m := 0.0
	for _, v := range f.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average contention value of the function.
func (f ExerciseFunction) Mean() float64 { return stats.Mean(f.Values) }

// IsBlank reports whether the function applies no contention at all.
func (f ExerciseFunction) IsBlank() bool {
	for _, v := range f.Values {
		if v != 0 {
			return false
		}
	}
	return true
}

// samples computes the number of samples covering dur seconds at rate Hz.
func samples(dur, rate float64) int {
	n := int(math.Ceil(dur * rate))
	if n < 0 {
		n = 0
	}
	return n
}

// Step returns the paper's step(x, t, b) function: zero contention until
// time b, then contention x until time t, sampled at rate Hz (Figure 4,
// right).
func Step(x, t, b, rate float64) ExerciseFunction {
	n := samples(t, rate)
	vals := make([]float64, n)
	for i := range vals {
		if float64(i)/rate >= b {
			vals[i] = x
		}
	}
	return ExerciseFunction{Rate: rate, Values: vals}
}

// Ramp returns the paper's ramp(x, t) function: contention rising
// linearly from zero at time 0 to x at time t (Figure 4, left).
func Ramp(x, t, rate float64) ExerciseFunction {
	n := samples(t, rate)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = x * (float64(i) / rate) / t
	}
	return ExerciseFunction{Rate: rate, Values: vals}
}

// Sin returns a rectified sine wave oscillating between 0 and amp with
// the given period over duration t (Figure 3 "sin"). Values are clamped
// at zero so contention is never negative.
func Sin(amp, period, t, rate float64) ExerciseFunction {
	n := samples(t, rate)
	vals := make([]float64, n)
	for i := range vals {
		tt := float64(i) / rate
		v := amp / 2 * (1 + math.Sin(2*math.Pi*tt/period-math.Pi/2))
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	return ExerciseFunction{Rate: rate, Values: vals}
}

// Saw returns a sawtooth wave rising from 0 to amp each period over
// duration t (Figure 3 "saw").
func Saw(amp, period, t, rate float64) ExerciseFunction {
	n := samples(t, rate)
	vals := make([]float64, n)
	for i := range vals {
		tt := float64(i) / rate
		frac := tt/period - math.Floor(tt/period)
		vals[i] = amp * frac
	}
	return ExerciseFunction{Rate: rate, Values: vals}
}

// Blank returns an all-zero exercise function of duration t — the paper's
// blank testcases measure the background level of discomfort (the "noise
// floor").
func Blank(t, rate float64) ExerciseFunction {
	return ExerciseFunction{Rate: rate, Values: make([]float64, samples(t, rate))}
}

// ExpExp returns a contention series generated by an M/M/1-style model
// (Figure 3 "expexp"): jobs arrive in a Poisson process with the given
// arrival rate (jobs/second) and carry exponentially distributed service
// demand with mean meanSize seconds; contention at any instant is the
// number of jobs in the system. The series is deterministic given the
// stream.
func ExpExp(arrivalRate, meanSize, t, rate float64, s *stats.Stream) ExerciseFunction {
	return queueSeries(arrivalRate, stats.Exponential{Mu: meanSize}, t, rate, s)
}

// ExpPar returns a contention series from an M/G/1-style model with
// Pareto job sizes (Figure 3 "exppar"): Poisson arrivals, Pareto(xm,
// alpha) service demand. Heavy-tailed sizes produce the long contention
// bursts the paper's Internet-study testcases predominantly use.
func ExpPar(arrivalRate, xm, alpha, t, rate float64, s *stats.Stream) ExerciseFunction {
	return queueSeries(arrivalRate, stats.Pareto{Xm: xm, Alpha: alpha}, t, rate, s)
}

// queueSeries simulates a single-server queue with Poisson arrivals and
// the given service-size distribution and samples the number-in-system.
func queueSeries(arrivalRate float64, size stats.Dist, t, rate float64, s *stats.Stream) ExerciseFunction {
	n := samples(t, rate)
	vals := make([]float64, n)
	if arrivalRate <= 0 {
		return ExerciseFunction{Rate: rate, Values: vals}
	}
	// Generate arrivals and compute departures under FIFO service.
	type job struct{ arrive, depart float64 }
	var jobs []job
	now := s.Exp(1 / arrivalRate)
	serverFree := 0.0
	for now < t {
		start := now
		if serverFree > start {
			start = serverFree
		}
		dur := size.Sample(s)
		// Cap pathological Pareto draws at the testcase length: a single
		// job longer than the run saturates contention anyway.
		if dur > t {
			dur = t
		}
		serverFree = start + dur
		jobs = append(jobs, job{arrive: now, depart: serverFree})
		now += s.Exp(1 / arrivalRate)
	}
	for i := range vals {
		tt := float64(i) / rate
		c := 0
		for _, j := range jobs {
			if j.arrive <= tt && tt < j.depart {
				c++
			}
		}
		vals[i] = float64(c)
	}
	return ExerciseFunction{Rate: rate, Values: vals}
}

// Shape identifies an exercise-function family (Figure 3).
type Shape string

// The exercise-function families from the paper's Figure 3.
const (
	ShapeStep   Shape = "step"
	ShapeRamp   Shape = "ramp"
	ShapeSin    Shape = "sin"
	ShapeSaw    Shape = "saw"
	ShapeExpExp Shape = "expexp"
	ShapeExpPar Shape = "exppar"
	ShapeBlank  Shape = "blank"
)

// Shapes lists all families in catalog order.
func Shapes() []Shape {
	return []Shape{ShapeStep, ShapeRamp, ShapeSin, ShapeSaw, ShapeExpExp, ShapeExpPar, ShapeBlank}
}

// Describe returns the Figure 3 description of a shape.
func Describe(sh Shape) string {
	switch sh {
	case ShapeStep:
		return "step(x,t,b): contention of zero to time b, then x to time t"
	case ShapeRamp:
		return "ramp(x,t): ramp from zero to x over times 0 to t"
	case ShapeSin:
		return "sin: sine wave"
	case ShapeSaw:
		return "saw: sawtooth wave"
	case ShapeExpExp:
		return "expexp: Poisson arrivals of exponential-sized jobs (M/M/1)"
	case ShapeExpPar:
		return "exppar: Poisson arrivals of Pareto-sized jobs (M/G/1)"
	case ShapeBlank:
		return "blank: no contention (noise-floor probe)"
	default:
		return fmt.Sprintf("unknown shape %q", string(sh))
	}
}
