package testcase

import (
	"fmt"

	"uucs/internal/stats"
)

// GeneratorConfig controls randomized testcase generation for the
// Internet-wide study, which uses a large population of testcases (over
// 2000 in the paper) spanning a range of parameters for each exercise
// function type, predominantly from the M/M/1 and M/G/1 models (§2.1).
type GeneratorConfig struct {
	// Count is the number of testcases to generate.
	Count int
	// Rate is the sample rate in Hz.
	Rate float64
	// Duration is each testcase's length in seconds.
	Duration float64
	// BlankFraction is the fraction of blank (noise-floor) testcases.
	BlankFraction float64
	// QueueFraction is the fraction of expexp/exppar testcases among the
	// non-blank ones; the remainder is split among step/ramp/sin/saw.
	QueueFraction float64
	// MaxCPU, MaxDisk bound contention levels; memory is always in (0,1].
	MaxCPU, MaxDisk float64
}

// DefaultGeneratorConfig mirrors the Internet study's emphasis: mostly
// queueing-model testcases over a wide parameter range.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Count:         2000,
		Rate:          1,
		Duration:      120,
		BlankFraction: 0.10,
		QueueFraction: 0.60,
		MaxCPU:        10, // the CPU exerciser is verified to contention 10
		MaxDisk:       7,  // the disk exerciser is verified to contention 7
	}
}

// Generate produces cfg.Count randomized testcases with identifiers
// prefixed by prefix, deterministically from the stream.
func Generate(prefix string, cfg GeneratorConfig, s *stats.Stream) ([]*Testcase, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("testcase: generator count must be positive")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("testcase: generator needs positive rate and duration")
	}
	out := make([]*Testcase, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		tc, err := generateOne(fmt.Sprintf("%s-%05d", prefix, i), cfg, s)
		if err != nil {
			return nil, err
		}
		out = append(out, tc)
	}
	return out, nil
}

func generateOne(id string, cfg GeneratorConfig, s *stats.Stream) (*Testcase, error) {
	tc := New(id, cfg.Rate)
	if s.Bool(cfg.BlankFraction) {
		tc.Shape = ShapeBlank
		tc.Functions[CPU] = Blank(cfg.Duration, cfg.Rate)
		return tc, tc.Validate()
	}
	res := Resources()[s.IntN(3)]
	maxLevel := cfg.MaxCPU
	switch res {
	case Disk:
		maxLevel = cfg.MaxDisk
	case Memory:
		maxLevel = 1
	}
	var f ExerciseFunction
	if s.Bool(cfg.QueueFraction) && res != Memory {
		// Queueing-model testcases: arrival rate and size chosen so that
		// offered load (rho) spans light to heavily overloaded.
		rho := s.Range(0.2, 2.5)
		meanSize := s.Range(0.5, 8)
		arrival := rho / meanSize
		if s.Bool(0.5) {
			tc.Shape = ShapeExpExp
			tc.Params = fmt.Sprintf("%.3f,%.3f", arrival, meanSize)
			f = ExpExp(arrival, meanSize, cfg.Duration, cfg.Rate, s)
		} else {
			alpha := s.Range(1.1, 2.5)
			xm := meanSize * (alpha - 1) / alpha // keep the same mean size
			tc.Shape = ShapeExpPar
			tc.Params = fmt.Sprintf("%.3f,%.3f,%.2f", arrival, xm, alpha)
			f = ExpPar(arrival, xm, alpha, cfg.Duration, cfg.Rate, s)
		}
		f = clampFunction(f, maxLevel)
	} else {
		level := s.Range(0.1*maxLevel, maxLevel)
		switch s.IntN(4) {
		case 0:
			tc.Shape = ShapeStep
			b := s.Range(0.1, 0.6) * cfg.Duration
			tc.Params = fmt.Sprintf("%.2f,%g,%.0f", level, cfg.Duration, b)
			f = Step(level, cfg.Duration, b, cfg.Rate)
		case 1:
			tc.Shape = ShapeRamp
			tc.Params = fmt.Sprintf("%.2f,%g", level, cfg.Duration)
			f = Ramp(level, cfg.Duration, cfg.Rate)
		case 2:
			tc.Shape = ShapeSin
			period := s.Range(10, 60)
			tc.Params = fmt.Sprintf("%.2f,%.0f", level, period)
			f = Sin(level, period, cfg.Duration, cfg.Rate)
		default:
			tc.Shape = ShapeSaw
			period := s.Range(10, 60)
			tc.Params = fmt.Sprintf("%.2f,%.0f", level, period)
			f = Saw(level, period, cfg.Duration, cfg.Rate)
		}
	}
	tc.Functions[res] = f
	return tc, tc.Validate()
}

// clampFunction caps every sample at maxLevel, used to keep queue-model
// bursts within the range the exercisers are verified for.
func clampFunction(f ExerciseFunction, maxLevel float64) ExerciseFunction {
	for i, v := range f.Values {
		if v > maxLevel {
			f.Values[i] = maxLevel
		}
	}
	return f
}
