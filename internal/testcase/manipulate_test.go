package testcase

import (
	"math"
	"testing"
	"testing/quick"

	"uucs/internal/stats"
)

func TestScale(t *testing.T) {
	f := Ramp(2, 10, 1)
	half, err := Scale(f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Max()-f.Max()/2) > 1e-12 {
		t.Errorf("scaled max = %v", half.Max())
	}
	if len(half.Values) != len(f.Values) {
		t.Error("scale changed length")
	}
	if _, err := Scale(f, -1); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestSlice(t *testing.T) {
	f := Ramp(4, 40, 1)
	mid, err := Slice(f, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Duration() != 20 {
		t.Errorf("slice duration = %v", mid.Duration())
	}
	if mid.Values[0] != f.Values[10] || mid.Values[19] != f.Values[29] {
		t.Error("slice content wrong")
	}
	for _, bad := range [][2]float64{{-1, 5}, {5, 5}, {5, 100}} {
		if _, err := Slice(f, bad[0], bad[1]); err == nil {
			t.Errorf("slice %v accepted", bad)
		}
	}
	if _, err := Slice(ExerciseFunction{}, 0, 1); err == nil {
		t.Error("unrated slice accepted")
	}
}

func TestConcatAndRepeat(t *testing.T) {
	a := Step(1, 10, 0, 1)
	b := Step(2, 5, 0, 1)
	joined, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Duration() != 15 {
		t.Errorf("concat duration = %v", joined.Duration())
	}
	if joined.Value(12) != 2 || joined.Value(5) != 1 {
		t.Error("concat content wrong")
	}
	if _, err := Concat(); err == nil {
		t.Error("empty concat accepted")
	}
	mixed := ExerciseFunction{Rate: 2, Values: []float64{1}}
	if _, err := Concat(a, mixed); err == nil {
		t.Error("rate mismatch accepted")
	}
	tiled, err := Repeat(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Duration() != 15 {
		t.Errorf("repeat duration = %v", tiled.Duration())
	}
	if _, err := Repeat(b, 0); err == nil {
		t.Error("zero repeat accepted")
	}
}

func TestClamp(t *testing.T) {
	f := Ramp(10, 20, 1)
	capped, err := Clamp(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Max() > 4 {
		t.Errorf("clamp max = %v", capped.Max())
	}
	if capped.Value(2) != f.Value(2) {
		t.Error("clamp altered sub-threshold values")
	}
	if _, err := Clamp(f, -1); err == nil {
		t.Error("negative clamp accepted")
	}
}

func TestZoomRamp(t *testing.T) {
	tc, err := ZoomRamp("zoom-1", 2.0, 0.25, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := tc.Functions[CPU]
	if math.Abs(f.Values[0]-1.5) > 1e-9 {
		t.Errorf("zoom start = %v, want 1.5", f.Values[0])
	}
	if f.Max() > 2.5+1e-9 || f.Max() < 2.4 {
		t.Errorf("zoom top = %v, want ~2.5", f.Max())
	}
	if _, err := ZoomRamp("z", 0, 0.25, 120, 1); err == nil {
		t.Error("zero level accepted")
	}
	if _, err := ZoomRamp("z", 1, 1.5, 120, 1); err == nil {
		t.Error("margin >= 1 accepted")
	}
}

func TestManipulationPreservesInvariantsProperty(t *testing.T) {
	check := func(seed uint64, factorRaw uint8) bool {
		s := stats.NewStream(seed)
		f := Ramp(s.Range(0.5, 8), 30, 1)
		factor := float64(factorRaw%30) / 10
		scaled, err := Scale(f, factor)
		if err != nil {
			return false
		}
		clamped, err := Clamp(scaled, 5)
		if err != nil {
			return false
		}
		for _, v := range clamped.Values {
			if v < 0 || v > 5 || math.IsNaN(v) {
				return false
			}
		}
		half, err := Slice(clamped, 0, 15)
		if err != nil {
			return false
		}
		doubled, err := Concat(half, half)
		if err != nil {
			return false
		}
		return doubled.Duration() == 30
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
