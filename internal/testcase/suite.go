package testcase

import "fmt"

// Task identifies the user's foreground context during a run. The
// controlled study used four tasks chosen to represent typical user
// workloads (paper §3.1).
type Task string

// The four controlled-study tasks.
const (
	Word       Task = "word"       // word processing with Microsoft Word
	Powerpoint Task = "powerpoint" // presentation making with complex diagrams
	IE         Task = "ie"         // browsing and research with Internet Explorer
	Quake      Task = "quake"      // playing Quake III, the most resource-intensive task
)

// Tasks lists the controlled-study tasks in paper order.
func Tasks() []Task { return []Task{Word, Powerpoint, IE, Quake} }

// ParseTask converts a string into a Task.
func ParseTask(s string) (Task, error) {
	for _, t := range Tasks() {
		if string(t) == s {
			return t, nil
		}
	}
	return "", fmt.Errorf("testcase: unknown task %q", s)
}

// TaskLabel returns the paper's display name for a task.
func TaskLabel(t Task) string {
	switch t {
	case Word:
		return "MS Word"
	case Powerpoint:
		return "MS Powerpoint"
	case IE:
		return "Internet Explorer"
	case Quake:
		return "Quake"
	default:
		return string(t)
	}
}

// SuiteRate is the sample rate used by the controlled-study testcases.
const SuiteRate = 1.0

// suiteDuration is the length of each controlled-study testcase: each
// task had 8 associated testcases, each 2 minutes long (paper §3.2).
const suiteDuration = 120.0

// fig8 holds the exact per-task testcase parameters of the paper's
// Figure 8. Entry i describes testcase number i+1. Ramp parameters are
// (x, t); step parameters are (x, t, b).
var fig8 = map[Task][8]struct {
	resource Resource
	shape    Shape
	p        [3]float64
}{
	Word: {
		{CPU, ShapeRamp, [3]float64{7.0, 120, 0}},
		{"", ShapeBlank, [3]float64{}},
		{Disk, ShapeRamp, [3]float64{7.0, 120, 0}},
		{Memory, ShapeRamp, [3]float64{1.0, 120, 0}},
		{CPU, ShapeStep, [3]float64{5.5, 120, 40}},
		{Disk, ShapeStep, [3]float64{5.0, 120, 40}},
		{"", ShapeBlank, [3]float64{}},
		{Memory, ShapeStep, [3]float64{1.0, 120, 40}},
	},
	Powerpoint: {
		{CPU, ShapeRamp, [3]float64{2.0, 120, 0}},
		{"", ShapeBlank, [3]float64{}},
		{Disk, ShapeRamp, [3]float64{8.0, 120, 0}},
		{Memory, ShapeRamp, [3]float64{1.0, 120, 0}},
		{CPU, ShapeStep, [3]float64{0.98, 120, 40}},
		{Disk, ShapeStep, [3]float64{6.0, 120, 40}},
		{"", ShapeBlank, [3]float64{}},
		{Memory, ShapeStep, [3]float64{1.0, 120, 40}},
	},
	IE: {
		{CPU, ShapeRamp, [3]float64{2.0, 120, 0}},
		{"", ShapeBlank, [3]float64{}},
		{Disk, ShapeRamp, [3]float64{5.0, 120, 0}},
		{Memory, ShapeRamp, [3]float64{1.0, 120, 0}},
		{CPU, ShapeStep, [3]float64{1.0, 120, 40}},
		{Disk, ShapeStep, [3]float64{4.0, 120, 40}},
		{"", ShapeBlank, [3]float64{}},
		{Memory, ShapeStep, [3]float64{1.0, 120, 40}},
	},
	Quake: {
		{CPU, ShapeRamp, [3]float64{1.3, 120, 0}},
		{"", ShapeBlank, [3]float64{}},
		{Disk, ShapeRamp, [3]float64{5.0, 120, 0}},
		{Memory, ShapeRamp, [3]float64{1.0, 120, 0}},
		{CPU, ShapeStep, [3]float64{0.5, 120, 40}},
		{Disk, ShapeStep, [3]float64{5.0, 120, 40}},
		{"", ShapeBlank, [3]float64{}},
		{Memory, ShapeStep, [3]float64{1.0, 120, 40}},
	},
}

// ControlledSuite returns the eight testcases the controlled study runs
// for the given task, exactly as specified in the paper's Figure 8. The
// paper ran them in a random order for each 16-minute task; ordering is
// the study harness's job.
func ControlledSuite(task Task) ([]*Testcase, error) {
	spec, ok := fig8[task]
	if !ok {
		return nil, fmt.Errorf("testcase: no controlled suite for task %q", task)
	}
	out := make([]*Testcase, 0, len(spec))
	for i, e := range spec {
		tc := New(fmt.Sprintf("ctrl-%s-%d", task, i+1), SuiteRate)
		tc.Shape = e.shape
		switch e.shape {
		case ShapeBlank:
			// A blank testcase still occupies its two-minute slot; give it
			// an explicit all-zero CPU function so it has a duration.
			tc.Functions[CPU] = Blank(suiteDuration, SuiteRate)
			tc.Params = ""
		case ShapeRamp:
			tc.Functions[e.resource] = Ramp(e.p[0], e.p[1], SuiteRate)
			tc.Params = fmt.Sprintf("%g,%g", e.p[0], e.p[1])
		case ShapeStep:
			tc.Functions[e.resource] = Step(e.p[0], e.p[1], e.p[2], SuiteRate)
			tc.Params = fmt.Sprintf("%g,%g,%g", e.p[0], e.p[1], e.p[2])
		default:
			return nil, fmt.Errorf("testcase: unexpected shape %q in controlled suite", e.shape)
		}
		if err := tc.Validate(); err != nil {
			return nil, err
		}
		out = append(out, tc)
	}
	return out, nil
}

// ControlledSuiteAll returns the full 4-task controlled suite keyed by
// task.
func ControlledSuiteAll() (map[Task][]*Testcase, error) {
	out := make(map[Task][]*Testcase, len(fig8))
	for _, t := range Tasks() {
		s, err := ControlledSuite(t)
		if err != nil {
			return nil, err
		}
		out[t] = s
	}
	return out, nil
}
