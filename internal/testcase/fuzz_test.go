package testcase

import (
	"strings"
	"testing"
)

// FuzzDecodeAll exercises the testcase text decoder: it must never
// panic, and anything it accepts must re-encode and decode to the same
// testcases (the store format is the wire format, so robustness here is
// robustness against a hostile server or a corrupted store).
func FuzzDecodeAll(f *testing.F) {
	seed := []string{
		"",
		"testcase a\nrate 1\nshape ramp 2,120\nfunction cpu 0 1 2\nend\n",
		"testcase b\nrate 2\nfunction memory 0.1 0.5 1\nend\n",
		"# comment\n\ntestcase c\nrate 1\nfunction disk 7\nend\n",
		"testcase x\nrate 1\nfunction cpu 1e300\nend\n",
		"testcase y\nrate -1\nend\n",
		"testcase z\nrate 1\nfunction gpu 1\nend\n",
		"end\n",
		"testcase dup\nrate 1\nfunction cpu 1\nfunction cpu 2\nend\n",
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tcs, err := DecodeAll(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var b strings.Builder
		if err := EncodeAll(&b, tcs); err != nil {
			t.Fatalf("decoded testcases failed to re-encode: %v", err)
		}
		again, err := DecodeAll(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-encoded form failed to decode: %v\n%s", err, b.String())
		}
		if len(again) != len(tcs) {
			t.Fatalf("round trip changed count: %d -> %d", len(tcs), len(again))
		}
		for i := range tcs {
			if again[i].ID != tcs[i].ID || again[i].SampleRate != tcs[i].SampleRate {
				t.Fatalf("round trip changed testcase %d", i)
			}
			for r, fn := range tcs[i].Functions {
				g := again[i].Functions[r]
				if len(g.Values) != len(fn.Values) {
					t.Fatalf("round trip changed %s sample count", r)
				}
			}
		}
	})
}
