package testcase

import "fmt"

// Manipulation tools. The paper's workflow (Figure 2) includes "a set of
// tools for creating, viewing, and manipulating testcases"; these are
// the manipulation primitives: scaling, slicing, concatenating and
// repeating exercise functions, and composing testcases from parts. The
// analysis loop the paper describes — results "guide us to other
// interesting testcases" — uses exactly these operations to zoom into
// the contention region where discomfort began.

// Scale returns a copy of f with every contention value multiplied by
// factor. Scaling a ramp that provoked discomfort at its top by 0.5
// re-explores the lower half at double resolution-in-time.
func Scale(f ExerciseFunction, factor float64) (ExerciseFunction, error) {
	if factor < 0 {
		return ExerciseFunction{}, fmt.Errorf("testcase: negative scale factor %g", factor)
	}
	out := ExerciseFunction{Rate: f.Rate, Values: make([]float64, len(f.Values))}
	for i, v := range f.Values {
		out.Values[i] = v * factor
	}
	return out, nil
}

// Slice returns the sub-function covering [from, to) seconds of f.
func Slice(f ExerciseFunction, from, to float64) (ExerciseFunction, error) {
	if f.Rate <= 0 {
		return ExerciseFunction{}, fmt.Errorf("testcase: slice of unrated function")
	}
	if from < 0 || to <= from || to > f.Duration()+1e-9 {
		return ExerciseFunction{}, fmt.Errorf("testcase: slice [%g, %g) outside [0, %g)", from, to, f.Duration())
	}
	lo := int(from * f.Rate)
	hi := int(to * f.Rate)
	if hi > len(f.Values) {
		hi = len(f.Values)
	}
	out := ExerciseFunction{Rate: f.Rate, Values: make([]float64, hi-lo)}
	copy(out.Values, f.Values[lo:hi])
	return out, nil
}

// Concat joins functions end to end. All parts must share a sample rate.
func Concat(parts ...ExerciseFunction) (ExerciseFunction, error) {
	if len(parts) == 0 {
		return ExerciseFunction{}, fmt.Errorf("testcase: concat of nothing")
	}
	rate := parts[0].Rate
	if rate <= 0 {
		return ExerciseFunction{}, fmt.Errorf("testcase: concat of unrated function")
	}
	total := 0
	for i, p := range parts {
		if p.Rate != rate {
			return ExerciseFunction{}, fmt.Errorf("testcase: concat rate mismatch at part %d (%g vs %g)", i, p.Rate, rate)
		}
		total += len(p.Values)
	}
	out := ExerciseFunction{Rate: rate, Values: make([]float64, 0, total)}
	for _, p := range parts {
		out.Values = append(out.Values, p.Values...)
	}
	return out, nil
}

// Repeat tiles f n times.
func Repeat(f ExerciseFunction, n int) (ExerciseFunction, error) {
	if n <= 0 {
		return ExerciseFunction{}, fmt.Errorf("testcase: repeat count %d", n)
	}
	parts := make([]ExerciseFunction, n)
	for i := range parts {
		parts[i] = f
	}
	return Concat(parts...)
}

// Clamp caps every value of f at maxLevel (e.g. to keep a derived
// function within an exerciser's verified range).
func Clamp(f ExerciseFunction, maxLevel float64) (ExerciseFunction, error) {
	if maxLevel < 0 {
		return ExerciseFunction{}, fmt.Errorf("testcase: negative clamp %g", maxLevel)
	}
	out := ExerciseFunction{Rate: f.Rate, Values: make([]float64, len(f.Values))}
	for i, v := range f.Values {
		if v > maxLevel {
			v = maxLevel
		}
		out.Values[i] = v
	}
	return out, nil
}

// ZoomRamp builds the follow-up testcase the analysis loop wants after a
// ramp run: a new ramp over [level*(1-margin), level*(1+margin)] around
// the discomfort level, exploring the onset region at fine granularity.
func ZoomRamp(id string, level, margin, duration, rate float64) (*Testcase, error) {
	if level <= 0 || margin <= 0 || margin >= 1 {
		return nil, fmt.Errorf("testcase: zoom needs positive level and margin in (0,1)")
	}
	lo := level * (1 - margin)
	hi := level * (1 + margin)
	n := samples(duration, rate)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	tc := New(id, rate)
	tc.Shape = ShapeRamp
	tc.Params = fmt.Sprintf("zoom:%.2f±%.0f%%", level, margin*100)
	tc.Functions[CPU] = ExerciseFunction{Rate: rate, Values: vals}
	return tc, tc.Validate()
}
