package testcase

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The wire/storage format is line-oriented text, matching the paper's
// design of text-file testcase stores that a human can inspect and a
// disconnected client can sync:
//
//	testcase <id>
//	rate <hz>
//	shape <family> <params>
//	function <resource> <v0> <v1> ... <vn>
//	end
//
// Blank lines and lines starting with '#' are ignored. A stream may hold
// any number of testcases.

// Encode writes the testcase to w in the text format.
func Encode(w io.Writer, tc *Testcase) error {
	if err := tc.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "testcase %s\n", tc.ID)
	fmt.Fprintf(bw, "rate %g\n", tc.SampleRate)
	if tc.Shape != "" {
		if tc.Params != "" {
			fmt.Fprintf(bw, "shape %s %s\n", tc.Shape, tc.Params)
		} else {
			fmt.Fprintf(bw, "shape %s\n", tc.Shape)
		}
	}
	for _, r := range Resources() {
		f, ok := tc.Functions[r]
		if !ok {
			continue
		}
		fmt.Fprintf(bw, "function %s", r)
		for _, v := range f.Values {
			fmt.Fprintf(bw, " %g", v)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// EncodeAll writes every testcase to w.
func EncodeAll(w io.Writer, tcs []*Testcase) error {
	for _, tc := range tcs {
		if err := Encode(w, tc); err != nil {
			return fmt.Errorf("testcase %s: %w", tc.ID, err)
		}
	}
	return nil
}

// EncodeString renders one testcase as a string.
func EncodeString(tc *Testcase) (string, error) {
	var b strings.Builder
	if err := Encode(&b, tc); err != nil {
		return "", err
	}
	return b.String(), nil
}

// DecodeAll parses every testcase from r.
func DecodeAll(r io.Reader) ([]*Testcase, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24) // exercise functions can be long lines
	var (
		out  []*Testcase
		cur  *Testcase
		line int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "testcase":
			if cur != nil {
				return nil, fmt.Errorf("testcase: line %d: nested testcase without end", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("testcase: line %d: want 'testcase <id>'", line)
			}
			cur = New(fields[1], 0)
			cur.SampleRate = 0
		case "rate":
			if cur == nil {
				return nil, fmt.Errorf("testcase: line %d: rate outside testcase", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("testcase: line %d: want 'rate <hz>'", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("testcase: line %d: bad rate: %w", line, err)
			}
			cur.SampleRate = v
		case "shape":
			if cur == nil {
				return nil, fmt.Errorf("testcase: line %d: shape outside testcase", line)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("testcase: line %d: want 'shape <family> [params]'", line)
			}
			cur.Shape = Shape(fields[1])
			if len(fields) > 2 {
				cur.Params = strings.Join(fields[2:], " ")
			}
		case "function":
			if cur == nil {
				return nil, fmt.Errorf("testcase: line %d: function outside testcase", line)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("testcase: line %d: want 'function <resource> <values...>'", line)
			}
			res, err := ParseResource(fields[1])
			if err != nil {
				return nil, fmt.Errorf("testcase: line %d: %w", line, err)
			}
			vals := make([]float64, 0, len(fields)-2)
			for _, f := range fields[2:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("testcase: line %d: bad sample %q: %w", line, f, err)
				}
				vals = append(vals, v)
			}
			cur.Functions[res] = ExerciseFunction{Rate: cur.SampleRate, Values: vals}
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("testcase: line %d: end outside testcase", line)
			}
			// Bind the function rates here so the rate directive may
			// appear anywhere within the testcase block.
			for r, f := range cur.Functions {
				f.Rate = cur.SampleRate
				cur.Functions[r] = f
			}
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("testcase: line %d: %w", line, err)
			}
			out = append(out, cur)
			cur = nil
		default:
			return nil, fmt.Errorf("testcase: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("testcase: unterminated testcase %s at EOF", cur.ID)
	}
	return out, nil
}

// DecodeString parses exactly one testcase from s.
func DecodeString(s string) (*Testcase, error) {
	tcs, err := DecodeAll(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	if len(tcs) != 1 {
		return nil, fmt.Errorf("testcase: want exactly 1 testcase, got %d", len(tcs))
	}
	return tcs[0], nil
}
