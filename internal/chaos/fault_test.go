package chaos

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestInjectorScriptedFaults(t *testing.T) {
	in := NewInjector(1, Profile{}).Scripted(
		ScriptFault{Op: "dial", N: 2, Kind: KindDialFail},
		ScriptFault{Op: "write", N: 1, Kind: KindDrop},
	)
	if got := in.decide("dial"); got != KindNone {
		t.Errorf("dial#1 = %v", got)
	}
	if got := in.decide("dial"); got != KindDialFail {
		t.Errorf("dial#2 = %v", got)
	}
	if got := in.decide("write"); got != KindDrop {
		t.Errorf("write#1 = %v", got)
	}
	if got := in.decide("write"); got != KindNone {
		t.Errorf("write#2 = %v", got)
	}
	want := []string{"dial#2 dialfail", "write#1 drop"}
	if !reflect.DeepEqual(in.Events(), want) {
		t.Errorf("events = %v, want %v", in.Events(), want)
	}
	if in.Faults() != 2 {
		t.Errorf("faults = %d", in.Faults())
	}
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	profile := Profile{DialFail: 0.2, Drop: 0.1, PartialWrite: 0.1, Corrupt: 0.1, Stall: 0.05}
	run := func() []string {
		in := NewInjector(77, profile)
		for i := 0; i < 50; i++ {
			in.decide("dial")
			in.decide("write")
			in.decide("read")
		}
		return in.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults drawn at these rates; schedule test is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	// A different seed must (at these rates, with this op count) diverge.
	in2 := NewInjector(78, profile)
	for i := 0; i < 50; i++ {
		in2.decide("dial")
		in2.decide("write")
		in2.decide("read")
	}
	if reflect.DeepEqual(a, in2.Events()) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestInjectorFaultBudget(t *testing.T) {
	in := NewInjector(3, Profile{Drop: 1.0, MaxFaults: 2})
	for i := 0; i < 10; i++ {
		in.decide("write")
	}
	if in.Faults() != 2 {
		t.Errorf("faults = %d, want budget cap of 2", in.Faults())
	}
	// Scripted faults ignore the budget.
	in.Scripted(ScriptFault{Op: "write", N: 11, Kind: KindCorrupt})
	if got := in.decide("write"); got != KindCorrupt {
		t.Errorf("scripted fault suppressed by budget: %v", got)
	}
}

func TestWrapDialInjectsFailuresAndWrapsConns(t *testing.T) {
	in := NewInjector(1, Profile{}).Scripted(
		ScriptFault{Op: "dial", N: 1, Kind: KindDialFail},
		ScriptFault{Op: "read", N: 1, Kind: KindDrop},
	)
	nw := NewNetwork()
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write([]byte("x"))
				c.Close()
			}(conn)
		}
	}()
	dial := in.WrapDial(nw.Dial)
	if _, err := dial("srv"); err == nil {
		t.Fatal("scripted dial failure did not fire")
	}
	conn, err := dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("scripted read drop did not fire")
	}
}

func TestFaultConnPartialWriteAndCorrupt(t *testing.T) {
	// Partial write: the peer sees a strict prefix, then EOF.
	in := NewInjector(1, Profile{}).Scripted(ScriptFault{Op: "write", N: 1, Kind: KindPartialWrite})
	a, b := net.Pipe()
	fc := in.WrapConn(a)
	got := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		tmp := make([]byte, 64)
		for {
			n, err := b.Read(tmp)
			buf.Write(tmp[:n])
			if err != nil {
				break
			}
		}
		got <- buf.Bytes()
	}()
	msg := []byte("0123456789")
	if _, err := fc.Write(msg); err == nil {
		t.Error("partial write reported success")
	}
	if data := <-got; len(data) >= len(msg) || !bytes.HasPrefix(msg, data) {
		t.Errorf("peer saw %q, want a strict prefix of %q", data, msg)
	}

	// Corrupt: the peer sees the full length with exactly one byte
	// changed, and the trailing newline intact.
	in2 := NewInjector(1, Profile{}).Scripted(ScriptFault{Op: "write", N: 1, Kind: KindCorrupt})
	c, d := net.Pipe()
	fc2 := in2.WrapConn(c)
	got2 := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := d.Read(buf)
		got2 <- buf[:n]
	}()
	frame := []byte("{\"type\":\"ack\"}\n")
	if _, err := fc2.Write(frame); err != nil {
		t.Fatal(err)
	}
	data := <-got2
	if len(data) != len(frame) {
		t.Fatalf("corrupt changed length: %d vs %d", len(data), len(frame))
	}
	diff := 0
	for i := range frame {
		if data[i] != frame[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corrupt flipped %d bytes, want 1", diff)
	}
	if data[len(data)-1] != '\n' {
		t.Error("corrupt destroyed the framing newline")
	}
	c.Close()
	d.Close()
}

func TestFaultConnStall(t *testing.T) {
	in := NewInjector(1, Profile{StallFor: 60 * time.Millisecond}).
		Scripted(ScriptFault{Op: "write", N: 1, Kind: KindStall})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := in.WrapConn(a)
	// A deadline shorter than the stall must fire.
	if err := fc.SetWriteDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 8)
		b.Read(buf)
	}()
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Error("stalled write beat a 10ms deadline")
	}
}

func TestCorruptByteNeverTouchesNewlines(t *testing.T) {
	for idx := 0; idx < 12; idx++ {
		q := []byte("ab\ncd\nef\ngh\n")
		orig := append([]byte(nil), q...)
		corruptByte(q, idx)
		if bytes.Count(q, []byte("\n")) != bytes.Count(orig, []byte("\n")) {
			t.Fatalf("idx %d changed newline count: %q", idx, q)
		}
		diff := 0
		for i := range q {
			if q[i] != orig[i] {
				diff++
				if orig[i] == '\n' || q[i] == '\n' {
					t.Fatalf("idx %d touched a newline: %q -> %q", idx, orig, q)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("idx %d flipped %d bytes", idx, diff)
		}
	}
	// Degenerate inputs must not panic.
	corruptByte(nil, 0)
	all := []byte("\n\n\n")
	corruptByte(all, 1)
	if !bytes.Equal(all, []byte("\n\n\n")) {
		t.Error("all-newline buffer was modified")
	}
}
