// Package chaos is UUCS's deterministic fault-injection layer. The
// paper's fleet ran for weeks on volunteer Internet hosts — clients
// crash, links flap, bytes rot, and the server restarts mid-study — so
// every networking layer in this repository must tolerate those faults,
// and this package exists to prove it *deterministically*: from a seed
// it derives a reproducible schedule of connection drops, partial
// writes, read/write stalls, corrupted bytes, failed and reordered
// dials, at scripted or randomized points, over a fully in-memory
// simulated network.
//
// The pieces compose with the production stack unchanged:
//
//   - Network is an in-memory transport (Listen/Dial) that drops in for
//     TCP; it supports closing and re-listening on an address, which is
//     how scenario tests crash and restart the server.
//   - Injector wraps a dial function so every connection it opens
//     carries a deterministic fault schedule drawn from a seed.
//   - Clock is a virtual clock injected as the client's retry Sleep, so
//     backoff-heavy scenarios run in microseconds and record exactly
//     how long a real fleet would have waited.
//
// The scenario suite (scenarios_test.go) asserts the end-to-end
// invariants the robustness layer owes the study: no run is lost, no
// run is double-counted, sync converges, and the server's final dataset
// is bit-identical to a fault-free run.
package chaos

import (
	"sync"
	"time"
)

// Clock is a deterministic virtual clock. Sleep returns immediately
// while advancing virtual time, so retry/backoff schedules can be
// asserted on without real waiting. It is safe for concurrent use;
// with concurrent sleepers the total is still deterministic even
// though interleaving is not.
type Clock struct {
	mu     sync.Mutex
	now    time.Duration
	sleeps int
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d and returns immediately.
func (c *Clock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	c.sleeps++
}

// Sleeps returns how many times Sleep was called — the number of
// backoff waits a scenario triggered.
func (c *Clock) Sleeps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sleeps
}
