// The chaos scenario suite: end-to-end fleet simulations over the
// in-memory network with deterministic fault injection, asserting the
// invariants the robustness layer owes the study:
//
//   - no run is lost and no run is double-counted,
//   - sync converges despite faults,
//   - the server's final dataset is bit-identical to a fault-free run,
//   - the same seed replays the same fault schedule and dataset.
package chaos_test

import (
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"uucs/internal/apps"
	"uucs/internal/chaos"
	"uucs/internal/client"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/internetstudy"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// fingerprint canonically encodes a run set; two fingerprints are equal
// iff the datasets are bit-identical.
func fingerprint(t *testing.T, runs []*core.Run) string {
	t.Helper()
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, true); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

const (
	fleetSeed  = 1977
	fleetHosts = 6
	fleetRuns  = 6
)

// fleetResult is what one chaos fleet run produced.
type fleetResult struct {
	fp     string   // canonical dataset encoding
	n      int      // collected run count
	events []string // per-host fault logs, host-prefixed
	sleeps int      // backoff waits (virtual)
}

// runFleet drives the full internetstudy fleet over the chaos network,
// one injector per host, retries under a virtual clock. Optional
// mutators adjust the config before the run (e.g. to attach a durable
// state directory).
func runFleet(t *testing.T, profile chaos.Profile, script map[int][]chaos.ScriptFault, reorder int, mut ...func(*internetstudy.Config)) fleetResult {
	t.Helper()
	nw := chaos.NewNetwork()
	if reorder > 1 {
		nw.SetReorderWindow(reorder)
	}
	clock := chaos.NewClock()
	cfg := internetstudy.DefaultConfig(t.TempDir())
	cfg.Hosts = fleetHosts
	cfg.RunsPerHost = fleetRuns
	cfg.TestcaseCount = 60
	cfg.SyncEvery = 2
	cfg.Seed = fleetSeed
	cfg.Workers = 2
	cfg.Listen = nw.Listen
	cfg.IOTimeout = 5 * time.Second
	cfg.IdleTimeout = 5 * time.Second
	// Generous attempt budget: MaxFaults bounds the chaos per host, so
	// even if every fault lands on one operation the retries outlast it.
	cfg.Retry = client.Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Attempts: 10}
	cfg.Sleep = clock.Sleep
	injectors := make([]*chaos.Injector, cfg.Hosts)
	for i := range injectors {
		injectors[i] = chaos.NewInjector(fleetSeed+uint64(i)*1000003, profile).Scripted(script[i]...)
	}
	cfg.Dial = func(hostID int, addr string) (net.Conn, error) {
		return injectors[hostID].WrapDial(nw.Dial)(addr)
	}
	for _, m := range mut {
		m(&cfg)
	}
	res, err := internetstudy.Run(cfg)
	if err != nil {
		t.Fatalf("fleet failed: %v", err)
	}
	out := fleetResult{fp: fingerprint(t, res.Runs), n: len(res.Runs), sleeps: clock.Sleeps()}
	for i, in := range injectors {
		for _, e := range in.Events() {
			out.events = append(out.events, fmt.Sprintf("host%d %s", i, e))
		}
	}
	return out
}

// TestFleetScenarios runs the scenario table: each fault mix must leave
// the server's final dataset bit-identical to the fault-free baseline,
// with every run counted exactly once.
func TestFleetScenarios(t *testing.T) {
	baseline := runFleet(t, chaos.Profile{}, nil, 0)
	if baseline.n != fleetHosts*fleetRuns {
		t.Fatalf("baseline collected %d runs, want %d", baseline.n, fleetHosts*fleetRuns)
	}
	if len(baseline.events) != 0 {
		t.Fatalf("baseline injected faults: %v", baseline.events)
	}

	// Per-host client op order: register (dial/write/read #1), first sync
	// (#2, download only — nothing pending yet), then per sync: download
	// plus an upload with an ack read. read#4 is therefore the first
	// upload's ack — dropping it loses an ack for an applied batch, the
	// classic double-count trap.
	scenarios := []struct {
		name    string
		profile chaos.Profile
		script  map[int][]chaos.ScriptFault
		reorder int
	}{
		{name: "connection-drops", profile: chaos.Profile{Drop: 0.06, MaxFaults: 6}},
		{name: "partial-writes", profile: chaos.Profile{PartialWrite: 0.10, MaxFaults: 6}},
		{name: "corrupted-bytes", profile: chaos.Profile{Corrupt: 0.10, MaxFaults: 6}},
		{name: "dial-failures", profile: chaos.Profile{DialFail: 0.15, MaxFaults: 6}},
		{name: "reordered-dials", reorder: 3},
		{name: "mixed", profile: chaos.Profile{DialFail: 0.06, Drop: 0.04, PartialWrite: 0.04, Corrupt: 0.04, MaxFaults: 6}, reorder: 2},
		{name: "scripted-ack-loss", script: map[int][]chaos.ScriptFault{
			1: {{Op: "read", N: 4, Kind: chaos.KindDrop}},
			4: {{Op: "read", N: 4, Kind: chaos.KindDrop}},
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := runFleet(t, sc.profile, sc.script, sc.reorder)
			injecting := sc.profile != (chaos.Profile{}) || len(sc.script) > 0
			if injecting && len(got.events) == 0 {
				t.Fatal("scenario injected no faults; it proves nothing")
			}
			if got.n != baseline.n {
				t.Errorf("collected %d runs, want %d (faults: %v)", got.n, baseline.n, got.events)
			}
			if got.fp != baseline.fp {
				t.Errorf("dataset diverged from fault-free baseline after faults: %v", got.events)
			}
			if injecting && got.sleeps == 0 {
				t.Error("faults were injected but no retry ever backed off")
			}
		})
	}
}

// TestGroupCommitFleetBitIdentical runs the fleet against a journaling
// server — group commit enabled, with an accumulation delay, under the
// mixed fault profile — and against the fsync-per-op degenerate case.
// Both datasets must be bit-identical to the in-memory fault-free
// baseline: the commit batching is a throughput lever, never a
// semantic one.
func TestGroupCommitFleetBitIdentical(t *testing.T) {
	baseline := runFleet(t, chaos.Profile{}, nil, 0)
	mixed := chaos.Profile{DialFail: 0.06, Drop: 0.04, PartialWrite: 0.04, Corrupt: 0.04, MaxFaults: 6}
	variants := []struct {
		name string
		mut  func(*internetstudy.Config)
	}{
		{"group-commit", func(cfg *internetstudy.Config) {
			cfg.StateDir = t.TempDir()
			cfg.JournalDelay = 200 * time.Microsecond
		}},
		{"fsync-per-op", func(cfg *internetstudy.Config) {
			cfg.StateDir = t.TempDir()
			cfg.JournalBatch = 1
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			got := runFleet(t, mixed, nil, 2, v.mut)
			if len(got.events) == 0 {
				t.Fatal("scenario injected no faults; it proves nothing")
			}
			if got.n != baseline.n {
				t.Errorf("collected %d runs, want %d (faults: %v)", got.n, baseline.n, got.events)
			}
			if got.fp != baseline.fp {
				t.Errorf("durable dataset diverged from in-memory fault-free baseline: %v", got.events)
			}
		})
	}
}

// TestFleetDeterminism reruns the mixed scenario: the same seed must
// replay the identical fault schedule and produce the identical dataset.
func TestFleetDeterminism(t *testing.T) {
	profile := chaos.Profile{DialFail: 0.06, Drop: 0.04, PartialWrite: 0.04, Corrupt: 0.04, MaxFaults: 6}
	a := runFleet(t, profile, nil, 2)
	b := runFleet(t, profile, nil, 2)
	if !reflect.DeepEqual(a.events, b.events) {
		t.Errorf("fault schedules diverged:\n%v\n%v", a.events, b.events)
	}
	if a.fp != b.fp {
		t.Error("datasets diverged between identical seeded runs")
	}
	if len(a.events) == 0 {
		t.Fatal("determinism test injected no faults; it proves nothing")
	}
}

// TestServerCrashRestartScenario kills the server (no graceful save)
// between fleet phases and restarts it from its state directory on the
// same address. The final dataset must be bit-identical to a run against
// a server that never crashed.
func TestServerCrashRestartScenario(t *testing.T) {
	tcs, err := testcase.Generate("crash", testcase.GeneratorConfig{
		Count: 40, Rate: 1, Duration: 20,
		BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
	}, stats.NewStream(12))
	if err != nil {
		t.Fatal(err)
	}
	users, err := comfort.SamplePopulation(3, comfort.DefaultPopulation(), 7)
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.New(testcase.Word)
	if err != nil {
		t.Fatal(err)
	}

	run := func(withCrashes bool) string {
		nw := chaos.NewNetwork()
		clock := chaos.NewClock()
		stateDir := t.TempDir()
		const addr = "uucs-server"
		var srv *server.Server
		start := func() {
			srv = server.New(99)
			if err := srv.OpenState(stateDir); err != nil {
				t.Fatal(err)
			}
			ln, err := nw.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
		}
		start()
		if err := srv.AddTestcases(tcs...); err != nil {
			t.Fatal(err)
		}
		crash := func() {
			if !withCrashes {
				return
			}
			// No SaveState: the journal alone must carry the state over.
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			start()
		}

		clients := make([]*client.Client, 3)
		for i := range clients {
			st, err := client.OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			snap := protocol.Snapshot{
				Hostname: fmt.Sprintf("crash-host-%d", i), OS: "winxp",
				CPUGHz: 2, MemMB: 512, DiskGB: 80,
			}
			cl, err := client.New(st, snap, core.NewEngine(), 1000+uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			cl.Dialer = nw.Dial
			cl.Retry = client.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 6}
			cl.Sleep = clock.Sleep
			clients[i] = cl
		}

		// Phase A: everyone registers and takes a first sample.
		for _, cl := range clients {
			if err := cl.Register(addr); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.HotSync(addr); err != nil {
				t.Fatal(err)
			}
		}
		crash()
		// Phase B: two runs each, synced to the restarted server.
		phase := func() {
			for i, cl := range clients {
				for r := 0; r < 2; r++ {
					tc, err := cl.ChooseTestcase()
					if err != nil {
						t.Fatal(err)
					}
					if _, err := cl.ExecuteRun(tc, app, users[i]); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := cl.HotSync(addr); err != nil {
					t.Fatal(err)
				}
			}
		}
		phase()
		if withCrashes {
			// Compact, then crash again: the restart below restores from
			// the snapshot plus an empty journal.
			if err := srv.SaveState(stateDir); err != nil {
				t.Fatal(err)
			}
		}
		crash()
		// Phase C: two more runs each, final sync.
		phase()

		runs := srv.Results()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if len(runs) != 3*4 {
			t.Fatalf("collected %d runs, want 12", len(runs))
		}
		return fingerprint(t, runs)
	}

	base := run(false)
	crashy := run(true)
	if base != crashy {
		t.Error("dataset after crash/restart cycles differs from an always-up server")
	}
}

// TestStallsTripDeadlines injects stalls longer than the client's
// per-message I/O timeout: the deadline must fire and the retry must
// recover, on both the write and the read path.
func TestStallsTripDeadlines(t *testing.T) {
	nw := chaos.NewNetwork()
	srv := server.New(5)
	tcs, err := testcase.Generate("stall", testcase.GeneratorConfig{
		Count: 10, Rate: 1, Duration: 20,
		BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
	}, stats.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTestcases(tcs...); err != nil {
		t.Fatal(err)
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	// write#1 stalls the registration send; read#2 stalls the first
	// sync's response (read#1 is the registration response on attempt 2).
	in := chaos.NewInjector(1, chaos.Profile{StallFor: 120 * time.Millisecond}).Scripted(
		chaos.ScriptFault{Op: "write", N: 1, Kind: chaos.KindStall},
		chaos.ScriptFault{Op: "read", N: 2, Kind: chaos.KindStall},
	)
	clock := chaos.NewClock()
	st, err := client.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := protocol.Snapshot{Hostname: "stall-host", OS: "winxp", CPUGHz: 2, MemMB: 512, DiskGB: 80}
	cl, err := client.New(st, snap, core.NewEngine(), 9)
	if err != nil {
		t.Fatal(err)
	}
	cl.Dialer = in.WrapDial(nw.Dial)
	cl.Timeout = 25 * time.Millisecond
	cl.Retry = client.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 5}
	cl.Sleep = clock.Sleep

	if err := cl.Register("srv"); err != nil {
		t.Fatalf("register did not survive a stalled write: %v", err)
	}
	if _, err := cl.HotSync("srv"); err != nil {
		t.Fatalf("sync did not survive a stalled read: %v", err)
	}
	want := []string{"write#1 stall", "read#2 stall"}
	if !reflect.DeepEqual(in.Events(), want) {
		t.Errorf("events = %v, want %v", in.Events(), want)
	}
	if clock.Sleeps() != 2 {
		t.Errorf("backoff sleeps = %d, want 2 (one per tripped deadline)", clock.Sleeps())
	}
}
