package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Network is an in-memory transport: a set of named listeners that
// Dial connects to over synchronous in-process pipes (net.Pipe, which
// supports deadlines like TCP). It drops in for the TCP functions the
// client and server use, with no sockets, ports, or OS dependencies —
// the substrate every chaos scenario runs on.
//
// A listener's address can be re-listened after it closes, which is how
// scenarios model a server crash and restart on the same endpoint.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener
	// reorder > 1 buffers accepted connections in windows of that size
	// and delivers each window in reverse — the "reordered dials"
	// fault: a volunteer fleet's connections do not reach the server's
	// accept queue in dial order.
	reorder int
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*listener)}
}

// SetReorderWindow makes the network deliver dials to listeners in
// reversed windows of k (k <= 1 restores in-order delivery). A held
// window is flushed after a short real delay so a lone dial is never
// starved.
func (n *Network) SetReorderWindow(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reorder = k
}

// Listen opens a listener on the given name. The name is opaque — any
// non-empty string works — and is what Dial and net.Conn addresses
// report.
func (n *Network) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		return nil, fmt.Errorf("chaos: empty listen address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("chaos: address %s already in use", addr)
	}
	l := &listener{
		net:  n,
		addr: addr,
		ch:   make(chan net.Conn, 1024),
		done: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener named addr. The server half is
// delivered to the listener's accept queue (possibly reordered, see
// SetReorderWindow); the client half returns immediately.
func (n *Network) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[addr]
	reorder := n.reorder
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("chaos: dial %s: connection refused", addr)
	}
	client, server := pipePair(addr)
	if err := l.deliver(server, reorder); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}

// pipePair returns the two halves of an in-memory connection with
// cosmetic addresses attached.
func pipePair(addr string) (client, server net.Conn) {
	c, s := net.Pipe()
	return addrConn{Conn: c, local: "chaos-client", remote: addr},
		addrConn{Conn: s, local: addr, remote: "chaos-client"}
}

// addrConn decorates a pipe conn with stable address strings.
type addrConn struct {
	net.Conn
	local, remote string
}

func (a addrConn) LocalAddr() net.Addr  { return chaosAddr(a.local) }
func (a addrConn) RemoteAddr() net.Addr { return chaosAddr(a.remote) }

// chaosAddr is a net.Addr over a plain string.
type chaosAddr string

func (a chaosAddr) Network() string { return "chaos" }
func (a chaosAddr) String() string  { return string(a) }

// listener implements net.Listener over an accept channel.
type listener struct {
	net  *Network
	addr string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once

	mu   sync.Mutex
	held []net.Conn
}

// deliver hands the server half to the accept queue, honoring the
// reorder window.
func (l *listener) deliver(conn net.Conn, reorder int) error {
	if reorder <= 1 {
		return l.push(conn)
	}
	l.mu.Lock()
	l.held = append(l.held, conn)
	full := len(l.held) >= reorder
	var flushNow []net.Conn
	if full {
		flushNow = l.held
		l.held = nil
	}
	l.mu.Unlock()
	if full {
		return l.flush(flushNow)
	}
	// Guarantee progress even if the window never fills: flush what is
	// held after a short real delay.
	time.AfterFunc(2*time.Millisecond, func() {
		l.mu.Lock()
		pending := l.held
		l.held = nil
		l.mu.Unlock()
		_ = l.flush(pending)
	})
	return nil
}

// flush delivers held conns in reverse order.
func (l *listener) flush(conns []net.Conn) error {
	var firstErr error
	for i := len(conns) - 1; i >= 0; i-- {
		if err := l.push(conns[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (l *listener) push(conn net.Conn) error {
	select {
	case <-l.done:
		conn.Close()
		return fmt.Errorf("chaos: dial %s: connection refused (listener closed)", l.addr)
	case l.ch <- conn:
		return nil
	}
}

// Accept returns the next delivered connection.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ch:
		return conn, nil
	case <-l.done:
		// Drain anything that raced in before close.
		select {
		case conn := <-l.ch:
			return conn, nil
		default:
		}
		return nil, net.ErrClosed
	}
}

// Close unregisters the listener and refuses queued and future dials.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
		l.mu.Lock()
		held := l.held
		l.held = nil
		l.mu.Unlock()
		for _, c := range held {
			c.Close()
		}
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr reports the listener's name.
func (l *listener) Addr() net.Addr { return chaosAddr(l.addr) }
