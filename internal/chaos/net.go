package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Network is an in-memory transport: a set of named listeners that
// Dial connects to over synchronous in-process pipes (net.Pipe, which
// supports deadlines like TCP). It drops in for the TCP functions the
// client and server use, with no sockets, ports, or OS dependencies —
// the substrate every chaos scenario runs on.
//
// A listener's address can be re-listened after it closes, which is how
// scenarios model a server crash and restart on the same endpoint.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener
	// reorder > 1 buffers accepted connections in windows of that size
	// and delivers each window in reverse — the "reordered dials"
	// fault: a volunteer fleet's connections do not reach the server's
	// accept queue in dial order.
	reorder int
	// down marks partitioned addresses (SetDown): dials are refused and
	// live conns to them are severed.
	down map[string]bool
	// live tracks every open conn pair by the address it was dialed to,
	// so SetDown can sever in-flight conversations, not just new dials.
	live map[string]map[*trackedConn]struct{}
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[string]*listener),
		down:      make(map[string]bool),
		live:      make(map[string]map[*trackedConn]struct{}),
	}
}

// SetDown partitions (down=true) or heals (down=false) the named
// address. While partitioned, dials to it are refused and every live
// connection dialed to it is severed — both halves — modeling a
// node-level network partition: the node's process keeps running, its
// listener stays registered, but nothing reaches it and its open
// conversations break mid-stream. Healing lets new dials through
// without a re-listen.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
	var sever []*trackedConn
	if down {
		for c := range n.live[addr] {
			sever = append(sever, c)
		}
	}
	n.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// track registers both halves of a dialed pair under addr so SetDown
// can find them, wrapping them in self-deregistering conns.
func (n *Network) track(addr string, client, server net.Conn) (net.Conn, net.Conn) {
	tc := &trackedConn{Conn: client, net: n, key: addr}
	ts := &trackedConn{Conn: server, net: n, key: addr}
	n.mu.Lock()
	set := n.live[addr]
	if set == nil {
		set = make(map[*trackedConn]struct{})
		n.live[addr] = set
	}
	set[tc] = struct{}{}
	set[ts] = struct{}{}
	n.mu.Unlock()
	return tc, ts
}

// trackedConn deregisters itself from the network's live table when
// closed, so SetDown only severs conns that are still open.
type trackedConn struct {
	net.Conn
	net  *Network
	key  string
	once sync.Once
}

func (t *trackedConn) Close() error {
	t.once.Do(func() {
		t.net.mu.Lock()
		if set := t.net.live[t.key]; set != nil {
			delete(set, t)
			if len(set) == 0 {
				delete(t.net.live, t.key)
			}
		}
		t.net.mu.Unlock()
	})
	return t.Conn.Close()
}

// SetReorderWindow makes the network deliver dials to listeners in
// reversed windows of k (k <= 1 restores in-order delivery). A held
// window is flushed after a short real delay so a lone dial is never
// starved.
func (n *Network) SetReorderWindow(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reorder = k
}

// Listen opens a listener on the given name. The name is opaque — any
// non-empty string works — and is what Dial and net.Conn addresses
// report.
func (n *Network) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		return nil, fmt.Errorf("chaos: empty listen address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("chaos: address %s already in use", addr)
	}
	l := &listener{
		net:  n,
		addr: addr,
		ch:   make(chan net.Conn, 1024),
		done: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener named addr. The server half is
// delivered to the listener's accept queue (possibly reordered, see
// SetReorderWindow); the client half returns immediately.
func (n *Network) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[addr]
	reorder := n.reorder
	isDown := n.down[addr]
	n.mu.Unlock()
	if isDown {
		return nil, fmt.Errorf("chaos: dial %s: no route to host (partitioned)", addr)
	}
	if l == nil {
		return nil, fmt.Errorf("chaos: dial %s: connection refused", addr)
	}
	client, server := pipePair(addr)
	client, server = n.track(addr, client, server)
	if err := l.deliver(server, reorder); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}

// pipePair returns the two halves of an in-memory connection with
// cosmetic addresses attached.
func pipePair(addr string) (client, server net.Conn) {
	c, s := net.Pipe()
	return addrConn{Conn: c, local: "chaos-client", remote: addr},
		addrConn{Conn: s, local: addr, remote: "chaos-client"}
}

// addrConn decorates a pipe conn with stable address strings.
type addrConn struct {
	net.Conn
	local, remote string
}

func (a addrConn) LocalAddr() net.Addr  { return chaosAddr(a.local) }
func (a addrConn) RemoteAddr() net.Addr { return chaosAddr(a.remote) }

// chaosAddr is a net.Addr over a plain string.
type chaosAddr string

func (a chaosAddr) Network() string { return "chaos" }
func (a chaosAddr) String() string  { return string(a) }

// listener implements net.Listener over an accept channel.
type listener struct {
	net  *Network
	addr string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once

	mu   sync.Mutex
	held []net.Conn
}

// deliver hands the server half to the accept queue, honoring the
// reorder window.
func (l *listener) deliver(conn net.Conn, reorder int) error {
	if reorder <= 1 {
		return l.push(conn)
	}
	l.mu.Lock()
	l.held = append(l.held, conn)
	full := len(l.held) >= reorder
	var flushNow []net.Conn
	if full {
		flushNow = l.held
		l.held = nil
	}
	l.mu.Unlock()
	if full {
		return l.flush(flushNow)
	}
	// Guarantee progress even if the window never fills: flush what is
	// held after a short real delay.
	time.AfterFunc(2*time.Millisecond, func() {
		l.mu.Lock()
		pending := l.held
		l.held = nil
		l.mu.Unlock()
		_ = l.flush(pending)
	})
	return nil
}

// flush delivers held conns in reverse order.
func (l *listener) flush(conns []net.Conn) error {
	var firstErr error
	for i := len(conns) - 1; i >= 0; i-- {
		if err := l.push(conns[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (l *listener) push(conn net.Conn) error {
	select {
	case <-l.done:
		conn.Close()
		return fmt.Errorf("chaos: dial %s: connection refused (listener closed)", l.addr)
	case l.ch <- conn:
		return nil
	}
}

// Accept returns the next delivered connection.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ch:
		return conn, nil
	case <-l.done:
		// Drain anything that raced in before close.
		select {
		case conn := <-l.ch:
			return conn, nil
		default:
		}
		return nil, net.ErrClosed
	}
}

// Close unregisters the listener and refuses queued and future dials.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
		l.mu.Lock()
		held := l.held
		l.held = nil
		l.mu.Unlock()
		for _, c := range held {
			c.Close()
		}
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr reports the listener's name.
func (l *listener) Addr() net.Addr { return chaosAddr(l.addr) }
