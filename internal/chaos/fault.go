package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"uucs/internal/stats"
)

// Kind enumerates injectable faults.
type Kind string

// Fault kinds.
const (
	// KindNone injects nothing.
	KindNone Kind = ""
	// KindDialFail fails a dial before any connection exists.
	KindDialFail Kind = "dialfail"
	// KindDrop cuts the connection at a read or write.
	KindDrop Kind = "drop"
	// KindPartialWrite delivers only a prefix of a write, then cuts the
	// connection — the torn-frame case.
	KindPartialWrite Kind = "partialwrite"
	// KindCorrupt flips one byte of a write and lets it through; the
	// protocol checksum must catch it.
	KindCorrupt Kind = "corrupt"
	// KindStall blocks an operation long enough for any reasonable
	// deadline to fire before letting it proceed.
	KindStall Kind = "stall"
)

// Profile sets per-operation fault probabilities for randomized
// injection. All rates are in [0, 1]; dial rates apply per dial, the
// others per read/write call.
type Profile struct {
	// DialFail is the probability a dial attempt fails outright.
	DialFail float64
	// Drop is the probability a read or write cuts the connection.
	Drop float64
	// PartialWrite is the probability a write is torn: a prefix is
	// delivered, then the connection is cut.
	PartialWrite float64
	// Corrupt is the probability a write has exactly one byte flipped
	// (never a newline, so framing survives and the corruption must be
	// caught by content checks, not accidents of framing).
	Corrupt float64
	// Stall is the probability a read or write blocks for StallFor of
	// real time before proceeding — long enough to trip deadlines.
	Stall float64
	// StallFor is the stall duration; default 50ms.
	StallFor time.Duration
	// MaxFaults caps the total number of randomized faults injected, so
	// a retry budget is guaranteed to outlast the chaos; 0 means
	// unlimited. Scripted faults do not count against it.
	MaxFaults int
}

// ScriptFault pins one fault to an exact operation: the n-th (1-based)
// occurrence of op ("dial", "read", or "write") triggers kind. Scripted
// faults fire regardless of profile rates or budget — the "scripted
// points" mode.
type ScriptFault struct {
	Op   string
	N    int
	Kind Kind
}

// Injector derives a deterministic fault schedule from a seed. Wrap a
// dial function (WrapDial) or a single connection (WrapConn); every
// operation then consults the injector in call order, so one goroutine
// driving one injector replays the identical schedule every run.
//
// An injector is safe for concurrent use, but a deterministic schedule
// requires its operations to arrive in a deterministic order — give
// each simulated host its own injector.
type Injector struct {
	mu      sync.Mutex
	rng     *stats.Stream
	profile Profile
	script  []ScriptFault
	faults  int
	ops     map[string]int
	events  []string
}

// NewInjector builds an injector with the given seed and profile.
func NewInjector(seed uint64, profile Profile) *Injector {
	if profile.StallFor <= 0 {
		profile.StallFor = 50 * time.Millisecond
	}
	return &Injector{
		rng:     stats.NewStream(seed ^ 0x6368616f73), // "chaos"
		profile: profile,
		ops:     make(map[string]int),
	}
}

// Scripted appends scripted faults; see ScriptFault.
func (in *Injector) Scripted(faults ...ScriptFault) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.script = append(in.script, faults...)
	return in
}

// Events returns the log of injected faults, one "op#n kind" entry per
// fault, in injection order. Two runs of the same seeded scenario must
// produce identical logs — the determinism the scenario suite asserts.
func (in *Injector) Events() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.events))
	copy(out, in.events)
	return out
}

// Faults returns how many faults (randomized plus scripted) have been
// injected so far.
func (in *Injector) Faults() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// decide picks the fault (or none) for the next occurrence of op.
func (in *Injector) decide(op string) Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops[op]++
	n := in.ops[op]
	for _, sf := range in.script {
		if sf.Op == op && sf.N == n && sf.Kind != KindNone {
			in.events = append(in.events, fmt.Sprintf("%s#%d %s", op, n, sf.Kind))
			return sf.Kind
		}
	}
	p := in.profile
	if p.MaxFaults > 0 && in.faults >= p.MaxFaults {
		return KindNone
	}
	var kind Kind
	u := in.rng.Float64()
	switch op {
	case "dial":
		if u < p.DialFail {
			kind = KindDialFail
		}
	case "write":
		switch {
		case u < p.Drop:
			kind = KindDrop
		case u < p.Drop+p.PartialWrite:
			kind = KindPartialWrite
		case u < p.Drop+p.PartialWrite+p.Corrupt:
			kind = KindCorrupt
		case u < p.Drop+p.PartialWrite+p.Corrupt+p.Stall:
			kind = KindStall
		}
	case "read":
		switch {
		case u < p.Drop:
			kind = KindDrop
		case u < p.Drop+p.Stall:
			kind = KindStall
		}
	}
	if kind == KindNone {
		return KindNone
	}
	in.faults++
	in.events = append(in.events, fmt.Sprintf("%s#%d %s", op, n, kind))
	return kind
}

// pick returns a deterministic integer in [0, n).
func (in *Injector) pick(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return in.rng.IntN(n)
}

// WrapDial decorates a dial function with dial-time faults and wraps
// every connection it opens with the injector's read/write faults.
func (in *Injector) WrapDial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if in.decide("dial") == KindDialFail {
			return nil, fmt.Errorf("chaos: dial %s: injected failure", addr)
		}
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return in.WrapConn(conn), nil
	}
}

// WrapConn wraps a single connection with the injector's read/write
// fault schedule.
func (in *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, in: in}
}

// faultConn injects faults around an underlying net.Conn.
type faultConn struct {
	net.Conn
	in *Injector
}

// errInjected distinguishes injected transport failures.
type errInjected string

func (e errInjected) Error() string { return "chaos: injected " + string(e) }

func (f *faultConn) Read(p []byte) (int, error) {
	switch f.in.decide("read") {
	case KindDrop:
		f.Conn.Close()
		return 0, errInjected("connection drop (read)")
	case KindStall:
		time.Sleep(f.in.stallFor())
	}
	return f.Conn.Read(p)
}

func (f *faultConn) Write(p []byte) (int, error) {
	switch f.in.decide("write") {
	case KindDrop:
		f.Conn.Close()
		return 0, errInjected("connection drop (write)")
	case KindPartialWrite:
		n := len(p) / 2
		if n > 0 {
			if m, err := f.Conn.Write(p[:n]); err != nil {
				f.Conn.Close()
				return m, err
			}
		}
		f.Conn.Close()
		return n, errInjected("partial write")
	case KindCorrupt:
		q := make([]byte, len(p))
		copy(q, p)
		corruptByte(q, f.in.pick(len(q)))
		return f.Conn.Write(q)
	case KindStall:
		time.Sleep(f.in.stallFor())
	}
	return f.Conn.Write(p)
}

func (in *Injector) stallFor() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.profile.StallFor
}

// corruptByte flips one byte at or after idx, skipping newlines (and
// never producing one), so message framing survives and the corruption
// must be caught by the protocol checksum rather than by a lucky
// framing error.
func corruptByte(q []byte, idx int) {
	if len(q) == 0 {
		return
	}
	for tries := 0; tries < len(q); tries++ {
		i := (idx + tries) % len(q)
		if q[i] == '\n' {
			continue
		}
		flipped := q[i] ^ 0x01
		if flipped == '\n' {
			flipped = q[i] ^ 0x02
		}
		q[i] = flipped
		return
	}
}
