package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestClockVirtualSleep(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 || c.Sleeps() != 0 {
		t.Fatalf("fresh clock: now=%v sleeps=%d", c.Now(), c.Sleeps())
	}
	start := time.Now()
	c.Sleep(time.Hour)
	c.Sleep(30 * time.Minute)
	c.Sleep(-time.Second) // negative durations advance nothing
	if real := time.Since(start); real > time.Second {
		t.Fatalf("virtual sleep took %v of real time", real)
	}
	if c.Now() != 90*time.Minute {
		t.Errorf("now = %v, want 90m", c.Now())
	}
	if c.Sleeps() != 3 {
		t.Errorf("sleeps = %d, want 3", c.Sleeps())
	}
}

func TestNetworkDialRefusedWithoutListener(t *testing.T) {
	nw := NewNetwork()
	if _, err := nw.Dial("nowhere"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
	if _, err := nw.Listen(""); err == nil {
		t.Fatal("empty listen address accepted")
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	nw := NewNetwork()
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Addr().String() != "srv" {
		t.Errorf("listener addr = %q", ln.Addr())
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := conn.Read(buf); err == nil {
			conn.Write(bytes.ToUpper(buf))
		}
	}()
	conn, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.RemoteAddr().String() != "srv" {
		t.Errorf("remote addr = %q", conn.RemoteAddr())
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Errorf("echo = %q", buf)
	}
}

func TestNetworkSupportsDeadlines(t *testing.T) {
	nw := NewNetwork()
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read from silent peer succeeded")
	}
	if time.Since(start) > time.Second {
		t.Errorf("deadline took %v to fire", time.Since(start))
	}
}

func TestNetworkRelistenAfterClose(t *testing.T) {
	nw := NewNetwork()
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("srv"); err == nil {
		t.Fatal("double listen accepted")
	}
	ln.Close()
	if _, err := nw.Dial("srv"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept on closed listener succeeded")
	}
	// The crash-and-restart move: the address is free again.
	ln2, err := nw.Listen("srv")
	if err != nil {
		t.Fatalf("re-listen failed: %v", err)
	}
	defer ln2.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln2.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := nw.Dial("srv")
	if err != nil {
		t.Fatalf("dial after re-listen failed: %v", err)
	}
	conn.Close()
	<-done
}

func TestNetworkReorderWindow(t *testing.T) {
	nw := NewNetwork()
	nw.SetReorderWindow(3)
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Dial three times; each client writes its index once accepted.
	for i := 0; i < 3; i++ {
		conn, err := nw.Dial("srv")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		go func(b byte, c net.Conn) { c.Write([]byte{b}) }(byte(i), conn)
	}
	var order []byte
	for i := 0; i < 3; i++ {
		conn, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
		order = append(order, buf[0])
		conn.Close()
	}
	if order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Errorf("accept order = %v, want [2 1 0]", order)
	}
	// A lone dial below the window size is flushed, not starved.
	conn, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("held dial never delivered")
	}
}
