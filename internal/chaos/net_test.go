package chaos

import (
	"testing"
)

// TestNetworkSetDown covers whole-node partitioning: a downed address
// refuses new dials, already-established connections to it are
// severed in both directions, and healing restores dialability.
func TestNetworkSetDown(t *testing.T) {
	nw := NewNetwork()
	ln, err := nw.Listen("victim")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			accepted <- err
			return
		}
		// Server side blocks reading; a severed conn must unblock it.
		buf := make([]byte, 1)
		_, err = conn.Read(buf)
		accepted <- err
	}()

	conn, err := nw.Dial("victim")
	if err != nil {
		t.Fatal(err)
	}

	nw.SetDown("victim", true)

	if _, err := nw.Dial("victim"); err == nil {
		t.Error("dial to a downed address succeeded")
	}
	// The live connection is severed: the client write fails (maybe
	// after the buffered pipe drains) and the blocked server read errs.
	if err := <-accepted; err == nil {
		t.Error("server side of a severed connection read successfully")
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("client write on a severed connection succeeded")
	}

	nw.SetDown("victim", false)
	conn2, err := nw.Dial("victim")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn2.Close()

	// Downing an address nobody listens on is harmless.
	nw.SetDown("ghost", true)
	if _, err := nw.Dial("ghost"); err == nil {
		t.Error("dial to downed unknown address succeeded")
	}
}
