package hostsim

import (
	"fmt"

	"uucs/internal/stats"
)

// Micro-level scheduler simulation. The paper experimentally verified
// its exercisers against equal-priority competing threads: the CPU
// exerciser to contention level 10 and the disk exerciser to contention
// level 7 (§2.2). This file reproduces that verification apparatus: a
// quantum-based fair scheduler running a reference thread against
// exerciser threads built exactly as the paper describes (floor(c)
// always-busy threads plus one thread busy with probability frac(c) per
// subinterval), and a FIFO disk serving a reference stream against c
// competing seek+write streams.

// MicroSim parameterizes the micro-level experiments.
type MicroSim struct {
	// Quantum is the scheduling quantum (the paper notes behaviour is
	// limited by "the time quantum of the underlying scheduling
	// mechanism", which depends on the OS).
	Quantum float64
	// Subinterval is the exerciser's busy/sleep decision interval; it
	// must be "larger than the scheduling resolution of the machine".
	Subinterval float64
}

// DefaultMicroSim mirrors a Windows-class desktop scheduler.
func DefaultMicroSim() MicroSim {
	return MicroSim{Quantum: 0.010, Subinterval: 0.100}
}

// MeasureCPUShare runs a reference always-busy thread against a CPU
// exerciser playing constant contention c for the given duration, and
// returns the fraction of the CPU the reference thread obtained. For a
// faithful exerciser this approaches 1/(1+c).
//
// Results are bit-identical to MeasureCPUShareDirect: integer contention
// admits a closed-form evaluation of the fair scheduler (no stochastic
// thread means no RNG draws, so the quantum walk collapses to exact
// round-robin), and fractional contention is served from a memo of
// previous direct computations keyed on the full input tuple.
func (ms MicroSim) MeasureCPUShare(c, duration float64, seed uint64) (float64, error) {
	if ms.Quantum <= 0 || ms.Subinterval < ms.Quantum {
		return 0, fmt.Errorf("hostsim: micro sim needs 0 < quantum <= subinterval")
	}
	if c < 0 || duration <= 0 {
		return 0, fmt.Errorf("hostsim: invalid contention %g or duration %g", c, duration)
	}
	if c == float64(int(c)) {
		// No probabilistic thread: the scheduler is exact round-robin
		// over 1+c always-busy threads, with ties broken toward the
		// reference thread. Replicate the quantum walk's float
		// arithmetic (iteration count and the reference thread's
		// accumulated sum) without the per-quantum scheduler scan.
		n := 1 + int(c)
		quanta := 0
		for t := 0.0; t < duration; t += ms.Quantum {
			quanta++
		}
		refQuanta := (quanta + n - 1) / n // reference runs first in each cycle
		acq := 0.0
		for j := 0; j < refQuanta; j++ {
			acq += ms.Quantum
		}
		return acq / duration, nil
	}
	key := ms.cpuShareKey(c, duration, seed)
	if v, ok := microMemo.get(key); ok {
		return v, nil
	}
	v, err := ms.MeasureCPUShareDirect(c, duration, seed)
	if err == nil {
		microMemo.put(key, v)
	}
	return v, err
}

// MeasureCPUShareDirect is the direct quantum-stepped computation behind
// MeasureCPUShare, with no fast path and no memo. It is exported so
// fidelity tests can assert the optimized path is bit-identical.
func (ms MicroSim) MeasureCPUShareDirect(c, duration float64, seed uint64) (float64, error) {
	if ms.Quantum <= 0 || ms.Subinterval < ms.Quantum {
		return 0, fmt.Errorf("hostsim: micro sim needs 0 < quantum <= subinterval")
	}
	if c < 0 || duration <= 0 {
		return 0, fmt.Errorf("hostsim: invalid contention %g or duration %g", c, duration)
	}
	rng := stats.NewStream(seed)
	whole := int(c)
	frac := c - float64(whole)

	// Thread 0 is the reference; threads 1..whole are always busy;
	// thread whole+1 (if frac > 0) is the probabilistic one.
	n := 1 + whole
	hasProb := frac > 0
	if hasProb {
		n++
	}
	acquired := make([]float64, n) // CPU time obtained per thread

	probBusy := false
	subIdx := -1
	for t := 0.0; t < duration; t += ms.Quantum {
		// Refresh the probabilistic thread's state each subinterval.
		if idx := int(t / ms.Subinterval); idx != subIdx {
			subIdx = idx
			wasBusy := probBusy
			probBusy = rng.Bool(frac)
			// A fair scheduler does not let a waking thread reclaim the
			// CPU time it slept through: place it at the current minimum
			// (CFS-style wakeup placement). Without this the
			// probabilistic thread would monopolize the CPU after every
			// sleep and the exerciser would overshoot its contention.
			if probBusy && !wasBusy && hasProb {
				minAcq := acquired[0]
				for i := 1; i < n-1; i++ {
					if acquired[i] < minAcq {
						minAcq = acquired[i]
					}
				}
				if acquired[n-1] < minAcq {
					acquired[n-1] = minAcq
				}
			}
		}
		// Fair scheduler: among runnable threads, run the one with the
		// least CPU time so far for one quantum.
		best := -1
		for i := 0; i < n; i++ {
			if i == n-1 && hasProb && !probBusy {
				continue // the probabilistic thread is sleeping
			}
			if best == -1 || acquired[i] < acquired[best] {
				best = i
			}
		}
		acquired[best] += ms.Quantum
	}
	return acquired[0] / duration, nil
}

// MeasureDiskShare runs a reference seek+write stream against c
// competing exerciser streams on a FIFO disk for the given duration and
// returns the reference stream's throughput relative to running alone.
// For a faithful exerciser this approaches 1/(1+c). Fractional c adds a
// stream that participates with probability frac(c) per round.
//
// Every service time is an RNG draw, so no closed form exists even for
// integer contention; repeated evaluations are instead served from a
// memo of previous direct computations keyed on the full input tuple
// (including the hardware config), bit-identical to MeasureDiskShareDirect.
func (ms MicroSim) MeasureDiskShare(c, duration float64, cfg Config, seed uint64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if c < 0 || duration <= 0 {
		return 0, fmt.Errorf("hostsim: invalid contention %g or duration %g", c, duration)
	}
	key := ms.diskShareKey(c, duration, cfg, seed)
	if v, ok := microMemo.get(key); ok {
		return v, nil
	}
	v, err := ms.MeasureDiskShareDirect(c, duration, cfg, seed)
	if err == nil {
		microMemo.put(key, v)
	}
	return v, err
}

// MeasureDiskShareDirect is the direct round-by-round computation behind
// MeasureDiskShare, with no memo. It is exported so fidelity tests can
// assert the memoized path is bit-identical.
func (ms MicroSim) MeasureDiskShareDirect(c, duration float64, cfg Config, seed uint64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if c < 0 || duration <= 0 {
		return 0, fmt.Errorf("hostsim: invalid contention %g or duration %g", c, duration)
	}
	rng := stats.NewStream(seed)
	service := func() float64 {
		// Random seek plus a random write up to 256 KB (the paper writes
		// "a random amount of data").
		return cfg.DiskSeekMs/1000*rng.Range(0.65, 1.35) + rng.Range(16, 256)/1024.0/cfg.DiskMBps
	}
	whole := int(c)
	frac := c - float64(whole)

	refOps := 0
	soloOps := 0
	// Solo baseline.
	for t := 0.0; t < duration; soloOps++ {
		t += service()
	}
	// Contended: each round services one request per active stream in
	// round-robin order (every stream keeps one request outstanding).
	for t := 0.0; t < duration; {
		streams := 1 + whole
		if frac > 0 && rng.Bool(frac) {
			streams++
		}
		for i := 0; i < streams && t < duration; i++ {
			t += service()
			if i == 0 {
				refOps++
			}
		}
	}
	if soloOps == 0 {
		return 0, fmt.Errorf("hostsim: duration too short for a single disk op")
	}
	return float64(refOps) / float64(soloOps), nil
}
