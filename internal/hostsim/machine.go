// Package hostsim simulates the host machine on which testcases run: a
// CPU shared among equal-priority threads, a physical-memory hierarchy
// with page faults, a single disk with a FIFO queue, and background
// operating-system noise.
//
// The paper ran its controlled study on real Windows XP machines
// (Figure 7: 2.0 GHz P4, 512 MB, 80 GB Dell GX270). This package is the
// substitute substrate: the resource exercisers inject contention into
// the simulated machine, the foreground application models consume
// machine time, and the same end-to-end behaviour the paper relies on —
// an equal-priority thread running at 1/(1+c) of full speed under CPU
// contention c — emerges from the model and is verified by tests, just
// as the paper experimentally verified its exercisers (§2.2).
//
// The simulation is hybrid: interactive bursts and I/O requests are
// resolved analytically against the contention profile (fast enough to
// run the full 33-user study in seconds), while the micro-level quantum
// scheduler in microsched.go reproduces the exercisers' busy/sleep
// subinterval mechanics for fidelity experiments.
package hostsim

import (
	"fmt"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Config describes the hardware of a simulated machine.
type Config struct {
	// Name labels the configuration (e.g. "dell-gx270").
	Name string
	// CPUGHz is the clock speed; CPU work in this package is expressed in
	// seconds on a reference 2.0 GHz machine, so a 1.0 GHz machine takes
	// twice as long for the same burst.
	CPUGHz float64
	// MemMB is physical memory size.
	MemMB float64
	// OSBaseMB is memory held by the OS and services; it comes out of
	// MemMB before applications and exercisers get anything.
	OSBaseMB float64
	// DiskSeekMs is the average seek+rotational latency per random I/O.
	DiskSeekMs float64
	// DiskMBps is the sequential transfer bandwidth.
	DiskMBps float64
	// PageKB is the VM page size.
	PageKB float64
	// NoHotPageDefense disables the LRU protection of hot application
	// pages against the memory exerciser — an ablation switch; with it
	// set, even Word thrashes under full memory borrowing, which is NOT
	// what the paper observed.
	NoHotPageDefense bool
}

// StudyMachine returns the controlled study's machine configuration
// (paper Figure 7): a 2.0 GHz Pentium 4 with 512 MB RAM and an 80 GB
// disk.
func StudyMachine() Config {
	return Config{
		Name:       "dell-gx270",
		CPUGHz:     2.0,
		MemMB:      512,
		OSBaseMB:   110,
		DiskSeekMs: 8,
		DiskMBps:   40,
		PageKB:     4,
	}
}

// Validate checks the configuration for physically sensible values.
func (c Config) Validate() error {
	if c.CPUGHz <= 0 || c.MemMB <= 0 || c.DiskSeekMs <= 0 || c.DiskMBps <= 0 {
		return fmt.Errorf("hostsim: non-positive hardware parameter in %+v", c)
	}
	if c.OSBaseMB < 0 || c.OSBaseMB >= c.MemMB {
		return fmt.Errorf("hostsim: OS base %g MB out of range for %g MB machine", c.OSBaseMB, c.MemMB)
	}
	if c.PageKB <= 0 {
		return fmt.Errorf("hostsim: non-positive page size")
	}
	return nil
}

// ContentionFunc reports the contention applied to a resource at time t
// seconds into a run. For CPU and disk it is the (possibly fractional)
// number of competing equal-priority tasks; for memory it is the
// fraction of physical memory borrowed.
type ContentionFunc func(t float64) float64

// numResources is the number of borrowable resources a machine tracks;
// contention profiles live in a fixed array indexed by resourceIndex so
// the per-event hot paths never hash a map key.
const numResources = 3

// resourceIndex maps a resource to its contention slot, or -1 for
// unknown resources (which always read contention 0).
func resourceIndex(r testcase.Resource) int {
	switch r {
	case testcase.CPU:
		return cpuIdx
	case testcase.Memory:
		return memIdx
	case testcase.Disk:
		return diskIdx
	}
	return -1
}

// Contention slots, in the canonical testcase.Resources() order.
const (
	cpuIdx = iota
	memIdx
	diskIdx
)

// Machine is one simulated host during one run. Create one per testcase
// run with NewMachine, or reuse one across runs with Reset, so
// disk-queue and fault state do not leak between runs. It is not safe
// for concurrent use.
type Machine struct {
	cfg   Config
	rng   *stats.Stream
	noise *Noise

	contention [numResources]ContentionFunc

	// exercise holds contention profiles attached as plain exercise
	// functions (SetExercise); unlike a ContentionFunc closure these
	// attach without a heap allocation, which is what the zero-alloc
	// run path uses. A set exercise slot takes priority over the
	// closure slot.
	exercise    [numResources]testcase.ExerciseFunction
	hasExercise [numResources]bool

	// diskFreeAt is the time the disk queue drains; requests submitted
	// before then wait behind earlier ones (FIFO).
	diskFreeAt float64

	// subinterval is the exerciser playback subinterval: fractional CPU
	// contention is realized as an extra thread that is busy with
	// probability frac(c) in each subinterval (§2.2).
	subinterval float64
}

// NewMachine builds a machine with the given hardware and noise profile.
// seed fixes all stochastic behaviour (seek jitter, fractional-contention
// sampling, noise timing).
func NewMachine(cfg Config, noiseProfile NoiseProfile, seed uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewStream(seed)
	m := &Machine{
		cfg:         cfg,
		rng:         rng,
		noise:       newNoise(noiseProfile, rng.Fork()),
		subinterval: 0.1,
	}
	return m, nil
}

// Reset reinitializes the machine in place for a new run, reusing the
// noise window buffers and RNG allocations. A machine reset with the
// same (cfg, noiseProfile, seed) behaves bit-identically to a fresh
// NewMachine: the RNG is reseeded through the same derivation and all
// per-run state (contention, disk queue, noise windows) is cleared.
func (m *Machine) Reset(cfg Config, noiseProfile NoiseProfile, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.cfg = cfg
	m.rng.Reseed(seed)
	m.noise.reset(noiseProfile, m.rng)
	m.contention = [numResources]ContentionFunc{}
	m.exercise = [numResources]testcase.ExerciseFunction{}
	m.hasExercise = [numResources]bool{}
	m.diskFreeAt = 0
	m.subinterval = 0.1
	return nil
}

// Config returns the machine's hardware description.
func (m *Machine) Config() Config { return m.cfg }

// SetContention attaches an exerciser's contention profile for one
// resource. Passing nil detaches the resource.
func (m *Machine) SetContention(r testcase.Resource, f ContentionFunc) {
	if i := resourceIndex(r); i >= 0 {
		m.contention[i] = f
		m.hasExercise[i] = false
	}
}

// SetExercise attaches a testcase exercise function directly, the
// allocation-free equivalent of SetContention(r, f.Value): storing the
// function struct avoids materializing a method-value closure per run.
func (m *Machine) SetExercise(r testcase.Resource, f testcase.ExerciseFunction) {
	if i := resourceIndex(r); i >= 0 {
		m.exercise[i] = f
		m.hasExercise[i] = true
	}
}

// ClearContention detaches all exercisers — the paper's client stops all
// exercisers immediately when the user expresses discomfort.
func (m *Machine) ClearContention() {
	m.contention = [numResources]ContentionFunc{}
	m.exercise = [numResources]testcase.ExerciseFunction{}
	m.hasExercise = [numResources]bool{}
}

// ContentionAt returns the contention applied to resource r at time t.
func (m *Machine) ContentionAt(r testcase.Resource, t float64) float64 {
	i := resourceIndex(r)
	if i < 0 {
		return 0
	}
	return m.contentionAt(i, t)
}

// contentionAt is the hot-path form of ContentionAt for pre-resolved
// resource indices.
func (m *Machine) contentionAt(i int, t float64) float64 {
	var c float64
	if m.hasExercise[i] {
		c = m.exercise[i].Value(t)
	} else if f := m.contention[i]; f != nil {
		c = f(t)
	} else {
		return 0
	}
	if c < 0 {
		return 0
	}
	return c
}

// speedFactor converts reference CPU seconds to this machine's seconds.
func (m *Machine) speedFactor() float64 { return 2.0 / m.cfg.CPUGHz }

// Load is a point-in-time load snapshot, recorded by the system monitor
// with every run (the paper stores CPU, memory and disk load measurements
// for the entire duration of each testcase, §2.3).
type Load struct {
	Time    float64 // seconds into the run
	CPU     float64 // total CPU demand (exerciser + noise), in tasks
	MemFrac float64 // fraction of physical memory borrowed
	DiskQ   float64 // disk contention, in competing streams
}

// LoadAt samples the machine load at time t.
func (m *Machine) LoadAt(t float64) Load {
	return Load{
		Time:    t,
		CPU:     m.contentionAt(cpuIdx, t) + m.noise.CPUBusy(t),
		MemFrac: m.contentionAt(memIdx, t),
		DiskQ:   m.contentionAt(diskIdx, t) + m.noise.DiskBusy(t),
	}
}
