package hostsim

import (
	"math"
	"sync"
	"testing"

	"uucs/internal/stats"
)

// TestCPUShareFastPathBitIdentical sweeps a randomized grid of
// (contention, duration, quantum, subinterval, seed) inputs and asserts
// the optimized MeasureCPUShare — closed form for integer contention,
// memo for fractional — returns the exact bits the direct quantum-stepped
// computation produces.
func TestCPUShareFastPathBitIdentical(t *testing.T) {
	rng := stats.NewStream(42)
	for i := 0; i < 200; i++ {
		quantum := rng.Range(0.001, 0.02)
		ms := MicroSim{Quantum: quantum, Subinterval: quantum * rng.Range(1, 20)}
		c := rng.Range(0, 10)
		if i%3 == 0 {
			c = float64(rng.IntN(11)) // exercise the closed-form integer path
		}
		duration := rng.Range(0.5, 30)
		seed := rng.Uint64()

		want, err := ms.MeasureCPUShareDirect(c, duration, seed)
		if err != nil {
			t.Fatalf("direct(%g, %g): %v", c, duration, err)
		}
		// Twice: once computing (or closed-form), once from the memo.
		for pass := 0; pass < 2; pass++ {
			got, err := ms.MeasureCPUShare(c, duration, seed)
			if err != nil {
				t.Fatalf("fast(%g, %g): %v", c, duration, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("pass %d: MeasureCPUShare(c=%v, dur=%v, q=%v, sub=%v, seed=%v) = %v, direct = %v",
					pass, c, duration, ms.Quantum, ms.Subinterval, seed, got, want)
			}
		}
	}
}

// TestDiskShareMemoBitIdentical does the same for the disk kernel,
// varying the hardware config as well (it is part of the memo key).
func TestDiskShareMemoBitIdentical(t *testing.T) {
	rng := stats.NewStream(7)
	ms := DefaultMicroSim()
	for i := 0; i < 60; i++ {
		cfg := StudyMachine()
		cfg.DiskSeekMs = rng.Range(4, 16)
		cfg.DiskMBps = rng.Range(15, 80)
		c := rng.Range(0, 7)
		duration := rng.Range(1, 20)
		seed := rng.Uint64()

		want, err := ms.MeasureDiskShareDirect(c, duration, cfg, seed)
		if err != nil {
			t.Fatalf("direct(%g, %g): %v", c, duration, err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := ms.MeasureDiskShare(c, duration, cfg, seed)
			if err != nil {
				t.Fatalf("memo(%g, %g): %v", c, duration, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("pass %d: MeasureDiskShare(c=%v, dur=%v, cfg=%+v, seed=%v) = %v, direct = %v",
					pass, c, duration, cfg, seed, got, want)
			}
		}
	}
}

// TestDiskShareMemoKeyedOnConfig guards against key collisions: two
// configs differing only in hardware must not share a memo entry.
func TestDiskShareMemoKeyedOnConfig(t *testing.T) {
	ms := DefaultMicroSim()
	slow := StudyMachine()
	slow.DiskSeekMs = 20
	a, err := ms.MeasureDiskShare(3, 10, StudyMachine(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ms.MeasureDiskShare(3, 10, slow, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := ms.MeasureDiskShareDirect(3, 10, slow, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(b) != math.Float64bits(wantB) {
		t.Fatalf("config not part of memo key: got %v want %v (study-machine value %v)", b, wantB, a)
	}
}

// TestMemoConcurrentAccess hammers the memo table from many goroutines
// over a small key grid; the race detector checks safety, and every
// returned value must match the direct computation.
func TestMemoConcurrentAccess(t *testing.T) {
	ms := DefaultMicroSim()
	type in struct {
		c, dur float64
		seed   uint64
	}
	grid := make([]in, 0, 16)
	rng := stats.NewStream(11)
	for i := 0; i < 16; i++ {
		grid = append(grid, in{c: rng.Range(0.1, 5), dur: rng.Range(1, 5), seed: rng.Uint64()})
	}
	want := make([]float64, len(grid))
	for i, g := range grid {
		v, err := ms.MeasureCPUShareDirect(g.c, g.dur, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				i := (w + rep) % len(grid)
				v, err := ms.MeasureCPUShare(grid[i].c, grid[i].dur, grid[i].seed)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(v) != math.Float64bits(want[i]) {
					t.Errorf("concurrent memo value diverged: got %v want %v", v, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
