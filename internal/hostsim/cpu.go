package hostsim

// CPU model. Interactive work is expressed as bursts: a keystroke echo,
// a slide redraw, a game frame. Under the equal-priority scheduling the
// paper's exercisers rely on, a foreground burst that needs s seconds of
// CPU completes in s·(1+c) wall-clock seconds when c exerciser threads
// are busy — "that thread will execute at a rate 1/(1.5+1) = 40% that of
// the maximum possible rate" (§2.2).
//
// Fractional contention is realized exactly as the paper does it: with
// contention 1.5, one thread is always busy and a second is busy with
// probability 0.5 in each scheduling subinterval. Short bursts therefore
// see an integer number of competitors sampled per subinterval — the
// source of frame-time jitter that makes low contention levels
// perceptible in Quake — while long bursts average to the fluid 1/(1+c)
// rate.

// shortBurstLimit is the work size (in local CPU seconds) below which
// bursts use per-subinterval stochastic contention sampling; larger
// bursts use fluid integration, where the law of large numbers makes the
// distinction irrelevant.
const shortBurstLimit = 0.5

// fluidStep is the integration step for long bursts; the controlled
// study's exercise functions are sampled at 1 Hz, so 0.25 s resolves
// them comfortably.
const fluidStep = 0.25

// CPUBurst returns the wall-clock time at which a foreground CPU burst
// submitted at start completes. refWork is the burst's demand in seconds
// on the reference 2.0 GHz machine; slower hardware scales it up.
func (m *Machine) CPUBurst(start, refWork float64) float64 {
	if refWork <= 0 {
		return start
	}
	work := refWork * m.speedFactor()
	if work <= shortBurstLimit {
		return m.cpuBurstSampled(start, work)
	}
	return m.cpuBurstFluid(start, work)
}

// cpuBurstSampled advances subinterval by subinterval, sampling the
// integer number of busy exerciser threads in each one. Background-noise
// stalls preempt fully: OS services and interrupt handlers run above
// normal priority, so a foreground burst makes no progress while one is
// active — that is what turns a stall into a visible hitch.
func (m *Machine) cpuBurstSampled(start, work float64) float64 {
	t := start
	remaining := work
	for remaining > 1e-12 {
		if m.noise.CPUBusy(t) > 0 {
			t = m.noise.nextCPUChange(t)
			continue
		}
		c := m.contentionAt(cpuIdx, t)
		n := m.sampleThreads(c)
		share := 1 / (1 + n)
		// CPU work completable within this subinterval at this share.
		capacity := m.subinterval * share
		if capacity >= remaining {
			t += remaining / share
			remaining = 0
		} else {
			remaining -= capacity
			t += m.subinterval
		}
	}
	return t
}

// cpuBurstFluid integrates the expected processor share over time.
// Noise stalls preempt fully, as in cpuBurstSampled.
func (m *Machine) cpuBurstFluid(start, work float64) float64 {
	t := start
	remaining := work
	for remaining > 1e-12 {
		if m.noise.CPUBusy(t) > 0 {
			t = m.noise.nextCPUChange(t)
			continue
		}
		c := m.contentionAt(cpuIdx, t)
		share := 1 / (1 + c)
		capacity := fluidStep * share
		if capacity >= remaining {
			t += remaining / share
			remaining = 0
		} else {
			remaining -= capacity
			t += fluidStep
		}
	}
	return t
}

// sampleThreads converts fractional contention c into an integer thread
// count for one subinterval: floor(c) always-busy threads plus one more
// with probability frac(c) — the paper's stochastic borrowing mechanism.
func (m *Machine) sampleThreads(c float64) float64 {
	if c <= 0 {
		return 0
	}
	whole := float64(int(c))
	frac := c - whole
	if frac > 0 && m.rng.Bool(frac) {
		whole++
	}
	return whole
}

// CPUBurstSmoothed is like CPUBurst but always integrates the expected
// (fluid) processor share, with no per-subinterval contention sampling.
// Use it for work whose perception averages over many fine updates — a
// continuous drag-render loop — where a single slow subinterval is
// invisible but a sustained slowdown is not.
func (m *Machine) CPUBurstSmoothed(start, refWork float64) float64 {
	if refWork <= 0 {
		return start
	}
	return m.cpuBurstFluid(start, refWork*m.speedFactor())
}

// CPUBaseline returns the uncontended duration of a reference CPU burst
// on this machine — the latency the user has acclimatized to.
func (m *Machine) CPUBaseline(refWork float64) float64 {
	if refWork <= 0 {
		return 0
	}
	return refWork * m.speedFactor()
}

// CPUStallEnd returns when a burst that began at start would finish if it
// also had to wait for an ongoing background-noise stall to clear; it is
// a convenience for app models that poll for jitter.
func (m *Machine) CPUStallEnd(t float64) float64 {
	if m.noise.CPUBusy(t) == 0 {
		return t
	}
	return m.noise.nextCPUChange(t)
}
