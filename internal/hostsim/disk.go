package hostsim

// Disk model. The disk serves one request at a time from a FIFO queue.
// The paper's disk exerciser creates contention c by keeping c competing
// seek+write streams outstanding, each performing "a random seek in a
// large file (2x the memory of the machine) followed by a write of a
// random amount of data", write-through and synced (§2.2). The effect on
// a foreground I/O-busy thread is a slowdown similar to the CPU
// exerciser: each of its requests queues behind roughly c exerciser
// requests.

// exerciser request geometry: a random seek plus a modest write.
const (
	exerciserWriteKB = 128
	appChunkKB       = 64
)

// exerciserServiceTime is the mean service time of one exerciser
// seek+write request on this hardware.
func (m *Machine) exerciserServiceTime() float64 {
	return m.cfg.DiskSeekMs/1000 + exerciserWriteKB/1024.0/m.cfg.DiskMBps
}

// seekTime returns one randomized seek+rotational latency.
func (m *Machine) seekTime() float64 {
	// +-35% uniform jitter around the configured average.
	return m.cfg.DiskSeekMs / 1000 * m.rng.Range(0.65, 1.35)
}

// DiskIO returns the wall-clock completion time of a foreground I/O of
// the given size submitted at start. The request is split into chunks;
// with contention c, each chunk waits behind about c exerciser requests,
// and interleaved exerciser seeks force the head away so every chunk
// pays a seek.
func (m *Machine) DiskIO(start float64, bytesKB float64) float64 {
	if bytesKB <= 0 {
		return start
	}
	t := start
	if m.diskFreeAt > t {
		t = m.diskFreeAt // wait for the queue to drain
	}
	remaining := bytesKB
	for remaining > 0 {
		chunk := remaining
		if chunk > appChunkKB {
			chunk = appChunkKB
		}
		remaining -= chunk
		// The exerciser's random seeks defeat any sequential locality, so
		// every chunk pays a seek; with c competing streams the disk
		// round-robins among 1+c requesters, so the chunk's service time
		// stretches by (1+c) — the same equal-share behaviour the paper
		// verified for its disk exerciser.
		c := m.contentionAt(diskIdx, t) + m.noise.DiskBusy(t)
		svc := m.seekTime() + chunk/1024.0/m.cfg.DiskMBps
		t += svc * (1 + c)
	}
	m.diskFreeAt = t
	return t
}

// DiskIOBaseline returns the typical uncontended duration of a
// foreground I/O of the given size — the feel the user is acclimatized
// to — using average seek time and no queueing.
func (m *Machine) DiskIOBaseline(bytesKB float64) float64 {
	if bytesKB <= 0 {
		return 0
	}
	chunks := int((bytesKB + appChunkKB - 1) / appChunkKB)
	return float64(chunks)*m.cfg.DiskSeekMs/1000 + bytesKB/1024.0/m.cfg.DiskMBps
}

// DiskIOBackground behaves like DiskIO but does not force later requests
// to queue behind it; it models write-behind I/O (autosaves flushed by
// the OS) whose latency the app still observes but which does not block
// subsequent foreground requests at submission time.
func (m *Machine) DiskIOBackground(start float64, bytesKB float64) float64 {
	savedFree := m.diskFreeAt
	end := m.DiskIO(start, bytesKB)
	m.diskFreeAt = savedFree
	return end
}
