package hostsim

import (
	"math"
	"sync"
)

// Kernel memoization. The micro-level quantum kernels are pure functions
// of their full input tuple — (quantum, subinterval, contention,
// duration, seed) plus, for the disk, the hardware config — so their
// results can be cached and replayed with no fidelity loss at all: a
// memo hit returns the exact float the direct computation produced when
// the entry was populated, and entries are only ever populated from the
// direct computation. Bit-identical by construction.
//
// Keys carry the exact IEEE-754 bit patterns of every float input
// (math.Float64bits), not a lossy rounding: two calls share an entry
// only when every input is identical, which is what makes replay safe.
// The study drivers hit this table hard — fidelity sweeps and fleet
// calibration re-run the same (contention, duration) grid thousands of
// times — which is exactly the workload the ROADMAP's "near-free
// simulated runs" goal needs.
//
// The table is sharded by key hash; each shard holds its entries behind
// its own mutex so concurrent workers do not serialize on one lock.
// Shards are bounded: on overflow a shard is emptied rather than
// LRU-tracked — values are pure, so eviction can never change a result,
// only cost a recomputation.

const (
	memoShards      = 16
	memoShardMaxLen = 4096
)

// memoKind distinguishes the cached kernels.
type memoKind uint8

const (
	memoCPUShare memoKind = iota
	memoDiskShare
)

// memoKey is the full input tuple of one micro-kernel evaluation.
// Config is embedded by value; all its fields are comparable.
type memoKey struct {
	kind                 memoKind
	quantum, subinterval uint64 // Float64bits
	c, duration          uint64 // Float64bits
	seed                 uint64
	cfg                  Config
}

type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]float64
}

type memoTable struct {
	shards [memoShards]memoShard
}

// microMemo is the process-wide kernel memo table.
var microMemo memoTable

func (k memoKey) shard() uint64 {
	// FNV-1a over the scalar fields; the config only varies across
	// hosts, so the scalars carry the entropy that matters.
	h := uint64(14695981039346656037)
	for _, v := range [...]uint64{uint64(k.kind), k.quantum, k.subinterval, k.c, k.duration, k.seed} {
		h ^= v
		h *= 1099511628211
	}
	return h % memoShards
}

func (t *memoTable) get(k memoKey) (float64, bool) {
	s := &t.shards[k.shard()]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (t *memoTable) put(k memoKey, v float64) {
	s := &t.shards[k.shard()]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= memoShardMaxLen {
		s.m = make(map[memoKey]float64, 64)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// cpuShareKey builds the memo key for a MeasureCPUShare call.
func (ms MicroSim) cpuShareKey(c, duration float64, seed uint64) memoKey {
	return memoKey{
		kind:        memoCPUShare,
		quantum:     math.Float64bits(ms.Quantum),
		subinterval: math.Float64bits(ms.Subinterval),
		c:           math.Float64bits(c),
		duration:    math.Float64bits(duration),
		seed:        seed,
	}
}

// diskShareKey builds the memo key for a MeasureDiskShare call.
func (ms MicroSim) diskShareKey(c, duration float64, cfg Config, seed uint64) memoKey {
	k := ms.cpuShareKey(c, duration, seed)
	k.kind = memoDiskShare
	k.cfg = cfg
	return k
}
