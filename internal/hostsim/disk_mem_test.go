package hostsim

import (
	"math"
	"testing"
	"testing/quick"

	"uucs/internal/testcase"
)

func TestDiskIOUncontended(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 20)
	// 64 KB: one chunk = one seek + transfer; roughly 8ms + 1.6ms.
	end := m.DiskIO(0, 64)
	if end < 0.005 || end > 0.02 {
		t.Errorf("64KB I/O took %v, want ~10ms", end)
	}
}

func TestDiskIOScalesWithContention(t *testing.T) {
	baseM := newTestMachine(t, NoNoise(), 21)
	base := avgIO(baseM, 512)
	for _, c := range []float64{1, 4, 7} {
		m := newTestMachine(t, NoNoise(), 21)
		cc := c
		m.SetContention(testcase.Disk, func(float64) float64 { return cc })
		got := avgIO(m, 512)
		ratio := got / base
		want := 1 + cc*0.9 // contention adds ~c exerciser services per chunk
		if ratio < want*0.6 || ratio > (1+cc)*1.6 {
			t.Errorf("c=%v: slowdown ratio = %v, want around %v", cc, ratio, 1+cc)
		}
	}
}

func avgIO(m *Machine, kb float64) float64 {
	total := 0.0
	n := 50
	for i := 0; i < n; i++ {
		start := float64(i) * 100
		m.diskFreeAt = 0 // isolate each measurement
		total += m.DiskIO(start, kb) - start
	}
	return total / float64(n)
}

func TestDiskQueueSerializes(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 22)
	end1 := m.DiskIO(0, 1024)
	end2 := m.DiskIO(0, 64) // submitted at the same instant: must wait
	if end2 <= end1 {
		t.Errorf("second request (%v) did not queue behind first (%v)", end2, end1)
	}
}

func TestDiskIOBackgroundDoesNotBlockQueue(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 23)
	m.DiskIOBackground(0, 4096)
	end := m.DiskIO(0, 64)
	if end > 0.05 {
		t.Errorf("foreground I/O blocked by background write: %v", end)
	}
}

func TestDiskIOZeroBytes(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 24)
	if got := m.DiskIO(5, 0); got != 5 {
		t.Errorf("zero-byte I/O advanced time: %v", got)
	}
}

func TestMemMissNoPressure(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 30)
	// 110 OS + 60 app on a 512 MB machine with no exerciser: no misses.
	cold, hot := m.MemMiss(0, WorkingSet{TotalMB: 60, HotMB: 10})
	if cold != 0 || hot != 0 {
		t.Errorf("unexpected misses: cold=%v hot=%v", cold, hot)
	}
}

func TestMemMissColdPagesLoseHotSurvive(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 31)
	level := 0.8
	m.SetContention(testcase.Memory, func(float64) float64 { return level })
	ws := WorkingSet{TotalMB: 200, HotMB: 50}
	// avail for the exerciser = 512-110-50 = 352; at m=0.8 it is capped
	// at 352, so overflow = 110+200+352-512 = 150 = all the cold pages.
	cold, hot := m.MemMiss(0, ws)
	if cold != 1 {
		t.Errorf("cold miss = %v, want 1", cold)
	}
	if hot != 0 {
		t.Errorf("hot miss = %v, want 0 (hot pages defend themselves)", hot)
	}
	// Lower pressure: cold pages partially affected.
	level = 0.45 // overflow = 110+200+230.4-512 = 28.4
	cold, hot = m.MemMiss(0, ws)
	if hot != 0 {
		t.Errorf("hot miss = %v under mild pressure, want 0", hot)
	}
	if math.Abs(cold-28.4/150) > 0.01 {
		t.Errorf("cold miss = %v, want ~%v", cold, 28.4/150)
	}
}

func TestMemMissClampsBorrowed(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 32)
	m.SetContention(testcase.Memory, func(float64) float64 { return 5 }) // out of spec
	// Hot-only working set: the exerciser cannot displace it, so even an
	// out-of-spec contention level produces no misses.
	cold, hot := m.MemMiss(0, WorkingSet{TotalMB: 100, HotMB: 100})
	if cold != 0 || hot != 0 {
		t.Errorf("miss = (%v, %v), want (0, 0)", cold, hot)
	}
}

func TestMemMissPathologicalHotCore(t *testing.T) {
	// An app whose hot core plus the OS exceed RAM thrashes even without
	// any exerciser.
	m := newTestMachine(t, NoNoise(), 36)
	cold, hot := m.MemMiss(0, WorkingSet{TotalMB: 450, HotMB: 450})
	if cold != 0 {
		t.Errorf("cold miss = %v with no cold pages", cold)
	}
	if hot <= 0 {
		t.Errorf("hot miss = %v, want positive (110+450 > 512)", hot)
	}
}

func TestMemMissMonotoneProperty(t *testing.T) {
	check := func(seed uint64, wsRaw, hotRaw uint8) bool {
		m, err := NewMachine(StudyMachine(), NoNoise(), seed)
		if err != nil {
			return false
		}
		total := float64(wsRaw%200) + 20
		hot := math.Min(float64(hotRaw%100)+1, total)
		ws := WorkingSet{TotalMB: total, HotMB: hot}
		prevCold, prevHot := -1.0, -1.0
		for level := 0.0; level <= 1.0; level += 0.05 {
			lv := level
			m.SetContention(testcase.Memory, func(float64) float64 { return lv })
			cold, hotm := m.MemMiss(0, ws)
			if cold < prevCold-1e-9 || hotm < prevHot-1e-9 {
				return false // misses must grow with borrowed memory
			}
			if cold < 0 || cold > 1 || hotm < 0 || hotm > 1 {
				return false
			}
			prevCold, prevHot = cold, hotm
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFaultCount(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 33)
	if m.FaultCount(10, 0) != 0 {
		t.Error("faults with zero miss fraction")
	}
	if m.FaultCount(10, 1) != 10 {
		t.Error("miss fraction 1 should fault every touch")
	}
	if m.FaultCount(0, 0.5) != 0 {
		t.Error("faults with zero touches")
	}
	total := 0
	for i := 0; i < 200; i++ {
		total += m.FaultCount(10, 0.3)
	}
	avg := float64(total) / 200
	if avg < 2 || avg > 4 {
		t.Errorf("mean fault count = %v, want ~3", avg)
	}
}

func TestFaultCostGrowsWithPressure(t *testing.T) {
	ws := WorkingSet{TotalMB: 200, HotMB: 50}
	cost := func(level float64) float64 {
		m := newTestMachine(t, NoNoise(), 34)
		m.SetContention(testcase.Memory, func(float64) float64 { return level })
		total := 0.0
		for i := 0; i < 50; i++ {
			total += m.FaultCost(0, 5, ws)
		}
		return total / 50
	}
	mild, heavy := cost(0.5), cost(1.0)
	if heavy <= mild {
		t.Errorf("fault cost did not grow with pressure: %v vs %v", mild, heavy)
	}
	if c := cost(0.5); c <= 0 {
		t.Errorf("fault cost = %v", c)
	}
	m := newTestMachine(t, NoNoise(), 35)
	if m.FaultCost(0, 0, ws) != 0 {
		t.Error("zero faults should cost nothing")
	}
}

func TestMicroCPUShareMatchesFluid(t *testing.T) {
	// The paper verified the CPU exerciser to contention 10: an equal
	// priority reference thread must get ~1/(1+c) of the CPU.
	ms := DefaultMicroSim()
	for _, c := range []float64{0, 1, 1.5, 4, 10} {
		share, err := ms.MeasureCPUShare(c, 120, 77)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 + c)
		if math.Abs(share-want) > 0.05*want+0.01 {
			t.Errorf("c=%v: CPU share = %v, want ~%v", c, share, want)
		}
	}
}

func TestMicroDiskShareMatchesFluid(t *testing.T) {
	// The paper verified the disk exerciser to contention 7.
	ms := DefaultMicroSim()
	for _, c := range []float64{0, 1, 3, 7} {
		share, err := ms.MeasureDiskShare(c, 120, StudyMachine(), 78)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 + c)
		if math.Abs(share-want) > 0.1*want+0.02 {
			t.Errorf("c=%v: disk share = %v, want ~%v", c, share, want)
		}
	}
}

func TestMicroSimErrors(t *testing.T) {
	ms := DefaultMicroSim()
	if _, err := ms.MeasureCPUShare(-1, 10, 1); err == nil {
		t.Error("negative contention accepted")
	}
	if _, err := ms.MeasureCPUShare(1, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
	bad := MicroSim{Quantum: 0, Subinterval: 0.1}
	if _, err := bad.MeasureCPUShare(1, 10, 1); err == nil {
		t.Error("zero quantum accepted")
	}
	if _, err := ms.MeasureDiskShare(-1, 10, StudyMachine(), 1); err == nil {
		t.Error("negative disk contention accepted")
	}
	if _, err := ms.MeasureDiskShare(1, 10, Config{}, 1); err == nil {
		t.Error("invalid config accepted")
	}
}
