package hostsim

import (
	"math"
	"testing"

	"uucs/internal/testcase"
)

func newTestMachine(t *testing.T, noise NoiseProfile, seed uint64) *Machine {
	t.Helper()
	m, err := NewMachine(StudyMachine(), noise, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := StudyMachine().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{CPUGHz: 0, MemMB: 512, DiskSeekMs: 8, DiskMBps: 40, PageKB: 4},
		{CPUGHz: 2, MemMB: 512, OSBaseMB: 600, DiskSeekMs: 8, DiskMBps: 40, PageKB: 4},
		{CPUGHz: 2, MemMB: 512, DiskSeekMs: 8, DiskMBps: 40, PageKB: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewMachine(Config{}, NoNoise(), 1); err == nil {
		t.Error("NewMachine accepted invalid config")
	}
}

func TestCPUBurstNoContention(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 1)
	end := m.CPUBurst(10, 0.05)
	if math.Abs(end-10.05) > 1e-9 {
		t.Errorf("uncontended 50ms burst finished at %v, want 10.05", end)
	}
	if got := m.CPUBurst(5, 0); got != 5 {
		t.Errorf("zero-work burst advanced time to %v", got)
	}
}

func TestCPUBurstIntegerContention(t *testing.T) {
	// With integer contention c, a burst must take exactly (1+c)x longer
	// regardless of burst size (no stochastic component).
	m := newTestMachine(t, NoNoise(), 2)
	m.SetContention(testcase.CPU, func(float64) float64 { return 3 })
	for _, work := range []float64{0.011, 0.3, 2.0} {
		end := m.CPUBurst(0, work)
		want := work * 4
		if math.Abs(end-want) > 0.02*want+1e-9 {
			t.Errorf("work %v: end = %v, want ~%v", work, end, want)
		}
	}
}

func TestCPUBurstFractionalContentionAverages(t *testing.T) {
	// Fractional contention 1.5 must slow a foreground thread to ~40% on
	// average — the paper's §2.2 worked example.
	m := newTestMachine(t, NoNoise(), 3)
	m.SetContention(testcase.CPU, func(float64) float64 { return 1.5 })
	total := 0.0
	n := 400
	for i := 0; i < n; i++ {
		start := float64(i) * 10
		end := m.CPUBurst(start, 0.1)
		total += end - start
	}
	avg := total / float64(n)
	want := 0.1 * 2.5
	if math.Abs(avg-want) > 0.015 {
		t.Errorf("avg contended burst = %v, want ~%v (rate 40%%)", avg, want)
	}
}

func TestCPUBurstFractionalJitter(t *testing.T) {
	// Short bursts under fractional contention must exhibit variance —
	// this is the frame-jitter mechanism that makes Quake sensitive.
	m := newTestMachine(t, NoNoise(), 4)
	m.SetContention(testcase.CPU, func(float64) float64 { return 0.5 })
	fast, slow := 0, 0
	for i := 0; i < 200; i++ {
		start := float64(i)
		d := m.CPUBurst(start, 0.011) - start
		if d < 0.012 {
			fast++
		} else {
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Errorf("no jitter: fast=%d slow=%d", fast, slow)
	}
}

func TestCPUBurstSpeedScaling(t *testing.T) {
	cfg := StudyMachine()
	cfg.CPUGHz = 1.0 // half the reference speed
	m, err := NewMachine(cfg, NoNoise(), 5)
	if err != nil {
		t.Fatal(err)
	}
	end := m.CPUBurst(0, 0.1)
	if math.Abs(end-0.2) > 1e-9 {
		t.Errorf("1 GHz machine: 100ms reference burst took %v, want 0.2", end)
	}
}

func TestCPUBurstRampProfile(t *testing.T) {
	// Under a ramp the integrated completion time must exceed the
	// uncontended time and grow with start time.
	ramp := testcase.Ramp(4, 120, 1)
	m := newTestMachine(t, NoNoise(), 6)
	m.SetContention(testcase.CPU, ramp.Value)
	early := m.CPUBurst(10, 1.0) - 10
	late := m.CPUBurst(100, 1.0) - 100
	if late <= early {
		t.Errorf("ramp: late burst (%v) not slower than early (%v)", late, early)
	}
	// At t=100 contention ~3.37, so a 1s burst should take ~4.4s.
	if late < 3.5 || late > 5.5 {
		t.Errorf("late burst duration = %v, want ~4.4", late)
	}
}

func TestNoiseProducesStalls(t *testing.T) {
	m := newTestMachine(t, DefaultNoise(), 7)
	busy := 0.0
	const dur = 600.0
	for tt := 0.0; tt < dur; tt += 0.01 {
		if m.noise.CPUBusy(tt) > 0 {
			busy += 0.01
		}
	}
	frac := busy / dur
	// Expected ~ (median stall / gap) order of magnitude; just require
	// non-zero and small.
	if frac == 0 {
		t.Error("default noise produced no CPU stalls in 10 minutes")
	}
	if frac > 0.05 {
		t.Errorf("noise CPU fraction = %v, machine should be mostly idle", frac)
	}
}

func TestNoNoiseIsSilent(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 8)
	for tt := 0.0; tt < 300; tt += 0.5 {
		if m.noise.CPUBusy(tt) != 0 || m.noise.DiskBusy(tt) != 0 {
			t.Fatalf("NoNoise profile active at t=%v", tt)
		}
	}
}

func TestLoadAt(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 9)
	m.SetContention(testcase.CPU, func(float64) float64 { return 2 })
	m.SetContention(testcase.Memory, func(float64) float64 { return 0.5 })
	l := m.LoadAt(10)
	if l.CPU != 2 || l.MemFrac != 0.5 || l.DiskQ != 0 {
		t.Errorf("LoadAt = %+v", l)
	}
	if l.Time != 10 {
		t.Errorf("Load.Time = %v", l.Time)
	}
}

func TestClearContention(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 10)
	m.SetContention(testcase.CPU, func(float64) float64 { return 5 })
	m.ClearContention()
	if got := m.ContentionAt(testcase.CPU, 0); got != 0 {
		t.Errorf("contention after clear = %v", got)
	}
	m.SetContention(testcase.Disk, func(float64) float64 { return 1 })
	m.SetContention(testcase.Disk, nil)
	if got := m.ContentionAt(testcase.Disk, 0); got != 0 {
		t.Errorf("contention after nil set = %v", got)
	}
}

func TestNegativeContentionClamped(t *testing.T) {
	m := newTestMachine(t, NoNoise(), 11)
	m.SetContention(testcase.CPU, func(float64) float64 { return -3 })
	if got := m.ContentionAt(testcase.CPU, 0); got != 0 {
		t.Errorf("negative contention not clamped: %v", got)
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() []float64 {
		m := newTestMachine(t, DefaultNoise(), 42)
		m.SetContention(testcase.CPU, func(float64) float64 { return 1.5 })
		var out []float64
		for i := 0; i < 50; i++ {
			out = append(out, m.CPUBurst(float64(i), 0.05))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("machine not deterministic at burst %d", i)
		}
	}
}
