package hostsim

import (
	"sort"

	"uucs/internal/stats"
)

// Noise models the background activity of an otherwise quiescent
// machine: OS services, daemons and interrupt handlers that occasionally
// grab the CPU or the disk. The paper observes (§3.3.3) that users
// expressed discomfort even on blank testcases, but only in IE and Quake
// — "there are sources of jitter on even an otherwise quiescent
// machine". This component is that jitter source; it is what produces
// the study's non-zero noise floor.
type Noise struct {
	profile NoiseProfile
	cpu     []window
	disk    []window
	horizon float64
	rng     *stats.Stream
}

// window is a half-open interval [start, end) during which a background
// task is active.
type window struct{ start, end float64 }

// NoiseProfile parameterizes background activity.
type NoiseProfile struct {
	// CPUStallMeanGap is the mean time between background CPU bursts.
	CPUStallMeanGap float64
	// CPUStallMedian and CPUStallSigma give the lognormal burst length.
	CPUStallMedian float64
	CPUStallSigma  float64
	// CPUStallMax caps burst length (a runaway service would be killed).
	CPUStallMax float64
	// DiskBurstMeanGap is the mean time between background disk bursts.
	DiskBurstMeanGap float64
	// DiskBurstMedian and DiskBurstSigma give the lognormal burst length.
	DiskBurstMedian float64
	DiskBurstSigma  float64
	// DiskBurstMax caps disk burst length.
	DiskBurstMax float64
}

// DefaultNoise is the quiescent-Windows-XP-desktop profile used by the
// controlled study: a noticeable stall every half minute or so, almost
// always short.
func DefaultNoise() NoiseProfile {
	return NoiseProfile{
		CPUStallMeanGap:  22,
		CPUStallMedian:   0.040,
		CPUStallSigma:    0.9,
		CPUStallMax:      0.12,
		DiskBurstMeanGap: 45,
		DiskBurstMedian:  0.12,
		DiskBurstSigma:   0.8,
		DiskBurstMax:     1.0,
	}
}

// NoNoise disables background activity, for experiments that need a
// perfectly clean machine (e.g. exerciser fidelity verification).
func NoNoise() NoiseProfile { return NoiseProfile{} }

func newNoise(p NoiseProfile, rng *stats.Stream) *Noise {
	return &Noise{profile: p, rng: rng}
}

// reset reinitializes the noise source for a new run, reusing the window
// buffers. The noise stream is re-derived from the parent exactly as
// newNoise(p, parent.Fork()) would, so a reset machine generates the
// same windows a fresh one does.
func (n *Noise) reset(p NoiseProfile, parent *stats.Stream) {
	n.profile = p
	parent.ForkInto(n.rng)
	n.cpu = n.cpu[:0]
	n.disk = n.disk[:0]
	n.horizon = 0
}

// extend lazily generates noise windows out to time t.
func (n *Noise) extend(t float64) {
	if t <= n.horizon {
		return
	}
	target := t + 60 // generate ahead in chunks
	if n.profile.CPUStallMeanGap > 0 {
		n.cpu = extendWindows(n.cpu, n.horizon, target, n.rng,
			n.profile.CPUStallMeanGap, n.profile.CPUStallMedian, n.profile.CPUStallSigma, n.profile.CPUStallMax)
	}
	if n.profile.DiskBurstMeanGap > 0 {
		n.disk = extendWindows(n.disk, n.horizon, target, n.rng,
			n.profile.DiskBurstMeanGap, n.profile.DiskBurstMedian, n.profile.DiskBurstSigma, n.profile.DiskBurstMax)
	}
	n.horizon = target
}

func extendWindows(ws []window, from, to float64, rng *stats.Stream, gap, median, sigma, maxLen float64) []window {
	t := from
	if len(ws) > 0 && ws[len(ws)-1].end > t {
		t = ws[len(ws)-1].end
	}
	for {
		t += rng.Exp(gap)
		if t >= to {
			break
		}
		d := rng.LognormMedian(median, sigma)
		if d > maxLen {
			d = maxLen
		}
		ws = append(ws, window{start: t, end: t + d})
		t += d
	}
	return ws
}

// inWindows reports whether t falls inside any window.
func inWindows(ws []window, t float64) bool {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].end > t })
	return i < len(ws) && ws[i].start <= t
}

// CPUBusy returns 1 if a background CPU task is running at time t.
func (n *Noise) CPUBusy(t float64) float64 {
	n.extend(t)
	if inWindows(n.cpu, t) {
		return 1
	}
	return 0
}

// DiskBusy returns 1 if background disk I/O is in flight at time t.
func (n *Noise) DiskBusy(t float64) float64 {
	n.extend(t)
	if inWindows(n.disk, t) {
		return 1
	}
	return 0
}

// nextCPUChange returns the next time after t at which the background CPU
// activity toggles, or +infDuration if none before the horizon needed.
func (n *Noise) nextCPUChange(t float64) float64 {
	n.extend(t + 1)
	i := sort.Search(len(n.cpu), func(i int) bool { return n.cpu[i].end > t })
	if i >= len(n.cpu) {
		return t + 1 // no change within the generated horizon chunk
	}
	w := n.cpu[i]
	if w.start > t {
		return w.start
	}
	return w.end
}
