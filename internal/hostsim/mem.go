package hostsim

// Memory model. The paper's memory exerciser "keeps a pool of allocated
// pages equal to the size of physical memory ... and then touches the
// fraction corresponding to the contention level with a high frequency,
// making its working set size inflate to that fraction of the physical
// memory" (§2.2). Contention m therefore tries to take m·MemMB of
// physical memory away from everyone else.
//
// Replacement is frequency-based, as in a real LRU-approximating VM
// system. The foreground application's hot pages (UI, current document
// region, live game state) are touched every interaction — far more
// often than the exerciser can re-touch each page of a pool spanning
// most of physical memory — so hot pages win the replacement race and
// the exerciser's effective resident share is capped at what is left
// after the OS and the app's hot core. The app's cold pages (caches,
// far-away document regions, old web pages, out-of-view textures) lose
// first. This is why the paper found office applications immune ("once
// office applications like Word and Powerpoint form their working set,
// significant portions of the remaining physical memory can be borrowed
// with marginal impact") while IE and Quake, with their dynamic memory
// demands, fault visibly (§3.3.3).

// WorkingSet describes an application's memory footprint at an instant.
type WorkingSet struct {
	// TotalMB is the full resident footprint the app would like.
	TotalMB float64
	// HotMB is the subset touched on virtually every interaction.
	HotMB float64
}

// memOverflow returns how many MB of the app's cold pages are displaced
// at time t, given the exerciser's borrowed fraction.
func (m *Machine) memOverflow(t float64, ws WorkingSet) float64 {
	borrowed := m.contentionAt(memIdx, t)
	if borrowed < 0 {
		borrowed = 0
	}
	if borrowed > 1 {
		borrowed = 1
	}
	// Hot pages defend themselves: the exerciser's resident share is
	// capped at physical memory minus the OS base and the app's hot core.
	// The NoHotPageDefense ablation removes the cap.
	borrowedMB := borrowed * m.cfg.MemMB
	if !m.cfg.NoHotPageDefense {
		avail := m.cfg.MemMB - m.cfg.OSBaseMB - ws.HotMB
		if avail < 0 {
			avail = 0
		}
		if borrowedMB > avail {
			borrowedMB = avail
		}
	}
	overflow := m.cfg.OSBaseMB + ws.TotalMB + borrowedMB - m.cfg.MemMB
	if overflow < 0 {
		return 0
	}
	return overflow
}

// MemMiss returns the fractions of the app's cold and hot pages that are
// not resident at time t. Hot pages stay resident except in the
// pathological case where the OS base plus the hot core alone exceed
// physical memory.
func (m *Machine) MemMiss(t float64, ws WorkingSet) (coldMiss, hotMiss float64) {
	coldMB := ws.TotalMB - ws.HotMB
	if coldMB < 0 {
		coldMB = 0
	}
	overflow := m.memOverflow(t, ws)
	if coldMB > 0 {
		coldMiss = overflow / coldMB
		if coldMiss > 1 {
			coldMiss = 1
		}
	}
	// Overflow beyond the cold pages spills into the hot core. With the
	// hot-page defense on (the default), overflow never exceeds coldMB,
	// so this only fires under the NoHotPageDefense ablation.
	if spill := overflow - coldMB; spill > 0 && ws.HotMB > 0 {
		hotMiss = spill / ws.HotMB
	}
	// Hot-core pressure independent of the exerciser: a machine whose
	// base demand exceeds RAM thrashes with or without borrowing.
	if hotShort := m.cfg.OSBaseMB + ws.HotMB - m.cfg.MemMB; hotShort > 0 && ws.HotMB > 0 {
		hotMiss += hotShort / ws.HotMB
	}
	if hotMiss > 1 {
		hotMiss = 1
	}
	return coldMiss, hotMiss
}

// FaultCount samples how many of the given page touches fault, given a
// miss fraction.
func (m *Machine) FaultCount(touches int, missFrac float64) int {
	if touches <= 0 || missFrac <= 0 {
		return 0
	}
	if missFrac >= 1 {
		return touches
	}
	n := 0
	for i := 0; i < touches; i++ {
		if m.rng.Bool(missFrac) {
			n++
		}
	}
	return n
}

// FaultCost returns the wall-clock time to service nfaults page-ins
// starting at time t. Each fault is a small random disk read; under
// overflow the exerciser's own touch loop is faulting too (a paging
// storm), which inflates the effective cost — the steep onset of
// thrashing the paper is careful to avoid by capping memory contention
// at 1.0.
func (m *Machine) FaultCost(t float64, nfaults int, ws WorkingSet) float64 {
	if nfaults <= 0 {
		return 0
	}
	overflow := m.memOverflow(t, ws)
	storm := 0.0
	if overflow > 0 {
		// Fraction of the paging device consumed by everyone else's
		// faults; saturates below 1 so costs stay finite.
		storm = overflow / (overflow + 150)
		if storm > 0.8 {
			storm = 0.8
		}
	}
	perFault := m.cfg.DiskSeekMs/1000*m.rng.Range(0.7, 1.3) + m.cfg.PageKB/1024.0/m.cfg.DiskMBps
	// Faults also queue behind disk-exerciser requests.
	diskC := m.contentionAt(diskIdx, t)
	perFault += diskC * m.exerciserServiceTime()
	return float64(nfaults) * perFault / (1 - storm)
}
