package client

import (
	"reflect"
	"testing"
	"time"

	"uucs/internal/apps"
	"uucs/internal/chaos"
	"uucs/internal/core"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// startChaosServer serves a real server over the in-memory chaos
// network.
func startChaosServer(t *testing.T, nw *chaos.Network, nTestcases int) *server.Server {
	t.Helper()
	s := server.New(11)
	if nTestcases > 0 {
		tcs, err := testcase.Generate("inet", testcase.GeneratorConfig{
			Count: nTestcases, Rate: 1, Duration: 20,
			BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
		}, stats.NewStream(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddTestcases(tcs...); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s
}

// chaosClient builds a client wired to the chaos network through an
// injector, with fast virtual-clock retries.
func chaosClient(t *testing.T, nw *chaos.Network, in *chaos.Injector, seed uint64) (*Client, *chaos.Clock) {
	t.Helper()
	c := newClient(t, seed)
	c.Dialer = in.WrapDial(nw.Dial)
	c.Retry = Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 8}
	clock := chaos.NewClock()
	c.Sleep = clock.Sleep
	return c, clock
}

// TestClientRetriesThroughFaults scripts a failed dial at registration
// and a dropped upload ack: the client must converge to exactly the
// fault-free outcome — registered once, every run uploaded once.
func TestClientRetriesThroughFaults(t *testing.T) {
	nw := chaos.NewNetwork()
	srv := startChaosServer(t, nw, 30)
	// Op order: dial#1 fails (registration attempt 1). After that:
	// read#1 registration, read#2 sync-1 download (no upload — nothing
	// pending), read#3 sync-2 download, read#4 sync-2 upload ack — the
	// drop lands after the server applied the batch, so the retried
	// upload must be detected as a duplicate, not double-counted.
	in := chaos.NewInjector(1, chaos.Profile{}).Scripted(
		chaos.ScriptFault{Op: "dial", N: 1, Kind: chaos.KindDialFail},
		chaos.ScriptFault{Op: "read", N: 4, Kind: chaos.KindDrop},
	)
	c, clock := chaosClient(t, nw, in, 21)

	if err := c.Register("srv"); err != nil {
		t.Fatalf("register did not survive dial failure: %v", err)
	}
	if _, err := c.HotSync("srv"); err != nil {
		t.Fatal(err)
	}
	tc, err := c.ChooseTestcase()
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.New(testcase.Word)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRun(tc, app, testUser(t)); err != nil {
		t.Fatal(err)
	}
	st, err := c.HotSync("srv")
	if err != nil {
		t.Fatalf("sync did not survive ack loss: %v", err)
	}
	if st.UploadedRuns != 1 {
		t.Errorf("uploaded %d runs, want 1", st.UploadedRuns)
	}
	if got := srv.Results(); len(got) != 1 || got[0].TestcaseID != tc.ID {
		t.Errorf("server dataset after ack loss: %d runs", len(got))
	}
	if pending, _ := c.Store.PendingRuns(); len(pending) != 0 {
		t.Errorf("%d runs stuck pending", len(pending))
	}
	if batches, _ := c.Store.Outboxes(); len(batches) != 0 {
		t.Errorf("%d batches stuck in outbox", len(batches))
	}
	if archived, _ := c.Store.UploadedRuns(); len(archived) != 1 {
		t.Errorf("archive holds %d runs, want 1", len(archived))
	}
	want := []string{"dial#1 dialfail", "read#4 drop"}
	if !reflect.DeepEqual(in.Events(), want) {
		t.Errorf("events = %v, want %v", in.Events(), want)
	}
	if clock.Sleeps() != 2 {
		t.Errorf("backoff sleeps = %d, want 2 (one per injected fault)", clock.Sleeps())
	}
}

// TestClientRegistrationIdempotentAcrossLostResponse drops the
// registration response itself: the server has registered the client,
// the client never learned its id. The nonce-keyed retry must receive
// the same id, not mint a second identity.
func TestClientRegistrationIdempotentAcrossLostResponse(t *testing.T) {
	nw := chaos.NewNetwork()
	srv := startChaosServer(t, nw, 0)
	in := chaos.NewInjector(1, chaos.Profile{}).Scripted(
		chaos.ScriptFault{Op: "read", N: 1, Kind: chaos.KindDrop},
	)
	c, _ := chaosClient(t, nw, in, 22)
	if err := c.Register("srv"); err != nil {
		t.Fatal(err)
	}
	if srv.ClientCount() != 1 {
		t.Errorf("server registered %d clients, want 1", srv.ClientCount())
	}
	// A fresh client process over the same store (a crashed-and-restarted
	// host) also keeps its identity.
	c2, err := New(c.Store, testSnap(), core.NewEngine(), 22)
	if err != nil {
		t.Fatal(err)
	}
	c2.Dialer = nw.Dial
	if err := c2.Register("srv"); err != nil {
		t.Fatal(err)
	}
	if c2.ID() != c.ID() {
		t.Errorf("restarted client changed identity: %s vs %s", c2.ID(), c.ID())
	}
	if srv.ClientCount() != 1 {
		t.Errorf("restart created a second registration: %d clients", srv.ClientCount())
	}
}

// TestClientPermanentErrorsAreNotRetried: an in-band server rejection
// cannot be fixed by reconnecting, so the client must fail fast without
// burning its retry budget.
func TestClientPermanentErrorsAreNotRetried(t *testing.T) {
	nw := chaos.NewNetwork()
	startChaosServer(t, nw, 5)
	c := newClient(t, 23)
	c.Dialer = nw.Dial
	c.Retry = Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 8}
	clock := chaos.NewClock()
	c.Sleep = clock.Sleep
	// Forge an identity the server does not know: sync is rejected
	// in-band.
	if err := c.Store.SetClientID("uucs-ghost"); err != nil {
		t.Fatal(err)
	}
	c.id = "uucs-ghost"
	if _, err := c.HotSync("srv"); err == nil {
		t.Fatal("sync with unknown id succeeded")
	}
	if clock.Sleeps() != 0 {
		t.Errorf("permanent error was retried %d times", clock.Sleeps())
	}
}

// TestClientRetriesExhaustOnDeadServer: every attempt fails, the budget
// runs out, the error surfaces, and the pending results survive — all
// waits on the virtual clock.
func TestClientRetriesExhaustOnDeadServer(t *testing.T) {
	nw := chaos.NewNetwork() // nothing listens
	c := newClient(t, 24)
	c.Dialer = nw.Dial
	c.Retry = Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Attempts: 5}
	clock := chaos.NewClock()
	c.Sleep = clock.Sleep
	start := time.Now()
	if err := c.Register("srv"); err == nil {
		t.Fatal("register against dead network succeeded")
	}
	if real := time.Since(start); real > time.Second {
		t.Errorf("retries took %v of real time under a virtual clock", real)
	}
	if clock.Sleeps() != 4 {
		t.Errorf("sleeps = %d, want attempts-1 = 4", clock.Sleeps())
	}
	if clock.Now() == 0 {
		t.Error("virtual clock recorded no waiting")
	}
}

// TestBackoffDelaysCappedAndJittered checks the backoff envelope:
// attempt n waits ~Base<<(n-1), jittered in [0.5x, 1.5x), never above
// Max.
func TestBackoffDelaysCappedAndJittered(t *testing.T) {
	c := newClient(t, 25)
	c.Retry = Backoff{Base: 100 * time.Millisecond, Max: time.Second, Attempts: 10}
	for n := 1; n <= 10; n++ {
		d := c.backoffDelay(n)
		ideal := c.Retry.Base << (n - 1)
		if ideal > c.Retry.Max {
			ideal = c.Retry.Max
		}
		lo := ideal / 2
		if d < lo || d > c.Retry.Max+c.Retry.Max/2 {
			t.Errorf("attempt %d: delay %v outside [%v, 1.5*Max]", n, d, lo)
		}
		if d > c.Retry.Max {
			t.Errorf("attempt %d: delay %v exceeds cap %v", n, d, c.Retry.Max)
		}
	}
}

// TestRetryJitterDoesNotPerturbMainStream: the jitter rng is separate
// from the client's main rng, so a client that suffered retries makes
// the same testcase choices as one that did not — the property that
// keeps a faulty fleet's dataset bit-identical to a fault-free one.
func TestRetryJitterDoesNotPerturbMainStream(t *testing.T) {
	suite, err := testcase.ControlledSuite(testcase.Word)
	if err != nil {
		t.Fatal(err)
	}
	choices := func(withBackoffDraws bool) []string {
		c := newClient(t, 26)
		if err := c.Store.SaveTestcases(suite); err != nil {
			t.Fatal(err)
		}
		if withBackoffDraws {
			for i := 1; i <= 7; i++ {
				c.backoffDelay(i) // consume jitter draws
			}
		}
		var ids []string
		for i := 0; i < 10; i++ {
			tc, err := c.ChooseTestcase()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, tc.ID)
		}
		return ids
	}
	smooth, bumpy := choices(false), choices(true)
	if !reflect.DeepEqual(smooth, bumpy) {
		t.Errorf("retries perturbed testcase choices:\n%v\n%v", smooth, bumpy)
	}
}
