package client

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"time"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Backoff parameterizes the client's capped exponential backoff with
// jitter. Attempt n (n >= 1) waits roughly Base<<(n-1), jittered
// uniformly in [0.5x, 1.5x) and capped at Max, before retrying.
type Backoff struct {
	// Base is the first retry delay.
	Base time.Duration
	// Max caps the delay growth.
	Max time.Duration
	// Attempts is the total number of tries (1 = no retries).
	Attempts int
}

// DefaultBackoff is the client's stock retry policy.
func DefaultBackoff() Backoff {
	return Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Attempts: 3}
}

// Client is a UUCS client instance. It is not safe for concurrent use;
// a host runs one client.
//
// All network operations are fault-tolerant: they run under the Retry
// policy with capped, jittered exponential backoff, reconnecting on
// every attempt. Registration is idempotent (the client presents a
// persistent nonce, so a lost response cannot create a second
// identity), downloads are idempotent (a retried sync with the same
// have-list receives the same sample), and uploads are idempotent
// (pending results are sealed into journaled, sequence-numbered outbox
// batches that the server deduplicates). A client killed at any point
// resumes from its store without losing or double-reporting a run.
type Client struct {
	// Store is the client's permanent storage.
	Store *Store
	// Snapshot describes this machine, sent at registration.
	Snapshot protocol.Snapshot
	// Engine executes testcases.
	Engine *core.Engine
	// SyncBatch is the base number of testcases requested per hot sync;
	// the sample grows by this much each time, implementing the paper's
	// "growing random sample of testcases".
	SyncBatch int
	// Dialer opens the transport connection; nil means TCP. Chaos tests
	// inject simulated, fault-carrying networks here.
	Dialer func(addr string) (net.Conn, error)
	// Timeout bounds each protocol message send/receive; zero disables
	// deadlines.
	Timeout time.Duration
	// Retry is the reconnect policy for every network operation.
	Retry Backoff
	// Sleep waits between retries; nil means time.Sleep. Chaos tests
	// inject a virtual clock here.
	Sleep func(d time.Duration)
	// Scratch, when non-nil, is caller-owned reusable per-run state for
	// testcase execution. Drivers that run many clients per worker (the
	// Internet study) share one per worker; runs are bit-identical with
	// or without it.
	Scratch *core.Scratch
	// ProtocolVersion selects the wire framing: 0 (the default)
	// negotiates — the registration request is sent in the v2 framing,
	// asks for v3, and adopts whatever the server grants — while
	// protocol.V2 or protocol.V3 pin the framing outright (V3 against a
	// server that cannot speak it fails; it is the testing override, not
	// the rollout path).
	ProtocolVersion int

	id    string
	nonce string
	// negotiated is the wire version the server granted at registration
	// (0, meaning v2, until a registration round-trip completes).
	negotiated int
	syncs      int
	rng        *stats.Stream
	// retryRng drives backoff jitter only. It is deliberately separate
	// from rng: retries must not perturb testcase choice or arrival
	// draws, or a faulty run would diverge from a fault-free one.
	retryRng *stats.Stream
}

// New builds a client over the given store. seed fixes the local random
// choices (testcase selection, Poisson arrival times) and — mixed with
// the machine snapshot — the registration nonce on first use of a
// store. Real (non-simulated) deployments should pre-seed the store
// with RandomNonce instead.
func New(store *Store, snap protocol.Snapshot, engine *core.Engine, seed uint64) (*Client, error) {
	if store == nil {
		return nil, fmt.Errorf("client: nil store")
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		engine = core.NewEngine()
	}
	id, err := store.ClientID()
	if err != nil {
		return nil, err
	}
	nonce, err := store.Nonce()
	if err != nil {
		return nil, err
	}
	if nonce == "" {
		// Mix the machine snapshot into the derivation: two hosts that
		// happen to share a seed (e.g. two volunteers on the default
		// CLI seed) must still present distinct nonces, or the server's
		// nonce dedup would merge them into one identity and drop the
		// second host's uploads as duplicates.
		ns := stats.NewStream(seed ^ 0x6e6f6e6365 ^ snapshotSeed(snap)) // "nonce"
		nonce = fmt.Sprintf("n-%016x%016x", ns.Uint64(), ns.Uint64())
		if err := store.SetNonce(nonce); err != nil {
			return nil, err
		}
	}
	return &Client{
		Store:     store,
		Snapshot:  snap,
		Engine:    engine,
		SyncBatch: 16,
		Retry:     DefaultBackoff(),
		id:        id,
		nonce:     nonce,
		rng:       stats.NewStream(seed),
		retryRng:  stats.NewStream(seed ^ 0x7265747279), // "retry"
	}, nil
}

// snapshotSeed folds a machine snapshot into a 64-bit value (FNV-1a
// over the identifying fields), used to decorrelate nonce derivation
// across hosts that share a seed.
func snapshotSeed(snap protocol.Snapshot) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
	}
	for _, s := range []string{snap.Hostname, snap.OS} {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(uint64(len(s)) + 1)
	}
	mix(math.Float64bits(snap.CPUGHz))
	mix(math.Float64bits(snap.MemMB))
	mix(math.Float64bits(snap.DiskGB))
	return h
}

// RandomNonce returns a registration nonce drawn from the operating
// system's entropy source. Real deployments should seed their store
// with it (see cmd/uucs-client): unlike the deterministic derivation in
// New — which only has to be unique within a simulated fleet — it
// cannot collide across real volunteer hosts that share a -seed.
func RandomNonce() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("client: nonce entropy: %w", err)
	}
	return fmt.Sprintf("n-%x", b), nil
}

// ID returns the registration id, or "" before registration.
func (c *Client) ID() string { return c.id }

// dial opens a protocol connection to the server.
func (c *Client) dial(addr string) (*protocol.Conn, error) {
	dialer := c.Dialer
	if dialer == nil {
		dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	nc, err := dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	conn := protocol.NewConn(nc)
	conn.SetTimeout(c.Timeout)
	conn.SetVersion(c.WireVersion())
	return conn, nil
}

// WireVersion is the framing this client currently speaks: a pinned
// ProtocolVersion wins; otherwise whatever registration negotiated
// (v2 until then, which is safe against any server).
func (c *Client) WireVersion() int {
	switch c.ProtocolVersion {
	case protocol.V3:
		return protocol.V3
	case protocol.V2:
		return protocol.V2
	}
	if c.negotiated >= protocol.V3 {
		return protocol.V3
	}
	return protocol.V2
}

// permanentError marks a failure that a reconnect cannot fix (an
// in-band server rejection, a local store failure); withRetry stops
// immediately instead of burning attempts.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// permanent wraps err as non-retryable.
func permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// backoffDelay returns the jittered delay before retry attempt n >= 1.
func (c *Client) backoffDelay(n int) time.Duration {
	d := c.Retry.Base
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 1; i < n && d < c.Retry.Max; i++ {
		d *= 2
	}
	if c.Retry.Max > 0 && d > c.Retry.Max {
		d = c.Retry.Max
	}
	// Jitter uniformly in [0.5d, 1.5d) to decorrelate a fleet of
	// clients retrying against a just-restarted server.
	j := time.Duration((0.5 + c.retryRng.Float64()) * float64(d))
	if c.Retry.Max > 0 && j > c.Retry.Max {
		j = c.Retry.Max
	}
	return j
}

// withRetry runs fn over a fresh connection, reconnecting with backoff
// on transient failures until the retry budget is spent.
func (c *Client) withRetry(addr string, fn func(conn *protocol.Conn) error) error {
	attempts := c.Retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			sleep(c.backoffDelay(a - 1))
		}
		conn, err := c.dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		err = fn(conn)
		conn.Close()
		if err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
	}
	return lastErr
}

// Register performs initial registration: the client presents its
// snapshot plus a persistent nonce and stores the unique identifier
// the server assigns. It is idempotent both locally (an
// already-registered client keeps its id) and on the wire (a retried
// registration with the same nonce receives the same id).
//
// A client restarted with a stored identity still performs the wire
// round-trip once per process life: registration is where the protocol
// version is negotiated, and skipping it would leave every restarted
// client conservatively speaking v2 forever. The request is idempotent
// (same nonce, same id back), so the re-probe costs one message and
// upgrades the client to the newest framing the server grants.
func (c *Client) Register(addr string) error {
	if c.id != "" && (c.negotiated != 0 || c.ProtocolVersion != 0) {
		// Registered and already negotiated this life (or pinned, which
		// makes negotiation moot): nothing to learn from the server.
		return nil
	}
	ask := protocol.Version
	if c.ProtocolVersion == protocol.V2 {
		ask = protocol.V2
	}
	var assigned string
	var granted int
	err := c.withRetry(addr, func(conn *protocol.Conn) error {
		if err := conn.Send(protocol.Message{
			Type: protocol.TypeRegister, Ver: ask,
			Snapshot: &c.Snapshot, Nonce: c.nonce,
		}); err != nil {
			return err
		}
		resp, err := conn.Recv()
		if err != nil {
			return err
		}
		if err := protocol.AsError(resp); err != nil {
			return permanent(err)
		}
		if resp.Type != protocol.TypeRegistered || resp.ClientID == "" {
			return permanent(fmt.Errorf("client: unexpected registration response %+v", resp))
		}
		assigned = resp.ClientID
		granted = resp.Ver
		return nil
	})
	if err != nil {
		return err
	}
	if c.id == "" {
		if err := c.Store.SetClientID(assigned); err != nil {
			return err
		}
		c.id = assigned
	}
	// On a stored-identity re-probe the stored id stays authoritative:
	// the nonce makes the server answer with the same id, and the
	// client's journaled upload history is keyed by it. Either way,
	// adopt the granted framing for every subsequent connection. A
	// server predating negotiation echoes no version; treat that as v2.
	if granted < protocol.V2 {
		granted = protocol.V2
	}
	c.negotiated = granted
	return nil
}

// SyncStats reports what one hot sync accomplished.
type SyncStats struct {
	// NewTestcases is how many previously unseen testcases arrived.
	NewTestcases int
	// UploadedRuns is how many pending run records were accepted
	// (including batches a previous, crashed sync had already uploaded
	// without learning of the ack).
	UploadedRuns int
}

// HotSync performs one hot sync (paper §2): download new testcases —
// a growing random sample — and upload new results. The client must be
// registered. The two phases are retried independently so a fault in
// one cannot re-execute the other: the download request is a pure
// function of the have-list, and uploads ride on sealed,
// sequence-numbered batches the server deduplicates, so a HotSync
// interrupted at any point and retried converges to exactly the state
// a fault-free sync would have produced.
func (c *Client) HotSync(addr string) (SyncStats, error) {
	var st SyncStats
	if c.id == "" {
		return st, fmt.Errorf("client: not registered")
	}

	// Download: ask for a growing sample. The testcase store is only
	// updated after the full payload arrives intact, so a retried
	// request carries the identical have-list and receives the
	// identical sample.
	existing, err := c.Store.Testcases()
	if err != nil {
		return st, err
	}
	have := make([]string, 0, len(existing))
	for _, tc := range existing {
		have = append(have, tc.ID)
	}
	c.syncs++
	want := c.SyncBatch * c.syncs
	var fetched []*testcase.Testcase
	err = c.withRetry(addr, func(conn *protocol.Conn) error {
		if err := conn.Send(protocol.Message{
			Type: protocol.TypeSync, ClientID: c.id, Have: have, Want: want,
		}); err != nil {
			return err
		}
		resp, err := conn.Recv()
		if err != nil {
			return err
		}
		if err := protocol.AsError(resp); err != nil {
			return permanent(err)
		}
		if resp.Type != protocol.TypeTestcases {
			return fmt.Errorf("client: unexpected sync response %q", resp.Type)
		}
		fetched = nil
		if resp.Payload != "" {
			tcs, err := testcase.DecodeAll(strings.NewReader(resp.Payload))
			if err != nil {
				return fmt.Errorf("client: bad testcase payload: %w", err)
			}
			fetched = tcs
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	if len(fetched) > 0 {
		added, err := c.Store.AddTestcases(fetched)
		if err != nil {
			return st, err
		}
		st.NewTestcases = added
	}

	// Upload: ship every sealed outbox batch (oldest first — earlier
	// batches may be survivors of a crashed previous sync), then seal
	// and ship the current pending runs.
	uploaded, err := c.uploadOutboxes(addr)
	st.UploadedRuns = uploaded
	return st, err
}

// uploadOutboxes seals pending runs into a new outbox batch and pushes
// every unacked batch to the server in sequence order. Each batch is
// retried until acked; the server drops duplicates, so a batch whose
// ack was lost is simply confirmed on the next attempt.
func (c *Client) uploadOutboxes(addr string) (int, error) {
	if _, err := c.Store.SealPending(); err != nil {
		return 0, err
	}
	batches, err := c.Store.Outboxes()
	if err != nil {
		return 0, err
	}
	uploaded := 0
	// One encode buffer for the whole upload loop: batch payloads reuse
	// its capacity, so only the final string conversion allocates.
	var b bytes.Buffer
	for _, batch := range batches {
		b.Reset()
		if err := core.EncodeRuns(&b, batch.Runs, false); err != nil {
			return uploaded, err
		}
		seq := batch.Seq
		err := c.withRetry(addr, func(conn *protocol.Conn) error {
			if err := conn.Send(protocol.Message{
				Type: protocol.TypeResults, ClientID: c.id, Payload: b.String(), Seq: seq,
			}); err != nil {
				return err
			}
			ack, err := conn.Recv()
			if err != nil {
				return err
			}
			if err := protocol.AsError(ack); err != nil {
				return permanent(err)
			}
			if ack.Type != protocol.TypeAck {
				return fmt.Errorf("client: unexpected upload response %q", ack.Type)
			}
			if ack.Seq != seq {
				return fmt.Errorf("client: ack for batch %d, want %d", ack.Seq, seq)
			}
			return nil
		})
		if err != nil {
			return uploaded, err
		}
		if err := c.Store.MarkBatchUploaded(seq); err != nil {
			return uploaded, err
		}
		uploaded += len(batch.Runs)
	}
	return uploaded, nil
}

// ChooseTestcase picks a testcase uniformly at random from the local
// store — the "local random choice of testcases" of §2.
func (c *Client) ChooseTestcase() (*testcase.Testcase, error) {
	tcs, err := c.Store.Testcases()
	if err != nil {
		return nil, err
	}
	if len(tcs) == 0 {
		return nil, fmt.Errorf("client: testcase store is empty (hot sync first)")
	}
	return tcs[c.rng.IntN(len(tcs))], nil
}

// NextArrival returns the wait before the next testcase execution, drawn
// from an exponential distribution so executions form a Poisson process
// (§2: "Poisson arrivals of testcase execution").
func (c *Client) NextArrival(meanGap float64) float64 {
	return c.rng.Exp(meanGap)
}

// ExecuteRun runs one testcase against the given foreground app and
// user model and appends the result to the pending store.
func (c *Client) ExecuteRun(tc *testcase.Testcase, app apps.App, user *comfort.User) (*core.Run, error) {
	var run *core.Run
	var err error
	if c.Scratch != nil {
		run, err = c.Engine.ExecuteScratch(c.Scratch, tc, app, user, c.rng.Uint64())
	} else {
		run, err = c.Engine.Execute(tc, app, user, c.rng.Uint64())
	}
	if err != nil {
		return nil, err
	}
	if err := c.Store.AppendRun(run); err != nil {
		return nil, err
	}
	return run, nil
}

// RunScript executes testcases by ID in the given order — the paper's
// deterministic mode, where the client executes "a predefined set of
// commands from a local file" (used by the controlled study). Unknown
// IDs are an error; results land in the pending store.
func (c *Client) RunScript(ids []string, app apps.App, user *comfort.User) ([]*core.Run, error) {
	tcs, err := c.Store.Testcases()
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*testcase.Testcase, len(tcs))
	for _, tc := range tcs {
		byID[tc.ID] = tc
	}
	out := make([]*core.Run, 0, len(ids))
	for _, id := range ids {
		tc, ok := byID[id]
		if !ok {
			return out, fmt.Errorf("client: script references unknown testcase %q", id)
		}
		run, err := c.ExecuteRun(tc, app, user)
		if err != nil {
			return out, err
		}
		out = append(out, run)
	}
	return out, nil
}

// ParseScript reads a deterministic-mode command file: one testcase ID
// per line, blank lines and '#' comments ignored.
func ParseScript(text string) []string {
	var ids []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ids = append(ids, line)
	}
	return ids
}
