package client

import (
	"fmt"
	"net"
	"strings"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Client is a UUCS client instance. It is not safe for concurrent use;
// a host runs one client.
type Client struct {
	// Store is the client's permanent storage.
	Store *Store
	// Snapshot describes this machine, sent at registration.
	Snapshot protocol.Snapshot
	// Engine executes testcases.
	Engine *core.Engine
	// SyncBatch is the base number of testcases requested per hot sync;
	// the sample grows by this much each time, implementing the paper's
	// "growing random sample of testcases".
	SyncBatch int

	id    string
	syncs int
	rng   *stats.Stream
}

// New builds a client over the given store. seed fixes the local random
// choices (testcase selection, Poisson arrival times).
func New(store *Store, snap protocol.Snapshot, engine *core.Engine, seed uint64) (*Client, error) {
	if store == nil {
		return nil, fmt.Errorf("client: nil store")
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		engine = core.NewEngine()
	}
	id, err := store.ClientID()
	if err != nil {
		return nil, err
	}
	return &Client{
		Store:     store,
		Snapshot:  snap,
		Engine:    engine,
		SyncBatch: 16,
		id:        id,
		rng:       stats.NewStream(seed),
	}, nil
}

// ID returns the registration id, or "" before registration.
func (c *Client) ID() string { return c.id }

// dial opens a protocol connection to the server.
func dial(addr string) (*protocol.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return protocol.NewConn(nc), nil
}

// Register performs initial registration: the client presents its
// snapshot and stores the unique identifier the server assigns. It is
// idempotent — an already-registered client keeps its id.
func (c *Client) Register(addr string) error {
	if c.id != "" {
		return nil
	}
	conn, err := dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(protocol.Message{
		Type: protocol.TypeRegister, Ver: protocol.Version, Snapshot: &c.Snapshot,
	}); err != nil {
		return err
	}
	resp, err := conn.Recv()
	if err != nil {
		return err
	}
	if err := protocol.AsError(resp); err != nil {
		return err
	}
	if resp.Type != protocol.TypeRegistered || resp.ClientID == "" {
		return fmt.Errorf("client: unexpected registration response %+v", resp)
	}
	if err := c.Store.SetClientID(resp.ClientID); err != nil {
		return err
	}
	c.id = resp.ClientID
	return nil
}

// SyncStats reports what one hot sync accomplished.
type SyncStats struct {
	// NewTestcases is how many previously unseen testcases arrived.
	NewTestcases int
	// UploadedRuns is how many pending run records were accepted.
	UploadedRuns int
}

// HotSync performs one hot sync (paper §2): download new testcases —
// a growing random sample — and upload new results. The client must be
// registered.
func (c *Client) HotSync(addr string) (SyncStats, error) {
	var st SyncStats
	if c.id == "" {
		return st, fmt.Errorf("client: not registered")
	}
	conn, err := dial(addr)
	if err != nil {
		return st, err
	}
	defer conn.Close()

	// Download: ask for a growing sample.
	existing, err := c.Store.Testcases()
	if err != nil {
		return st, err
	}
	have := make([]string, 0, len(existing))
	for _, tc := range existing {
		have = append(have, tc.ID)
	}
	c.syncs++
	want := c.SyncBatch * c.syncs
	if err := conn.Send(protocol.Message{
		Type: protocol.TypeSync, ClientID: c.id, Have: have, Want: want,
	}); err != nil {
		return st, err
	}
	resp, err := conn.Recv()
	if err != nil {
		return st, err
	}
	if err := protocol.AsError(resp); err != nil {
		return st, err
	}
	if resp.Type != protocol.TypeTestcases {
		return st, fmt.Errorf("client: unexpected sync response %q", resp.Type)
	}
	if resp.Payload != "" {
		tcs, err := testcase.DecodeAll(strings.NewReader(resp.Payload))
		if err != nil {
			return st, fmt.Errorf("client: bad testcase payload: %w", err)
		}
		added, err := c.Store.AddTestcases(tcs)
		if err != nil {
			return st, err
		}
		st.NewTestcases = added
	}

	// Upload pending results.
	pending, err := c.Store.PendingRuns()
	if err != nil {
		return st, err
	}
	if len(pending) > 0 {
		var b strings.Builder
		if err := core.EncodeRuns(&b, pending, false); err != nil {
			return st, err
		}
		if err := conn.Send(protocol.Message{
			Type: protocol.TypeResults, ClientID: c.id, Payload: b.String(),
		}); err != nil {
			return st, err
		}
		ack, err := conn.Recv()
		if err != nil {
			return st, err
		}
		if err := protocol.AsError(ack); err != nil {
			return st, err
		}
		if ack.Type != protocol.TypeAck {
			return st, fmt.Errorf("client: unexpected upload response %q", ack.Type)
		}
		st.UploadedRuns = ack.Count
		if err := c.Store.MarkUploaded(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// ChooseTestcase picks a testcase uniformly at random from the local
// store — the "local random choice of testcases" of §2.
func (c *Client) ChooseTestcase() (*testcase.Testcase, error) {
	tcs, err := c.Store.Testcases()
	if err != nil {
		return nil, err
	}
	if len(tcs) == 0 {
		return nil, fmt.Errorf("client: testcase store is empty (hot sync first)")
	}
	return tcs[c.rng.IntN(len(tcs))], nil
}

// NextArrival returns the wait before the next testcase execution, drawn
// from an exponential distribution so executions form a Poisson process
// (§2: "Poisson arrivals of testcase execution").
func (c *Client) NextArrival(meanGap float64) float64 {
	return c.rng.Exp(meanGap)
}

// ExecuteRun runs one testcase against the given foreground app and
// user model and appends the result to the pending store.
func (c *Client) ExecuteRun(tc *testcase.Testcase, app apps.App, user *comfort.User) (*core.Run, error) {
	run, err := c.Engine.Execute(tc, app, user, c.rng.Uint64())
	if err != nil {
		return nil, err
	}
	if err := c.Store.AppendRun(run); err != nil {
		return nil, err
	}
	return run, nil
}

// RunScript executes testcases by ID in the given order — the paper's
// deterministic mode, where the client executes "a predefined set of
// commands from a local file" (used by the controlled study). Unknown
// IDs are an error; results land in the pending store.
func (c *Client) RunScript(ids []string, app apps.App, user *comfort.User) ([]*core.Run, error) {
	tcs, err := c.Store.Testcases()
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*testcase.Testcase, len(tcs))
	for _, tc := range tcs {
		byID[tc.ID] = tc
	}
	out := make([]*core.Run, 0, len(ids))
	for _, id := range ids {
		tc, ok := byID[id]
		if !ok {
			return out, fmt.Errorf("client: script references unknown testcase %q", id)
		}
		run, err := c.ExecuteRun(tc, app, user)
		if err != nil {
			return out, err
		}
		out = append(out, run)
	}
	return out, nil
}

// ParseScript reads a deterministic-mode command file: one testcase ID
// per line, blank lines and '#' comments ignored.
func ParseScript(text string) []string {
	var ids []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ids = append(ids, line)
	}
	return ids
}
