// Package client implements the UUCS client (paper Figure 5, minus the
// Windows GUI): local text-file stores for testcases and results that
// let the client operate disconnected from the server, registration and
// hot sync against a server, randomized testcase scheduling with Poisson
// arrivals for the Internet-wide study, and a deterministic script mode
// for controlled experiments.
package client

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"uucs/internal/core"
	"uucs/internal/testcase"
)

// Store is the client's permanent storage: plain text files in one
// directory, mirroring the paper's design ("Both are Windows
// applications that store testcases and results on permanent storage in
// text files").
//
// The store is the client's crash recovery substrate. Completed runs
// accumulate in the pending file; at upload time they are sealed into
// an outbox batch file named by a persistent sequence number, and a
// batch file is only removed once the server acknowledged that exact
// sequence number. A client killed between any two steps resumes
// cleanly: leftover temp files are ignored, a torn trailing record in
// the pending file (crash mid-append) is salvaged away, and surviving
// outbox batches are re-sent under their original sequence numbers so
// the server can discard the ones it already counted.
type Store struct {
	dir string
}

// Store file names.
const (
	testcasesFile = "testcases.txt"
	pendingFile   = "results-pending.txt"
	archiveFile   = "results-uploaded.txt"
	idFile        = "clientid.txt"
	nonceFile     = "nonce.txt"
	seqFile       = "seq.txt"
	// outboxPrefix names sealed upload batches: outbox-<seq>.txt.
	outboxPrefix = "outbox-"
)

// OpenStore opens (creating if needed) a client store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("client: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("client: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// readTrimmed returns the trimmed contents of a small state file, or ""
// when it does not exist.
func (s *Store) readTrimmed(name string) (string, error) {
	b, err := os.ReadFile(s.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// ClientID returns the stored registration id, or "" when the client has
// never registered.
func (s *Store) ClientID() (string, error) {
	return s.readTrimmed(idFile)
}

// SetClientID persists the registration id.
func (s *Store) SetClientID(id string) error {
	if id == "" {
		return fmt.Errorf("client: refusing to store empty client id")
	}
	return os.WriteFile(s.path(idFile), []byte(id+"\n"), 0o644)
}

// Nonce returns the persistent registration nonce, or "" when none has
// been chosen yet.
func (s *Store) Nonce() (string, error) {
	return s.readTrimmed(nonceFile)
}

// SetNonce persists the registration nonce.
func (s *Store) SetNonce(nonce string) error {
	if nonce == "" {
		return fmt.Errorf("client: refusing to store empty nonce")
	}
	return os.WriteFile(s.path(nonceFile), []byte(nonce+"\n"), 0o644)
}

// NextSeq returns the sequence number the next sealed batch will use.
func (s *Store) NextSeq() (uint64, error) {
	text, err := s.readTrimmed(seqFile)
	if err != nil {
		return 0, err
	}
	if text == "" {
		return 1, nil
	}
	n, err := strconv.ParseUint(text, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("client: corrupt sequence file %q", text)
	}
	return n, nil
}

func (s *Store) setNextSeq(n uint64) error {
	return s.writeAtomically(seqFile, func(f *os.File) error {
		_, err := fmt.Fprintf(f, "%d\n", n)
		return err
	})
}

// Testcases loads the local testcase store.
func (s *Store) Testcases() ([]*testcase.Testcase, error) {
	f, err := os.Open(s.path(testcasesFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return testcase.DecodeAll(f)
}

// SaveTestcases replaces the local testcase store.
func (s *Store) SaveTestcases(tcs []*testcase.Testcase) error {
	testcase.SortByID(tcs)
	return s.writeAtomically(testcasesFile, func(f *os.File) error {
		return testcase.EncodeAll(f, tcs)
	})
}

// AddTestcases merges new testcases into the store, replacing duplicates
// by ID.
func (s *Store) AddTestcases(tcs []*testcase.Testcase) (added int, err error) {
	existing, err := s.Testcases()
	if err != nil {
		return 0, err
	}
	byID := make(map[string]*testcase.Testcase, len(existing))
	for _, tc := range existing {
		byID[tc.ID] = tc
	}
	for _, tc := range tcs {
		if _, ok := byID[tc.ID]; !ok {
			added++
		}
		byID[tc.ID] = tc
	}
	merged := make([]*testcase.Testcase, 0, len(byID))
	for _, tc := range byID {
		merged = append(merged, tc)
	}
	return added, s.SaveTestcases(merged)
}

// AppendRun records a completed run in the pending store; it will be
// uploaded at the next hot sync.
func (s *Store) AppendRun(run *core.Run) error {
	f, err := os.OpenFile(s.path(pendingFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return core.EncodeRuns(f, []*core.Run{run}, true)
}

// runRecordEnd terminates each text-encoded run record; a pending file
// that does not end with it was torn by a crash mid-append.
const runRecordEnd = "endrun\n"

// PendingRuns loads the runs not yet sealed for upload. A torn trailing
// record — the signature of a crash during AppendRun — is salvaged
// away: the valid prefix is kept (and written back, so the file is
// appendable again) and the partial record is dropped.
func (s *Store) PendingRuns() ([]*core.Run, error) {
	data, err := os.ReadFile(s.path(pendingFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	runs, err := core.DecodeRuns(strings.NewReader(string(data)))
	if err == nil {
		return runs, nil
	}
	// Try the longest prefix ending at a record boundary.
	cut := strings.LastIndex(string(data), runRecordEnd)
	if cut < 0 {
		// No complete record at all: the whole file is one torn
		// record; drop it.
		if werr := s.writeAtomically(pendingFile, func(f *os.File) error { return nil }); werr != nil {
			return nil, werr
		}
		return nil, nil
	}
	prefix := string(data)[:cut+len(runRecordEnd)]
	runs, err2 := core.DecodeRuns(strings.NewReader(prefix))
	if err2 != nil {
		return nil, err // corruption inside the body, not a torn tail
	}
	if werr := s.writeAtomically(pendingFile, func(f *os.File) error {
		_, err := f.WriteString(prefix)
		return err
	}); werr != nil {
		return nil, werr
	}
	return runs, nil
}

// OutboxBatch is one sealed, not-yet-acknowledged upload batch.
type OutboxBatch struct {
	// Seq is the batch's persistent sequence number.
	Seq uint64
	// Runs are the batch's run records.
	Runs []*core.Run
}

func outboxName(seq uint64) string {
	return fmt.Sprintf("%s%08d.txt", outboxPrefix, seq)
}

// SealPending moves the pending runs into a new outbox batch under the
// next sequence number and returns that number (0 when there was
// nothing pending). The sequence counter is advanced before the batch
// file appears, so a crash in between wastes a number (the server
// accepts gaps) but can never reuse one.
func (s *Store) SealPending() (uint64, error) {
	runs, err := s.PendingRuns() // salvages a torn tail first
	if err != nil {
		return 0, err
	}
	if len(runs) == 0 {
		return 0, nil
	}
	seq, err := s.NextSeq()
	if err != nil {
		return 0, err
	}
	if err := s.setNextSeq(seq + 1); err != nil {
		return 0, err
	}
	if err := os.Rename(s.path(pendingFile), s.path(outboxName(seq))); err != nil {
		return 0, err
	}
	return seq, nil
}

// Outboxes returns every sealed, unacknowledged batch in sequence
// order.
func (s *Store) Outboxes() ([]OutboxBatch, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []OutboxBatch
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, outboxPrefix) || !strings.HasSuffix(name, ".txt") {
			continue
		}
		numText := strings.TrimSuffix(strings.TrimPrefix(name, outboxPrefix), ".txt")
		seq, err := strconv.ParseUint(numText, 10, 64)
		if err != nil {
			continue // stray file, not ours
		}
		f, err := os.Open(s.path(name))
		if err != nil {
			return nil, err
		}
		runs, err := core.DecodeRuns(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("client: outbox %s: %w", name, err)
		}
		out = append(out, OutboxBatch{Seq: seq, Runs: runs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// MarkBatchUploaded archives an acknowledged outbox batch and removes
// it. Unknown sequence numbers are a no-op (the batch was already
// archived by a previous attempt).
func (s *Store) MarkBatchUploaded(seq uint64) error {
	data, err := os.ReadFile(s.path(outboxName(seq)))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := s.appendArchive(data); err != nil {
		return err
	}
	return os.Remove(s.path(outboxName(seq)))
}

// MarkUploaded moves the pending runs straight into the uploaded
// archive, bypassing the outbox. It exists for unsequenced (legacy)
// uploads; the fault-tolerant path is SealPending/MarkBatchUploaded.
func (s *Store) MarkUploaded() error {
	pending, err := os.ReadFile(s.path(pendingFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := s.appendArchive(pending); err != nil {
		return err
	}
	return os.Remove(s.path(pendingFile))
}

func (s *Store) appendArchive(data []byte) error {
	archive, err := os.OpenFile(s.path(archiveFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := archive.Write(data); err != nil {
		archive.Close()
		return err
	}
	return archive.Close()
}

// UploadedRuns loads the archive of already-uploaded runs.
func (s *Store) UploadedRuns() ([]*core.Run, error) {
	f, err := os.Open(s.path(archiveFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.DecodeRuns(f)
}

// writeAtomically writes via a temp file and rename so a crash cannot
// corrupt the store; a leftover temp file from a kill between write and
// rename is simply ignored by every reader.
func (s *Store) writeAtomically(name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(name))
}
