// Package client implements the UUCS client (paper Figure 5, minus the
// Windows GUI): local text-file stores for testcases and results that
// let the client operate disconnected from the server, registration and
// hot sync against a server, randomized testcase scheduling with Poisson
// arrivals for the Internet-wide study, and a deterministic script mode
// for controlled experiments.
package client

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"uucs/internal/core"
	"uucs/internal/testcase"
)

// Store is the client's permanent storage: plain text files in one
// directory, mirroring the paper's design ("Both are Windows
// applications that store testcases and results on permanent storage in
// text files").
type Store struct {
	dir string
}

// Store file names.
const (
	testcasesFile = "testcases.txt"
	pendingFile   = "results-pending.txt"
	archiveFile   = "results-uploaded.txt"
	idFile        = "clientid.txt"
)

// OpenStore opens (creating if needed) a client store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("client: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("client: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// ClientID returns the stored registration id, or "" when the client has
// never registered.
func (s *Store) ClientID() (string, error) {
	b, err := os.ReadFile(s.path(idFile))
	if errors.Is(err, fs.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// SetClientID persists the registration id.
func (s *Store) SetClientID(id string) error {
	if id == "" {
		return fmt.Errorf("client: refusing to store empty client id")
	}
	return os.WriteFile(s.path(idFile), []byte(id+"\n"), 0o644)
}

// Testcases loads the local testcase store.
func (s *Store) Testcases() ([]*testcase.Testcase, error) {
	f, err := os.Open(s.path(testcasesFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return testcase.DecodeAll(f)
}

// SaveTestcases replaces the local testcase store.
func (s *Store) SaveTestcases(tcs []*testcase.Testcase) error {
	testcase.SortByID(tcs)
	return s.writeAtomically(testcasesFile, func(f *os.File) error {
		return testcase.EncodeAll(f, tcs)
	})
}

// AddTestcases merges new testcases into the store, replacing duplicates
// by ID.
func (s *Store) AddTestcases(tcs []*testcase.Testcase) (added int, err error) {
	existing, err := s.Testcases()
	if err != nil {
		return 0, err
	}
	byID := make(map[string]*testcase.Testcase, len(existing))
	for _, tc := range existing {
		byID[tc.ID] = tc
	}
	for _, tc := range tcs {
		if _, ok := byID[tc.ID]; !ok {
			added++
		}
		byID[tc.ID] = tc
	}
	merged := make([]*testcase.Testcase, 0, len(byID))
	for _, tc := range byID {
		merged = append(merged, tc)
	}
	return added, s.SaveTestcases(merged)
}

// AppendRun records a completed run in the pending store; it will be
// uploaded at the next hot sync.
func (s *Store) AppendRun(run *core.Run) error {
	f, err := os.OpenFile(s.path(pendingFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return core.EncodeRuns(f, []*core.Run{run}, true)
}

// PendingRuns loads the runs not yet uploaded.
func (s *Store) PendingRuns() ([]*core.Run, error) {
	f, err := os.Open(s.path(pendingFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.DecodeRuns(f)
}

// MarkUploaded moves the pending runs into the uploaded archive.
func (s *Store) MarkUploaded() error {
	pending, err := os.ReadFile(s.path(pendingFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	archive, err := os.OpenFile(s.path(archiveFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := archive.Write(pending); err != nil {
		archive.Close()
		return err
	}
	if err := archive.Close(); err != nil {
		return err
	}
	return os.Remove(s.path(pendingFile))
}

// UploadedRuns loads the archive of already-uploaded runs.
func (s *Store) UploadedRuns() ([]*core.Run, error) {
	f, err := os.Open(s.path(archiveFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.DecodeRuns(f)
}

// writeAtomically writes via a temp file and rename so a crash cannot
// corrupt the store.
func (s *Store) writeAtomically(name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(name))
}
