package client

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uucs/internal/core"
	"uucs/internal/testcase"
)

func crashRun(id string) *core.Run {
	return &core.Run{
		TestcaseID: id, Task: testcase.Word, UserID: 1,
		Terminated: core.Exhausted, Offset: 60,
		Levels:   map[testcase.Resource]float64{testcase.CPU: 1},
		LastFive: map[testcase.Resource][]float64{},
	}
}

// TestStoreCrashPaths simulates a client killed at every dangerous
// instant of the run-record lifecycle — mid-append, between the
// sequence bump and the rename, between rename and upload, between ack
// and cleanup — and asserts the store resumes without losing or
// duplicating a run.
func TestStoreCrashPaths(t *testing.T) {
	cases := []struct {
		name  string
		crash func(t *testing.T, st *Store)
		check func(t *testing.T, st *Store)
	}{
		{
			// writeAtomically was killed between temp-file write and
			// rename: the leftover temp file must be invisible.
			name: "leftover-temp-file",
			crash: func(t *testing.T, st *Store) {
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				tmp := filepath.Join(st.Dir(), testcasesFile+".tmp12345")
				if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				if runs, err := st.PendingRuns(); err != nil || len(runs) != 1 {
					t.Fatalf("pending = %d, %v", len(runs), err)
				}
				if tcs, err := st.Testcases(); err != nil || len(tcs) != 0 {
					t.Fatalf("temp file leaked into testcases: %d, %v", len(tcs), err)
				}
			},
		},
		{
			// AppendRun was killed mid-write: the pending file ends in a
			// torn record. The complete prefix survives, the tail is
			// dropped, and the file is appendable again.
			name: "torn-pending-tail",
			crash: func(t *testing.T, st *Store) {
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				if err := st.AppendRun(crashRun("b")); err != nil {
					t.Fatal(err)
				}
				f, err := os.OpenFile(filepath.Join(st.Dir(), pendingFile), os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString("run c\ntask word\nuser 1\nterm"); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			check: func(t *testing.T, st *Store) {
				runs, err := st.PendingRuns()
				if err != nil || len(runs) != 2 {
					t.Fatalf("salvage kept %d runs, %v; want 2", len(runs), err)
				}
				if runs[0].TestcaseID != "a" || runs[1].TestcaseID != "b" {
					t.Fatalf("salvaged wrong runs: %v", runs)
				}
				if err := st.AppendRun(crashRun("d")); err != nil {
					t.Fatal(err)
				}
				if runs, _ := st.PendingRuns(); len(runs) != 3 {
					t.Fatalf("append after salvage: %d runs", len(runs))
				}
			},
		},
		{
			// The very first AppendRun was killed mid-write: the whole
			// pending file is one torn record, which is dropped entirely.
			name: "fully-torn-pending",
			crash: func(t *testing.T, st *Store) {
				path := filepath.Join(st.Dir(), pendingFile)
				if err := os.WriteFile(path, []byte("run a\ntask word\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				if runs, err := st.PendingRuns(); err != nil || len(runs) != 0 {
					t.Fatalf("torn-only pending: %d runs, %v", len(runs), err)
				}
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				if runs, _ := st.PendingRuns(); len(runs) != 1 {
					t.Fatal("append after full tear failed")
				}
			},
		},
		{
			// SealPending was killed after bumping the sequence counter
			// but before renaming pending into the outbox. The number is
			// wasted — the next seal must use a fresh one, never reuse.
			name: "killed-between-seq-bump-and-rename",
			crash: func(t *testing.T, st *Store) {
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				if err := st.setNextSeq(2); err != nil { // bumped, no rename
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				seq, err := st.SealPending()
				if err != nil {
					t.Fatal(err)
				}
				if seq != 2 {
					t.Fatalf("seal reused or skipped wrong seq: %d, want 2", seq)
				}
				if next, _ := st.NextSeq(); next != 3 {
					t.Fatalf("next seq = %d, want 3", next)
				}
				batches, err := st.Outboxes()
				if err != nil || len(batches) != 1 || batches[0].Seq != 2 {
					t.Fatalf("outboxes = %+v, %v", batches, err)
				}
			},
		},
		{
			// Killed after sealing but before upload: a restarted client
			// must find the batch and ship it under its original number.
			name: "killed-between-seal-and-upload",
			crash: func(t *testing.T, st *Store) {
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				if _, err := st.SealPending(); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				batches, err := st.Outboxes()
				if err != nil || len(batches) != 1 || batches[0].Seq != 1 || len(batches[0].Runs) != 1 {
					t.Fatalf("outboxes after restart = %+v, %v", batches, err)
				}
				if runs, _ := st.PendingRuns(); len(runs) != 0 {
					t.Fatal("sealed runs still pending")
				}
				// New runs seal into the NEXT batch; the old one is
				// untouched.
				if err := st.AppendRun(crashRun("b")); err != nil {
					t.Fatal(err)
				}
				seq, err := st.SealPending()
				if err != nil || seq != 2 {
					t.Fatalf("second seal: %d, %v", seq, err)
				}
				if err := st.MarkBatchUploaded(1); err != nil {
					t.Fatal(err)
				}
				if err := st.MarkBatchUploaded(2); err != nil {
					t.Fatal(err)
				}
				if archived, _ := st.UploadedRuns(); len(archived) != 2 {
					t.Fatalf("archive = %d runs", len(archived))
				}
			},
		},
		{
			// Killed between receiving the ack and MarkBatchUploaded: the
			// batch is re-sent (the server discards it as a duplicate)
			// and the second MarkBatchUploaded for a gone batch is a
			// no-op — the archive gains the runs exactly once.
			name: "killed-between-ack-and-cleanup",
			crash: func(t *testing.T, st *Store) {
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				if _, err := st.SealPending(); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				if err := st.MarkBatchUploaded(1); err != nil {
					t.Fatal(err)
				}
				if err := st.MarkBatchUploaded(1); err != nil { // retried after restart
					t.Fatal(err)
				}
				if archived, _ := st.UploadedRuns(); len(archived) != 1 {
					t.Fatalf("archive = %d runs, want 1", len(archived))
				}
				if batches, _ := st.Outboxes(); len(batches) != 0 {
					t.Fatal("acked batch still in outbox")
				}
			},
		},
		{
			// A corrupted sequence file must surface as an error, not
			// silently restart numbering (which would collide with
			// batches the server already applied).
			name: "corrupt-seq-file",
			crash: func(t *testing.T, st *Store) {
				if err := st.AppendRun(crashRun("a")); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(st.Dir(), seqFile), []byte("garbage\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				if _, err := st.NextSeq(); err == nil {
					t.Fatal("corrupt seq file accepted")
				}
				if _, err := st.SealPending(); err == nil {
					t.Fatal("seal with corrupt seq file succeeded")
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			tc.crash(t, st)
			// The "restart": a fresh Store over the same directory, as a
			// rebooted client process would open.
			st2, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, st2)
		})
	}
}

// TestStoreOutboxIgnoresStrayFiles: files that merely look like outbox
// batches must not be decoded as run data.
func TestStoreOutboxIgnoresStrayFiles(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"outbox-notanumber.txt", "outbox-1.log"} {
		if err := os.WriteFile(filepath.Join(st.Dir(), name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	batches, err := st.Outboxes()
	if err != nil || len(batches) != 0 {
		t.Fatalf("stray files decoded as batches: %+v, %v", batches, err)
	}
	// A real outbox file with corrupt contents IS an error — that data
	// was sealed run records and must not be silently discarded.
	if err := os.WriteFile(filepath.Join(st.Dir(), "outbox-00000003.txt"), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Outboxes(); err == nil || !strings.Contains(err.Error(), "outbox") {
		t.Fatalf("corrupt outbox batch not surfaced: %v", err)
	}
}
