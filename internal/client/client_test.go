package client

import (
	"strings"
	"testing"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func testSnap() protocol.Snapshot {
	return protocol.Snapshot{Hostname: "box", OS: "winxp", CPUGHz: 2, MemMB: 512, DiskGB: 80}
}

func newClient(t *testing.T, seed uint64) *Client {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(st, testSnap(), core.NewEngine(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startServer(t *testing.T, nTestcases int) (*server.Server, string) {
	t.Helper()
	s := server.New(11)
	if nTestcases > 0 {
		tcs, err := testcase.Generate("inet", testcase.GeneratorConfig{
			Count: nTestcases, Rate: 1, Duration: 20,
			BlankFraction: 0.1, QueueFraction: 0.4, MaxCPU: 10, MaxDisk: 7,
		}, stats.NewStream(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddTestcases(tcs...); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func testUser(t *testing.T) *comfort.User {
	t.Helper()
	us, err := comfort.SamplePopulation(1, comfort.DefaultPopulation(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return us[0]
}

// TestNonceDistinctAcrossHostsSharingSeed: two different machines that
// happen to run with the same seed (e.g. two volunteers on the CLI's
// default -seed) must present distinct registration nonces, or the
// server's nonce dedup would merge them into one identity and the
// second host's uploads would be dropped as duplicates.
func TestNonceDistinctAcrossHostsSharingSeed(t *testing.T) {
	newWithSnap := func(snap protocol.Snapshot) *Client {
		st, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(st, snap, core.NewEngine(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := newWithSnap(testSnap())
	other := testSnap()
	other.Hostname = "other-box"
	b := newWithSnap(other)
	if a.nonce == b.nonce {
		t.Errorf("distinct hosts with the same seed derived the same nonce %q", a.nonce)
	}
	// Same host, same seed, fresh store: the derivation itself stays
	// deterministic (the simulated fleet depends on it).
	a2 := newWithSnap(testSnap())
	if a.nonce != a2.nonce {
		t.Errorf("nonce derivation not deterministic: %q vs %q", a.nonce, a2.nonce)
	}
	// And the entropy-backed path for real deployments never collides.
	r1, err := RandomNonce()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomNonce()
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 || r1 == "" {
		t.Errorf("RandomNonce produced %q and %q", r1, r2)
	}
}

func TestStoreRoundTrips(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Client id.
	if id, err := st.ClientID(); err != nil || id != "" {
		t.Fatalf("fresh store id = %q, %v", id, err)
	}
	if err := st.SetClientID("uucs-1"); err != nil {
		t.Fatal(err)
	}
	if id, _ := st.ClientID(); id != "uucs-1" {
		t.Errorf("id = %q", id)
	}
	if err := st.SetClientID(""); err == nil {
		t.Error("empty id stored")
	}
	// Testcases.
	tc := testcase.New("a", 1)
	tc.Functions[testcase.CPU] = testcase.Ramp(2, 10, 1)
	tc.Shape = testcase.ShapeRamp
	if err := st.SaveTestcases([]*testcase.Testcase{tc}); err != nil {
		t.Fatal(err)
	}
	got, err := st.Testcases()
	if err != nil || len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("testcases = %v, %v", got, err)
	}
	// Merge keeps existing, adds new.
	tc2 := testcase.New("b", 1)
	tc2.Functions[testcase.Disk] = testcase.Step(3, 10, 2, 1)
	tc2.Shape = testcase.ShapeStep
	added, err := st.AddTestcases([]*testcase.Testcase{tc, tc2})
	if err != nil || added != 1 {
		t.Fatalf("added = %d, %v", added, err)
	}
	got, _ = st.Testcases()
	if len(got) != 2 {
		t.Fatalf("after merge: %d", len(got))
	}
}

func TestStoreRunLifecycle(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := &core.Run{
		TestcaseID: "t", Task: testcase.Word, UserID: 1,
		Terminated: core.Exhausted, Offset: 120,
		Levels:   map[testcase.Resource]float64{testcase.CPU: 0},
		LastFive: map[testcase.Resource][]float64{},
	}
	if err := st.AppendRun(run); err != nil {
		t.Fatal(err)
	}
	pending, err := st.PendingRuns()
	if err != nil || len(pending) != 1 {
		t.Fatalf("pending = %d, %v", len(pending), err)
	}
	if err := st.MarkUploaded(); err != nil {
		t.Fatal(err)
	}
	pending, _ = st.PendingRuns()
	if len(pending) != 0 {
		t.Errorf("pending after upload = %d", len(pending))
	}
	archived, err := st.UploadedRuns()
	if err != nil || len(archived) != 1 {
		t.Errorf("archived = %d, %v", len(archived), err)
	}
	// MarkUploaded with nothing pending is a no-op.
	if err := st.MarkUploaded(); err != nil {
		t.Error(err)
	}
}

func TestOpenStoreValidation(t *testing.T) {
	if _, err := OpenStore(""); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	if _, err := New(nil, testSnap(), nil, 1); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(st, protocol.Snapshot{}, nil, 1); err == nil {
		t.Error("invalid snapshot accepted")
	}
	c, err := New(st, testSnap(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine == nil {
		t.Error("nil engine not defaulted")
	}
}

func TestRegisterAndHotSync(t *testing.T) {
	srv, addr := startServer(t, 60)
	c := newClient(t, 1)
	if err := c.Register(addr); err != nil {
		t.Fatal(err)
	}
	if c.ID() == "" {
		t.Fatal("no id after registration")
	}
	// Idempotent.
	id := c.ID()
	if err := c.Register(addr); err != nil || c.ID() != id {
		t.Errorf("re-registration changed id: %v %v", c.ID(), err)
	}
	// First sync: SyncBatch testcases.
	st1, err := c.HotSync(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st1.NewTestcases != c.SyncBatch {
		t.Errorf("first sync brought %d testcases, want %d", st1.NewTestcases, c.SyncBatch)
	}
	// Second sync: the sample grows.
	st2, err := c.HotSync(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NewTestcases <= st1.NewTestcases {
		t.Errorf("sample did not grow: %d then %d", st1.NewTestcases, st2.NewTestcases)
	}
	tcs, _ := c.Store.Testcases()
	if len(tcs) != st1.NewTestcases+st2.NewTestcases {
		t.Errorf("store holds %d testcases", len(tcs))
	}
	_ = srv
}

func TestHotSyncRequiresRegistration(t *testing.T) {
	_, addr := startServer(t, 5)
	c := newClient(t, 2)
	if _, err := c.HotSync(addr); err == nil {
		t.Error("unregistered sync succeeded")
	}
}

func TestEndToEndRunUpload(t *testing.T) {
	srv, addr := startServer(t, 30)
	c := newClient(t, 3)
	if err := c.Register(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := c.HotSync(addr); err != nil {
		t.Fatal(err)
	}
	tc, err := c.ChooseTestcase()
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.New(testcase.Word)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.ExecuteRun(tc, app, testUser(t))
	if err != nil {
		t.Fatal(err)
	}
	if run.TestcaseID != tc.ID {
		t.Errorf("run testcase = %s", run.TestcaseID)
	}
	st, err := c.HotSync(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.UploadedRuns != 1 {
		t.Errorf("uploaded %d runs", st.UploadedRuns)
	}
	if got := srv.Results(); len(got) != 1 || got[0].TestcaseID != tc.ID {
		t.Errorf("server results: %v", got)
	}
	// Nothing pending after upload.
	pending, _ := c.Store.PendingRuns()
	if len(pending) != 0 {
		t.Errorf("still %d pending", len(pending))
	}
}

func TestChooseTestcaseEmptyStore(t *testing.T) {
	c := newClient(t, 4)
	if _, err := c.ChooseTestcase(); err == nil {
		t.Error("empty store choice succeeded")
	}
}

func TestNextArrivalIsPoisson(t *testing.T) {
	c := newClient(t, 5)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		v := c.NextArrival(30)
		if v < 0 {
			t.Fatal("negative arrival gap")
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 28 || mean > 32 {
		t.Errorf("mean gap = %v, want ~30", mean)
	}
}

func TestRunScript(t *testing.T) {
	_, addr := startServer(t, 0)
	_ = addr
	c := newClient(t, 6)
	suite, err := testcase.ControlledSuite(testcase.Word)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store.SaveTestcases(suite); err != nil {
		t.Fatal(err)
	}
	app, _ := apps.New(testcase.Word)
	ids := []string{suite[0].ID, suite[1].ID}
	runs, err := c.RunScript(ids, app, testUser(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].TestcaseID != ids[0] {
		t.Errorf("script runs: %v", runs)
	}
	if _, err := c.RunScript([]string{"nope"}, app, testUser(t)); err == nil {
		t.Error("unknown id accepted")
	}
	pending, _ := c.Store.PendingRuns()
	if len(pending) != 2 {
		t.Errorf("pending = %d", len(pending))
	}
}

func TestParseScript(t *testing.T) {
	ids := ParseScript("# comment\n\n tc-1 \ntc-2\n")
	if len(ids) != 2 || ids[0] != "tc-1" || ids[1] != "tc-2" {
		t.Errorf("ParseScript = %v", ids)
	}
	if got := ParseScript(""); len(got) != 0 {
		t.Errorf("empty script = %v", got)
	}
	if !strings.HasPrefix("tc-1", "tc") {
		t.Fatal("sanity")
	}
}

func TestClientDisconnectedOperation(t *testing.T) {
	// The paper's client "can operate disconnected from the server":
	// executions against the local store must work with no server, and a
	// failed hot sync must leave the pending results intact.
	c := newClient(t, 8)
	suite, err := testcase.ControlledSuite(testcase.Powerpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store.SaveTestcases(suite); err != nil {
		t.Fatal(err)
	}
	app, _ := apps.New(testcase.Powerpoint)
	tc, err := c.ChooseTestcase()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRun(tc, app, testUser(t)); err != nil {
		t.Fatal(err)
	}
	// Force the registered state so HotSync attempts the network.
	if err := c.Store.SetClientID("uucs-ghost"); err != nil {
		t.Fatal(err)
	}
	c2, err := New(c.Store, testSnap(), core.NewEngine(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.HotSync("127.0.0.1:1"); err == nil { // nothing listens there
		t.Fatal("sync against dead server succeeded")
	}
	pending, err := c.Store.PendingRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Errorf("pending results lost on failed sync: %d", len(pending))
	}
}

// TestRegisterReprobesStoredIdentity pins the restart re-probe: a
// client that comes back up with a stored identity has not negotiated a
// wire version this process life, so Register must redo the idempotent
// wire round-trip — upgrading the framing to the newest the server
// grants — while keeping the stored id authoritative. Skipping it would
// leave every restarted client speaking v2 forever.
func TestRegisterReprobesStoredIdentity(t *testing.T) {
	_, addr := startServer(t, 0)
	dir := t.TempDir()

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(st, testSnap(), core.NewEngine(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Register(addr); err != nil {
		t.Fatal(err)
	}
	id := c1.ID()
	if id == "" {
		t.Fatal("first registration assigned no id")
	}
	if got := c1.WireVersion(); got != protocol.V3 {
		t.Fatalf("fresh registration negotiated v%d, want v%d", got, protocol.V3)
	}

	// Restart: a new process life over the same store. The identity is
	// stored, but negotiation state is not — the restarted client must
	// conservatively speak v2 until it re-probes.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(st2, testSnap(), core.NewEngine(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID() != id {
		t.Fatalf("restarted client lost its identity: %q vs %q", c2.ID(), id)
	}
	if got := c2.WireVersion(); got != protocol.V2 {
		t.Fatalf("pre-probe wire version v%d, want conservative v%d", got, protocol.V2)
	}
	if err := c2.Register(addr); err != nil {
		t.Fatal(err)
	}
	if c2.ID() != id {
		t.Fatalf("re-probe changed the stored id: %q vs %q", c2.ID(), id)
	}
	if got := c2.WireVersion(); got != protocol.V3 {
		t.Fatalf("post-probe wire version v%d, want upgraded v%d", got, protocol.V3)
	}

	// A second Register in the same life is a local no-op — already
	// negotiated, nothing to learn.
	if err := c2.Register(addr); err != nil {
		t.Fatal(err)
	}

	// A client pinned to v2 re-probes nothing and stays pinned.
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := New(st3, testSnap(), core.NewEngine(), 7)
	if err != nil {
		t.Fatal(err)
	}
	c3.ProtocolVersion = protocol.V2
	if err := c3.Register(addr); err != nil {
		t.Fatal(err)
	}
	if got := c3.WireVersion(); got != protocol.V2 {
		t.Fatalf("pinned client speaks v%d, want v%d", got, protocol.V2)
	}
}
