package stats

import (
	"math"
	"testing"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.5, 0.5},   // uniform CDF
		{1, 1, 0.25, 0.25}, // uniform CDF
		{2, 2, 0.5, 0.5},   // symmetric
		{2, 1, 0.5, 0.25},  // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75},  // I_x(1,2) = 1-(1-x)^2
		{5, 3, 1, 1},
		{5, 3, 0, 0},
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct{ tt, nu, want, tol float64 }{
		{0, 5, 0.5, 1e-12},
		{1.812, 10, 0.95, 1e-3},   // t_{0.95,10}
		{2.228, 10, 0.975, 1e-3},  // t_{0.975,10}
		{-2.228, 10, 0.025, 1e-3}, // symmetry
		{2.776, 4, 0.975, 1e-3},   // t_{0.975,4}
		{1.96, 1e6, 0.975, 1e-3},  // converges to normal
	}
	for _, c := range cases {
		if got := TCDF(c.tt, c.nu); math.Abs(got-c.want) > c.tol {
			t.Errorf("TCDF(%v,%v) = %v, want %v", c.tt, c.nu, got, c.want)
		}
	}
}

func TestTInvRoundTrip(t *testing.T) {
	for _, nu := range []float64{1, 4, 10, 30, 100} {
		for _, p := range []float64{0.025, 0.05, 0.5, 0.9, 0.975} {
			x := TInv(p, nu)
			if got := TCDF(x, nu); math.Abs(got-p) > 1e-6 {
				t.Errorf("TCDF(TInv(%v,%v)) = %v", p, nu, got)
			}
		}
	}
}

func TestTInvKnownValue(t *testing.T) {
	if got := TInv(0.975, 4); math.Abs(got-2.776) > 1e-3 {
		t.Errorf("t_{0.975,4} = %v, want 2.776", got)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5}, {1.96, 0.975}, {-1.96, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestWelchTTestSeparatedGroups(t *testing.T) {
	a := []float64{5.1, 5.3, 4.9, 5.2, 5.0, 5.1, 4.8, 5.2}
	b := []float64{3.0, 3.2, 2.9, 3.1, 3.0, 2.8, 3.1, 3.2}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Errorf("clearly separated groups: p = %v", r.P)
	}
	if math.Abs(r.Diff-2.0375) > 1e-9 {
		t.Errorf("Diff = %v, want 2.0375", r.Diff)
	}
	if !r.Significant(0.05) {
		t.Error("expected significance at alpha=0.05")
	}
}

func TestWelchTTestIdenticalGroups(t *testing.T) {
	s := NewStream(123)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = s.Norm(10, 2)
		b[i] = s.Norm(10, 2)
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.001 {
		t.Errorf("same-distribution groups improbably significant: p = %v", r.P)
	}
}

func TestTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for tiny sample")
	}
	if _, err := WelchTTest([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Error("expected error for zero variance in both groups")
	}
	if _, err := PooledTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected pooled error for tiny sample")
	}
	if _, err := PooledTTest([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("expected pooled error for zero variance")
	}
}

func TestPooledMatchesWelchForEqualVariance(t *testing.T) {
	s := NewStream(7)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = s.Norm(5, 1)
		b[i] = s.Norm(6, 1)
	}
	w, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PooledTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.T-p.T) > 0.05 {
		t.Errorf("Welch t=%v vs pooled t=%v diverge for equal variances", w.T, p.T)
	}
}

func TestTTestFalsePositiveRate(t *testing.T) {
	// With the null hypothesis true, p < 0.05 must occur about 5% of the
	// time — this validates the whole p-value pipeline end to end.
	s := NewStream(55)
	sig, trials := 0, 500
	for i := 0; i < trials; i++ {
		a := make([]float64, 15)
		b := make([]float64, 15)
		for j := range a {
			a[j] = s.Norm(0, 1)
			b[j] = s.Norm(0, 1)
		}
		r, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			sig++
		}
	}
	rate := float64(sig) / float64(trials)
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("false positive rate = %v, want ~0.05", rate)
	}
}

func TestDistInterfaces(t *testing.T) {
	s := NewStream(77)
	dists := []Dist{
		Constant{2},
		Uniform{1, 3},
		Exponential{2},
		Pareto{1, 3},
		Lognormal{2, 0.5},
		Normal{2, 0.5},
		TruncLognormal{2, 0.5, 1, 4},
	}
	for _, d := range dists {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d.Sample(s)
		}
		got := sum / float64(n)
		want := d.Mean()
		if math.IsInf(want, 0) {
			continue
		}
		if math.Abs(got-want) > 0.1*want+0.05 {
			t.Errorf("%s sample mean = %v, analytic mean = %v", d, got, want)
		}
	}
}

func TestTruncLognormalBounds(t *testing.T) {
	s := NewStream(88)
	d := TruncLognormal{Median: 2, Sigma: 1, Lo: 1, Hi: 3}
	for i := 0; i < 5000; i++ {
		v := d.Sample(s)
		if v < 1 || v > 3 {
			t.Fatalf("truncated sample out of bounds: %v", v)
		}
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if !math.IsInf(Pareto{1, 1}.Mean(), 1) {
		t.Error("Pareto alpha<=1 should have infinite mean")
	}
}
