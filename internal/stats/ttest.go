package stats

import (
	"fmt"
	"math"
)

// TTestResult carries the outcome of an unpaired two-sample t-test, as
// used in the paper's Figure 17 to compare discomfort levels between
// user-perceived skill classes.
type TTestResult struct {
	T    float64 // t statistic
	DF   float64 // degrees of freedom
	P    float64 // two-sided p-value
	Diff float64 // mean(a) - mean(b); the paper's "Diff" column
	NA   int     // sample size of a
	NB   int     // sample size of b
}

// Significant reports whether the two-sided p-value is below alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// String renders the result in the style of the paper's Figure 17 rows.
func (r TTestResult) String() string {
	return fmt.Sprintf("t=%.3f df=%.1f p=%.4f diff=%.3f (n=%d vs %d)", r.T, r.DF, r.P, r.Diff, r.NA, r.NB)
}

// WelchTTest performs an unpaired two-sample t-test without assuming equal
// variances (Welch's test, with the Welch–Satterthwaite degrees of
// freedom). It returns an error when either sample has fewer than two
// observations or when both samples have zero variance.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >= 2 samples per group (got %d, %d)", len(a), len(b))
	}
	return WelchTTestSummary(len(a), Mean(a), Variance(a), len(b), Mean(b), Variance(b))
}

// WelchTTestSummary is WelchTTest computed from sufficient statistics —
// sample sizes, means and sample variances — for streaming aggregates
// that never hold the raw observations.
func WelchTTestSummary(na int, ma, va float64, nb int, mb, vb float64) (TTestResult, error) {
	if na < 2 || nb < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >= 2 samples per group (got %d, %d)", na, nb)
	}
	fa, fb := float64(na), float64(nb)
	se2 := va/fa + vb/fb
	if se2 == 0 {
		return TTestResult{}, fmt.Errorf("stats: t-test with zero variance in both groups")
	}
	t := (ma - mb) / math.Sqrt(se2)
	df := se2 * se2 / ((va*va)/(fa*fa*(fa-1)) + (vb*vb)/(fb*fb*(fb-1)))
	p := 2 * TCDF(-math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p, Diff: ma - mb, NA: na, NB: nb}, nil
}

// PairedTTest performs a paired t-test on matched samples a[i], b[i]: a
// one-sample t-test of the differences against zero. The study's
// frog-in-the-pot analysis (§3.3.5) pairs each user's ramp and step runs
// this way.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("stats: paired t-test needs equal lengths (got %d, %d)", len(a), len(b))
	}
	if len(a) < 2 {
		return TTestResult{}, fmt.Errorf("stats: paired t-test needs >= 2 pairs (got %d)", len(a))
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	se := StdErr(d)
	if se == 0 {
		return TTestResult{}, fmt.Errorf("stats: paired t-test with zero variance")
	}
	df := float64(len(d) - 1)
	t := Mean(d) / se
	p := 2 * TCDF(-math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p, Diff: Mean(d), NA: len(a), NB: len(b)}, nil
}

// PooledTTest performs the classic unpaired t-test assuming equal
// variances, with n_a + n_b - 2 degrees of freedom. The paper does not
// state which variant it used; both are provided and the study harness
// defaults to Welch, which is the safer choice for unequal group sizes.
func PooledTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >= 2 samples per group (got %d, %d)", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	df := na + nb - 2
	sp2 := ((na-1)*va + (nb-1)*vb) / df
	se := math.Sqrt(sp2 * (1/na + 1/nb))
	if se == 0 {
		return TTestResult{}, fmt.Errorf("stats: t-test with zero pooled variance")
	}
	t := (ma - mb) / se
	p := 2 * TCDF(-math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p, Diff: ma - mb, NA: len(a), NB: len(b)}, nil
}
