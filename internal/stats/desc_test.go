package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("singleton variance should be 0")
	}
	m, lo, hi := MeanCI([]float64{5}, 0.95)
	if m != 5 || lo != 5 || hi != 5 {
		t.Errorf("singleton CI = (%v,%v,%v), want degenerate (5,5,5)", m, lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("Quantile interp = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestMeanCICoverageProperty(t *testing.T) {
	// The 95% CI must bracket the true mean about 95% of the time.
	s := NewStream(99)
	hits, trials := 0, 400
	for i := 0; i < trials; i++ {
		xs := make([]float64, 20)
		for j := range xs {
			xs[j] = s.Norm(10, 3)
		}
		_, lo, hi := MeanCI(xs, 0.95)
		if lo <= 10 && 10 <= hi {
			hits++
		}
	}
	cov := float64(hits) / float64(trials)
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("CI coverage = %v, want ~0.95", cov)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		s := NewStream(seed)
		xs := make([]float64, int(n%30)+2)
		for i := range xs {
			xs[i] = s.Range(-100, 100)
		}
		v := Variance(xs)
		return v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	check := func(seed uint64, n uint8, qraw uint8) bool {
		s := NewStream(seed)
		xs := make([]float64, int(n%30)+1)
		for i := range xs {
			xs[i] = s.Range(-50, 50)
		}
		q := float64(qraw) / 255
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
