package stats

import "math"

// This file implements the special functions needed for Student-t
// confidence intervals and t-test p-values: the regularized incomplete
// beta function and the t distribution CDF and inverse CDF.

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// evaluated with the Lentz continued-fraction method. It panics for
// invalid a, b and clamps x to [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 {
		panic("stats: RegIncBeta requires a > 0 and b > 0")
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lnPre := lbeta - lga - lgb + a*math.Log(x) + b*math.Log(1-x)
	// Use the symmetry relation for faster convergence.
	if x < (a+1)/(a+b+2) {
		return math.Exp(lnPre) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lnPre)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// (Numerical Recipes' betacf) using modified Lentz iteration.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T <= t) for a Student t distribution with nu degrees of
// freedom.
func TCDF(t, nu float64) float64 {
	if nu <= 0 {
		panic("stats: TCDF requires nu > 0")
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	p := 0.5 * RegIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TInv returns the quantile t such that P(T <= t) = p for a Student t
// distribution with nu degrees of freedom, computed by bisection (the
// precision needed for confidence intervals is modest).
func TInv(p, nu float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: TInv requires 0 < p < 1")
	}
	if p == 0.5 {
		return 0
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	return (lo + hi) / 2
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
