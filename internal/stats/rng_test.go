package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewStream(7)
	child := parent.Fork()
	// The child must not replay the parent's sequence.
	p := NewStream(7)
	p.Uint64() // account for the fork step
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("forked stream tracked the parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	s := NewStream(11)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntNBounds(t *testing.T) {
	s := NewStream(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("IntN(7) hit %d distinct values, want 7", len(seen))
	}
}

func TestIntNPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	NewStream(1).IntN(0)
}

func TestExpMean(t *testing.T) {
	s := NewStream(9)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("negative exponential variate: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("exponential mean = %v, want ~2.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := NewStream(13)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.02 {
		t.Errorf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestLognormMedian(t *testing.T) {
	s := NewStream(17)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LognormMedian(5, 0.5)
	}
	med := Quantile(vals, 0.5)
	if math.Abs(med-5) > 0.15 {
		t.Errorf("lognormal median = %v, want ~5", med)
	}
}

func TestParetoProperties(t *testing.T) {
	s := NewStream(19)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Pareto(1.5, 3)
		if v < 1.5 {
			t.Fatalf("Pareto variate below scale: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	want := 3 * 1.5 / 2.0 // alpha*xm/(alpha-1)
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	s := NewStream(23)
	for _, mean := range []float64{0.5, 3, 50} {
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if NewStream(1).Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := NewStream(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewStream(29)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRange(t *testing.T) {
	s := NewStream(31)
	for i := 0; i < 1000; i++ {
		v := s.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) out of bounds: %v", v)
		}
	}
}
