package stats

import (
	"fmt"
	"math"
)

// Dist is a one-dimensional probability distribution that can be sampled
// from a Stream. Distributions are value types and safe to copy.
type Dist interface {
	// Sample draws one variate.
	Sample(s *Stream) float64
	// Mean returns the distribution mean (may be +Inf, e.g. Pareto with
	// alpha <= 1).
	Mean() float64
	// String renders the distribution for result files and logs.
	String() string
}

// Constant is the degenerate distribution at V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*Stream) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.V) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(s *Stream) float64 { return s.Range(u.Lo, u.Hi) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Exponential has the given mean (rate 1/Mu).
type Exponential struct{ Mu float64 }

// Sample implements Dist.
func (e Exponential) Sample(s *Stream) float64 { return s.Exp(e.Mu) }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.Mu }

func (e Exponential) String() string { return fmt.Sprintf("exp(%g)", e.Mu) }

// Pareto has scale Xm (minimum) and shape Alpha. The paper's exppar
// exercise functions draw job sizes from this heavy-tailed distribution
// (M/G/1 model).
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p Pareto) Sample(s *Stream) float64 { return s.Pareto(p.Xm, p.Alpha) }

// Mean implements Dist. It is +Inf for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(%g,%g)", p.Xm, p.Alpha) }

// Lognormal is parameterized by its Median and the log-space standard
// deviation Sigma — the form used by the comfort models, where Median is a
// human-meaningful tolerance and Sigma the population spread.
type Lognormal struct{ Median, Sigma float64 }

// Sample implements Dist.
func (l Lognormal) Sample(s *Stream) float64 { return s.LognormMedian(l.Median, l.Sigma) }

// Mean implements Dist.
func (l Lognormal) Mean() float64 { return l.Median * math.Exp(l.Sigma*l.Sigma/2) }

func (l Lognormal) String() string { return fmt.Sprintf("lognorm(%g,%g)", l.Median, l.Sigma) }

// Normal has the given Mu and Sigma.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (n Normal) Sample(s *Stream) float64 { return s.Norm(n.Mu, n.Sigma) }

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("norm(%g,%g)", n.Mu, n.Sigma) }

// TruncLognormal is a lognormal clamped to [Lo, Hi]; it keeps tolerance
// samples physically sensible (e.g. a frame-rate tolerance cannot be
// negative or above the display refresh rate).
type TruncLognormal struct {
	Median, Sigma float64
	Lo, Hi        float64
}

// Sample implements Dist.
func (t TruncLognormal) Sample(s *Stream) float64 {
	v := s.LognormMedian(t.Median, t.Sigma)
	if v < t.Lo {
		return t.Lo
	}
	if v > t.Hi {
		return t.Hi
	}
	return v
}

// Mean implements Dist. It returns the untruncated mean clamped to the
// bounds, which is adequate for reporting.
func (t TruncLognormal) Mean() float64 {
	m := t.Median * math.Exp(t.Sigma*t.Sigma/2)
	if m < t.Lo {
		return t.Lo
	}
	if m > t.Hi {
		return t.Hi
	}
	return m
}

func (t TruncLognormal) String() string {
	return fmt.Sprintf("trunclognorm(%g,%g,[%g,%g])", t.Median, t.Sigma, t.Lo, t.Hi)
}
