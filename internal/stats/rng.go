// Package stats provides the statistical substrate for UUCS: deterministic
// random number streams, the distributions used by exercise functions and
// user models, empirical CDFs, descriptive statistics with confidence
// intervals, and unpaired t-tests as used in the paper's skill-level
// analysis (Figure 17).
//
// Everything in this package is deterministic given a seed, which makes the
// controlled study (internal/study) exactly reproducible run-to-run.
package stats

import "math"

// Stream is a deterministic pseudo-random number stream based on the
// splitmix64 generator. It is intentionally independent of math/rand so
// that study results are stable across Go releases. Stream is not safe for
// concurrent use; derive independent streams with Fork.
type Stream struct {
	state uint64
	// spare holds a cached second normal variate from the polar method.
	spare    float64
	hasSpare bool
}

// NewStream returns a stream seeded with seed. Streams with distinct seeds
// are effectively independent.
func NewStream(seed uint64) *Stream {
	// Avoid the all-zero state producing a short low-entropy prefix.
	return &Stream{state: seed ^ 0x9e3779b97f4a7c15}
}

// Reseed resets the stream in place to the exact state NewStream(seed)
// would produce, clearing any cached normal variate. It exists so hot
// paths can reuse a Stream allocation across runs without changing a
// single drawn value.
func (s *Stream) Reseed(seed uint64) {
	*s = Stream{state: seed ^ 0x9e3779b97f4a7c15}
}

// Fork derives a new independent stream from the current one. The parent
// advances by one step, so forking is itself deterministic.
func (s *Stream) Fork() *Stream {
	return NewStream(s.Uint64() ^ 0xbf58476d1ce4e5b9)
}

// ForkInto reseeds child to the exact state Fork would have returned,
// without allocating. The parent advances by one step, as in Fork.
func (s *Stream) ForkInto(child *Stream) {
	child.Reseed(s.Uint64() ^ 0xbf58476d1ce4e5b9)
}

// ForkSeed returns Fork().Uint64() without allocating the intermediate
// stream: the first value of a fork, advancing the parent by one step.
func (s *Stream) ForkSeed() uint64 {
	var child Stream
	s.ForkInto(&child)
	return child.Uint64()
}

// DeriveSeed mixes a base seed with an index into an independent
// sub-seed, so per-unit streams (one per simulated host, say) can be
// derived directly from the unit's index — a pure function of
// (seed, idx), independent of generation order or worker count. It is
// the splitmix64 finalizer over the state NewStream(seed) would reach
// after idx+1 steps, i.e. the stream's idx'th output.
func DeriveSeed(seed, idx uint64) uint64 {
	z := (seed ^ 0x9e3779b97f4a7c15) + (idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("stats: IntN with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Range returns a uniform variate in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponential variate with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normal variate with the given mean and standard
// deviation, using the Marsaglia polar method.
func (s *Stream) Norm(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	var u, v, q float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		q = u*u + v*v
		if q > 0 && q < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(q) / q)
	s.spare = v * f
	s.hasSpare = true
	return mean + stddev*u*f
}

// Lognorm returns a lognormal variate whose underlying normal has mean mu
// and standard deviation sigma (both in log space). The median of the
// distribution is exp(mu).
func (s *Stream) Lognorm(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// LognormMedian returns a lognormal variate with the given median and log-
// space standard deviation sigma. This is the paper-calibration-friendly
// parameterization used throughout the comfort models.
func (s *Stream) LognormMedian(median, sigma float64) float64 {
	return median * math.Exp(s.Norm(0, sigma))
}

// Pareto returns a Pareto variate with scale xm (minimum value) and shape
// alpha. Used by the exppar (M/G/1) exercise-function generator.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and a normal approximation for large ones.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		swap(i, j)
	}
}
