package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over discomfort
// levels, in the style of the paper's Figures 10-12 and 18. It carries
// both the observed discomfort levels and the number of censored
// ("exhausted") runs that reached the end of their testcase without any
// feedback; censored runs contribute to the denominator but never to the
// cumulative count, so the CDF saturates at the paper's f_d rather than at
// 1.0.
type CDF struct {
	levels    []float64 // sorted discomfort levels
	exhausted int       // censored runs
}

// NewCDF builds an empirical CDF from the given discomfort levels and a
// count of exhausted (censored) runs. The input slice is copied.
func NewCDF(discomfortLevels []float64, exhausted int) *CDF {
	levels := make([]float64, len(discomfortLevels))
	copy(levels, discomfortLevels)
	sort.Float64s(levels)
	return &CDF{levels: levels, exhausted: exhausted}
}

// DfCount returns the number of runs that ended in discomfort, matching
// the DfCount label on the paper's CDF plots.
func (c *CDF) DfCount() int { return len(c.levels) }

// ExCount returns the number of exhausted (censored) runs, matching the
// ExCount label on the paper's CDF plots.
func (c *CDF) ExCount() int { return c.exhausted }

// N returns the total number of runs behind the CDF.
func (c *CDF) N() int { return len(c.levels) + c.exhausted }

// Fd returns f_d = DfCount / (DfCount + ExCount), the fraction of runs
// that provoked discomfort (paper Figure 14).
func (c *CDF) Fd() float64 {
	if c.N() == 0 {
		return 0
	}
	return float64(c.DfCount()) / float64(c.N())
}

// At returns the cumulative fraction of runs discomforted at contention
// level <= x.
func (c *CDF) At(x float64) float64 {
	if c.N() == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.levels, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(c.N())
}

// Percentile returns c_p: the contention level at which fraction p of all
// runs have expressed discomfort (paper's c_0.05 uses p = 0.05). It
// returns (0, false) when the CDF never reaches p within the explored
// range — the paper's "insufficient information" case (marked * in
// Figure 15).
func (c *CDF) Percentile(p float64) (float64, bool) {
	if c.N() == 0 || p <= 0 {
		return 0, false
	}
	need := p * float64(c.N())
	idx := int(math.Ceil(need)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.levels) {
		return 0, false
	}
	return c.levels[idx], true
}

// MeanLevel returns c_a, the average contention level at which discomfort
// occurred, over discomforted runs only (paper Figure 16). It returns
// (0, false) when there were no discomforted runs.
func (c *CDF) MeanLevel() (float64, bool) {
	if len(c.levels) == 0 {
		return 0, false
	}
	return Mean(c.levels), true
}

// MeanLevelCI returns c_a together with its two-sided 95% confidence
// interval, as reported in the paper's Figure 16.
func (c *CDF) MeanLevelCI() (mean, lo, hi float64, ok bool) {
	if len(c.levels) == 0 {
		return 0, 0, 0, false
	}
	mean, lo, hi = MeanCI(c.levels, 0.95)
	return mean, lo, hi, true
}

// Levels returns a copy of the sorted discomfort levels.
func (c *CDF) Levels() []float64 {
	out := make([]float64, len(c.levels))
	copy(out, c.levels)
	return out
}

// Max returns the largest observed discomfort level, or 0 when empty.
func (c *CDF) Max() float64 {
	if len(c.levels) == 0 {
		return 0
	}
	return c.levels[len(c.levels)-1]
}

// Merge returns a new CDF combining the runs behind c and other, used to
// aggregate per-task CDFs into the paper's all-task Figures 10-12.
func (c *CDF) Merge(other *CDF) *CDF {
	levels := make([]float64, 0, len(c.levels)+len(other.levels))
	levels = append(levels, c.levels...)
	levels = append(levels, other.levels...)
	return NewCDF(levels, c.exhausted+other.exhausted)
}

// Render draws the CDF as an ASCII plot of the given width and height with
// the DfCount/ExCount annotation used in the paper's figures. xmax bounds
// the horizontal axis; pass 0 to use the maximum observed level.
func (c *CDF) Render(title string, width, height int, xmax float64) string {
	if xmax <= 0 {
		xmax = c.Max()
		if xmax <= 0 {
			xmax = 1
		}
	}
	return renderCDF(title, width, height, xmax, c.At, c.DfCount(), c.ExCount())
}

// renderCDF is the shared ASCII CDF plotter behind CDF.Render and
// LevelAccum.Render: it samples at(x) across [0, xmax].
func renderCDF(title string, width, height int, xmax float64, at func(float64) float64, df, ex int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (DfCount=%d ExCount=%d)\n", title, df, ex)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := xmax * float64(col) / float64(width-1)
		frac := at(x)
		row := int(math.Round(frac * float64(height-1)))
		if row > height-1 {
			row = height - 1
		}
		grid[height-1-row][col] = '*'
	}
	for i, row := range grid {
		frac := float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s\n", frac, string(row))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       0%*s%.2f\n", width-4, "", xmax)
	return b.String()
}
