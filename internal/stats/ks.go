package stats

import (
	"fmt"
	"math"
	"sort"
)

// Two-sample Kolmogorov-Smirnov test. The Internet-wide study's purpose
// includes "creat[ing] better estimates for the aggregated resource
// CDFs" (§4); the KS statistic quantifies how far the fleet's CDF sits
// from the controlled study's, and whether the difference is within
// sampling noise.

// KSResult is the outcome of a two-sample KS test.
type KSResult struct {
	// D is the supremum distance between the two empirical CDFs.
	D float64
	// P approximates the two-sided p-value of observing D under the null
	// hypothesis that both samples come from one distribution
	// (asymptotic Kolmogorov distribution with the small-sample
	// correction).
	P float64
	// NA, NB are the sample sizes.
	NA, NB int
}

// Significant reports whether the distributions differ at level alpha.
func (r KSResult) Significant(alpha float64) bool { return r.P < alpha }

// String renders the result.
func (r KSResult) String() string {
	return fmt.Sprintf("KS D=%.3f p=%.4f (n=%d vs %d)", r.D, r.P, r.NA, r.NB)
}

// KSTest performs the two-sample Kolmogorov-Smirnov test on raw samples.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs non-empty samples (got %d, %d)", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := float64(len(as)), float64(len(bs))

	d := 0.0
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	// Asymptotic Kolmogorov distribution with Stephens' correction.
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: kolmogorovQ(lambda), NA: len(a), NB: len(b)}, nil
}

// kolmogorovQ is the survival function of the Kolmogorov distribution:
// Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
