package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer
// than two samples are present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MeanCI returns the sample mean together with a two-sided confidence
// interval at the given level (e.g. 0.95), using the Student t
// distribution with n-1 degrees of freedom. With fewer than two samples
// the interval degenerates to the mean itself.
func MeanCI(xs []float64, level float64) (mean, lo, hi float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, mean, mean
	}
	t := TInv(1-(1-level)/2, float64(n-1))
	half := t * StdErr(xs)
	return mean, mean - half, mean + half
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty
// slice. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
