package stats

import (
	"fmt"
	"math"
	"sort"
)

// Kaplan-Meier estimation for the discomfort data. The study's exhausted
// runs are right-censored observations: the user's true discomfort level
// lies somewhere above the largest contention the testcase explored. The
// paper's empirical CDFs treat censored runs by letting the CDF saturate
// at f_d; the Kaplan-Meier estimator uses the censoring information
// properly and recovers the underlying discomfort distribution the runs
// sampled — an extension beyond the paper's analysis.

// Censored is one observation for survival estimation.
type Censored struct {
	// Level is the contention at discomfort, or the largest explored
	// contention for censored (exhausted) runs.
	Level float64
	// Censored marks an exhausted run.
	Censored bool
}

// KMPoint is one step of the Kaplan-Meier curve.
type KMPoint struct {
	// Level is the contention level of a discomfort event.
	Level float64
	// S is the survival probability just after Level: the estimated
	// fraction of users still comfortable above it.
	S float64
	// AtRisk and Events record the step's inputs.
	AtRisk, Events int
}

// KaplanMeier estimates the survival function S(level) = P(comfortable
// beyond level) from censored discomfort observations. The returned
// curve is nonincreasing, starting below 1 at the smallest event level.
func KaplanMeier(obs []Censored) ([]KMPoint, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("stats: Kaplan-Meier needs observations")
	}
	sorted := make([]Censored, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Level < sorted[j].Level })

	var curve []KMPoint
	s := 1.0
	i := 0
	n := len(sorted)
	for i < n {
		level := sorted[i].Level
		events, censored := 0, 0
		j := i
		for j < n && sorted[j].Level == level {
			if sorted[j].Censored {
				censored++
			} else {
				events++
			}
			j++
		}
		atRisk := n - i
		if events > 0 {
			s *= 1 - float64(events)/float64(atRisk)
			curve = append(curve, KMPoint{Level: level, S: s, AtRisk: atRisk, Events: events})
		}
		_ = censored // censored observations only shrink the risk set
		i = j
	}
	if len(curve) == 0 {
		return nil, fmt.Errorf("stats: all %d observations censored; no events to estimate from", n)
	}
	return curve, nil
}

// KMQuantile returns the smallest level at which the estimated
// discomfort probability 1-S reaches p, or (0, false) when the curve
// never reaches it (possible with heavy censoring).
func KMQuantile(curve []KMPoint, p float64) (float64, bool) {
	if p <= 0 || p >= 1 {
		return 0, false
	}
	for _, pt := range curve {
		if 1-pt.S >= p-1e-12 {
			return pt.Level, true
		}
	}
	return 0, false
}

// KMDiscomfortAt returns the estimated discomfort probability at the
// given level (1 - S(level)).
func KMDiscomfortAt(curve []KMPoint, level float64) float64 {
	p := 0.0
	for _, pt := range curve {
		if pt.Level > level {
			break
		}
		p = 1 - pt.S
	}
	return p
}

// KMMedianLevel returns the level at which half the population is
// estimated to be discomforted, when reached.
func KMMedianLevel(curve []KMPoint) (float64, bool) { return KMQuantile(curve, 0.5) }

// ValidateKM checks the invariants of a curve (for tests and callers
// that construct curves manually).
func ValidateKM(curve []KMPoint) error {
	prevLevel := math.Inf(-1)
	prevS := 1.0
	for i, pt := range curve {
		if pt.Level <= prevLevel {
			return fmt.Errorf("stats: KM level not increasing at %d", i)
		}
		if pt.S < 0 || pt.S > prevS+1e-12 {
			return fmt.Errorf("stats: KM survival not nonincreasing at %d (%g after %g)", i, pt.S, prevS)
		}
		if pt.Events <= 0 || pt.AtRisk <= 0 {
			return fmt.Errorf("stats: KM step %d has no events or risk set", i)
		}
		prevLevel, prevS = pt.Level, pt.S
	}
	return nil
}
