package stats

import (
	"math"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	r, err := KSTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 {
		t.Errorf("D = %v for identical samples", r.D)
	}
	if r.P < 0.99 {
		t.Errorf("p = %v for identical samples", r.P)
	}
}

func TestKSSameDistribution(t *testing.T) {
	s := NewStream(4)
	falsePos, trials := 0, 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 60)
		b := make([]float64, 60)
		for j := range a {
			a[j] = s.Norm(0, 1)
			b[j] = s.Norm(0, 1)
		}
		r, err := KSTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			falsePos++
		}
	}
	rate := float64(falsePos) / float64(trials)
	if rate > 0.10 {
		t.Errorf("false positive rate = %v, want ~0.05", rate)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	s := NewStream(5)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = s.Norm(0, 1)
		b[i] = s.Norm(1.2, 1)
	}
	r, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.01) {
		t.Errorf("shifted distributions not detected: %v", r)
	}
	if r.D < 0.3 {
		t.Errorf("D = %v, want substantial", r.D)
	}
}

func TestKSKnownD(t *testing.T) {
	// a entirely below b: D must be 1.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	r, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.D-1) > 1e-12 {
		t.Errorf("D = %v, want 1", r.D)
	}
	if r.P > 0.1 {
		t.Errorf("p = %v for disjoint samples", r.P)
	}
}

func TestKSValidation(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if KSResult.String(KSResult{D: 0.5, P: 0.01, NA: 3, NB: 4}) == "" {
		t.Error("empty render")
	}
}

func TestKolmogorovQ(t *testing.T) {
	if q := kolmogorovQ(0); q != 1 {
		t.Errorf("Q(0) = %v", q)
	}
	// Known value: Q(1.36) ≈ 0.049 (the classic 5% critical point).
	if q := kolmogorovQ(1.36); math.Abs(q-0.049) > 0.003 {
		t.Errorf("Q(1.36) = %v, want ~0.049", q)
	}
	if q := kolmogorovQ(3); q > 1e-6 {
		t.Errorf("Q(3) = %v, want ~0", q)
	}
}
