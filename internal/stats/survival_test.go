package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring, KM must match the empirical CDF.
	obs := []Censored{{1, false}, {2, false}, {3, false}, {4, false}}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve steps = %d", len(curve))
	}
	wantS := []float64{0.75, 0.5, 0.25, 0}
	for i, pt := range curve {
		if math.Abs(pt.S-wantS[i]) > 1e-12 {
			t.Errorf("step %d S = %v, want %v", i, pt.S, wantS[i])
		}
	}
	if err := ValidateKM(curve); err != nil {
		t.Error(err)
	}
}

func TestKaplanMeierTextbookExample(t *testing.T) {
	// Events at 1 and 3; censored at 2: S(1)=5/6... classic worked
	// example with n=3: event at 1 (S=2/3), censored at 2, event at 3
	// (risk set 1, S=0).
	obs := []Censored{{1, false}, {2, true}, {3, false}}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("steps = %d", len(curve))
	}
	if math.Abs(curve[0].S-2.0/3.0) > 1e-12 {
		t.Errorf("S after first event = %v, want 2/3", curve[0].S)
	}
	if math.Abs(curve[1].S-0) > 1e-12 {
		t.Errorf("S after last event = %v, want 0", curve[1].S)
	}
}

func TestKaplanMeierCensoringRaisesEstimate(t *testing.T) {
	// The naive CDF treats exhausted runs as never-discomforted, which
	// underestimates discomfort probability at explored levels when
	// censoring is informative. KM corrects upward.
	obs := []Censored{
		{1, false}, {2, true}, {2, true}, {3, false},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	kmAt3 := KMDiscomfortAt(curve, 3)
	naive := 2.0 / 4.0 // CDF: 2 of 4 discomforted by level 3
	if kmAt3 <= naive {
		t.Errorf("KM discomfort at 3 = %v, want > naive %v", kmAt3, naive)
	}
}

func TestKaplanMeierAllCensored(t *testing.T) {
	if _, err := KaplanMeier([]Censored{{1, true}, {2, true}}); err == nil {
		t.Error("all-censored input accepted")
	}
	if _, err := KaplanMeier(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestKMQuantile(t *testing.T) {
	obs := make([]Censored, 100)
	for i := range obs {
		obs[i] = Censored{Level: float64(i + 1)}
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := KMQuantile(curve, 0.05); !ok || v != 5 {
		t.Errorf("KMQuantile(0.05) = %v, %v", v, ok)
	}
	if v, ok := KMMedianLevel(curve); !ok || v != 50 {
		t.Errorf("median = %v, %v", v, ok)
	}
	if _, ok := KMQuantile(curve, 0); ok {
		t.Error("p=0 accepted")
	}
	// Heavy censoring: the median may be unreachable.
	obs2 := []Censored{{1, false}, {2, true}, {2, true}, {2, true}, {2, true}}
	curve2, err := KaplanMeier(obs2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := KMQuantile(curve2, 0.9); ok {
		t.Error("unreachable quantile reported")
	}
}

func TestKMDiscomfortAtBelowFirstEvent(t *testing.T) {
	curve, err := KaplanMeier([]Censored{{2, false}, {3, false}})
	if err != nil {
		t.Fatal(err)
	}
	if got := KMDiscomfortAt(curve, 1); got != 0 {
		t.Errorf("discomfort below first event = %v", got)
	}
}

func TestKaplanMeierInvariantsProperty(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		s := NewStream(seed)
		obs := make([]Censored, int(n%60)+2)
		hasEvent := false
		for i := range obs {
			obs[i] = Censored{Level: s.Range(0, 8), Censored: s.Bool(0.4)}
			if !obs[i].Censored {
				hasEvent = true
			}
		}
		curve, err := KaplanMeier(obs)
		if !hasEvent {
			return err != nil
		}
		if err != nil {
			return false
		}
		return ValidateKM(curve) == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
