package stats

import "math"

// LevelAccum is a mergeable, bounded-memory accumulator of discomfort
// levels — the streaming counterpart of CDF. Where CDF keeps every
// observed level (memory grows with the run count), LevelAccum folds
// each level into a fixed histogram plus fixed-point moment sums, so a
// million-host study can aggregate tens of millions of runs in a few
// kilobytes and merge per-worker partials into one global estimate.
//
// Every field is either an integer count or a fixed-point integer sum,
// so accumulation and merging are associative and commutative down to
// the last bit: folding runs one at a time, in blocks, or across any
// number of workers produces byte-identical aggregates. That invariant
// is what TestStreamingStudyMatchesBatch pins.
//
// Quantiles (Percentile) are resolved to histogram-bin resolution:
// (hi-lo)/bins, which at the default 2048 bins over [0, 10] is ~0.005
// contention — far below the paper's reporting precision.
type LevelAccum struct {
	// Lo and Hi bound the histogram's level range; observations are
	// clamped into it. Bins partition [Lo, Hi] uniformly.
	Lo, Hi float64
	// Bins counts discomforted runs per level bucket.
	Bins []uint32
	// Df and Ex count discomforted and exhausted (censored) runs.
	Df, Ex uint64
	// SumFx and Sum2Fx are fixed-point sums of levels and squared
	// levels over discomforted runs (scales sumScale and sum2Scale).
	// Integer sums keep merging exactly associative.
	SumFx, Sum2Fx uint64
	// MinLevel and MaxLevel are the exact observed extremes.
	MinLevel, MaxLevel float64
}

const (
	// sumScale is the fixed-point scale for level sums: 2^32 keeps
	// ~1e-10 absolute precision and fits 2^22 observations of level
	// 1024 before overflow — far beyond any study size here.
	sumScale = 1 << 32
	// sum2Scale is the scale for squared-level sums; levels are <= ~10
	// so 2^24 leaves headroom for 10^10 observations.
	sum2Scale = 1 << 24
)

// defaultAccumBins is the histogram resolution used by NewLevelAccum
// callers that do not need a custom range.
const defaultAccumBins = 2048

// NewLevelAccum returns an empty accumulator over [lo, hi] with the
// given number of bins (<= 0 selects the 2048-bin default).
func NewLevelAccum(lo, hi float64, bins int) *LevelAccum {
	if bins <= 0 {
		bins = defaultAccumBins
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &LevelAccum{Lo: lo, Hi: hi, Bins: make([]uint32, bins)}
}

// Observe folds one discomforted run's level into the accumulator.
func (a *LevelAccum) Observe(level float64) {
	if a.Df == 0 || level < a.MinLevel {
		a.MinLevel = level
	}
	if a.Df == 0 || level > a.MaxLevel {
		a.MaxLevel = level
	}
	clamped := level
	if clamped < a.Lo {
		clamped = a.Lo
	}
	if clamped > a.Hi {
		clamped = a.Hi
	}
	i := int((clamped - a.Lo) / (a.Hi - a.Lo) * float64(len(a.Bins)))
	if i >= len(a.Bins) {
		i = len(a.Bins) - 1
	}
	a.Bins[i]++
	a.Df++
	a.SumFx += uint64(clamped*sumScale + 0.5)
	a.Sum2Fx += uint64(clamped*clamped*sum2Scale + 0.5)
}

// ObserveExhausted folds one censored (ran-to-exhaustion) run.
func (a *LevelAccum) ObserveExhausted() { a.Ex++ }

// Merge folds other into a. Both must share Lo/Hi/bin geometry. Because
// every component is an integer sum, merge order cannot change the
// result.
func (a *LevelAccum) Merge(other *LevelAccum) {
	if other.Df > 0 {
		if a.Df == 0 || other.MinLevel < a.MinLevel {
			a.MinLevel = other.MinLevel
		}
		if a.Df == 0 || other.MaxLevel > a.MaxLevel {
			a.MaxLevel = other.MaxLevel
		}
	}
	for i, c := range other.Bins {
		a.Bins[i] += c
	}
	a.Df += other.Df
	a.Ex += other.Ex
	a.SumFx += other.SumFx
	a.Sum2Fx += other.Sum2Fx
}

// N returns the total number of folded runs.
func (a *LevelAccum) N() uint64 { return a.Df + a.Ex }

// Fd returns the discomfort fraction f_d, as in CDF.Fd.
func (a *LevelAccum) Fd() float64 {
	if a.N() == 0 {
		return 0
	}
	return float64(a.Df) / float64(a.N())
}

// MeanLevel returns c_a over discomforted runs, as in CDF.MeanLevel.
func (a *LevelAccum) MeanLevel() (float64, bool) {
	if a.Df == 0 {
		return 0, false
	}
	return float64(a.SumFx) / sumScale / float64(a.Df), true
}

// levelVariance returns the sample variance of the folded levels.
func (a *LevelAccum) levelVariance() float64 {
	if a.Df < 2 {
		return 0
	}
	n := float64(a.Df)
	mean := float64(a.SumFx) / sumScale / n
	sum2 := float64(a.Sum2Fx) / sum2Scale
	v := (sum2 - n*mean*mean) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

// TTestAgainst runs Welch's t-test between the discomfort levels folded
// into a and those folded into b, from their sufficient statistics —
// the streaming replacement for WelchTTest over raw level slices.
func (a *LevelAccum) TTestAgainst(b *LevelAccum) (TTestResult, error) {
	ma, _ := a.MeanLevel()
	mb, _ := b.MeanLevel()
	return WelchTTestSummary(int(a.Df), ma, a.levelVariance(), int(b.Df), mb, b.levelVariance())
}

// MeanLevelCI returns c_a with a two-sided 95% confidence interval
// (normal approximation; at streaming-study sample sizes the t and
// normal intervals are indistinguishable).
func (a *LevelAccum) MeanLevelCI() (mean, lo, hi float64, ok bool) {
	mean, ok = a.MeanLevel()
	if !ok {
		return 0, 0, 0, false
	}
	if a.Df < 2 {
		return mean, mean, mean, true
	}
	se := math.Sqrt(a.levelVariance() / float64(a.Df))
	return mean, mean - 1.96*se, mean + 1.96*se, true
}

// binUpper returns the upper level edge of bin i.
func (a *LevelAccum) binUpper(i int) float64 {
	return a.Lo + (a.Hi-a.Lo)*float64(i+1)/float64(len(a.Bins))
}

// At returns the cumulative fraction of all runs discomforted at level
// <= x, to bin resolution, as in CDF.At.
func (a *LevelAccum) At(x float64) float64 {
	if a.N() == 0 {
		return 0
	}
	var cum uint64
	for i, c := range a.Bins {
		if a.binUpper(i) > x {
			break
		}
		cum += uint64(c)
	}
	return float64(cum) / float64(a.N())
}

// Percentile returns c_p — the level at which fraction p of all runs
// have expressed discomfort — to bin resolution, with the same
// insufficient-information contract as CDF.Percentile.
func (a *LevelAccum) Percentile(p float64) (float64, bool) {
	if a.N() == 0 || p <= 0 {
		return 0, false
	}
	need := uint64(math.Ceil(p * float64(a.N())))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i, c := range a.Bins {
		cum += uint64(c)
		if cum >= need {
			return a.binUpper(i), true
		}
	}
	return 0, false
}

// BootstrapMeanCI estimates a (1-2q) bootstrap percentile interval for
// c_a by resampling the binned levels iters times with the given
// stream. It reports how tight the study's estimate is at a given fleet
// size — the convergence-vs-fleet-size methodology in EXPERIMENTS.md.
func (a *LevelAccum) BootstrapMeanCI(s *Stream, iters int, q float64) (lo, hi float64, ok bool) {
	if a.Df == 0 || iters <= 0 {
		return 0, 0, false
	}
	// Bin centers weighted by counts; resampling n of them with
	// replacement is a multinomial draw over the histogram.
	centers := make([]float64, 0, len(a.Bins))
	counts := make([]uint64, 0, len(a.Bins))
	var cum []uint64
	var total uint64
	for i, c := range a.Bins {
		if c == 0 {
			continue
		}
		centers = append(centers, a.Lo+(a.Hi-a.Lo)*(float64(i)+0.5)/float64(len(a.Bins)))
		counts = append(counts, uint64(c))
		total += uint64(c)
		cum = append(cum, total)
	}
	means := make([]float64, iters)
	for it := 0; it < iters; it++ {
		var sum float64
		for k := uint64(0); k < total; k++ {
			u := uint64(s.Float64() * float64(total))
			// Binary search the cumulative counts for the drawn index.
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] <= u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			sum += centers[lo]
		}
		means[it] = sum / float64(total)
	}
	if q <= 0 || q >= 0.5 {
		q = 0.025
	}
	return Quantile(means, q), Quantile(means, 1-q), true
}

// Render draws the accumulator's CDF as an ASCII plot in the style of
// CDF.Render, annotated with the same DfCount/ExCount counters.
func (a *LevelAccum) Render(title string, width, height int, xmax float64) string {
	if xmax <= 0 {
		xmax = a.MaxLevel
		if xmax <= 0 {
			xmax = 1
		}
	}
	return renderCDF(title, width, height, xmax, a.At, int(a.Df), int(a.Ex))
}
