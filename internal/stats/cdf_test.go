package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{0.5, 1.0, 2.0, 3.0}, 4)
	if c.DfCount() != 4 || c.ExCount() != 4 || c.N() != 8 {
		t.Fatalf("counts: df=%d ex=%d n=%d", c.DfCount(), c.ExCount(), c.N())
	}
	if got := c.Fd(); got != 0.5 {
		t.Errorf("Fd = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(1.0); got != 0.25 {
		t.Errorf("At(1.0) = %v, want 0.25", got)
	}
	if got := c.At(10); got != 0.5 {
		t.Errorf("At(10) = %v, want Fd = 0.5", got)
	}
}

func TestCDFAtIsInclusive(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2}, 0)
	if got := c.At(1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("At(1) = %v, want 2/3 (inclusive)", got)
	}
}

func TestCDFPercentile(t *testing.T) {
	levels := make([]float64, 100)
	for i := range levels {
		levels[i] = float64(i + 1) // 1..100
	}
	c := NewCDF(levels, 0)
	if v, ok := c.Percentile(0.05); !ok || v != 5 {
		t.Errorf("Percentile(0.05) = %v, %v; want 5, true", v, ok)
	}
	if v, ok := c.Percentile(1.0); !ok || v != 100 {
		t.Errorf("Percentile(1.0) = %v, %v; want 100, true", v, ok)
	}
}

func TestCDFPercentileCensored(t *testing.T) {
	// 5 discomforts among 100 runs: the 5% level exists, but 10% does not —
	// the paper's "insufficient information" (*) case.
	c := NewCDF([]float64{1, 2, 3, 4, 5}, 95)
	if v, ok := c.Percentile(0.05); !ok || v != 5 {
		t.Errorf("Percentile(0.05) = %v, %v; want 5, true", v, ok)
	}
	if _, ok := c.Percentile(0.10); ok {
		t.Error("Percentile(0.10) should be unavailable with f_d = 0.05")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil, 0)
	if c.Fd() != 0 || c.At(1) != 0 {
		t.Error("empty CDF should report zero everywhere")
	}
	if _, ok := c.Percentile(0.05); ok {
		t.Error("empty CDF has no percentile")
	}
	if _, ok := c.MeanLevel(); ok {
		t.Error("empty CDF has no mean level")
	}
}

func TestCDFMeanLevelCI(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5}, 10)
	mean, lo, hi, ok := c.MeanLevelCI()
	if !ok {
		t.Fatal("MeanLevelCI unavailable")
	}
	if mean != 3 {
		t.Errorf("mean = %v, want 3", mean)
	}
	if !(lo < mean && mean < hi) {
		t.Errorf("CI [%v, %v] does not bracket mean %v", lo, hi, mean)
	}
	// 95% CI for {1..5}: half-width = t_{0.975,4} * sd/sqrt(5) ≈ 2.776*1.581/2.236 ≈ 1.963.
	if math.Abs((hi-lo)/2-1.963) > 0.01 {
		t.Errorf("CI half-width = %v, want ~1.963", (hi-lo)/2)
	}
}

func TestCDFMerge(t *testing.T) {
	a := NewCDF([]float64{1, 3}, 2)
	b := NewCDF([]float64{2}, 1)
	m := a.Merge(b)
	if m.DfCount() != 3 || m.ExCount() != 3 {
		t.Fatalf("merge counts: df=%d ex=%d", m.DfCount(), m.ExCount())
	}
	if got := m.Levels(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("merged levels not sorted: %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	check := func(seed uint64, nLevels, nEx uint8) bool {
		s := NewStream(seed)
		levels := make([]float64, int(nLevels%40)+1)
		for i := range levels {
			levels[i] = s.Range(0, 10)
		}
		c := NewCDF(levels, int(nEx%20))
		prev := -1.0
		for x := 0.0; x <= 11; x += 0.25 {
			v := c.At(x)
			if v < prev || v < 0 || v > c.Fd()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPercentileConsistentWithAt(t *testing.T) {
	check := func(seed uint64, nLevels uint8) bool {
		s := NewStream(seed)
		levels := make([]float64, int(nLevels%40)+5)
		for i := range levels {
			levels[i] = s.Range(0, 10)
		}
		c := NewCDF(levels, 10)
		for _, p := range []float64{0.05, 0.1, 0.25} {
			v, ok := c.Percentile(p)
			if !ok {
				continue
			}
			if c.At(v) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFRender(t *testing.T) {
	c := NewCDF([]float64{0.5, 1, 1.5, 2}, 2)
	out := c.Render("CPU", 40, 8, 0)
	if !strings.Contains(out, "DfCount=4") || !strings.Contains(out, "ExCount=2") {
		t.Errorf("render missing counts:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("render contains no plot points")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // title + 8 rows + axis + label
		t.Errorf("render has %d lines, want 11:\n%s", len(lines), out)
	}
}

func TestCDFRenderEmptyDoesNotPanic(t *testing.T) {
	c := NewCDF(nil, 0)
	if out := c.Render("empty", 30, 6, 0); out == "" {
		t.Error("empty render produced no output")
	}
}
