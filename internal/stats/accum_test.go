package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestLevelAccumMatchesCDF checks the streaming accumulator against the
// exact CDF on the same data: counts and f_d agree exactly, means agree
// to fixed-point precision, and quantiles agree to bin resolution.
func TestLevelAccumMatchesCDF(t *testing.T) {
	s := NewStream(11)
	a := NewLevelAccum(0, 10, 2048)
	var levels []float64
	for i := 0; i < 5000; i++ {
		if s.Bool(0.3) {
			a.ObserveExhausted()
			continue
		}
		lvl := s.Range(0, 9.5)
		levels = append(levels, lvl)
		a.Observe(lvl)
	}
	exhausted := 5000 - len(levels)
	c := NewCDF(levels, exhausted)

	if int(a.Df) != c.DfCount() || int(a.Ex) != c.ExCount() {
		t.Fatalf("counts: accum %d/%d, cdf %d/%d", a.Df, a.Ex, c.DfCount(), c.ExCount())
	}
	if math.Abs(a.Fd()-c.Fd()) > 1e-12 {
		t.Errorf("Fd: accum %v, cdf %v", a.Fd(), c.Fd())
	}
	am, _ := a.MeanLevel()
	cm, _ := c.MeanLevel()
	if math.Abs(am-cm) > 1e-6 {
		t.Errorf("mean: accum %v, cdf %v", am, cm)
	}
	binW := 10.0 / 2048
	for _, p := range []float64{0.05, 0.25, 0.5, 0.9} {
		ap, aok := a.Percentile(p)
		cp, cok := c.Percentile(p)
		if aok != cok {
			t.Fatalf("p=%v ok mismatch", p)
		}
		if aok && math.Abs(ap-cp) > binW+1e-12 {
			t.Errorf("p=%v: accum %v, cdf %v (bin width %v)", p, ap, cp, binW)
		}
	}
	for _, x := range []float64{0.5, 2, 5, 9} {
		if math.Abs(a.At(x)-c.At(x)) > 0.01 {
			t.Errorf("At(%v): accum %v, cdf %v", x, a.At(x), c.At(x))
		}
	}
}

// TestLevelAccumMergeOrderIndependent asserts the bit-exactness
// contract: folding observations one by one, in two halves, or across
// many partials merged in any order produces identical accumulators.
func TestLevelAccumMergeOrderIndependent(t *testing.T) {
	s := NewStream(5)
	obs := make([]float64, 4000)
	for i := range obs {
		obs[i] = s.Range(0, 8)
	}

	serial := NewLevelAccum(0, 10, 512)
	for _, o := range obs {
		serial.Observe(o)
	}
	serial.ObserveExhausted()

	parts := make([]*LevelAccum, 7)
	for i := range parts {
		parts[i] = NewLevelAccum(0, 10, 512)
	}
	for i, o := range obs {
		parts[i%len(parts)].Observe(o)
	}
	parts[3].ObserveExhausted()
	// Merge back-to-front, the opposite of the natural order.
	merged := NewLevelAccum(0, 10, 512)
	for i := len(parts) - 1; i >= 0; i-- {
		merged.Merge(parts[i])
	}
	if !reflect.DeepEqual(serial, merged) {
		t.Fatalf("merge order changed the accumulator:\nserial: %+v\nmerged: %+v", serial, merged)
	}
}

// TestLevelAccumEmpty pins the empty-accumulator contract.
func TestLevelAccumEmpty(t *testing.T) {
	a := NewLevelAccum(0, 10, 64)
	if a.Fd() != 0 || a.N() != 0 {
		t.Errorf("empty accum: Fd=%v N=%v", a.Fd(), a.N())
	}
	if _, ok := a.MeanLevel(); ok {
		t.Error("empty accum has a mean")
	}
	if _, ok := a.Percentile(0.05); ok {
		t.Error("empty accum has a percentile")
	}
	if _, _, ok := a.BootstrapMeanCI(NewStream(1), 10, 0.025); ok {
		t.Error("empty accum has a bootstrap CI")
	}
}

// TestLevelAccumClamp checks out-of-range levels land in the edge bins
// while the exact extremes are still tracked.
func TestLevelAccumClamp(t *testing.T) {
	a := NewLevelAccum(0, 1, 16)
	a.Observe(-0.5)
	a.Observe(2.5)
	if a.Bins[0] != 1 || a.Bins[15] != 1 {
		t.Errorf("edge bins: %v", a.Bins)
	}
	if a.MinLevel != -0.5 || a.MaxLevel != 2.5 {
		t.Errorf("extremes: %v..%v", a.MinLevel, a.MaxLevel)
	}
}

// TestLevelAccumBootstrapCI sanity-checks the bootstrap interval:
// covers the true mean, and tightens with more data.
func TestLevelAccumBootstrapCI(t *testing.T) {
	build := func(n int) *LevelAccum {
		s := NewStream(9)
		a := NewLevelAccum(0, 10, 1024)
		for i := 0; i < n; i++ {
			a.Observe(s.Range(2, 6))
		}
		return a
	}
	small, large := build(100), build(5000)
	sLo, sHi, ok := small.BootstrapMeanCI(NewStream(3), 200, 0.025)
	if !ok {
		t.Fatal("no CI from small accum")
	}
	lLo, lHi, ok := large.BootstrapMeanCI(NewStream(3), 200, 0.025)
	if !ok {
		t.Fatal("no CI from large accum")
	}
	if sLo > 4 || sHi < 4 {
		t.Errorf("small CI [%v, %v] misses true mean 4", sLo, sHi)
	}
	if (lHi - lLo) >= (sHi - sLo) {
		t.Errorf("CI did not shrink with data: small %v, large %v", sHi-sLo, lHi-lLo)
	}
	mean, lo, hi, ok := large.MeanLevelCI()
	if !ok || lo > mean || hi < mean {
		t.Errorf("analytic CI inconsistent: %v [%v, %v]", mean, lo, hi)
	}
}

// TestLevelAccumRender smoke-tests the shared plotter.
func TestLevelAccumRender(t *testing.T) {
	a := NewLevelAccum(0, 10, 128)
	for i := 0; i < 100; i++ {
		a.Observe(float64(i) / 10)
	}
	out := a.Render("test", 40, 8, 0)
	if out == "" || len(out) < 100 {
		t.Fatalf("implausible render: %q", out)
	}
}

// TestDeriveSeedIndependence checks index-derived seeds look
// independent and are a pure function of (seed, idx).
func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := DeriveSeed(42, i)
		if seen[v] {
			t.Fatalf("collision at idx %d", i)
		}
		seen[v] = true
		if v != DeriveSeed(42, i) {
			t.Fatal("DeriveSeed not deterministic")
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("seeds do not separate streams")
	}
	// DeriveSeed(seed, i) is defined as the i'th output of the stream.
	s := NewStream(42)
	for i := uint64(0); i < 8; i++ {
		if got, want := DeriveSeed(42, i), s.Uint64(); got != want {
			t.Fatalf("DeriveSeed(42, %d) = %x, stream output %x", i, got, want)
		}
	}
}
