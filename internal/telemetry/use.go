package telemetry

import (
	"math"
	"time"
)

// Axis is one of the three USE axes.
type Axis string

const (
	// Utilization — how busy a resource is (time or acquisitions spent
	// doing work).
	Utilization Axis = "utilization"
	// Saturation — how much work is queued behind a resource (depths,
	// backlogs, occupancy).
	Saturation Axis = "saturation"
	// Errors — what is failing (rejects, poison, dedup churn).
	Errors Axis = "errors"
)

// SaturationThreshold is the pressure at or above which the health
// verdict names a resource as saturated instead of reporting "none".
const SaturationThreshold = 0.5

// Healthy is the verdict when no resource crosses SaturationThreshold.
const Healthy = "none"

// Sample is one USE metric reading: a resource, the axis it speaks to,
// a value, and a normalized pressure in [0, 1] — the resource's
// contribution to the saturation verdict (0 for purely informational
// rows). Pressures are comparable across resources by construction:
// 1.0 means "this resource is fully saturated / failing".
type Sample struct {
	Resource string  `json:"resource"`
	Axis     Axis    `json:"axis"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Unit     string  `json:"unit,omitempty"`
	Pressure float64 `json:"pressure"`
	Detail   string  `json:"detail,omitempty"`
}

// Snapshot is a point-in-time USE reading of a system: every sample,
// plus the derived health score and saturation verdict. Build one by
// appending samples and calling Finalize.
type Snapshot struct {
	// Taken is when the snapshot was assembled.
	Taken time.Time `json:"taken"`
	// Node names the cluster node this snapshot was taken from; empty
	// for a standalone server. MergeSnapshots prefixes sample resources
	// with it so a cluster verdict names which node saturated.
	Node string `json:"node,omitempty"`
	// Uptime is how long the measured system has been running —
	// lifetime pressures (busy fractions) are normalized by it.
	Uptime time.Duration `json:"uptime_ns"`
	// Samples are the USE rows, in the order they were added
	// (conventionally: utilization, saturation, errors).
	Samples []Sample `json:"samples"`
	// Score is the 0–100 health score: 100·(1 − max pressure).
	Score int `json:"score"`
	// Saturated names the resource with the highest pressure when that
	// pressure reaches SaturationThreshold, else Healthy ("none"). This
	// is the answer to "which resource do I go look at".
	Saturated string `json:"saturated"`
}

// Add appends one sample, clamping its pressure into [0, 1] (NaN
// clamps to 0 so a 0/0 ratio cannot poison the verdict).
func (s *Snapshot) Add(sm Sample) {
	if math.IsNaN(sm.Pressure) {
		sm.Pressure = 0
	}
	if sm.Pressure < 0 {
		sm.Pressure = 0
	}
	if sm.Pressure > 1 {
		sm.Pressure = 1
	}
	s.Samples = append(s.Samples, sm)
}

// Finalize computes Score and Saturated from the accumulated samples.
// With no samples the system is healthy: score 100, verdict "none".
// Ties go to the earliest sample, so callers should append rows in
// blame-priority order.
func (s *Snapshot) Finalize() {
	maxP := 0.0
	verdict := Healthy
	for _, sm := range s.Samples {
		if sm.Pressure > maxP {
			maxP = sm.Pressure
			if sm.Pressure >= SaturationThreshold {
				verdict = sm.Resource
			}
		}
	}
	s.Score = int(math.Round(100 * (1 - maxP)))
	s.Saturated = verdict
}

// MaxPressure returns the highest sample pressure (0 with no samples).
func (s *Snapshot) MaxPressure() float64 {
	maxP := 0.0
	for _, sm := range s.Samples {
		if sm.Pressure > maxP {
			maxP = sm.Pressure
		}
	}
	return maxP
}

// Ratio is a safe a/b that returns 0 when b is 0, for pressure and
// utilization fractions built from counters that may not have moved.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
