package telemetry

import (
	"math"
	"sort"
	"testing"
)

// TestCounterMonotonic: a counter only ever moves up, by exactly what
// was added.
func TestCounterMonotonic(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero counter loads %d", c.Load())
	}
	total := uint64(0)
	prev := uint64(0)
	for _, n := range []uint64{1, 0, 7, 1 << 40, 3} {
		c.Add(n)
		total += n
		if got := c.Load(); got != total {
			t.Errorf("after Add(%d): got %d, want %d", n, got, total)
		}
		if c.Load() < prev {
			t.Errorf("counter went backwards: %d < %d", c.Load(), prev)
		}
		prev = c.Load()
	}
	c.Inc()
	if got := c.Load(); got != total+1 {
		t.Errorf("Inc: got %d, want %d", got, total+1)
	}
}

// TestGaugeWatermark: the gauge tracks its current level exactly and
// its high-watermark permanently.
func TestGaugeWatermark(t *testing.T) {
	var g Gauge
	steps := []struct {
		d        int64
		now, max int64
	}{
		{+3, 3, 3},
		{+4, 7, 7},
		{-5, 2, 7},
		{+1, 3, 7},
		{-3, 0, 7},
		{+9, 9, 9},
		{-9, 0, 9},
	}
	for i, s := range steps {
		if got := g.Add(s.d); got != s.now {
			t.Errorf("step %d: Add(%d) = %d, want %d", i, s.d, got, s.now)
		}
		if g.Load() != s.now {
			t.Errorf("step %d: Load = %d, want %d", i, g.Load(), s.now)
		}
		if g.Max() != s.max {
			t.Errorf("step %d: Max = %d, want %d", i, g.Max(), s.max)
		}
	}
}

// exactQuantile is the reference nearest-rank quantile over a full
// sorted copy — the definition the ring must match while its window
// still holds every sample.
func exactQuantile(samples []int64, q float64) int64 {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(float64(len(s))*q)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestRingQuantilesMatchExactSort: for sample counts at or below the
// ring capacity, ring quantiles are exact — identical to sorting all
// samples and taking the nearest rank.
func TestRingQuantilesMatchExactSort(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
	}{
		{"single", []int64{42}},
		{"two", []int64{9, 1}},
		{"small-desc", []int64{50, 40, 30, 20, 10}},
		{"dups", []int64{5, 5, 5, 1, 9, 5}},
		{"hundred", func() []int64 {
			s := make([]int64, 100)
			for i := range s {
				s[i] = int64((i * 7919) % 1000) // deterministic scramble
			}
			return s
		}()},
		{"full-ring", func() []int64 {
			s := make([]int64, ringSize)
			for i := range s {
				s[i] = int64((i * 104729) % 100000)
			}
			return s
		}()},
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Ring
			for _, v := range tc.samples {
				r.Observe(v)
			}
			if r.Count() != uint64(len(tc.samples)) {
				t.Fatalf("Count = %d, want %d", r.Count(), len(tc.samples))
			}
			got := r.Quantiles(qs...)
			for i, q := range qs {
				want := exactQuantile(tc.samples, q)
				if got[i] != want {
					t.Errorf("q%.2f = %d, want %d (exact sort)", q, got[i], want)
				}
			}
		})
	}
}

// TestRingOverwritesOldest: past capacity the ring holds the most
// recent window, so quantiles reflect recent behavior only.
func TestRingOverwritesOldest(t *testing.T) {
	var r Ring
	// Fill with zeros, then overwrite the whole window with 100s.
	for i := 0; i < ringSize; i++ {
		r.Observe(0)
	}
	for i := 0; i < ringSize; i++ {
		r.Observe(100)
	}
	if got := r.Quantiles(0.5)[0]; got != 100 {
		t.Errorf("median after full overwrite = %d, want 100", got)
	}
	if r.Count() != 2*ringSize {
		t.Errorf("Count = %d, want %d", r.Count(), 2*ringSize)
	}
	if len(r.Samples()) != ringSize {
		t.Errorf("retained %d samples, want %d", len(r.Samples()), ringSize)
	}
}

// TestEmptyRingQuantiles: no samples means zero quantiles, not a panic.
func TestEmptyRingQuantiles(t *testing.T) {
	var r Ring
	for _, q := range r.Quantiles(0, 0.5, 1) {
		if q != 0 {
			t.Errorf("empty ring quantile = %d, want 0", q)
		}
	}
}

// TestHealthScoreBoundaries: the score/verdict derivation at its edges
// — empty snapshot, sub-threshold pressure, the exact threshold, full
// saturation, clamping, NaN, and tie-breaking.
func TestHealthScoreBoundaries(t *testing.T) {
	mk := func(pressures ...float64) *Snapshot {
		s := &Snapshot{}
		for i, p := range pressures {
			s.Add(Sample{Resource: string(rune('a' + i)), Axis: Saturation, Metric: "m", Pressure: p})
		}
		s.Finalize()
		return s
	}
	cases := []struct {
		name      string
		snap      *Snapshot
		score     int
		saturated string
	}{
		{"empty", mk(), 100, Healthy},
		{"all-zero", mk(0, 0), 100, Healthy},
		{"below-threshold", mk(0.49), 51, Healthy},
		{"at-threshold", mk(0.5), 50, "a"},
		{"above-threshold", mk(0.25, 0.75), 25, "b"},
		{"fully-saturated", mk(1.0), 0, "a"},
		{"clamped-above-one", mk(17.0), 0, "a"},
		{"clamped-below-zero", mk(-3.0), 100, Healthy},
		{"nan-ignored", mk(math.NaN(), 0.6), 40, "b"},
		{"tie-goes-first", mk(0.8, 0.8), 20, "a"},
		{"rounding", mk(0.333), 67, Healthy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.snap.Score != tc.score {
				t.Errorf("score = %d, want %d", tc.snap.Score, tc.score)
			}
			if tc.snap.Saturated != tc.saturated {
				t.Errorf("saturated = %q, want %q", tc.snap.Saturated, tc.saturated)
			}
		})
	}
}

// TestRatioSafeDivide: Ratio never divides by zero.
func TestRatioSafeDivide(t *testing.T) {
	if got := Ratio(5, 0); got != 0 {
		t.Errorf("Ratio(5,0) = %g, want 0", got)
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio(1,4) = %g, want 0.25", got)
	}
}

// TestMaxPressure: reports the max even when below the verdict
// threshold.
func TestMaxPressure(t *testing.T) {
	s := &Snapshot{}
	s.Add(Sample{Resource: "a", Pressure: 0.2})
	s.Add(Sample{Resource: "b", Pressure: 0.4})
	if got := s.MaxPressure(); got != 0.4 {
		t.Errorf("MaxPressure = %g, want 0.4", got)
	}
}
