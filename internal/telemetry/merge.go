package telemetry

import "time"

// MergeSnapshots folds per-node USE snapshots into one cluster-wide
// snapshot. Every sample is kept, its resource prefixed with the node
// name ("n1/journal-fsync"), so the finalized verdict names which
// node's resource saturated. Order of the input snapshots is the
// display order; within a node, sample order is preserved (blame
// priority carries over). Nil snapshots are skipped. Taken is the
// latest input Taken; Uptime the longest input uptime.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	merged := &Snapshot{Node: "cluster"}
	for i, sn := range snaps {
		if sn == nil {
			continue
		}
		if sn.Taken.After(merged.Taken) {
			merged.Taken = sn.Taken
		}
		if sn.Uptime > merged.Uptime {
			merged.Uptime = sn.Uptime
		}
		node := sn.Node
		if node == "" {
			node = nodeName(i)
		}
		for _, sm := range sn.Samples {
			sm.Resource = node + "/" + sm.Resource
			merged.Add(sm)
		}
	}
	if merged.Taken.IsZero() {
		merged.Taken = time.Now()
	}
	merged.Finalize()
	return merged
}

// nodeName labels an anonymous snapshot by its merge position.
func nodeName(i int) string {
	const digits = "0123456789"
	if i < 10 {
		return "node" + digits[i:i+1]
	}
	return "node" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}
