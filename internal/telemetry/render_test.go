package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden table snapshots in testdata/")

// goldenSnapshot is a fixed snapshot exercising every rendering branch:
// each axis, every formatValue unit path (ns, frac, counted unit,
// fractional unit, unitless), a zero-pressure informational row, and a
// verdict-carrying row.
func goldenSnapshot() *Snapshot {
	s := &Snapshot{
		Taken:  time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Uptime: 90*time.Second + 125*time.Millisecond,
	}
	s.Add(Sample{
		Resource: "shard-locks", Axis: Utilization, Metric: "contended acquisitions",
		Value: 0.031, Unit: "frac", Pressure: 0.031, Detail: "4120 of 132910 Lock() calls waited",
	})
	s.Add(Sample{
		Resource: "journal-fsync", Axis: Utilization, Metric: "flush busy fraction",
		Value: 0.984, Unit: "frac", Pressure: 0.984, Detail: "device at capacity",
	})
	s.Add(Sample{
		Resource: "journal-fsync", Axis: Saturation, Metric: "flush latency p50",
		Value: 8_212_000, Unit: "ns", Pressure: 0, Detail: "p90 9.1ms p99 12.4ms",
	})
	s.Add(Sample{
		Resource: "journal-queue", Axis: Saturation, Metric: "peak depth",
		Value: 96, Unit: "ops", Pressure: 0.75, Detail: "cap 128",
	})
	s.Add(Sample{
		Resource: "journal-batch", Axis: Saturation, Metric: "mean occupancy",
		Value: 27.5, Unit: "ops", Pressure: 0.215,
	})
	s.Add(Sample{
		Resource: "shard-balance", Axis: Saturation, Metric: "hottest/mean",
		Value: 1.62, Pressure: 0,
	})
	s.Add(Sample{
		Resource: "dedup", Axis: Errors, Metric: "duplicate batches",
		Value: 12, Unit: "batches", Pressure: 0.0009,
	})
	s.Finalize()
	return s
}

// TestWriteTableGolden pins the exact table rendering — the same bytes
// the /telemetry page, uucs-top and the loadgen report all print.
func TestWriteTableGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "use_table.golden", buf.String())
}

// TestWriteTableEmptyGolden pins the degenerate rendering: a fresh
// server with no samples is healthy, not blank.
func TestWriteTableEmptyGolden(t *testing.T) {
	s := &Snapshot{Uptime: 3 * time.Second}
	s.Finalize()
	var buf bytes.Buffer
	if err := WriteTable(&buf, s); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "use_table_empty.golden", buf.String())
}

func compareGolden(t *testing.T, file, got string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/telemetry -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("table drifted from golden %s.\n--- got\n%s\n--- want\n%s\nIf the change is intentional, rerun with -update.",
			path, got, want)
	}
}

// TestHandlerTableAndJSON: the HTTP handler serves the table by
// default and a decodable JSON snapshot with ?format=json, reading
// fresh state per request.
func TestHandlerTableAndJSON(t *testing.T) {
	calls := 0
	h := Handler(func() *Snapshot {
		calls++
		return goldenSnapshot()
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("table Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "USE health") {
		t.Errorf("table response missing header: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json response does not decode: %v", err)
	}
	want := goldenSnapshot()
	if snap.Score != want.Score || snap.Saturated != want.Saturated {
		t.Errorf("decoded %d/%q, want %d/%q", snap.Score, snap.Saturated, want.Score, want.Saturated)
	}
	if len(snap.Samples) != len(want.Samples) {
		t.Errorf("decoded %d samples, want %d", len(snap.Samples), len(want.Samples))
	}
	if calls != 2 {
		t.Errorf("snap called %d times for 2 requests", calls)
	}
}
