package telemetry

import (
	"sync"
	"testing"
)

// 64 goroutines hammer every collector while a reader concurrently
// takes quantile snapshots. Run under -race this is the proof that the
// collectors need no locks; the final assertions prove no update was
// lost (counters and gauge levels are exact even under contention).
func TestCollectorsConcurrent(t *testing.T) {
	const (
		goroutines = 64
		perG       = 2000
	)
	var (
		c Counter
		g Gauge
		r Ring
	)

	// Concurrent reader: quantiles and watermarks mid-stream must be
	// internally consistent, never a crash or a torn value.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			qs := r.Quantiles(0.5, 0.99)
			if qs[0] > qs[1] {
				t.Errorf("p50 %d > p99 %d in a live snapshot", qs[0], qs[1])
				return
			}
			if g.Load() > g.Max() {
				t.Errorf("gauge level %d above its watermark %d", g.Load(), g.Max())
				return
			}
			_ = c.Load()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(1)
				g.Add(+1)
				r.Observe(int64(i*perG + j + 1)) // all positive
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got, want := c.Load(), uint64(goroutines*perG); got != want {
		t.Errorf("counter lost updates: %d, want %d", got, want)
	}
	if g.Load() != 0 {
		t.Errorf("gauge level %d after balanced adds, want 0", g.Load())
	}
	if g.Max() < 1 || g.Max() > goroutines {
		t.Errorf("gauge watermark %d outside [1, %d]", g.Max(), goroutines)
	}
	if got, want := r.Count(), uint64(goroutines*perG); got != want {
		t.Errorf("ring observed %d samples, want %d", got, want)
	}
	for _, v := range r.Samples() {
		if v <= 0 || v > int64(goroutines*perG) {
			t.Errorf("ring retained out-of-range sample %d", v)
		}
	}
}
