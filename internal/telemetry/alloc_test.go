package telemetry

import "testing"

// The collectors exist to sit on the ingest hot path — one per shard
// lock acquisition, one per journaled op, one per fsync. Their whole
// value proposition is "one atomic op, zero allocations", so the
// ceiling here is exactly 0: any heap traffic in an update method is a
// regression that would show up as measurement perturbing the thing
// being measured.

func TestCounterAddAllocs(t *testing.T) {
	var c Counter
	if avg := testing.AllocsPerRun(1000, func() { c.Add(3) }); avg != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { c.Inc() }); avg != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", avg)
	}
}

func TestGaugeAddAllocs(t *testing.T) {
	var g Gauge
	if avg := testing.AllocsPerRun(1000, func() { g.Add(1); g.Add(-1) }); avg != 0 {
		t.Errorf("Gauge.Add allocates %.1f/op, want 0", avg)
	}
}

func TestRingObserveAllocs(t *testing.T) {
	var r Ring
	v := int64(0)
	if avg := testing.AllocsPerRun(1000, func() { v++; r.Observe(v) }); avg != 0 {
		t.Errorf("Ring.Observe allocates %.1f/op, want 0", avg)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
		g.Add(-1)
	}
}

func BenchmarkRingObserve(b *testing.B) {
	var r Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(int64(i))
	}
}
