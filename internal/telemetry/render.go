package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Table and JSON rendering for a Snapshot, shared by the server's
// /telemetry debug page, uucs-top, and the loadgen end-of-run report —
// one renderer so the golden-output test pins every consumer at once.

// WriteTable renders the snapshot as a fixed-width text table grouped
// by USE axis, headed by the health score and the saturation verdict.
func WriteTable(w io.Writer, s *Snapshot) error {
	verdict := s.Saturated
	if verdict == Healthy {
		verdict = "none (healthy)"
	}
	if _, err := fmt.Fprintf(w, "USE health %d/100  saturated: %s  uptime %s\n",
		s.Score, verdict, s.Uptime.Round(time.Millisecond)); err != nil {
		return err
	}
	if len(s.Samples) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %-16s %-28s %12s %9s  %s\n",
		"AXIS", "RESOURCE", "METRIC", "VALUE", "PRESSURE", "DETAIL"); err != nil {
		return err
	}
	for _, sm := range s.Samples {
		if _, err := fmt.Fprintf(w, "%-12s %-16s %-28s %12s %8.0f%%  %s\n",
			sm.Axis, sm.Resource, sm.Metric, formatValue(sm.Value, sm.Unit),
			100*sm.Pressure, sm.Detail); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders a sample value with its unit: nanosecond values
// become humanized durations, fractions become percentages, counts
// print as integers, anything else as a compact float.
func formatValue(v float64, unit string) string {
	switch unit {
	case "ns":
		return time.Duration(v).Round(time.Microsecond).String()
	case "frac":
		return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
	case "":
		return strconv.FormatFloat(v, 'g', 4, 64)
	default:
		if v == float64(int64(v)) {
			return strconv.FormatInt(int64(v), 10) + " " + unit
		}
		return strconv.FormatFloat(v, 'g', 4, 64) + " " + unit
	}
}

// Handler serves snapshots over HTTP: a text table by default, JSON
// with ?format=json (what uucs-top consumes). snap is called per
// request, so the page always reads fresh counters.
func Handler(snap func() *Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(s)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteTable(w, s)
	})
}
