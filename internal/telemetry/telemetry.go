// Package telemetry is UUCS's USE-method observability layer: small,
// lock-free collectors (Counter, Gauge, Ring) that the server's ingest
// hot path can update for the cost of an atomic operation, and a
// Snapshot that organizes their readings along Brendan Gregg's three
// USE axes — Utilization (how busy is each resource), Saturation (how
// much work is queued behind it), Errors (what is failing) — with a
// single 0–100 health score that names the saturated resource.
//
// The design constraint is that *measuring must not perturb the
// measurement*: every collector write is one atomic instruction and
// zero allocations, so instrumentation can live inside the shard lock
// acquisition, the journal group-commit loop, and the ack release path
// without showing up in the profiles it exists to explain. All
// aggregation (sorting latency samples, computing quantiles and
// pressures) happens on the cold snapshot path.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic accumulator. The zero
// value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic level indicator (queue depths, backlogs): Add
// moves the current value up or down, and the high-watermark of every
// value the gauge ever reached is retained — saturation diagnosis
// cares about the worst depth, not the instantaneous one. The zero
// value is ready to use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by d (negative to decrease) and returns the new
// value, updating the high-watermark when the new value exceeds it.
func (g *Gauge) Add(d int64) int64 {
	n := g.v.Add(d)
	if d > 0 {
		for {
			m := g.max.Load()
			if n <= m || g.max.CompareAndSwap(m, n) {
				break
			}
		}
	}
	return n
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-watermark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// ringSize is the Ring sample capacity: a power of two so the write
// cursor wraps with a mask, and large enough that quantiles over the
// retained window are stable.
const ringSize = 1024

// Ring is a lock-free sliding-window sample reservoir: Observe stores
// a value at an atomically claimed cursor position, overwriting the
// oldest sample once the ring is full, so it always holds the most
// recent min(Count, Cap) observations. Writers never block and never
// allocate; concurrent writers may interleave their slots but never
// tear a sample (each cell is a single atomic). Quantile reads are
// approximate while writers are active — an in-flight Observe can
// replace a sample mid-snapshot — which is the right trade for a
// latency distribution: the answer is statistics, not ledger state.
// The zero value is ready to use.
type Ring struct {
	n     atomic.Uint64
	cells [ringSize]atomic.Int64
}

// Observe records one sample (typically a latency in nanoseconds).
func (r *Ring) Observe(v int64) {
	i := r.n.Add(1) - 1
	r.cells[i&(ringSize-1)].Store(v)
}

// Count returns how many samples were ever observed (not capped at the
// ring capacity).
func (r *Ring) Count() uint64 { return r.n.Load() }

// Cap returns the number of samples the ring retains.
func (r *Ring) Cap() int { return ringSize }

// Samples copies out the retained window, unordered. It allocates and
// is meant for the snapshot path only.
func (r *Ring) Samples() []int64 {
	n := r.n.Load()
	if n > ringSize {
		n = ringSize
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.cells[i].Load()
	}
	return out
}

// Quantiles returns the nearest-rank quantiles of the retained window
// for each q in qs (each in [0, 1]), in one sort. With no samples every
// quantile is zero. For sample counts at or below the ring capacity the
// window is the full history, so the result is exact — the property the
// unit tests pin against a plain sort.
func (r *Ring) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	s := r.Samples()
	if len(s) == 0 {
		return out
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// quantileSorted returns the nearest-rank q-quantile of a sorted slice:
// the smallest sample such that at least q·n samples are ≤ it.
func quantileSorted(s []int64, q float64) int64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(float64(len(s))*q)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// ObserveDuration records a latency sample.
func (r *Ring) ObserveDuration(d time.Duration) { r.Observe(int64(d)) }
