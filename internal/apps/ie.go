package apps

import (
	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// IEParams parameterizes the Internet Explorer model. The study task was
// reading a news site, searching for related material and saving pages
// (paper §3.1), across multiple application windows. Three signatures
// matter: page loads include network time the machine cannot control
// (part of the noise floor — the paper notes "discomfort in IE depends
// to some extent on network behavior"); the user explicitly saves pages,
// "resulting in more disk activity" (the paper's explanation for IE
// being the most disk-sensitive task, f_d = 0.61); and the working set
// grows as pages accumulate, making memory demand dynamic (§3.3.3).
type IEParams struct {
	// PageMeanGap is the mean time between page navigations.
	PageMeanGap float64
	// PageCPU is reference CPU to parse and render a page.
	PageCPU float64
	// PageNetMedian and PageNetSigma give the lognormal network time per
	// page load.
	PageNetMedian, PageNetSigma float64
	// PageNetMax caps network time (the browser would time out).
	PageNetMax float64
	// PageCacheKB is foreground cache-write I/O per page load.
	PageCacheKB float64
	// SavePageKB is foreground I/O for the explicit "save page" the study
	// asked users to perform; one follows most page visits.
	SavePageKB float64
	// SaveProb is the probability a page visit is followed by a save.
	SaveProb float64
	// ScrollRate is scroll/render echo events per second while reading.
	ScrollRate float64
	// ScrollCPU is reference CPU per scroll render.
	ScrollCPU float64
	// OpMeanGap is the mean gap between in-page operations (find,
	// switch window, select text) that touch cooler cached state.
	OpMeanGap float64
	// OpCPU is reference CPU per in-page operation.
	OpCPU float64
	// OpDiskKB is the synchronous cache-index I/O an in-page operation
	// performs; it is what couples IE's feel to disk contention.
	OpDiskKB float64
	// WSBaseMB, WSGrowMB describe the working set: base plus growth to
	// base+grow over the task as pages accumulate.
	WSBaseMB, WSGrowMB float64
	// WSHotMB is the hot core (current page, renderer).
	WSHotMB float64
	// UsageSigma spreads per-run demand (site weight varies by assigned
	// news site).
	UsageSigma float64
}

// DefaultIEParams returns the calibrated IE model.
func DefaultIEParams() IEParams {
	return IEParams{
		PageMeanGap:   14,
		PageCPU:       0.24,
		PageNetMedian: 0.9,
		PageNetSigma:  0.62,
		PageNetMax:    12.0,
		PageCacheKB:   350,
		SavePageKB:    900,
		SaveProb:      0.7,
		ScrollRate:    1.2,
		ScrollCPU:     0.010,
		OpMeanGap:     4.0,
		OpCPU:         0.190,
		OpDiskKB:      360,
		WSBaseMB:      140,
		WSGrowMB:      90,
		WSHotMB:       35,
		UsageSigma:    0.15,
	}
}

type ie struct{ p IEParams }

// NewIE builds an Internet Explorer model with the given parameters.
func NewIE(p IEParams) App { return &ie{p: p} }

func (b *ie) Task() testcase.Task { return testcase.IE }

func (b *ie) FrameHz() float64 { return 0 }

func (b *ie) WorkingSet(t float64) hostsim.WorkingSet {
	// Grow linearly over the first ten minutes of browsing, then level
	// off; a 2-minute run that starts mid-task uses the grown size, so
	// use the task midpoint as reference when t is within one run.
	frac := (300 + t) / 600
	if frac > 1 {
		frac = 1
	}
	return hostsim.WorkingSet{TotalMB: b.p.WSBaseMB + frac*b.p.WSGrowMB, HotMB: b.p.WSHotMB}
}

func (b *ie) Events(duration float64, s *stats.Stream) []Event {
	return b.AppendEvents(nil, duration, s)
}

// AppendEvents implements EventsAppender, generating into dst.
func (b *ie) AppendEvents(dst []Event, duration float64, s *stats.Stream) []Event {
	evs := dst
	usage := s.LognormMedian(1, b.p.UsageSigma)
	for t := s.Exp(b.p.PageMeanGap); t < duration; t += s.Exp(b.p.PageMeanGap) {
		net := s.LognormMedian(b.p.PageNetMedian, b.p.PageNetSigma)
		if net > b.p.PageNetMax {
			net = b.p.PageNetMax
		}
		evs = append(evs, Event{
			At: t, Class: LoadOp, CPU: usage * b.p.PageCPU * s.Range(0.6, 1.6),
			DiskKB: b.p.PageCacheKB * s.Range(0.5, 1.5), ExtraLatency: net,
			BaselineExtra: b.p.PageNetMedian,
			HotTouches:    6, ColdTouches: 22, Label: "page-load",
		})
		if s.Bool(b.p.SaveProb) {
			evs = append(evs, Event{
				At: t + s.Range(2, 6), Class: LoadOp, CPU: 0.05,
				DiskKB:     b.p.SavePageKB * s.Range(0.6, 1.6),
				HotTouches: 3, ColdTouches: 4, Label: "save-page",
			})
		}
	}
	for t := s.Exp(1 / b.p.ScrollRate); t < duration; t += s.Exp(1 / b.p.ScrollRate) {
		evs = append(evs, Event{
			At: t, Class: Echo, CPU: b.p.ScrollCPU * s.Range(0.7, 1.4),
			HotTouches: 3, Label: "scroll",
		})
	}
	for t := s.Exp(b.p.OpMeanGap); t < duration; t += s.Exp(b.p.OpMeanGap) {
		evs = append(evs, Event{
			At: t, Class: Op, CPU: usage * b.p.OpCPU * s.Range(0.7, 1.4),
			DiskKB:     b.p.OpDiskKB * s.Range(0.5, 1.5),
			HotTouches: 4, ColdTouches: 14, Label: "page-op",
		})
	}
	sortEvents(evs)
	return evs
}
