package apps

import (
	"testing"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func TestNewCoversAllTasks(t *testing.T) {
	for _, task := range testcase.Tasks() {
		a, err := New(task)
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if a.Task() != task {
			t.Errorf("%s model reports task %s", task, a.Task())
		}
	}
	if _, err := New(testcase.Task("emacs")); err == nil {
		t.Error("unknown task accepted")
	}
	all, err := All()
	if err != nil || len(all) != 4 {
		t.Errorf("All() = %d models, err=%v", len(all), err)
	}
}

func TestEventStreamsOrderedAndBounded(t *testing.T) {
	for _, task := range testcase.Tasks() {
		a, err := New(task)
		if err != nil {
			t.Fatal(err)
		}
		evs := a.Events(120, stats.NewStream(1))
		if len(evs) == 0 {
			t.Fatalf("%s produced no events", task)
		}
		for i, e := range evs {
			if e.At < 0 || e.At >= 130 {
				t.Fatalf("%s event %d out of range: %v", task, i, e.At)
			}
			if i > 0 && e.At < evs[i-1].At {
				t.Fatalf("%s events not ordered at %d", task, i)
			}
			if e.CPU < 0 || e.DiskKB < 0 || e.HotTouches < 0 || e.ColdTouches < 0 {
				t.Fatalf("%s event %d has negative demand: %+v", task, i, e)
			}
			if e.Label == "" {
				t.Fatalf("%s event %d unlabeled", task, i)
			}
		}
	}
}

func TestEventStreamsDeterministic(t *testing.T) {
	for _, task := range testcase.Tasks() {
		a, _ := New(task)
		e1 := a.Events(60, stats.NewStream(9))
		e2 := a.Events(60, stats.NewStream(9))
		if len(e1) != len(e2) {
			t.Fatalf("%s stream lengths differ: %d vs %d", task, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("%s event %d differs", task, i)
			}
		}
	}
}

func TestDemandSignatureOrdering(t *testing.T) {
	// The paper's per-task tolerance differences stem from demand: Word's
	// heaviest common burst must be far lighter than Powerpoint's, and
	// Quake must demand the most CPU per second.
	perSecondCPU := func(task testcase.Task) float64 {
		a, _ := New(task)
		evs := a.Events(300, stats.NewStream(3))
		total := 0.0
		for _, e := range evs {
			total += e.CPU
		}
		return total / 300
	}
	word := perSecondCPU(testcase.Word)
	ppt := perSecondCPU(testcase.Powerpoint)
	quake := perSecondCPU(testcase.Quake)
	if !(word < ppt && ppt < quake) {
		t.Errorf("CPU demand ordering violated: word=%v ppt=%v quake=%v", word, ppt, quake)
	}
	if quake < 0.5 {
		t.Errorf("Quake demand = %v CPU/s, should be the dominant consumer", quake)
	}
	if word > 0.1 {
		t.Errorf("Word demand = %v CPU/s, should be nearly idle", word)
	}
}

func TestIEDiskDemandDominates(t *testing.T) {
	// IE (page caching + explicit saves) must produce the most frequent
	// foreground disk I/O — the paper's explanation for its disk
	// sensitivity.
	fgIOCount := func(task testcase.Task) int {
		a, _ := New(task)
		evs := a.Events(600, stats.NewStream(5))
		n := 0
		for _, e := range evs {
			if e.DiskKB > 0 {
				n++
			}
		}
		return n
	}
	ie := fgIOCount(testcase.IE)
	word := fgIOCount(testcase.Word)
	ppt := fgIOCount(testcase.Powerpoint)
	if ie <= word || ie <= ppt {
		t.Errorf("IE foreground I/O count = %d, want more than word (%d) and ppt (%d)", ie, word, ppt)
	}
}

func TestQuakeFrameStream(t *testing.T) {
	a, _ := New(testcase.Quake)
	if a.FrameHz() != 60 {
		t.Fatalf("FrameHz = %v", a.FrameHz())
	}
	evs := a.Events(10, stats.NewStream(2))
	frames := 0
	streams := 0
	for _, e := range evs {
		if e.Class == Frame {
			frames++
		}
		if e.DiskKB > 0 {
			streams++
			if e.ColdTouches == 0 {
				t.Error("streaming event should touch cold pages")
			}
		}
	}
	if frames < 590 || frames > 600 {
		t.Errorf("frames in 10s = %d, want ~600", frames)
	}
	if streams == 0 {
		t.Error("no streaming events in 10s")
	}
}

func TestNonFrameAppsHaveNoFrames(t *testing.T) {
	for _, task := range []testcase.Task{testcase.Word, testcase.Powerpoint, testcase.IE} {
		a, _ := New(task)
		if a.FrameHz() != 0 {
			t.Errorf("%s reports FrameHz %v", task, a.FrameHz())
		}
		for _, e := range a.Events(60, stats.NewStream(1)) {
			if e.Class == Frame {
				t.Errorf("%s produced a frame event", task)
			}
		}
	}
}

func TestWorkingSets(t *testing.T) {
	for _, task := range testcase.Tasks() {
		a, _ := New(task)
		for _, tt := range []float64{0, 60, 120} {
			ws := a.WorkingSet(tt)
			if ws.TotalMB <= 0 || ws.HotMB <= 0 || ws.HotMB > ws.TotalMB {
				t.Errorf("%s WS(%v) = %+v", task, tt, ws)
			}
			if ws.TotalMB > 400 {
				t.Errorf("%s WS(%v) = %v MB, implausible for a 512 MB machine", task, tt, ws.TotalMB)
			}
		}
	}
	// Dynamic working sets must actually grow.
	for _, task := range []testcase.Task{testcase.IE, testcase.Quake} {
		a, _ := New(task)
		if a.WorkingSet(120).TotalMB <= a.WorkingSet(0).TotalMB {
			t.Errorf("%s working set is not dynamic", task)
		}
	}
	// Office working sets are static.
	a, _ := New(testcase.Word)
	if a.WorkingSet(120).TotalMB != a.WorkingSet(0).TotalMB {
		t.Error("Word working set should be static")
	}
}

func TestIENetworkLatencyVariability(t *testing.T) {
	a, _ := New(testcase.IE)
	evs := a.Events(1200, stats.NewStream(11))
	var nets []float64
	for _, e := range evs {
		if e.Label == "page-load" {
			nets = append(nets, e.ExtraLatency)
		}
	}
	if len(nets) < 30 {
		t.Fatalf("only %d page loads in 20 minutes", len(nets))
	}
	if stats.Max(nets) < 2 {
		t.Errorf("network latency tail too thin: max = %v", stats.Max(nets))
	}
	if stats.Max(nets) > DefaultIEParams().PageNetMax {
		t.Errorf("network latency exceeds cap: %v", stats.Max(nets))
	}
	if m := stats.Mean(nets); m < 0.5 || m > 2.5 {
		t.Errorf("mean network latency = %v, want around 1s", m)
	}
}
