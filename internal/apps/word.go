package apps

import (
	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// WordParams parameterizes the Word model. The study task was typing a
// non-technical document with limited formatting — mainly typing and
// saving (paper §3.1 and its footnote). Word is the least demanding
// task: tiny CPU bursts, a small and static working set, and rare disk
// activity. That is why it tolerates very high contention (the paper
// measured c_a around 4.35 for CPU and recorded no memory discomfort at
// all).
type WordParams struct {
	// TypingRate is keystrokes per second while typing.
	TypingRate float64
	// KeystrokeCPU is the reference CPU per keystroke echo.
	KeystrokeCPU float64
	// OpMeanGap is the mean time between heavier editor operations
	// (scrolling, repagination, spell-check sweeps).
	OpMeanGap float64
	// OpCPU is the reference CPU per heavy operation.
	OpCPU float64
	// SaveMeanGap is the mean time between explicit user saves.
	SaveMeanGap float64
	// SaveKB is the foreground bytes written per save (document plus
	// temp/backup shuffle).
	SaveKB float64
	// AutosaveGap is the time between background autosaves.
	AutosaveGap float64
	// AutosaveKB is bytes written per background autosave.
	AutosaveKB float64
	// WSTotalMB and WSHotMB describe the working set.
	WSTotalMB, WSHotMB float64
	// UsageSigma spreads per-run demand: document complexity and editing
	// style vary a lot between users, which is why Word's discomfort CDF
	// is wide (paper Figure 18, Word column).
	UsageSigma float64
}

// DefaultWordParams returns the calibrated Word model.
func DefaultWordParams() WordParams {
	return WordParams{
		TypingRate:   4.0,
		KeystrokeCPU: 0.0012,
		OpMeanGap:    7.0,
		OpCPU:        0.085,
		SaveMeanGap:  45,
		SaveKB:       3000,
		AutosaveGap:  60,
		AutosaveKB:   400,
		WSTotalMB:    50,
		WSHotMB:      10,
		UsageSigma:   0.26,
	}
}

type word struct{ p WordParams }

// NewWord builds a Word model with the given parameters.
func NewWord(p WordParams) App { return &word{p: p} }

func (w *word) Task() testcase.Task { return testcase.Word }

func (w *word) FrameHz() float64 { return 0 }

func (w *word) WorkingSet(float64) hostsim.WorkingSet {
	// Office working sets stabilize once the document is open; the study
	// document was small, so the footprint is static.
	return hostsim.WorkingSet{TotalMB: w.p.WSTotalMB, HotMB: w.p.WSHotMB}
}

func (w *word) Events(duration float64, s *stats.Stream) []Event {
	return w.AppendEvents(nil, duration, s)
}

// AppendEvents implements EventsAppender, generating into dst.
func (w *word) AppendEvents(dst []Event, duration float64, s *stats.Stream) []Event {
	evs := dst
	usage := s.LognormMedian(1, w.p.UsageSigma)
	// Keystrokes: steady typing with exponential gaps.
	for t := s.Exp(1 / w.p.TypingRate); t < duration; t += s.Exp(1 / w.p.TypingRate) {
		evs = append(evs, Event{
			At: t, Class: Echo, CPU: usage * w.p.KeystrokeCPU * s.Range(0.7, 1.3),
			HotTouches: 2, Label: "keystroke",
		})
	}
	// Heavier editor operations; they touch a little cold state
	// (formatting tables, far document regions).
	for t := s.Exp(w.p.OpMeanGap); t < duration; t += s.Exp(w.p.OpMeanGap) {
		evs = append(evs, Event{
			At: t, Class: Op, CPU: usage * w.p.OpCPU * s.Range(0.6, 1.5),
			HotTouches: 6, ColdTouches: 2, Label: "edit-op",
		})
	}
	// Explicit saves the user waits on.
	for t := s.Exp(w.p.SaveMeanGap); t < duration; t += s.Exp(w.p.SaveMeanGap) {
		evs = append(evs, Event{
			At: t, Class: LoadOp, CPU: 0.03, DiskKB: w.p.SaveKB * s.Range(0.8, 1.2),
			HotTouches: 4, ColdTouches: 2, Label: "save",
		})
	}
	// Background autosaves; latency invisible, but they occupy the disk.
	for t := w.p.AutosaveGap; t < duration; t += w.p.AutosaveGap {
		evs = append(evs, Event{
			At: t, Class: Op, CPU: 0.008, DiskBGKB: w.p.AutosaveKB,
			HotTouches: 2, Label: "autosave",
		})
	}
	sortEvents(evs)
	return evs
}
