package apps

import (
	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// PowerpointParams parameterizes the Powerpoint model. The study task
// duplicated a presentation of complex diagrams involving drawing and
// labeling (paper §3.1). Powerpoint is distinguished from Word by much
// heavier redraw operations — every shape manipulation re-renders the
// slide — which is why its CPU tolerance is an order of magnitude lower
// (paper c_a ≈ 1.17 vs Word's 4.35) while its disk and memory behaviour
// stays office-like.
type PowerpointParams struct {
	// DragRate is pointer-drag echo events per second while drawing.
	DragRate float64
	// DragCPU is reference CPU per drag update.
	DragCPU float64
	// OpMeanGap is the mean time between slide-level operations (insert
	// shape, align, format, full redraw).
	OpMeanGap float64
	// OpCPU is reference CPU per slide operation.
	OpCPU float64
	// SaveMeanGap and SaveKB describe explicit saves; presentations are
	// bigger than text documents.
	SaveMeanGap float64
	SaveKB      float64
	// WSTotalMB and WSHotMB describe the working set.
	WSTotalMB, WSHotMB float64
	// UsageSigma spreads per-run demand; the study task (duplicating a
	// fixed sample presentation) was uniform across users, so the spread
	// is small — which is why the paper's Powerpoint CPU CDF is so steep
	// (f_d = 0.95 with c_a only 1.17).
	UsageSigma float64
}

// DefaultPowerpointParams returns the calibrated Powerpoint model.
func DefaultPowerpointParams() PowerpointParams {
	return PowerpointParams{
		DragRate:    2.2,
		DragCPU:     0.145,
		OpMeanGap:   5.0,
		OpCPU:       0.160,
		SaveMeanGap: 30,
		SaveKB:      3200,
		WSTotalMB:   140,
		WSHotMB:     30,
		UsageSigma:  0.08,
	}
}

type powerpoint struct{ p PowerpointParams }

// NewPowerpoint builds a Powerpoint model with the given parameters.
func NewPowerpoint(p PowerpointParams) App { return &powerpoint{p: p} }

func (pp *powerpoint) Task() testcase.Task { return testcase.Powerpoint }

func (pp *powerpoint) FrameHz() float64 { return 0 }

func (pp *powerpoint) WorkingSet(float64) hostsim.WorkingSet {
	return hostsim.WorkingSet{TotalMB: pp.p.WSTotalMB, HotMB: pp.p.WSHotMB}
}

func (pp *powerpoint) Events(duration float64, s *stats.Stream) []Event {
	return pp.AppendEvents(nil, duration, s)
}

// AppendEvents implements EventsAppender, generating into dst.
func (pp *powerpoint) AppendEvents(dst []Event, duration float64, s *stats.Stream) []Event {
	evs := dst
	usage := s.LognormMedian(1, pp.p.UsageSigma)
	for t := s.Exp(1 / pp.p.DragRate); t < duration; t += s.Exp(1 / pp.p.DragRate) {
		evs = append(evs, Event{
			At: t, Class: Flow, CPU: usage * pp.p.DragCPU * s.Range(0.9, 1.1),
			HotTouches: 3, Label: "drag-render",
		})
	}
	for t := s.Exp(pp.p.OpMeanGap); t < duration; t += s.Exp(pp.p.OpMeanGap) {
		evs = append(evs, Event{
			At: t, Class: Op, CPU: usage * pp.p.OpCPU * s.Range(0.75, 1.3),
			HotTouches: 5, ColdTouches: 12, Label: "slide-op",
		})
	}
	for t := s.Exp(pp.p.SaveMeanGap); t < duration; t += s.Exp(pp.p.SaveMeanGap) {
		evs = append(evs, Event{
			At: t, Class: LoadOp, CPU: 0.06, DiskKB: pp.p.SaveKB * s.Range(0.8, 1.2),
			HotTouches: 4, ColdTouches: 6, Label: "save",
		})
	}
	sortEvents(evs)
	return evs
}
