package apps

import (
	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// TaskMedia is a fifth foreground context beyond the paper's four: video
// playback. The paper's motivation covers thin-client and desktop
// consolidation where media consumption is a dominant workload; this
// model extends the study's coverage to it. Playback is frame-driven
// like Quake but far less CPU-hungry (a 2004 software decoder uses a
// fraction of the machine) and tolerant of short stalls thanks to
// decode-ahead buffering — so its comfort profile should sit between
// the office tasks and the game.
const TaskMedia = testcase.Task("media")

// MediaParams parameterizes the video-playback model.
type MediaParams struct {
	// FrameHz is the playback rate.
	FrameHz float64
	// FrameCPU is reference CPU per decoded frame.
	FrameCPU float64
	// BufferFrames is the decode-ahead buffer: the player survives this
	// many frame-times of starvation before the user sees a stall.
	BufferFrames int
	// ReadMeanGap and ReadKB describe the periodic file reads feeding
	// the decoder.
	ReadMeanGap float64
	ReadKB      float64
	// SeekMeanGap is the mean time between user seeks (watched ops that
	// flush the buffer and refill from disk).
	SeekMeanGap float64
	// WSTotalMB and WSHotMB describe the working set.
	WSTotalMB, WSHotMB float64
	// UsageSigma spreads per-run demand (bitrate differences).
	UsageSigma float64
}

// DefaultMediaParams returns the calibrated playback model: a 24 fps
// stream decoded with ~20% of the reference CPU.
func DefaultMediaParams() MediaParams {
	return MediaParams{
		FrameHz:      24,
		FrameCPU:     0.0085,
		BufferFrames: 12,
		ReadMeanGap:  2.0,
		ReadKB:       700,
		SeekMeanGap:  45,
		WSTotalMB:    90,
		WSHotMB:      35,
		UsageSigma:   0.15,
	}
}

type media struct{ p MediaParams }

// NewMediaPlayer builds the playback model.
func NewMediaPlayer(p MediaParams) App { return &media{p: p} }

func (m *media) Task() testcase.Task { return TaskMedia }

func (m *media) FrameHz() float64 { return m.p.FrameHz }

func (m *media) WorkingSet(float64) hostsim.WorkingSet {
	return hostsim.WorkingSet{TotalMB: m.p.WSTotalMB, HotMB: m.p.WSHotMB}
}

func (m *media) Events(duration float64, s *stats.Stream) []Event {
	return m.AppendEvents(nil, duration, s)
}

// AppendEvents implements EventsAppender, generating into dst.
func (m *media) AppendEvents(dst []Event, duration float64, s *stats.Stream) []Event {
	usage := s.LognormMedian(1, m.p.UsageSigma)
	frameGap := 1 / m.p.FrameHz
	n := int(duration / frameGap)
	evs := dst
	if cap(evs) < n+32 {
		evs = make([]Event, 0, n+32)
	}
	for i := 0; i < n; i++ {
		evs = append(evs, Event{
			At: float64(i) * frameGap, Class: Frame,
			CPU:        usage * m.p.FrameCPU * s.Range(0.85, 1.15),
			HotTouches: 2, Label: "decode-frame",
		})
	}
	// Stream reads: background most of the time (the buffer absorbs
	// latency); the read becomes foreground-blocking only when it is this
	// late that the buffer would drain — approximated by a small blocking
	// probability that rises with buffer smallness.
	blockProb := 1.0 / float64(m.p.BufferFrames)
	for t := s.Exp(m.p.ReadMeanGap); t < duration; t += s.Exp(m.p.ReadMeanGap) {
		idx := int(t / frameGap)
		if idx >= len(evs) {
			continue
		}
		kb := m.p.ReadKB * s.Range(0.7, 1.4)
		if s.Bool(blockProb) {
			evs[idx].DiskKB += kb
			evs[idx].Label = "decode+refill"
		} else {
			evs[idx].DiskBGKB += kb
		}
	}
	// User seeks: watched operations that refill the pipeline.
	for t := s.Exp(m.p.SeekMeanGap); t < duration; t += s.Exp(m.p.SeekMeanGap) {
		evs = append(evs, Event{
			At: t, Class: Op, CPU: usage * 0.06,
			DiskKB: m.p.ReadKB, ColdTouches: 6, HotTouches: 3, Label: "seek",
		})
	}
	sortEvents(evs)
	return evs
}
