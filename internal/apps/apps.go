// Package apps models the four foreground tasks of the controlled study
// (paper §3.1): word processing in Microsoft Word, presentation making in
// Powerpoint, browsing and research in Internet Explorer, and playing
// Quake III. Each model produces a stream of interactive events — the
// things the user is actually waiting on — together with the resource
// demands that determine how resource borrowing stretches them.
//
// The paper's central observation is that "the regions of resource usage
// where interactivity is affected are different for each task" (§3.2):
// Word tolerates CPU contention around 3 and beyond, while Quake shows
// drastic effects between 0.2 and 1.2. Those differences are emergent
// here: they come from each app's demand signature (burst sizes, event
// rates, working-set shape, I/O pattern), not from per-task tolerance
// constants.
package apps

import (
	"fmt"

	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Class categorizes an interactive event by how the user perceives its
// latency. Perception thresholds differ by class: a keystroke echo must
// feel instant, a page load may take seconds, a game frame is judged by
// rate and jitter.
type Class string

// Event classes.
const (
	// Echo events are fine-grained input feedback: keystroke echo,
	// pointer drag updates.
	Echo Class = "echo"
	// Op events are discrete operations the user watches complete:
	// scrolling a page, applying formatting, redrawing a slide.
	Op Class = "op"
	// LoadOp events are long operations with relaxed expectations:
	// loading a web page, saving a document.
	LoadOp Class = "load"
	// Flow events are updates of a continuous direct-manipulation loop
	// (dragging a shape and watching it follow). Unlike discrete ops,
	// fluency breaks at nearly the same point for everyone — a
	// perceptual threshold, not a patience threshold — which is why the
	// paper's Powerpoint CPU CDF is so steep (c_0.05 = 1.00 with
	// f_d = 0.95).
	Flow Class = "flow"
	// Frame events are the per-frame work of a continuous real-time
	// render loop; users perceive their rate and jitter rather than
	// individual latencies.
	Frame Class = "frame"
)

// Event is one interactive operation issued by the foreground task.
type Event struct {
	// At is the time the user initiates the operation, seconds into the
	// run.
	At float64
	// Class determines which tolerance the user applies.
	Class Class
	// CPU is the event's processor demand in reference-machine seconds.
	CPU float64
	// DiskKB is foreground disk I/O the user waits on.
	DiskKB float64
	// DiskBGKB is write-behind disk I/O that does not block the user but
	// occupies the disk queue.
	DiskBGKB float64
	// HotTouches and ColdTouches are page touches into the hot and cold
	// parts of the app's working set; under memory pressure cold (and
	// eventually hot) touches fault.
	HotTouches, ColdTouches int
	// ExtraLatency is latency from outside the machine (network time for
	// IE), already sampled.
	ExtraLatency float64
	// BaselineExtra is the typical (median) external latency for this
	// kind of event; perception judges degradation against the typical
	// feel, not against each sample's luck.
	BaselineExtra float64
	// Label names the operation for run records.
	Label string
}

// App is a foreground-task model.
type App interface {
	// Task identifies the model.
	Task() testcase.Task
	// FrameHz is the target frame rate for frame-driven apps, 0 otherwise.
	FrameHz() float64
	// WorkingSet returns the app's memory footprint t seconds into the
	// task.
	WorkingSet(t float64) hostsim.WorkingSet
	// Events generates the interactive event stream for a run of the
	// given duration, deterministically from the stream. Events are
	// returned in nondecreasing At order.
	Events(duration float64, s *stats.Stream) []Event
}

// EventsAppender is an optional App capability: generate the event
// stream into a caller-owned buffer so hot loops can reuse one
// allocation across runs. AppendEvents must produce exactly the events
// Events would (same values, same order, same stream draws); dst is
// truncated and reused, never retained.
type EventsAppender interface {
	AppendEvents(dst []Event, duration float64, s *stats.Stream) []Event
}

// EventsInto generates app's event stream, reusing dst's backing array
// when the app supports buffer reuse and falling back to Events
// otherwise. The returned slice is valid until the next EventsInto call
// with the same buffer.
func EventsInto(app App, dst []Event, duration float64, s *stats.Stream) []Event {
	if ea, ok := app.(EventsAppender); ok {
		return ea.AppendEvents(dst[:0], duration, s)
	}
	return app.Events(duration, s)
}

// New returns the model for a controlled-study task.
func New(task testcase.Task) (App, error) {
	switch task {
	case testcase.Word:
		return NewWord(DefaultWordParams()), nil
	case testcase.Powerpoint:
		return NewPowerpoint(DefaultPowerpointParams()), nil
	case testcase.IE:
		return NewIE(DefaultIEParams()), nil
	case testcase.Quake:
		return NewQuake(DefaultQuakeParams()), nil
	}
	return nil, fmt.Errorf("apps: no model for task %q", task)
}

// All returns models for every controlled-study task, in paper order.
func All() ([]App, error) {
	out := make([]App, 0, 4)
	for _, task := range testcase.Tasks() {
		a, err := New(task)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
