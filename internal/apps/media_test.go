package apps

import (
	"testing"

	"uucs/internal/stats"
)

func TestMediaPlayerModel(t *testing.T) {
	m := NewMediaPlayer(DefaultMediaParams())
	if m.Task() != TaskMedia {
		t.Errorf("task = %v", m.Task())
	}
	if m.FrameHz() != 24 {
		t.Errorf("FrameHz = %v", m.FrameHz())
	}
	ws := m.WorkingSet(60)
	if ws.TotalMB <= 0 || ws.HotMB > ws.TotalMB {
		t.Errorf("working set: %+v", ws)
	}
	evs := m.Events(60, stats.NewStream(1))
	frames, reads, seeks := 0, 0, 0
	for i, ev := range evs {
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("events unordered at %d", i)
		}
		switch {
		case ev.Class == Frame:
			frames++
			if ev.DiskKB > 0 || ev.DiskBGKB > 0 {
				reads++
			}
		case ev.Class == Op:
			seeks++
		}
	}
	if frames < 1430 || frames > 1440 {
		t.Errorf("frames in 60s = %d, want ~1440", frames)
	}
	if reads == 0 {
		t.Error("no stream reads")
	}
	if seeks == 0 {
		t.Error("no user seeks")
	}
}

func TestMediaPlayerDeterminism(t *testing.T) {
	m := NewMediaPlayer(DefaultMediaParams())
	a := m.Events(30, stats.NewStream(5))
	b := m.Events(30, stats.NewStream(5))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
