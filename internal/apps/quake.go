package apps

import (
	"sort"

	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// QuakeParams parameterizes the Quake III model — the study's most
// resource-intensive application (paper §3.1). Quake is frame-driven:
// the display loop wants most of the CPU all the time, and users judge
// it by frame rate and stutter rather than by discrete-operation
// latency. Its frame budget leaves so little headroom that CPU
// contention between 0.2 and 1.2 already "causes drastic effects"
// (§3.2), and even blank testcases provoke feedback because "Quake is a
// very demanding application in which jitter quickly discomforts users"
// (§3.3.3). It also streams assets from disk and has dynamic texture
// memory demand, which drives its disk and memory sensitivity.
type QuakeParams struct {
	// FrameHz is the target frame rate.
	FrameHz float64
	// FrameCPU is reference CPU per frame; at 60 Hz a 12 ms frame leaves
	// ~28% headroom on the reference machine.
	FrameCPU float64
	// FrameCPUJitter is the relative frame-to-frame CPU variation from
	// scene complexity.
	FrameCPUJitter float64
	// SpikeProb is the per-frame probability of an internal hitch (asset
	// decompression, AI burst); SpikeFactor multiplies that frame's CPU.
	// Spikes are what make Quake twitchy even near-idle — the paper's
	// "jitter quickly discomforts users" even on blank testcases.
	SpikeProb   float64
	SpikeFactor float64
	// StreamMeanGap is the mean gap between asset-streaming reads
	// (entering a new map region).
	StreamMeanGap float64
	// StreamBlockProb is the probability a streaming read blocks the
	// render loop (the rest is prefetched off the critical path).
	StreamBlockProb float64
	// StreamKB is the foreground read size per blocking streaming event;
	// the render loop blocks on it, so it appears as a frame hitch.
	StreamKB float64
	// StreamColdTouches is the cold-page touches per streaming event
	// (new textures entering the working set).
	StreamColdTouches int
	// FrameHotTouches is hot-page touches per frame.
	FrameHotTouches int
	// WSBaseMB, WSGrowMB, WSHotMB describe the working set; Quake's
	// grows and shifts as the player moves through the level.
	WSBaseMB, WSGrowMB, WSHotMB float64
	// UsageSigma spreads per-run demand (map and playstyle); small, since
	// the engine load is dominated by the fixed frame loop.
	UsageSigma float64
}

// DefaultQuakeParams returns the calibrated Quake III model.
func DefaultQuakeParams() QuakeParams {
	return QuakeParams{
		FrameHz:           60,
		FrameCPU:          0.0125,
		FrameCPUJitter:    0.15,
		SpikeProb:         0.004,
		SpikeFactor:       6,
		StreamMeanGap:     3.0,
		StreamBlockProb:   0.045,
		StreamKB:          250,
		StreamColdTouches: 5,
		FrameHotTouches:   2,
		WSBaseMB:          135,
		WSGrowMB:          30,
		WSHotMB:           60,
		UsageSigma:        0.05,
	}
}

type quake struct{ p QuakeParams }

// NewQuake builds a Quake III model with the given parameters.
func NewQuake(p QuakeParams) App { return &quake{p: p} }

func (q *quake) Task() testcase.Task { return testcase.Quake }

func (q *quake) FrameHz() float64 { return q.p.FrameHz }

func (q *quake) WorkingSet(t float64) hostsim.WorkingSet {
	frac := t / 120
	if frac > 1 {
		frac = 1
	}
	return hostsim.WorkingSet{TotalMB: q.p.WSBaseMB + frac*q.p.WSGrowMB, HotMB: q.p.WSHotMB}
}

func (q *quake) Events(duration float64, s *stats.Stream) []Event {
	return q.AppendEvents(nil, duration, s)
}

// AppendEvents implements EventsAppender, generating into dst.
func (q *quake) AppendEvents(dst []Event, duration float64, s *stats.Stream) []Event {
	frameGap := 1 / q.p.FrameHz
	n := int(duration / frameGap)
	usage := s.LognormMedian(1, q.p.UsageSigma)
	evs := dst
	if cap(evs) < n+64 {
		evs = make([]Event, 0, n+64)
	}
	for i := 0; i < n; i++ {
		t := float64(i) * frameGap
		cpu := usage * q.p.FrameCPU * (1 + q.p.FrameCPUJitter*(2*s.Float64()-1))
		if s.Bool(q.p.SpikeProb) {
			cpu *= q.p.SpikeFactor
		}
		evs = append(evs, Event{
			At: t, Class: Frame, CPU: cpu,
			HotTouches: q.p.FrameHotTouches, Label: "frame",
		})
	}
	// Asset streaming: reads that hit cold pages, attached to the nearest
	// frame slot. Only some block the render loop as foreground I/O; the
	// cold-page touches fault regardless once memory is tight.
	for t := s.Exp(q.p.StreamMeanGap); t < duration; t += s.Exp(q.p.StreamMeanGap) {
		idx := int(t / frameGap)
		if idx >= len(evs) {
			continue
		}
		if s.Bool(q.p.StreamBlockProb) {
			evs[idx].DiskKB += q.p.StreamKB * s.Range(0.5, 1.8)
		} else {
			evs[idx].DiskBGKB += q.p.StreamKB * s.Range(0.5, 1.8)
		}
		evs[idx].ColdTouches += q.p.StreamColdTouches
		evs[idx].Label = "frame+stream"
	}
	return evs
}

// sortEvents orders events by time, stably for equal times. The event
// slice is a concatenation of per-generator subsequences that are each
// already sorted, so a binary-insertion sort touches only the out-of-place
// suffix elements; a stable sort's output is uniquely determined by the
// input order and the comparator, so this produces exactly the
// permutation sort.SliceStable used to — without reflection in the swap
// path, which dominated the event-generation profile.
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		if evs[i].At >= evs[i-1].At {
			continue
		}
		ev := evs[i]
		// Insert after any equal-At elements to preserve stability.
		j := sort.Search(i, func(k int) bool { return evs[k].At > ev.At })
		copy(evs[j+1:i+1], evs[j:i])
		evs[j] = ev
	}
}
