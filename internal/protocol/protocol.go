// Package protocol defines the wire protocol between UUCS clients and
// the server (paper Figure 1). There are exactly two interactions, both
// initiated by the client: registration, where the client presents a
// detailed hardware/software snapshot and receives a globally unique
// identifier, and hot sync, where the client downloads new testcases (a
// growing random sample) and uploads new results.
//
// Messages are JSON objects, one per line, over a TCP connection.
// Testcases and run records travel inside messages in their text-store
// encodings, so the same bytes that sit in the on-disk stores cross the
// wire.
package protocol

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Version is the protocol version; mismatches are rejected at
// registration.
const Version = 1

// MsgType discriminates protocol messages.
type MsgType string

// Message types.
const (
	// TypeRegister carries a machine snapshot; the server answers with
	// TypeRegistered.
	TypeRegister   MsgType = "register"
	TypeRegistered MsgType = "registered"
	// TypeSync requests a batch of new testcases; the server answers
	// with TypeTestcases.
	TypeSync      MsgType = "sync"
	TypeTestcases MsgType = "testcases"
	// TypeResults uploads run records; the server answers with TypeAck.
	TypeResults MsgType = "results"
	TypeAck     MsgType = "ack"
	// TypeError reports a server-side failure.
	TypeError MsgType = "error"
)

// Snapshot is the detailed machine description presented at
// registration (paper §2: "providing it with a detailed snapshot of the
// hardware and software of the client machine").
type Snapshot struct {
	Hostname string   `json:"hostname"`
	OS       string   `json:"os"`
	CPUGHz   float64  `json:"cpu_ghz"`
	MemMB    float64  `json:"mem_mb"`
	DiskGB   float64  `json:"disk_gb"`
	Apps     []string `json:"apps,omitempty"`
}

// Validate checks the snapshot for the fields the server needs to
// associate results with hardware classes.
func (s Snapshot) Validate() error {
	if s.Hostname == "" {
		return fmt.Errorf("protocol: snapshot missing hostname")
	}
	if s.CPUGHz <= 0 || s.MemMB <= 0 {
		return fmt.Errorf("protocol: snapshot has implausible hardware (cpu %g GHz, mem %g MB)", s.CPUGHz, s.MemMB)
	}
	return nil
}

// Message is the single wire envelope.
type Message struct {
	Type MsgType `json:"type"`
	// Ver is the protocol version (TypeRegister only).
	Ver int `json:"ver,omitempty"`
	// Snapshot accompanies TypeRegister.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// ClientID identifies the client after registration.
	ClientID string `json:"client_id,omitempty"`
	// Have lists testcase IDs already held (TypeSync), so the server
	// extends the client's random sample instead of resending.
	Have []string `json:"have,omitempty"`
	// Want is the number of new testcases requested (TypeSync).
	Want int `json:"want,omitempty"`
	// Payload carries text-encoded testcases (TypeTestcases) or run
	// records (TypeResults).
	Payload string `json:"payload,omitempty"`
	// Count reports how many items were accepted (TypeAck) or returned
	// (TypeTestcases).
	Count int `json:"count,omitempty"`
	// Err is the error text (TypeError).
	Err string `json:"err,omitempty"`
}

// Conn frames Messages over any stream.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
	c io.Closer
}

// maxLine bounds a single message; testcase payloads are sizable but a
// 2000-testcase store is still only a few MB.
const maxLine = 64 << 20

// NewConn wraps a stream. If rw also implements io.Closer, Close closes
// it.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	r := bufio.NewReaderSize(rw, 64<<10)
	return &Conn{r: r, w: bufio.NewWriter(rw), c: c}
}

// Send writes one message.
func (c *Conn) Send(m Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("protocol: marshal: %w", err)
	}
	if len(b) > maxLine {
		return fmt.Errorf("protocol: message too large (%d bytes)", len(b))
	}
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one message.
func (c *Conn) Recv() (Message, error) {
	var m Message
	line, err := c.readLine()
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(line, &m); err != nil {
		return m, fmt.Errorf("protocol: bad message: %w", err)
	}
	if m.Type == "" {
		return m, fmt.Errorf("protocol: message without type")
	}
	return m, nil
}

func (c *Conn) readLine() ([]byte, error) {
	var buf []byte
	for {
		chunk, isPrefix, err := c.r.ReadLine()
		if err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		if len(buf) > maxLine {
			return nil, fmt.Errorf("protocol: line exceeds %d bytes", maxLine)
		}
		if !isPrefix {
			return buf, nil
		}
	}
}

// Close closes the underlying stream when it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// SendError is a server helper for reporting a failure in-band.
func (c *Conn) SendError(err error) error {
	return c.Send(Message{Type: TypeError, Err: err.Error()})
}

// AsError converts a TypeError message into a Go error, passing other
// messages through.
func AsError(m Message) error {
	if m.Type == TypeError {
		return fmt.Errorf("protocol: server error: %s", m.Err)
	}
	return nil
}
