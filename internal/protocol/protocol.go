// Package protocol defines the wire protocol between UUCS clients and
// the server (paper Figure 1). There are exactly two interactions, both
// initiated by the client: registration, where the client presents a
// detailed hardware/software snapshot and receives a globally unique
// identifier, and hot sync, where the client downloads new testcases (a
// growing random sample) and uploads new results.
//
// Messages are JSON objects, one per line, over a TCP connection.
// Testcases and run records travel inside messages in their text-store
// encodings, so the same bytes that sit in the on-disk stores cross the
// wire.
//
// Version 2 hardens the protocol for the volunteer-computing fault
// model (clients crash, links flap, the server restarts mid-study):
//
//   - Every message carries a mandatory CRC32 checksum — a message
//     without one is rejected — so corrupted bytes are detected and
//     refused instead of silently ingested.
//   - Registration carries a client-chosen nonce, making it idempotent:
//     a retried registration whose first response was lost receives the
//     same identifier again.
//   - Result uploads carry a per-client sequence number and the ack
//     echoes it, making uploads idempotent: a retried batch whose ack
//     was lost is detected as a duplicate and not double-counted.
//   - Conn supports per-message read/write deadlines so neither side
//     can be pinned forever by a stalled peer.
//
// Version 3 (binary.go) keeps v2's message semantics but replaces the
// text frame with length-prefixed binary framing (varint fields, CRC32
// trailer) and a zero-copy decode path. Both framings coexist on one
// port: receivers sniff the first byte of each frame and reply in
// kind, and registration negotiates the version a client should speak.
package protocol

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"sync"
	"time"
)

// Version is the highest protocol version this build speaks.
// Registration negotiates: a client requests a version and the server
// grants min(requested, Version), rejecting versions it has never
// spoken. V2 peers therefore keep working against a V3 build.
const Version = V3

// MsgType discriminates protocol messages.
type MsgType string

// Message types.
const (
	// TypeRegister carries a machine snapshot; the server answers with
	// TypeRegistered.
	TypeRegister   MsgType = "register"
	TypeRegistered MsgType = "registered"
	// TypeSync requests a batch of new testcases; the server answers
	// with TypeTestcases.
	TypeSync      MsgType = "sync"
	TypeTestcases MsgType = "testcases"
	// TypeResults uploads run records; the server answers with TypeAck.
	TypeResults MsgType = "results"
	TypeAck     MsgType = "ack"
	// TypeError reports a server-side failure.
	TypeError MsgType = "error"
	// TypeShip carries one committed journal segment from a cluster
	// primary to its follower replica; the follower answers with
	// TypeShipAck once the segment is durable. Seq numbers segments
	// contiguously per primary so a follower can refuse gaps.
	TypeShip    MsgType = "ship"
	TypeShipAck MsgType = "ship-ack"
	// TypeJournalMeta never crosses the wire between peers: it is the
	// self-identifying header record a v3 server writes at the head of a
	// fresh journal file, encoded as an ordinary frame (Ver carries the
	// journal format version) so the journal scanner needs no second
	// record grammar.
	TypeJournalMeta MsgType = "jmeta"
)

// Snapshot is the detailed machine description presented at
// registration (paper §2: "providing it with a detailed snapshot of the
// hardware and software of the client machine").
type Snapshot struct {
	Hostname string   `json:"hostname"`
	OS       string   `json:"os"`
	CPUGHz   float64  `json:"cpu_ghz"`
	MemMB    float64  `json:"mem_mb"`
	DiskGB   float64  `json:"disk_gb"`
	Apps     []string `json:"apps,omitempty"`
}

// Validate checks the snapshot for the fields the server needs to
// associate results with hardware classes.
func (s Snapshot) Validate() error {
	if s.Hostname == "" {
		return fmt.Errorf("protocol: snapshot missing hostname")
	}
	if s.CPUGHz <= 0 || s.MemMB <= 0 {
		return fmt.Errorf("protocol: snapshot has implausible hardware (cpu %g GHz, mem %g MB)", s.CPUGHz, s.MemMB)
	}
	return nil
}

// Message is the single wire envelope.
type Message struct {
	Type MsgType `json:"type"`
	// Ver is the protocol version (TypeRegister only).
	Ver int `json:"ver,omitempty"`
	// Snapshot accompanies TypeRegister.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Nonce is a client-chosen registration token (TypeRegister). The
	// server keys registrations by it, so a retried registration whose
	// response was lost yields the same id instead of a duplicate.
	Nonce string `json:"nonce,omitempty"`
	// ClientID identifies the client after registration.
	ClientID string `json:"client_id,omitempty"`
	// Have lists testcase IDs already held (TypeSync), so the server
	// extends the client's random sample instead of resending.
	Have []string `json:"have,omitempty"`
	// Want is the number of new testcases requested (TypeSync).
	Want int `json:"want,omitempty"`
	// Payload carries text-encoded testcases (TypeTestcases) or run
	// records (TypeResults).
	Payload string `json:"payload,omitempty"`
	// Count reports how many items were accepted (TypeAck) or returned
	// (TypeTestcases).
	Count int `json:"count,omitempty"`
	// Seq is the client's upload batch sequence number (TypeResults);
	// the server's TypeAck echoes it. Sequence numbers start at 1 and
	// increase, so the server can drop retried duplicates.
	Seq uint64 `json:"seq,omitempty"`
	// Dup marks an ack for a batch the server had already applied
	// (TypeAck): the client's retry was harmless.
	Dup bool `json:"dup,omitempty"`
	// Node names the cluster node a shipped segment belongs to
	// (TypeShip: the shipping primary's node id, which keys the
	// follower's per-primary replica directory).
	Node string `json:"node,omitempty"`
	// Err is the error text (TypeError).
	Err string `json:"err,omitempty"`
	// Sum is the CRC32 (IEEE) of the message's JSON encoding with Sum
	// itself absent. Send always sets it, and Recv rejects any message
	// without one, so in-flight byte corruption surfaces as an error
	// instead of bad data — including corruption that destroys the sum
	// field itself. A pointer, so absence (rejected) is distinguishable
	// from a genuine CRC of zero (verified like any other value).
	Sum *uint32 `json:"sum,omitempty"`
}

// wireEncoder is a pooled buffer + JSON encoder pair for the message
// hot path. Encoding a Message through a pooled encoder instead of
// json.Marshal removes the per-message output allocation; the encoder's
// trailing newline doubles as the wire frame terminator.
type wireEncoder struct {
	buf     bytes.Buffer
	enc     *json.Encoder
	scratch [24]byte // strconv staging for the spliced sum digits
	bin     []byte   // v3 frame staging, reused across sends
}

var encPool = sync.Pool{New: func() any {
	e := &wireEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// encodeSumless encodes m with Sum forced absent into e.buf as one
// newline-terminated line — the canonical form both checksum ends hash.
func (e *wireEncoder) encodeSumless(m Message) error {
	m.Sum = nil
	e.buf.Reset()
	return e.enc.Encode(m)
}

// checksum returns the CRC32 of m's canonical encoding with Sum absent.
func checksum(m Message) (uint32, error) {
	e := encPool.Get().(*wireEncoder)
	defer encPool.Put(e)
	if err := e.encodeSumless(m); err != nil {
		return 0, err
	}
	b := e.buf.Bytes()
	return crc32.ChecksumIEEE(b[:len(b)-1]), nil // exclude Encode's newline
}

// deadliner is the deadline surface of net.Conn; net.Pipe and TCP
// connections both implement it.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Conn frames Messages over any stream, in either wire version.
// Receives auto-detect the framing per message; sends use the version
// selected by SetVersion (or mirrored from the last received frame),
// defaulting to V2 so an un-negotiated sender is safe against any peer.
type Conn struct {
	rw      io.ReadWriter
	r       *lineReader
	c       io.Closer
	d       deadliner
	timeout time.Duration
	version int   // send framing: V3, or V2 when unset
	rbuf    []byte // v3 frame assembly buffer, reused across receives
	frame   Frame  // the connection-owned decoded frame RecvFrame returns
}

// maxLine bounds a single message; testcase payloads are sizable but a
// 2000-testcase store is still only a few MB.
const maxLine = 64 << 20

// NewConn wraps a stream. If rw also implements io.Closer, Close closes
// it; if it implements deadline setting (net.Conn does), SetTimeout
// enables per-message deadlines. Network connections get the
// protocol's transport tuning (TuneConn) applied automatically.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	d, _ := rw.(deadliner)
	if nc, ok := rw.(net.Conn); ok {
		TuneConn(nc)
	}
	return &Conn{rw: rw, r: newLineReader(rw), c: c, d: d}
}

// SetTimeout sets the per-message I/O deadline: every subsequent Send
// must complete within d of starting, and every Recv must receive a
// full message within d of being called — which doubles as an idle
// timeout for a server waiting on a silent client. Zero disables
// deadlines. It is a no-op if the underlying stream cannot set
// deadlines.
func (c *Conn) SetTimeout(d time.Duration) {
	c.timeout = d
}

// Send writes one message in the connection's framing. Under v3 the
// message is encoded as one binary frame through a pooled scratch
// buffer (steady state: zero allocations). Under v2 the message is
// encoded exactly once through a pooled buffer: the CRC is computed
// over the sum-less encoding, then the sum field is spliced in before
// the closing brace, so the hot ingest path neither marshals twice nor
// allocates per message.
func (c *Conn) Send(m Message) error {
	if c.version == V3 {
		return c.sendBinary(m, nil)
	}
	e := encPool.Get().(*wireEncoder)
	defer encPool.Put(e)
	if err := e.encodeSumless(m); err != nil {
		return fmt.Errorf("protocol: marshal: %w", err)
	}
	b := e.buf.Bytes() // `{...}` + '\n'
	sum := crc32.ChecksumIEEE(b[:len(b)-1])
	// Splice `,"sum":N` in place of the final `}\n`. Receivers verify by
	// re-encoding the decoded message sum-less, so the spliced frame is
	// checksum-equivalent to a full marshal with Sum set.
	e.buf.Truncate(len(b) - 2)
	e.buf.WriteString(`,"sum":`)
	e.buf.Write(strconv.AppendUint(e.scratch[:0], uint64(sum), 10))
	e.buf.WriteString("}\n")
	if e.buf.Len() > maxLine {
		return fmt.Errorf("protocol: message too large (%d bytes)", e.buf.Len())
	}
	if c.d != nil && c.timeout > 0 {
		if err := c.d.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	if _, err := c.rw.Write(e.buf.Bytes()); err != nil {
		return err
	}
	return nil
}

// Recv reads one message in either framing, verifies its integrity
// (checksum field for v2, CRC trailer for v3), and returns it fully
// materialized. Servers prefer RecvFrame, which skips the
// materialization for v3 frames.
func (c *Conn) Recv() (Message, error) {
	f, err := c.RecvFrame()
	if err != nil {
		return Message{}, err
	}
	return f.Message()
}

// unmarshalMessage decodes one JSON line into m (the v2 frame body).
func unmarshalMessage(line []byte, m *Message) error {
	return json.Unmarshal(line, m)
}

// lineReader is a thin alias over bufio.Reader that reassembles long
// lines and bounds them at maxLine. The assembly buffer persists across
// reads — each Conn has exactly one in-flight line, so reuse is safe
// and the steady state reads without allocating.
type lineReader struct {
	r   *bufio.Reader
	buf []byte
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{r: bufio.NewReaderSize(r, ConnBufSize)}
}

// readLine returns the next newline-terminated line, excluding the
// newline. The returned slice is valid only until the next readLine.
func (l *lineReader) readLine() ([]byte, error) {
	l.buf = l.buf[:0]
	for {
		chunk, isPrefix, err := l.r.ReadLine()
		if err != nil {
			return nil, err
		}
		l.buf = append(l.buf, chunk...)
		if len(l.buf) > maxLine {
			return nil, fmt.Errorf("protocol: line exceeds %d bytes", maxLine)
		}
		if !isPrefix {
			return l.buf, nil
		}
	}
}

// Close closes the underlying stream when it is closable.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// SendError is a server helper for reporting a failure in-band. The
// reply goes out in the framing of the last received message, so a v2
// client is never answered in a framing it cannot parse.
func (c *Conn) SendError(err error) error {
	return c.Send(Message{Type: TypeError, Err: err.Error()})
}

// AsError converts a TypeError message into a Go error, passing other
// messages through.
func AsError(m Message) error {
	if m.Type == TypeError {
		return fmt.Errorf("protocol: server error: %s", m.Err)
	}
	return nil
}
