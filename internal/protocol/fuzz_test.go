package protocol

import (
	"bytes"
	"testing"
)

// FuzzRecv throws arbitrary bytes at the wire decoder: the server reads
// these straight off TCP connections from untrusted clients, so Recv
// must never panic and must terminate.
func FuzzRecv(f *testing.F) {
	seed := [][]byte{
		nil,
		[]byte("{}\n"),
		[]byte(`{"type":"register","ver":1,"snapshot":{"hostname":"h","cpu_ghz":2,"mem_mb":512}}` + "\n"),
		[]byte(`{"type":"sync","client_id":"x","have":["a","b"],"want":5}` + "\n"),
		[]byte(`{"type":"results","payload":"run t\nendrun\n"}` + "\n"),
		[]byte("not json at all\n"),
		[]byte(`{"type":1234}` + "\n"),
		[]byte(`{"type":"ack"`), // truncated
		bytes.Repeat([]byte("x"), 4096),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		conn := NewConn(rwBuffer{in: bytes.NewBuffer(input), out: &bytes.Buffer{}})
		for i := 0; i < 16; i++ { // bounded: a stream yields finite messages
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if m.Type == "" {
				t.Fatal("Recv returned a typeless message without error")
			}
			// Anything accepted must re-send cleanly.
			if err := conn.Send(m); err != nil {
				t.Fatalf("accepted message failed to send: %v", err)
			}
		}
	})
}
