package protocol

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzRecv throws arbitrary bytes at the wire decoder: the server reads
// these straight off TCP connections from untrusted clients, so Recv
// must never panic and must terminate.
func FuzzRecv(f *testing.F) {
	seed := [][]byte{
		nil,
		[]byte("{}\n"),
		[]byte(`{"type":"register","ver":1,"snapshot":{"hostname":"h","cpu_ghz":2,"mem_mb":512}}` + "\n"),
		[]byte(`{"type":"sync","client_id":"x","have":["a","b"],"want":5}` + "\n"),
		[]byte(`{"type":"results","payload":"run t\nendrun\n"}` + "\n"),
		[]byte("not json at all\n"),
		[]byte(`{"type":1234}` + "\n"),
		[]byte(`{"type":"ack"`), // truncated
		bytes.Repeat([]byte("x"), 4096),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		conn := NewConn(rwBuffer{in: bytes.NewBuffer(input), out: &bytes.Buffer{}})
		for i := 0; i < 16; i++ { // bounded: a stream yields finite messages
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if m.Type == "" {
				t.Fatal("Recv returned a typeless message without error")
			}
			// Anything accepted must re-send cleanly.
			if err := conn.Send(m); err != nil {
				t.Fatalf("accepted message failed to send: %v", err)
			}
		}
	})
}

// FuzzSendRoundTrip encodes arbitrary messages — the seed corpus covers
// the sequence-numbered upload and its ack — and checks two properties:
// an encoded message decodes to itself, and a single flipped byte of
// the encoding is either rejected or provably harmless (the original
// content still arrives intact).
func FuzzSendRoundTrip(f *testing.F) {
	f.Add("results", "uucs-0000000000000001", "run tc-1\ntask word\nuser 3\nendrun\n", uint64(1), false, 1)
	f.Add("results", "uucs-ffffffffffffffff", "", uint64(18446744073709551615), false, 0)
	f.Add("ack", "", "", uint64(7), true, 3)
	f.Add("ack", "", "", uint64(0), false, 0)
	f.Add("register", "", "", uint64(0), false, 0)
	f.Add("sync", "uucs-2", "", uint64(0), false, 16)
	f.Fuzz(func(t *testing.T, typ, clientID, payload string, seq uint64, dup bool, count int) {
		if typ == "" {
			return // Recv rejects typeless messages by design
		}
		m := Message{Type: MsgType(typ), ClientID: clientID, Payload: payload, Seq: seq, Dup: dup, Count: count}
		var wire bytes.Buffer
		if err := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire}).Send(m); err != nil {
			t.Fatalf("send failed: %v", err)
		}
		frame := append([]byte(nil), wire.Bytes()...)

		// JSON marshalling coerces invalid UTF-8 to U+FFFD, which makes the
		// checksum non-canonical (the sender hashes the escaped form, the
		// receiver re-hashes the decoded rune). Our encoders only produce
		// valid UTF-8; for fuzzed garbage the frame may be rejected, which
		// is the safe outcome — it must just never be mangled silently.
		valid := utf8.ValidString(typ) && utf8.ValidString(clientID) && utf8.ValidString(payload)
		got, err := NewConn(rwBuffer{in: bytes.NewBuffer(frame), out: &bytes.Buffer{}}).Recv()
		if err != nil {
			if valid {
				t.Fatalf("clean round trip failed: %v", err)
			}
			return
		}
		if valid {
			if got.Type != m.Type || got.ClientID != m.ClientID || got.Payload != m.Payload ||
				got.Seq != m.Seq || got.Dup != m.Dup || got.Count != m.Count {
				t.Fatalf("round trip mangled message: sent %+v, got %+v", m, got)
			}
		}

		// Single-byte corruption at a few deterministic offsets: never
		// silently deliver different content.
		for _, idx := range []int{0, len(frame) / 3, 2 * len(frame) / 3, len(frame) - 2} {
			if idx < 0 || idx >= len(frame)-1 { // keep the framing newline
				continue
			}
			mut := append([]byte(nil), frame...)
			mut[idx] ^= 0x01
			if mut[idx] == '\n' {
				continue
			}
			c, err := NewConn(rwBuffer{in: bytes.NewBuffer(mut), out: &bytes.Buffer{}}).Recv()
			if err != nil {
				continue // rejected: corruption caught
			}
			if c.Type != got.Type || c.ClientID != got.ClientID || c.Payload != got.Payload ||
				c.Seq != got.Seq || c.Dup != got.Dup || c.Count != got.Count {
				t.Fatalf("flip at %d delivered corrupted content: %+v", idx, c)
			}
		}
	})
}
