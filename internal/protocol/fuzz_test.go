package protocol

import (
	"bytes"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzRecv throws arbitrary bytes at the wire decoder: the server reads
// these straight off TCP connections from untrusted clients, so Recv
// must never panic and must terminate.
func FuzzRecv(f *testing.F) {
	seed := [][]byte{
		nil,
		[]byte("{}\n"),
		[]byte(`{"type":"register","ver":1,"snapshot":{"hostname":"h","cpu_ghz":2,"mem_mb":512}}` + "\n"),
		[]byte(`{"type":"sync","client_id":"x","have":["a","b"],"want":5}` + "\n"),
		[]byte(`{"type":"results","payload":"run t\nendrun\n"}` + "\n"),
		[]byte("not json at all\n"),
		[]byte(`{"type":1234}` + "\n"),
		[]byte(`{"type":"ack"`), // truncated
		bytes.Repeat([]byte("x"), 4096),
	}
	// v3 binary framing seeds: a valid frame, a frame truncated inside
	// its length prefix, a frame cut mid-payload, and a frame whose CRC
	// trailer is corrupted.
	v3frame, err := AppendFrame(nil, Message{Type: TypeResults, ClientID: "uucs-1", Seq: 3, Payload: "run\tword\tcpu\t0.45\t1\t173ms\tok\n"})
	if err != nil {
		f.Fatal(err)
	}
	seed = append(seed,
		v3frame,
		append(append([]byte(nil), v3frame...), v3frame...), // back-to-back frames
		v3frame[:3],              // truncated inside the length prefix
		v3frame[:len(v3frame)-6], // truncated mid-payload
		func() []byte { // CRC trailer corruption
			b := append([]byte(nil), v3frame...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
		append(append([]byte(nil), v3frame...), []byte(`{"type":"ack","seq":1,"sum":0}`+"\n")...), // mixed framings on one stream
		[]byte{FrameMagic, 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge declared length
		[]byte{FrameMagic, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}, // overlong varint
	)
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		conn := NewConn(rwBuffer{in: bytes.NewBuffer(input), out: &bytes.Buffer{}})
		for i := 0; i < 16; i++ { // bounded: a stream yields finite messages
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if m.Type == "" {
				t.Fatal("Recv returned a typeless message without error")
			}
			// Anything accepted must re-send cleanly.
			if err := conn.Send(m); err != nil {
				t.Fatalf("accepted message failed to send: %v", err)
			}
		}
	})
}

// FuzzDecodeFrame throws arbitrary bytes at the exported v3 frame
// decoder — the codec journal replay and merge run over on-disk bytes
// — and checks it never panics, never reads past its input, and that
// anything it accepts re-encodes to a frame carrying the same message.
func FuzzDecodeFrame(f *testing.F) {
	valid, err := AppendFrame(nil, Message{Type: TypeResults, ClientID: "uucs-1", Seq: 3, Payload: "p"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:3])
	f.Add(valid[:len(valid)-2])
	f.Add(append(append([]byte(nil), valid...), 0xB3))
	f.Add([]byte{FrameMagic, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, input []byte) {
		var f1 Frame
		n, err := DecodeFrame(input, &f1)
		if err != nil {
			return
		}
		if n <= 0 || n > len(input) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(input))
		}
		m, err := f1.Message()
		if err != nil {
			return // accepted framing, unparseable nested field
		}
		re, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		var f2 Frame
		if _, err := DecodeFrame(re, &f2); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		m2, err := f2.Message()
		if err != nil {
			t.Fatalf("re-encoded frame failed to materialize: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-encode changed the message:\n got %+v\nwant %+v", m2, m)
		}
	})
}

// FuzzSendRoundTrip encodes arbitrary messages in both framings — the
// seed corpus covers the sequence-numbered upload and its ack in v2
// and v3 — and checks two properties: an encoded message decodes to
// itself, and a single flipped byte of the encoding is either rejected
// or provably harmless (the original content still arrives intact).
// The receiver sniffs the framing per message, so this also exercises
// the cross-version path a mid-rollout fleet runs: v2 frames and v3
// frames arriving at the same decoder.
func FuzzSendRoundTrip(f *testing.F) {
	for _, v3 := range []bool{false, true} {
		f.Add("results", "uucs-0000000000000001", "run tc-1\ntask word\nuser 3\nendrun\n", uint64(1), false, 1, v3)
		f.Add("results", "uucs-ffffffffffffffff", "", uint64(18446744073709551615), false, 0, v3)
		f.Add("ack", "", "", uint64(7), true, 3, v3)
		f.Add("ack", "", "", uint64(0), false, 0, v3)
		f.Add("register", "", "", uint64(0), false, 0, v3)
		f.Add("sync", "uucs-2", "", uint64(0), false, 16, v3)
	}
	f.Add("ship", "", "segment \x00\xff not utf8", uint64(2), false, 0, true)
	f.Fuzz(func(t *testing.T, typ, clientID, payload string, seq uint64, dup bool, count int, v3 bool) {
		if typ == "" {
			return // Recv rejects typeless messages by design
		}
		m := Message{Type: MsgType(typ), ClientID: clientID, Payload: payload, Seq: seq, Dup: dup, Count: count}
		var wire bytes.Buffer
		sender := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
		if v3 {
			sender.SetVersion(V3)
		}
		if err := sender.Send(m); err != nil {
			t.Fatalf("send failed: %v", err)
		}
		frame := append([]byte(nil), wire.Bytes()...)

		// JSON marshalling coerces invalid UTF-8 to U+FFFD, which makes the
		// checksum non-canonical (the sender hashes the escaped form, the
		// receiver re-hashes the decoded rune). The v2 framing may
		// therefore reject fuzzed garbage, which is the safe outcome — it
		// must just never be mangled silently. The v3 framing is
		// binary-safe: round-trip identity holds for every input.
		valid := v3 || (utf8.ValidString(typ) && utf8.ValidString(clientID) && utf8.ValidString(payload))
		got, err := NewConn(rwBuffer{in: bytes.NewBuffer(frame), out: &bytes.Buffer{}}).Recv()
		if err != nil {
			if valid {
				t.Fatalf("clean round trip failed: %v", err)
			}
			return
		}
		if valid {
			if got.Type != m.Type || got.ClientID != m.ClientID || got.Payload != m.Payload ||
				got.Seq != m.Seq || got.Dup != m.Dup || got.Count != m.Count {
				t.Fatalf("round trip mangled message: sent %+v, got %+v", m, got)
			}
		}

		// Single-byte corruption at a few deterministic offsets: never
		// silently deliver different content.
		for _, idx := range []int{0, len(frame) / 3, 2 * len(frame) / 3, len(frame) - 2} {
			if idx < 0 || idx >= len(frame)-1 { // keep the v2 framing newline
				continue
			}
			mut := append([]byte(nil), frame...)
			mut[idx] ^= 0x01
			if !v3 && mut[idx] == '\n' {
				continue
			}
			c, err := NewConn(rwBuffer{in: bytes.NewBuffer(mut), out: &bytes.Buffer{}}).Recv()
			if err != nil {
				continue // rejected: corruption caught
			}
			if c.Type != got.Type || c.ClientID != got.ClientID || c.Payload != got.Payload ||
				c.Seq != got.Seq || c.Dup != got.Dup || c.Count != got.Count {
				t.Fatalf("flip at %d delivered corrupted content: %+v", idx, c)
			}
		}
	})
}
