package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"time"
	"unsafe"
)

// Protocol version 3: length-prefixed binary framing.
//
// The v2 frame is a JSON object per line with a spliced CRC — readable,
// but every hop pays a full JSON parse plus a second full encode (the
// checksum is verified by re-encoding the decoded message). At fleet
// scale that per-message CPU is the scaling currency, so v3 replaces
// the text frame with a binary one that decodes by slicing:
//
//	+------+-----------------+---------------------+-------------+
//	| 0xB3 | payload length  |       payload       |   CRC32     |
//	|magic |  (uvarint, ≤5B) |  (tagged fields)    | (IEEE, LE)  |
//	+------+-----------------+---------------------+-------------+
//
// The payload starts with the message type code (uvarint), followed by
// tagged fields: each tag is a uvarint whose low bit is the wire kind
// (0 = uvarint value, 1 = length-prefixed bytes) and whose high bits
// are the field id — so unknown fields are skippable and the format is
// forward-extensible. The CRC32 trailer covers the payload bytes
// exactly as they sit in the frame, which makes verification a single
// table walk instead of a re-encode, and makes the frame safe to store
// and forward verbatim: the server journals accepted v3 result frames
// byte-for-byte, replicas receive those same bytes, and replay,
// compaction, and merge all re-read them without ever re-encoding.
//
// The first byte distinguishes the framings on sight: a v2 frame
// begins with '{' (0x7B), a v3 frame with 0xB3 — not valid UTF-8, so
// no JSON line can start with it. Every receiver sniffs per frame and
// answers in the framing of the request, which is what lets one server
// port serve a mixed v2/v3 fleet mid-rollout with no connection state.
//
// Negotiation happens at registration (see DESIGN.md for the state
// machine): a client that does not know the server's version sends its
// register in v2 framing with Ver=3; a v3 server accepts Ver 2 or 3
// and echoes the granted version in the registered reply, after which
// the client frames everything in the granted version. A v2 server
// rejects Ver=3 in-band, and a v2 client's Ver=2 register is granted
// Ver=2 — both sides of the rollout keep working.

// Protocol versions. Version is the highest this build speaks;
// registration negotiates down to V2 for old peers.
const (
	V2 = 2
	V3 = 3
)

// FrameMagic is the first byte of every v3 frame. It is not '{', not
// printable ASCII, and not a valid UTF-8 leading byte, so binary and
// JSON frames (and journal records) are distinguishable by one byte.
const FrameMagic = 0xB3

// ConnBufSize is the shared sizing constant for per-connection framing
// buffers: the buffered reader every Conn fronts its stream with, and
// the kernel socket buffers TuneConn requests. One constant so the
// read and write sides of a hop agree and tuning happens in one place.
const ConnBufSize = 64 << 10

// TuneConn applies the protocol's transport tuning to a network
// connection. TCP_NODELAY is set explicitly: every message here is one
// complete request or reply that the peer is blocked on, so delaying
// the final segment for coalescing (Nagle) only adds ack latency.
// Non-TCP connections (in-memory pipes, chaos transports) pass through
// untouched. NewConn calls this automatically.
func TuneConn(nc net.Conn) {
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(true)
	_ = tc.SetReadBuffer(ConnBufSize)
	_ = tc.SetWriteBuffer(ConnBufSize)
}

// Message type codes (uvarint, first value of every frame payload).
// Code 0 is reserved for types outside this table, whose name then
// travels in fieldTypeName — nothing the fleet sends today, but it
// keeps the binary framing total over arbitrary Message values.
var typeCodes = map[MsgType]uint64{
	TypeRegister:    1,
	TypeRegistered:  2,
	TypeSync:        3,
	TypeTestcases:   4,
	TypeResults:     5,
	TypeAck:         6,
	TypeError:       7,
	TypeShip:        8,
	TypeShipAck:     9,
	TypeJournalMeta: 10,
}

var typeByCode = [...]MsgType{
	0:  "",
	1:  TypeRegister,
	2:  TypeRegistered,
	3:  TypeSync,
	4:  TypeTestcases,
	5:  TypeResults,
	6:  TypeAck,
	7:  TypeError,
	8:  TypeShip,
	9:  TypeShipAck,
	10: TypeJournalMeta,
}

// Field ids. The wire tag is id<<1 | kind, kind 0 = uvarint value,
// kind 1 = length-prefixed bytes; ints round-trip through uint64.
const (
	fieldVer      = 1  // uvarint
	fieldNonce    = 2  // bytes
	fieldClientID = 3  // bytes
	fieldWant     = 4  // uvarint
	fieldPayload  = 5  // bytes
	fieldCount    = 6  // uvarint
	fieldSeq      = 7  // uvarint
	fieldDup      = 8  // uvarint (0/1)
	fieldNode     = 9  // bytes
	fieldErr      = 10 // bytes
	fieldSnapshot = 11 // bytes: nested snapshot encoding
	fieldHave     = 12 // bytes: nested id list
	fieldTypeName = 13 // bytes: type outside the code table (code 0)
)

// lenPrefixBytes is the fixed width of the frame's payload-length
// prefix: a uvarint padded to 5 bytes (continuation bits set), so the
// encoder can reserve the prefix, encode the payload in place, and
// back-patch the length without moving a byte. Decoders accept any
// uvarint width — padding is a valid, if non-minimal, encoding.
const lenPrefixBytes = 5

// ErrShortFrame reports that a buffer ends before the v3 frame it
// starts does — the signature of a torn tail (journal replay) or a
// not-yet-complete read, as opposed to corruption.
var ErrShortFrame = errors.New("protocol: truncated v3 frame")

// putPaddedUvarint writes v as a uvarint padded to exactly
// lenPrefixBytes bytes.
func putPaddedUvarint(b []byte, v uint64) {
	for i := 0; i < lenPrefixBytes-1; i++ {
		b[i] = byte(v) | 0x80
		v >>= 7
	}
	b[lenPrefixBytes-1] = byte(v)
}

func appendUintField(dst []byte, id uint64, v uint64) []byte {
	dst = binary.AppendUvarint(dst, id<<1)
	return binary.AppendUvarint(dst, v)
}

func appendBytesTag(dst []byte, id uint64, n int) []byte {
	dst = binary.AppendUvarint(dst, id<<1|1)
	return binary.AppendUvarint(dst, uint64(n))
}

func appendBytesField(dst []byte, id uint64, b []byte) []byte {
	dst = appendBytesTag(dst, id, len(b))
	return append(dst, b...)
}

func appendStringField(dst []byte, id uint64, s string) []byte {
	dst = appendBytesTag(dst, id, len(s))
	return append(dst, s...)
}

// appendLenString appends a uvarint length + raw bytes (the nested
// encodings' primitive).
func appendLenString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendFrame appends the complete v3 encoding of m to dst and returns
// the extended slice. The inverse of DecodeFrame.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	return appendFrame(dst, m, nil)
}

// appendFrame encodes m; a non-nil payload overrides m.Payload without
// going through a string (the zero-copy send path for journal segment
// shipping).
func appendFrame(dst []byte, m Message, payload []byte) ([]byte, error) {
	start := len(dst)
	dst = append(dst, FrameMagic)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0)
	payloadAt := len(dst)

	code := typeCodes[m.Type]
	dst = binary.AppendUvarint(dst, code)
	if code == 0 {
		dst = appendStringField(dst, fieldTypeName, string(m.Type))
	}
	if m.Ver != 0 {
		dst = appendUintField(dst, fieldVer, uint64(m.Ver))
	}
	if m.Snapshot != nil {
		dst = appendSnapshotField(dst, m.Snapshot)
	}
	if m.Nonce != "" {
		dst = appendStringField(dst, fieldNonce, m.Nonce)
	}
	if m.ClientID != "" {
		dst = appendStringField(dst, fieldClientID, m.ClientID)
	}
	if len(m.Have) > 0 {
		dst = appendHaveField(dst, m.Have)
	}
	if m.Want != 0 {
		dst = appendUintField(dst, fieldWant, uint64(m.Want))
	}
	switch {
	case payload != nil:
		dst = appendBytesField(dst, fieldPayload, payload)
	case m.Payload != "":
		dst = appendStringField(dst, fieldPayload, m.Payload)
	}
	if m.Count != 0 {
		dst = appendUintField(dst, fieldCount, uint64(m.Count))
	}
	if m.Seq != 0 {
		dst = appendUintField(dst, fieldSeq, m.Seq)
	}
	if m.Dup {
		dst = appendUintField(dst, fieldDup, 1)
	}
	if m.Node != "" {
		dst = appendStringField(dst, fieldNode, m.Node)
	}
	if m.Err != "" {
		dst = appendStringField(dst, fieldErr, m.Err)
	}

	n := len(dst) - payloadAt
	if n > maxLine {
		return dst[:start], fmt.Errorf("protocol: message too large (%d bytes)", n)
	}
	putPaddedUvarint(dst[lenAt:lenAt+lenPrefixBytes], uint64(n))
	sum := crc32.ChecksumIEEE(dst[payloadAt:])
	return binary.LittleEndian.AppendUint32(dst, sum), nil
}

// appendSnapshotField encodes the registration snapshot as a nested
// positional payload (hostname, os, the three float64 bit patterns,
// then the app list). Nested length prefixes use the same padded
// reservation trick as the frame itself.
func appendSnapshotField(dst []byte, s *Snapshot) []byte {
	dst = binary.AppendUvarint(dst, fieldSnapshot<<1|1)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0)
	at := len(dst)
	dst = appendLenString(dst, s.Hostname)
	dst = appendLenString(dst, s.OS)
	dst = binary.AppendUvarint(dst, math.Float64bits(s.CPUGHz))
	dst = binary.AppendUvarint(dst, math.Float64bits(s.MemMB))
	dst = binary.AppendUvarint(dst, math.Float64bits(s.DiskGB))
	dst = binary.AppendUvarint(dst, uint64(len(s.Apps)))
	for _, app := range s.Apps {
		dst = appendLenString(dst, app)
	}
	putPaddedUvarint(dst[lenAt:lenAt+lenPrefixBytes], uint64(len(dst)-at))
	return dst
}

// appendHaveField encodes the sync have-list as a nested count +
// length-prefixed ids.
func appendHaveField(dst []byte, have []string) []byte {
	dst = binary.AppendUvarint(dst, fieldHave<<1|1)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0)
	at := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(have)))
	for _, id := range have {
		dst = appendLenString(dst, id)
	}
	putPaddedUvarint(dst[lenAt:lenAt+lenPrefixBytes], uint64(len(dst)-at))
	return dst
}

// Frame is one decoded wire message. For a v3 frame every byte-slice
// field is a BORROWED view into the connection's (or caller's) buffer:
// zero bytes are copied between the read buffer and the caller, and
// the views stay valid only until the next RecvFrame on the same Conn
// (or, for DecodeFrame, while the input buffer lives). Callers that
// retain a field must copy it.
//
// For a v2 (JSON) frame only WireVersion, Type, and the scalar fields
// are populated here; the fully materialized form is available from
// Message(). Raw() is the v3 frame's exact wire bytes — nil for v2.
type Frame struct {
	// WireVersion is the framing the message arrived in: V2 or V3.
	WireVersion int

	Type     MsgType
	Ver      int
	Nonce    []byte
	ClientID []byte
	Have     [][]byte
	Want     int
	Payload  []byte
	Count    int
	Seq      uint64
	Dup      bool
	Node     []byte
	Err      []byte

	snapRaw []byte
	snap    *Snapshot
	msg     Message // v2 only: the decoded message
	raw     []byte  // v3 only: the complete frame bytes
}

// reset clears f for reuse, keeping the Have backing array.
func (f *Frame) reset() {
	have := f.Have[:0]
	*f = Frame{Have: have}
}

// Raw returns the frame's verbatim wire bytes (magic through CRC
// trailer) for a v3 frame, nil for a v2 frame. The slice is borrowed:
// valid until the next RecvFrame on the same Conn. These are the bytes
// the server journals and the router forwards — stored and shipped
// exactly as they arrived, CRC and all.
func (f *Frame) Raw() []byte { return f.raw }

// DecodeSnapshot returns the registration snapshot carried by the
// frame, or nil if it has none. The returned snapshot owns its memory.
func (f *Frame) DecodeSnapshot() (*Snapshot, error) {
	if f.snap != nil {
		return f.snap, nil
	}
	if f.snapRaw == nil {
		return nil, nil
	}
	b := f.snapRaw
	var s Snapshot
	host, pos, err := readLenBytes(b, 0)
	if err != nil {
		return nil, fmt.Errorf("protocol: snapshot hostname: %w", err)
	}
	s.Hostname = string(host)
	osb, pos, err := readLenBytes(b, pos)
	if err != nil {
		return nil, fmt.Errorf("protocol: snapshot os: %w", err)
	}
	s.OS = string(osb)
	var bits [3]uint64
	for i := range bits {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("protocol: snapshot hardware field %d truncated", i)
		}
		bits[i], pos = v, pos+n
	}
	s.CPUGHz = math.Float64frombits(bits[0])
	s.MemMB = math.Float64frombits(bits[1])
	s.DiskGB = math.Float64frombits(bits[2])
	nApps, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("protocol: snapshot app count truncated")
	}
	pos += n
	if nApps > uint64(len(b)-pos) {
		return nil, fmt.Errorf("protocol: snapshot app count %d exceeds payload", nApps)
	}
	for i := uint64(0); i < nApps; i++ {
		var app []byte
		app, pos, err = readLenBytes(b, pos)
		if err != nil {
			return nil, fmt.Errorf("protocol: snapshot app %d: %w", i, err)
		}
		s.Apps = append(s.Apps, string(app))
	}
	if pos != len(b) {
		return nil, fmt.Errorf("protocol: %d trailing bytes after snapshot", len(b)-pos)
	}
	f.snap = &s
	return f.snap, nil
}

// AsError converts a TypeError frame into a Go error, passing other
// frames through — the Frame analogue of AsError.
func (f *Frame) AsError() error {
	if f.Type == TypeError {
		return fmt.Errorf("protocol: server error: %s", f.Err)
	}
	return nil
}

// Message materializes the frame as a Message, copying every borrowed
// byte field into owned strings. For v2 frames this is the original
// decoded message (checksum field included) at no extra cost; for v3
// frames it is the compatibility bridge for callers that want owned
// data.
func (f *Frame) Message() (Message, error) {
	if f.WireVersion == V2 {
		return f.msg, nil
	}
	m := Message{
		Type: f.Type, Ver: f.Ver, Want: f.Want, Count: f.Count,
		Seq: f.Seq, Dup: f.Dup,
	}
	if len(f.Nonce) > 0 {
		m.Nonce = string(f.Nonce)
	}
	if len(f.ClientID) > 0 {
		m.ClientID = string(f.ClientID)
	}
	if len(f.Payload) > 0 {
		m.Payload = string(f.Payload)
	}
	if len(f.Node) > 0 {
		m.Node = string(f.Node)
	}
	if len(f.Err) > 0 {
		m.Err = string(f.Err)
	}
	for _, id := range f.Have {
		m.Have = append(m.Have, string(id))
	}
	snap, err := f.DecodeSnapshot()
	if err != nil {
		return m, err
	}
	if snap != nil {
		s := *snap
		m.Snapshot = &s
	}
	return m, nil
}

// readLenBytes reads a uvarint length + that many bytes at pos.
func readLenBytes(b []byte, pos int) ([]byte, int, error) {
	n, w := binary.Uvarint(b[pos:])
	if w <= 0 {
		return nil, pos, fmt.Errorf("truncated length")
	}
	pos += w
	if n > uint64(len(b)-pos) {
		return nil, pos, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(b)-pos)
	}
	return b[pos : pos+int(n)], pos + int(n), nil
}

// DecodeFrame parses one complete v3 frame from the front of b into f
// and returns the number of bytes it occupied. Byte-slice fields in f
// borrow from b. A buffer that ends mid-frame returns ErrShortFrame
// (distinguishing a torn tail from corruption); a complete frame whose
// CRC trailer does not match its payload is corruption and fails hard.
func DecodeFrame(b []byte, f *Frame) (int, error) {
	f.reset()
	total, err := FrameLen(b)
	if err != nil {
		return 0, err
	}
	plen, w := binary.Uvarint(b[1:])
	hdr := 1 + w
	payload := b[hdr : hdr+int(plen)]
	want := binary.LittleEndian.Uint32(b[hdr+int(plen):])
	if crc32.ChecksumIEEE(payload) != want {
		return 0, fmt.Errorf("protocol: frame checksum mismatch (message corrupted)")
	}
	if err := decodeFields(payload, f); err != nil {
		return 0, err
	}
	f.WireVersion = V3
	f.raw = b[:total]
	return total, nil
}

// FrameLen reports the total on-wire length of the v3 frame starting
// at b[0], without validating its checksum or decoding its fields. It
// fails exactly where DecodeFrame's framing layer would — ErrShortFrame
// when b ends before the declared length does, a hard error on a bad
// magic byte or a malformed/oversized length prefix — which is what
// lets journal replay split a file into record boundaries cheaply and
// still agree byte-for-byte with a full serial decode.
func FrameLen(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, ErrShortFrame
	}
	if b[0] != FrameMagic {
		return 0, fmt.Errorf("protocol: not a v3 frame (leading byte 0x%02x)", b[0])
	}
	plen, w := binary.Uvarint(b[1:])
	if w == 0 {
		if len(b) > 11 {
			return 0, fmt.Errorf("protocol: malformed frame length prefix")
		}
		return 0, ErrShortFrame
	}
	if w < 0 || plen > maxLine {
		return 0, fmt.Errorf("protocol: frame payload length %d exceeds %d bytes", plen, maxLine)
	}
	total := 1 + w + int(plen) + 4
	if len(b) < total {
		return 0, ErrShortFrame
	}
	return total, nil
}

// decodeFields parses a frame payload into f.
func decodeFields(payload []byte, f *Frame) error {
	code, w := binary.Uvarint(payload)
	if w <= 0 {
		return fmt.Errorf("protocol: frame without type code")
	}
	if code >= uint64(len(typeByCode)) {
		return fmt.Errorf("protocol: unknown message type code %d", code)
	}
	f.Type = typeByCode[code]
	pos := w
	for pos < len(payload) {
		tag, w := binary.Uvarint(payload[pos:])
		if w <= 0 {
			return fmt.Errorf("protocol: truncated field tag at offset %d", pos)
		}
		pos += w
		id := tag >> 1
		if tag&1 == 0 {
			v, w := binary.Uvarint(payload[pos:])
			if w <= 0 {
				return fmt.Errorf("protocol: truncated field %d value", id)
			}
			pos += w
			switch id {
			case fieldVer:
				f.Ver = int(v)
			case fieldWant:
				f.Want = int(v)
			case fieldCount:
				f.Count = int(v)
			case fieldSeq:
				f.Seq = v
			case fieldDup:
				f.Dup = v != 0
			default:
				// Unknown varint field: skipped (forward compatibility).
			}
			continue
		}
		val, next, err := readLenBytes(payload, pos)
		if err != nil {
			return fmt.Errorf("protocol: field %d: %w", id, err)
		}
		pos = next
		switch id {
		case fieldNonce:
			f.Nonce = val
		case fieldClientID:
			f.ClientID = val
		case fieldPayload:
			f.Payload = val
		case fieldNode:
			f.Node = val
		case fieldErr:
			f.Err = val
		case fieldSnapshot:
			f.snapRaw = val
		case fieldHave:
			if err := decodeHave(val, f); err != nil {
				return err
			}
		case fieldTypeName:
			if f.Type == "" {
				f.Type = MsgType(val)
			}
		default:
			// Unknown bytes field: skipped (forward compatibility).
		}
	}
	return nil
}

// decodeHave parses the nested have-list, reusing f.Have's backing.
func decodeHave(b []byte, f *Frame) error {
	count, w := binary.Uvarint(b)
	if w <= 0 {
		return fmt.Errorf("protocol: truncated have count")
	}
	if count > uint64(len(b)-w) {
		return fmt.Errorf("protocol: have count %d exceeds payload", count)
	}
	pos := w
	for i := uint64(0); i < count; i++ {
		id, next, err := readLenBytes(b, pos)
		if err != nil {
			return fmt.Errorf("protocol: have entry %d: %w", i, err)
		}
		f.Have = append(f.Have, id)
		pos = next
	}
	if pos != len(b) {
		return fmt.Errorf("protocol: %d trailing bytes after have list", len(b)-pos)
	}
	return nil
}

// SetVersion selects the framing Send uses: V2 (JSON lines, the
// default) or V3 (binary). Receiving always auto-detects per frame, and
// RecvFrame re-points the send framing at the sender's — a server
// answers each request in the framing it arrived in — so SetVersion
// matters on the requesting side: clients pin it from negotiation.
func (c *Conn) SetVersion(v int) {
	if v == V3 {
		c.version = V3
	} else {
		c.version = V2
	}
}

// Version reports the framing Send currently uses (V2 or V3).
func (c *Conn) Version() int {
	if c.version == V3 {
		return V3
	}
	return V2
}

// RecvFrame reads one message in either framing, verifying its
// integrity (CRC trailer for v3, checksum field for v2), and returns
// the connection-owned decoded frame. The frame and every borrowed
// field in it are valid only until the next RecvFrame or Recv on this
// Conn. As a side effect the connection's send framing is set to the
// frame's, so replies go back the way the request came.
//
// This is the zero-copy ingest path: for a v3 frame the payload bytes
// the caller sees (and the Raw() bytes it may journal or forward) are
// read into a buffer reused across messages — steady state receives
// allocate nothing.
func (c *Conn) RecvFrame() (*Frame, error) {
	if c.d != nil && c.timeout > 0 {
		if err := c.d.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	first, err := c.r.r.Peek(1)
	if err != nil {
		return nil, err
	}
	f := &c.frame
	if first[0] == FrameMagic {
		if err := c.readBinaryFrame(f); err != nil {
			return nil, err
		}
	} else {
		line, err := c.r.readLine()
		if err != nil {
			return nil, err
		}
		m, err := decodeLine(line)
		if err != nil {
			return nil, err
		}
		f.reset()
		f.WireVersion = V2
		f.msg = m
		f.Type = m.Type
		f.Ver = m.Ver
		f.Want = m.Want
		f.Count = m.Count
		f.Seq = m.Seq
		f.Dup = m.Dup
		f.snap = m.Snapshot
	}
	if f.Type == "" {
		return nil, fmt.Errorf("protocol: message without type")
	}
	c.version = f.WireVersion
	return f, nil
}

// readBinaryFrame assembles one complete v3 frame into the reused
// connection buffer and decodes it in place.
func (c *Conn) readBinaryFrame(f *Frame) error {
	br := c.r.r
	buf := c.rbuf[:0]
	magic, err := br.ReadByte()
	if err != nil {
		return err
	}
	buf = append(buf, magic)
	var plen uint64
	var shift uint
	for {
		if shift > 63 {
			return fmt.Errorf("protocol: malformed frame length prefix")
		}
		bt, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		buf = append(buf, bt)
		plen |= uint64(bt&0x7f) << shift
		shift += 7
		if bt&0x80 == 0 {
			break
		}
	}
	if plen > maxLine {
		c.rbuf = buf
		return fmt.Errorf("protocol: frame payload length %d exceeds %d bytes", plen, maxLine)
	}
	hdr := len(buf)
	total := hdr + int(plen) + 4
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, buf)
		buf = grown[:hdr]
	}
	buf = buf[:total]
	c.rbuf = buf
	if _, err := io.ReadFull(br, buf[hdr:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	_, err = DecodeFrame(buf, f)
	return err
}

// decodeLine decodes and checksum-verifies one v2 JSON line.
func decodeLine(line []byte) (Message, error) {
	var m Message
	if err := unmarshalMessage(line, &m); err != nil {
		return m, fmt.Errorf("protocol: bad message: %w", err)
	}
	if m.Type == "" {
		return m, fmt.Errorf("protocol: message without type")
	}
	if m.Sum == nil {
		return m, fmt.Errorf("protocol: message without checksum")
	}
	want, err := checksum(m)
	if err != nil {
		return m, fmt.Errorf("protocol: marshal: %w", err)
	}
	if want != *m.Sum {
		return m, fmt.Errorf("protocol: checksum mismatch (message corrupted in flight)")
	}
	return m, nil
}

// WriteRaw writes pre-encoded frame bytes — a Raw() view, a journal
// record — to the stream verbatim, under the connection's write
// deadline. The router's forwarding path uses this to relay frames
// without re-encoding them.
func (c *Conn) WriteRaw(b []byte) error {
	if c.d != nil && c.timeout > 0 {
		if err := c.d.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	_, err := c.rw.Write(b)
	return err
}

// sendBinary encodes m as one v3 frame through the pooled encoder and
// writes it. payload, when non-nil, overrides m.Payload without a
// string conversion.
func (c *Conn) sendBinary(m Message, payload []byte) error {
	e := encPool.Get().(*wireEncoder)
	defer encPool.Put(e)
	var err error
	e.bin, err = appendFrame(e.bin[:0], m, payload)
	if err != nil {
		return err
	}
	if c.d != nil && c.timeout > 0 {
		if err := c.d.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	_, err = c.rw.Write(e.bin)
	return err
}

// SendPayload sends m with its payload taken directly from a byte
// slice, avoiding the string copy Send's Message.Payload would force.
// m.Payload must be empty. The cluster shipper uses this to forward
// journal segments — already-encoded frame bytes — without copying
// them; binary-safe only under v3 framing (see Shipper).
func (c *Conn) SendPayload(m Message, payload []byte) error {
	if c.version == V3 {
		return c.sendBinary(m, payload)
	}
	// v2 JSON framing: the encoder copies the bytes into its buffer
	// before this call returns, so an unsafe no-copy view is sound.
	m.Payload = unsafeString(payload)
	return c.Send(m)
}

// unsafeString returns a string view of b without copying. The caller
// must guarantee b is neither mutated nor retained past the view's use.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
