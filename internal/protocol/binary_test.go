package protocol

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// roundTripMessages is the shape coverage shared by the v3 round-trip
// tests: every message type the fleet sends, plus edge shapes (empty
// payload, zero values omitted, code-0 unknown type).
func roundTripMessages() []Message {
	return []Message{
		benchMessage(),
		{Type: TypeRegister, Ver: Version, Nonce: "n-1", Snapshot: &Snapshot{
			Hostname: "h", OS: "linux", CPUGHz: 2.4, MemMB: 8192, DiskGB: 256,
			Apps: []string{"word", "game"},
		}},
		{Type: TypeRegistered, ClientID: "uucs-0000000000000001", Ver: V3},
		{Type: TypeSync, ClientID: "c1", Have: []string{"tc-1", "tc-2"}, Want: 10},
		{Type: TypeTestcases, Payload: "tc\tword\t0.5\n", Count: 1},
		{Type: TypeAck, Seq: 7, Count: 3, Dup: true},
		{Type: TypeError, Err: `quote " and \ backslash`},
		{Type: TypeShip, Node: "n2", Seq: 9, Payload: "segment-bytes\x00\xff"},
		{Type: TypeShipAck, Node: "n2", Seq: 9},
		{Type: TypeJournalMeta, Ver: 3},
		{Type: MsgType("future-type"), Payload: "p"},
		{Type: TypeResults},
	}
}

// TestBinaryFrameRoundTrips sends every message shape in v3 framing
// and verifies Recv materializes an identical message.
func TestBinaryFrameRoundTrips(t *testing.T) {
	for _, m := range roundTripMessages() {
		frame := encodedFrameV(t, m, V3)
		c := NewConn(&repeatReader{frame: frame})
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("%s: round trip: %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

// TestDecodeFrameRoundTrips round-trips through the exported
// AppendFrame/DecodeFrame pair (the journal's record codec) and checks
// the borrowed views against the source message.
func TestDecodeFrameRoundTrips(t *testing.T) {
	for _, m := range roundTripMessages() {
		b, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		var f Frame
		n, err := DecodeFrame(b, &f)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if n != len(b) {
			t.Errorf("%s: decode consumed %d of %d bytes", m.Type, n, len(b))
		}
		if !bytes.Equal(f.Raw(), b) {
			t.Errorf("%s: Raw() is not the verbatim frame", m.Type)
		}
		got, err := f.Message()
		if err != nil {
			t.Fatalf("%s: materialize: %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

// TestDecodeFrameTruncation verifies that every prefix of a valid
// frame fails with ErrShortFrame — the torn-tail signal journal replay
// depends on — and never decodes as something else.
func TestDecodeFrameTruncation(t *testing.T) {
	b, err := AppendFrame(nil, benchMessage())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		var f Frame
		_, err := DecodeFrame(b[:cut], &f)
		if !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrShortFrame", cut, len(b), err)
		}
	}
}

// TestDecodeFrameCorruption flips each byte of a valid frame and
// requires the decoder to either reject the frame or decode a message
// identical to the original (a flip confined to skippable padding).
// Corruption must never be mistaken for truncation: a complete frame
// with a bad CRC is poison, not a torn tail.
func TestDecodeFrameCorruption(t *testing.T) {
	orig := benchMessage()
	b, err := AppendFrame(nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x01
		var f Frame
		_, err := DecodeFrame(mut, &f)
		if err != nil {
			continue // rejected: corruption detected
		}
		got, err := f.Message()
		if err != nil || !reflect.DeepEqual(got, orig) {
			t.Fatalf("flip at byte %d decoded a different message (err %v)", i, err)
		}
	}
	// CRC trailer corruption specifically must fail as corruption, not
	// as a short frame.
	mut := append([]byte(nil), b...)
	mut[len(mut)-1] ^= 0xff
	var f Frame
	if _, err := DecodeFrame(mut, &f); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("CRC corruption: got %v, want hard decode error", err)
	}
}

// TestRecvFrameRepliesInKind verifies the negotiation mechanics on the
// serving side: after receiving a frame, the connection's send framing
// matches the frame's wire version, so replies always parse at the
// requester.
func TestRecvFrameRepliesInKind(t *testing.T) {
	v2frame := encodedFrame(t, benchMessage())
	v3frame := encodedFrameV(t, benchMessage(), V3)
	stream := append(append([]byte(nil), v3frame...), v2frame...)
	c := NewConn(&repeatReader{frame: stream})
	f, err := c.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.WireVersion != V3 || c.Version() != V3 {
		t.Fatalf("after v3 frame: wire %d, conn %d; want V3/V3", f.WireVersion, c.Version())
	}
	if f, err = c.RecvFrame(); err != nil {
		t.Fatal(err)
	}
	if f.WireVersion != V2 || c.Version() != V2 {
		t.Fatalf("after v2 frame: wire %d, conn %d; want V2/V2", f.WireVersion, c.Version())
	}
}

// TestRecvFrameBorrowedFields checks the v3 frame exposes the expected
// borrowed views, and that Raw() is the verbatim wire frame.
func TestRecvFrameBorrowedFields(t *testing.T) {
	m := benchMessage()
	frame := encodedFrameV(t, m, V3)
	c := NewConn(&repeatReader{frame: frame})
	f, err := c.RecvFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != m.Type || string(f.ClientID) != m.ClientID || f.Seq != m.Seq {
		t.Fatalf("borrowed fields mismatch: %+v", f)
	}
	if string(f.Payload) != m.Payload {
		t.Fatalf("borrowed payload mismatch")
	}
	if !bytes.Equal(f.Raw(), frame) {
		t.Fatalf("Raw() differs from the wire frame")
	}
}

// TestSendPayload verifies the zero-copy payload override is
// equivalent to sending the payload as a string, in both framings —
// except under v2, where binary-unsafe bytes would be mangled by JSON
// string coercion, which is why the shipper always speaks v3.
func TestSendPayload(t *testing.T) {
	payload := []byte("op-bytes \x00\x01 binary safe under v3")
	for _, ver := range []int{V2, V3} {
		if ver == V2 {
			payload = []byte("utf8-only payload under v2")
		}
		var cw captureWriter
		c := NewConn(&cw)
		c.SetVersion(ver)
		m := Message{Type: TypeShip, Node: "n1", Seq: 4}
		if err := c.SendPayload(m, payload); err != nil {
			t.Fatal(err)
		}
		rc := NewConn(&repeatReader{frame: append([]byte(nil), cw.frame...)})
		got, err := rc.Recv()
		if err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		if got.Payload != string(payload) || got.Node != "n1" || got.Seq != 4 {
			t.Fatalf("v%d: payload round trip mismatch: %+v", ver, got)
		}
	}
}

// TestBinaryFrameMaxLine verifies the length-prefix bound: a frame
// whose declared payload exceeds maxLine is rejected on both ends.
func TestBinaryFrameMaxLine(t *testing.T) {
	var cw captureWriter
	c := NewConn(&cw)
	c.SetVersion(V3)
	err := c.Send(Message{Type: TypeResults, Payload: strings.Repeat("x", maxLine)})
	if err == nil {
		t.Fatal("oversized v3 send accepted")
	}
	// Hand-build a tiny frame claiming a huge payload.
	b := []byte{FrameMagic, 0xff, 0xff, 0xff, 0xff, 0x7f}
	var f Frame
	if _, err := DecodeFrame(b, &f); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("oversized length prefix: got %v, want hard decode error", err)
	}
}
