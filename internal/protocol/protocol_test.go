package protocol

import (
	"bytes"
	"strings"
	"testing"
)

// rwBuffer joins a read buffer and write buffer as one stream end.
type rwBuffer struct {
	in  *bytes.Buffer
	out *bytes.Buffer
}

func (b rwBuffer) Read(p []byte) (int, error)  { return b.in.Read(p) }
func (b rwBuffer) Write(p []byte) (int, error) { return b.out.Write(p) }

func TestSendRecvRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	sender := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	msg := Message{
		Type: TypeRegister, Ver: Version,
		Snapshot: &Snapshot{Hostname: "h1", OS: "winxp", CPUGHz: 2.0, MemMB: 512, DiskGB: 80, Apps: []string{"word"}},
	}
	if err := sender.Send(msg); err != nil {
		t.Fatal(err)
	}
	receiver := NewConn(rwBuffer{in: &wire, out: &bytes.Buffer{}})
	got, err := receiver.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeRegister || got.Ver != Version {
		t.Errorf("envelope mismatch: %+v", got)
	}
	if got.Snapshot == nil || got.Snapshot.Hostname != "h1" || got.Snapshot.MemMB != 512 {
		t.Errorf("snapshot mismatch: %+v", got.Snapshot)
	}
}

func TestRecvMultipleMessages(t *testing.T) {
	var wire bytes.Buffer
	s := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	for i := 0; i < 3; i++ {
		if err := s.Send(Message{Type: TypeAck, Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewConn(rwBuffer{in: &wire, out: &bytes.Buffer{}})
	for i := 0; i < 3; i++ {
		m, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Count != i {
			t.Errorf("message %d out of order: %+v", i, m)
		}
	}
	if _, err := r.Recv(); err == nil {
		t.Error("expected EOF after last message")
	}
}

func TestRecvRejectsGarbage(t *testing.T) {
	r := NewConn(rwBuffer{in: bytes.NewBufferString("not json\n"), out: &bytes.Buffer{}})
	if _, err := r.Recv(); err == nil {
		t.Error("garbage accepted")
	}
	r = NewConn(rwBuffer{in: bytes.NewBufferString("{}\n"), out: &bytes.Buffer{}})
	if _, err := r.Recv(); err == nil {
		t.Error("typeless message accepted")
	}
}

func TestLargePayload(t *testing.T) {
	var wire bytes.Buffer
	s := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	payload := strings.Repeat("x", 1<<20)
	if err := s.Send(Message{Type: TypeTestcases, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(rwBuffer{in: &wire, out: &bytes.Buffer{}})
	m, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != 1<<20 {
		t.Errorf("payload length = %d", len(m.Payload))
	}
}

func TestSnapshotValidate(t *testing.T) {
	good := Snapshot{Hostname: "h", OS: "linux", CPUGHz: 2, MemMB: 512}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Snapshot{
		{OS: "linux", CPUGHz: 2, MemMB: 512},
		{Hostname: "h", CPUGHz: 0, MemMB: 512},
		{Hostname: "h", CPUGHz: 2, MemMB: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

func TestAsError(t *testing.T) {
	if err := AsError(Message{Type: TypeAck}); err != nil {
		t.Error("non-error message flagged")
	}
	if err := AsError(Message{Type: TypeError, Err: "boom"}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error message not converted: %v", err)
	}
}

func TestSendError(t *testing.T) {
	var wire bytes.Buffer
	s := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	if err := s.SendError(errTest); err != nil {
		t.Fatal(err)
	}
	r := NewConn(rwBuffer{in: &wire, out: &bytes.Buffer{}})
	m, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeError || m.Err != "test failure" {
		t.Errorf("error round trip: %+v", m)
	}
}

var errTest = errorString("test failure")

type errorString string

func (e errorString) Error() string { return string(e) }
