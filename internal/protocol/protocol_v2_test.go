package protocol

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// TestChecksumDetectsCorruption flips every non-newline byte of an
// encoded message in turn: Recv must either reject the frame or (when
// the flip lands inside the sum field itself) deliver the original
// content intact — never silently deliver corrupted data.
func TestChecksumDetectsCorruption(t *testing.T) {
	var wire bytes.Buffer
	s := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	orig := Message{Type: TypeResults, ClientID: "uucs-1", Seq: 7, Payload: "run a\nendrun\n"}
	if err := s.Send(orig); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), wire.Bytes()...)
	corrupted, delivered := 0, 0
	for i := 0; i < len(frame)-1; i++ { // skip the trailing newline
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		if mut[i] == '\n' { // do not break framing; that is a different fault
			continue
		}
		corrupted++
		r := NewConn(rwBuffer{in: bytes.NewBuffer(mut), out: &bytes.Buffer{}})
		m, err := r.Recv()
		if err != nil {
			continue
		}
		delivered++
		// Accepted despite the flip: only legal if the content survived
		// (the flip hit the sum field's own digits).
		if m.Type != orig.Type || m.ClientID != orig.ClientID || m.Seq != orig.Seq || m.Payload != orig.Payload {
			t.Fatalf("flip at byte %d delivered corrupted content: %+v", i, m)
		}
	}
	if corrupted == 0 {
		t.Fatal("no byte was flipped; test is vacuous")
	}
	if delivered == corrupted {
		t.Error("no corruption was ever detected")
	}
}

// TestSumlessMessageRejected: the checksum is mandatory in v2. A
// message that arrives without one — whether from a pre-v2 sender or
// because corruption destroyed the sum field itself — is rejected, so
// a zeroed or dropped sum can never smuggle an unverified body through.
func TestSumlessMessageRejected(t *testing.T) {
	for _, raw := range []string{
		`{"type":"ack","count":3,"seq":9}`,         // no sum at all
		`{"type":"ack","count":3,"seq":9,"sum":0}`, // explicit zero still verified
	} {
		r := NewConn(rwBuffer{in: bytes.NewBufferString(raw + "\n"), out: &bytes.Buffer{}})
		m, err := r.Recv()
		if raw == `{"type":"ack","count":3,"seq":9}` {
			if err == nil {
				t.Errorf("sumless message accepted: %+v", m)
			}
			continue
		}
		// A present-but-wrong sum (0 is almost surely wrong for this
		// body) must fail verification, not bypass it.
		if err == nil {
			want, cerr := checksum(m)
			if cerr != nil || want != 0 {
				t.Errorf("zero-sum message accepted without matching CRC: %+v", m)
			}
		}
	}
}

// TestSeqAckRoundTrip covers the fault-tolerance envelope fields.
func TestSeqAckRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	s := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	msgs := []Message{
		{Type: TypeRegister, Ver: Version, Nonce: "n-00ff", Snapshot: &Snapshot{Hostname: "h", OS: "w", CPUGHz: 2, MemMB: 512}},
		{Type: TypeResults, ClientID: "uucs-1", Seq: 42, Payload: "run a\nendrun\n"},
		{Type: TypeAck, Count: 1, Seq: 42, Dup: true},
	}
	for _, m := range msgs {
		if err := s.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewConn(rwBuffer{in: &wire, out: &bytes.Buffer{}})
	for i, want := range msgs {
		got, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Sum == nil {
			t.Errorf("message %d sent without checksum", i)
		}
		if got.Type != want.Type || got.Nonce != want.Nonce || got.Seq != want.Seq || got.Dup != want.Dup || got.Count != want.Count {
			t.Errorf("message %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestTimeoutBoundsSilentPeer: with SetTimeout, a Recv against a silent
// peer and a Send against a non-reading peer both fail within the
// deadline instead of blocking forever.
func TestTimeoutBoundsSilentPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(a)
	conn.SetTimeout(30 * time.Millisecond)

	start := time.Now()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("Recv from silent peer succeeded")
	}
	if time.Since(start) > time.Second {
		t.Errorf("Recv deadline took %v", time.Since(start))
	}

	start = time.Now()
	// The peer never reads; an unbuffered pipe write must hit the write
	// deadline.
	if err := conn.Send(Message{Type: TypeAck}); err == nil {
		t.Fatal("Send to non-reading peer succeeded")
	}
	if time.Since(start) > time.Second {
		t.Errorf("Send deadline took %v", time.Since(start))
	}
}

// TestZeroTimeoutMeansNoDeadline: SetTimeout(0) restores blocking
// semantics (verified by success after a slow reader wakes up).
func TestZeroTimeoutMeansNoDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(a)
	conn.SetTimeout(50 * time.Millisecond)
	conn.SetTimeout(0)
	done := make(chan error, 1)
	go func() {
		time.Sleep(120 * time.Millisecond) // longer than the cleared timeout
		peer := NewConn(b)
		_, err := peer.Recv()
		done <- err
	}()
	if err := conn.Send(Message{Type: TypeAck}); err != nil {
		t.Fatalf("Send with cleared timeout failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutIsNoOpWithoutDeadlineSupport: plain buffers cannot set
// deadlines; SetTimeout must be harmless there.
func TestTimeoutIsNoOpWithoutDeadlineSupport(t *testing.T) {
	var wire bytes.Buffer
	s := NewConn(rwBuffer{in: &bytes.Buffer{}, out: &wire})
	s.SetTimeout(time.Millisecond)
	if err := s.Send(Message{Type: TypeAck, Payload: strings.Repeat("x", 1024)}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(rwBuffer{in: &wire, out: &bytes.Buffer{}})
	r.SetTimeout(time.Millisecond)
	if _, err := r.Recv(); err != nil {
		t.Fatal(err)
	}
}
