package protocol

import (
	"io"
	"testing"
)

// The wire codec is the per-message cost every ingest interaction pays
// twice (request + response), so its allocation profile is pinned the
// same way internal/core pins the run engine's: a benchmark to watch
// the numbers and an AllocsPerRun ceiling that fails when a hot-loop
// allocation creeps back in.

// benchMessage is a representative results-upload frame: the message
// shape the server decodes most and the client encodes most.
func benchMessage() Message {
	return Message{
		Type:     TypeResults,
		ClientID: "client-00042",
		Seq:      1729,
		Payload: "run\tword\tcpu\t0.45\t1\t173ms\tok\n" +
			"run\tword\tmem\t0.30\t1\t181ms\tok\n" +
			"run\tword\tdisk\t0.15\t1\t164ms\tok\n",
	}
}

// discardWriter is an io.ReadWriter that drops writes; reads are never
// used on the encode side.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (discardWriter) Read(p []byte) (int, error)  { return 0, io.EOF }

// repeatReader serves the same frame bytes forever, so a decode loop
// can run without re-framing; writes are dropped.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

func (r *repeatReader) Write(p []byte) (int, error) { return len(p), nil }

// captureWriter records the last frame written, for building the decode
// fixture from a real Send.
type captureWriter struct{ frame []byte }

func (c *captureWriter) Write(p []byte) (int, error) {
	c.frame = append(c.frame[:0], p...)
	return len(p), nil
}
func (c *captureWriter) Read(p []byte) (int, error) { return 0, io.EOF }

// encodedFrame returns the exact wire bytes Send produces for m in v2
// framing.
func encodedFrame(tb testing.TB, m Message) []byte {
	tb.Helper()
	return encodedFrameV(tb, m, V2)
}

// encodedFrameV returns the exact wire bytes Send produces for m in
// the given framing version.
func encodedFrameV(tb testing.TB, m Message, ver int) []byte {
	tb.Helper()
	var cw captureWriter
	c := NewConn(&cw)
	c.SetVersion(ver)
	if err := c.Send(m); err != nil {
		tb.Fatal(err)
	}
	return append([]byte(nil), cw.frame...)
}

func BenchmarkEncodeMessage(b *testing.B) {
	for _, ver := range []int{V2, V3} {
		b.Run(versionName(ver), func(b *testing.B) {
			c := NewConn(discardWriter{})
			c.SetVersion(ver)
			m := benchMessage()
			b.ReportAllocs()
			b.SetBytes(int64(len(encodedFrameV(b, m, ver))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeMessage measures the receive path each wire version's
// server actually runs: full Recv materialization for v2, the borrowed
// RecvFrame view for v3 (the zero-copy ingest path).
func BenchmarkDecodeMessage(b *testing.B) {
	for _, ver := range []int{V2, V3} {
		b.Run(versionName(ver), func(b *testing.B) {
			frame := encodedFrameV(b, benchMessage(), ver)
			c := NewConn(&repeatReader{frame: frame})
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.RecvFrame(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func versionName(ver int) string {
	if ver == V3 {
		return "v3"
	}
	return "v2"
}

// TestSendAllocCeiling pins the steady-state allocation count of Send.
// After the pooled encoder is warm, the only allocations left are
// encoding/json internals; the pooled buffer, the checksum splice, and
// the frame write add none.
func TestSendAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	const ceiling = 4
	c := NewConn(discardWriter{})
	m := benchMessage()
	// Warm the encoder pool to steady-state buffer size.
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Errorf("Send allocates %.1f/message, ceiling %d", avg, ceiling)
	}
}

// TestRecvAllocCeiling pins the steady-state allocation count of Recv.
// The remaining allocations are the decoded message's own contents
// (field strings, the Sum pointer) plus json.Unmarshal internals — the
// line assembly buffer and the checksum re-encode are reused.
func TestRecvAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	const ceiling = 14
	frame := encodedFrame(t, benchMessage())
	c := NewConn(&repeatReader{frame: frame})
	// Warm the line buffer and checksum encoder.
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Errorf("Recv allocates %.1f/message, ceiling %d", avg, ceiling)
	}
}

// TestSendAllocCeilingV3 pins the steady-state allocation count of a
// v3 Send at ≤1: the pooled scratch slice absorbs the frame encoding,
// so after warmup the only allocation budget left is pool slack.
func TestSendAllocCeilingV3(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	const ceiling = 1
	c := NewConn(discardWriter{})
	c.SetVersion(V3)
	m := benchMessage()
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Errorf("v3 Send allocates %.1f/message, ceiling %d", avg, ceiling)
	}
}

// TestRecvAllocCeilingV3 pins the steady-state allocation count of the
// v3 receive path — RecvFrame, the one servers run per ingested
// message — at exactly 0: the frame is read into a reused buffer and
// every decoded field is a borrowed view into it.
func TestRecvAllocCeilingV3(t *testing.T) {
	if raceEnabled {
		t.Skip("buffered reads allocate differently under the race detector")
	}
	const ceiling = 0
	frame := encodedFrameV(t, benchMessage(), V3)
	c := NewConn(&repeatReader{frame: frame})
	// Warm the frame assembly buffer.
	if _, err := c.RecvFrame(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := c.RecvFrame(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Errorf("v3 RecvFrame allocates %.1f/message, ceiling %d", avg, ceiling)
	}
}

// TestSplicedFrameRoundTrips verifies the spliced sum field is
// byte-level valid JSON that decodes and checksum-verifies, for frames
// spanning every message type and the empty-payload edge.
func TestSplicedFrameRoundTrips(t *testing.T) {
	msgs := []Message{
		benchMessage(),
		{Type: TypeRegister, Ver: Version, Nonce: "n-1", Snapshot: &Snapshot{
			Hostname: "h", OS: "linux", CPUGHz: 2.4, MemMB: 8192, DiskGB: 256,
			Apps: []string{"word", "game"},
		}},
		{Type: TypeSync, ClientID: "c1", Have: []string{"tc-1", "tc-2"}, Want: 10},
		{Type: TypeAck, Seq: 7, Count: 3, Dup: true},
		{Type: TypeError, Err: `quote " and \ backslash`},
	}
	for _, m := range msgs {
		frame := encodedFrame(t, m)
		c := NewConn(&repeatReader{frame: frame})
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("%s: round trip: %v", m.Type, err)
		}
		if got.Sum == nil {
			t.Fatalf("%s: round trip lost the checksum", m.Type)
		}
		got.Sum = nil
		want, err := checksum(m)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := checksum(got)
		if err != nil {
			t.Fatal(err)
		}
		if want != got2 {
			t.Errorf("%s: decoded message differs from sent one", m.Type)
		}
	}
}
