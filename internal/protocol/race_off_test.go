//go:build !race

package protocol

// raceEnabled reports whether the race detector is instrumenting this
// build. The allocation-ceiling tests skip under race: sync.Pool
// deliberately drops items at random in race mode, so the pooled
// encoder's steady state does not exist there.
const raceEnabled = false
