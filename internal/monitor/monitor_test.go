package monitor

import (
	"math"
	"testing"

	"uucs/internal/hostsim"
	"uucs/internal/testcase"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewRecorder(-1); err == nil {
		t.Error("negative rate accepted")
	}
	r, err := NewRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rate() != 2 {
		t.Errorf("Rate = %v", r.Rate())
	}
}

func TestCaptureRun(t *testing.T) {
	m, err := hostsim.NewMachine(hostsim.StudyMachine(), hostsim.NoNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetContention(testcase.CPU, func(tt float64) float64 { return tt / 10 })
	r, err := NewRecorder(1)
	if err != nil {
		t.Fatal(err)
	}
	r.CaptureRun(m, 60)
	samples := r.Samples()
	if len(samples) != 61 {
		t.Fatalf("samples = %d, want 61", len(samples))
	}
	if samples[0].Time != 0 || math.Abs(samples[30].CPU-3) > 1e-9 {
		t.Errorf("sample content wrong: %+v", samples[30])
	}
}

func TestSummarize(t *testing.T) {
	r, err := NewRecorder(1)
	if err != nil {
		t.Fatal(err)
	}
	r.Record(hostsim.Load{Time: 0, CPU: 1, MemFrac: 0.2, DiskQ: 0})
	r.Record(hostsim.Load{Time: 1, CPU: 3, MemFrac: 0.4, DiskQ: 2})
	s := r.Summarize()
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	if s.AvgCPU != 2 || s.MaxCPU != 3 {
		t.Errorf("cpu summary: %+v", s)
	}
	if math.Abs(s.AvgMem-0.3) > 1e-12 || s.MaxMem != 0.4 {
		t.Errorf("mem summary: %+v", s)
	}
	if s.AvgDiskQ != 1 || s.MaxDiskQ != 2 {
		t.Errorf("disk summary: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r, _ := NewRecorder(1)
	s := r.Summarize()
	if s.N != 0 || s.AvgCPU != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}
