// Package monitor records system load for the duration of a testcase
// run. The paper's client stores "CPU, memory and Disk load measurements
// for entire duration of the testcase" with every result (§2.3); this
// package is that recorder, plus summary reduction for analysis.
package monitor

import (
	"fmt"

	"uucs/internal/hostsim"
)

// Recorder collects load samples during one run.
type Recorder struct {
	rate    float64
	samples []hostsim.Load
}

// NewRecorder returns a recorder sampling at the given rate in Hz.
func NewRecorder(rate float64) (*Recorder, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("monitor: sample rate must be positive, got %g", rate)
	}
	return &Recorder{rate: rate}, nil
}

// Rate returns the sampling rate in Hz.
func (r *Recorder) Rate() float64 { return r.rate }

// CaptureRun samples the machine's load from time 0 to end.
func (r *Recorder) CaptureRun(m *hostsim.Machine, end float64) {
	step := 1 / r.rate
	if r.samples == nil {
		// One sample per step plus the t=0 sample; +2 absorbs the float
		// accumulation of t landing exactly on end.
		r.samples = make([]hostsim.Load, 0, int(end*r.rate)+2)
	}
	for t := 0.0; t <= end; t += step {
		r.samples = append(r.samples, m.LoadAt(t))
	}
}

// Record appends one externally obtained sample.
func (r *Recorder) Record(l hostsim.Load) { r.samples = append(r.samples, l) }

// Samples returns the collected samples.
func (r *Recorder) Samples() []hostsim.Load { return r.samples }

// Summary reduces the recording for reports.
type Summary struct {
	N                  int
	AvgCPU, MaxCPU     float64
	AvgMem, MaxMem     float64
	AvgDiskQ, MaxDiskQ float64
}

// Summarize computes the summary of the recording.
func (r *Recorder) Summarize() Summary {
	s := Summary{N: len(r.samples)}
	if s.N == 0 {
		return s
	}
	for _, l := range r.samples {
		s.AvgCPU += l.CPU
		s.AvgMem += l.MemFrac
		s.AvgDiskQ += l.DiskQ
		if l.CPU > s.MaxCPU {
			s.MaxCPU = l.CPU
		}
		if l.MemFrac > s.MaxMem {
			s.MaxMem = l.MemFrac
		}
		if l.DiskQ > s.MaxDiskQ {
			s.MaxDiskQ = l.DiskQ
		}
	}
	n := float64(s.N)
	s.AvgCPU /= n
	s.AvgMem /= n
	s.AvgDiskQ /= n
	return s
}
