package monitor

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uucs/internal/hostsim"
)

// Real system monitoring. The paper's client records actual CPU, memory
// and disk load on the user's machine for the duration of every run;
// this file is the live counterpart of the simulated CaptureRun, reading
// Linux /proc counters. It powers real deployments (cmd/uucs-exercise
// runs alongside it); on other platforms ProcSampler reports
// unavailability and callers fall back to simulation-side capture.

// ProcSampler samples live load from /proc.
type ProcSampler struct {
	statPath, memPath, diskPath string

	// previous CPU counters for utilization deltas.
	prevBusy, prevTotal uint64
	// previous disk io-ticks for utilization deltas.
	prevIOTicks uint64
	havePrev    bool
}

// NewProcSampler returns a sampler over the standard /proc files.
func NewProcSampler() *ProcSampler {
	return &ProcSampler{
		statPath: "/proc/stat",
		memPath:  "/proc/meminfo",
		diskPath: "/proc/diskstats",
	}
}

// Available reports whether live sampling can work on this system.
func (p *ProcSampler) Available() bool {
	_, err1 := os.Stat(p.statPath)
	_, err2 := os.Stat(p.memPath)
	return err1 == nil && err2 == nil
}

// Sample reads one load snapshot. CPU is reported as busy fraction times
// the CPU count (comparable to contention "tasks"), MemFrac as the used
// fraction of physical memory, DiskQ as the average I/O utilization
// across devices. The first call primes the counters and reports zero
// CPU/disk activity.
func (p *ProcSampler) Sample(t float64) (hostsim.Load, error) {
	load := hostsim.Load{Time: t}
	busy, total, ncpu, err := p.readCPU()
	if err != nil {
		return load, err
	}
	memFrac, err := p.readMem()
	if err != nil {
		return load, err
	}
	ioTicks, _ := p.readDisk() // diskstats may be absent in containers

	if p.havePrev && total > p.prevTotal {
		dBusy := float64(busy - p.prevBusy)
		dTotal := float64(total - p.prevTotal)
		load.CPU = dBusy / dTotal * float64(ncpu)
		// io-ticks are milliseconds of device busy time; normalize by the
		// wall time the CPU delta spans.
		wallMs := dTotal / float64(ncpu) * 10 // USER_HZ=100 ticks/s
		if wallMs > 0 && ioTicks >= p.prevIOTicks {
			load.DiskQ = float64(ioTicks-p.prevIOTicks) / wallMs
		}
	}
	load.MemFrac = memFrac
	p.prevBusy, p.prevTotal, p.prevIOTicks = busy, total, ioTicks
	p.havePrev = true
	return load, nil
}

// readCPU parses the aggregate cpu line of /proc/stat and counts CPUs.
func (p *ProcSampler) readCPU() (busy, total uint64, ncpu int, err error) {
	f, err := os.Open(p.statPath)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu") && !strings.HasPrefix(line, "cpu ") {
			ncpu++
			continue
		}
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)[1:]
		vals := make([]uint64, len(fields))
		for i, s := range fields {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("monitor: bad /proc/stat field %q: %w", s, err)
			}
			vals[i] = v
		}
		if len(vals) < 4 {
			return 0, 0, 0, fmt.Errorf("monitor: short cpu line in %s", p.statPath)
		}
		for i, v := range vals {
			total += v
			// idle (3) and iowait (4) are the non-busy states.
			if i != 3 && i != 4 {
				busy += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, 0, err
	}
	if total == 0 {
		return 0, 0, 0, fmt.Errorf("monitor: no cpu line in %s", p.statPath)
	}
	if ncpu == 0 {
		ncpu = 1
	}
	return busy, total, ncpu, nil
}

// readMem computes the used fraction of physical memory.
func (p *ProcSampler) readMem() (float64, error) {
	f, err := os.Open(p.memPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var totalKB, availKB float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "MemTotal:":
			totalKB = v
		case "MemAvailable:":
			availKB = v
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if totalKB <= 0 {
		return 0, fmt.Errorf("monitor: no MemTotal in %s", p.memPath)
	}
	frac := 1 - availKB/totalKB
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac, nil
}

// readDisk sums io-ticks (field 13 of /proc/diskstats) over whole
// devices, skipping partitions heuristically (names ending in a digit on
// sd/hd devices are partitions; nvme uses pN suffixes).
func (p *ProcSampler) readDisk() (uint64, error) {
	f, err := os.Open(p.diskPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var total uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 13 {
			continue
		}
		name := fields[2]
		if isPartition(name) {
			continue
		}
		v, err := strconv.ParseUint(fields[12], 10, 64)
		if err != nil {
			continue
		}
		total += v
	}
	return total, sc.Err()
}

// isPartition filters partition rows out of diskstats.
func isPartition(name string) bool {
	if strings.Contains(name, "loop") || strings.Contains(name, "ram") {
		return true
	}
	if strings.HasPrefix(name, "nvme") {
		return strings.Contains(name, "p")
	}
	if strings.HasPrefix(name, "sd") || strings.HasPrefix(name, "hd") || strings.HasPrefix(name, "vd") {
		last := name[len(name)-1]
		return last >= '0' && last <= '9'
	}
	return false
}

// CaptureLive samples the real system every interval for the given
// duration, appending to the recorder. It is the live analogue of
// CaptureRun.
func (r *Recorder) CaptureLive(p *ProcSampler, duration float64, sleep func(seconds float64)) error {
	if !p.Available() {
		return fmt.Errorf("monitor: /proc sampling unavailable on this system")
	}
	step := 1 / r.rate
	for t := 0.0; t <= duration; t += step {
		load, err := p.Sample(t)
		if err != nil {
			return err
		}
		r.Record(load)
		if t+step <= duration {
			sleep(step)
		}
	}
	return nil
}
