package monitor

import (
	"os"
	"path/filepath"
	"testing"
)

// writeProc builds fake /proc files for deterministic parsing tests.
func writeProc(t *testing.T, stat, mem, disk string) *ProcSampler {
	t.Helper()
	dir := t.TempDir()
	p := NewProcSampler()
	p.statPath = filepath.Join(dir, "stat")
	p.memPath = filepath.Join(dir, "meminfo")
	p.diskPath = filepath.Join(dir, "diskstats")
	for path, content := range map[string]string{p.statPath: stat, p.memPath: mem, p.diskPath: disk} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

const memSample = `MemTotal:        1000000 kB
MemFree:          200000 kB
MemAvailable:     400000 kB
`

func statSample(busy, idle uint64) string {
	// user nice system idle iowait irq softirq
	return "cpu  " + u(busy) + " 0 0 " + u(idle) + " 0 0 0\ncpu0 0 0 0 0 0 0 0\ncpu1 0 0 0 0 0 0 0\n"
}

func u(v uint64) string {
	return string(appendUint(nil, v))
}

func appendUint(b []byte, v uint64) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

const diskSample = `   8       0 sda 100 0 0 0 50 0 0 0 0 5000 0
   8       1 sda1 10 0 0 0 5 0 0 0 0 500 0
 259       0 nvme0n1 10 0 0 0 5 0 0 0 0 700 0
`

func TestProcSamplerParsing(t *testing.T) {
	p := writeProc(t, statSample(100, 900), memSample, diskSample)
	if !p.Available() {
		t.Fatal("fake proc not available")
	}
	// First sample primes the counters.
	l0, err := p.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	if l0.CPU != 0 || l0.DiskQ != 0 {
		t.Errorf("first sample should report zero deltas: %+v", l0)
	}
	if l0.MemFrac < 0.59 || l0.MemFrac > 0.61 { // 1 - 400/1000
		t.Errorf("mem frac = %v, want 0.6", l0.MemFrac)
	}
	// Advance the counters: +100 busy, +100 idle over 2 CPUs, disk +200ms.
	if err := os.WriteFile(p.statPath, []byte(statSample(200, 1000)), 0o644); err != nil {
		t.Fatal(err)
	}
	disk2 := `   8       0 sda 100 0 0 0 50 0 0 0 0 5200 0
 259       0 nvme0n1 10 0 0 0 5 0 0 0 0 700 0
`
	if err := os.WriteFile(p.diskPath, []byte(disk2), 0o644); err != nil {
		t.Fatal(err)
	}
	l1, err := p.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	// busy delta 100 of total delta 200 over 2 cpus -> 1.0 "tasks".
	if l1.CPU < 0.99 || l1.CPU > 1.01 {
		t.Errorf("cpu = %v, want ~1.0", l1.CPU)
	}
	// wall = 200/2*10 = 1000ms; disk delta 200ms -> 0.2 utilization.
	if l1.DiskQ < 0.19 || l1.DiskQ > 0.21 {
		t.Errorf("diskq = %v, want ~0.2", l1.DiskQ)
	}
}

func TestProcSamplerErrors(t *testing.T) {
	p := writeProc(t, "garbage\n", memSample, diskSample)
	if _, err := p.Sample(0); err == nil {
		t.Error("garbage stat accepted")
	}
	p = writeProc(t, statSample(1, 1), "NoTotalHere: 5 kB\n", diskSample)
	if _, err := p.Sample(0); err == nil {
		t.Error("meminfo without MemTotal accepted")
	}
	p = writeProc(t, "cpu  x 0 0 0 0\n", memSample, diskSample)
	if _, err := p.Sample(0); err == nil {
		t.Error("non-numeric cpu field accepted")
	}
}

func TestIsPartition(t *testing.T) {
	cases := map[string]bool{
		"sda": false, "sda1": true, "nvme0n1": false, "nvme0n1p2": true,
		"vdb": false, "vdb3": true, "loop0": true, "ram1": true, "hdc": false,
	}
	for name, want := range cases {
		if got := isPartition(name); got != want {
			t.Errorf("isPartition(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestCaptureLiveOnRealProcIfPresent(t *testing.T) {
	p := NewProcSampler()
	if !p.Available() {
		t.Skip("no /proc on this system")
	}
	rec, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	// Capture 0.3s with an instant fake sleep to keep the test fast but
	// the parsing real.
	if err := rec.CaptureLive(p, 0.3, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if s.N < 3 {
		t.Fatalf("samples = %d", s.N)
	}
	if s.MaxMem <= 0 || s.MaxMem > 1 {
		t.Errorf("live mem frac = %v", s.MaxMem)
	}
}

func TestCaptureLiveUnavailable(t *testing.T) {
	p := NewProcSampler()
	p.statPath = "/nonexistent/stat"
	rec, _ := NewRecorder(1)
	if err := rec.CaptureLive(p, 1, func(float64) {}); err == nil {
		t.Error("unavailable proc accepted")
	}
}
