// Package hostload generates realistic host background-load traces and
// converts them into exercise functions. The paper's CPU exerciser
// "implements time-based playback of the exercise function, as we
// describe and evaluate in detail in earlier work" — Dinda &
// O'Hallaron's host-load trace playback — and Dinda's characterization
// of host load found it strongly autocorrelated with epochal behaviour:
// load hovers around a local mean that occasionally shifts. This package
// provides that class of trace, so UUCS deployments can play back
// realistic machine-room load instead of (or alongside) the synthetic
// step/ramp/queueing shapes of Figure 3.
package hostload

import (
	"fmt"
	"math"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Model parameterizes the load-trace generator: an AR(1) process around
// a piecewise-constant epochal mean.
type Model struct {
	// Mean is the long-term average load (number of runnable tasks).
	Mean float64
	// AR is the lag-1 autocorrelation of the within-epoch process, in
	// [0, 1). Host load measurements show strong autocorrelation (~0.95+
	// at one-second resolution).
	AR float64
	// Sigma is the innovation standard deviation.
	Sigma float64
	// EpochMeanGap is the mean epoch length in seconds; at each epoch
	// boundary the local mean is redrawn around Mean.
	EpochMeanGap float64
	// EpochSpread scales how far epoch means wander from Mean
	// (multiplicative, lognormal).
	EpochSpread float64
	// Max clamps the trace (exercisers are verified to bounded levels).
	Max float64
}

// DefaultModel resembles a moderately loaded shared workstation.
func DefaultModel() Model {
	return Model{
		Mean:         0.8,
		AR:           0.95,
		Sigma:        0.12,
		EpochMeanGap: 150,
		EpochSpread:  0.5,
		Max:          10,
	}
}

// Validate checks model parameters.
func (m Model) Validate() error {
	if m.Mean < 0 || m.Sigma < 0 || m.Max <= 0 {
		return fmt.Errorf("hostload: negative mean/sigma or non-positive max in %+v", m)
	}
	if m.AR < 0 || m.AR >= 1 {
		return fmt.Errorf("hostload: AR %g out of [0, 1)", m.AR)
	}
	if m.EpochMeanGap <= 0 || m.EpochSpread < 0 {
		return fmt.Errorf("hostload: bad epoch parameters in %+v", m)
	}
	return nil
}

// Generate produces a load trace of the given duration and sample rate,
// deterministically from the seed.
func (m Model) Generate(duration, rate float64, seed uint64) (testcase.ExerciseFunction, error) {
	if err := m.Validate(); err != nil {
		return testcase.ExerciseFunction{}, err
	}
	if duration <= 0 || rate <= 0 {
		return testcase.ExerciseFunction{}, fmt.Errorf("hostload: need positive duration and rate")
	}
	s := stats.NewStream(seed)
	n := int(math.Ceil(duration * rate))
	vals := make([]float64, n)

	epochMean := m.Mean * s.LognormMedian(1, m.EpochSpread)
	nextEpoch := s.Exp(m.EpochMeanGap)
	level := epochMean
	dt := 1 / rate
	for i := range vals {
		t := float64(i) * dt
		if t >= nextEpoch {
			epochMean = m.Mean * s.LognormMedian(1, m.EpochSpread)
			nextEpoch = t + s.Exp(m.EpochMeanGap)
		}
		// AR(1) step toward the epoch mean.
		level = epochMean + m.AR*(level-epochMean) + s.Norm(0, m.Sigma)
		v := level
		if v < 0 {
			v = 0
		}
		if v > m.Max {
			v = m.Max
		}
		vals[i] = v
	}
	return testcase.ExerciseFunction{Rate: rate, Values: vals}, nil
}

// Testcase wraps a generated trace into a CPU testcase for playback.
func (m Model) Testcase(id string, duration, rate float64, seed uint64) (*testcase.Testcase, error) {
	f, err := m.Generate(duration, rate, seed)
	if err != nil {
		return nil, err
	}
	tc := testcase.New(id, rate)
	tc.Shape = testcase.Shape("hostload")
	tc.Params = fmt.Sprintf("mean=%.2f,ar=%.2f", m.Mean, m.AR)
	tc.Functions[testcase.CPU] = f
	return tc, tc.Validate()
}

// FromSamples converts measured load samples (e.g. a recorded
// /proc/loadavg trace) into an exercise function for playback — the
// direct "host load trace playback" use.
func FromSamples(samples []float64, rate float64) (testcase.ExerciseFunction, error) {
	if len(samples) == 0 || rate <= 0 {
		return testcase.ExerciseFunction{}, fmt.Errorf("hostload: need samples and a positive rate")
	}
	vals := make([]float64, len(samples))
	for i, v := range samples {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return testcase.ExerciseFunction{}, fmt.Errorf("hostload: bad sample %v at %d", v, i)
		}
		vals[i] = v
	}
	return testcase.ExerciseFunction{Rate: rate, Values: vals}, nil
}

// Autocorrelation estimates the lag-k autocorrelation of a series; the
// tests use it to confirm generated traces carry the strong correlation
// structure real host load shows.
func Autocorrelation(vals []float64, lag int) float64 {
	if lag <= 0 || lag >= len(vals) {
		return 0
	}
	mean := stats.Mean(vals)
	num, den := 0.0, 0.0
	for i := range vals {
		d := vals[i] - mean
		den += d * d
		if i+lag < len(vals) {
			num += d * (vals[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
