package hostload

import (
	"math"
	"testing"
	"testing/quick"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func TestGenerateBasicProperties(t *testing.T) {
	m := DefaultModel()
	f, err := m.Generate(3600, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Values) != 3600 {
		t.Fatalf("samples = %d", len(f.Values))
	}
	for i, v := range f.Values {
		if v < 0 || v > m.Max {
			t.Fatalf("sample %d out of range: %v", i, v)
		}
	}
	mean := stats.Mean(f.Values)
	if mean < 0.3 || mean > 2.0 {
		t.Errorf("trace mean = %v, want around %v", mean, m.Mean)
	}
}

func TestGenerateAutocorrelation(t *testing.T) {
	// Real host load is strongly autocorrelated; the generator must
	// reproduce that structure.
	m := DefaultModel()
	f, err := m.Generate(3600, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ac1 := Autocorrelation(f.Values, 1)
	if ac1 < 0.7 {
		t.Errorf("lag-1 autocorrelation = %v, host load should be strongly correlated", ac1)
	}
	ac60 := Autocorrelation(f.Values, 60)
	if ac60 >= ac1 {
		t.Errorf("autocorrelation should decay: lag1=%v lag60=%v", ac1, ac60)
	}
}

func TestGenerateEpochalBehaviour(t *testing.T) {
	// Epoch means must actually shift: the variance of long-window means
	// should exceed what the within-epoch process alone would give.
	m := DefaultModel()
	m.EpochMeanGap = 120
	f, err := m.Generate(7200, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	var windowMeans []float64
	for i := 0; i+300 <= len(f.Values); i += 300 {
		windowMeans = append(windowMeans, stats.Mean(f.Values[i:i+300]))
	}
	if sd := stats.StdDev(windowMeans); sd < 0.05 {
		t.Errorf("window-mean stddev = %v; epochs should shift the local mean", sd)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	m := DefaultModel()
	a, _ := m.Generate(300, 1, 5)
	b, _ := m.Generate(300, 1, 5)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}

func TestModelValidation(t *testing.T) {
	bad := []Model{
		{Mean: -1, AR: 0.9, Sigma: 0.1, EpochMeanGap: 100, EpochSpread: 0.5, Max: 10},
		{Mean: 1, AR: 1.0, Sigma: 0.1, EpochMeanGap: 100, EpochSpread: 0.5, Max: 10},
		{Mean: 1, AR: 0.9, Sigma: 0.1, EpochMeanGap: 0, EpochSpread: 0.5, Max: 10},
		{Mean: 1, AR: 0.9, Sigma: 0.1, EpochMeanGap: 100, EpochSpread: 0.5, Max: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	m := DefaultModel()
	if _, err := m.Generate(0, 1, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestTestcaseWrapping(t *testing.T) {
	m := DefaultModel()
	tc, err := m.Testcase("trace-1", 120, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tc.PrimaryResource() != testcase.CPU {
		t.Errorf("primary = %v", tc.PrimaryResource())
	}
	if err := tc.Validate(); err != nil {
		t.Error(err)
	}
	// The text store must round-trip the trace.
	s, err := testcase.EncodeString(tc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := testcase.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Functions[testcase.CPU].Values[50] != tc.Functions[testcase.CPU].Values[50] {
		t.Error("trace did not round-trip the store format")
	}
}

func TestFromSamples(t *testing.T) {
	f, err := FromSamples([]float64{0.5, 1.2, 0.8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Value(1.5) != 1.2 {
		t.Errorf("Value(1.5) = %v", f.Value(1.5))
	}
	if _, err := FromSamples(nil, 1); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := FromSamples([]float64{1}, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := FromSamples([]float64{-1}, 1); err == nil {
		t.Error("negative sample accepted")
	}
	if _, err := FromSamples([]float64{math.NaN()}, 1); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestAutocorrelationEdges(t *testing.T) {
	if Autocorrelation([]float64{1, 2, 3}, 0) != 0 {
		t.Error("lag 0 should return 0")
	}
	if Autocorrelation([]float64{1, 2}, 5) != 0 {
		t.Error("oversized lag should return 0")
	}
	if Autocorrelation([]float64{2, 2, 2, 2}, 1) != 0 {
		t.Error("constant series should return 0")
	}
}

func TestGenerateBoundsProperty(t *testing.T) {
	check := func(seed uint64, meanRaw, arRaw uint8) bool {
		m := DefaultModel()
		m.Mean = float64(meanRaw%40) / 10
		m.AR = float64(arRaw%99) / 100
		f, err := m.Generate(200, 1, seed)
		if err != nil {
			return false
		}
		for _, v := range f.Values {
			if v < 0 || v > m.Max || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
