package cluster

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uucs/internal/core"
	"uucs/internal/testcase"
)

// discoverDirs resolves the state directories under root, fatal on error.
func discoverDirs(t *testing.T, root string) []string {
	t.Helper()
	dirs, err := DiscoverStateDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestMergeColdPathExperiment is the measurement driver behind
// EXPERIMENTS.md "Fast cold paths": it fabricates a 3-node cluster
// tree (plus duplicated shipped replicas) holding roughly
// UUCS_COLDPATH_MB (default 64) megabytes of journal, then times
// MergedRunsOpts across worker counts and spill thresholds, verifying
// the folded dataset is identical throughout and reporting the peak
// heap the spill bound buys back. Run it explicitly:
//
//	UUCS_COLDPATH_EXPERIMENT=1 go test ./internal/cluster -run TestMergeColdPathExperiment -v -timeout 30m
func TestMergeColdPathExperiment(t *testing.T) {
	if os.Getenv("UUCS_COLDPATH_EXPERIMENT") == "" {
		t.Skip("set UUCS_COLDPATH_EXPERIMENT=1 to run the merge measurement driver")
	}
	targetMB := 64
	if v := os.Getenv("UUCS_COLDPATH_MB"); v != "" {
		fmt.Sscanf(v, "%d", &targetMB)
	}
	const nodes, runsPerBatch = 3, 64

	// Fabricate: per-node journals of large sequenced batches until the
	// tree reaches the target volume, then duplicate each journal's
	// front half as its shipped replica.
	build := time.Now()
	root := t.TempDir()
	journals := make([]*strings.Builder, nodes)
	for n := range journals {
		journals[n] = &strings.Builder{}
	}
	var written int64
	var seq uint64
	for written < int64(targetMB)<<20 {
		seq++
		for n := 0; n < nodes; n++ {
			client := int(seq)%4*nodes + n
			id := fmt.Sprintf("uucs-%016x", uint64(client)+1)
			if seq <= uint64(nodes) {
				journals[n].WriteString(clientOp(t, id, 0))
			}
			runs := make([]*core.Run, runsPerBatch)
			for i := range runs {
				r := fabRun(client, int(seq), i)
				r.Offset = float64(seq)*1000 + float64(i)
				r.Levels = map[testcase.Resource]float64{testcase.CPU: float64(i) / runsPerBatch}
				runs[i] = r
			}
			line := resultsOp(t, id, seq, encodePayload(t, runs))
			journals[n].WriteString(line)
			written += int64(len(line))
		}
	}
	var dirs int
	for n := 0; n < nodes; n++ {
		j := journals[n].String()
		writeStateDir(t, root, fmt.Sprintf("node-n%d", n), "", j)
		lines := strings.SplitAfter(j, "\n")
		writeStateDir(t, root, fmt.Sprintf("node-n%d/replica-n%d", (n+1)%nodes, n),
			"", strings.Join(lines[:len(lines)/2], ""))
		dirs += 2
	}
	t.Logf("built %d MB across %d source dirs (%d nodes + shipped replicas) in %v",
		written>>20, dirs, nodes, time.Since(build).Round(time.Millisecond))

	type cfg struct {
		workers int
		spill   int
		stream  bool
		label   string
	}
	cfgs := []cfg{
		{1, 1 << 30, false, "serial, no spill"},
		{1, 1 << 30, false, "serial, no spill (repeat)"},
		{2, 1 << 30, false, "2 workers, no spill"},
		{4, 1 << 30, false, "4 workers, no spill"},
		{8, 1 << 30, false, "8 workers, no spill"},
		{4, 32 << 20, false, "4 workers, 32MB spill"},
		{4, 4 << 20, false, "4 workers, 4MB spill"},
		{1, 1 << 30, true, "stream serial, no spill"},
		{4, 4 << 20, true, "stream 4 workers, 4MB spill"},
	}
	var wantRuns int
	for ci, c := range cfgs {
		if prof := os.Getenv("UUCS_COLDPATH_CPUPROFILE"); prof != "" && ci == 1 {
			// Profile the serial repeat (warm cache): the share of samples
			// under the per-source scan/decode/encode is the fraction the
			// workers parallelize.
			f, err := os.Create(prof)
			if err != nil {
				t.Fatal(err)
			}
			pprof.StartCPUProfile(f)
			defer f.Close()
		}
		// Sample peak heap during the merge.
		var peak, stop atomic.Int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			var ms runtime.MemStats
			for stop.Load() == 0 {
				runtime.ReadMemStats(&ms)
				if h := int64(ms.HeapAlloc); h > peak.Load() {
					peak.Store(h)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
		runtime.GC()
		opt := MergeOptions{Workers: c.workers, SpillBytes: c.spill, TempDir: t.TempDir()}
		start := time.Now()
		var nRuns int
		var st MergeStats
		var err error
		if c.stream {
			// The export path (uucs-harvest): canonical text streamed to
			// the sink, nothing decoded or retained — the spill bound is
			// the whole memory story here.
			st, err = MergeDirsOpts(io.Discard, discoverDirs(t, root), opt)
			nRuns = st.Runs
		} else {
			var out []*core.Run
			out, st, err = MergedRunsOpts(root, opt)
			nRuns = len(out)
		}
		elapsed := time.Since(start)
		if os.Getenv("UUCS_COLDPATH_CPUPROFILE") != "" && ci == 1 {
			pprof.StopCPUProfile()
		}
		stop.Store(1)
		<-done
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		if wantRuns == 0 {
			wantRuns = nRuns
		} else if nRuns != wantRuns {
			t.Fatalf("%s: %d runs, want %d", c.label, nRuns, wantRuns)
		}
		t.Logf("merge %-30s %v wall (%d runs, %d dup batches dropped, %d spills / %d MB spilled, peak heap %d MB, %.1f MB/s)",
			c.label+":", elapsed.Round(time.Millisecond), nRuns, st.DupBatches,
			st.Spills, st.SpilledBytes>>20, peak.Load()>>20, float64(written)/1e6/elapsed.Seconds())
	}
}
