package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"uucs/internal/server"
	"uucs/internal/telemetry"
	"uucs/internal/testcase"
)

// Config describes a cluster to start.
type Config struct {
	// Nodes are the node ids (at least one). Ring replication follows
	// this order: node i's journal is shipped to node i+1 (mod N).
	Nodes []string
	// Seed is the shared server seed — client ids derive from it, so
	// every node and the router must agree on it.
	Seed uint64
	// StateRoot is the directory under which each node keeps its state
	// ("node-<id>") and the replicas it hosts ("node-<id>/replica-<p>").
	StateRoot string
	// Transport carries all cluster traffic (TCPTransport or
	// ChaosTransport). Required.
	Transport Transport
	// Testcases are loaded into every node at start (journaled, so they
	// replicate and survive failover).
	Testcases []*testcase.Testcase

	// Journal knobs, applied to every node (see server.Server).
	JournalBatch    int
	JournalDelay    time.Duration
	JournalSyncCost time.Duration
	// JournalSegmentBytes seals every node's journal into size-bounded
	// segments (see server.Server.JournalSegmentBytes; 0 keeps the
	// single-file journal).
	JournalSegmentBytes int64
	// ReplayWorkers bounds the parallel replay decode workers each node
	// uses at restart and — on the availability-critical path — at
	// failover promotion (see server.Server.ReplayWorkers).
	ReplayWorkers int
	// IdleTimeout is applied to every node's client connections.
	IdleTimeout time.Duration
}

// node is one running cluster member: an ingest server, the replica
// host serving its ring predecessor, and the shipper toward its ring
// successor.
type node struct {
	id      string
	srv     *server.Server
	addr    string
	dir     string
	replica *ReplicaHost // hosts the predecessor's replica
	repAddr string
	shipper *Shipper // ships our journal to the successor

	crashed  bool
	promoted bool // serving a dead primary's partition, unreplicated
}

// Cluster is an in-process N-node ingest tier: N nodes, a router, ring
// journal replication, and promote-on-crash failover. It is the
// library form of the tier — tests, loadgen, and the chaos suite drive
// it directly; real deployments run the same pieces as separate
// uucs-server/uucs-router processes.
type Cluster struct {
	cfg  Config
	pmap *PartitionMap

	router     *Router
	routerAddr string

	mu       sync.Mutex
	nodes    map[string]*node
	follower map[string]string // node id -> id of the node hosting its replica
	zombies  []*node           // partitioned-away primaries, stopped at shutdown
	addrSeq  int
}

// Start brings up every node, wires the replication ring, and starts
// the router. On return the router address (Addr) accepts clients.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: nil transport")
	}
	pmap, err := NewPartitionMap(cfg.Nodes...)
	if err != nil {
		return nil, err
	}
	if pmap.Len() != len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: duplicate node ids")
	}
	c := &Cluster{
		cfg:      cfg,
		pmap:     pmap,
		nodes:    make(map[string]*node),
		follower: make(map[string]string),
	}
	// Replica hosts first: every node's shipper needs its successor's
	// replica address before the node's first journaled op.
	order := cfg.Nodes
	for _, id := range order {
		n := &node{id: id, dir: filepath.Join(cfg.StateRoot, "node-"+id)}
		host, repAddr, err := NewReplicaHost(cfg.Transport, c.newAddr(id, "replica"), n.dir)
		if err != nil {
			c.Close()
			return nil, err
		}
		n.replica, n.repAddr = host, repAddr
		c.nodes[id] = n
	}
	for i, id := range order {
		succ := order[(i+1)%len(order)]
		c.follower[id] = succ
		n := c.nodes[id]
		if succ != id { // a 1-node cluster does not ship to itself
			n.shipper = NewShipper(cfg.Transport, id, c.nodes[succ].repAddr, nil)
		}
		if err := c.openNode(n); err != nil {
			c.Close()
			return nil, err
		}
	}
	addrs := make(map[string]string, len(order))
	for _, id := range order {
		addrs[id] = c.nodes[id].addr
	}
	c.router, err = NewRouter(cfg.Transport, cfg.Seed, pmap, addrs)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.router.OnNodeDown = c.promote
	c.routerAddr, err = c.router.Start(c.newAddr("router", "ingest"))
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// newAddr picks a fresh listen address: ephemeral for TCP, a unique
// name for the chaos network (promotions re-listen under new names).
func (c *Cluster) newAddr(id, kind string) string {
	if _, chaosNet := c.cfg.Transport.(ChaosTransport); !chaosNet {
		return "127.0.0.1:0"
	}
	c.mu.Lock()
	c.addrSeq++
	seq := c.addrSeq
	c.mu.Unlock()
	return fmt.Sprintf("%s-%s-%d", id, kind, seq)
}

// openNode builds and starts n's ingest server over n.dir. If the
// directory already holds state (a restart), its full contents are
// shipped to the follower as a fresh bootstrap segment first, so the
// replica is complete even if it missed the earlier life — replayed
// ops are idempotent on both the replica and the merge.
func (c *Cluster) openNode(n *node) error {
	if err := os.MkdirAll(n.dir, 0o755); err != nil {
		return err
	}
	if n.shipper != nil {
		boot, err := readState(n.dir)
		if err != nil {
			return err
		}
		if len(boot) > 0 {
			if err := n.shipper.Ship(boot); err != nil {
				return err
			}
		}
	}
	srv := server.New(c.cfg.Seed)
	srv.NodeID = n.id
	srv.IdleTimeout = c.cfg.IdleTimeout
	srv.JournalBatch = c.cfg.JournalBatch
	srv.JournalDelay = c.cfg.JournalDelay
	srv.JournalSyncCost = c.cfg.JournalSyncCost
	srv.JournalSegmentBytes = c.cfg.JournalSegmentBytes
	srv.ReplayWorkers = c.cfg.ReplayWorkers
	if n.shipper != nil {
		srv.JournalShip = n.shipper.Ship
	}
	if err := srv.OpenState(n.dir); err != nil {
		return err
	}
	if len(c.cfg.Testcases) > 0 && srv.TestcaseCount() == 0 {
		if err := srv.AddTestcases(c.cfg.Testcases...); err != nil {
			srv.Close()
			return err
		}
	}
	ln, err := c.cfg.Transport.Listen(c.newAddr(n.id, "ingest"))
	if err != nil {
		srv.Close()
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	n.srv = srv
	n.addr = ln.Addr().String()
	n.crashed = false
	return nil
}

// readState returns a node directory's state bytes in replay order —
// snapshot, sealed journal segments, active journal — the bootstrap
// segment for a restarted node. Sealed segments ship as units inside
// it; their jmeta headers just re-declare the format on replay.
func readState(dir string) ([]byte, error) {
	files, err := server.StateFiles(dir)
	if err != nil {
		return nil, err
	}
	var buf []byte
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		buf = append(buf, b...)
	}
	return buf, nil
}

// Addr is the router address clients dial.
func (c *Cluster) Addr() string { return c.routerAddr }

// Router exposes the router (stats, pins) to tests and telemetry.
func (c *Cluster) Router() *Router { return c.router }

// NodeAddr returns a node's current ingest address.
func (c *Cluster) NodeAddr(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.nodes[id]; n != nil {
		return n.addr
	}
	return ""
}

// CrashNode kills a node in-process the way SIGKILL would: its ingest
// server severs connections and abandons its journal un-flushed, the
// replica host it was serving for its predecessor goes away (the
// predecessor degrades to unreplicated on its next ship), and its own
// shipper stops. The node's partition fails over to its replica the
// next time the router touches it.
func (c *Cluster) CrashNode(id string) error {
	c.mu.Lock()
	n := c.nodes[id]
	if n == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	if n.crashed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %s already crashed", id)
	}
	n.crashed = true
	c.mu.Unlock()
	n.srv.Crash()
	if n.shipper != nil {
		n.shipper.Close()
	}
	if n.replica != nil {
		n.replica.Close()
	}
	return nil
}

// promote is the router's OnNodeDown hook: fail the dead node's
// partition over to its replica. It runs single-flight (under the
// router's failover lock). The sequence is the failover state machine
// documented in DESIGN.md:
//
//  1. Seal the replica — the follower refuses further segments from
//     the dead primary, which poisons the primary's journal if it is
//     actually alive-but-partitioned (fencing; it can never ack again).
//  2. Open a fresh server over the sealed replica directory; replay
//     rebuilds exactly the acked state (ship-before-ack guarantees
//     every acked op is in the replica).
//  3. Re-point the router's address table: the node id — the partition
//     identity — survives, only the address behind it changes, so
//     client pins stay valid.
//
// The promoted partition runs unreplicated (degraded) until an
// operator rebuilds a follower; a second failure of the same partition
// is not survivable and the hook refuses to run for it.
func (c *Cluster) promote(deadID string, cause error) {
	c.mu.Lock()
	n := c.nodes[deadID]
	if n == nil || n.promoted {
		c.mu.Unlock()
		return
	}
	hostID := c.follower[deadID]
	host := c.nodes[hostID]
	if hostID == "" || hostID == deadID || host == nil || host.crashed {
		c.mu.Unlock()
		return // no live replica to promote
	}
	if !n.crashed {
		// Alive-but-unreachable primary: it keeps running until Close,
		// but the seal below fences it from ever acking again.
		c.zombies = append(c.zombies, n)
	}
	c.mu.Unlock()

	host.replica.Seal(deadID)
	dir := host.replica.ReplicaDir(deadID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	repl := &node{id: deadID, dir: dir, promoted: true}
	if err := c.openNode(repl); err != nil {
		return
	}
	c.mu.Lock()
	repl.promoted = true
	c.nodes[deadID] = repl
	c.mu.Unlock()
	c.router.SetNodeAddr(deadID, repl.addr)
}

// AddNode grows the cluster with a fresh node (re-partitioning): the
// partition map gains the node, so it wins ownership of the minimal
// slice of future registrations; every already-pinned client stays
// where it is. The new node's journal ships to the first live node's
// replica host.
func (c *Cluster) AddNode(id string) error {
	c.mu.Lock()
	if c.nodes[id] != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %s already exists", id)
	}
	var hostID string
	for _, cand := range c.cfg.Nodes {
		if n := c.nodes[cand]; n != nil && !n.crashed && !n.promoted && n.replica != nil {
			hostID = cand
			break
		}
	}
	n := &node{id: id, dir: filepath.Join(c.cfg.StateRoot, "node-"+id)}
	c.mu.Unlock()

	host, repAddr, err := NewReplicaHost(c.cfg.Transport, c.newAddr(id, "replica"), n.dir)
	if err != nil {
		return err
	}
	n.replica, n.repAddr = host, repAddr
	if hostID != "" {
		c.mu.Lock()
		n.shipper = NewShipper(c.cfg.Transport, id, c.nodes[hostID].repAddr, nil)
		c.follower[id] = hostID
		c.mu.Unlock()
	}
	if err := c.openNode(n); err != nil {
		host.Close()
		return err
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()

	c.mu.Lock()
	pmap, err := c.pmap.With(id)
	if err == nil {
		c.pmap = pmap
	}
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.router.SetPartitionMap(pmap, map[string]string{id: n.addr})
	return nil
}

// Telemetry merges every live node's USE snapshot with the router's
// own, so the cluster verdict names which node's resource saturated. A
// degraded partition (unreplicated: promoted, or its follower died)
// contributes a saturated "replica" sample — losing redundancy is the
// cluster-level failure mode worth shouting about.
func (c *Cluster) Telemetry() *telemetry.Snapshot {
	c.mu.Lock()
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	snaps := []*telemetry.Snapshot{c.router.Telemetry()}
	for _, id := range ids {
		c.mu.Lock()
		n := c.nodes[id]
		c.mu.Unlock()
		if n == nil || n.crashed {
			continue
		}
		snap := n.srv.Telemetry()
		degraded, why := 0.0, "journal replicated to follower"
		if n.promoted {
			degraded, why = 1.0, "promoted from replica, running unreplicated"
		} else if n.shipper == nil {
			why = "single-node cluster, nothing to replicate to"
		} else if n.shipper.Degraded() {
			degraded, why = 1.0, "follower unreachable, running unreplicated"
		}
		snap.Add(telemetry.Sample{
			Resource: "replica", Axis: telemetry.Errors,
			Metric: "replication degraded", Value: degraded,
			Pressure: degraded, Detail: why,
		})
		snap.Finalize()
		snaps = append(snaps, snap)
	}
	return telemetry.MergeSnapshots(snaps...)
}

// StateRoot returns the directory holding every node and replica
// state directory — the tree MergeTree folds into the dataset.
func (c *Cluster) StateRoot() string { return c.cfg.StateRoot }

// Close stops the router, every live node, every replica host, and any
// fenced-off zombie primaries.
func (c *Cluster) Close() error {
	var err error
	if c.router != nil {
		err = c.router.Close()
	}
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	zombies := c.zombies
	c.zombies = nil
	c.mu.Unlock()
	for _, z := range zombies {
		z.srv.Crash() // its journal is poisoned; a graceful close would error
		if z.shipper != nil {
			z.shipper.Close()
		}
		if z.replica != nil {
			z.replica.Close()
		}
	}
	for _, n := range nodes {
		if n.crashed {
			continue
		}
		if n.srv != nil {
			if cerr := n.srv.Close(); err == nil {
				err = cerr
			}
		}
		if n.shipper != nil {
			n.shipper.Close()
		}
		if n.replica != nil {
			if cerr := n.replica.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
