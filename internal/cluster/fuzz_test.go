package cluster

import (
	"fmt"
	"testing"
)

// FuzzPartitionMap fuzzes the client-id→node assignment over arbitrary
// node sets and client ids, checking the three properties the cluster
// depends on: the assignment is total, stable under node-set
// re-ordering, and rebalancing moves only the minimal key range (ids
// move only onto an added node, or only off a removed one).
func FuzzPartitionMap(f *testing.F) {
	f.Add(uint8(3), "uucs-00deadbeef00", uint8(1))
	f.Add(uint8(1), "", uint8(0))
	f.Add(uint8(9), "client-with-a-long-identity-string", uint8(7))
	f.Add(uint8(2), "uucs-ffffffffffffffff", uint8(2))
	f.Fuzz(func(t *testing.T, nNodes uint8, clientID string, pick uint8) {
		n := int(nNodes%12) + 1
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i)
		}
		m, err := NewPartitionMap(nodes...)
		if err != nil {
			t.Fatalf("NewPartitionMap(%v): %v", nodes, err)
		}

		// Total: every id has exactly one owner from the set.
		owner := m.Owner(clientID)
		found := false
		for _, nd := range nodes {
			if nd == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q not in node set %v", owner, nodes)
		}

		// Stable under re-ordering: rotate and reverse the node list.
		rot := append(append([]string{}, nodes[n/2:]...), nodes[:n/2]...)
		rm, err := NewPartitionMap(rot...)
		if err != nil {
			t.Fatal(err)
		}
		if got := rm.Owner(clientID); got != owner {
			t.Fatalf("owner changed under re-ordering: %q vs %q", got, owner)
		}

		// Minimal movement: add a fresh node — the id either stays or
		// moves to exactly that node.
		grown, err := m.With("node-added")
		if err != nil {
			t.Fatal(err)
		}
		if got := grown.Owner(clientID); got != owner && got != "node-added" {
			t.Fatalf("adding a node moved id from %q to %q", owner, got)
		}

		// Minimal movement: remove one node — ids it did not own must
		// not move.
		if n > 1 {
			victim := nodes[int(pick)%n]
			shrunk, err := m.Without(victim)
			if err != nil {
				t.Fatal(err)
			}
			got := shrunk.Owner(clientID)
			if owner != victim && got != owner {
				t.Fatalf("removing %q moved id from %q to %q", victim, owner, got)
			}
			if owner == victim && got == victim {
				t.Fatalf("id still assigned to removed node %q", victim)
			}
		}
	})
}
