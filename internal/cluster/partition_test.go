package cluster

import (
	"fmt"
	"math"
	"testing"
)

func mustMap(t *testing.T, nodes ...string) *PartitionMap {
	t.Helper()
	m, err := NewPartitionMap(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPartitionMapValidation(t *testing.T) {
	if _, err := NewPartitionMap(); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewPartitionMap("a", ""); err == nil {
		t.Error("empty node id accepted")
	}
	m := mustMap(t, "b", "a", "b")
	if m.Len() != 2 {
		t.Errorf("duplicates not collapsed: %v", m.Nodes())
	}
	if _, err := mustMap(t, "a").Without("a"); err == nil {
		t.Error("removing the last node accepted")
	}
}

func TestPartitionMapTotalAndOrderIndependent(t *testing.T) {
	a := mustMap(t, "n1", "n2", "n3")
	b := mustMap(t, "n3", "n1", "n2")
	owned := map[string]int{}
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("uucs-%016x", uint64(i)*0x9e3779b97f4a7c15)
		oa, ob := a.Owner(id), b.Owner(id)
		if oa != ob {
			t.Fatalf("owner differs under node re-ordering: %s vs %s", oa, ob)
		}
		found := false
		for _, n := range a.Nodes() {
			if n == oa {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q not in node set", oa)
		}
		owned[oa]++
	}
	// Rendezvous hashing should spread ids roughly evenly; allow wide
	// slack (the property under test is totality, not perfection).
	for n, c := range owned {
		if math.Abs(float64(c)-2000.0/3) > 2000.0/3*0.5 {
			t.Errorf("node %s owns %d of 2000 ids — implausibly unbalanced", n, c)
		}
	}
}

func TestPartitionMapMinimalMovement(t *testing.T) {
	before := mustMap(t, "n1", "n2", "n3", "n4")
	after, err := before.Without("n3")
	if err != nil {
		t.Fatal(err)
	}
	grown, err := before.With("n5")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("client-%d", i)
		was := before.Owner(id)
		// Removal: only ids owned by the removed node move.
		if now := after.Owner(id); was != "n3" && now != was {
			t.Fatalf("id %s moved %s→%s though %s stayed up", id, was, now, was)
		} else if was == "n3" && now == "n3" {
			t.Fatalf("id %s still owned by removed node", id)
		}
		// Addition: ids either stay put or move to the new node.
		if now := grown.Owner(id); now != was && now != "n5" {
			t.Fatalf("id %s moved %s→%s on adding n5", id, was, now)
		}
	}
}

func TestPartitionMapWithIsNoOpForExisting(t *testing.T) {
	m := mustMap(t, "a", "b")
	m2, err := m.With("a")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 {
		t.Errorf("With(existing) changed the map: %v", m2.Nodes())
	}
}
