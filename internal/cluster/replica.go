package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"uucs/internal/chaos"
	"uucs/internal/protocol"
	"uucs/internal/server"
)

// Transport abstracts how cluster pieces reach each other, so the same
// router/replica code runs over loopback TCP (real deployments, the
// cluster-smoke job) and over chaos.Network in-memory pipes (the chaos
// suite, where nodes crash and partition under the race detector).
type Transport interface {
	Listen(addr string) (net.Listener, error)
	Dial(addr string) (net.Conn, error)
}

// TCPTransport is the real-network transport.
type TCPTransport struct {
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
}

func (t TCPTransport) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func (t TCPTransport) Dial(addr string) (net.Conn, error) {
	d := t.DialTimeout
	if d <= 0 {
		d = 5 * time.Second
	}
	return net.DialTimeout("tcp", addr, d)
}

// ChaosTransport runs the cluster over a chaos.Network, whose SetDown
// partitions whole nodes mid-conversation.
type ChaosTransport struct {
	Net *chaos.Network
}

func (t ChaosTransport) Listen(addr string) (net.Listener, error) {
	return t.Net.Listen(addr)
}

func (t ChaosTransport) Dial(addr string) (net.Conn, error) {
	return t.Net.Dial(addr)
}

// shipTimeout bounds one ship round-trip (and the dial behind it) so a
// partitioned follower stalls the primary's journal writer only
// briefly before the partition degrades instead of wedging ingest.
const shipTimeout = 2 * time.Second

// Shipper streams a primary's committed journal segments to its
// follower's ReplicaHost, in order, over one persistent connection.
// Segments are numbered contiguously from 1 so the follower can refuse
// gaps; a retried segment whose ack was lost is acked idempotently.
//
// Failure policy — the heart of the cluster's durability story:
//
//   - Transport failures (follower crashed, partitioned, timed out)
//     DEGRADE the partition: Ship reports the degradation once via
//     onDegrade and then returns nil forever, so the primary keeps
//     acking unreplicated rather than refusing all writes. Every
//     already-acked op is still on the primary's own fsynced journal;
//     the partition simply tolerates no further failure until the
//     follower is rebuilt (documented in DESIGN.md).
//   - Protocol violations (the follower NACKs, or acks the wrong
//     sequence) POISON the journal by returning an error: something is
//     structurally wrong and acking more work would be lying.
//
// Ship is called from the journal writer's single commit goroutine (and
// once at node start for the bootstrap segment), so calls are already
// serialized; the mutex exists for Close and the degraded probe.
type Shipper struct {
	tr        Transport
	addr      string
	node      string
	onDegrade func(error)

	mu       sync.Mutex
	conn     *protocol.Conn
	seq      uint64
	degraded bool
	closed   bool
}

// NewShipper returns a shipper for node's segments toward the replica
// host at addr. onDegrade (optional) fires exactly once if replication
// degrades, with the causing error.
func NewShipper(tr Transport, node, addr string, onDegrade func(error)) *Shipper {
	return &Shipper{tr: tr, addr: addr, node: node, onDegrade: onDegrade}
}

// Ship sends one journal segment to the follower and waits for its
// durable ack. Safe to pass as Server.JournalShip.
func (sh *Shipper) Ship(segment []byte) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.degraded || sh.closed {
		return nil
	}
	sh.seq++
	msg := protocol.Message{Type: protocol.TypeShip, Node: sh.node, Seq: sh.seq}
	ack, err := sh.roundTrip(msg, segment)
	if err != nil {
		// Transport-level failure, already retried once on a fresh
		// connection: the follower is gone. Degrade, keep serving.
		sh.degraded = true
		sh.dropConn()
		if sh.onDegrade != nil {
			sh.onDegrade(err)
		}
		return nil
	}
	if perr := protocol.AsError(ack); perr != nil {
		return fmt.Errorf("cluster: follower refused segment %d: %w", sh.seq, perr)
	}
	if ack.Type != protocol.TypeShipAck || ack.Seq != sh.seq {
		return fmt.Errorf("cluster: follower acked segment %d, shipped %d", ack.Seq, sh.seq)
	}
	return nil
}

// roundTrip sends msg carrying payload and reads the reply, redialing
// once if the cached connection broke (covers the follower restarting
// between segments, and the retried segment dedups by seq on the other
// side). The payload rides as borrowed bytes — no copy per segment.
func (sh *Shipper) roundTrip(msg protocol.Message, payload []byte) (protocol.Message, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if sh.conn == nil {
			raw, err := sh.tr.Dial(sh.addr)
			if err != nil {
				lastErr = err
				continue
			}
			sh.conn = protocol.NewConn(raw)
			sh.conn.SetTimeout(shipTimeout)
			// Shipping always speaks v3: journal segments hold verbatim
			// binary frames, and only the v3 framing is binary-safe (the
			// v2 JSON framing would mangle them into U+FFFD).
			sh.conn.SetVersion(protocol.V3)
		}
		if err := sh.conn.SendPayload(msg, payload); err != nil {
			lastErr = err
			sh.dropConn()
			continue
		}
		reply, err := sh.conn.Recv()
		if err != nil {
			lastErr = err
			sh.dropConn()
			continue
		}
		return reply, nil
	}
	return protocol.Message{}, lastErr
}

func (sh *Shipper) dropConn() {
	if sh.conn != nil {
		sh.conn.Close()
		sh.conn = nil
	}
}

// Degraded reports whether replication has degraded.
func (sh *Shipper) Degraded() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.degraded
}

// Close drops the connection; subsequent Ships are no-ops.
func (sh *Shipper) Close() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.closed = true
	sh.dropConn()
}

// ReplicaDirName returns the directory (under the follower's state
// root) holding the replica journal for the named primary. The
// directory is itself a valid server state dir — journal.txt only — so
// promote-on-crash is just server.OpenState over it.
func ReplicaDirName(primary string) string {
	return "replica-" + primary
}

// ReplicaHost is the follower half of journal shipping: it accepts
// TypeShip segments from any number of primaries, appends each to that
// primary's replica journal, fsyncs, and only then acks. Segment
// sequence numbers must be contiguous per primary; a duplicate (retry
// after a lost ack) is acked without re-appending, a gap is refused —
// a gap means bytes the primary already acked to clients could be
// missing here, and accepting it would make promote-on-crash lossy.
type ReplicaHost struct {
	root string
	ln   net.Listener
	wg   sync.WaitGroup

	mu      sync.Mutex
	lastSeq map[string]uint64
	files   map[string]*os.File
	sealed  map[string]bool
	conns   map[*protocol.Conn]struct{}
	closed  bool
}

// NewReplicaHost serves replica journals under root, listening on addr
// via tr. It returns the bound address.
func NewReplicaHost(tr Transport, addr, root string) (*ReplicaHost, string, error) {
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	h := &ReplicaHost{
		root:    root,
		ln:      ln,
		lastSeq: make(map[string]uint64),
		files:   make(map[string]*os.File),
		sealed:  make(map[string]bool),
		conns:   make(map[*protocol.Conn]struct{}),
	}
	h.wg.Add(1)
	go h.serve()
	return h, ln.Addr().String(), nil
}

func (h *ReplicaHost) serve() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		pc := protocol.NewConn(conn)
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			pc.Close()
			return
		}
		h.conns[pc] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.handle(pc)
			h.mu.Lock()
			delete(h.conns, pc)
			h.mu.Unlock()
		}()
	}
}

func (h *ReplicaHost) handle(conn *protocol.Conn) {
	defer conn.Close()
	for {
		f, err := conn.RecvFrame()
		if err != nil {
			return
		}
		// The segment bytes are a borrowed view of the connection's read
		// buffer; apply writes them to the replica file before the next
		// RecvFrame invalidates the view, so no copy is ever made. (A
		// v2-era shipper still works — its JSON framing fills the
		// Message view instead — but can only carry text segments.)
		node, seq, payload := string(f.Node), f.Seq, f.Payload
		if f.WireVersion == protocol.V2 {
			msg, merr := f.Message()
			if merr != nil {
				_ = conn.SendError(merr)
				return
			}
			node, payload = msg.Node, []byte(msg.Payload)
		}
		if f.Type != protocol.TypeShip || node == "" || seq == 0 {
			_ = conn.SendError(fmt.Errorf("cluster: malformed ship"))
			return
		}
		dup, err := h.apply(node, seq, payload)
		if err != nil {
			_ = conn.SendError(err)
			return
		}
		if err := conn.Send(protocol.Message{
			Type: protocol.TypeShipAck, Seq: f.Seq, Dup: dup,
		}); err != nil {
			return
		}
	}
}

// apply makes one segment durable (or recognizes it as a replay).
func (h *ReplicaHost) apply(primary string, seq uint64, segment []byte) (dup bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return false, fmt.Errorf("cluster: replica host closed")
	}
	if h.sealed[primary] {
		return false, fmt.Errorf("cluster: replica for %s is sealed (fenced for promotion)", primary)
	}
	last := h.lastSeq[primary]
	if seq <= last {
		return true, nil // retry of a segment already durable here
	}
	if seq != last+1 {
		return false, fmt.Errorf("cluster: segment gap for %s: have %d, got %d", primary, last, seq)
	}
	f := h.files[primary]
	if f == nil {
		dir := filepath.Join(h.root, ReplicaDirName(primary))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return false, err
		}
		_, journal := server.StateFilePaths(dir)
		f, err = os.OpenFile(journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return false, err
		}
		h.files[primary] = f
	}
	if _, err := f.Write(segment); err != nil {
		return false, err
	}
	if err := f.Sync(); err != nil {
		return false, err
	}
	h.lastSeq[primary] = seq
	return false, nil
}

// ReplicaDir returns the state directory holding the replica journal
// for the named primary (whether or not anything was shipped yet).
func (h *ReplicaHost) ReplicaDir(primary string) string {
	return filepath.Join(h.root, ReplicaDirName(primary))
}

// Seal fences the named primary's replica before promotion: its file
// is closed and every further segment from that primary is refused.
// Refusal poisons the old primary's journal through the shipper, so a
// partitioned-but-alive primary stops acking the moment its replica is
// promoted — the split-brain door closes from the replica side.
func (h *ReplicaHost) Seal(primary string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sealed[primary] = true
	if f := h.files[primary]; f != nil {
		f.Close()
		delete(h.files, primary)
	}
}

// Close stops accepting, severs live shipping connections, and closes
// replica files.
func (h *ReplicaHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	files := h.files
	h.files = make(map[string]*os.File)
	for pc := range h.conns {
		pc.Close()
	}
	h.mu.Unlock()
	err := h.ln.Close()
	h.wg.Wait()
	for _, f := range files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
