package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"uucs/internal/chaos"
	"uucs/internal/server"
)

// Cluster half of the seeded regression corpus. The corpus file is
// shared with internal/server (which replays the single-node suite);
// entries tagged "suite": "cluster" replay here, against the
// cluster-wide invariant: whatever node the seed kills or partitions,
// the merged dataset is bit-identical to the fault-free baseline.

const seedsFile = "../../scripts/e2e/regression_seeds.json"

type regressionSeed struct {
	Seed     uint64 `json:"seed"`
	Scenario string `json:"scenario"`
	Suite    string `json:"suite,omitempty"`
	Found    string `json:"found"`
	Note     string `json:"note"`
}

var clusterReplays = map[string]func(*testing.T, uint64){
	"node-kill-failover":      replayNodeKillFailover,
	"node-partition-failover": replayNodePartitionFailover,
}

func TestRegressionSeeds(t *testing.T) {
	data, err := os.ReadFile(seedsFile)
	if err != nil {
		t.Fatalf("seed corpus: %v", err)
	}
	var corpus struct {
		Seeds []regressionSeed `json:"seeds"`
	}
	if err := json.Unmarshal(data, &corpus); err != nil {
		t.Fatalf("seed corpus does not parse: %v", err)
	}
	replayed := 0
	for _, s := range corpus.Seeds {
		s := s
		if s.Suite != "cluster" {
			continue
		}
		replay, ok := clusterReplays[s.Scenario]
		if !ok {
			t.Errorf("seed %d names unknown cluster scenario %q", s.Seed, s.Scenario)
			continue
		}
		replayed++
		t.Run(fmt.Sprintf("%s/seed=%d", s.Scenario, s.Seed), func(t *testing.T) {
			replay(t, s.Seed)
		})
	}
	if replayed == 0 {
		t.Error("corpus holds no cluster seeds; the cluster suite replays nothing")
	}
}

// victimFor picks the node a seed kills — seed-chosen, but biased to a
// node that owns at least one fleet client when the plain choice owns
// none, so the failure always lands in the upload path.
func victimFor(t *testing.T, nodes []string, seed uint64) string {
	t.Helper()
	victim := nodes[int(seed%uint64(len(nodes)))]
	pm := mustMap(t, nodes...)
	for _, fc := range makeFleet(fleetClients) {
		if pm.Owner(server.DeriveClientID(fleetSeed, fc.snap)) == victim {
			return victim
		}
	}
	// The seed's choice owns no client; shift to one that does.
	for _, fc := range makeFleet(fleetClients) {
		return pm.Owner(server.DeriveClientID(fleetSeed, fc.snap))
	}
	return victim
}

func replayNodeKillFailover(t *testing.T, seed uint64) {
	nodes := []string{"n1", "n2", "n3"}
	victim := victimFor(t, nodes, seed)
	got, _, c := runCluster(t, nodes, func(c *Cluster, nw *chaos.Network) {
		if err := c.CrashNode(victim); err != nil {
			t.Errorf("crash %s: %v", victim, err)
		}
	})
	if got != expectedDataset(t) {
		t.Fatalf("seed %d: merged dataset after killing %s diverged from baseline", seed, victim)
	}
	if c.Router().Stats().Failovers == 0 {
		t.Errorf("seed %d: killing %s triggered no failover", seed, victim)
	}
}

func replayNodePartitionFailover(t *testing.T, seed uint64) {
	nodes := []string{"n1", "n2", "n3"}
	victim := victimFor(t, nodes, seed)
	got, _, c := runCluster(t, nodes, func(c *Cluster, nw *chaos.Network) {
		nw.SetDown(c.NodeAddr(victim), true)
	})
	if got != expectedDataset(t) {
		t.Fatalf("seed %d: merged dataset after partitioning %s diverged from baseline", seed, victim)
	}
	if c.Router().Stats().Failovers == 0 {
		t.Errorf("seed %d: partitioning %s triggered no failover", seed, victim)
	}
}
