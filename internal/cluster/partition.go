// Package cluster turns the single-process ingest server into an
// N-node tier: a consistent client-id-hash partition map, a router that
// pins every registered client to its node, primary→follower journal
// shipping per partition with promote-on-crash failover, and a
// deterministic merge that folds per-node journals back into the exact
// dataset a single fault-free server would have produced.
//
// The design keeps the PR 2 invariant cluster-wide — no acked batch is
// ever lost or duplicated — by composing three mechanisms:
//
//   - Client ids are topology-independent (server.DeriveClientID hashes
//     seed + machine snapshot), so the same fleet produces the same ids
//     against one node or N, and the merge can key on (id, seq).
//   - A node acks a batch only after its journal bytes are fsynced
//     locally AND shipped to its follower's disk (semi-synchronous
//     replication via Server.JournalShip), so a crashed primary's acked
//     ops always survive on the replica.
//   - The merge dedups by (client id, batch seq) and by content for
//     unsequenced payloads, so overlapping sources — a dead primary's
//     own journal plus its shipped replica — collapse to one copy.
package cluster

import (
	"fmt"
	"sort"
)

// PartitionMap assigns client ids to nodes by rendezvous (highest
// random weight) hashing: every (clientID, nodeID) pair gets a
// deterministic score and the client belongs to the highest-scoring
// node. Rendezvous hashing gives the three properties FuzzPartitionMap
// pins down: the assignment is total (every id maps to exactly one of
// the live nodes), independent of the order nodes are listed in, and
// minimal under change — removing a node moves only the ids it owned,
// adding one moves only the ids it now wins.
//
// A PartitionMap is immutable; With and Without derive new maps.
type PartitionMap struct {
	nodes []string // sorted, unique
}

// NewPartitionMap builds a map over the given node ids. Order does not
// matter; duplicates collapse. At least one node is required.
func NewPartitionMap(nodeIDs ...string) (*PartitionMap, error) {
	if len(nodeIDs) == 0 {
		return nil, fmt.Errorf("cluster: partition map needs at least one node")
	}
	uniq := make(map[string]bool, len(nodeIDs))
	nodes := make([]string, 0, len(nodeIDs))
	for _, id := range nodeIDs {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if !uniq[id] {
			uniq[id] = true
			nodes = append(nodes, id)
		}
	}
	sort.Strings(nodes)
	return &PartitionMap{nodes: nodes}, nil
}

// Nodes returns the node ids, sorted. The slice is shared; do not
// mutate.
func (m *PartitionMap) Nodes() []string { return m.nodes }

// Len returns the number of nodes.
func (m *PartitionMap) Len() int { return len(m.nodes) }

// Owner returns the node owning a client id. Total: every id has an
// owner as long as the map has a node. Ties between equal scores (only
// possible with duplicate node ids, which NewPartitionMap forbids)
// break toward the lexically smallest node, keeping the choice
// deterministic.
func (m *PartitionMap) Owner(clientID string) string {
	best := m.nodes[0]
	bestScore := rendezvousScore(clientID, best)
	for _, node := range m.nodes[1:] {
		if s := rendezvousScore(clientID, node); s > bestScore {
			best, bestScore = node, s
		}
	}
	return best
}

// With derives a map with one more node (a no-op if present).
func (m *PartitionMap) With(nodeID string) (*PartitionMap, error) {
	return NewPartitionMap(append(append([]string{}, m.nodes...), nodeID)...)
}

// Without derives a map with one node removed. Removing the last node
// is an error — a cluster with zero partitions cannot own anything.
func (m *PartitionMap) Without(nodeID string) (*PartitionMap, error) {
	rest := make([]string, 0, len(m.nodes))
	for _, id := range m.nodes {
		if id != nodeID {
			rest = append(rest, id)
		}
	}
	return NewPartitionMap(rest...)
}

// rendezvousScore is the deterministic weight of placing clientID on
// nodeID — an FNV-1a style mix of both strings. Scoring the pair
// (rather than hashing the id into a ring) is what makes reassignment
// minimal: a node's departure cannot change the relative order of the
// remaining nodes' scores for any id.
func rendezvousScore(clientID, nodeID string) uint64 {
	h := phashString(0xcbf29ce484222325, clientID)
	h = phashString(h, nodeID)
	// Final avalanche so near-identical node names don't correlate.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// phashMix folds v into an FNV-1a style running hash (the same shape
// the server uses for shard selection, kept local so the partition map
// has no dependency on server internals).
func phashMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// phashString folds a string into a running hash byte by byte,
// length-terminated so concatenation cannot alias ("ab"+"c" ≠ "a"+"bc").
func phashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = phashMix(h, uint64(s[i]))
	}
	return phashMix(h, uint64(len(s))+1)
}
