package cluster

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uucs/internal/chaos"
	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/server"
)

// The cluster chaos suite: drive a real client fleet through the
// router over the in-memory chaos network, kill / partition /
// re-partition nodes mid-upload, and require the PR 2 invariant
// cluster-wide — the merged multi-node dataset is bit-identical to the
// single-node fault-free baseline, every acked batch exactly once.

const (
	fleetSeed    = 777
	fleetClients = 6
	fleetBatches = 8
	runsPerBatch = 3
)

// fleetClient is one scripted upload client: a fixed snapshot and a
// fixed set of sequenced batches. Batch content depends only on the
// client index, never on topology or timing, so the expected dataset
// is computable up front.
type fleetClient struct {
	idx     int
	snap    protocol.Snapshot
	batches [][]*core.Run
}

func makeFleet(n int) []*fleetClient {
	fleet := make([]*fleetClient, n)
	for c := range fleet {
		fc := &fleetClient{
			idx: c,
			snap: protocol.Snapshot{
				Hostname: fmt.Sprintf("cluster-host-%d", c), OS: "winxp",
				CPUGHz: 2 + float64(c)/8, MemMB: 512, DiskGB: 80,
			},
		}
		for s := 1; s <= fleetBatches; s++ {
			var runs []*core.Run
			for i := 0; i < runsPerBatch; i++ {
				runs = append(runs, fabRun(c, s, i))
			}
			fc.batches = append(fc.batches, runs)
		}
		fleet[c] = fc
	}
	return fleet
}

func fleetRuns(fleet []*fleetClient) []*core.Run {
	var all []*core.Run
	for _, fc := range fleet {
		for _, b := range fc.batches {
			all = append(all, b...)
		}
	}
	return all
}

// drive uploads every batch of one client through the router,
// retrying across transport errors and in-band "node unavailable"
// rejections (both happen mid-failover). A dup ack counts as acked —
// the retry raced an ack that was lost in the failure. onAck fires
// after every acked batch with the fleet-wide acked total.
func drive(t *testing.T, nw *chaos.Network, addr string, fc *fleetClient, acked *atomic.Int64, onAck func(total int64)) error {
	var conn *protocol.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	roundTrip := func(msg protocol.Message) (protocol.Message, error) {
		var lastErr error
		for attempt := 0; attempt < 60; attempt++ {
			if attempt > 0 {
				time.Sleep(2 * time.Millisecond)
			}
			if conn == nil {
				raw, err := nw.Dial(addr)
				if err != nil {
					lastErr = err
					continue
				}
				conn = protocol.NewConn(raw)
				conn.SetTimeout(5 * time.Second)
			}
			if err := conn.Send(msg); err != nil {
				lastErr = err
				conn.Close()
				conn = nil
				continue
			}
			reply, err := conn.Recv()
			if err != nil {
				lastErr = err
				conn.Close()
				conn = nil
				continue
			}
			if perr := protocol.AsError(reply); perr != nil {
				// The router answered in-band: the owning node is mid-
				// failover. Same connection, try again shortly.
				lastErr = perr
				continue
			}
			return reply, nil
		}
		return protocol.Message{}, lastErr
	}

	reg, err := roundTrip(protocol.Message{
		Type: protocol.TypeRegister, Ver: protocol.Version,
		Snapshot: &fc.snap, Nonce: fmt.Sprintf("nonce-%d", fc.idx),
	})
	if err != nil {
		return fmt.Errorf("client %d register: %w", fc.idx, err)
	}
	if reg.Type != protocol.TypeRegistered || reg.ClientID == "" {
		return fmt.Errorf("client %d register reply: %+v", fc.idx, reg)
	}
	id := reg.ClientID

	for s, runs := range fc.batches {
		seq := uint64(s + 1)
		ack, err := roundTrip(protocol.Message{
			Type: protocol.TypeResults, ClientID: id, Seq: seq,
			Payload: encodePayload(t, runs),
		})
		if err != nil {
			return fmt.Errorf("client %d batch %d: %w", fc.idx, seq, err)
		}
		if ack.Type != protocol.TypeAck || ack.Seq != seq {
			return fmt.Errorf("client %d batch %d ack: %+v", fc.idx, seq, ack)
		}
		total := acked.Add(1)
		if onAck != nil {
			onAck(total)
		}
	}
	return nil
}

// runCluster starts a cluster on a fresh chaos network, uploads the
// whole fleet through the router (mid (optional) fires once when half
// the fleet's batches are acked, with the cluster and network), closes
// the cluster, and returns the merged dataset bytes.
func runCluster(t *testing.T, nodes []string, mid func(c *Cluster, nw *chaos.Network)) (string, MergeStats, *Cluster) {
	out, st, c, _ := runClusterCfg(t, nodes, mid, nil)
	return out, st, c
}

// runClusterCfg is runCluster with a config hook (tweak mutates the
// cluster config before Start) and the state root returned, so tests
// can inspect the on-disk journal layout after the run.
func runClusterCfg(t *testing.T, nodes []string, mid func(c *Cluster, nw *chaos.Network), tweak func(*Config)) (string, MergeStats, *Cluster, string) {
	t.Helper()
	nw := chaos.NewNetwork()
	root := t.TempDir()
	cfg := Config{
		Nodes: nodes, Seed: fleetSeed, StateRoot: root,
		Transport:   ChaosTransport{Net: nw},
		IdleTimeout: 5 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := makeFleet(fleetClients)
	var acked atomic.Int64
	var midOnce sync.Once
	half := int64(fleetClients * fleetBatches / 2)
	onAck := func(total int64) {
		if mid != nil && total >= half {
			midOnce.Do(func() { mid(c, nw) })
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	for i, fc := range fleet {
		wg.Add(1)
		go func(i int, fc *fleetClient) {
			defer wg.Done()
			errs[i] = drive(t, nw, c.Addr(), fc, &acked, onAck)
		}(i, fc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("cluster close: %v", err)
	}
	var b strings.Builder
	st, err := MergeTree(&b, root)
	if err != nil {
		t.Fatal(err)
	}
	return b.String(), st, c, root
}

// expectedDataset is the canonical bytes of every batch the fleet
// uploads — what the merge of any fault schedule must produce.
func expectedDataset(t *testing.T) string {
	return canonical(t, fleetRuns(makeFleet(fleetClients)))
}

// ownerOfClient computes which node a fleet client registers on.
func ownerOfClient(t *testing.T, nodes []string, idx int) string {
	t.Helper()
	pm := mustMap(t, nodes...)
	fc := makeFleet(fleetClients)[idx]
	return pm.Owner(server.DeriveClientID(fleetSeed, fc.snap))
}

func TestClusterFaultFreeMatchesSingleNode(t *testing.T) {
	want := expectedDataset(t)
	single, stSingle, _ := runCluster(t, []string{"n1"}, nil)
	if single != want {
		t.Fatal("single-node merged dataset differs from the canonical fleet dataset")
	}
	multi, stMulti, c := runCluster(t, []string{"n1", "n2", "n3"}, nil)
	if multi != single {
		t.Fatal("3-node merged dataset differs from the 1-node baseline")
	}
	wantBatches := fleetClients * fleetBatches
	if stSingle.Batches != wantBatches || stMulti.Batches != wantBatches {
		t.Errorf("batches: single %d, multi %d, want %d", stSingle.Batches, stMulti.Batches, wantBatches)
	}
	// Replication actually happened: every node's journal was shipped,
	// so the replica copies are dropped as duplicates by the merge.
	if stMulti.DupBatches == 0 {
		t.Error("3-node merge dropped no replica duplicates; journal shipping is not happening")
	}
	// The fleet spread across nodes (the partition map is not degenerate
	// for this fleet; guards the crash tests' assumptions).
	pins := map[string]bool{}
	for _, node := range c.Router().Pins() {
		pins[node] = true
	}
	if len(pins) < 2 {
		t.Errorf("fleet pinned to %d node(s); want it spread", len(pins))
	}
}

func TestClusterNodeCrashFailover(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	victim := ownerOfClient(t, nodes, 0) // owns at least client 0
	var crashed atomic.Bool
	got, _, c := runCluster(t, nodes, func(c *Cluster, nw *chaos.Network) {
		if err := c.CrashNode(victim); err != nil {
			t.Errorf("crash %s: %v", victim, err)
			return
		}
		crashed.Store(true)
	})
	if !crashed.Load() {
		t.Fatal("the mid-upload crash never fired")
	}
	if got != expectedDataset(t) {
		t.Fatal("merged dataset after node crash + failover differs from fault-free baseline")
	}
	if f := c.Router().Stats().Failovers; f == 0 {
		t.Error("no failover recorded; the crash was not observed")
	}
}

func TestClusterNodePartitionFailover(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	victim := ownerOfClient(t, nodes, 1)
	var partitioned atomic.Bool
	got, _, c := runCluster(t, nodes, func(c *Cluster, nw *chaos.Network) {
		// Sever the node's ingest address: the process stays alive
		// (a zombie primary), but clients and the router lose it. The
		// replica seal fences it from ever acking again.
		nw.SetDown(c.NodeAddr(victim), true)
		partitioned.Store(true)
	})
	if !partitioned.Load() {
		t.Fatal("the mid-upload partition never fired")
	}
	if got != expectedDataset(t) {
		t.Fatal("merged dataset after node partition + failover differs from fault-free baseline")
	}
	if f := c.Router().Stats().Failovers; f == 0 {
		t.Error("no failover recorded; the partition was not observed")
	}
}

func TestClusterRepartitionMidRun(t *testing.T) {
	nodes := []string{"n1", "n2"}
	var added atomic.Bool
	got, _, c := runCluster(t, nodes, func(c *Cluster, nw *chaos.Network) {
		if err := c.AddNode("n3"); err != nil {
			t.Errorf("add node: %v", err)
			return
		}
		added.Store(true)
	})
	if !added.Load() {
		t.Fatal("the mid-upload re-partition never fired")
	}
	if got != expectedDataset(t) {
		t.Fatal("merged dataset after re-partitioning differs from fault-free baseline")
	}
	// Already-registered clients must not have moved.
	for id, node := range c.Router().Pins() {
		if node == "n3" {
			t.Errorf("client %s re-pinned to the added node", id)
		}
	}
}

// TestClusterTelemetryNamesNodes checks the aggregated USE surface:
// per-node snapshots merge under node-prefixed resource names, and a
// degraded partition drives the cluster verdict to that node's replica
// resource.
func TestClusterTelemetryNamesNodes(t *testing.T) {
	nw := chaos.NewNetwork()
	c, err := Start(Config{
		Nodes: []string{"a", "b"}, Seed: 9, StateRoot: t.TempDir(),
		Transport: ChaosTransport{Net: nw},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	snap := c.Telemetry()
	if snap.Node != "cluster" {
		t.Errorf("merged snapshot node = %q", snap.Node)
	}
	seen := map[string]bool{}
	for _, sm := range snap.Samples {
		seen[sm.Resource] = true
	}
	for _, want := range []string{"router/forwarding", "a/journal-fsync", "b/journal-fsync", "a/replica", "b/replica"} {
		if !seen[want] {
			t.Errorf("merged telemetry missing %q (have %d samples)", want, len(snap.Samples))
		}
	}
	if snap.Saturated != "none" {
		t.Errorf("healthy cluster verdict = %q, want none", snap.Saturated)
	}

	// Kill b: a ships to b's replica host, so a must degrade once it
	// next ships; b's samples drop out of the merge.
	if err := c.CrashNode("b"); err != nil {
		t.Fatal(err)
	}
	// Drive one registration onto a through the router to force a
	// journaled op (and thus a ship attempt against the dead host).
	fc := &fleetClient{idx: 0, snap: protocol.Snapshot{
		Hostname: "telemetry-host", OS: "winxp", CPUGHz: 2, MemMB: 512, DiskGB: 80,
	}}
	// Make sure this client routes to a, not to the dead partition b:
	// derive and check; if it lands on b, the router will fail over b
	// first, which also works but muddies the assertion. Pick a
	// hostname owned by a.
	pm := mustMap(t, "a", "b")
	for i := 0; pm.Owner(server.DeriveClientID(9, fc.snap)) != "a"; i++ {
		fc.snap.Hostname = fmt.Sprintf("telemetry-host-%d", i)
	}
	var acked atomic.Int64
	if err := drive(t, nw, c.Addr(), fc, &acked, nil); err != nil {
		t.Fatal(err)
	}
	snap = c.Telemetry()
	found := false
	for _, sm := range snap.Samples {
		if sm.Resource == "a/replica" && sm.Pressure == 1 {
			found = true
		}
		if strings.HasPrefix(sm.Resource, "b/") {
			t.Errorf("crashed node still reporting: %s", sm.Resource)
		}
	}
	if !found {
		t.Error("predecessor a did not report degraded replication after its follower died")
	}
	if snap.Saturated == "none" {
		t.Error("degraded cluster still reports a healthy verdict")
	}
}

// TestClusterSegmentedCrashFailover runs the crash-failover chaos
// schedule with tiny journal segments and parallel replay turned on at
// every node: segments must actually seal under cluster load, the
// promoted takeover must replay a multi-segment replica, and the merge
// must fold the segmented journals into the fault-free dataset.
func TestClusterSegmentedCrashFailover(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	victim := ownerOfClient(t, nodes, 0)
	var crashed atomic.Bool
	got, _, c, root := runClusterCfg(t, nodes, func(c *Cluster, nw *chaos.Network) {
		if err := c.CrashNode(victim); err != nil {
			t.Errorf("crash %s: %v", victim, err)
			return
		}
		crashed.Store(true)
	}, func(cfg *Config) {
		cfg.JournalSegmentBytes = 2048
		cfg.ReplayWorkers = 4
	})
	if !crashed.Load() {
		t.Fatal("the mid-upload crash never fired")
	}
	if got != expectedDataset(t) {
		t.Fatal("segmented-journal merged dataset after crash + failover differs from fault-free baseline")
	}
	if f := c.Router().Stats().Failovers; f == 0 {
		t.Error("no failover recorded; the crash was not observed")
	}
	// The 2KB cap is far below each node's journal volume, so sealed
	// segments must exist on disk — proof the merge above actually read
	// a multi-segment layout.
	segs, err := filepath.Glob(filepath.Join(root, "node-*", "journal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no sealed segments under the cluster root; segmented journaling inactive")
	}
}
