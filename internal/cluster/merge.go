package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"uucs/internal/core"
	"uucs/internal/server"
)

// Deterministic journal merge: fold any set of per-node state
// directories — primaries, replicas, dead nodes' leftovers, in any
// order, with arbitrarily duplicated shipped segments — into the exact
// run dataset a single fault-free server would hold.
//
// Determinism rests on three facts:
//
//   - Every sequenced upload is keyed by (client id, batch seq), ids
//     are topology-independent, and a client is pinned to one primary,
//     so every copy of a given (id, seq) op — primary journal, shipped
//     replica, bootstrap re-ship — carries identical payload bytes.
//     The merge keeps the first copy and drops the rest.
//   - A compacted snapshot records, per client, the highest seq it
//     folded (LastSeq). The merge takes the max floor per client
//     across all sources and drops raw ops at or under it, so a
//     snapshot aggregate and the raw journals it summarizes never
//     double-count.
//   - The output is canonicalized: each run is encoded individually
//     and the encodings are sorted, so the bytes depend only on the
//     set of runs, never on node count, scan order, or merge order.

// MergeStats accounts for what a merge kept and dropped.
type MergeStats struct {
	// Sources is how many state directories were scanned.
	Sources int `json:"sources"`
	// Batches is how many distinct sequenced upload batches were kept.
	Batches int `json:"batches"`
	// DupBatches is how many duplicate copies of kept batches were
	// dropped (replica overlap, retried segments, dead-primary dirs).
	DupBatches int `json:"dup_batches"`
	// Covered is how many raw batches were dropped as already folded
	// into a compacted snapshot aggregate.
	Covered int `json:"covered"`
	// Aggregates is how many compacted (unsequenced) payloads were
	// kept; DupAggregates how many duplicate copies were dropped.
	Aggregates    int `json:"aggregates"`
	DupAggregates int `json:"dup_aggregates"`
	// Runs is the size of the merged dataset.
	Runs int `json:"runs"`
}

// MergeDirs merges the given state directories and writes the
// canonical dataset (text run records, load columns included) to w.
// The output is byte-identical for any permutation of dirs and any
// duplication among them.
func MergeDirs(w io.Writer, dirs []string) (MergeStats, error) {
	var st MergeStats
	st.Sources = len(dirs)

	// Pass 1: per-client snapshot floors — the highest batch seq any
	// source's compaction has folded away.
	floors := make(map[string]uint64)
	for _, dir := range dirs {
		err := scanDir(dir, func(op server.StateOp) error {
			if op.Kind == server.OpKindClient && op.LastSeq > floors[op.ID] {
				floors[op.ID] = op.LastSeq
			}
			return nil
		})
		if err != nil {
			return st, err
		}
	}

	// Pass 2: collect every run exactly once.
	type batchKey struct {
		id  string
		seq uint64
	}
	seen := make(map[batchKey]struct{})
	aggSeen := make(map[uint64]struct{})
	var encoded []string
	keep := func(payload string) error {
		runs, err := core.DecodeRuns(strings.NewReader(payload))
		if err != nil {
			return err
		}
		var b strings.Builder
		for _, r := range runs {
			b.Reset()
			if err := core.EncodeRuns(&b, []*core.Run{r}, true); err != nil {
				return err
			}
			encoded = append(encoded, b.String())
		}
		st.Runs += len(runs)
		return nil
	}
	for _, dir := range dirs {
		err := scanDir(dir, func(op server.StateOp) error {
			if op.Kind != server.OpKindResults {
				return nil
			}
			if op.ID != "" && op.Seq > 0 {
				if op.Seq <= floors[op.ID] {
					st.Covered++
					return nil
				}
				k := batchKey{op.ID, op.Seq}
				if _, dup := seen[k]; dup {
					st.DupBatches++
					return nil
				}
				seen[k] = struct{}{}
				st.Batches++
				return keep(op.Payload)
			}
			// Unsequenced payload: a compacted aggregate. Its identity
			// is its content (the same aggregate reappears wherever a
			// snapshot's bytes were shipped or copied).
			h := fnv.New64a()
			io.WriteString(h, op.ID)
			h.Write([]byte{0})
			io.WriteString(h, op.Payload)
			sum := h.Sum64()
			if _, dup := aggSeen[sum]; dup {
				st.DupAggregates++
				return nil
			}
			aggSeen[sum] = struct{}{}
			st.Aggregates++
			return keep(op.Payload)
		})
		if err != nil {
			return st, err
		}
	}

	sort.Strings(encoded)
	for _, e := range encoded {
		if _, err := io.WriteString(w, e); err != nil {
			return st, err
		}
	}
	return st, nil
}

// scanDir walks one state directory's snapshot then journal.
func scanDir(dir string, fn func(server.StateOp) error) error {
	snap, journal := server.StateFilePaths(dir)
	if err := server.ScanStateOps(snap, false, fn); err != nil {
		return fmt.Errorf("cluster: merge %s: %w", snap, err)
	}
	if err := server.ScanStateOps(journal, true, fn); err != nil {
		return fmt.Errorf("cluster: merge %s: %w", journal, err)
	}
	return nil
}

// DiscoverStateDirs walks root and returns, sorted, every directory
// that holds server state (a journal or a snapshot file) — node
// directories and the replica directories nested under them alike.
func DiscoverStateDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		_, journal := server.StateFilePaths(filepath.Dir(path))
		snap, _ := server.StateFilePaths(filepath.Dir(path))
		if path == journal || path == snap {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// Walk visits files in lexical order, so duplicates are adjacent.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// MergeTree discovers every state directory under root and merges
// them. This is the uucs-analyze/uucs-harvest entry point: point it at
// a cluster's state root and out comes the dataset.
func MergeTree(w io.Writer, root string) (MergeStats, error) {
	dirs, err := DiscoverStateDirs(root)
	if err != nil {
		return MergeStats{}, err
	}
	if len(dirs) == 0 {
		return MergeStats{}, fmt.Errorf("cluster: no state directories under %s", root)
	}
	return MergeDirs(w, dirs)
}

// MergedRuns merges the tree under root and decodes the dataset.
func MergedRuns(root string) ([]*core.Run, MergeStats, error) {
	var b strings.Builder
	st, err := MergeTree(&b, root)
	if err != nil {
		return nil, st, err
	}
	runs, err := core.DecodeRuns(strings.NewReader(b.String()))
	return runs, st, err
}
