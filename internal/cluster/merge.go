package cluster

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"uucs/internal/core"
	"uucs/internal/server"
)

// Deterministic journal merge: fold any set of per-node state
// directories — primaries, replicas, dead nodes' leftovers, in any
// order, with arbitrarily duplicated shipped segments — into the exact
// run dataset a single fault-free server would hold.
//
// Determinism rests on three facts:
//
//   - Every sequenced upload is keyed by (client id, batch seq), ids
//     are topology-independent, and a client is pinned to one primary,
//     so every copy of a given (id, seq) op — primary journal, shipped
//     replica, bootstrap re-ship — carries identical payload bytes.
//     The merge keeps the first copy and drops the rest.
//   - A compacted snapshot records, per client, the highest seq it
//     folded (LastSeq). The merge takes the max floor per client
//     across all sources and drops raw ops at or under it, so a
//     snapshot aggregate and the raw journals it summarizes never
//     double-count.
//   - The output is canonicalized: each run is encoded individually
//     and the encodings emitted in sorted order, so the bytes depend
//     only on the set of runs, never on node count, scan order, or
//     merge order.
//
// The merge streams in bounded memory: parallel workers scan sources
// and encode kept runs into per-worker sorted chunks; a chunk that
// outgrows MergeOptions.SpillBytes is spilled to a temp file; the
// final pass is a k-way heap merge over all chunk cursors — in-memory
// and spilled alike — emitting records in ascending order. The k-way
// merge of sorted sequences produces the globally sorted sequence, so
// its output is byte-identical to the old collect-all + sort.Strings
// at any worker count, spill threshold, or source order. Dedup runs
// under one mutex shared by all scan workers; it is order-independent
// because every copy of a key carries identical bytes, so which worker
// wins a race changes nothing about what is kept.

// MergeStats accounts for what a merge kept and dropped.
type MergeStats struct {
	// Sources is how many state directories were scanned.
	Sources int `json:"sources"`
	// Batches is how many distinct sequenced upload batches were kept.
	Batches int `json:"batches"`
	// DupBatches is how many duplicate copies of kept batches were
	// dropped (replica overlap, retried segments, dead-primary dirs).
	DupBatches int `json:"dup_batches"`
	// Covered is how many raw batches were dropped as already folded
	// into a compacted snapshot aggregate.
	Covered int `json:"covered"`
	// Aggregates is how many compacted (unsequenced) payloads were
	// kept; DupAggregates how many duplicate copies were dropped.
	Aggregates    int `json:"aggregates"`
	DupAggregates int `json:"dup_aggregates"`
	// Runs is the size of the merged dataset.
	Runs int `json:"runs"`
	// Spills is how many sorted chunks overflowed to temp files during
	// the merge; SpilledBytes is how much encoded data they carried.
	// Zero means the whole merge ran in memory.
	Spills       int   `json:"spills"`
	SpilledBytes int64 `json:"spilled_bytes"`
}

// MergeOptions tunes the streaming merge. The zero value is the
// default configuration; no option changes the output bytes.
type MergeOptions struct {
	// Workers bounds the parallel source-scan/encode workers
	// (0 means GOMAXPROCS).
	Workers int
	// SpillBytes bounds one worker's in-memory sorted chunk; a chunk
	// reaching it is spilled to a temp file (0 means 32MB).
	SpillBytes int
	// TempDir is where spill files go ("" means os.TempDir).
	TempDir string
}

const defaultSpillBytes = 32 << 20

// batchKey identifies one sequenced upload batch.
type batchKey struct {
	id  string
	seq uint64
}

// chunk is one worker's in-memory run of (encoding, run) pairs, sorted
// before merge. Spilling keeps only the encodings.
type chunk struct {
	encs  []string
	runs  []*core.Run
	bytes int
}

func (c *chunk) Len() int           { return len(c.encs) }
func (c *chunk) Less(i, j int) bool { return c.encs[i] < c.encs[j] }
func (c *chunk) Swap(i, j int) {
	c.encs[i], c.encs[j] = c.encs[j], c.encs[i]
	c.runs[i], c.runs[j] = c.runs[j], c.runs[i]
}

// mergeCursor walks one sorted chunk — in memory or spilled — during
// the k-way merge. cur/curRun hold the record at the cursor; curRun is
// nil for spilled records (the encoding is the record of truth; a
// consumer that needs the run decodes it).
type mergeCursor struct {
	ord    int // tie-break: earlier cursors win equal keys
	cur    string
	curRun *core.Run

	// In-memory chunk.
	mem *chunk
	idx int

	// Spilled chunk.
	r    *bufio.Reader
	f    *os.File
	sbuf []byte
}

// advance loads the next record, reporting false at end of chunk.
func (cu *mergeCursor) advance() (bool, error) {
	if cu.mem != nil {
		if cu.idx >= len(cu.mem.encs) {
			return false, nil
		}
		cu.cur, cu.curRun = cu.mem.encs[cu.idx], cu.mem.runs[cu.idx]
		cu.idx++
		return true, nil
	}
	n, err := binary.ReadUvarint(cu.r)
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cluster: merge spill read: %w", err)
	}
	if uint64(cap(cu.sbuf)) < n {
		cu.sbuf = make([]byte, n)
	}
	cu.sbuf = cu.sbuf[:n]
	if _, err := io.ReadFull(cu.r, cu.sbuf); err != nil {
		return false, fmt.Errorf("cluster: merge spill read: %w", err)
	}
	cu.cur, cu.curRun = string(cu.sbuf), nil
	return true, nil
}

// cursorHeap is a min-heap of cursors keyed by their current record.
type cursorHeap []*mergeCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	if h[i].cur != h[j].cur {
		return h[i].cur < h[j].cur
	}
	return h[i].ord < h[j].ord
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*mergeCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeInto is the merge engine: it scans dirs with opt.Workers
// goroutines and emits every kept run's canonical encoding in globally
// sorted order. run is non-nil when the decoded form survived in
// memory; a spilled record arrives with run == nil.
func mergeInto(dirs []string, opt MergeOptions, emit func(enc string, run *core.Run) error) (MergeStats, error) {
	var st MergeStats
	st.Sources = len(dirs)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	spillBytes := opt.SpillBytes
	if spillBytes <= 0 {
		spillBytes = defaultSpillBytes
	}

	// Pass 1: per-client snapshot floors — the highest batch seq any
	// source's compaction has folded away. Must complete before any
	// source's raw ops are judged, hence the barrier between passes.
	var (
		floors = make(map[string]uint64)
		mu     sync.Mutex
	)
	if err := scanDirsParallel(dirs, workers, func(_ int, op server.StateOp) error {
		if op.Kind == server.OpKindClient && op.LastSeq > 0 {
			mu.Lock()
			if op.LastSeq > floors[op.ID] {
				floors[op.ID] = op.LastSeq
			}
			mu.Unlock()
		}
		return nil
	}); err != nil {
		return st, err
	}

	// Pass 2: collect every run exactly once into per-worker sorted
	// chunks, spilling oversized chunks to disk.
	var (
		seen    = make(map[batchKey]struct{})
		aggSeen = make(map[uint64]struct{})
		chunks  = make([]*chunk, workers)
		spills  []*os.File
		spillMu sync.Mutex
	)
	defer func() {
		for _, f := range spills {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	for i := range chunks {
		chunks[i] = &chunk{}
	}
	spill := func(c *chunk) error {
		sort.Sort(c)
		f, err := os.CreateTemp(opt.TempDir, "uucs-merge-*.spill")
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		var lb [binary.MaxVarintLen64]byte
		var written int64
		for _, enc := range c.encs {
			n := binary.PutUvarint(lb[:], uint64(len(enc)))
			w.Write(lb[:n])
			if _, err := w.WriteString(enc); err != nil {
				f.Close()
				os.Remove(f.Name())
				return err
			}
			written += int64(n + len(enc))
		}
		if err := w.Flush(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		spillMu.Lock()
		spills = append(spills, f)
		st.Spills++
		st.SpilledBytes += written
		spillMu.Unlock()
		c.encs, c.runs, c.bytes = nil, nil, 0
		return nil
	}
	err := scanDirsParallel(dirs, workers, func(worker int, op server.StateOp) error {
		if op.Kind != server.OpKindResults {
			return nil
		}
		mu.Lock()
		if op.ID != "" && op.Seq > 0 {
			if op.Seq <= floors[op.ID] {
				st.Covered++
				mu.Unlock()
				return nil
			}
			k := batchKey{op.ID, op.Seq}
			if _, dup := seen[k]; dup {
				st.DupBatches++
				mu.Unlock()
				return nil
			}
			seen[k] = struct{}{}
			st.Batches++
		} else {
			// Unsequenced payload: a compacted aggregate. Its identity
			// is its content (the same aggregate reappears wherever a
			// snapshot's bytes were shipped or copied).
			h := fnv.New64a()
			io.WriteString(h, op.ID)
			h.Write([]byte{0})
			io.WriteString(h, op.Payload)
			sum := h.Sum64()
			if _, dup := aggSeen[sum]; dup {
				st.DupAggregates++
				mu.Unlock()
				return nil
			}
			aggSeen[sum] = struct{}{}
			st.Aggregates++
		}
		mu.Unlock()

		// Kept: decode once, encode each run individually into this
		// worker's chunk. No lock held — this is the expensive part and
		// it parallelizes across sources.
		runs, err := core.DecodeRuns(strings.NewReader(op.Payload))
		if err != nil {
			return err
		}
		mu.Lock()
		st.Runs += len(runs)
		mu.Unlock()
		c := chunks[worker]
		var b strings.Builder
		for _, r := range runs {
			b.Reset()
			if err := core.EncodeRuns(&b, []*core.Run{r}, true); err != nil {
				return err
			}
			c.encs = append(c.encs, b.String())
			c.runs = append(c.runs, r)
			c.bytes += len(b.String())
		}
		if c.bytes >= spillBytes {
			return spill(c)
		}
		return nil
	})
	if err != nil {
		return st, err
	}

	// Final pass: k-way heap merge over every chunk cursor. Each input
	// is sorted, so the heap emits the globally sorted sequence — the
	// exact byte stream a serial collect-all + sort would produce.
	var cursors []*mergeCursor
	for _, c := range chunks {
		if len(c.encs) == 0 {
			continue
		}
		sort.Sort(c)
		cursors = append(cursors, &mergeCursor{mem: c})
	}
	for _, f := range spills {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return st, err
		}
		cursors = append(cursors, &mergeCursor{f: f, r: bufio.NewReader(f)})
	}
	h := make(cursorHeap, 0, len(cursors))
	for i, cu := range cursors {
		cu.ord = i
		ok, err := cu.advance()
		if err != nil {
			return st, err
		}
		if ok {
			h = append(h, cu)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		cu := h[0]
		if err := emit(cu.cur, cu.curRun); err != nil {
			return st, err
		}
		ok, err := cu.advance()
		if err != nil {
			return st, err
		}
		if ok {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return st, nil
}

// scanDirsParallel scans each state directory on a bounded worker
// pool, invoking fn with the worker's slot index. Errors are collected
// per directory and the first one in dirs order is returned, so the
// failure a caller sees does not depend on scheduling.
func scanDirsParallel(dirs []string, workers int, fn func(worker int, op server.StateOp) error) error {
	if workers <= 1 || len(dirs) <= 1 {
		for _, dir := range dirs {
			if err := scanDir(dir, func(op server.StateOp) error { return fn(0, op) }); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(dirs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(dirs) {
					return
				}
				errs[i] = scanDir(dirs[i], func(op server.StateOp) error { return fn(worker, op) })
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MergeDirs merges the given state directories and writes the
// canonical dataset (text run records, load columns included) to w.
// The output is byte-identical for any permutation of dirs and any
// duplication among them.
func MergeDirs(w io.Writer, dirs []string) (MergeStats, error) {
	return MergeDirsOpts(w, dirs, MergeOptions{})
}

// MergeDirsOpts is MergeDirs with explicit streaming options.
func MergeDirsOpts(w io.Writer, dirs []string, opt MergeOptions) (MergeStats, error) {
	bw := bufio.NewWriter(w)
	st, err := mergeInto(dirs, opt, func(enc string, _ *core.Run) error {
		_, werr := bw.WriteString(enc)
		return werr
	})
	if err != nil {
		return st, err
	}
	return st, bw.Flush()
}

// scanDir walks one state directory's files in replay order: snapshot,
// sealed journal segments, then the active journal. Only the active
// journal may carry a torn tail; tearing anywhere else is corruption.
func scanDir(dir string, fn func(server.StateOp) error) error {
	files, err := server.StateFiles(dir)
	if err != nil {
		return fmt.Errorf("cluster: merge %s: %w", dir, err)
	}
	for i, path := range files {
		if err := server.ScanStateOps(path, i == len(files)-1, fn); err != nil {
			return fmt.Errorf("cluster: merge %s: %w", path, err)
		}
	}
	return nil
}

// DiscoverStateDirs walks root and returns, sorted, every directory
// that holds server state (a journal, a sealed segment, or a snapshot
// file) — node directories and the replica directories nested under
// them alike.
func DiscoverStateDirs(root string) ([]string, error) {
	seen := make(map[string]struct{})
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !server.IsStateFileName(filepath.Base(path)) {
			return nil
		}
		dir := filepath.Dir(path)
		if _, dup := seen[dir]; !dup {
			seen[dir] = struct{}{}
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// MergeTree discovers every state directory under root and merges
// them. This is the uucs-analyze/uucs-harvest entry point: point it at
// a cluster's state root and out comes the dataset.
func MergeTree(w io.Writer, root string) (MergeStats, error) {
	return MergeTreeOpts(w, root, MergeOptions{})
}

// MergeTreeOpts is MergeTree with explicit streaming options.
func MergeTreeOpts(w io.Writer, root string, opt MergeOptions) (MergeStats, error) {
	dirs, err := DiscoverStateDirs(root)
	if err != nil {
		return MergeStats{}, err
	}
	if len(dirs) == 0 {
		return MergeStats{}, fmt.Errorf("cluster: no state directories under %s", root)
	}
	return MergeDirsOpts(w, dirs, opt)
}

// MergedRuns merges the tree under root and returns the dataset's
// decoded runs, folding them directly off the merge stream — no
// whole-dataset text round trip. Only spilled records are re-decoded;
// records that stayed in memory reuse the run decoded during the scan.
func MergedRuns(root string) ([]*core.Run, MergeStats, error) {
	return MergedRunsOpts(root, MergeOptions{})
}

// MergedRunsOpts is MergedRuns with explicit streaming options.
func MergedRunsOpts(root string, opt MergeOptions) ([]*core.Run, MergeStats, error) {
	dirs, err := DiscoverStateDirs(root)
	if err != nil {
		return nil, MergeStats{}, err
	}
	if len(dirs) == 0 {
		return nil, MergeStats{}, fmt.Errorf("cluster: no state directories under %s", root)
	}
	var out []*core.Run
	st, err := mergeInto(dirs, opt, func(enc string, run *core.Run) error {
		if run == nil {
			runs, err := core.DecodeRuns(strings.NewReader(enc))
			if err != nil {
				return err
			}
			out = append(out, runs...)
			return nil
		}
		out = append(out, run)
		return nil
	})
	return out, st, err
}
