package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// fabRun fabricates one distinct, encodable run.
func fabRun(client, seq, i int) *core.Run {
	res := []testcase.Resource{testcase.CPU, testcase.Memory, testcase.Disk}[i%3]
	return &core.Run{
		TestcaseID: fmt.Sprintf("tc-%03d", (client*31+seq*7+i)%97),
		Task:       testcase.IE, UserID: client,
		Terminated: core.Discomfort, Offset: float64(seq*100 + i),
		PrimaryResource: res,
		Levels:          map[testcase.Resource]float64{res: float64(client) + float64(seq)/8},
		LastFive:        map[testcase.Resource][]float64{res: {1, 2, 3, 4, float64(i)}},
	}
}

// canonical is the merge's canonical form, computed independently:
// each run encoded alone, encodings sorted, concatenated.
func canonical(t *testing.T, runs []*core.Run) string {
	t.Helper()
	encs := make([]string, 0, len(runs))
	for _, r := range runs {
		var b strings.Builder
		if err := core.EncodeRuns(&b, []*core.Run{r}, true); err != nil {
			t.Fatal(err)
		}
		encs = append(encs, b.String())
	}
	sort.Strings(encs)
	return strings.Join(encs, "")
}

func encodePayload(t *testing.T, runs []*core.Run) string {
	t.Helper()
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, true); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// op serializes one state-file line in the on-disk journal format.
func op(t *testing.T, fields map[string]any) string {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func writeStateDir(t *testing.T, root, name, snapshot, journal string) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if snapshot != "" {
		if err := os.WriteFile(filepath.Join(dir, "snapshot.txt"), []byte(snapshot), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if journal != "" {
		if err := os.WriteFile(filepath.Join(dir, "journal.txt"), []byte(journal), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func clientOp(t *testing.T, id string, lastSeq uint64) string {
	fields := map[string]any{
		"op": "client", "id": id, "nonce": "n-" + id,
		"snapshot": map[string]any{
			"hostname": "h-" + id, "os": "winxp",
			"cpu_ghz": 2.0, "mem_mb": 512.0, "disk_gb": 80.0,
		},
	}
	if lastSeq > 0 {
		fields["last_seq"] = lastSeq
	}
	return op(t, fields)
}

func resultsOp(t *testing.T, id string, seq uint64, payload string) string {
	fields := map[string]any{"op": "results", "payload": payload}
	if id != "" {
		fields["id"] = id
	}
	if seq > 0 {
		fields["seq"] = seq
	}
	return op(t, fields)
}

func mergeDirs(t *testing.T, dirs []string) (string, MergeStats) {
	t.Helper()
	var b strings.Builder
	st, err := MergeDirs(&b, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return b.String(), st
}

// TestMergeDeterministicUnderOrderAndDuplication is the merge property
// test: per-node journals merged in any order, with duplicated shipped
// segments mixed in, yield byte-identical output — the exact bytes
// uucs-analyze ingests, so analyze output is byte-identical too.
func TestMergeDeterministicUnderOrderAndDuplication(t *testing.T) {
	rng := stats.NewStream(4321)
	const clients, batches, nodes = 9, 7, 3

	var all []*core.Run
	journals := make([]string, nodes)
	for c := 0; c < clients; c++ {
		node := c % nodes
		id := fmt.Sprintf("uucs-%016x", uint64(c)+1)
		journals[node] += clientOp(t, id, 0)
		for s := 1; s <= batches; s++ {
			var runs []*core.Run
			for i := 0; i < 1+int(rng.Uint64()%3); i++ {
				runs = append(runs, fabRun(c, s, i))
			}
			all = append(all, runs...)
			journals[node] += resultsOp(t, id, uint64(s), encodePayload(t, runs))
		}
	}

	root := t.TempDir()
	var dirs []string
	for n := 0; n < nodes; n++ {
		dirs = append(dirs, writeStateDir(t, root, fmt.Sprintf("node-n%d", n), "", journals[n]))
	}
	// Duplicated shipped segments: each node's replica is a prefix of
	// its journal (cut at a line boundary), plus one full duplicate.
	for n := 0; n < nodes; n++ {
		lines := strings.SplitAfter(journals[n], "\n")
		cut := int(rng.Uint64() % uint64(len(lines)))
		prefix := strings.Join(lines[:cut], "")
		dirs = append(dirs, writeStateDir(t, root, fmt.Sprintf("node-n%d/replica-n%d", (n+1)%nodes, n), "", prefix))
	}
	dirs = append(dirs, writeStateDir(t, root, "node-n0-copy", "", journals[0]))

	want := canonical(t, all)
	got, st := mergeDirs(t, dirs)
	if got != want {
		t.Fatal("merged output differs from canonical run set")
	}
	if st.Batches != clients*batches {
		t.Errorf("kept %d batches, want %d", st.Batches, clients*batches)
	}
	if st.DupBatches == 0 {
		t.Error("no duplicate batches dropped; the test duplicated plenty")
	}
	if st.Runs != len(all) {
		t.Errorf("merged %d runs, want %d", st.Runs, len(all))
	}

	// Any permutation of sources merges to the same bytes.
	for trial := 0; trial < 8; trial++ {
		perm := append([]string{}, dirs...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if out, _ := mergeDirs(t, perm); out != want {
			t.Fatalf("merge order %v changed the output", perm)
		}
	}

	// MergeTree discovers the same sources from the tree root.
	treeOut, treeSt := "", MergeStats{}
	{
		var b strings.Builder
		st, err := MergeTree(&b, root)
		if err != nil {
			t.Fatal(err)
		}
		treeOut, treeSt = b.String(), st
	}
	if treeOut != want {
		t.Error("MergeTree output differs from explicit MergeDirs")
	}
	if treeSt.Sources != len(dirs) {
		t.Errorf("MergeTree found %d sources, want %d", treeSt.Sources, len(dirs))
	}
}

// TestMergeSnapshotFloors checks compaction handling: a snapshot's
// aggregate payload covers batches up to each client's LastSeq, so raw
// copies of those batches (e.g. on a replica that missed the
// compaction) must be dropped, not double-counted.
func TestMergeSnapshotFloors(t *testing.T) {
	id := "uucs-0000000000000001"
	b1 := []*core.Run{fabRun(1, 1, 0)}
	b2 := []*core.Run{fabRun(1, 2, 0), fabRun(1, 2, 1)}
	b3 := []*core.Run{fabRun(1, 3, 0)}

	// Compacted primary: snapshot folds batches 1–2, journal has batch 3.
	snapshot := op(t, map[string]any{"op": "meta", "ver": 2}) +
		clientOp(t, id, 2) +
		resultsOp(t, "", 0, encodePayload(t, append(append([]*core.Run{}, b1...), b2...)))
	journal := resultsOp(t, id, 3, encodePayload(t, b3))
	root := t.TempDir()
	primary := writeStateDir(t, root, "node-a", snapshot, journal)
	// Replica: raw batches 1–3 (never compacted), duplicating 1–2.
	replica := writeStateDir(t, root, "node-b/replica-a", "",
		clientOp(t, id, 0)+
			resultsOp(t, id, 1, encodePayload(t, b1))+
			resultsOp(t, id, 2, encodePayload(t, b2))+
			resultsOp(t, id, 3, encodePayload(t, b3)))

	want := canonical(t, append(append(append([]*core.Run{}, b1...), b2...), b3...))
	for _, dirs := range [][]string{{primary, replica}, {replica, primary}} {
		got, st := mergeDirs(t, dirs)
		if got != want {
			t.Fatalf("merge %v diverged from canonical dataset", dirs)
		}
		if st.Covered != 2 {
			t.Errorf("covered = %d, want 2 (batches folded into the snapshot)", st.Covered)
		}
		if st.Aggregates != 1 || st.Batches != 1 {
			t.Errorf("aggregates=%d batches=%d, want 1 and 1", st.Aggregates, st.Batches)
		}
		if st.Runs != 4 {
			t.Errorf("runs = %d, want 4", st.Runs)
		}
	}
}

// buildMergeFixture fabricates a multi-node tree of state directories
// with duplicated shipped prefixes, returning the source dirs and the
// full fabricated run set.
func buildMergeFixture(t *testing.T, root string) ([]string, []*core.Run) {
	t.Helper()
	rng := stats.NewStream(8765)
	const clients, batches, nodes = 8, 6, 3

	var all []*core.Run
	journals := make([]string, nodes)
	for c := 0; c < clients; c++ {
		node := c % nodes
		id := fmt.Sprintf("uucs-%016x", uint64(c)+1)
		journals[node] += clientOp(t, id, 0)
		for s := 1; s <= batches; s++ {
			var runs []*core.Run
			for i := 0; i < 1+int(rng.Uint64()%3); i++ {
				runs = append(runs, fabRun(c, s, i))
			}
			all = append(all, runs...)
			journals[node] += resultsOp(t, id, uint64(s), encodePayload(t, runs))
		}
	}
	var dirs []string
	for n := 0; n < nodes; n++ {
		dirs = append(dirs, writeStateDir(t, root, fmt.Sprintf("node-n%d", n), "", journals[n]))
	}
	for n := 0; n < nodes; n++ {
		lines := strings.SplitAfter(journals[n], "\n")
		cut := int(rng.Uint64() % uint64(len(lines)))
		prefix := strings.Join(lines[:cut], "")
		dirs = append(dirs, writeStateDir(t, root, fmt.Sprintf("node-n%d/replica-n%d", (n+1)%nodes, n), "", prefix))
	}
	return dirs, all
}

// TestMergeStreamingMatchesSerial pins the streaming rewrite's
// bit-identity contract: any worker count and any spill threshold —
// including one small enough to force every chunk to disk — produces
// the exact bytes of the serial in-memory merge.
func TestMergeStreamingMatchesSerial(t *testing.T) {
	dirs, all := buildMergeFixture(t, t.TempDir())
	want := canonical(t, all)

	serial := func() string {
		var b strings.Builder
		st, err := MergeDirsOpts(&b, dirs, MergeOptions{Workers: 1, SpillBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		if st.Spills != 0 {
			t.Fatalf("serial baseline spilled %d chunks with a 1GB threshold", st.Spills)
		}
		return b.String()
	}()
	if serial != want {
		t.Fatal("serial merge output differs from the canonical run set")
	}

	for _, workers := range []int{1, 2, 8} {
		for _, spill := range []int{0, 4096, 1} {
			var b strings.Builder
			opt := MergeOptions{Workers: workers, SpillBytes: spill, TempDir: t.TempDir()}
			st, err := MergeDirsOpts(&b, dirs, opt)
			if err != nil {
				t.Fatalf("workers=%d spill=%d: %v", workers, spill, err)
			}
			if b.String() != serial {
				t.Fatalf("workers=%d spill=%d: output differs from serial merge", workers, spill)
			}
			if spill == 1 {
				// A 1-byte threshold spills every non-empty chunk; the
				// spilled bytes cover the whole encoded dataset plus
				// varint length prefixes.
				if st.Spills == 0 {
					t.Fatalf("workers=%d spill=1: nothing spilled", workers)
				}
				if st.SpilledBytes <= int64(len(serial)) {
					t.Errorf("workers=%d spill=1: spilled %d bytes, want > %d (dataset + framing)",
						workers, st.SpilledBytes, len(serial))
				}
			}
			if spill == 0 && st.Spills != 0 {
				t.Errorf("workers=%d: default threshold spilled %d chunks on a tiny dataset", workers, st.Spills)
			}
		}
	}
}

// TestMergedRunsStreamingSpill checks the decoded-run fold over the
// merge stream: spilled records lose their in-memory decoded form and
// are re-decoded from encoding, so the run set must match the in-memory
// path exactly, in the same (sorted) order.
func TestMergedRunsStreamingSpill(t *testing.T) {
	root := t.TempDir()
	_, all := buildMergeFixture(t, root)
	want := canonical(t, all)

	inMem, stMem, err := MergedRunsOpts(root, MergeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stMem.Spills != 0 {
		t.Fatalf("in-memory pass spilled %d chunks", stMem.Spills)
	}
	spilled, stSpill, err := MergedRunsOpts(root, MergeOptions{Workers: 4, SpillBytes: 1, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if stSpill.Spills == 0 {
		t.Fatal("spill pass kept everything in memory")
	}
	if canonical(t, inMem) != want || canonical(t, spilled) != want {
		t.Fatal("MergedRuns datasets diverge from the canonical run set")
	}
	if len(inMem) != len(spilled) {
		t.Fatalf("in-memory %d runs, spilled %d", len(inMem), len(spilled))
	}
	// Same order, not just same set: both streams emit ascending
	// canonical encodings.
	for i := range inMem {
		if encodePayload(t, []*core.Run{inMem[i]}) != encodePayload(t, []*core.Run{spilled[i]}) {
			t.Fatalf("run %d differs between the in-memory and spilled streams", i)
		}
	}
}
