package cluster

import (
	"fmt"
	"sync"
	"time"

	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/telemetry"
)

// forwardTimeout bounds one proxied request round-trip to a node. It
// has to cover a full group-commit ack (journal fsync + replica ship),
// so it is generous; a node that cannot answer inside it is treated as
// failed.
const forwardTimeout = 10 * time.Second

// forwardAttempts is how many times a request is tried against a
// partition before the router gives up — each attempt after a failure
// re-resolves the partition's address, so a promote-on-crash failover
// that lands between attempts is picked up transparently.
const forwardAttempts = 4

// Router is the thin tier in front of the node set. It speaks the
// ordinary client protocol downstream and proxies each request to the
// node owning the client, so clients need no cluster awareness at all:
// they dial the router exactly as they would a standalone server.
//
// Routing is by client id. For a registration — which has no id yet —
// the router derives the id the cluster will assign from the snapshot
// (server.DeriveClientID with the shared seed; ids are topology-
// independent by construction) and routes by that. Every successful
// registration pins the returned id to its node in the pin table; the
// pin, not the partition map, is authoritative afterwards, which is
// what keeps clients sticky across re-partitioning (map changes move
// only future registrations) and makes collision-remixed ids (which the
// map knows nothing about) routable.
//
// When a node stops answering, the router invokes its OnNodeDown hook
// exactly once per address generation (single-flight across all client
// sessions); the hook — the cluster's promote-on-crash failover —
// re-points the node id at a promoted replica via SetNodeAddr, and the
// failing request is retried against the new address. Partition
// identity is the node id: pins never change during failover, only the
// address behind the id does.
type Router struct {
	tr   Transport
	seed uint64

	// OnNodeDown, when non-nil, is called (single-flight) when a node
	// stops answering, with the node id and the causing error. It runs
	// with no router locks held and is expected to either repair the
	// node (SetNodeAddr) or return; requests retry either way. Set
	// before Start.
	OnNodeDown func(node string, cause error)

	mu     sync.Mutex
	pmap   *PartitionMap
	addrs  map[string]string // node id -> current ingest address
	gens   map[string]int    // address generation, bumped by SetNodeAddr
	pins   map[string]string // client id -> node id
	ln     interface{ Close() error }
	conns  map[*protocol.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// failMu serializes failure handling so concurrent client sessions
	// observing the same dead node trigger exactly one failover.
	failMu sync.Mutex

	forwards  telemetry.Counter
	retries   telemetry.Counter
	failovers telemetry.Counter
	misroutes telemetry.Counter
}

// NewRouter builds a router over the given partition map and node
// address table. seed must equal the nodes' server seed — client-id
// derivation depends on it.
func NewRouter(tr Transport, seed uint64, pmap *PartitionMap, addrs map[string]string) (*Router, error) {
	for _, node := range pmap.Nodes() {
		if addrs[node] == "" {
			return nil, fmt.Errorf("cluster: no address for node %s", node)
		}
	}
	r := &Router{
		tr:    tr,
		seed:  seed,
		pmap:  pmap,
		addrs: make(map[string]string, len(addrs)),
		gens:  make(map[string]int, len(addrs)),
		pins:  make(map[string]string),
		conns: make(map[*protocol.Conn]struct{}),
	}
	for node, addr := range addrs {
		r.addrs[node] = addr
	}
	return r, nil
}

// Start listens on addr and serves clients in the background,
// returning the bound address.
func (r *Router) Start(addr string) (string, error) {
	ln, err := r.tr.Listen(addr)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			pc := protocol.NewConn(conn)
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				pc.Close()
				return
			}
			r.conns[pc] = struct{}{}
			r.mu.Unlock()
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.handle(pc)
				r.mu.Lock()
				delete(r.conns, pc)
				r.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// SetNodeAddr re-points a node id at a new address (failover: the
// promoted replica's listener) and bumps its generation so every
// session discards cached connections to the old address.
func (r *Router) SetNodeAddr(node, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[node] = addr
	r.gens[node]++
}

// SetPartitionMap swaps the partition map. Only future registrations
// are affected: every already-registered client stays on its pinned
// node, so re-partitioning never strands a client's (id, seq) state.
func (r *Router) SetPartitionMap(pmap *PartitionMap, addrs map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pmap = pmap
	for node, addr := range addrs {
		if _, known := r.addrs[node]; !known {
			r.addrs[node] = addr
		}
	}
}

// nodeAddr resolves a node's current address and generation.
func (r *Router) nodeAddr(node string) (string, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addrs[node], r.gens[node]
}

// route picks the owning node for one request.
func (r *Router) route(msg protocol.Message) (string, error) {
	id := msg.ClientID
	if msg.Type == protocol.TypeRegister {
		if msg.Snapshot == nil {
			return "", fmt.Errorf("register without snapshot")
		}
		id = server.DeriveClientID(r.seed, *msg.Snapshot)
	}
	if id == "" {
		return "", fmt.Errorf("request without client id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if node, pinned := r.pins[id]; pinned {
		return node, nil
	}
	if msg.Type != protocol.TypeRegister {
		// An id the router never pinned: either a client that
		// registered before the router existed, or a misrouted fleet.
		// The partition map is still deterministic for it.
		r.misroutes.Add(1)
	}
	return r.pmap.Owner(id), nil
}

// routeFrame routes a v3 frame from its borrowed fields. Only a
// registration (cold, once per client) materializes the full message —
// it needs the snapshot to derive the id; the hot upload path routes
// straight off the frame's client-id bytes without decoding the rest.
func (r *Router) routeFrame(f *protocol.Frame) (string, error) {
	if f.Type == protocol.TypeRegister {
		msg, err := f.Message()
		if err != nil {
			return "", err
		}
		return r.route(msg)
	}
	return r.route(protocol.Message{Type: f.Type, ClientID: string(f.ClientID)})
}

// upstream is one cached node connection inside a client session.
type upstream struct {
	conn *protocol.Conn
	gen  int
}

// handle proxies one downstream client session. Upstream connections
// are per-session (a session's requests are strictly serial, so no
// multiplexing is needed) and cached per node.
//
// A v3 request is relayed as its verbatim wire bytes — routed off the
// frame's borrowed fields, written upstream with WriteRaw, and the v3
// reply relayed back the same way — so the router never re-encodes
// (or allocates for) a binary message in either direction. v2 requests
// take the materialized Message path exactly as before.
func (r *Router) handle(down *protocol.Conn) {
	defer down.Close()
	ups := make(map[string]*upstream)
	defer func() {
		for _, up := range ups {
			up.conn.Close()
		}
	}()
	for {
		f, err := down.RecvFrame()
		if err != nil {
			return
		}
		var (
			node string
			msg  protocol.Message
			raw  []byte
		)
		if f.WireVersion == protocol.V3 {
			raw = f.Raw()
			node, err = r.routeFrame(f)
		} else {
			msg, err = f.Message()
			if err == nil {
				node, err = r.route(msg)
			}
		}
		if err != nil {
			if down.SendError(err) != nil {
				return
			}
			continue
		}
		reply, err := r.forward(ups, node, msg, raw)
		if err != nil {
			if down.SendError(fmt.Errorf("node %s unavailable: %v", node, err)) != nil {
				return
			}
			continue
		}
		if reply.WireVersion == protocol.V3 {
			if reply.Type == protocol.TypeRegistered && len(reply.ClientID) > 0 {
				r.pin(string(reply.ClientID), node)
			}
			if down.WriteRaw(reply.Raw()) != nil {
				return
			}
			continue
		}
		rm, err := reply.Message()
		if err != nil {
			if down.SendError(err) != nil {
				return
			}
			continue
		}
		if rm.Type == protocol.TypeRegistered && rm.ClientID != "" {
			r.pin(rm.ClientID, node)
		}
		if down.Send(rm) != nil {
			return
		}
	}
}

// pin records that a client id lives on a node.
func (r *Router) pin(clientID, node string) {
	r.mu.Lock()
	r.pins[clientID] = node
	r.mu.Unlock()
}

// forward sends one request to a node and returns its reply frame,
// retrying across redials and failovers. A non-nil rawFrame relays
// those verbatim v3 wire bytes instead of re-encoding msg (the bytes
// stay valid across retries — nothing reads from the downstream
// connection until the reply is relayed). A retry may hit a node that
// already applied the request (the first ack was lost in the failure) —
// the protocol's nonce/seq idempotency turns that into a dup ack, which
// is passed through for the client to treat as success.
//
// The returned frame is owned by the upstream connection and valid
// until the next forward touching the same node.
func (r *Router) forward(ups map[string]*upstream, node string, msg protocol.Message, rawFrame []byte) (*protocol.Frame, error) {
	r.forwards.Add(1)
	var lastErr error
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
		}
		addr, gen := r.nodeAddr(node)
		if addr == "" {
			return nil, fmt.Errorf("no address for node %s", node)
		}
		up := ups[node]
		if up != nil && up.gen != gen {
			up.conn.Close()
			up = nil
			delete(ups, node)
		}
		if up == nil {
			raw, err := r.tr.Dial(addr)
			if err != nil {
				lastErr = err
				r.nodeFailed(node, gen, err)
				continue
			}
			up = &upstream{conn: protocol.NewConn(raw), gen: gen}
			up.conn.SetTimeout(forwardTimeout)
			ups[node] = up
		}
		var err error
		if rawFrame != nil {
			err = up.conn.WriteRaw(rawFrame)
		} else {
			up.conn.SetVersion(protocol.V2)
			err = up.conn.Send(msg)
		}
		if err != nil {
			lastErr = err
			up.conn.Close()
			delete(ups, node)
			r.nodeFailed(node, gen, err)
			continue
		}
		reply, err := up.conn.RecvFrame()
		if err != nil {
			lastErr = err
			up.conn.Close()
			delete(ups, node)
			r.nodeFailed(node, gen, err)
			continue
		}
		return reply, nil
	}
	return nil, lastErr
}

// nodeFailed reports a node failure observed at address generation gen.
// The failover hook runs exactly once per generation: whichever session
// gets here first runs it; sessions arriving later (or observing a
// stale generation) find the generation already bumped and simply
// retry. Sessions queue on failMu while a failover is in progress, so
// nobody retries against the dead address mid-promote.
func (r *Router) nodeFailed(node string, gen int, cause error) {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	r.mu.Lock()
	stale := r.gens[node] != gen
	closed := r.closed
	hook := r.OnNodeDown
	r.mu.Unlock()
	if stale || closed || hook == nil {
		return
	}
	r.failovers.Add(1)
	hook(node, cause)
}

// Pins returns a copy of the pin table (client id -> node id).
func (r *Router) Pins() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	pins := make(map[string]string, len(r.pins))
	for id, node := range r.pins {
		pins[id] = node
	}
	return pins
}

// RouterStats is a point-in-time dump of the router's counters.
type RouterStats struct {
	Forwards  uint64 `json:"forwards"`
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	Misroutes uint64 `json:"misroutes"`
	Pins      int    `json:"pins"`
}

// Stats snapshots the router counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	pins := len(r.pins)
	r.mu.Unlock()
	return RouterStats{
		Forwards:  r.forwards.Load(),
		Retries:   r.retries.Load(),
		Failovers: r.failovers.Load(),
		Misroutes: r.misroutes.Load(),
		Pins:      pins,
	}
}

// Telemetry renders the router's own health as a USE snapshot (node
// "router"), suitable for merging with the nodes' snapshots.
func (r *Router) Telemetry() *telemetry.Snapshot {
	st := r.Stats()
	snap := &telemetry.Snapshot{Taken: time.Now(), Node: "router"}
	retryRatio := telemetry.Ratio(float64(st.Retries), float64(st.Forwards+st.Retries))
	snap.Add(telemetry.Sample{
		Resource: "forwarding", Axis: telemetry.Errors,
		Metric: "retried forwards", Value: float64(st.Retries), Unit: "reqs",
		Pressure: retryRatio,
		Detail:   fmt.Sprintf("%d forwards, %d retries, %d pins", st.Forwards, st.Retries, st.Pins),
	})
	failP := 0.0
	if st.Failovers > 0 {
		failP = 1
	}
	snap.Add(telemetry.Sample{
		Resource: "failover", Axis: telemetry.Errors,
		Metric: "failovers triggered", Value: float64(st.Failovers),
		Pressure: failP,
		Detail:   "a node stopped answering and was failed over",
	})
	snap.Finalize()
	return snap
}

// Close stops the router, severs live sessions, and waits for their
// handlers.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	ln := r.ln
	for pc := range r.conns {
		pc.Close()
	}
	r.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	r.wg.Wait()
	return err
}
