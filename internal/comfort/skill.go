// Package comfort models user comfort with resource borrowing. It is the
// substitution for the paper's 33 human participants: each synthetic
// user carries perceptual tolerances (event latency by class, frame rate,
// hitch length), a per-user sensitivity, self-rated skill levels with the
// paper's questionnaire domains, a hazard-based decision process for
// expressing discomfort, a reaction lag, and a habituation term that
// produces the paper's "frog in the pot" effect (§3.3.5).
//
// The deliberate design constraint is that users never see contention
// levels — only interactivity. Discomfort emerges from perceived latency,
// frame rate and jitter, exactly the end-to-end relationship the paper
// set out to measure.
package comfort

import "fmt"

// Rating is a self-assessed skill level. The study questionnaire asked
// users to rate themselves as Power User, Typical User, or Beginner in
// each domain (paper §3.1).
type Rating int

// Ratings in increasing skill order.
const (
	Beginner Rating = iota
	Typical
	Power
)

// String renders the rating as in the paper.
func (r Rating) String() string {
	switch r {
	case Beginner:
		return "Beginner"
	case Typical:
		return "Typical"
	case Power:
		return "Power"
	default:
		return fmt.Sprintf("Rating(%d)", int(r))
	}
}

// Ratings lists all ratings in increasing order.
func Ratings() []Rating { return []Rating{Beginner, Typical, Power} }

// Domain is a questionnaire domain. The study asked for self-evaluations
// in PC use, Windows, Word, Powerpoint, Internet Explorer, and Quake.
type Domain string

// Questionnaire domains.
const (
	DomainPC         Domain = "pc"
	DomainWindows    Domain = "windows"
	DomainWord       Domain = "word"
	DomainPowerpoint Domain = "powerpoint"
	DomainIE         Domain = "ie"
	DomainQuake      Domain = "quake"
)

// Domains lists the questionnaire domains in paper order.
func Domains() []Domain {
	return []Domain{DomainPC, DomainWindows, DomainWord, DomainPowerpoint, DomainIE, DomainQuake}
}

// DomainLabel returns a display name for the domain, as used in the
// paper's Figure 17 ("PC Power vs. Typical", "Windows ...", ...).
func DomainLabel(d Domain) string {
	switch d {
	case DomainPC:
		return "PC"
	case DomainWindows:
		return "Windows"
	case DomainWord:
		return "Word"
	case DomainPowerpoint:
		return "Powerpoint"
	case DomainIE:
		return "IE"
	case DomainQuake:
		return "Quake"
	default:
		return string(d)
	}
}

// ratingToleranceFactor converts a rating into a tolerance multiplier:
// experienced users "have higher expectations from the interactive
// application than beginners" (paper §3.3.4), so Power users tolerate
// less latency and demand more frames.
func ratingToleranceFactor(r Rating) float64 {
	switch r {
	case Power:
		return 0.84
	case Beginner:
		return 1.18
	default:
		return 1.0
	}
}
