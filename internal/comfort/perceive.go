package comfort

import (
	"fmt"
	"math"

	"uucs/internal/apps"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Observation is one piece of interactivity evidence presented to a
// user: the completion of a watched event, or a one-second summary
// window of a frame loop.
type Observation struct {
	// Time is when the user perceives the outcome (event completion, or
	// window end), seconds into the run.
	Time float64
	// Class is the event class (apps.Frame observations are window
	// summaries).
	Class apps.Class
	// Latency is the user-visible latency of the event. For frame
	// windows it is the worst single frame time in the window (the
	// hitch).
	Latency float64
	// FPS is the achieved frame rate for frame windows, 0 otherwise.
	FPS float64
	// Baseline is the event's typical uncontended latency. The study's
	// participants acclimatized to the machine for ten minutes before
	// the tasks (§3.1); perception therefore judges degradation relative
	// to the app's normal feel: severity only begins once latency
	// exceeds both the class tolerance and a margin over Baseline.
	Baseline float64
	// Window is the time span this observation summarizes (1s for frame
	// windows, 0 for discrete events).
	Window float64
}

// Decision is the perceiver's verdict after an observation.
type Decision struct {
	// Clicked reports that the user expressed discomfort.
	Clicked bool
	// At is the click time (observation time plus reaction lag).
	At float64
}

// Perceiver accumulates a user's annoyance over one testcase run and
// decides if and when the user clicks the discomfort icon. It implements
// a survival (proportional-hazard) process: each observation whose
// latency (or frame rate) exceeds the user's tolerance contributes
// hazard proportional to its severity; the user clicks when cumulative
// hazard crosses a per-run exponential threshold. The construction has
// the properties the study depends on:
//
//   - mild degradation may or may not provoke a click, severe
//     degradation almost always does, and longer exposure increases the
//     chance — matching how only some users react at a given level
//     (the CDFs of Figures 10-12 are exactly this variation);
//   - a user who never crosses tolerance never clicks (the run is
//     exhausted);
//   - sustained mild degradation raises effective tolerance through
//     habituation, producing the ramp-vs-step "frog in the pot" effect
//     (§3.3.5).
type Perceiver struct {
	user       *User
	tols       Tolerances
	margin     float64
	flowMargin float64
	rng        *stats.Stream

	// thresholdV is the sampled Exp(1) click threshold for this run.
	thresholdV float64
	hazard     float64
	mildTime   float64
	lastTime   float64
	done       bool
}

// severityCap bounds a single observation's severity so that even
// catastrophic events take an instant to react to rather than clicking
// with probability 1 at the first sample.
const severityCap = 4.0

// habituationWindow is the mild-exposure time over which habituation
// saturates.
const habituationWindow = 20.0

// defaultBaselineMargin is the factor over an event's normal latency
// below which an acclimatized user perceives no degradation at all.
const defaultBaselineMargin = 1.6

// defaultFlowMargin is the corresponding factor for continuous
// direct-manipulation updates: fluency visibly breaks when updates take
// roughly twice their normal time, almost uniformly across people. It is
// what concentrates the Powerpoint CPU CDF just above contention 1.0.
const defaultFlowMargin = 1.85

// NewPerceiver starts a fresh run for the user in the given task
// context. rng must be a per-run stream; the same user perceives
// independently in different runs, as real users do.
func NewPerceiver(u *User, task testcase.Task, rng *stats.Stream) *Perceiver {
	p := &Perceiver{}
	p.Reset(u, task, rng)
	return p
}

// Reset reinitializes the perceiver in place for a new run, exactly as
// NewPerceiver would construct it (including the initial threshold draw
// from rng). It exists so hot loops can reuse one Perceiver allocation
// across runs.
func (p *Perceiver) Reset(u *User, task testcase.Task, rng *stats.Stream) {
	margin := u.BaselineMargin
	if margin <= 0 {
		margin = defaultBaselineMargin
	}
	flowMargin := u.FlowMargin
	if flowMargin <= 0 {
		flowMargin = defaultFlowMargin
	}
	*p = Perceiver{
		user:       u,
		tols:       u.TolerancesFor(task),
		margin:     margin,
		flowMargin: flowMargin,
		rng:        rng,
		thresholdV: rng.Exp(1),
	}
}

// Tolerances exposes the effective tolerances in use (for tests and
// analysis).
func (p *Perceiver) Tolerances() Tolerances { return p.tols }

// Observe presents one observation. Once a click has occurred further
// observations are ignored (the paper's client stops the testcase at
// the moment of feedback).
func (p *Perceiver) Observe(o Observation) Decision {
	if p.done {
		return Decision{}
	}
	dt := o.Time - p.lastTime
	if dt < 0 {
		dt = 0
	}
	p.lastTime = o.Time

	sev := p.severity(o)
	if sev > 0 && sev < 0.8 {
		// Mild annoyance habituates; severe annoyance does not.
		p.mildTime += math.Max(dt, o.Window)
	}
	h := 1 + p.user.HabituationGain*math.Min(1, p.mildTime/habituationWindow)
	eff := sev / h
	if eff > severityCap {
		eff = severityCap
	}
	if eff <= 0 {
		return Decision{}
	}
	weight := 1.0
	if o.Window > 0 {
		weight = o.Window
	}
	p.hazard += p.user.Hazard * eff * weight
	if p.hazard < p.thresholdV {
		return Decision{}
	}
	p.done = true
	lag := p.rng.LognormMedian(p.user.ReactionLagMedian, 0.3)
	return Decision{Clicked: true, At: o.Time + lag}
}

// severity converts an observation into a non-negative annoyance level:
// 0 at or below tolerance, 1 at twice the tolerance, and so on.
func (p *Perceiver) severity(o Observation) float64 {
	floor := o.Baseline * p.margin
	switch o.Class {
	case apps.Echo:
		return ratio(o.Latency, math.Max(p.tols.Echo, floor))
	case apps.Op:
		return ratio(o.Latency, math.Max(p.tols.Op, floor))
	case apps.Flow:
		return ratio(o.Latency, math.Max(p.tols.Flow, o.Baseline*p.flowMargin))
	case apps.LoadOp:
		return ratio(o.Latency, math.Max(p.tols.Load, floor))
	case apps.Frame:
		// Frame windows annoy through low rate and through hitches.
		sev := 0.0
		fps := o.FPS
		if fps < 0.5 {
			fps = 0.5 // a frozen window reads as (capped) maximal severity
		}
		if fps < p.tols.FPS {
			sev += p.tols.FPS/fps - 1
		}
		sev += 0.5 * ratio(o.Latency, p.tols.Hitch)
		return sev
	default:
		return 0
	}
}

// ratio returns max(0, v/tol - 1).
func ratio(v, tol float64) float64 {
	if tol <= 0 || v <= tol {
		return 0
	}
	return v/tol - 1
}

// String describes the perceiver state, for debugging runs.
func (p *Perceiver) String() string {
	return fmt.Sprintf("perceiver(user%d hazard=%.2f/%.2f mild=%.0fs done=%v)",
		p.user.ID, p.hazard, p.thresholdV, p.mildTime, p.done)
}
