package comfort

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Questionnaire support. The study began with each participant filling
// out a questionnaire whose key questions were self-evaluations as
// "Power User", "Typical User", or "Beginner" for use of PCs, Windows,
// Word, Powerpoint, Internet Explorer, and Quake (§3.1). This file
// renders that form and parses filled-in answers, so a real deployment
// of the client can collect the same data the synthetic population
// carries in User.Ratings.

// BlankQuestionnaire renders the form a participant fills in.
func BlankQuestionnaire() string {
	var b strings.Builder
	b.WriteString("# UUCS participant questionnaire\n")
	b.WriteString("# Rate yourself for each item: Power, Typical, or Beginner.\n")
	for _, d := range Domains() {
		fmt.Fprintf(&b, "%s: \n", d)
	}
	return b.String()
}

// RenderQuestionnaire renders a filled form from ratings.
func RenderQuestionnaire(ratings map[Domain]Rating) string {
	var b strings.Builder
	b.WriteString("# UUCS participant questionnaire\n")
	for _, d := range Domains() {
		fmt.Fprintf(&b, "%s: %s\n", d, ratings[d])
	}
	return b.String()
}

// ParseQuestionnaire reads a filled form: one "domain: rating" line per
// questionnaire domain; blank lines and '#' comments are ignored. Every
// domain must be answered exactly once.
func ParseQuestionnaire(r io.Reader) (map[Domain]Rating, error) {
	known := make(map[Domain]bool, 6)
	for _, d := range Domains() {
		known[d] = true
	}
	out := make(map[Domain]Rating, 6)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("comfort: questionnaire line %d: want 'domain: rating'", line)
		}
		d := Domain(strings.ToLower(strings.TrimSpace(parts[0])))
		if !known[d] {
			return nil, fmt.Errorf("comfort: questionnaire line %d: unknown domain %q", line, parts[0])
		}
		if _, dup := out[d]; dup {
			return nil, fmt.Errorf("comfort: questionnaire line %d: duplicate answer for %q", line, d)
		}
		rating, err := ParseRating(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("comfort: questionnaire line %d: %w", line, err)
		}
		out[d] = rating
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) != len(known) {
		var missing []string
		for d := range known {
			if _, ok := out[d]; !ok {
				missing = append(missing, string(d))
			}
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("comfort: questionnaire incomplete; missing %s", strings.Join(missing, ", "))
	}
	return out, nil
}

// ParseRating converts a questionnaire answer into a Rating. It accepts
// the paper's full phrases ("Power User") and bare words, case
// insensitively.
func ParseRating(s string) (Rating, error) {
	switch strings.ToLower(strings.TrimSuffix(strings.ToLower(s), " user")) {
	case "power":
		return Power, nil
	case "typical":
		return Typical, nil
	case "beginner":
		return Beginner, nil
	}
	return 0, fmt.Errorf("comfort: unknown rating %q (want Power, Typical, or Beginner)", s)
}

// UserFromQuestionnaire builds a user whose skill ratings come from a
// real questionnaire while the perceptual parameters are sampled from
// the population — how a live deployment combines measured self-ratings
// with modeled tolerances.
func UserFromQuestionnaire(id int, ratings map[Domain]Rating, p PopulationParams, seed uint64) (*User, error) {
	if len(ratings) == 0 {
		return nil, fmt.Errorf("comfort: empty questionnaire")
	}
	users, err := SamplePopulation(1, p, seed)
	if err != nil {
		return nil, err
	}
	u := users[0]
	u.ID = id
	u.Ratings = make(map[Domain]Rating, len(ratings))
	for d, r := range ratings {
		u.Ratings[d] = r
	}
	return u, nil
}
