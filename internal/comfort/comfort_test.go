package comfort

import (
	"math"
	"testing"
	"testing/quick"

	"uucs/internal/apps"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func population(t *testing.T, n int, seed uint64) []*User {
	t.Helper()
	users, err := SamplePopulation(n, DefaultPopulation(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return users
}

func TestSamplePopulationBasics(t *testing.T) {
	users := population(t, 33, 1)
	if len(users) != 33 {
		t.Fatalf("got %d users", len(users))
	}
	for _, u := range users {
		if u.EchoTol <= 0 || u.OpTol <= 0 || u.LoadTol <= 0 || u.HitchTol <= 0 {
			t.Errorf("user %d has non-positive tolerance: %s", u.ID, u)
		}
		if u.FPSTol < 24 || u.FPSTol > 59 {
			t.Errorf("user %d FPS tolerance out of range: %v", u.ID, u.FPSTol)
		}
		if len(u.Ratings) != 6 {
			t.Errorf("user %d has %d ratings", u.ID, len(u.Ratings))
		}
		if u.Hazard <= 0 || u.ReactionLagMedian <= 0 || u.HabituationGain <= 0 {
			t.Errorf("user %d has bad dynamics params", u.ID)
		}
		if u.String() == "" {
			t.Errorf("user %d empty String", u.ID)
		}
	}
	if _, err := SamplePopulation(0, DefaultPopulation(), 1); err == nil {
		t.Error("zero population accepted")
	}
}

func TestSamplePopulationDeterministic(t *testing.T) {
	a := population(t, 10, 7)
	b := population(t, 10, 7)
	for i := range a {
		if a[i].EchoTol != b[i].EchoTol || a[i].Ratings[DomainQuake] != b[i].Ratings[DomainQuake] {
			t.Fatalf("population not deterministic at user %d", i)
		}
	}
}

func TestPopulationSpread(t *testing.T) {
	users := population(t, 500, 3)
	var echo []float64
	counts := map[Rating]int{}
	for _, u := range users {
		echo = append(echo, u.EchoTol)
		counts[u.Ratings[DomainPC]]++
	}
	med := stats.Quantile(echo, 0.5)
	if med < 0.15 || med > 0.32 {
		t.Errorf("echo tolerance median = %v, want ~0.22", med)
	}
	if stats.Quantile(echo, 0.95)/stats.Quantile(echo, 0.05) < 2 {
		t.Error("population has too little tolerance spread")
	}
	for _, r := range Ratings() {
		if counts[r] < 50 {
			t.Errorf("rating %s appears only %d/500 times", r, counts[r])
		}
	}
}

func TestExpertsAreMoreSensitive(t *testing.T) {
	// The paper's Figure 17: power users tolerate less. Group mean
	// tolerances must order Power < Typical < Beginner.
	users := population(t, 2000, 5)
	sums := map[Rating]float64{}
	ns := map[Rating]float64{}
	for _, u := range users {
		r := u.Ratings[DomainPC]
		sums[r] += u.OpTol
		ns[r]++
	}
	power := sums[Power] / ns[Power]
	typical := sums[Typical] / ns[Typical]
	beginner := sums[Beginner] / ns[Beginner]
	if !(power < typical && typical < beginner) {
		t.Errorf("tolerance ordering violated: power=%v typical=%v beginner=%v", power, typical, beginner)
	}
}

func TestTolerancesForSkillAdjustment(t *testing.T) {
	u := &User{
		ID: 0, Ratings: map[Domain]Rating{
			DomainPC: Typical, DomainWindows: Typical,
			DomainWord: Typical, DomainPowerpoint: Typical,
			DomainIE: Typical, DomainQuake: Power,
		},
		EchoTol: 0.2, OpTol: 0.4, LoadTol: 3, FPSTol: 45, HitchTol: 0.1,
	}
	word := u.TolerancesFor(testcase.Word)
	quake := u.TolerancesFor(testcase.Quake)
	if quake.Op >= word.Op {
		t.Errorf("Quake power user should have tighter tolerances in Quake: %v vs %v", quake.Op, word.Op)
	}
	if quake.FPS <= word.FPS {
		t.Errorf("Quake power user should demand more FPS in Quake: %v vs %v", quake.FPS, word.FPS)
	}
}

func TestRatingStrings(t *testing.T) {
	if Beginner.String() != "Beginner" || Typical.String() != "Typical" || Power.String() != "Power" {
		t.Error("rating strings wrong")
	}
	if Rating(9).String() == "" {
		t.Error("unknown rating String empty")
	}
	if len(Domains()) != 6 {
		t.Error("want 6 questionnaire domains")
	}
	for _, d := range Domains() {
		if DomainLabel(d) == "" {
			t.Errorf("empty label for %s", d)
		}
	}
	if DomainLabel(Domain("x")) != "x" {
		t.Error("DomainLabel fallback")
	}
}

func runPerceiver(u *User, task testcase.Task, seed uint64, obs []Observation) (bool, float64) {
	p := NewPerceiver(u, task, stats.NewStream(seed))
	for _, o := range obs {
		if d := p.Observe(o); d.Clicked {
			return true, d.At
		}
	}
	return false, 0
}

func TestPerceiverNoDegradationNoClick(t *testing.T) {
	users := population(t, 50, 11)
	for _, u := range users {
		var obs []Observation
		for i := 0; i < 120; i++ {
			obs = append(obs, Observation{Time: float64(i), Class: apps.Op, Latency: 0.01})
		}
		if clicked, _ := runPerceiver(u, testcase.Word, uint64(u.ID), obs); clicked {
			t.Fatalf("user %d clicked with 10ms op latencies", u.ID)
		}
	}
}

func TestPerceiverSevereDegradationClicks(t *testing.T) {
	users := population(t, 50, 13)
	clicked := 0
	for _, u := range users {
		var obs []Observation
		for i := 0; i < 60; i++ {
			obs = append(obs, Observation{Time: float64(i), Class: apps.Op, Latency: 10})
		}
		if c, at := runPerceiver(u, testcase.Word, uint64(u.ID)+99, obs); c {
			clicked++
			if at <= 0 {
				t.Errorf("click time %v", at)
			}
		}
	}
	if clicked < 48 {
		t.Errorf("only %d/50 users clicked at 10s op latency", clicked)
	}
}

func TestPerceiverClickIncludesReactionLag(t *testing.T) {
	users := population(t, 30, 17)
	for _, u := range users {
		obs := []Observation{{Time: 10, Class: apps.Op, Latency: 50}}
		// Single catastrophic event; many users click immediately.
		if c, at := runPerceiver(u, testcase.Word, 5, obs); c && at <= 10 {
			t.Errorf("user %d clicked at %v, before the event completed", u.ID, at)
		}
	}
}

func TestPerceiverStopsAfterClick(t *testing.T) {
	u := population(t, 1, 19)[0]
	p := NewPerceiver(u, testcase.Word, stats.NewStream(1))
	var first Decision
	for i := 0; i < 100; i++ {
		d := p.Observe(Observation{Time: float64(i), Class: apps.Op, Latency: 20})
		if d.Clicked {
			first = d
			break
		}
	}
	if !first.Clicked {
		t.Skip("this user did not click; seed-dependent")
	}
	for i := 100; i < 110; i++ {
		if d := p.Observe(Observation{Time: float64(i), Class: apps.Op, Latency: 50}); d.Clicked {
			t.Fatal("perceiver clicked twice")
		}
	}
}

func TestPerceiverDoseResponse(t *testing.T) {
	// Click probability must increase with severity level.
	users := population(t, 200, 23)
	frac := func(lat float64) float64 {
		n := 0
		for _, u := range users {
			var obs []Observation
			for i := 0; i < 30; i++ {
				obs = append(obs, Observation{Time: float64(i), Class: apps.Op, Latency: lat})
			}
			if c, _ := runPerceiver(u, testcase.Powerpoint, uint64(u.ID)*7+1, obs); c {
				n++
			}
		}
		return float64(n) / float64(len(users))
	}
	mild, medium, severe := frac(0.5), frac(1.2), frac(5)
	if !(mild < medium && medium < severe) {
		t.Errorf("dose-response violated: %v %v %v", mild, medium, severe)
	}
	if severe < 0.9 {
		t.Errorf("severe fraction = %v, want near 1", severe)
	}
}

func TestPerceiverFrameWindows(t *testing.T) {
	users := population(t, 200, 29)
	clickFrac := func(fps, hitch float64) float64 {
		n := 0
		for _, u := range users {
			var obs []Observation
			for i := 0; i < 120; i++ {
				obs = append(obs, Observation{
					Time: float64(i), Class: apps.Frame,
					FPS: fps, Latency: hitch, Window: 1,
				})
			}
			if c, _ := runPerceiver(u, testcase.Quake, uint64(u.ID)*13+5, obs); c {
				n++
			}
		}
		return float64(n) / float64(len(users))
	}
	smooth := clickFrac(60, 0.017)
	slow := clickFrac(30, 0.033)
	hitchy := clickFrac(58, 0.35)
	if smooth > 0.05 {
		t.Errorf("60fps smooth play clicked %v of users", smooth)
	}
	if slow < 0.5 {
		t.Errorf("30fps play clicked only %v of users", slow)
	}
	if hitchy < 0.3 {
		t.Errorf("heavy hitching clicked only %v of users", hitchy)
	}
}

func TestFrogInPotHabituation(t *testing.T) {
	// A slow ramp to a given severity must produce fewer clicks than a
	// step straight to it, because ramp users habituate in the mild zone.
	users := population(t, 400, 31)
	countClicks := func(ramp bool) int {
		n := 0
		for _, u := range users {
			var obs []Observation
			for i := 0; i < 120; i++ {
				lat := 0.9 // ~2x typical op tolerance
				if ramp {
					lat = 0.9 * float64(i) / 120
				} else if i < 40 {
					lat = 0.0
				}
				obs = append(obs, Observation{Time: float64(i), Class: apps.Op, Latency: lat})
			}
			if c, _ := runPerceiver(u, testcase.Powerpoint, uint64(u.ID)*3+11, obs); c {
				n++
			}
		}
		return n
	}
	rampClicks := countClicks(true)
	stepClicks := countClicks(false)
	if rampClicks >= stepClicks {
		t.Errorf("frog-in-pot violated: ramp clicks %d >= step clicks %d", rampClicks, stepClicks)
	}
}

func TestSeverityProperty(t *testing.T) {
	check := func(seed uint64, latRaw uint16) bool {
		users, err := SamplePopulation(1, DefaultPopulation(), seed)
		if err != nil {
			return false
		}
		p := NewPerceiver(users[0], testcase.IE, stats.NewStream(seed))
		lat := float64(latRaw) / 1000
		sev := p.severity(Observation{Class: apps.Op, Latency: lat})
		if sev < 0 || math.IsNaN(sev) {
			return false
		}
		// Below tolerance must be zero severity.
		if lat <= p.tols.Op && sev != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPerceiverString(t *testing.T) {
	u := population(t, 1, 37)[0]
	p := NewPerceiver(u, testcase.Word, stats.NewStream(1))
	if p.String() == "" {
		t.Error("empty String")
	}
	if p.Tolerances().Op <= 0 {
		t.Error("tolerances not exposed")
	}
}
