package comfort

import (
	"strings"
	"testing"
)

func TestQuestionnaireRoundTrip(t *testing.T) {
	ratings := map[Domain]Rating{
		DomainPC: Power, DomainWindows: Typical, DomainWord: Beginner,
		DomainPowerpoint: Typical, DomainIE: Power, DomainQuake: Beginner,
	}
	form := RenderQuestionnaire(ratings)
	got, err := ParseQuestionnaire(strings.NewReader(form))
	if err != nil {
		t.Fatalf("%v\n%s", err, form)
	}
	for d, r := range ratings {
		if got[d] != r {
			t.Errorf("%s = %s, want %s", d, got[d], r)
		}
	}
}

func TestBlankQuestionnaireListsAllDomains(t *testing.T) {
	form := BlankQuestionnaire()
	for _, d := range Domains() {
		if !strings.Contains(form, string(d)+":") {
			t.Errorf("blank form missing %s", d)
		}
	}
}

func TestParseQuestionnaireAcceptsPaperPhrases(t *testing.T) {
	form := `
pc: Power User
windows: typical user
word: BEGINNER
powerpoint: Typical
ie: power
quake: Beginner User
`
	got, err := ParseQuestionnaire(strings.NewReader(form))
	if err != nil {
		t.Fatal(err)
	}
	if got[DomainPC] != Power || got[DomainQuake] != Beginner || got[DomainWindows] != Typical {
		t.Errorf("parsed: %v", got)
	}
}

func TestParseQuestionnaireErrors(t *testing.T) {
	cases := []string{
		"pc Power\n", // no colon
		"pc: Power\nwindows: Typical\nword: Typical\npowerpoint: Typical\nie: Typical\n", // missing quake
		"pc: Power\npc: Typical\nwindows: T\nword: T\npowerpoint: T\nie: T\nquake: T\n",  // duplicate
		"gpu: Power\n", // unknown domain
		"pc: Wizard\nwindows: T\nword: T\npowerpoint: T\nie: T\nquake: T\n",                          // unknown rating
		"pc: Power\nwindows: Power\nword: Power\npowerpoint: Power\nie: Power\nquake: Grandmaster\n", // bad last
	}
	for i, c := range cases {
		if _, err := ParseQuestionnaire(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseRating(t *testing.T) {
	for s, want := range map[string]Rating{
		"Power": Power, "power user": Power, "Typical User": Typical, "beginner": Beginner,
	} {
		got, err := ParseRating(s)
		if err != nil || got != want {
			t.Errorf("ParseRating(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRating("novice"); err == nil {
		t.Error("unknown rating accepted")
	}
}

func TestUserFromQuestionnaire(t *testing.T) {
	ratings := map[Domain]Rating{DomainQuake: Power, DomainPC: Beginner}
	u, err := UserFromQuestionnaire(7, ratings, DefaultPopulation(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if u.ID != 7 {
		t.Errorf("id = %d", u.ID)
	}
	if u.Ratings[DomainQuake] != Power || u.Ratings[DomainPC] != Beginner {
		t.Errorf("ratings not applied: %v", u.Ratings)
	}
	if u.OpTol <= 0 || u.FPSTol <= 0 {
		t.Error("perceptual parameters not sampled")
	}
	if _, err := UserFromQuestionnaire(1, nil, DefaultPopulation(), 1); err == nil {
		t.Error("empty questionnaire accepted")
	}
}
