package comfort

import (
	"reflect"
	"testing"

	"uucs/internal/stats"
)

// TestSampleUserIntoMatchesSample verifies that regenerating a user in
// place — including into a dirty reused struct — reproduces
// SamplePopulation's users bit-identically. The streaming study engine
// rebuilds each host's user per run from the host's seed instead of
// holding the whole population in memory, so this identity is what
// keeps its results equal to the batch path's.
func TestSampleUserIntoMatchesSample(t *testing.T) {
	p := DefaultPopulation()
	users, err := SamplePopulation(20, p, 99)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.NewStream(99)
	reused := &User{}
	for i, want := range users {
		SampleUserInto(reused, i, p, s.Fork())
		if !reflect.DeepEqual(reused, want) {
			t.Fatalf("user %d: regenerated user differs\ngot:  %+v\nwant: %+v", i, reused, want)
		}
	}
}

// TestSampleUserIntoAllocs pins the warm-path allocation count of user
// regeneration.
func TestSampleUserIntoAllocs(t *testing.T) {
	p := DefaultPopulation()
	s := stats.NewStream(3)
	u := &User{}
	SampleUserInto(u, 0, p, s)
	avg := testing.AllocsPerRun(20, func() {
		SampleUserInto(u, 1, p, s)
	})
	if avg > 0 {
		t.Errorf("SampleUserInto allocates %.1f/run, want 0", avg)
	}
}
