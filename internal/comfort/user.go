package comfort

import (
	"fmt"
	"math"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// PopulationParams holds the distributions a user population is sampled
// from. The medians encode what a typical person notices; the sigmas
// encode population spread. These are the calibration knobs documented in
// DESIGN.md — they are task-independent; per-task behaviour differences
// come entirely from the application demand models.
type PopulationParams struct {
	// EchoTol is the tolerated latency for fine-grained input feedback.
	EchoTol stats.Lognormal
	// OpTol is the tolerated latency for discrete watched operations.
	OpTol stats.Lognormal
	// FlowTol is the tolerated update latency of continuous direct
	// manipulation (dragging). Its spread is tiny: fluency breaks at
	// nearly the same point for everyone.
	FlowTol stats.Lognormal
	// LoadTol is the tolerated latency for long operations (page loads,
	// saves).
	LoadTol stats.Lognormal
	// FPSTol is the frame rate below which a player grows annoyed.
	FPSTol stats.TruncLognormal
	// HitchTol is the tolerated single-frame stall.
	HitchTol stats.Lognormal
	// Hazard scales how quickly annoyance turns into a click.
	Hazard stats.Lognormal
	// ReactionLag is the delay between deciding and clicking.
	ReactionLag stats.Lognormal
	// HabituationGain is the maximum tolerance growth under slowly
	// increasing degradation (the frog-in-the-pot term).
	HabituationGain stats.Lognormal
	// SensitivitySigma spreads a global per-user tolerance factor.
	SensitivitySigma float64
	// BaselineMargin is the factor over an event's normal latency below
	// which an acclimatized user perceives no degradation; 0 selects the
	// default. Set to 1.0 to ablate acclimatization (§3.1's warm-up).
	BaselineMargin float64
	// FlowMargin is the corresponding factor for continuous
	// direct-manipulation fluency; 0 selects the default. It is what
	// concentrates the Powerpoint CPU CDF just above contention 1.0.
	FlowMargin float64
	// ExpertiseSensitivityCorr couples expertise to sensitivity:
	// positive values make skilled users less tolerant.
	ExpertiseSensitivityCorr float64
}

// DefaultPopulation returns the calibrated population for the controlled
// study reproduction.
func DefaultPopulation() PopulationParams {
	return PopulationParams{
		EchoTol:                  stats.Lognormal{Median: 0.22, Sigma: 0.40},
		OpTol:                    stats.Lognormal{Median: 0.46, Sigma: 0.20},
		FlowTol:                  stats.Lognormal{Median: 0.25, Sigma: 0.07},
		LoadTol:                  stats.Lognormal{Median: 3.6, Sigma: 0.40},
		FPSTol:                   stats.TruncLognormal{Median: 47, Sigma: 0.11, Lo: 28, Hi: 54},
		HitchTol:                 stats.Lognormal{Median: 0.14, Sigma: 0.65},
		Hazard:                   stats.Lognormal{Median: 0.85, Sigma: 0.55},
		ReactionLag:              stats.Lognormal{Median: 0.9, Sigma: 0.40},
		HabituationGain:          stats.Lognormal{Median: 0.42, Sigma: 0.50},
		SensitivitySigma:         0.18,
		ExpertiseSensitivityCorr: 0.45,
	}
}

// User is one synthetic study participant.
type User struct {
	// ID numbers the user within the population.
	ID int
	// Ratings holds the questionnaire self-evaluations.
	Ratings map[Domain]Rating

	// Tolerances, in seconds (FPSTol in frames/second). These are the
	// user's base values; task-specific skill adjustment happens in
	// TolerancesFor.
	EchoTol, OpTol, LoadTol float64
	FlowTol                 float64
	FPSTol, HitchTol        float64

	// Hazard converts severity into click probability.
	Hazard float64
	// ReactionLagMedian is the user's typical reaction delay.
	ReactionLagMedian float64
	// HabituationGain is this user's frog-in-the-pot strength.
	HabituationGain float64
	// BaselineMargin is the acclimatization margin (see PopulationParams).
	BaselineMargin float64
	// FlowMargin is the fluency margin (see PopulationParams).
	FlowMargin float64

	// expertise is the latent skill variable behind the ratings, kept
	// for tests.
	expertise float64
}

// SamplePopulation draws n users deterministically from the seed. Skill
// ratings correlate across domains through a per-user latent expertise,
// and tolerance correlates (negatively) with expertise, which is what
// produces the paper's Figure 17 skill-level differences.
func SamplePopulation(n int, p PopulationParams, seed uint64) ([]*User, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comfort: population size must be positive, got %d", n)
	}
	s := stats.NewStream(seed)
	users := make([]*User, n)
	for i := range users {
		users[i] = sampleUser(i, p, s.Fork())
	}
	return users, nil
}

func sampleUser(id int, p PopulationParams, s *stats.Stream) *User {
	u := &User{}
	SampleUserInto(u, id, p, s)
	return u
}

// userDomains fixes the questionnaire draw order without allocating a
// fresh slice per sampled user.
var userDomains = Domains()

// SampleUserInto redraws u in place from the stream, reusing u's
// Ratings map when present. The draw order is exactly sampleUser's, so
// regenerating a user from the same stream state is bit-identical to
// the original sample — this is what lets the streaming study engine
// rebuild each host's user per run instead of holding a million User
// structs alive.
func SampleUserInto(u *User, id int, p PopulationParams, s *stats.Stream) {
	ratings := u.Ratings
	if ratings == nil {
		ratings = make(map[Domain]Rating, 6)
	} else {
		clear(ratings)
	}
	expertise := s.Norm(0, 1)
	// Sensitivity factor: a mix of independent variation and expertise.
	c := p.ExpertiseSensitivityCorr
	mix := -c*expertise + math.Sqrt(1-c*c)*s.Norm(0, 1)
	tolFactor := math.Exp(p.SensitivitySigma * mix)

	*u = User{
		ID:                id,
		Ratings:           ratings,
		EchoTol:           p.EchoTol.Sample(s) * tolFactor,
		OpTol:             p.OpTol.Sample(s) * tolFactor,
		LoadTol:           p.LoadTol.Sample(s) * tolFactor,
		FlowTol:           p.FlowTol.Sample(s) * math.Sqrt(tolFactor),
		FPSTol:            clampTo(p.FPSTol.Sample(s)/tolFactor, p.FPSTol.Lo, p.FPSTol.Hi),
		HitchTol:          p.HitchTol.Sample(s) * tolFactor,
		Hazard:            p.Hazard.Sample(s),
		ReactionLagMedian: p.ReactionLag.Sample(s),
		HabituationGain:   p.HabituationGain.Sample(s),
		BaselineMargin:    p.BaselineMargin,
		FlowMargin:        p.FlowMargin,
		expertise:         expertise,
	}
	for _, d := range userDomains {
		// Domain skill shares the latent expertise plus domain-specific
		// variation; Quake skill is the most idiosyncratic (plenty of
		// power PC users have never played).
		idio := 0.7
		if d == DomainQuake {
			idio = 1.0
		}
		latent := 0.75*expertise + idio*s.Norm(0, 1)
		switch {
		case latent > 0.6:
			u.Ratings[d] = Power
		case latent < -0.6:
			u.Ratings[d] = Beginner
		default:
			u.Ratings[d] = Typical
		}
	}
}

// Tolerances is the effective tolerance set a user applies during one
// task.
type Tolerances struct {
	Echo, Op, Load float64
	Flow           float64
	FPS, Hitch     float64
}

// taskDomain maps a study task to its questionnaire domain.
func taskDomain(task testcase.Task) Domain {
	switch task {
	case testcase.Word:
		return DomainWord
	case testcase.Powerpoint:
		return DomainPowerpoint
	case testcase.IE:
		return DomainIE
	case testcase.Quake:
		return DomainQuake
	default:
		return DomainPC
	}
}

// TolerancesFor returns the user's effective tolerances during a task,
// adjusting for self-rated skill: the task's own domain counts fully,
// and general PC and Windows skill count partially. Skilled users
// tolerate less latency and demand higher frame rates, matching the
// paper's finding that "experienced or power users have higher
// expectations from the interactive application than beginners".
func (u *User) TolerancesFor(task testcase.Task) Tolerances {
	f := ratingToleranceFactor(u.Ratings[taskDomain(task)])
	general := math.Pow(ratingToleranceFactor(u.Ratings[DomainPC]), 0.4) *
		math.Pow(ratingToleranceFactor(u.Ratings[DomainWindows]), 0.4)
	factor := f * general
	return Tolerances{
		Echo: u.EchoTol * factor,
		Op:   u.OpTol * factor,
		Load: u.LoadTol * factor,
		// Fluency perception is only mildly skill-dependent.
		Flow:  u.FlowTol * math.Sqrt(factor),
		FPS:   clampFPS(u.FPSTol / factor),
		Hitch: u.HitchTol * factor,
	}
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFPS(v float64) float64 {
	if v < 20 {
		return 20
	}
	// Players acclimatize to the game's normal frame rate; nobody
	// demands more than it delivers on a quiet machine.
	if v > 54 {
		return 54
	}
	return v
}

// String summarizes the user.
func (u *User) String() string {
	return fmt.Sprintf("user%02d echo=%.0fms op=%.0fms load=%.1fs fps=%.0f hitch=%.0fms pc=%s quake=%s",
		u.ID, u.EchoTol*1000, u.OpTol*1000, u.LoadTol, u.FPSTol, u.HitchTol*1000,
		u.Ratings[DomainPC], u.Ratings[DomainQuake])
}
