package core

import (
	"reflect"
	"testing"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/testcase"
)

// TestEngineConcurrentExecuteMatchesSerial drives one shared Engine (and
// one shared App and User, both immutable after construction) from many
// goroutines and checks every run record equals its serially produced
// twin. Run with -race this doubles as the engine's shared-state audit.
func TestEngineConcurrentExecuteMatchesSerial(t *testing.T) {
	engine := NewEngine()
	users, err := comfort.SamplePopulation(2, comfort.DefaultPopulation(), 7)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := testcase.ControlledSuite(testcase.IE)
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.New(testcase.IE)
	if err != nil {
		t.Fatal(err)
	}

	type job struct {
		tc   *testcase.Testcase
		user *comfort.User
		seed uint64
	}
	var jobs []job
	for i, tc := range suite {
		for _, u := range users {
			jobs = append(jobs, job{tc: tc, user: u, seed: uint64(i*31 + u.ID)})
		}
	}

	serial := make([]*Run, len(jobs))
	for i, j := range jobs {
		run, err := engine.Execute(j.tc, app, j.user, j.seed)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = run
	}

	concurrent := make([]*Run, len(jobs))
	errs := make(chan error, len(jobs))
	for i, j := range jobs {
		go func(i int, j job) {
			run, err := engine.Execute(j.tc, app, j.user, j.seed)
			concurrent[i] = run
			errs <- err
		}(i, j)
	}
	for range jobs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	for i := range jobs {
		if !reflect.DeepEqual(serial[i], concurrent[i]) {
			t.Fatalf("job %d: concurrent run differs from serial\nserial:     %v\nconcurrent: %v",
				i, serial[i], concurrent[i])
		}
	}
}
