package core_test

// The media-player comfort profile is verified here (an external test of
// core) rather than in internal/apps, because it needs the engine, which
// would cycle with the apps package.

import (
	"testing"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/testcase"
)

func TestMediaPlayerComfortProfile(t *testing.T) {
	// Video playback must be more CPU-tolerant than Quake (lighter
	// frames, lower rate, decode-ahead buffering) but, being
	// frame-driven, less tolerant than Word.
	users, err := comfort.SamplePopulation(25, comfort.DefaultPopulation(), 61)
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine()
	fd := func(app apps.App, level float64) float64 {
		tc := testcase.New("profile", 1)
		tc.Shape = testcase.ShapeStep
		tc.Functions[testcase.CPU] = testcase.Step(level, 120, 0, 1)
		df := 0
		for i, u := range users {
			run, err := engine.Execute(tc, app, u, uint64(300+i))
			if err != nil {
				t.Fatal(err)
			}
			if run.Terminated == core.Discomfort {
				df++
			}
		}
		return float64(df) / float64(len(users))
	}
	media := apps.NewMediaPlayer(apps.DefaultMediaParams())
	quake, err := apps.New(testcase.Quake)
	if err != nil {
		t.Fatal(err)
	}
	word, err := apps.New(testcase.Word)
	if err != nil {
		t.Fatal(err)
	}
	const level = 1.5
	fdMedia, fdQuake, fdWord := fd(media, level), fd(quake, level), fd(word, level)
	if fdMedia > fdQuake {
		t.Errorf("media (%v) less tolerant than Quake (%v) at CPU %v", fdMedia, fdQuake, level)
	}
	if fdMedia < fdWord {
		t.Errorf("media (%v) more tolerant than Word (%v) at CPU %v", fdMedia, fdWord, level)
	}
	// And at a level that saturates the decoder, playback must suffer.
	if got := fd(media, 6); got < 0.5 {
		t.Errorf("media f_d at CPU 6 = %v, playback should visibly stall", got)
	}
}
