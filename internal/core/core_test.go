package core

import (
	"strings"
	"testing"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/hostsim"
	"uucs/internal/testcase"
)

func testUser(t *testing.T, seed uint64) *comfort.User {
	t.Helper()
	users, err := comfort.SamplePopulation(1, comfort.DefaultPopulation(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return users[0]
}

func testApp(t *testing.T, task testcase.Task) apps.App {
	t.Helper()
	a, err := apps.New(task)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestExecuteBlankRunMostlyExhausts(t *testing.T) {
	e := NewEngine()
	tc := testcase.New("blank-1", 1)
	tc.Functions[testcase.CPU] = testcase.Blank(120, 1)
	app := testApp(t, testcase.Word)
	exhausted := 0
	for i := 0; i < 20; i++ {
		run, err := e.Execute(tc, app, testUser(t, uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !run.Blank {
			t.Error("run not marked blank")
		}
		if run.Terminated == Exhausted {
			exhausted++
			if run.Offset != 120 {
				t.Errorf("exhausted offset = %v", run.Offset)
			}
		}
	}
	// Word has essentially no noise-floor discomfort in the paper.
	if exhausted < 19 {
		t.Errorf("only %d/20 blank Word runs exhausted", exhausted)
	}
}

func TestExecuteSevereContentionDiscomforts(t *testing.T) {
	e := NewEngine()
	tc := testcase.New("step-hi", 1)
	tc.Shape = testcase.ShapeStep
	tc.Functions[testcase.CPU] = testcase.Step(10, 120, 10, 1)
	app := testApp(t, testcase.Quake)
	clicks := 0
	for i := 0; i < 20; i++ {
		run, err := e.Execute(tc, app, testUser(t, 100+uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if run.Terminated == Discomfort {
			clicks++
			if run.Offset < 10 {
				t.Errorf("discomfort at %v, before the step began", run.Offset)
			}
			if run.Offset > 120 {
				t.Errorf("discomfort offset %v beyond duration", run.Offset)
			}
			if lvl, ok := run.Level(); !ok || lvl != 10 {
				t.Errorf("discomfort level = %v, %v; want 10", lvl, ok)
			}
		}
	}
	if clicks < 19 {
		t.Errorf("only %d/20 Quake runs at contention 10 clicked", clicks)
	}
}

func TestExecuteRampLevelsAreConsistent(t *testing.T) {
	e := NewEngine()
	tc := testcase.New("ramp-1", 1)
	tc.Shape = testcase.ShapeRamp
	tc.Params = "1.3,120"
	tc.Functions[testcase.CPU] = testcase.Ramp(1.3, 120, 1)
	app := testApp(t, testcase.Quake)
	sawClick := false
	for i := 0; i < 30; i++ {
		run, err := e.Execute(tc, app, testUser(t, 200+uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if run.Terminated != Discomfort {
			continue
		}
		sawClick = true
		lvl, ok := run.Level()
		if !ok {
			t.Fatal("no level on discomforted run")
		}
		want := tc.Contention(testcase.CPU, run.Offset-1e-9)
		if lvl != want {
			t.Errorf("level = %v, contention at offset = %v", lvl, want)
		}
		if len(run.LastFive[testcase.CPU]) == 0 {
			t.Error("no last-five record")
		}
	}
	if !sawClick {
		t.Error("no Quake user clicked on a 1.3 CPU ramp; the paper saw f_d = 0.95")
	}
}

func TestExecuteRecordsMonitorLoad(t *testing.T) {
	e := NewEngine()
	tc := testcase.New("mon-1", 1)
	tc.Functions[testcase.Disk] = testcase.Step(3, 60, 0, 1)
	run, err := e.Execute(tc, testApp(t, testcase.Word), testUser(t, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Load) < int(run.Offset)-1 {
		t.Fatalf("monitor recorded %d samples for a %.0fs run", len(run.Load), run.Offset)
	}
	if run.Load[30].DiskQ < 3 {
		t.Errorf("monitor missed disk contention: %+v", run.Load[30])
	}
}

func TestExecuteDeterministic(t *testing.T) {
	e := NewEngine()
	tc := testcase.New("det-1", 1)
	tc.Functions[testcase.CPU] = testcase.Ramp(2, 120, 1)
	app := testApp(t, testcase.Powerpoint)
	u := testUser(t, 7)
	a, err := e.Execute(tc, app, u, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Execute(tc, app, u, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Terminated != b.Terminated || a.Offset != b.Offset {
		t.Errorf("runs differ: %v vs %v", a, b)
	}
}

func TestExecuteValidatesInputs(t *testing.T) {
	e := NewEngine()
	bad := testcase.New("", 1)
	if _, err := e.Execute(bad, testApp(t, testcase.Word), testUser(t, 1), 1); err == nil {
		t.Error("invalid testcase accepted")
	}
	tc := testcase.New("x", 1)
	tc.Functions[testcase.CPU] = testcase.Blank(10, 1)
	if _, err := e.Execute(tc, nil, testUser(t, 1), 1); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := e.Execute(tc, testApp(t, testcase.Word), nil, 1); err == nil {
		t.Error("nil user accepted")
	}
	e.Machine = hostsim.Config{}
	if _, err := e.Execute(tc, testApp(t, testcase.Word), testUser(t, 1), 1); err == nil {
		t.Error("invalid machine config accepted")
	}
}

func TestRunString(t *testing.T) {
	r := &Run{TestcaseID: "t", Task: testcase.Word, UserID: 3, Terminated: Discomfort,
		Offset: 42, Levels: map[testcase.Resource]float64{testcase.CPU: 1.5}}
	s := r.String()
	if !strings.Contains(s, "discomfort") || !strings.Contains(s, "cpu=1.50") {
		t.Errorf("String = %q", s)
	}
}

func TestEncodeDecodeRuns(t *testing.T) {
	e := NewEngine()
	tc := testcase.New("enc-1", 1)
	tc.Shape = testcase.ShapeRamp
	tc.Params = "2,120"
	tc.Functions[testcase.CPU] = testcase.Ramp(2, 120, 1)
	var runs []*Run
	for i := 0; i < 5; i++ {
		run, err := e.Execute(tc, testApp(t, testcase.Quake), testUser(t, uint64(i)), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	var b strings.Builder
	if err := EncodeRuns(&b, runs, true); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRuns(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(runs) {
		t.Fatalf("decoded %d runs", len(got))
	}
	for i, r := range runs {
		g := got[i]
		if g.TestcaseID != r.TestcaseID || g.Task != r.Task || g.UserID != r.UserID ||
			g.Terminated != r.Terminated || g.Offset != r.Offset || g.Events != r.Events ||
			g.Shape != r.Shape || g.Params != r.Params || g.PrimaryResource != r.PrimaryResource {
			t.Errorf("run %d metadata mismatch:\n%+v\n%+v", i, g, r)
		}
		if len(g.Levels) != len(r.Levels) {
			t.Errorf("run %d levels differ", i)
		}
		for res, v := range r.Levels {
			if g.Levels[res] != v {
				t.Errorf("run %d level %s: %v vs %v", i, res, g.Levels[res], v)
			}
		}
		if len(g.Load) != len(r.Load) {
			t.Errorf("run %d load samples: %d vs %d", i, len(g.Load), len(r.Load))
		}
	}
}

func TestEncodeWithoutLoad(t *testing.T) {
	r := &Run{TestcaseID: "t", Task: testcase.Word, Terminated: Exhausted, Offset: 120,
		Levels:   map[testcase.Resource]float64{testcase.CPU: 0},
		LastFive: map[testcase.Resource][]float64{},
		Load:     []hostsim.Load{{Time: 0, CPU: 1}}}
	var b strings.Builder
	if err := EncodeRuns(&b, []*Run{r}, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "load ") {
		t.Error("load samples encoded despite withLoad=false")
	}
	got, err := DecodeRuns(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Blank {
		t.Error("all-zero-level run without primary should decode as blank")
	}
}

func TestDecodeRunErrors(t *testing.T) {
	cases := []string{
		"task word\n",                           // outside run
		"run t\n",                               // unterminated
		"run t\nrun u\n",                        // nested
		"run t\noutcome bogus 1\nendrun\n",      // bad termination
		"run t\noutcome discomfort x\nendrun\n", // bad offset
		"run t\nuser zz\nendrun\n",              // bad user
		"run t\nlevel gpu 1\nendrun\n",          // bad resource
		"run t\nload 1 2 3\nendrun\n",           // short load
		"run t\nwhatever\nendrun\n",             // unknown directive
	}
	for _, c := range cases {
		if _, err := DecodeRuns(strings.NewReader(c)); err == nil {
			t.Errorf("decode accepted %q", c)
		}
	}
}
