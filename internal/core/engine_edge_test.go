package core

import (
	"testing"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/hostsim"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Engine edge-case tests: the frame-window machinery, the UI/worker
// thread split, the thrash fault path, and the monitor toggle, driven
// through a scripted App implementation.

// scriptedApp is a minimal App emitting a fixed event list.
type scriptedApp struct {
	task    testcase.Task
	frameHz float64
	ws      hostsim.WorkingSet
	events  []apps.Event
}

func (a *scriptedApp) Task() testcase.Task { return a.task }
func (a *scriptedApp) FrameHz() float64    { return a.frameHz }
func (a *scriptedApp) WorkingSet(float64) hostsim.WorkingSet {
	if a.ws.TotalMB > 0 {
		return a.ws
	}
	return hostsim.WorkingSet{TotalMB: 50, HotMB: 10}
}
func (a *scriptedApp) Events(duration float64, _ *stats.Stream) []apps.Event {
	var out []apps.Event
	for _, ev := range a.events {
		if ev.At < duration {
			out = append(out, ev)
		}
	}
	return out
}

// tolerantUser is effectively impossible to annoy, so runs exhaust and
// the mechanics can be observed through run records.
func tolerantUser(t *testing.T) *comfort.User {
	t.Helper()
	users, err := comfort.SamplePopulation(1, comfort.DefaultPopulation(), 31)
	if err != nil {
		t.Fatal(err)
	}
	u := users[0]
	u.EchoTol, u.OpTol, u.LoadTol, u.FlowTol = 1e6, 1e6, 1e6, 1e6
	u.HitchTol = 1e6
	u.FPSTol = 20 // clamped minimum; paired with huge hitch tolerance
	return u
}

func TestEngineWorkerThreadSplit(t *testing.T) {
	// A long LoadOp must not delay a subsequent Op (separate threads),
	// and the Op's own-latency semantics must hide schedule queueing.
	app := &scriptedApp{task: testcase.Word, events: []apps.Event{
		{At: 1, Class: apps.LoadOp, CPU: 0.05, DiskKB: 4096, Label: "save"},
		{At: 1.2, Class: apps.Op, CPU: 0.02, Label: "op"},
	}}
	e := NewEngine()
	e.Noise = hostsim.NoNoise()
	tc := testcase.New("t", 1)
	tc.Functions[testcase.CPU] = testcase.Blank(10, 1)
	run, err := e.Execute(tc, app, tolerantUser(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The 4 MB synced save takes several hundred ms; with the thread
	// split the op does not queue behind it, so WorstLatency is the save
	// itself (well above the op's ~20ms).
	if run.WorstLatency < 0.3 {
		t.Errorf("save latency not observed: worst = %v", run.WorstLatency)
	}
	if run.Events != 2 {
		t.Errorf("events = %d", run.Events)
	}
}

func TestEngineThrashFaultPath(t *testing.T) {
	// Under NoHotPageDefense and full memory borrowing, an app whose hot
	// core is displaced must see far larger event latencies (the thrash
	// code path) than with the defense on.
	mk := func(defense bool) float64 {
		app := &scriptedApp{task: testcase.Word,
			ws: hostsim.WorkingSet{TotalMB: 200, HotMB: 100},
			events: []apps.Event{
				{At: 50, Class: apps.Op, CPU: 0.05, HotTouches: 5, Label: "op"},
			}}
		e := NewEngine()
		e.Noise = hostsim.NoNoise()
		e.Machine.NoHotPageDefense = !defense
		tc := testcase.New("t", 1)
		tc.Functions[testcase.Memory] = testcase.Step(1.0, 60, 0, 1)
		run, err := e.Execute(tc, app, tolerantUser(t), 3)
		if err != nil {
			t.Fatal(err)
		}
		return run.WorstLatency
	}
	defended, thrashing := mk(true), mk(false)
	if thrashing < 4*defended {
		t.Errorf("thrash latency %v not far beyond defended %v", thrashing, defended)
	}
}

func TestEngineFrameWindowsProduceFPSSignal(t *testing.T) {
	// A frame-driven scripted app at 10 Hz: with heavy CPU contention a
	// frame-rate-demanding user must click; with no contention they must
	// not.
	frames := func() []apps.Event {
		var evs []apps.Event
		for i := 0; i < 300; i++ {
			evs = append(evs, apps.Event{At: float64(i) * 0.1, Class: apps.Frame, CPU: 0.04, Label: "frame"})
		}
		return evs
	}
	users, err := comfort.SamplePopulation(1, comfort.DefaultPopulation(), 77)
	if err != nil {
		t.Fatal(err)
	}
	u := users[0]
	u.HitchTol = 1e6
	u.FPSTol = 25 // the 10 Hz loop never satisfies this under contention

	runAt := func(c float64) Termination {
		app := &scriptedApp{task: testcase.Quake, frameHz: 10, events: frames()}
		e := NewEngine()
		e.Noise = hostsim.NoNoise()
		tc := testcase.New("t", 1)
		tc.Functions[testcase.CPU] = testcase.Step(c, 30, 0, 1)
		run, err := e.Execute(tc, app, u, 9)
		if err != nil {
			t.Fatal(err)
		}
		return run.Terminated
	}
	if got := runAt(6); got != Discomfort {
		t.Errorf("heavily contended frame loop: %v", got)
	}
}

func TestEngineMonitorDisabled(t *testing.T) {
	e := NewEngine()
	e.MonitorRate = 0
	tc := testcase.New("t", 1)
	tc.Functions[testcase.CPU] = testcase.Blank(5, 1)
	app := &scriptedApp{task: testcase.Word}
	run, err := e.Execute(tc, app, tolerantUser(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Load) != 0 {
		t.Errorf("monitor samples with rate 0: %d", len(run.Load))
	}
}

func TestEngineTraceEvents(t *testing.T) {
	e := NewEngine()
	e.TraceEvents = true
	e.Noise = hostsim.NoNoise()
	tc := testcase.New("tr", 1)
	tc.Functions[testcase.CPU] = testcase.Ramp(2, 30, 1)
	app := &scriptedApp{task: testcase.Word, events: []apps.Event{
		{At: 1, Class: apps.Echo, CPU: 0.002, Label: "key"},
		{At: 5, Class: apps.Op, CPU: 0.05, Label: "op"},
		{At: 10, Class: apps.LoadOp, CPU: 0.02, DiskKB: 256, Label: "save"},
	}}
	run, err := e.Execute(tc, app, tolerantUser(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Trace) != 3 {
		t.Fatalf("trace samples = %d, want 3", len(run.Trace))
	}
	labels := map[string]bool{}
	for _, s := range run.Trace {
		if s.Latency <= 0 || s.Time <= 0 {
			t.Errorf("bad sample: %+v", s)
		}
		labels[s.Label] = true
	}
	for _, want := range []string{"key", "op", "save"} {
		if !labels[want] {
			t.Errorf("trace missing %q", want)
		}
	}
	// Off by default.
	e.TraceEvents = false
	run, err = e.Execute(tc, app, tolerantUser(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Trace) != 0 {
		t.Errorf("trace recorded with TraceEvents off: %d", len(run.Trace))
	}
}
