package core

import (
	"strings"
	"testing"
)

// FuzzDecodeRuns exercises the run-record decoder with arbitrary input:
// the server feeds client uploads straight into it, so it must never
// panic and accepted records must round-trip.
func FuzzDecodeRuns(f *testing.F) {
	seed := []string{
		"",
		"run t\ntask word\nuser 3\noutcome discomfort 42.5\nprimary cpu\nlevel cpu 1.5\nlastfive cpu 1 2 3 4 5\nevents 10\nendrun\n",
		"run t\ntask quake\nuser 0\noutcome exhausted 120\nlevel cpu 0\nevents 0\nload 0 1 0.5 2\nendrun\n",
		"run t\nendrun\n",
		"run t\noutcome bogus 1\nendrun\n",
		"garbage\n",
		"run t\nlevel cpu nan\nendrun\n",
		"run t\nuser -5\nendrun\n",
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		runs, err := DecodeRuns(strings.NewReader(input))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := EncodeRuns(&b, runs, true); err != nil {
			t.Fatalf("decoded runs failed to encode: %v", err)
		}
		again, err := DecodeRuns(strings.NewReader(b.String()))
		if err != nil {
			// NaN/Inf levels survive decoding but do not re-parse; the
			// store never writes them (levels come from validated
			// testcases), so re-encode rejection is acceptable only for
			// such values.
			if strings.Contains(b.String(), "NaN") || strings.Contains(b.String(), "Inf") ||
				strings.Contains(b.String(), "nan") || strings.Contains(b.String(), "inf") {
				return
			}
			t.Fatalf("re-encoded form failed to decode: %v\n%s", err, b.String())
		}
		if len(again) != len(runs) {
			t.Fatalf("round trip changed count: %d -> %d", len(runs), len(again))
		}
		for i := range runs {
			if again[i].TestcaseID != runs[i].TestcaseID || again[i].Terminated != runs[i].Terminated {
				t.Fatalf("round trip changed run %d", i)
			}
			if len(again[i].Load) != len(runs[i].Load) {
				t.Fatalf("round trip changed load samples on run %d", i)
			}
		}
	})
}
