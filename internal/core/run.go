// Package core is the UUCS client's testcase execution engine: it runs a
// testcase against a machine, a foreground application and a user, and
// produces the run record the paper's client reports back to the server
// (§2.3) — whether the run ended in user feedback or testcase
// exhaustion, the time offset of the feedback, the last five contention
// values of every exercise function at that point, and the system load
// recording.
package core

import (
	"fmt"
	"sort"
	"strings"

	"uucs/internal/apps"
	"uucs/internal/hostsim"
	"uucs/internal/testcase"
)

// Termination says how a run ended.
type Termination string

// Run outcomes. A run is over "when user expresses discomfort feedback
// or the exercise functions are exhausted without any feedback" (§2.3).
const (
	Discomfort Termination = "discomfort"
	Exhausted  Termination = "exhausted"
)

// Run is the result record of one testcase execution by one user during
// one task.
type Run struct {
	// TestcaseID identifies the testcase.
	TestcaseID string
	// Shape and Params echo the testcase generator metadata for
	// analysis grouping.
	Shape  testcase.Shape
	Params string
	// Task is the foreground context.
	Task testcase.Task
	// UserID identifies the study participant.
	UserID int
	// Blank records whether the testcase exercised nothing.
	Blank bool
	// PrimaryResource is the single exercised resource for the
	// controlled study's single-resource testcases ("" for blank).
	PrimaryResource testcase.Resource
	// Terminated says whether the user clicked or the testcase ran out.
	Terminated Termination
	// Offset is the feedback time, or the full duration for exhausted
	// runs.
	Offset float64
	// Levels maps each exercised resource to its contention at Offset —
	// the discomfort level the study's CDFs are built from.
	Levels map[testcase.Resource]float64
	// LastFive holds the last five contention values of each exercise
	// function at Offset, exactly as the paper records.
	LastFive map[testcase.Resource][]float64
	// Load is the system monitor recording for the run.
	Load []hostsim.Load
	// Events is the number of interactive events the app issued.
	Events int
	// WorstLatency is the worst watched-event latency during the run
	// (diagnostic, not in the paper's record).
	WorstLatency float64
	// Trace holds per-event interactivity samples when the engine's
	// TraceEvents option is on: the raw material behind the perceiver's
	// decisions, for debugging and timeline rendering.
	Trace []TraceSample
}

// TraceSample is one interactivity observation in a run trace.
type TraceSample struct {
	// Time is the observation time (event completion or window end).
	Time float64
	// Class is the event class ("frame" samples are 1s window summaries).
	Class apps.Class
	// Latency is the user-visible latency (worst frame time for frame
	// windows).
	Latency float64
	// FPS is the window frame rate for frame samples.
	FPS float64
	// Label names the operation.
	Label string
}

// Level returns the discomfort level for the run's primary resource.
// ok is false for blank runs.
func (r *Run) Level() (float64, bool) {
	if r.PrimaryResource == "" {
		return 0, false
	}
	v, ok := r.Levels[r.PrimaryResource]
	return v, ok
}

// String renders a one-line summary.
func (r *Run) String() string {
	var lvl []string
	for _, res := range testcase.Resources() {
		if v, ok := r.Levels[res]; ok {
			lvl = append(lvl, fmt.Sprintf("%s=%.2f", res, v))
		}
	}
	sort.Strings(lvl)
	return fmt.Sprintf("run[%s user%02d %s %s @%.1fs %s]",
		r.TestcaseID, r.UserID, r.Task, r.Terminated, r.Offset, strings.Join(lvl, " "))
}
