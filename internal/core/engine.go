package core

import (
	"fmt"
	"math"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/hostsim"
	"uucs/internal/monitor"
	"uucs/internal/testcase"
)

// Engine executes testcases. It corresponds to the paper's client core
// (Figure 5): when a testcase is executed, the appropriate exercisers
// are started with their exercise functions, a high-priority watcher
// waits for user feedback, and the run ends at feedback or exhaustion
// with everything recorded.
//
// An Engine holds only the run configuration; Execute allocates all
// per-run state (machine, perceiver, RNG streams) itself, so one Engine
// is safe for any number of concurrent Execute calls as long as its
// fields are not mutated mid-flight. The parallel study scheduler
// relies on this.
type Engine struct {
	// Machine is the hardware configuration runs execute on.
	Machine hostsim.Config
	// Noise is the background-activity profile.
	Noise hostsim.NoiseProfile
	// MonitorRate is the load-sampling rate in Hz.
	MonitorRate float64
	// TraceEvents records per-event interactivity samples into the run
	// (off by default: a Quake run has thousands of windows and events).
	TraceEvents bool
}

// NewEngine returns an engine for the controlled-study machine with
// default background noise and 1 Hz monitoring.
func NewEngine() *Engine {
	return &Engine{
		Machine:     hostsim.StudyMachine(),
		Noise:       hostsim.DefaultNoise(),
		MonitorRate: 1,
	}
}

// frameWindow is the aggregation window for frame-loop perception.
const frameWindow = 1.0

// frameSlackFor is the lateness a frame-driven app absorbs before
// dropping a frame: one frame period of buffering.
func frameSlackFor(hz float64) float64 {
	if hz > 0 {
		return 1 / hz
	}
	return 0
}

// baselineLatency is the typical uncontended latency of an event on
// this machine — what the user acclimatized to during the study's
// warm-up period (§3.1).
func baselineLatency(m *hostsim.Machine, ev *apps.Event) float64 {
	return m.CPUBaseline(ev.CPU) + m.DiskIOBaseline(ev.DiskKB) + ev.BaselineExtra
}

// Execute runs one testcase for one user doing one task and returns the
// run record. seed makes the run fully deterministic. Per-run state is
// drawn from an internal scratch pool; drivers that fan out across
// workers should own one Scratch per worker and call ExecuteScratch.
func (e *Engine) Execute(tc *testcase.Testcase, app apps.App, user *comfort.User, seed uint64) (*Run, error) {
	s := scratchPool.Get().(*Scratch)
	run, err := e.ExecuteScratch(s, tc, app, user, seed)
	scratchPool.Put(s)
	return run, err
}

// ExecuteScratch is Execute with caller-owned reusable per-run state.
// It is bit-identical to Execute for any scratch: every stochastic
// stream is reseeded through the same derivation chain a fresh run
// uses, and all reused buffers are cleared before use.
func (e *Engine) ExecuteScratch(s *Scratch, tc *testcase.Testcase, app apps.App, user *comfort.User, seed uint64) (*Run, error) {
	run := &Run{}
	if err := e.ExecuteInto(s, run, tc, app, user, seed); err != nil {
		return nil, err
	}
	return run, nil
}

// ExecuteInto is ExecuteScratch writing into a caller-owned Run,
// reusing its Levels and LastFive maps and its Trace capacity. A reused
// run compares bit-identical to a freshly allocated one; on error the
// run's contents are undefined. Together with a warm Scratch this is
// the engine's zero-allocation path — what lets the streaming study
// engine execute a million hosts' runs without producing garbage.
func (e *Engine) ExecuteInto(s *Scratch, run *Run, tc *testcase.Testcase, app apps.App, user *comfort.User, seed uint64) error {
	if err := tc.Validate(); err != nil {
		return err
	}
	if app == nil || user == nil {
		return fmt.Errorf("core: nil app or user")
	}
	rng := &s.rng
	rng.Reseed(seed)
	machineSeed := rng.ForkSeed()
	machine := s.machine
	if machine == nil {
		var err error
		machine, err = hostsim.NewMachine(e.Machine, e.Noise, machineSeed)
		if err != nil {
			return err
		}
		s.machine = machine
	} else if err := machine.Reset(e.Machine, e.Noise, machineSeed); err != nil {
		return err
	}
	// Start the exercisers: attach each exercise function's playback to
	// the machine.
	for r, f := range tc.Functions {
		machine.SetExercise(r, f)
	}
	duration := tc.Duration()
	rng.ForkInto(&s.evRng)
	events := apps.EventsInto(app, s.events, duration, &s.evRng)
	s.events = events // keep the (possibly grown) buffer for the next run
	// Per-event loop invariants, hoisted: the app's identity, frame
	// geometry and slack do not change mid-run.
	appTask := app.Task()
	frameHz := app.FrameHz()
	frameDriven := frameHz > 0
	slack := frameSlackFor(frameHz)

	rng.ForkInto(&s.perRng)
	perceiver := &s.perceiver
	perceiver.Reset(user, appTask, &s.perRng)

	// Reset the caller's run in place, keeping only its reusable
	// buffers: the Levels and LastFive maps and the Trace backing array.
	oldLevels, oldLastFive, oldTrace := run.Levels, run.LastFive, run.Trace
	*run = Run{
		TestcaseID:      tc.ID,
		Shape:           tc.Shape,
		Params:          tc.Params,
		Task:            appTask,
		UserID:          user.ID,
		Blank:           tc.IsBlank(),
		PrimaryResource: tc.PrimaryResource(),
		Terminated:      Exhausted,
		Offset:          duration,
		Events:          len(events),
	}
	if e.TraceEvents {
		// One sample per event plus one per frame window, worst case.
		if want := len(events) + int(duration/frameWindow) + 2; cap(oldTrace) < want {
			oldTrace = make([]TraceSample, 0, want)
		}
		run.Trace = oldTrace[:0]
	}

	var (
		uiBusy    float64 // the UI/render thread (echo, op, frame)
		loadBusy  float64 // the worker thread for long operations
		winStart  float64 // current frame window start
		winFrames int
		winWorst  float64
		clicked   bool
		clickAt   float64
	)

	observe := func(o comfort.Observation) {
		if clicked {
			return
		}
		if d := perceiver.Observe(o); d.Clicked {
			clicked = true
			clickAt = d.At
		}
	}
	flushWindow := func(endOfWindow float64) {
		fps := float64(winFrames) / frameWindow
		if e.TraceEvents {
			run.Trace = append(run.Trace, TraceSample{
				Time: endOfWindow, Class: apps.Frame, Latency: winWorst, FPS: fps, Label: "frame-window",
			})
		}
		observe(comfort.Observation{
			Time: endOfWindow, Class: apps.Frame,
			FPS: fps, Latency: winWorst, Window: frameWindow,
		})
		winFrames = 0
		winWorst = 0
		winStart = endOfWindow
	}

	for i := range events {
		ev := &events[i]
		if clicked && ev.At >= clickAt {
			break
		}
		if frameDriven {
			// Emit any frame windows that closed before this event.
			for ev.At >= winStart+frameWindow {
				flushWindow(winStart + frameWindow)
				if clicked {
					break
				}
			}
			if clicked && ev.At >= clickAt {
				break
			}
		}

		if ev.Class == apps.Frame && uiBusy > ev.At+slack {
			// The render loop has fallen more than a frame behind: this
			// frame is dropped. Double-buffering absorbs smaller
			// overruns, so slow frames become a lower frame rate rather
			// than an ever-growing backlog.
			continue
		}
		// Long operations run on a worker thread (a save does not freeze
		// typing); interactive events share the UI thread.
		track := &uiBusy
		if ev.Class == apps.LoadOp {
			track = &loadBusy
		}
		start := ev.At
		if *track > start {
			start = *track // the thread is still busy
		}
		ws := app.WorkingSet(start)
		coldMiss, hotMiss := machine.MemMiss(start, ws)
		faults := machine.FaultCount(ev.ColdTouches, coldMiss) + machine.FaultCount(ev.HotTouches, hotMiss)
		if hotMiss > 0 {
			// Once the hot core is being displaced the machine is
			// thrashing: code and data pages fault in proportion to the
			// event's CPU footprint, not just its explicit touches.
			faults += machine.FaultCount(4+int(ev.CPU*200), hotMiss)
		}

		var end float64
		if ev.Class == apps.Flow {
			// Fluency is judged over many updates: a single slow
			// subinterval averages out, a sustained slowdown does not.
			end = machine.CPUBurstSmoothed(start, ev.CPU)
		} else {
			end = machine.CPUBurst(start, ev.CPU)
		}
		if faults > 0 {
			end += machine.FaultCost(start, faults, ws)
		}
		if ev.DiskKB > 0 {
			end = machine.DiskIO(end, ev.DiskKB)
		}
		if ev.DiskBGKB > 0 {
			machine.DiskIOBackground(end, ev.DiskBGKB)
		}
		*track = end

		switch ev.Class {
		case apps.Frame:
			winFrames++
			frameTime := end - start
			if frameTime > winWorst {
				winWorst = frameTime
			}
		case apps.Echo, apps.Op, apps.Flow:
			// Echo and op latency is the event's own processing time:
			// users are closed-loop — they issue the next operation after
			// the previous one completes, so artificial queueing delay
			// from the open-loop event schedule is not perceived. Disk
			// queueing inside the event is physical and is perceived.
			latency := end - start + ev.ExtraLatency
			if latency > run.WorstLatency {
				run.WorstLatency = latency
			}
			if e.TraceEvents {
				run.Trace = append(run.Trace, TraceSample{Time: end, Class: ev.Class, Latency: latency, Label: ev.Label})
			}
			observe(comfort.Observation{
				Time: end, Class: ev.Class, Latency: latency,
				Baseline: baselineLatency(machine, ev),
			})
		default:
			// Watched operations are judged from initiation, so queueing
			// behind earlier work counts.
			latency := end - ev.At + ev.ExtraLatency
			if latency > run.WorstLatency {
				run.WorstLatency = latency
			}
			if e.TraceEvents {
				run.Trace = append(run.Trace, TraceSample{Time: end, Class: ev.Class, Latency: latency, Label: ev.Label})
			}
			observe(comfort.Observation{
				Time: end, Class: ev.Class, Latency: latency,
				Baseline: baselineLatency(machine, ev),
			})
		}
	}
	if frameDriven && !clicked {
		flushWindow(winStart + frameWindow)
	}

	if clicked {
		offset := math.Min(clickAt, duration)
		run.Terminated = Discomfort
		run.Offset = offset
		// The paper's client stops the exercisers immediately on
		// feedback and releases their resources.
		machine.ClearContention()
	}

	// Record contention levels and the last five exercise values at the
	// end of the run; levels are evaluated just before the feedback
	// moment so a click at exact exhaustion reads the final sample.
	levelTime := math.Min(run.Offset, duration-1e-9)
	if oldLevels == nil {
		oldLevels = make(map[testcase.Resource]float64, len(tc.Functions))
	} else {
		clear(oldLevels)
	}
	for r := range tc.Functions {
		oldLevels[r] = tc.Contention(r, levelTime)
	}
	run.Levels = oldLevels
	run.LastFive = tc.LastFiveInto(oldLastFive, levelTime)

	if e.MonitorRate > 0 {
		rec, err := monitor.NewRecorder(e.MonitorRate)
		if err != nil {
			return err
		}
		// Re-attach the functions for the monitoring replay of the run
		// window, mirroring what the live monitor saw.
		for r, f := range tc.Functions {
			if !clicked {
				machine.SetExercise(r, f)
				continue
			}
			fr, off := f, run.Offset
			machine.SetContention(r, func(t float64) float64 {
				if t >= off {
					return 0 // exercisers stopped at the click
				}
				return fr.Value(t)
			})
		}
		rec.CaptureRun(machine, run.Offset)
		run.Load = rec.Samples()
	}
	return nil
}
