package core

import (
	"reflect"
	"testing"

	"uucs/internal/testcase"
)

// suiteCaseFor returns the first controlled-suite testcase for the task
// whose primary resource is r.
func suiteCaseFor(t *testing.T, task testcase.Task, r testcase.Resource) *testcase.Testcase {
	t.Helper()
	suite, err := testcase.ControlledSuite(task)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range suite {
		if tc.PrimaryResource() == r {
			return tc
		}
	}
	t.Fatalf("no %s testcase in the %s suite", r, task)
	return nil
}

// TestExecuteScratchAllocCeiling pins the warm-path allocation count of
// one run per exercised resource. The remaining allocations are the run
// record itself (the Run struct, its Levels map, LastFive and monitor
// samples) — per-run state the caller keeps. Anything above the ceiling
// means a hot-loop allocation crept back in.
func TestExecuteScratchAllocCeiling(t *testing.T) {
	const ceiling = 12
	e := NewEngine()
	user := testUser(t, 1)
	for _, r := range testcase.Resources() {
		r := r
		t.Run(string(r), func(t *testing.T) {
			tc := suiteCaseFor(t, testcase.Word, r)
			app := testApp(t, testcase.Word)
			s := NewScratch()
			// Warm the scratch: buffers reach steady-state size on the
			// first run; the ceiling applies from the second on.
			if _, err := e.ExecuteScratch(s, tc, app, user, 1); err != nil {
				t.Fatal(err)
			}
			seed := uint64(2)
			avg := testing.AllocsPerRun(10, func() {
				if _, err := e.ExecuteScratch(s, tc, app, user, seed); err != nil {
					t.Fatal(err)
				}
				seed++
			})
			if avg > ceiling {
				t.Errorf("ExecuteScratch(%s) allocates %.1f/run, ceiling %d", r, avg, ceiling)
			}
		})
	}
}

// TestExecuteWarmScratchMatchesFresh verifies the reuse machinery is
// invisible: a scratch that has executed arbitrary prior runs yields
// bit-identical records to a freshly allocated one, for every task.
func TestExecuteWarmScratchMatchesFresh(t *testing.T) {
	e := NewEngine()
	e.TraceEvents = true
	user := testUser(t, 7)
	warm := NewScratch()
	for _, task := range testcase.Tasks() {
		suite, err := testcase.ControlledSuite(task)
		if err != nil {
			t.Fatal(err)
		}
		app := testApp(t, task)
		for i, tc := range suite {
			seed := uint64(100 + i)
			got, err := e.ExecuteScratch(warm, tc, app, user, seed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e.ExecuteScratch(NewScratch(), tc, app, user, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s testcase %s: warm-scratch run differs from fresh", task, tc.ID)
			}
		}
	}
}

// TestExecuteIntoMatchesScratch verifies that a Run reused across
// arbitrary testcases and tasks is bit-identical to a freshly allocated
// one — the contract the streaming study engine's fold loop depends on.
func TestExecuteIntoMatchesScratch(t *testing.T) {
	e := NewEngine()
	e.TraceEvents = true
	user := testUser(t, 7)
	warm := NewScratch()
	reused := &Run{}
	for _, task := range testcase.Tasks() {
		suite, err := testcase.ControlledSuite(task)
		if err != nil {
			t.Fatal(err)
		}
		app := testApp(t, task)
		for i, tc := range suite {
			seed := uint64(400 + i)
			if err := e.ExecuteInto(warm, reused, tc, app, user, seed); err != nil {
				t.Fatal(err)
			}
			want, err := e.ExecuteScratch(NewScratch(), tc, app, user, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reused, want) {
				t.Errorf("%s testcase %s: reused run differs from fresh", task, tc.ID)
			}
		}
	}
}

// TestExecuteIntoAllocCeiling pins the fully-reused path: warm scratch,
// reused run, no monitor replay. This is the configuration the
// million-host streaming engine runs in, where any per-run allocation
// multiplies by 10^6.
func TestExecuteIntoAllocCeiling(t *testing.T) {
	const ceiling = 1
	e := NewEngine()
	e.MonitorRate = 0
	user := testUser(t, 1)
	for _, r := range testcase.Resources() {
		r := r
		t.Run(string(r), func(t *testing.T) {
			tc := suiteCaseFor(t, testcase.Word, r)
			app := testApp(t, testcase.Word)
			s := NewScratch()
			run := &Run{}
			if err := e.ExecuteInto(s, run, tc, app, user, 1); err != nil {
				t.Fatal(err)
			}
			seed := uint64(2)
			avg := testing.AllocsPerRun(10, func() {
				if err := e.ExecuteInto(s, run, tc, app, user, seed); err != nil {
					t.Fatal(err)
				}
				seed++
			})
			if avg > ceiling {
				t.Errorf("ExecuteInto(%s) allocates %.1f/run, ceiling %d", r, avg, ceiling)
			}
		})
	}
}
