package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"uucs/internal/hostsim"
	"uucs/internal/testcase"
)

// Run records are stored and transported as line-oriented text, like the
// paper's text-file result stores:
//
//	run <testcase-id>
//	task <task>
//	user <id>
//	shape <family> [params]
//	outcome <discomfort|exhausted> <offset>
//	primary <resource>            (omitted for blank testcases)
//	level <resource> <value>
//	lastfive <resource> <v1> ... <v5>
//	load <t> <cpu> <mem> <diskq>  (one per monitor sample)
//	events <n>
//	endrun

// EncodeRuns writes runs to w in the text format. Monitor samples are
// included only when withLoad is set (hot-sync payloads omit them by
// default to stay small; the paper uploads them, and the server can ask
// for them).
func EncodeRuns(w io.Writer, runs []*Run, withLoad bool) error {
	bw := bufio.NewWriter(w)
	for _, r := range runs {
		fmt.Fprintf(bw, "run %s\n", r.TestcaseID)
		fmt.Fprintf(bw, "task %s\n", r.Task)
		fmt.Fprintf(bw, "user %d\n", r.UserID)
		if r.Shape != "" {
			if r.Params != "" {
				fmt.Fprintf(bw, "shape %s %s\n", r.Shape, r.Params)
			} else {
				fmt.Fprintf(bw, "shape %s\n", r.Shape)
			}
		}
		fmt.Fprintf(bw, "outcome %s %g\n", r.Terminated, r.Offset)
		if r.PrimaryResource != "" {
			fmt.Fprintf(bw, "primary %s\n", r.PrimaryResource)
		}
		for _, res := range testcase.Resources() {
			if v, ok := r.Levels[res]; ok {
				fmt.Fprintf(bw, "level %s %g\n", res, v)
			}
		}
		for _, res := range testcase.Resources() {
			if vs, ok := r.LastFive[res]; ok && len(vs) > 0 {
				fmt.Fprintf(bw, "lastfive %s", res)
				for _, v := range vs {
					fmt.Fprintf(bw, " %g", v)
				}
				fmt.Fprintln(bw)
			}
		}
		fmt.Fprintf(bw, "events %d\n", r.Events)
		if withLoad {
			for _, l := range r.Load {
				fmt.Fprintf(bw, "load %g %g %g %g\n", l.Time, l.CPU, l.MemFrac, l.DiskQ)
			}
		}
		fmt.Fprintln(bw, "endrun")
	}
	return bw.Flush()
}

// DecodeRuns parses run records from r.
func DecodeRuns(r io.Reader) ([]*Run, error) {
	sc := bufio.NewScanner(r)
	// Cap lines at 16MB but let the scanner grow to it lazily: the server
	// decodes every uploaded batch through here, and a preallocated 1MB
	// buffer per call costs more in zeroing and GC than the parse itself.
	sc.Buffer(nil, 1<<24)
	var (
		out  []*Run
		cur  *Run
		line int
	)
	fail := func(format string, args ...any) ([]*Run, error) {
		return nil, fmt.Errorf("core: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if cur == nil && f[0] != "run" {
			return fail("%q outside run record", f[0])
		}
		// Every directive except endrun carries at least one operand.
		if f[0] != "endrun" && len(f) < 2 {
			return fail("directive %q without operands", f[0])
		}
		switch f[0] {
		case "run":
			if cur != nil {
				return fail("nested run")
			}
			if len(f) != 2 {
				return fail("want 'run <testcase-id>'")
			}
			cur = &Run{
				TestcaseID: f[1],
				Levels:     make(map[testcase.Resource]float64),
				LastFive:   make(map[testcase.Resource][]float64),
			}
		case "task":
			task, err := testcase.ParseTask(f[1])
			if err != nil {
				return fail("%v", err)
			}
			cur.Task = task
		case "user":
			id, err := strconv.Atoi(f[1])
			if err != nil {
				return fail("bad user id: %v", err)
			}
			cur.UserID = id
		case "shape":
			cur.Shape = testcase.Shape(f[1])
			if len(f) > 2 {
				cur.Params = strings.Join(f[2:], " ")
			}
		case "outcome":
			if len(f) != 3 {
				return fail("want 'outcome <termination> <offset>'")
			}
			switch Termination(f[1]) {
			case Discomfort, Exhausted:
				cur.Terminated = Termination(f[1])
			default:
				return fail("unknown termination %q", f[1])
			}
			v, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return fail("bad offset: %v", err)
			}
			cur.Offset = v
		case "primary":
			res, err := testcase.ParseResource(f[1])
			if err != nil {
				return fail("%v", err)
			}
			cur.PrimaryResource = res
		case "level":
			if len(f) != 3 {
				return fail("want 'level <resource> <value>'")
			}
			res, err := testcase.ParseResource(f[1])
			if err != nil {
				return fail("%v", err)
			}
			v, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return fail("bad level: %v", err)
			}
			cur.Levels[res] = v
		case "lastfive":
			if len(f) < 3 {
				return fail("want 'lastfive <resource> <values...>'")
			}
			res, err := testcase.ParseResource(f[1])
			if err != nil {
				return fail("%v", err)
			}
			vals := make([]float64, 0, len(f)-2)
			for _, s := range f[2:] {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fail("bad lastfive value: %v", err)
				}
				vals = append(vals, v)
			}
			cur.LastFive[res] = vals
		case "events":
			n, err := strconv.Atoi(f[1])
			if err != nil {
				return fail("bad events: %v", err)
			}
			cur.Events = n
		case "load":
			if len(f) != 5 {
				return fail("want 'load <t> <cpu> <mem> <diskq>'")
			}
			var vals [4]float64
			for i := 0; i < 4; i++ {
				v, err := strconv.ParseFloat(f[i+1], 64)
				if err != nil {
					return fail("bad load sample: %v", err)
				}
				vals[i] = v
			}
			cur.Load = append(cur.Load, hostsim.Load{Time: vals[0], CPU: vals[1], MemFrac: vals[2], DiskQ: vals[3]})
		case "endrun":
			// A record without its context or outcome is meaningless;
			// reject it rather than storing an unanalyzable run.
			if cur.Task == "" {
				return fail("run %s has no task", cur.TestcaseID)
			}
			if cur.Terminated == "" {
				return fail("run %s has no outcome", cur.TestcaseID)
			}
			cur.Blank = len(cur.Levels) == 0 || allZeroLevels(cur)
			out = append(out, cur)
			cur = nil
		default:
			return fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("core: unterminated run record at EOF")
	}
	return out, nil
}

// allZeroLevels reports whether every recorded level is zero and no
// primary resource was named — the decode-side blank heuristic.
func allZeroLevels(r *Run) bool {
	if r.PrimaryResource != "" {
		return false
	}
	for _, v := range r.Levels {
		if v != 0 {
			return false
		}
	}
	return true
}
