package core

import (
	"sync"

	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/hostsim"
	"uucs/internal/stats"
)

// Scratch is the reusable per-run state of one Execute call: the
// simulated machine (with its noise window buffers), the event buffer,
// the perceiver, and the derived RNG streams. Reusing a Scratch across
// runs removes every warm-path allocation from the engine's hot loop
// while remaining bit-identical to fresh allocation — each piece is
// reseeded or truncated through exactly the derivation a fresh run
// performs.
//
// A Scratch may be used by one Execute call at a time. The parallel
// study drivers own one per worker (see pool.RunScratch); Execute
// without an explicit scratch draws from an internal sync.Pool, so
// one-off callers get the reuse for free after warm-up.
type Scratch struct {
	machine   *hostsim.Machine
	events    []apps.Event
	perceiver comfort.Perceiver
	rng       stats.Stream // per-run master stream (reseeded from the run seed)
	evRng     stats.Stream // events fork
	perRng    stats.Stream // perceiver fork
}

// NewScratch returns an empty scratch; buffers grow to steady-state
// sizes over the first few runs and are then reused.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs Execute calls that do not bring their own scratch.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}
