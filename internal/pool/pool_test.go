package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunAllUnits(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out := make([]int, 100)
		if err := Run(workers, len(out), func(i int) error {
			out[i] = i + 1
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: unit %d not executed (slot=%d)", workers, i, v)
			}
		}
	}
}

func TestRunDefaultsWorkers(t *testing.T) {
	// Workers=0 must behave like GOMAXPROCS workers: all units execute.
	var calls atomic.Int64
	if err := Run(0, 37, func(int) error {
		calls.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 37 {
		t.Fatalf("calls = %d, want 37", calls.Load())
	}
}

func TestRunWorkersExceedUnits(t *testing.T) {
	var calls atomic.Int64
	if err := Run(16, 3, func(int) error {
		calls.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestRunZeroUnits(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	// Every odd unit fails; the lowest-index failure must be returned
	// regardless of scheduling.
	for _, workers := range []int{1, 2, 8} {
		err := Run(workers, 50, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 1 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index failure", workers, err)
		}
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	// Serial semantics: an error stops dispatch immediately.
	calls := 0
	err := Run(1, 100, func(i int) error {
		calls++
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (dispatch stops at first error)", calls)
	}
}

func TestRunErrorStopsDispatchConcurrent(t *testing.T) {
	// With unit 0 failing before any other unit is claimed, far fewer
	// than n units may start; at minimum the pool must not run all of
	// them after the failure is recorded. The gate channel holds the
	// other workers until the failure is in place, making the assertion
	// deterministic.
	gate := make(chan struct{})
	var calls atomic.Int64
	err := Run(4, 1000, func(i int) error {
		if i == 0 {
			defer close(gate)
			return errors.New("early failure")
		}
		<-gate
		calls.Add(1)
		return nil
	})
	if err == nil || err.Error() != "early failure" {
		t.Fatalf("err = %v", err)
	}
	// Only units claimed before the failure was recorded ran: at most
	// one per other worker.
	if got := calls.Load(); got > 3 {
		t.Fatalf("%d units ran after failure, want <= 3", got)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const workers = 3
	var cur, max atomic.Int64
	if err := Run(workers, 200, func(int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if max.Load() > workers {
		t.Fatalf("observed %d concurrent units, want <= %d", max.Load(), workers)
	}
}

func TestRunScratchAllUnits(t *testing.T) {
	type scratch struct{ hits int }
	for _, workers := range []int{0, 1, 2, 7, 64} {
		var made atomic.Int64
		out := make([]int, 100)
		err := RunScratch(workers, len(out), func() *scratch {
			made.Add(1)
			return &scratch{}
		}, func(i int, s *scratch) error {
			if s == nil {
				return fmt.Errorf("unit %d: nil scratch", i)
			}
			s.hits++
			out[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: unit %d not executed (slot=%d)", workers, i, v)
			}
		}
		want := int64(workers)
		if workers <= 0 {
			want = int64(runtime.GOMAXPROCS(0))
		}
		if want > int64(len(out)) {
			want = int64(len(out))
		}
		if made.Load() != want {
			t.Fatalf("workers=%d: newScratch called %d times, want %d", workers, made.Load(), want)
		}
	}
}

func TestRunScratchSerialReusesOneScratch(t *testing.T) {
	type scratch struct{ hits int }
	var only *scratch
	err := RunScratch(1, 50, func() *scratch {
		only = &scratch{}
		return only
	}, func(i int, s *scratch) error {
		if s != only {
			return fmt.Errorf("unit %d: got a different scratch", i)
		}
		s.hits++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if only.hits != 50 {
		t.Fatalf("scratch served %d units, want 50", only.hits)
	}
}

func TestRunScratchErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	err := RunScratch(4, 100, func() int { return 0 }, func(i int, _ int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v, want %v", err, sentinel)
	}
}
