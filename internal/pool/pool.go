// Package pool provides the bounded worker pool that parallelizes the
// embarrassingly parallel simulation units of this repository — the
// controlled study's per-(user, task) testcase sequences and the
// Internet study's per-host client lifecycles. Units are identified by
// index and callers write each unit's output into a pre-allocated slot,
// so result ordering is fully determined by the unit list and never by
// goroutine scheduling.
package pool

import (
	"runtime"
	"sync"
)

// Run executes fn(0) … fn(n-1) using at most workers concurrent
// goroutines and returns the first error, preferring the lowest-index
// failure so error reporting is deterministic under concurrency.
//
// workers <= 0 selects runtime.GOMAXPROCS(0). workers is clamped to n.
// With one worker, units run on the calling goroutine in index order —
// exactly a plain loop, with a plain loop's error semantics. With more,
// units are dispatched in index order to free workers; after the first
// failure no new units start, but units already running finish (their
// slot writes stay consistent).
func Run(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	// claim hands out the next unit index, or reports that dispatch is
	// over (all units claimed, or a unit has failed).
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunScratch is Run with per-worker scratch state: newScratch is called
// once per worker goroutine (once total in the serial case) and the
// resulting value is passed to every unit that worker executes. It
// exists for unit bodies whose dominant cost is re-allocating identical
// working state per unit — a worker-owned scratch amortizes that across
// the units the worker happens to claim without any locking, and
// because units must already be order-independent, which worker (and
// hence which scratch) serves a unit cannot affect results.
func RunScratch[S any](workers, n int, newScratch func() S, fn func(i int, scratch S) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			if err := fn(i, scratch); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i, scratch); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
