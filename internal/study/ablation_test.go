package study

import (
	"strings"
	"sync"
	"testing"
)

var (
	ablOnce sync.Once
	ablRes  []AblationResult
	ablErr  error
)

func ablations(t *testing.T) map[string]AblationResult {
	t.Helper()
	ablOnce.Do(func() {
		ablRes, ablErr = RunAblations(DefaultConfig())
	})
	if ablErr != nil {
		t.Fatal(ablErr)
	}
	out := make(map[string]AblationResult, len(ablRes))
	for _, r := range ablRes {
		out[r.Name] = r
	}
	return out
}

func TestAblationSetShape(t *testing.T) {
	abls := Ablations()
	if len(abls) != 5 || abls[0].Name != "baseline" {
		t.Fatalf("ablation set: %d entries, first %q", len(abls), abls[0].Name)
	}
	res := ablations(t)
	if len(res) != 5 {
		t.Fatalf("results: %d", len(res))
	}
	table := RenderAblations(ablRes)
	for name := range res {
		if !strings.Contains(table, name) {
			t.Errorf("render missing %q", name)
		}
	}
}

func TestAblationNoJitterCollapsesQuakeNoiseFloor(t *testing.T) {
	res := ablations(t)
	base, abl := res["baseline"], res["no-jitter"]
	if base.QuakeNoiseFloor < 0.15 {
		t.Fatalf("baseline Quake noise floor = %v, fixture broken", base.QuakeNoiseFloor)
	}
	if abl.QuakeNoiseFloor > base.QuakeNoiseFloor/2 {
		t.Errorf("no-jitter Quake noise floor = %v, want well below baseline %v",
			abl.QuakeNoiseFloor, base.QuakeNoiseFloor)
	}
}

func TestAblationNoHabituationShrinksFrogEffect(t *testing.T) {
	res := ablations(t)
	base, abl := res["baseline"], res["no-habituation"]
	if !base.FrogOK || !abl.FrogOK {
		t.Skip("insufficient frog pairs in one variant")
	}
	if abl.FrogDiff >= base.FrogDiff {
		t.Errorf("no-habituation frog diff = %v, want below baseline %v", abl.FrogDiff, base.FrogDiff)
	}
}

func TestAblationNoFluencyFloorSmearsPPTCliff(t *testing.T) {
	res := ablations(t)
	base, abl := res["baseline"], res["no-fluency-floor"]
	if !base.PPTCPUC05OK || !abl.PPTCPUC05OK {
		t.Fatal("PPT c05 unavailable")
	}
	if abl.PPTCPUC05 >= base.PPTCPUC05*0.75 {
		t.Errorf("no-fluency-floor PPT c05 = %v, want well below baseline %v",
			abl.PPTCPUC05, base.PPTCPUC05)
	}
}

func TestAblationNoHotPageDefenseBreaksWordImmunity(t *testing.T) {
	res := ablations(t)
	base, abl := res["baseline"], res["no-hot-page-defense"]
	if base.WordMemFd > 0.06 {
		t.Fatalf("baseline Word memory f_d = %v, fixture broken", base.WordMemFd)
	}
	if abl.WordMemFd < 0.15 {
		t.Errorf("no-hot-page-defense Word memory f_d = %v, immunity should break", abl.WordMemFd)
	}
}

func TestAblationsDoNotLeakIntoEachOther(t *testing.T) {
	// Running the ablation set must leave a fresh default study
	// unaffected (the configure functions mutate copies).
	ablations(t)
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1056 {
		t.Fatalf("post-ablation default study runs = %d", len(res.Runs))
	}
}
