// Package study reproduces the paper's controlled study (§3): a
// population of users each performs the four tasks for 16 minutes while
// the UUCS client runs the eight Figure 8 testcases per task in random
// order, and the resulting run records are reduced to every figure and
// table of the paper's results section.
package study

import (
	"fmt"

	"uucs/internal/analysis"
	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Config parameterizes a controlled study.
type Config struct {
	// Users is the number of participants (the paper had 33).
	Users int
	// Seed makes the whole study deterministic.
	Seed uint64
	// Engine runs the testcases; nil selects the default study machine.
	Engine *core.Engine
	// Population parameterizes the synthetic participants.
	Population comfort.PopulationParams
	// AppFactory builds the foreground model per task; nil selects the
	// calibrated defaults (apps.New). Ablations override it.
	AppFactory func(testcase.Task) (apps.App, error)
}

// DefaultConfig mirrors the paper's controlled study.
func DefaultConfig() Config {
	return Config{
		Users:      33,
		Seed:       2004, // HPDC 2004
		Engine:     core.NewEngine(),
		Population: comfort.DefaultPopulation(),
	}
}

// Results carries everything the analysis needs.
type Results struct {
	Config Config
	Users  []*comfort.User
	Runs   []*core.Run
	DB     *analysis.DB
}

// UserByID indexes the participants for the Figure 17 analysis.
func (r *Results) UserByID() map[int]*comfort.User {
	out := make(map[int]*comfort.User, len(r.Users))
	for _, u := range r.Users {
		out[u.ID] = u
	}
	return out
}

// Run executes the controlled study: every user runs every task's eight
// testcases in a per-user random order, exactly as in the paper ("They
// are run in a random order for each 16-minute task").
func Run(cfg Config) (*Results, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("study: need at least one user")
	}
	engine := cfg.Engine
	if engine == nil {
		engine = core.NewEngine()
	}
	users, err := comfort.SamplePopulation(cfg.Users, cfg.Population, cfg.Seed)
	if err != nil {
		return nil, err
	}
	suites, err := testcase.ControlledSuiteAll()
	if err != nil {
		return nil, err
	}
	orderRng := stats.NewStream(cfg.Seed ^ 0xa5a5a5a5)
	res := &Results{Config: cfg, Users: users}
	appFactory := cfg.AppFactory
	if appFactory == nil {
		appFactory = apps.New
	}
	for _, u := range users {
		for _, task := range testcase.Tasks() {
			app, err := appFactory(task)
			if err != nil {
				return nil, err
			}
			suite := suites[task]
			order := orderRng.Perm(len(suite))
			for _, idx := range order {
				tc := suite[idx]
				seed := runSeed(cfg.Seed, u.ID, task, idx)
				run, err := engine.Execute(tc, app, u, seed)
				if err != nil {
					return nil, fmt.Errorf("study: user %d task %s testcase %d: %w", u.ID, task, idx, err)
				}
				res.Runs = append(res.Runs, run)
			}
		}
	}
	res.DB = analysis.NewDB(res.Runs)
	return res, nil
}

// runSeed derives a stable per-run seed.
func runSeed(seed uint64, user int, task testcase.Task, idx int) uint64 {
	h := seed
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	mix(uint64(user) + 1)
	for _, b := range []byte(task) {
		mix(uint64(b))
	}
	mix(uint64(idx) + 17)
	return h
}
