// Package study reproduces the paper's controlled study (§3): a
// population of users each performs the four tasks for 16 minutes while
// the UUCS client runs the eight Figure 8 testcases per task in random
// order, and the resulting run records are reduced to every figure and
// table of the paper's results section.
package study

import (
	"fmt"

	"uucs/internal/analysis"
	"uucs/internal/apps"
	"uucs/internal/comfort"
	"uucs/internal/core"
	"uucs/internal/pool"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Config parameterizes a controlled study.
type Config struct {
	// Users is the number of participants (the paper had 33).
	Users int
	// Seed makes the whole study deterministic.
	Seed uint64
	// Engine runs the testcases; nil selects the default study machine.
	Engine *core.Engine
	// Population parameterizes the synthetic participants.
	Population comfort.PopulationParams
	// AppFactory builds the foreground model per task; nil selects the
	// calibrated defaults (apps.New). Ablations override it.
	AppFactory func(testcase.Task) (apps.App, error)
	// Workers bounds the number of concurrently executing (user, task)
	// units; 0 selects GOMAXPROCS and 1 reproduces the serial path.
	// Results are bit-identical for every value: each run's seed and
	// each unit's testcase order derive from (Seed, user, task), and
	// runs land in pre-indexed result slots.
	Workers int
}

// DefaultConfig mirrors the paper's controlled study.
func DefaultConfig() Config {
	return Config{
		Users:      33,
		Seed:       2004, // HPDC 2004
		Engine:     core.NewEngine(),
		Population: comfort.DefaultPopulation(),
	}
}

// Results carries everything the analysis needs.
type Results struct {
	Config Config
	Users  []*comfort.User
	Runs   []*core.Run
	DB     *analysis.DB
}

// UserByID indexes the participants for the Figure 17 analysis.
func (r *Results) UserByID() map[int]*comfort.User {
	out := make(map[int]*comfort.User, len(r.Users))
	for _, u := range r.Users {
		out[u.ID] = u
	}
	return out
}

// unit is one schedulable piece of the study: one user performing one
// task's testcase suite in that user's random order. Units are fully
// independent — per-run seeds and the testcase order derive from the
// study seed and the unit's identity — which is what lets the scheduler
// run them in any order or concurrently without changing any result.
type unit struct {
	user  *comfort.User
	task  testcase.Task
	order []int
	// base indexes the unit's first run within Results.Runs.
	base int
}

// Run executes the controlled study: every user runs every task's eight
// testcases in a per-user random order, exactly as in the paper ("They
// are run in a random order for each 16-minute task"). Units of one
// user and task fan out across cfg.Workers goroutines; results are
// bit-identical to the serial path regardless of worker count.
func Run(cfg Config) (*Results, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("study: need at least one user")
	}
	engine := cfg.Engine
	if engine == nil {
		engine = core.NewEngine()
	}
	users, err := comfort.SamplePopulation(cfg.Users, cfg.Population, cfg.Seed)
	if err != nil {
		return nil, err
	}
	suites, err := testcase.ControlledSuiteAll()
	if err != nil {
		return nil, err
	}
	res := &Results{Config: cfg, Users: users}
	appFactory := cfg.AppFactory
	if appFactory == nil {
		appFactory = apps.New
	}

	// Lay out the unit list and the result slots up front; the schedule
	// then has no say in output ordering.
	units := make([]unit, 0, len(users)*len(testcase.Tasks()))
	total := 0
	for _, u := range users {
		for _, task := range testcase.Tasks() {
			suite := suites[task]
			order := stats.NewStream(orderSeed(cfg.Seed, u.ID, task)).Perm(len(suite))
			units = append(units, unit{user: u, task: task, order: order, base: total})
			total += len(suite)
		}
	}
	runs := make([]*core.Run, total)
	// Each worker owns one Scratch: runs are bit-identical regardless of
	// which scratch executes them, so reuse across the units a worker
	// claims is free of both locking and determinism hazards.
	err = pool.RunScratch(cfg.Workers, len(units), core.NewScratch, func(i int, scratch *core.Scratch) error {
		un := units[i]
		app, err := appFactory(un.task)
		if err != nil {
			return err
		}
		suite := suites[un.task]
		for j, idx := range un.order {
			tc := suite[idx]
			seed := runSeed(cfg.Seed, un.user.ID, un.task, idx)
			run, err := engine.ExecuteScratch(scratch, tc, app, un.user, seed)
			if err != nil {
				return fmt.Errorf("study: user %d task %s testcase %d: %w", un.user.ID, un.task, idx, err)
			}
			runs[un.base+j] = run
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Runs = runs
	res.DB = analysis.NewDB(res.Runs)
	return res, nil
}

// seedMix folds a unit identity into a seed with an FNV-style mix.
func seedMix(h uint64, user int, task testcase.Task) uint64 {
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	mix(uint64(user) + 1)
	for _, b := range []byte(task) {
		mix(uint64(b))
	}
	return h
}

// orderSeed derives the testcase-order seed for one user performing one
// task. Deriving it from the identity — rather than drawing permutations
// from one shared stream, as the serial implementation used to — keeps a
// user's schedule stable no matter how many users run or in what order.
func orderSeed(seed uint64, user int, task testcase.Task) uint64 {
	return seedMix(seed^0xa5a5a5a5, user, task)
}

// runSeed derives a stable per-run seed.
func runSeed(seed uint64, user int, task testcase.Task, idx int) uint64 {
	h := seedMix(seed, user, task)
	h ^= uint64(idx) + 17
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}
