package study

import (
	"fmt"
	"strings"

	"uucs/internal/analysis"
	"uucs/internal/apps"
	"uucs/internal/hostsim"
	"uucs/internal/pool"
	"uucs/internal/testcase"
)

// Ablations rerun the controlled study with one model mechanism removed
// at a time, demonstrating that each is load-bearing for a specific
// paper finding (DESIGN.md motivates them):
//
//   - no-jitter: background OS activity and game frame spikes off. The
//     paper's noise floor (blank-testcase discomfort, Figure 9) should
//     collapse for Quake; IE keeps its network component.
//   - no-habituation: the frog-in-the-pot term off. The ramp-vs-step
//     difference (§3.3.5) should shrink toward zero.
//   - no-fluency-floor: the universal direct-manipulation threshold off;
//     Powerpoint's knife-edge CPU CDF (c_0.05 = 1.00) should smear
//     toward low levels.
//   - no-hot-page-defense: the memory exerciser displaces hot pages too.
//     Word's memory immunity (Figure 14's 0.00) should break.
type Ablation struct {
	// Name identifies the removed mechanism ("baseline" for none).
	Name string
	// Configure mutates a study config.
	Configure func(*Config)
}

// Ablations returns the standard ablation set, baseline first.
func Ablations() []Ablation {
	return []Ablation{
		{Name: "baseline", Configure: func(*Config) {}},
		{Name: "no-jitter", Configure: func(cfg *Config) {
			// Remove both jitter sources: OS background activity and the
			// game's internal frame spikes. Quake's blank-testcase noise
			// floor (paper: 0.30) should collapse.
			cfg.Engine.Noise = hostsim.NoNoise()
			cfg.AppFactory = func(task testcase.Task) (apps.App, error) {
				if task != testcase.Quake {
					return apps.New(task)
				}
				p := apps.DefaultQuakeParams()
				p.SpikeProb = 0
				return apps.NewQuake(p), nil
			}
		}},
		{Name: "no-habituation", Configure: func(cfg *Config) {
			cfg.Population.HabituationGain.Median = 1e-9
		}},
		{Name: "no-fluency-floor", Configure: func(cfg *Config) {
			// Fluency judged purely by per-user tolerance instead of the
			// universal break-at-~2x-normal threshold; the Powerpoint CPU
			// cliff (paper: c_0.05 = 1.00) should smear downward.
			cfg.Population.FlowMargin = 1.0
		}},
		{Name: "no-hot-page-defense", Configure: func(cfg *Config) {
			cfg.Engine.Machine.NoHotPageDefense = true
		}},
	}
}

// AblationResult summarizes the metrics each ablation targets.
type AblationResult struct {
	Name string
	// QuakeNoiseFloor is the blank-testcase discomfort probability in
	// Quake (paper: 0.30; collapses under no-noise).
	QuakeNoiseFloor float64
	// OfficeNoiseFloor is the blank-testcase discomfort probability over
	// Word and Powerpoint (paper: 0.00; explodes without
	// acclimatization).
	OfficeNoiseFloor float64
	// WordMemFd is Word's memory f_d (paper: 0.00; breaks without the
	// hot-page defense).
	WordMemFd float64
	// FrogDiff is the Powerpoint/CPU ramp-minus-step difference (paper:
	// +0.22; shrinks without habituation).
	FrogDiff float64
	// FrogOK reports whether enough pairs existed.
	FrogOK bool
	// PPTCPUC05 is the Powerpoint CPU c_0.05 (paper: 1.00; smears
	// downward without the fluency floor).
	PPTCPUC05 float64
	// PPTCPUC05OK reports whether the percentile was reachable.
	PPTCPUC05OK bool
}

// RunAblations executes the study once per ablation and collects the
// targeted metrics. Ablations are independent full studies, so they fan
// out across base.Workers goroutines (each inner study inherits the
// same worker budget); results keep the Ablations() order.
func RunAblations(base Config) ([]AblationResult, error) {
	abls := Ablations()
	out := make([]AblationResult, len(abls))
	err := pool.Run(base.Workers, len(abls), func(i int) error {
		ab := abls[i]
		cfg := base
		// Deep-copy the engine so ablations do not leak into each other.
		engine := *base.Engine
		cfg.Engine = &engine
		ab.Configure(&cfg)
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("study: ablation %s: %w", ab.Name, err)
		}
		out[i] = summarizeAblation(ab.Name, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func summarizeAblation(name string, res *Results) AblationResult {
	ar := AblationResult{Name: name}
	for _, row := range res.DB.Breakdown() {
		switch row.Task {
		case testcase.Quake:
			ar.QuakeNoiseFloor = row.NoiseFloor()
		case testcase.Word, testcase.Powerpoint:
			// Average the two office tasks.
			ar.OfficeNoiseFloor += row.NoiseFloor() / 2
		}
	}
	table := res.DB.MetricsTable()
	if m, err := analysis.Cell(table, testcase.Word, testcase.Memory); err == nil {
		ar.WordMemFd = m.Fd
	}
	if m, err := analysis.Cell(table, testcase.Powerpoint, testcase.CPU); err == nil && m.HasC05 {
		ar.PPTCPUC05 = m.C05
		ar.PPTCPUC05OK = true
	}
	if fr, err := res.DB.FrogInPot(testcase.Powerpoint, testcase.CPU); err == nil && fr.Pairs >= 5 {
		ar.FrogDiff = fr.Result.Diff
		ar.FrogOK = true
	}
	return ar
}

// RenderAblations renders the ablation table.
func RenderAblations(results []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablations: each removed mechanism breaks one paper finding.\n")
	fmt.Fprintf(&b, "%-22s %12s %13s %10s %9s %10s\n",
		"ablation", "quake-noise", "office-noise", "word-mem", "frogdiff", "ppt-c05")
	for _, r := range results {
		frog := "n/a"
		if r.FrogOK {
			frog = fmt.Sprintf("%+.3f", r.FrogDiff)
		}
		c05 := "n/a"
		if r.PPTCPUC05OK {
			c05 = fmt.Sprintf("%.2f", r.PPTCPUC05)
		}
		fmt.Fprintf(&b, "%-22s %12.2f %13.2f %10.2f %9s %10s\n",
			r.Name, r.QuakeNoiseFloor, r.OfficeNoiseFloor, r.WordMemFd, frog, c05)
	}
	return b.String()
}
