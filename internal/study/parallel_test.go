package study

import (
	"errors"
	"reflect"
	"testing"

	"uucs/internal/apps"
	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// TestStudyParallelMatchesSerial is the determinism contract of the
// parallel scheduler: for several seeds, an 8-worker study must produce
// run-for-run identical results — outcomes, offsets, levels, ordering —
// and identical rendered figure tables, compared to the serial path.
func TestStudyParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Users = 12 // full task × testcase coverage at test-friendly cost

		cfg.Workers = 1
		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %#x serial: %v", seed, err)
		}
		cfg.Workers = 8
		parallel, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %#x parallel: %v", seed, err)
		}

		if len(serial.Runs) != len(parallel.Runs) {
			t.Fatalf("seed %#x: run counts differ: %d vs %d", seed, len(serial.Runs), len(parallel.Runs))
		}
		for i := range serial.Runs {
			if !reflect.DeepEqual(serial.Runs[i], parallel.Runs[i]) {
				t.Fatalf("seed %#x: run %d differs between serial and parallel\nserial:   %v\nparallel: %v",
					seed, i, serial.Runs[i], parallel.Runs[i])
			}
		}
		// The paper-shape tables must match to the byte.
		for _, fig := range []string{"9", "14", "15", "16"} {
			a, err := serial.Figure(fig)
			if err != nil {
				t.Fatalf("seed %#x figure %s: %v", seed, fig, err)
			}
			b, err := parallel.Figure(fig)
			if err != nil {
				t.Fatalf("seed %#x figure %s: %v", seed, fig, err)
			}
			if a != b {
				t.Errorf("seed %#x: figure %s differs between serial and parallel:\n--- serial\n%s\n--- parallel\n%s",
					seed, fig, a, b)
			}
		}
	}
}

// TestOrderSeedPinnedPermutation pins one user's task schedules: they
// derive from (Seed, user, task) alone, so they must never shift when
// the population size, scheduling, or the surrounding code changes.
func TestOrderSeedPinnedPermutation(t *testing.T) {
	want := map[testcase.Task][]int{
		testcase.Word:       {4, 5, 7, 1, 0, 2, 6, 3},
		testcase.Powerpoint: {0, 6, 7, 5, 1, 2, 3, 4},
		testcase.IE:         {2, 0, 5, 1, 6, 3, 4, 7},
		testcase.Quake:      {0, 7, 6, 1, 4, 5, 2, 3},
	}
	for task, w := range want {
		got := stats.NewStream(orderSeed(2004, 5, task)).Perm(8)
		if !reflect.DeepEqual(got, w) {
			t.Errorf("user 5 %s schedule = %v, want pinned %v", task, got, w)
		}
	}
}

// TestOrderSeedIndependentOfPopulation asserts the fix for the shared
// orderRng coupling: a user's schedule is the same whether the study has
// 1 user or 33.
func TestOrderSeedIndependentOfPopulation(t *testing.T) {
	small := DefaultConfig()
	small.Users = 3
	big := DefaultConfig()
	big.Users = 9

	a, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	// The first 3 users' runs (3 users × 4 tasks × 8 testcases) must be
	// identical records in identical order.
	n := 3 * 4 * 8
	if len(a.Runs) != n || len(b.Runs) < n {
		t.Fatalf("run counts: %d and %d, want %d and >= %d", len(a.Runs), len(b.Runs), n, n)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a.Runs[i], b.Runs[i]) {
			t.Fatalf("run %d depends on population size:\nsmall: %v\nbig:   %v", i, a.Runs[i], b.Runs[i])
		}
	}
}

// TestStudyWorkersErrorPropagation: a failing unit must surface its
// error and fail the whole study, serial or parallel.
func TestStudyWorkersErrorPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Users = 4
		cfg.Workers = workers
		cfg.AppFactory = func(task testcase.Task) (apps.App, error) {
			return nil, errors.New("factory exploded")
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("workers=%d: factory error not propagated", workers)
		}
	}
}
