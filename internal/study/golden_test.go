package study

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden figure snapshots in testdata/")

// goldenFigures maps the snapshotted figures to their files. These are
// the paper-shape tables (run breakdown, f_d, c_0.05, c_a); any change
// to the models, the seeds, or the scheduler that shifts them must be
// deliberate — rerun with -update and review the diff.
var goldenFigures = map[string]string{
	"9":    "fig09_breakdown.golden",
	"10":   "fig10_cpu_cdf.golden",
	"11":   "fig11_mem_cdf.golden",
	"12":   "fig12_disk_cdf.golden",
	"13":   "fig13_sensitivity.golden",
	"14":   "fig14_fd.golden",
	"15":   "fig15_c005.golden",
	"16":   "fig16_ca.golden",
	"17":   "fig17_skill.golden",
	"18":   "fig18_grid.golden",
	"frog": "frog_ramp_step.golden",
	"km":   "km_survival.golden",
}

// TestGoldenFiguresCoverAllIDs keeps the snapshot set in lock-step with
// the report: adding a figure without a golden is a test failure, not a
// silent gap.
func TestGoldenFiguresCoverAllIDs(t *testing.T) {
	for _, id := range FigureIDs() {
		if _, ok := goldenFigures[id]; !ok {
			t.Errorf("figure %q has no golden snapshot", id)
		}
	}
	if len(goldenFigures) != len(FigureIDs()) {
		t.Errorf("%d goldens for %d figures", len(goldenFigures), len(FigureIDs()))
	}
}

// TestGoldenFigures diffs the default-seed study's rendered tables
// against the snapshots in testdata/.
func TestGoldenFigures(t *testing.T) {
	res := fixture(t)
	for fig, file := range goldenFigures {
		fig, file := fig, file
		t.Run("fig"+fig, func(t *testing.T) {
			got, err := res.Figure(fig)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", file)
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run `go test ./internal/study -run TestGoldenFigures -update`): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("figure %s drifted from golden %s.\n--- got\n%s\n--- want\n%s\nIf the change is intentional, rerun with -update.",
					fig, path, got, want)
			}
		})
	}
}
