package study

import (
	"fmt"
	"strings"

	"uucs/internal/analysis"
	"uucs/internal/testcase"
)

// This file renders the study results as the paper's figures and tables,
// in plain text. Figure identifiers follow the paper: "9", "10", "11",
// "12", "13", "14", "15", "16", "17", "18", and "frog" for the §3.3.5
// ramp-vs-step analysis.

// FigureIDs lists the renderable figures in paper order, plus the
// Kaplan-Meier extension ("km").
func FigureIDs() []string {
	return []string{"9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "frog", "km"}
}

// Figure renders one figure by identifier.
func (r *Results) Figure(id string) (string, error) {
	switch id {
	case "9":
		return r.RenderBreakdown(), nil
	case "10":
		return r.RenderResourceCDF(testcase.CPU), nil
	case "11":
		return r.RenderResourceCDF(testcase.Memory), nil
	case "12":
		return r.RenderResourceCDF(testcase.Disk), nil
	case "13":
		return r.RenderSensitivity(), nil
	case "14":
		return r.RenderFd(), nil
	case "15":
		return r.RenderC05(), nil
	case "16":
		return r.RenderCa(), nil
	case "17":
		return r.RenderSkill(), nil
	case "18":
		return r.RenderGrid(), nil
	case "frog":
		return r.RenderFrog(), nil
	case "km":
		return r.RenderKM(), nil
	default:
		return "", fmt.Errorf("study: unknown figure %q (want one of %v)", id, FigureIDs())
	}
}

// RenderAll renders every figure.
func (r *Results) RenderAll() string {
	var b strings.Builder
	for _, id := range FigureIDs() {
		s, err := r.Figure(id)
		if err != nil {
			continue
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String()
}

// RenderBreakdown renders Figure 9.
func (r *Results) RenderBreakdown() string {
	var b strings.Builder
	b.WriteString("Figure 9. Breakdown of runs.\n")
	for _, row := range r.DB.Breakdown() {
		label := "Total"
		if row.Task != "" {
			label = testcase.TaskLabel(row.Task)
		}
		fmt.Fprintf(&b, "%-18s\n", label)
		fmt.Fprintf(&b, "  %-14s %9s %6s\n", "", "Non-Blank", "Blank")
		fmt.Fprintf(&b, "  %-14s %9d %6d\n", "Discomforted", row.NonBlankDiscomforted, row.BlankDiscomforted)
		fmt.Fprintf(&b, "  %-14s %9d %6d\n", "Exhausted", row.NonBlankExhausted, row.BlankExhausted)
		fmt.Fprintf(&b, "  Prob of discomfort from blank testcase %.2f\n", row.NoiseFloor())
	}
	return b.String()
}

// figureNumber maps a resource to its aggregated-CDF figure number.
func figureNumber(res testcase.Resource) int {
	switch res {
	case testcase.CPU:
		return 10
	case testcase.Memory:
		return 11
	default:
		return 12
	}
}

// RenderResourceCDF renders Figure 10, 11 or 12.
func (r *Results) RenderResourceCDF(res testcase.Resource) string {
	c := r.DB.ResourceCDF(res)
	name := string(res)
	if name != "" {
		name = strings.ToUpper(name[:1]) + name[1:]
	}
	title := fmt.Sprintf("Figure %d. CDF of discomfort for %s.", figureNumber(res), name)
	return c.Render(title, 60, 12, 0)
}

// RenderGrid renders the Figure 18 grid: a CDF for every context and
// resource pair.
func (r *Results) RenderGrid() string {
	var b strings.Builder
	b.WriteString("Figure 18. CDFs for each context and resource pair.\n")
	for _, task := range testcase.Tasks() {
		for _, res := range testcase.Resources() {
			c := r.DB.TaskResourceCDF(task, res)
			title := fmt.Sprintf("%s / %s", testcase.TaskLabel(task), res)
			b.WriteString(c.Render(title, 48, 8, 0))
		}
	}
	return b.String()
}

// renderMetricHeader writes the shared table header.
func renderMetricHeader(b *strings.Builder) {
	fmt.Fprintf(b, "%-12s %8s %8s %8s\n", "", "CPU", "Memory", "Disk")
}

// rowLabel names a metrics row.
func rowLabel(task testcase.Task) string {
	if task == "" {
		return "Total"
	}
	return testcase.TaskLabel(task)
}

// RenderFd renders Figure 14 (f_d by task and resource).
func (r *Results) RenderFd() string {
	table := r.DB.MetricsTable()
	var b strings.Builder
	b.WriteString("Figure 14. f_d by task and resource.\n")
	renderMetricHeader(&b)
	for _, task := range append(taskRows(), testcase.Task("")) {
		fmt.Fprintf(&b, "%-12s", rowLabel(task))
		for _, res := range testcase.Resources() {
			m, err := analysis.Cell(table, task, res)
			if err != nil {
				fmt.Fprintf(&b, " %8s", "?")
				continue
			}
			fmt.Fprintf(&b, " %8.2f", m.Fd)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderC05 renders Figure 15 (c_0.05 by task and resource; "*" marks
// insufficient information).
func (r *Results) RenderC05() string {
	table := r.DB.MetricsTable()
	var b strings.Builder
	b.WriteString("Figure 15. c_0.05 by task and resource (*: insufficient information).\n")
	renderMetricHeader(&b)
	for _, task := range append(taskRows(), testcase.Task("")) {
		fmt.Fprintf(&b, "%-12s", rowLabel(task))
		for _, res := range testcase.Resources() {
			m, err := analysis.Cell(table, task, res)
			if err != nil || !m.HasC05 {
				fmt.Fprintf(&b, " %8s", "*")
				continue
			}
			fmt.Fprintf(&b, " %8.2f", m.C05)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCa renders Figure 16 (c_a with 95% confidence intervals).
func (r *Results) RenderCa() string {
	table := r.DB.MetricsTable()
	var b strings.Builder
	b.WriteString("Figure 16. c_a by task and resource, with 95% CIs (*: insufficient information).\n")
	fmt.Fprintf(&b, "%-12s %20s %20s %20s\n", "", "CPU", "Memory", "Disk")
	for _, task := range append(taskRows(), testcase.Task("")) {
		fmt.Fprintf(&b, "%-12s", rowLabel(task))
		for _, res := range testcase.Resources() {
			m, err := analysis.Cell(table, task, res)
			if err != nil || !m.HasCa {
				fmt.Fprintf(&b, " %20s", "*")
				continue
			}
			fmt.Fprintf(&b, " %6.2f (%5.2f,%5.2f)", m.Ca, m.CaLo, m.CaHi)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderSensitivity renders Figure 13.
func (r *Results) RenderSensitivity() string {
	table := r.DB.MetricsTable()
	letters := analysis.SensitivityTable(table)
	var b strings.Builder
	b.WriteString("Figure 13. User sensitivity by task and resource (Low, Medium, High).\n")
	renderMetricHeader(&b)
	for _, task := range append(taskRows(), testcase.Task("")) {
		fmt.Fprintf(&b, "%-12s", rowLabel(task))
		for _, res := range testcase.Resources() {
			fmt.Fprintf(&b, " %8s", letters[task][res])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderSkill renders Figure 17 (significant skill-level differences at
// p < 0.05).
func (r *Results) RenderSkill() string {
	diffs := r.DB.SkillDifferences(r.UserByID(), 0.05)
	var b strings.Builder
	b.WriteString("Figure 17. Significant differences based on user-perceived skill level.\n")
	fmt.Fprintf(&b, "%-12s %-8s %-32s %8s %8s\n", "App", "Rsrc", "Rating", "p", "Diff")
	for _, d := range diffs {
		fmt.Fprintf(&b, "%-12s %-8s %-32s %8.3f %8.3f\n",
			testcase.TaskLabel(d.Task), d.Resource, d.Rating(), d.Result.P, d.Result.Diff)
	}
	if len(diffs) == 0 {
		b.WriteString("(no significant differences at p < 0.05)\n")
	}
	return b.String()
}

// RenderFrog renders the §3.3.5 ramp-vs-step analysis for every
// task/resource pair with enough data, leading with the paper's
// Powerpoint/CPU case.
func (r *Results) RenderFrog() string {
	var b strings.Builder
	b.WriteString("Frog-in-the-pot (§3.3.5): ramp vs step tolerated levels.\n")
	fmt.Fprintf(&b, "%-12s %-8s %6s %10s %8s %8s\n", "App", "Rsrc", "Pairs", "FracRamp>", "Diff", "p")
	for _, task := range taskRows() {
		for _, res := range testcase.Resources() {
			fr, err := r.DB.FrogInPot(task, res)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "%-12s %-8s %6d %10.2f %8.3f %8.4f\n",
				testcase.TaskLabel(task), res, fr.Pairs, fr.FracHigherInRamp, fr.Result.Diff, fr.Result.P)
		}
	}
	return b.String()
}

// RenderKM renders the Kaplan-Meier extension: the censoring-corrected
// discomfort estimate per resource next to the naive CDF's c_0.05.
// Exhausted runs are right-censored observations of the user's true
// tolerance; the KM estimator uses them properly instead of letting the
// CDF saturate at f_d.
func (r *Results) RenderKM() string {
	var b strings.Builder
	b.WriteString("Kaplan-Meier extension: censoring-corrected discomfort estimates.\n")
	fmt.Fprintf(&b, "%-8s %10s %8s %12s %12s\n", "resource", "events", "censored", "naive c_05", "KM c_05")
	for _, res := range testcase.Resources() {
		curve, err := r.DB.KMResourceCurve(res)
		if err != nil {
			fmt.Fprintf(&b, "%-8s (no events)\n", res)
			continue
		}
		cdf := r.DB.ResourceCDF(res)
		naive := "*"
		if v, ok := cdf.Percentile(0.05); ok {
			naive = fmt.Sprintf("%.2f", v)
		}
		km := "*"
		if v, ok := analysis.KMC05(curve); ok {
			km = fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(&b, "%-8s %10d %8d %12s %12s\n", res, cdf.DfCount(), cdf.ExCount(), naive, km)
	}
	return b.String()
}

// taskRows returns the tasks in paper row order.
func taskRows() []testcase.Task { return testcase.Tasks() }
