package study

import (
	"strings"
	"sync"
	"testing"

	"uucs/internal/analysis"
	"uucs/internal/testcase"
)

// The full controlled study is deterministic, so run it once and share
// the results across tests.
var (
	once       sync.Once
	fixtureRes *Results
	fixtureErr error
)

func fixture(t *testing.T) *Results {
	t.Helper()
	once.Do(func() {
		fixtureRes, fixtureErr = Run(DefaultConfig())
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureRes
}

func cell(t *testing.T, res *Results, task testcase.Task, r testcase.Resource) analysis.Metrics {
	t.Helper()
	m, err := analysis.Cell(res.DB.MetricsTable(), task, r)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStudyShape(t *testing.T) {
	res := fixture(t)
	if len(res.Users) != 33 {
		t.Fatalf("users = %d", len(res.Users))
	}
	// 33 users x 4 tasks x 8 testcases.
	if len(res.Runs) != 1056 {
		t.Fatalf("runs = %d, want 1056", len(res.Runs))
	}
	blanks := len(res.DB.Filter(analysis.Blank()))
	if blanks != 264 {
		t.Errorf("blank runs = %d, want 264 (2 per task per user)", blanks)
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := fixture(t)
	b, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Runs) != len(b.Runs) {
		t.Fatal("run counts differ")
	}
	for i := range a.Runs {
		if a.Runs[i].Terminated != b.Runs[i].Terminated || a.Runs[i].Offset != b.Runs[i].Offset {
			t.Fatalf("run %d differs between identical studies", i)
		}
	}
}

func TestStudyRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero users accepted")
	}
}

// The following tests assert the paper's headline, seed-robust findings.
// Exact values vary with the population draw (n = 33, as in the study);
// the assertions use generous brackets around the paper's numbers.

func TestNoiseFloorOnlyInIEAndQuake(t *testing.T) {
	res := fixture(t)
	rows := res.DB.Breakdown()
	byTask := make(map[testcase.Task]analysis.Breakdown)
	for _, row := range rows[1:] {
		byTask[row.Task] = row
	}
	// Paper Figure 9: Word 0.00, Powerpoint 0.00, IE 0.22, Quake 0.30.
	if nf := byTask[testcase.Word].NoiseFloor(); nf > 0.05 {
		t.Errorf("Word noise floor = %v, paper found 0.00", nf)
	}
	if nf := byTask[testcase.Powerpoint].NoiseFloor(); nf > 0.08 {
		t.Errorf("Powerpoint noise floor = %v, paper found 0.00", nf)
	}
	if nf := byTask[testcase.IE].NoiseFloor(); nf < 0.05 || nf > 0.40 {
		t.Errorf("IE noise floor = %v, paper found 0.22", nf)
	}
	if nf := byTask[testcase.Quake].NoiseFloor(); nf < 0.15 || nf > 0.50 {
		t.Errorf("Quake noise floor = %v, paper found 0.30", nf)
	}
}

func TestCPUToleranceOrderingAcrossTasks(t *testing.T) {
	res := fixture(t)
	// Paper Figure 16 CPU column: Word 4.35 >> PPT 1.17 ~ IE 1.20 >> Quake 0.64.
	word := cell(t, res, testcase.Word, testcase.CPU)
	ppt := cell(t, res, testcase.Powerpoint, testcase.CPU)
	ie := cell(t, res, testcase.IE, testcase.CPU)
	quake := cell(t, res, testcase.Quake, testcase.CPU)
	for name, m := range map[string]analysis.Metrics{"word": word, "ppt": ppt, "ie": ie, "quake": quake} {
		if !m.HasCa {
			t.Fatalf("%s CPU has no c_a", name)
		}
	}
	if !(word.Ca > 2*ppt.Ca && word.Ca > 2*ie.Ca) {
		t.Errorf("Word CPU tolerance (%v) should dwarf PPT (%v) and IE (%v)", word.Ca, ppt.Ca, ie.Ca)
	}
	if !(quake.Ca < ppt.Ca && quake.Ca < ie.Ca) {
		t.Errorf("Quake (%v) should be the most CPU-sensitive (ppt %v, ie %v)", quake.Ca, ppt.Ca, ie.Ca)
	}
	if word.Ca < 3.0 || word.Ca > 6.5 {
		t.Errorf("Word CPU c_a = %v, paper found 4.35", word.Ca)
	}
	if quake.Ca < 0.25 || quake.Ca > 1.0 {
		t.Errorf("Quake CPU c_a = %v, paper found 0.64", quake.Ca)
	}
	if ppt.Ca < 0.8 || ppt.Ca > 1.6 {
		t.Errorf("PPT CPU c_a = %v, paper found 1.17", ppt.Ca)
	}
}

func TestWordMemoryImmunity(t *testing.T) {
	res := fixture(t)
	// Paper: "* indicates insufficient information" — no Word memory
	// discomfort was recorded at all.
	m := cell(t, res, testcase.Word, testcase.Memory)
	if m.Fd > 0.06 {
		t.Errorf("Word memory f_d = %v, paper found 0.00", m.Fd)
	}
}

func TestMemorySensitivityOrdering(t *testing.T) {
	res := fixture(t)
	// Paper Figure 14 memory column: Word 0.00 < PPT 0.07 < IE 0.30 < Quake 0.45.
	word := cell(t, res, testcase.Word, testcase.Memory).Fd
	ppt := cell(t, res, testcase.Powerpoint, testcase.Memory).Fd
	ie := cell(t, res, testcase.IE, testcase.Memory).Fd
	quake := cell(t, res, testcase.Quake, testcase.Memory).Fd
	if !(word <= ppt && ppt < ie && ie <= quake) {
		t.Errorf("memory f_d ordering violated: word=%v ppt=%v ie=%v quake=%v", word, ppt, ie, quake)
	}
	if quake < 0.25 || quake > 0.70 {
		t.Errorf("Quake memory f_d = %v, paper found 0.45", quake)
	}
}

func TestIEIsMostDiskSensitive(t *testing.T) {
	res := fixture(t)
	// Paper Figure 14 disk column: IE 0.61 dominates Word 0.10, PPT 0.17,
	// Quake 0.29.
	ie := cell(t, res, testcase.IE, testcase.Disk).Fd
	word := cell(t, res, testcase.Word, testcase.Disk).Fd
	ppt := cell(t, res, testcase.Powerpoint, testcase.Disk).Fd
	if !(ie > word && ie > ppt) {
		t.Errorf("IE disk f_d (%v) should dominate word (%v) and ppt (%v)", ie, word, ppt)
	}
	if ie < 0.35 || ie > 0.80 {
		t.Errorf("IE disk f_d = %v, paper found 0.61", ie)
	}
}

func TestAggregateAdviceHolds(t *testing.T) {
	res := fixture(t)
	// Paper §5: "Borrow disk and memory aggressively, CPU less so." In
	// aggregate, CPU provokes discomfort in the largest fraction of runs.
	table := res.DB.MetricsTable()
	cpu, _ := analysis.Cell(table, "", testcase.CPU)
	mem, _ := analysis.Cell(table, "", testcase.Memory)
	disk, _ := analysis.Cell(table, "", testcase.Disk)
	if !(cpu.Fd > mem.Fd && cpu.Fd > disk.Fd) {
		t.Errorf("aggregate f_d: cpu=%v mem=%v disk=%v; paper found CPU dominant (0.86 vs 0.21/0.33)",
			cpu.Fd, mem.Fd, disk.Fd)
	}
	// Paper Figure 15 totals: memory and disk support substantial
	// borrowing before 5%% of users react (0.33 and 1.11).
	if mem.HasC05 && mem.C05 < 0.04 {
		t.Errorf("aggregate memory c_05 = %v, implausibly sensitive", mem.C05)
	}
	if disk.HasC05 && disk.C05 < 0.2 {
		t.Errorf("aggregate disk c_05 = %v, implausibly sensitive", disk.C05)
	}
}

func TestFrogInPotPowerpointCPU(t *testing.T) {
	res := fixture(t)
	fr, err := res.DB.FrogInPot(testcase.Powerpoint, testcase.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pairs < 10 {
		t.Fatalf("only %d ramp/step pairs", fr.Pairs)
	}
	// Paper §3.3.5: users tolerated higher levels under the ramp, mean
	// difference 0.22.
	if fr.Result.Diff <= 0 {
		t.Errorf("frog-in-pot diff = %v, paper found +0.22", fr.Result.Diff)
	}
	if fr.FracHigherInRamp < 0.5 {
		t.Errorf("frac tolerating more in ramp = %v, paper found 0.96", fr.FracHigherInRamp)
	}
}

func TestSkillDifferencesExist(t *testing.T) {
	res := fixture(t)
	diffs := res.DB.SkillDifferences(res.UserByID(), 0.05)
	if len(diffs) == 0 {
		t.Fatal("no significant skill differences; paper found six")
	}
	// The paper's largest effects: higher-skill groups tolerate less, so
	// Diff (lower-skill mean minus higher-skill mean) is mostly positive.
	positive := 0
	for _, d := range diffs {
		if d.Result.Diff > 0 {
			positive++
		}
	}
	if positive*2 < len(diffs) {
		t.Errorf("only %d/%d skill differences have the expected sign", positive, len(diffs))
	}
}

func TestDiscomfortLevelsWithinExploredRange(t *testing.T) {
	res := fixture(t)
	suites, err := testcase.ControlledSuiteAll()
	if err != nil {
		t.Fatal(err)
	}
	maxLevel := make(map[testcase.Task]map[testcase.Resource]float64)
	for task, suite := range suites {
		maxLevel[task] = make(map[testcase.Resource]float64)
		for _, tc := range suite {
			for r, f := range tc.Functions {
				if f.Max() > maxLevel[task][r] {
					maxLevel[task][r] = f.Max()
				}
			}
		}
	}
	for _, r := range res.Runs {
		lvl, ok := r.Level()
		if !ok {
			continue
		}
		if lvl < 0 || lvl > maxLevel[r.Task][r.PrimaryResource]+1e-9 {
			t.Fatalf("run %s level %v outside explored range", r.String(), lvl)
		}
		if r.Offset < 0 || r.Offset > 120 {
			t.Fatalf("run %s offset %v outside testcase duration", r.String(), r.Offset)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	res := fixture(t)
	for _, id := range FigureIDs() {
		s, err := res.Figure(id)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(s) < 40 {
			t.Errorf("figure %s suspiciously short: %q", id, s)
		}
	}
	if _, err := res.Figure("99"); err == nil {
		t.Error("unknown figure accepted")
	}
	all := res.RenderAll()
	for _, want := range []string{"Figure 9", "Figure 14", "Figure 15", "Figure 16", "Figure 17", "Figure 18", "Frog"} {
		if !strings.Contains(all, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
}

func TestSensitivityJudgementOnPaperNumbers(t *testing.T) {
	// The Figure 13 rule must reproduce the paper's letters when fed the
	// paper's own Figure 14/15 values.
	paper := []struct {
		task testcase.Task
		res  testcase.Resource
		fd   float64
		c05  float64
		has  bool
		want analysis.Sensitivity
	}{
		{testcase.Word, testcase.CPU, 0.71, 3.06, true, analysis.Low},
		{testcase.Word, testcase.Memory, 0.00, 0, false, analysis.Low},
		{testcase.Word, testcase.Disk, 0.10, 3.28, true, analysis.Low},
		{testcase.Powerpoint, testcase.CPU, 0.95, 1.00, true, analysis.Medium},
		{testcase.Powerpoint, testcase.Memory, 0.07, 0.64, true, analysis.Low},
		{testcase.Powerpoint, testcase.Disk, 0.17, 3.84, true, analysis.Low},
		{testcase.IE, testcase.CPU, 0.75, 0.61, true, analysis.Medium},
		{testcase.IE, testcase.Memory, 0.30, 0.31, true, analysis.Medium},
		{testcase.IE, testcase.Disk, 0.61, 2.02, true, analysis.High},
		{testcase.Quake, testcase.CPU, 0.95, 0.18, true, analysis.High},
		{testcase.Quake, testcase.Memory, 0.45, 0.08, true, analysis.Medium},
		{testcase.Quake, testcase.Disk, 0.29, 0.69, true, analysis.Medium},
	}
	for _, c := range paper {
		m := analysis.Metrics{Task: c.task, Resource: c.res, Fd: c.fd, C05: c.c05, HasC05: c.has}
		if got := analysis.Judge(m); got != c.want {
			t.Errorf("Judge(%s/%s paper values) = %s, want %s", c.task, c.res, got, c.want)
		}
	}
}
