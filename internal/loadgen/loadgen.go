// Package loadgen drives a UUCS server with a closed-loop ingest load:
// K concurrent clients, each with a persistent connection, each sending
// its next result batch the moment the previous one is acknowledged.
// Closed-loop load is the right shape for measuring a group-commit
// journal — the offered concurrency, not an open-loop arrival rate, is
// what determines how many ops share an fsync — and it is exactly how
// the real fleet behaves, since every client blocks on its ack before
// continuing.
//
// The driver is shared by cmd/uucs-loadgen (the CLI rig), uucs-bench
// (the BenchmarkServerIngest regression gate), and the repository's
// bench_test.go mirror, so all three measure the same code path.
package loadgen

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uucs/internal/chaos"
	"uucs/internal/cluster"
	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/server"
	"uucs/internal/telemetry"
	"uucs/internal/testcase"
)

// Config parameterizes one load run.
type Config struct {
	// Clients is the closed-loop concurrency (paper fleet: ~100 hosts;
	// the acceptance measurement uses 32).
	Clients int
	// Duration bounds the run in wall time. Ignored when Batches > 0.
	Duration time.Duration
	// Batches, when positive, runs a fixed total batch budget instead
	// of a timed window — the mode testing.Benchmark needs.
	Batches int
	// RunsPerBatch is how many run records each upload carries.
	RunsPerBatch int

	// StateDir, when non-empty, attaches a journal: every ack waits for
	// an fsync. Empty measures the in-memory ceiling.
	StateDir string
	// JournalBatch and JournalDelay forward to the server's
	// group-commit writer (1 degenerates to fsync-per-op — the
	// comparison baseline).
	JournalBatch int
	JournalDelay time.Duration
	// FsyncCost, when positive, stretches every journal fsync to at
	// least this long — a modeled storage device. The paper-era server
	// ran on spinning disks whose flush cost ~8ms; on modern hardware
	// (or a 1-core CI box) the real fsync is so cheap the run measures
	// CPU instead, so the disk model is what makes the group-commit
	// comparison reproducible.
	FsyncCost time.Duration
	// JournalSegmentBytes forwards the journal rotation threshold (0 =
	// single-file journal). The cold-restart benchmarks use it to build
	// multi-segment state directories under real ingest load.
	JournalSegmentBytes int64
	// ReplayWorkers forwards the restart-replay worker count (0 =
	// GOMAXPROCS, 1 = serial).
	ReplayWorkers int

	// Net selects the transport: "tcp" (loopback) or "mem" (the chaos
	// in-memory network — no kernel sockets, isolates server cost).
	Net string
	// Nodes, when non-empty, runs cluster mode: an in-process N-node
	// cluster (these node ids) behind a router, with the fleet dialing
	// the router. StateDir becomes the cluster state root (required);
	// workers retry across failovers instead of failing fast.
	Nodes []string
	// KillNode, in cluster mode, names a node to crash mid-run once the
	// fleet has acked KillAfterBatches batches (default: half the batch
	// budget) — the failover load rig.
	KillNode         string
	KillAfterBatches int
	// Addr, when non-empty, targets an already-running server there
	// instead of starting one in-process (verification and server
	// stats are then unavailable).
	Addr string

	// Seed drives the server's sampling streams.
	Seed uint64

	// Protocol pins the fleet's wire framing: 0 or protocol.V3 drive
	// the binary v3 framing (the default — a negotiated fleet settles
	// there), protocol.V2 forces the JSON framing (the v2 baseline of
	// `uucs-loadgen -compare protocol`).
	Protocol int
}

// Report is what one load run measured.
type Report struct {
	Clients       int           `json:"clients"`
	Protocol      int           `json:"protocol"`
	Batches       uint64        `json:"batches"`
	Runs          uint64        `json:"runs"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	BatchesPerSec float64       `json:"batches_per_sec"`

	// Ack latency quantiles over every batch.
	LatP50 time.Duration `json:"lat_p50_ns"`
	LatP90 time.Duration `json:"lat_p90_ns"`
	LatP99 time.Duration `json:"lat_p99_ns"`
	LatMax time.Duration `json:"lat_max_ns"`

	// Server is the in-process server's ingest counters (nil when
	// driving an external server).
	Server *server.IngestStats `json:"server,omitempty"`

	// Telemetry is the USE snapshot taken the moment the load stopped
	// (nil when driving an external server). Its saturated-resource
	// verdict is what makes a perf regression self-diagnosing: a run
	// that got slower says *which* ingest resource saturated.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`

	// Failovers counts router-observed node failovers (cluster mode).
	Failovers uint64 `json:"failovers,omitempty"`
	// Merge summarizes the post-run deterministic merge of every node
	// and replica journal (cluster mode) — the dataset Lost/Duplicated
	// were verified against.
	Merge *cluster.MergeStats `json:"merge,omitempty"`

	// Lost counts acked batches missing from the server's dataset;
	// Duplicated counts batches present more than once. Both must be
	// zero — a nonzero value means the durability contract broke under
	// load. Only verified in-process.
	Lost       int64 `json:"lost"`
	Duplicated int64 `json:"duplicated"`
}

// Verified reports whether the run could check (and did check) the
// no-loss/no-duplication contract.
func (r *Report) Verified() bool { return r.Server != nil || r.Merge != nil }

// batchPayload builds the text payload of one upload: n synthetic run
// records in the store encoding, the same bytes a real client ships.
func batchPayload(n int) (string, error) {
	runs := make([]*core.Run, n)
	for i := range runs {
		runs[i] = &core.Run{
			TestcaseID: fmt.Sprintf("lg-%05d", i), Task: testcase.Word, UserID: i,
			Terminated: core.Exhausted, Offset: float64(10 + i),
			PrimaryResource: testcase.CPU,
			Levels:          map[testcase.Resource]float64{testcase.CPU: 1.5},
			LastFive:        map[testcase.Resource][]float64{testcase.CPU: {1.1, 1.2, 1.3, 1.4, 1.5}},
		}
	}
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, false); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Run executes one closed-loop load run.
func Run(cfg Config) (*Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 32
	}
	if cfg.RunsPerBatch <= 0 {
		cfg.RunsPerBatch = 3
	}
	if cfg.Duration <= 0 && cfg.Batches <= 0 {
		cfg.Duration = 5 * time.Second
	}
	switch cfg.Protocol {
	case 0:
		cfg.Protocol = protocol.V3
	case protocol.V2, protocol.V3:
	default:
		return nil, fmt.Errorf("loadgen: unknown protocol version %d (want %d or %d)", cfg.Protocol, protocol.V2, protocol.V3)
	}

	payload, err := batchPayload(cfg.RunsPerBatch)
	if err != nil {
		return nil, err
	}

	if len(cfg.Nodes) > 0 {
		return runClusterLoad(cfg, payload)
	}
	if cfg.KillNode != "" {
		return nil, fmt.Errorf("loadgen: -kill-node needs cluster mode (-nodes)")
	}

	// Transport, and — unless an external address is given — the
	// in-process target server. The state directory attaches before the
	// listener opens, so every accepted op is journaled.
	var (
		srv  *server.Server
		addr = cfg.Addr
		dial func(string) (net.Conn, error)
	)
	if cfg.Net == "mem" && cfg.Addr != "" {
		return nil, fmt.Errorf("loadgen: -net mem cannot target an external -addr")
	}
	if addr == "" {
		srv = server.New(cfg.Seed)
		srv.JournalBatch = cfg.JournalBatch
		srv.JournalDelay = cfg.JournalDelay
		srv.JournalSyncCost = cfg.FsyncCost
		srv.JournalSegmentBytes = cfg.JournalSegmentBytes
		srv.ReplayWorkers = cfg.ReplayWorkers
		if cfg.StateDir != "" {
			if err := srv.OpenState(cfg.StateDir); err != nil {
				return nil, err
			}
		}
		defer srv.Close()
	}
	switch cfg.Net {
	case "", "tcp":
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
		if srv != nil {
			a, err := srv.ListenAndServe("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			addr = a
		}
	case "mem":
		nw := chaos.NewNetwork()
		dial = nw.Dial
		ln, err := nw.Listen("uucs-loadgen")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln)
		addr = ln.Addr().String()
	default:
		return nil, fmt.Errorf("loadgen: unknown net %q (want tcp or mem)", cfg.Net)
	}

	// Budget: a timed window or a fixed batch count.
	var (
		budget   atomic.Int64
		deadline time.Time
	)
	if cfg.Batches > 0 {
		budget.Store(int64(cfg.Batches))
	} else {
		deadline = time.Now().Add(cfg.Duration)
	}
	more := func() bool {
		if cfg.Batches > 0 {
			return budget.Add(-1) >= 0
		}
		return time.Now().Before(deadline)
	}

	results := make([]workerResult, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = driveClient(w, addr, dial, payload, cfg.Protocol, more)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Clients: cfg.Clients, Protocol: cfg.Protocol, Elapsed: elapsed}
	var lats []time.Duration
	for w := range results {
		if err := results[w].err; err != nil {
			return nil, fmt.Errorf("loadgen: client %d: %w", w, err)
		}
		rep.Batches += results[w].batches
		lats = append(lats, results[w].lats...)
	}
	rep.Runs = rep.Batches * uint64(cfg.RunsPerBatch)
	if elapsed > 0 {
		rep.BatchesPerSec = float64(rep.Batches) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		rep.LatP50 = lats[n/2]
		rep.LatP90 = lats[n*90/100]
		rep.LatP99 = lats[n*99/100]
		rep.LatMax = lats[n-1]
	}

	if srv != nil {
		st := srv.Stats()
		rep.Server = &st
		rep.Telemetry = srv.Telemetry()
		// Verification: every acked batch in the dataset exactly once.
		// The workers never retry (the transport is reliable), so the
		// server must report zero dups and exactly rep.Runs records.
		got := int64(len(srv.Results()))
		want := int64(rep.Runs)
		if got < want {
			rep.Lost = (want - got + int64(cfg.RunsPerBatch) - 1) / int64(cfg.RunsPerBatch)
		}
		if got > want {
			rep.Duplicated = (got - want) / int64(cfg.RunsPerBatch)
		}
		if st.DupBatches > 0 {
			rep.Duplicated += int64(st.DupBatches)
		}
	}
	return rep, nil
}

// workerResult is what one closed-loop worker measured.
type workerResult struct {
	batches uint64
	lats    []time.Duration
	err     error
}

// driveClient is one closed-loop worker: register, then upload batches
// back to back until the budget runs out. ver pins the wire framing
// (the fleet is homogeneous; negotiation is the real client's job).
func driveClient(w int, addr string, dial func(string) (net.Conn, error), payload string, ver int, more func() bool) (res workerResult) {
	nc, err := dial(addr)
	if err != nil {
		res.err = err
		return
	}
	conn := protocol.NewConn(nc)
	defer conn.Close()
	conn.SetVersion(ver)

	snap := protocol.Snapshot{
		Hostname: fmt.Sprintf("lg-host-%03d", w), OS: "winxp",
		CPUGHz: 2, MemMB: 512, DiskGB: 80,
	}
	if err := conn.Send(protocol.Message{
		Type: protocol.TypeRegister, Ver: ver,
		Snapshot: &snap, Nonce: fmt.Sprintf("lg-nonce-%03d", w),
	}); err != nil {
		res.err = err
		return
	}
	reg, err := conn.Recv()
	if err != nil {
		res.err = err
		return
	}
	if err := protocol.AsError(reg); err != nil {
		res.err = err
		return
	}
	id := reg.ClientID

	res.lats = make([]time.Duration, 0, 4096)
	seq := uint64(0)
	for more() {
		seq++
		t0 := time.Now()
		if err := conn.Send(protocol.Message{
			Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: seq,
		}); err != nil {
			res.err = err
			return
		}
		ack, err := conn.Recv()
		if err != nil {
			res.err = err
			return
		}
		if err := protocol.AsError(ack); err != nil {
			res.err = err
			return
		}
		if ack.Type != protocol.TypeAck || ack.Seq != seq {
			res.err = fmt.Errorf("bad ack %q seq %d (want seq %d)", ack.Type, ack.Seq, seq)
			return
		}
		if ack.Dup {
			res.err = fmt.Errorf("first send of seq %d acked as duplicate", seq)
			return
		}
		res.lats = append(res.lats, time.Since(t0))
		res.batches++
	}
	return
}
