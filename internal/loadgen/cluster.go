package loadgen

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uucs/internal/chaos"
	"uucs/internal/cluster"
	"uucs/internal/protocol"
)

// runClusterLoad drives a closed-loop fleet through an in-process
// N-node cluster's router instead of a single server. Workers are
// resilient — they retry across connection drops and in-band "node
// unavailable" rejections, treating a dup ack as success — because a
// cluster run is allowed to kill a node mid-upload (KillNode) and the
// whole point is that the fleet rides through the failover.
//
// Verification is the cluster-grade contract: after shutdown, the
// deterministic merge of every node and replica journal must contain
// every acked batch exactly once.
func runClusterLoad(cfg Config, payload string) (*Report, error) {
	if cfg.Addr != "" {
		return nil, fmt.Errorf("loadgen: cluster mode starts its own nodes; -addr conflicts with -nodes")
	}
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("loadgen: cluster mode needs a state dir (per-node journals live under it)")
	}

	var (
		tr   cluster.Transport
		dial func(string) (net.Conn, error)
	)
	switch cfg.Net {
	case "", "tcp":
		tr = cluster.TCPTransport{}
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	case "mem":
		nw := chaos.NewNetwork()
		tr = cluster.ChaosTransport{Net: nw}
		dial = nw.Dial
	default:
		return nil, fmt.Errorf("loadgen: unknown net %q (want tcp or mem)", cfg.Net)
	}

	cl, err := cluster.Start(cluster.Config{
		Nodes: cfg.Nodes, Seed: cfg.Seed, StateRoot: cfg.StateDir,
		Transport:    tr,
		JournalBatch: cfg.JournalBatch, JournalDelay: cfg.JournalDelay,
		JournalSyncCost:     cfg.FsyncCost,
		JournalSegmentBytes: cfg.JournalSegmentBytes,
		ReplayWorkers:       cfg.ReplayWorkers,
	})
	if err != nil {
		return nil, err
	}
	addr := cl.Addr()

	var (
		budget   atomic.Int64
		deadline time.Time
	)
	if cfg.Batches > 0 {
		budget.Store(int64(cfg.Batches))
	} else {
		deadline = time.Now().Add(cfg.Duration)
	}
	more := func() bool {
		if cfg.Batches > 0 {
			return budget.Add(-1) >= 0
		}
		return time.Now().Before(deadline)
	}

	// The node killer: once the fleet has acked KillAfterBatches
	// batches, SIGKILL-equivalently crash the named node and let the
	// router's failover take over.
	var acked atomic.Uint64
	killDone := make(chan error, 1)
	stopKill := make(chan struct{})
	if cfg.KillNode != "" {
		after := uint64(cfg.KillAfterBatches)
		if after == 0 && cfg.Batches > 0 {
			after = uint64(cfg.Batches) / 2
		}
		go func() {
			for acked.Load() < after {
				select {
				case <-stopKill:
					killDone <- fmt.Errorf("loadgen: run ended before %d batches; node %s never killed", after, cfg.KillNode)
					return
				case <-time.After(time.Millisecond):
				}
			}
			killDone <- cl.CrashNode(cfg.KillNode)
		}()
	} else {
		killDone <- nil
	}

	results := make([]workerResult, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = driveResilient(w, addr, dial, payload, cfg.Protocol, more, &acked)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopKill)
	if err := <-killDone; err != nil {
		cl.Close()
		return nil, err
	}

	rep := &Report{Clients: cfg.Clients, Protocol: cfg.Protocol, Elapsed: elapsed}
	var lats []time.Duration
	for w := range results {
		if err := results[w].err; err != nil {
			cl.Close()
			return nil, fmt.Errorf("loadgen: client %d: %w", w, err)
		}
		rep.Batches += results[w].batches
		lats = append(lats, results[w].lats...)
	}
	rep.Runs = rep.Batches * uint64(cfg.RunsPerBatch)
	if elapsed > 0 {
		rep.BatchesPerSec = float64(rep.Batches) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		rep.LatP50 = lats[n/2]
		rep.LatP90 = lats[n*90/100]
		rep.LatP99 = lats[n*99/100]
		rep.LatMax = lats[n-1]
	}
	rep.Telemetry = cl.Telemetry()
	rep.Failovers = cl.Router().Stats().Failovers

	if err := cl.Close(); err != nil {
		return nil, fmt.Errorf("loadgen: cluster shutdown: %w", err)
	}

	// Cluster-grade verification: merge every node and replica journal
	// and demand exactly the acked batches, once each.
	runs, st, err := cluster.MergedRuns(cfg.StateDir)
	if err != nil {
		return nil, fmt.Errorf("loadgen: merge: %w", err)
	}
	rep.Merge = &st
	got, want := int64(len(runs)), int64(rep.Runs)
	if got < want {
		rep.Lost = (want - got + int64(cfg.RunsPerBatch) - 1) / int64(cfg.RunsPerBatch)
	}
	if got > want {
		rep.Duplicated = (got - want) / int64(cfg.RunsPerBatch)
	}
	return rep, nil
}

// driveResilient is the cluster-mode worker: the same closed loop as
// driveClient, but it survives the turbulence of a mid-run failover —
// dropped connections are redialed, in-band rejections are retried,
// and a dup ack (the retry of a batch whose first ack was lost) counts
// as acked, because the batch is durably in the dataset exactly once.
func driveResilient(w int, addr string, dial func(string) (net.Conn, error), payload string, ver int, more func() bool, acked *atomic.Uint64) (res workerResult) {
	var conn *protocol.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	roundTrip := func(msg protocol.Message) (protocol.Message, error) {
		var lastErr error
		for attempt := 0; attempt < 60; attempt++ {
			if attempt > 0 {
				time.Sleep(2 * time.Millisecond)
			}
			if conn == nil {
				raw, err := dial(addr)
				if err != nil {
					lastErr = err
					continue
				}
				conn = protocol.NewConn(raw)
				conn.SetVersion(ver)
			}
			if err := conn.Send(msg); err != nil {
				lastErr = err
				conn.Close()
				conn = nil
				continue
			}
			reply, err := conn.Recv()
			if err != nil {
				lastErr = err
				conn.Close()
				conn = nil
				continue
			}
			if perr := protocol.AsError(reply); perr != nil {
				lastErr = perr // mid-failover rejection; same conn, retry
				continue
			}
			return reply, nil
		}
		return protocol.Message{}, lastErr
	}

	snap := protocol.Snapshot{
		Hostname: fmt.Sprintf("lg-host-%03d", w), OS: "winxp",
		CPUGHz: 2, MemMB: 512, DiskGB: 80,
	}
	reg, err := roundTrip(protocol.Message{
		Type: protocol.TypeRegister, Ver: ver,
		Snapshot: &snap, Nonce: fmt.Sprintf("lg-nonce-%03d", w),
	})
	if err != nil {
		res.err = err
		return
	}
	if reg.Type != protocol.TypeRegistered || reg.ClientID == "" {
		res.err = fmt.Errorf("bad register reply %q", reg.Type)
		return
	}
	id := reg.ClientID

	res.lats = make([]time.Duration, 0, 4096)
	seq := uint64(0)
	for more() {
		seq++
		t0 := time.Now()
		ack, err := roundTrip(protocol.Message{
			Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: seq,
		})
		if err != nil {
			res.err = err
			return
		}
		if ack.Type != protocol.TypeAck || ack.Seq != seq {
			res.err = fmt.Errorf("bad ack %q seq %d (want seq %d)", ack.Type, ack.Seq, seq)
			return
		}
		res.lats = append(res.lats, time.Since(t0))
		res.batches++
		acked.Add(1)
	}
	return
}
