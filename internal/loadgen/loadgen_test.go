package loadgen

import (
	"testing"
	"time"
)

// TestClosedLoopBatchBudget drives a fixed batch budget over the
// in-memory transport against a journaling server and checks the
// accounting: every batch acked, none lost, none duplicated.
func TestClosedLoopBatchBudget(t *testing.T) {
	rep, err := Run(Config{
		Clients: 4, Batches: 40, RunsPerBatch: 2,
		StateDir: t.TempDir(), Net: "mem", Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 40 {
		t.Errorf("acked %d batches, want 40", rep.Batches)
	}
	if rep.Runs != 80 {
		t.Errorf("runs = %d, want 80", rep.Runs)
	}
	if !rep.Verified() {
		t.Fatal("in-process run did not verify")
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Errorf("lost=%d duplicated=%d, want 0/0", rep.Lost, rep.Duplicated)
	}
	if rep.Server.JournalFsyncs == 0 {
		t.Error("journaling server reported zero fsyncs")
	}
	if rep.LatP50 <= 0 || rep.LatMax < rep.LatP99 || rep.LatP99 < rep.LatP50 {
		t.Errorf("latency quantiles disordered: p50=%v p99=%v max=%v", rep.LatP50, rep.LatP99, rep.LatMax)
	}
}

// TestTimedWindowTCP exercises the loopback-TCP path and the timed
// budget, without a journal (the in-memory ceiling).
func TestTimedWindowTCP(t *testing.T) {
	rep, err := Run(Config{
		Clients: 2, Duration: 100 * time.Millisecond, RunsPerBatch: 1,
		Net: "tcp", Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches == 0 {
		t.Error("timed window acked no batches")
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Errorf("lost=%d duplicated=%d, want 0/0", rep.Lost, rep.Duplicated)
	}
	if rep.Server.JournalFsyncs != 0 {
		t.Error("journal-less server reported fsyncs")
	}
}

// TestConfigValidation pins the rejected configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Net: "carrier-pigeon", Batches: 1}); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := Run(Config{Net: "mem", Addr: "elsewhere:1", Batches: 1}); err == nil {
		t.Error("mem transport with external addr accepted")
	}
	if _, err := Run(Config{Net: "mem", KillNode: "n1", Batches: 1, StateDir: t.TempDir()}); err == nil {
		t.Error("kill-node without cluster mode accepted")
	}
	if _, err := Run(Config{Net: "mem", Nodes: []string{"n1"}, Batches: 1}); err == nil {
		t.Error("cluster mode without a state dir accepted")
	}
}

// TestClusterModeFaultFree drives the fleet through a 3-node cluster's
// router with no faults and checks the merged-dataset accounting.
func TestClusterModeFaultFree(t *testing.T) {
	rep, err := Run(Config{
		Clients: 4, Batches: 40, RunsPerBatch: 2,
		StateDir: t.TempDir(), Net: "mem", Seed: 7,
		Nodes: []string{"n1", "n2", "n3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 40 {
		t.Errorf("acked %d batches, want 40", rep.Batches)
	}
	if !rep.Verified() {
		t.Fatal("cluster run did not verify")
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Errorf("lost=%d duplicated=%d, want 0/0", rep.Lost, rep.Duplicated)
	}
	if rep.Failovers != 0 {
		t.Errorf("fault-free run recorded %d failovers", rep.Failovers)
	}
	if rep.Merge == nil || rep.Merge.Batches != 40 {
		t.Errorf("merge stats %+v, want 40 batches", rep.Merge)
	}
	if rep.Telemetry == nil || rep.Telemetry.Node != "cluster" {
		t.Error("cluster run did not aggregate cluster telemetry")
	}
}

// TestClusterModeNodeKill kills a node halfway through the batch
// budget; the fleet must ride the failover and the merged dataset must
// still hold every acked batch exactly once.
func TestClusterModeNodeKill(t *testing.T) {
	rep, err := Run(Config{
		Clients: 4, Batches: 60, RunsPerBatch: 2,
		StateDir: t.TempDir(), Net: "mem", Seed: 7,
		Nodes: []string{"n1", "n2", "n3"}, KillNode: "n2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 60 {
		t.Errorf("acked %d batches, want 60", rep.Batches)
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Errorf("lost=%d duplicated=%d, want 0/0", rep.Lost, rep.Duplicated)
	}
}
