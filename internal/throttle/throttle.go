// Package throttle implements the paper's advice to implementors (§5):
// a resource-borrowing throttle that is set from the measured discomfort
// CDFs according to the fraction of users the implementor is willing to
// affect, and that additionally reacts to direct user feedback with
// multiplicative backoff and slow additive recovery.
package throttle

import (
	"fmt"
	"math"

	"uucs/internal/stats"
)

// Throttle controls the borrowing level for one resource on one host.
// It is not safe for concurrent use.
type Throttle struct {
	cdf    *stats.CDF
	target float64
	max    float64

	// ceiling is the CDF-derived level that discomforts the target
	// fraction of users.
	ceiling float64
	level   float64

	// backoff and recoverPerSec shape the feedback response.
	backoff       float64
	recoverPerSec float64

	feedbacks int
}

// Option customizes a Throttle.
type Option func(*Throttle)

// WithBackoff sets the multiplicative decrease applied on user feedback
// (default 0.5).
func WithBackoff(f float64) Option {
	return func(t *Throttle) { t.backoff = f }
}

// WithRecovery sets the additive recovery rate in contention units per
// second of quiet operation (default: ceiling/600, i.e. ten quiet
// minutes to return to the ceiling from zero).
func WithRecovery(perSec float64) Option {
	return func(t *Throttle) { t.recoverPerSec = perSec }
}

// New builds a throttle for one resource from its measured discomfort
// CDF. target is the fraction of users the caller is willing to
// discomfort (the paper highlights the 5% level, c_0.05); maxLevel caps
// borrowing regardless of the CDF (e.g. 1.0 for memory). If the CDF
// never reaches the target within its explored range, the ceiling is the
// largest explored level — the data says nobody complains below it.
func New(cdf *stats.CDF, target, maxLevel float64, opts ...Option) (*Throttle, error) {
	if cdf == nil {
		return nil, fmt.Errorf("throttle: nil CDF")
	}
	if target <= 0 || target >= 1 {
		return nil, fmt.Errorf("throttle: target fraction %g out of (0,1)", target)
	}
	if maxLevel <= 0 {
		return nil, fmt.Errorf("throttle: non-positive max level")
	}
	ceiling, ok := cdf.Percentile(target)
	if !ok {
		// Fewer than target users ever reacted: borrow up to the edge of
		// the explored range.
		ceiling = cdf.Max()
		if ceiling == 0 {
			ceiling = maxLevel
		}
	}
	ceiling = math.Min(ceiling, maxLevel)
	t := &Throttle{
		cdf:     cdf,
		target:  target,
		max:     maxLevel,
		ceiling: ceiling,
		level:   ceiling,
		backoff: 0.5,
	}
	t.recoverPerSec = ceiling / 600
	for _, o := range opts {
		o(t)
	}
	if t.backoff <= 0 || t.backoff >= 1 {
		return nil, fmt.Errorf("throttle: backoff %g out of (0,1)", t.backoff)
	}
	if t.recoverPerSec < 0 {
		return nil, fmt.Errorf("throttle: negative recovery rate")
	}
	return t, nil
}

// Level returns the current borrowing level.
func (t *Throttle) Level() float64 { return t.level }

// Ceiling returns the CDF-derived target level.
func (t *Throttle) Ceiling() float64 { return t.ceiling }

// ExpectedDiscomfort returns the fraction of users the current level is
// expected to discomfort, read off the CDF.
func (t *Throttle) ExpectedDiscomfort() float64 { return t.cdf.At(t.level) }

// Feedbacks returns how many user complaints the throttle has absorbed.
func (t *Throttle) Feedbacks() int { return t.feedbacks }

// OnFeedback reacts to a user discomfort signal: multiplicative
// decrease, exactly the "consider using user feedback directly in your
// application" advice.
func (t *Throttle) OnFeedback() {
	t.feedbacks++
	t.level *= t.backoff
}

// OnQuiet advances dt seconds of complaint-free operation: the level
// recovers additively toward the ceiling (never beyond it).
func (t *Throttle) OnQuiet(dt float64) {
	if dt <= 0 {
		return
	}
	t.level = math.Min(t.ceiling, t.level+t.recoverPerSec*dt)
}

// Retarget recomputes the ceiling for a new target fraction, keeping the
// current level if it is below the new ceiling.
func (t *Throttle) Retarget(target float64) error {
	if target <= 0 || target >= 1 {
		return fmt.Errorf("throttle: target fraction %g out of (0,1)", target)
	}
	ceiling, ok := t.cdf.Percentile(target)
	if !ok {
		ceiling = t.cdf.Max()
		if ceiling == 0 {
			ceiling = t.max
		}
	}
	t.target = target
	t.ceiling = math.Min(ceiling, t.max)
	t.level = math.Min(t.level, t.ceiling)
	return nil
}

// String summarizes the throttle state.
func (t *Throttle) String() string {
	return fmt.Sprintf("throttle(level=%.2f ceiling=%.2f target=%.0f%% feedbacks=%d expected=%.1f%%)",
		t.level, t.ceiling, t.target*100, t.feedbacks, t.ExpectedDiscomfort()*100)
}
