package throttle

import (
	"math"
	"testing"
	"testing/quick"

	"uucs/internal/stats"
)

// cdf100 builds a CDF with discomfort levels 0.1, 0.2 ... up to n/10.
func cdf100(n, exhausted int) *stats.CDF {
	levels := make([]float64, n)
	for i := range levels {
		levels[i] = float64(i+1) / 10
	}
	return stats.NewCDF(levels, exhausted)
}

func TestNewSetsCeilingFromCDF(t *testing.T) {
	c := cdf100(100, 0) // levels 0.1..10.0
	th, err := New(c, 0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	if th.Ceiling() != 0.5 { // 5th percentile of 100 runs
		t.Errorf("ceiling = %v, want 0.5", th.Ceiling())
	}
	if th.Level() != th.Ceiling() {
		t.Errorf("initial level = %v", th.Level())
	}
	if got := th.ExpectedDiscomfort(); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("expected discomfort = %v", got)
	}
}

func TestNewCapsAtMaxLevel(t *testing.T) {
	c := cdf100(100, 0)
	th, err := New(c, 0.5, 1.0) // 50th percentile = 5.0, capped at 1.0
	if err != nil {
		t.Fatal(err)
	}
	if th.Ceiling() != 1.0 {
		t.Errorf("ceiling = %v, want cap 1.0", th.Ceiling())
	}
}

func TestNewWithUnreachedTarget(t *testing.T) {
	// Only 2 of 100 runs discomforted: the 5% level does not exist, so
	// borrow to the edge of the explored range.
	c := stats.NewCDF([]float64{3, 4}, 98)
	th, err := New(c, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if th.Ceiling() != 4 {
		t.Errorf("ceiling = %v, want max explored 4", th.Ceiling())
	}
	// Empty CDF: fall back to the cap.
	th, err = New(stats.NewCDF(nil, 0), 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if th.Ceiling() != 7 {
		t.Errorf("empty-CDF ceiling = %v", th.Ceiling())
	}
}

func TestNewValidation(t *testing.T) {
	c := cdf100(10, 0)
	if _, err := New(nil, 0.05, 1); err == nil {
		t.Error("nil CDF accepted")
	}
	if _, err := New(c, 0, 1); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := New(c, 1, 1); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := New(c, 0.05, 0); err == nil {
		t.Error("zero max accepted")
	}
	if _, err := New(c, 0.05, 1, WithBackoff(1.5)); err == nil {
		t.Error("backoff > 1 accepted")
	}
	if _, err := New(c, 0.05, 1, WithRecovery(-1)); err == nil {
		t.Error("negative recovery accepted")
	}
}

func TestFeedbackBackoffAndRecovery(t *testing.T) {
	c := cdf100(100, 0)
	th, err := New(c, 0.10, 20, WithBackoff(0.5), WithRecovery(0.01))
	if err != nil {
		t.Fatal(err)
	}
	start := th.Level() // 1.0
	th.OnFeedback()
	if th.Level() != start/2 {
		t.Errorf("after feedback: %v", th.Level())
	}
	th.OnFeedback()
	if th.Level() != start/4 {
		t.Errorf("after 2nd feedback: %v", th.Level())
	}
	if th.Feedbacks() != 2 {
		t.Errorf("feedbacks = %d", th.Feedbacks())
	}
	// Recovery climbs back but never beyond the ceiling.
	th.OnQuiet(10) // +0.1
	if math.Abs(th.Level()-(start/4+0.1)) > 1e-12 {
		t.Errorf("after quiet: %v", th.Level())
	}
	th.OnQuiet(1e6)
	if th.Level() != th.Ceiling() {
		t.Errorf("recovery overshot: %v > %v", th.Level(), th.Ceiling())
	}
	th.OnQuiet(-5) // ignored
	if th.Level() != th.Ceiling() {
		t.Error("negative quiet changed level")
	}
}

func TestRetarget(t *testing.T) {
	c := cdf100(100, 0)
	th, err := New(c, 0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Retarget(0.20); err != nil {
		t.Fatal(err)
	}
	if th.Ceiling() != 2.0 {
		t.Errorf("retargeted ceiling = %v", th.Ceiling())
	}
	// Level stays where it was (below the new ceiling).
	if th.Level() != 0.5 {
		t.Errorf("level after retarget = %v", th.Level())
	}
	// Tightening the target clamps the level.
	if err := th.Retarget(0.01); err != nil {
		t.Fatal(err)
	}
	if th.Level() != th.Ceiling() {
		t.Errorf("level not clamped: %v vs %v", th.Level(), th.Ceiling())
	}
	if err := th.Retarget(2); err == nil {
		t.Error("bad retarget accepted")
	}
	if th.String() == "" {
		t.Error("empty String")
	}
}

func TestThrottleInvariantsProperty(t *testing.T) {
	check := func(seed uint64, events uint8) bool {
		s := stats.NewStream(seed)
		th, err := New(cdf100(50, 25), 0.08, 4)
		if err != nil {
			return false
		}
		for i := 0; i < int(events); i++ {
			if s.Bool(0.3) {
				th.OnFeedback()
			} else {
				th.OnQuiet(s.Range(0, 120))
			}
			if th.Level() < 0 || th.Level() > th.Ceiling()+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
