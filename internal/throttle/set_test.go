package throttle

import (
	"strings"
	"testing"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

func testCDFs() map[testcase.Resource]*stats.CDF {
	return map[testcase.Resource]*stats.CDF{
		testcase.CPU:    cdf100(100, 0), // c05 = 0.5
		testcase.Memory: stats.NewCDF([]float64{0.3, 0.5, 0.7, 0.9}, 60),
		testcase.Disk:   cdf100(50, 50),
	}
}

func testMaxima() map[testcase.Resource]float64 {
	return map[testcase.Resource]float64{testcase.CPU: 10, testcase.Memory: 1, testcase.Disk: 7}
}

func TestNewSet(t *testing.T) {
	s, err := NewSet(testCDFs(), 0.05, testMaxima())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Level(testcase.CPU); got != 0.5 {
		t.Errorf("cpu level = %v", got)
	}
	if got := s.Level(testcase.Memory); got <= 0 || got > 1 {
		t.Errorf("memory level = %v", got)
	}
	if got := s.Level(testcase.Resource("network")); got != 0 {
		t.Errorf("unmanaged resource level = %v", got)
	}
	if len(s.Levels()) != 3 {
		t.Errorf("levels = %v", s.Levels())
	}
	out := s.String()
	for _, want := range []string{"cpu=", "memory=", "disk="} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %s: %q", want, out)
		}
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(nil, 0.05, testMaxima()); err == nil {
		t.Error("empty set accepted")
	}
	cdfs := testCDFs()
	maxima := testMaxima()
	delete(maxima, testcase.Disk)
	if _, err := NewSet(cdfs, 0.05, maxima); err == nil {
		t.Error("missing max accepted")
	}
	if _, err := NewSet(cdfs, 0, testMaxima()); err == nil {
		t.Error("zero target accepted")
	}
}

func TestSetFeedbackHitsAllRecoveryIsIndependent(t *testing.T) {
	s, err := NewSet(testCDFs(), 0.10, testMaxima(), WithBackoff(0.5), WithRecovery(1000))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Levels()
	s.OnFeedback()
	for res, lvl := range s.Levels() {
		if lvl != before[res]/2 {
			t.Errorf("%s not backed off: %v vs %v", res, lvl, before[res])
		}
	}
	// Generous recovery returns everyone to their own ceiling.
	s.OnQuiet(10)
	for res, lvl := range s.Levels() {
		if lvl != s.Throttle(res).Ceiling() {
			t.Errorf("%s did not recover: %v vs %v", res, lvl, s.Throttle(res).Ceiling())
		}
	}
}

func TestSetThrottleAccess(t *testing.T) {
	s, err := NewSet(testCDFs(), 0.05, testMaxima())
	if err != nil {
		t.Fatal(err)
	}
	th := s.Throttle(testcase.CPU)
	if th == nil {
		t.Fatal("managed throttle not exposed")
	}
	if err := th.Retarget(0.2); err != nil {
		t.Fatal(err)
	}
	if s.Throttle(testcase.Resource("gpu")) != nil {
		t.Error("unmanaged throttle returned")
	}
}
