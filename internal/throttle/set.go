package throttle

import (
	"fmt"
	"sort"
	"strings"

	"uucs/internal/stats"
	"uucs/internal/testcase"
)

// Set manages one throttle per resource. The subtlety it handles is the
// attribution problem in the paper's feedback design: the user's click
// says "the machine feels slow", not which resource caused it. A Set
// therefore backs every resource off on feedback, while recovery is
// independent per resource — the resources the user actually tolerates
// drift back to their ceilings, and the culprit keeps getting knocked
// down each time it recovers enough to annoy again.
type Set struct {
	throttles map[testcase.Resource]*Throttle
}

// NewSet builds a throttle per resource from its CDF. targets and maxima
// must cover every provided CDF.
func NewSet(cdfs map[testcase.Resource]*stats.CDF, target float64, maxima map[testcase.Resource]float64, opts ...Option) (*Set, error) {
	if len(cdfs) == 0 {
		return nil, fmt.Errorf("throttle: set needs at least one resource CDF")
	}
	s := &Set{throttles: make(map[testcase.Resource]*Throttle, len(cdfs))}
	for res, cdf := range cdfs {
		maxLevel, ok := maxima[res]
		if !ok {
			return nil, fmt.Errorf("throttle: no max level for %s", res)
		}
		th, err := New(cdf, target, maxLevel, opts...)
		if err != nil {
			return nil, fmt.Errorf("throttle: %s: %w", res, err)
		}
		s.throttles[res] = th
	}
	return s, nil
}

// Level returns the current borrowing level for a resource (0 for
// unmanaged resources).
func (s *Set) Level(res testcase.Resource) float64 {
	th, ok := s.throttles[res]
	if !ok {
		return 0
	}
	return th.Level()
}

// Levels returns the current level per managed resource.
func (s *Set) Levels() map[testcase.Resource]float64 {
	out := make(map[testcase.Resource]float64, len(s.throttles))
	for res, th := range s.throttles {
		out[res] = th.Level()
	}
	return out
}

// OnFeedback applies a user complaint to every resource: the click does
// not say which resource hurt.
func (s *Set) OnFeedback() {
	for _, th := range s.throttles {
		th.OnFeedback()
	}
}

// OnQuiet advances complaint-free time on every resource.
func (s *Set) OnQuiet(dt float64) {
	for _, th := range s.throttles {
		th.OnQuiet(dt)
	}
}

// Throttle exposes one resource's throttle (nil if unmanaged), for
// retargeting or inspection.
func (s *Set) Throttle(res testcase.Resource) *Throttle { return s.throttles[res] }

// String renders the set state.
func (s *Set) String() string {
	resources := make([]string, 0, len(s.throttles))
	for res := range s.throttles {
		resources = append(resources, string(res))
	}
	sort.Strings(resources)
	parts := make([]string, 0, len(resources))
	for _, res := range resources {
		th := s.throttles[testcase.Resource(res)]
		parts = append(parts, fmt.Sprintf("%s=%.2f/%.2f", res, th.Level(), th.Ceiling()))
	}
	return "throttleset(" + strings.Join(parts, " ") + ")"
}
