package server

import (
	"bytes"
	"encoding/json"
	"sync"

	"uucs/internal/telemetry"
)

// Ingest observability. Every counter here is lock-free so reading
// stats never perturbs the hot path it is measuring; uucs-server
// publishes them as expvar entries on the -debug-addr listener and
// uucs-loadgen prints them after a run. The USE-organized view of the
// same collectors (plus the journal gauges and latency ring) lives in
// telemetry.go's Server.Telemetry.

// counter is an atomic accumulator (the telemetry collector, so the
// same primitive backs the flat expvar dump and the USE snapshot).
type counter = telemetry.Counter

// ingestCounters aggregates the server-level ingest counters (journal
// counters live on the journalWriter).
type ingestCounters struct {
	registrations counter
	batches       counter
	dupBatches    counter
	runs          counter
	// rejects counts requests answered with an in-band error — bad
	// payloads, unknown clients, version mismatches (USE errors axis).
	rejects counter
	// v2Msgs/v3Msgs count ingested messages by wire framing — the
	// protocol-version mix a rollout watches to confirm the fleet is
	// actually negotiating up to v3.
	v2Msgs counter
	v3Msgs counter
}

// IngestStats is a point-in-time snapshot of the server's ingest and
// journal activity.
type IngestStats struct {
	// Registrations is the number of accepted (non-dedup) registrations.
	Registrations uint64 `json:"registrations"`
	// Batches is the number of applied (non-duplicate) result batches.
	Batches uint64 `json:"batches"`
	// DupBatches is the number of retried batches answered as dups.
	DupBatches uint64 `json:"dup_batches"`
	// Runs is the total run records ingested.
	Runs uint64 `json:"runs"`
	// Rejects is the number of requests answered with an in-band error
	// (undecodable payload, unknown client, bad version).
	Rejects uint64 `json:"rejects"`
	// V2Msgs and V3Msgs count ingested messages by wire framing (the
	// negotiated protocol mix; see the protocol-mix telemetry sample).
	V2Msgs uint64 `json:"v2_msgs"`
	V3Msgs uint64 `json:"v3_msgs"`
	// JournalOps is the number of ops made durable by the journal.
	JournalOps uint64 `json:"journal_ops"`
	// JournalFsyncs is the number of fsync calls issued — the group
	// commit amortization is JournalOps / JournalFsyncs.
	JournalFsyncs uint64 `json:"journal_fsyncs"`
	// JournalBytes is the total bytes appended to the journal.
	JournalBytes uint64 `json:"journal_bytes"`
	// MeanBatch is JournalOps / JournalFsyncs (0 when no fsync ran).
	MeanBatch float64 `json:"mean_batch"`
	// SegmentsSealed is how many journal segments rotation sealed this
	// process life (0 when segmentation is off).
	SegmentsSealed uint64 `json:"segments_sealed,omitempty"`
	// Replay* describe the most recent LoadState — the cold-path health
	// readings: how long restart replay took and how much it covered.
	ReplayNanos   int64  `json:"replay_nanos,omitempty"`
	ReplayRecords uint64 `json:"replay_records,omitempty"`
	ReplayFiles   uint64 `json:"replay_files,omitempty"`
	ReplayBytes   uint64 `json:"replay_bytes,omitempty"`
	// BatchHist counts group-commit batches by power-of-two size
	// bucket: BatchHist[0] is batches of 1 op, BatchHist[b] covers
	// (2^(b-1), 2^b] ops.
	BatchHist []uint64 `json:"batch_hist,omitempty"`
	// ShardLocks is the per-shard lock acquisition count, the direct
	// measure of how ingest load spreads across the shards.
	ShardLocks []uint64 `json:"shard_locks"`
	// ShardWaits is the per-shard count of acquisitions that found the
	// lock held — ShardWaits[i]/ShardLocks[i] is shard i's contention
	// probability.
	ShardWaits []uint64 `json:"shard_waits"`
}

// Stats returns a snapshot of the ingest counters.
func (s *Server) Stats() IngestStats {
	st := IngestStats{
		Registrations: s.stats.registrations.Load(),
		Batches:       s.stats.batches.Load(),
		DupBatches:    s.stats.dupBatches.Load(),
		Runs:          s.stats.runs.Load(),
		Rejects:       s.stats.rejects.Load(),
		V2Msgs:        s.stats.v2Msgs.Load(),
		V3Msgs:        s.stats.v3Msgs.Load(),
		ShardLocks:    make([]uint64, numShards),
		ShardWaits:    make([]uint64, numShards),
	}
	for i := range s.shards {
		st.ShardLocks[i] = s.shards[i].locks.Load()
		st.ShardWaits[i] = s.shards[i].waits.Load()
	}
	st.ReplayNanos = s.replayStats.lastNanos.Load()
	st.ReplayRecords = s.replayStats.records.Load()
	st.ReplayFiles = s.replayStats.files.Load()
	st.ReplayBytes = s.replayStats.bytes.Load()
	if jw := s.journal(); jw != nil {
		st.SegmentsSealed = jw.sealed.Load()
		st.JournalOps = jw.ops.Load()
		st.JournalFsyncs = jw.fsyncs.Load()
		st.JournalBytes = jw.bytesOut.Load()
		if st.JournalFsyncs > 0 {
			st.MeanBatch = float64(st.JournalOps) / float64(st.JournalFsyncs)
		}
		hist := make([]uint64, 0, batchHistBuckets)
		for i := range jw.batchHist {
			hist = append(hist, jw.batchHist[i].Load())
		}
		// Trim trailing empty buckets so small runs print compactly.
		for len(hist) > 0 && hist[len(hist)-1] == 0 {
			hist = hist[:len(hist)-1]
		}
		st.BatchHist = hist
	}
	return st
}

// jsonLineEncoder is a pooled buffer + encoder pair for one-line JSON
// encodings (journal ops and state snapshots share it with nothing on
// the wire path — protocol has its own pool).
type jsonLineEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonLinePool = sync.Pool{New: func() any {
	e := &jsonLineEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// appendJSONLine appends v's JSON encoding plus a trailing newline to
// dst via the pooled encoder, so hot callers allocate only the returned
// slice growth.
func appendJSONLine(dst []byte, v any) ([]byte, error) {
	e := jsonLinePool.Get().(*jsonLineEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		jsonLinePool.Put(e)
		return dst, err
	}
	dst = append(dst, e.buf.Bytes()...) // Encode already appended '\n'
	jsonLinePool.Put(e)
	return dst, nil
}
