package server

import (
	"strings"
	"testing"
	"time"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/telemetry"
	"uucs/internal/testcase"
)

// uploadPayload builds a decodable one-run upload payload.
func uploadPayload(t testing.TB) string {
	t.Helper()
	runs := []*core.Run{{
		TestcaseID: "tc-stats", Task: testcase.Word, UserID: 1,
		Terminated: core.Exhausted, Offset: 12,
		PrimaryResource: testcase.CPU,
		Levels:          map[testcase.Resource]float64{testcase.CPU: 1.2},
		LastFive:        map[testcase.Resource][]float64{},
	}}
	var b strings.Builder
	if err := core.EncodeRuns(&b, runs, false); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestIngestStatsAcrossOutcomes drives one of every request outcome
// over the wire — accepted registration, accepted batch, deduplicated
// retry, and three distinct rejections — and asserts each one advanced
// exactly the counter that describes it. This pins the expvar
// uucs_ingest block the debug page publishes.
func TestIngestStatsAcrossOutcomes(t *testing.T) {
	s, addr := startServer(t, 0)
	conn := dialT(t, addr)
	id := register(t, conn)
	payload := uploadPayload(t)

	send := func(m protocol.Message) protocol.Message {
		t.Helper()
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Accepted batch.
	if ack := send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 1}); ack.Type != protocol.TypeAck || ack.Dup {
		t.Fatalf("first upload: %+v", ack)
	}
	// Retried batch: deduplicated, still acked.
	if ack := send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 1}); ack.Type != protocol.TypeAck || !ack.Dup {
		t.Fatalf("retry not deduplicated: %+v", ack)
	}
	// Three rejection flavors: undecodable payload, unknown client,
	// unknown message type.
	if resp := send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: "garbage\n", Seq: 2}); resp.Type != protocol.TypeError {
		t.Fatalf("garbage accepted: %+v", resp)
	}
	if resp := send(protocol.Message{Type: protocol.TypeResults, ClientID: "ghost", Payload: payload, Seq: 1}); resp.Type != protocol.TypeError {
		t.Fatalf("unknown client accepted: %+v", resp)
	}
	if resp := send(protocol.Message{Type: "bogus"}); resp.Type != protocol.TypeError {
		t.Fatalf("bogus type accepted: %+v", resp)
	}

	st := s.Stats()
	if st.Registrations != 1 {
		t.Errorf("Registrations = %d, want 1", st.Registrations)
	}
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1", st.Batches)
	}
	if st.DupBatches != 1 {
		t.Errorf("DupBatches = %d, want 1", st.DupBatches)
	}
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want 1", st.Runs)
	}
	if st.Rejects != 3 {
		t.Errorf("Rejects = %d, want 3", st.Rejects)
	}
	var locks, waits uint64
	for i := range st.ShardLocks {
		locks += st.ShardLocks[i]
		waits += st.ShardWaits[i]
		if st.ShardWaits[i] > st.ShardLocks[i] {
			t.Errorf("shard %d: %d waits > %d locks", i, st.ShardWaits[i], st.ShardLocks[i])
		}
	}
	if locks == 0 {
		t.Error("no shard lock acquisitions recorded")
	}
	if len(st.ShardLocks) != numShards || len(st.ShardWaits) != numShards {
		t.Errorf("shard slices %d/%d, want %d", len(st.ShardLocks), len(st.ShardWaits), numShards)
	}
}

// TestServerTelemetrySnapshot: the USE snapshot covers every ingest
// resource when a journal is attached, every pressure is normalized,
// and the dedup/reject activity shows up on the errors axis.
func TestServerTelemetrySnapshot(t *testing.T) {
	s := New(7)
	if err := s.OpenState(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	conn := dialT(t, addr)
	id := register(t, conn)
	payload := uploadPayload(t)
	for _, m := range []protocol.Message{
		{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 1},
		{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 2},
		{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 3},
		{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 4},
		{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 1}, // dup retry
		{Type: protocol.TypeResults, ClientID: id, Payload: "garbage\n", Seq: 5},
	} {
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	// The journal-fsync utilization reading is flushBusy/uptime; right
	// after the burst above, uptime is only a few flush durations long and
	// the fraction legitimately reads as saturated. Let the window grow so
	// the snapshot reflects a lightly-loaded server, which is what the
	// verdict assertion below is about.
	time.Sleep(100 * time.Millisecond)
	snap := s.Telemetry()
	if snap.Score < 0 || snap.Score > 100 {
		t.Errorf("score %d outside [0, 100]", snap.Score)
	}
	if snap.Uptime <= 0 {
		t.Errorf("uptime %v not positive", snap.Uptime)
	}
	byResource := map[string][]telemetry.Sample{}
	for _, sm := range snap.Samples {
		if sm.Pressure < 0 || sm.Pressure > 1 {
			t.Errorf("%s/%s pressure %g outside [0, 1]", sm.Resource, sm.Metric, sm.Pressure)
		}
		byResource[sm.Resource] = append(byResource[sm.Resource], sm)
	}
	for _, res := range []string{
		"shard-locks", "journal-fsync", "journal-queue", "journal-batch",
		"ack-backlog", "dedup", "wire-rejects", "journal-poison",
	} {
		if len(byResource[res]) == 0 {
			t.Errorf("snapshot missing resource %q", res)
		}
	}
	if got := byResource["dedup"][0].Value; got != 1 {
		t.Errorf("dedup errors value = %g, want 1 (one retried batch)", got)
	}
	if got := byResource["wire-rejects"][0].Value; got != 1 {
		t.Errorf("wire-rejects value = %g, want 1 (one garbage payload)", got)
	}
	if got := byResource["journal-poison"][0].Value; got != 0 {
		t.Errorf("journal-poison value = %g on a healthy journal", got)
	}
	// One retry and one bad payload against four good batches saturates
	// nothing: every error pressure is a fraction of total traffic.
	if snap.Saturated != telemetry.Healthy {
		t.Errorf("lightly-loaded server verdict %q, want %q", snap.Saturated, telemetry.Healthy)
	}
}

// TestIngestAllocCeilings pins the steady-state allocation count of the
// memory-only ingest hot path (addResults), proving the telemetry
// instrumentation — the shard lock counters and the stats counters —
// added zero allocations. The accepted path's only allocation source is
// the amortized result-slice growth; the dup path allocates nothing.
func TestIngestAllocCeilings(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	s := New(1)
	id, err := s.register(testSnapshot(), "alloc-nonce")
	if err != nil {
		t.Fatal(err)
	}
	runs := []*core.Run{{
		TestcaseID: "tc-alloc", Task: testcase.Word, UserID: 1,
		Terminated: core.Exhausted, Offset: 1,
		PrimaryResource: testcase.CPU,
		Levels:          map[testcase.Resource]float64{testcase.CPU: 1},
		LastFive:        map[testcase.Resource][]float64{},
	}}

	// Accepted path: ceiling 1 covers the amortized append growth.
	seq := uint64(0)
	const acceptCeiling = 1
	avg := testing.AllocsPerRun(500, func() {
		seq++
		if _, err := s.addResults(id, seq, "", runs); err != nil {
			t.Fatal(err)
		}
	})
	if avg > acceptCeiling {
		t.Errorf("accepted addResults allocates %.2f/op, ceiling %d", avg, acceptCeiling)
	}

	// Dup path: pure counter work, exactly zero.
	avg = testing.AllocsPerRun(500, func() {
		dup, err := s.addResults(id, 1, "", runs)
		if err != nil {
			t.Fatal(err)
		}
		if !dup {
			t.Fatal("retry of seq 1 not detected as dup")
		}
	})
	if avg != 0 {
		t.Errorf("dup addResults allocates %.2f/op, want 0", avg)
	}

	// The contention-counting shard lock itself: zero on both paths.
	sh := s.shardFor(id)
	avg = testing.AllocsPerRun(500, func() {
		sh.lock()
		sh.mu.Unlock()
	})
	if avg != 0 {
		t.Errorf("shard lock allocates %.2f/op, want 0", avg)
	}
}
