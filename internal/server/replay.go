package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/testcase"
)

// Parallel journal replay. The serial loader (scanOpsFile + applyOp)
// walks one file record by record, paying the expensive part — JSON
// unmarshal, run-payload decode, frame CRC — inline on one core. At a
// 64MB multi-segment journal that is the whole cost of a cold restart
// and of failover promotion, so this file splits replay into three
// phases that put the expensive part on every core while keeping the
// result provably bit-identical to the serial loader:
//
//  1. Boundary scan (sequential, cheap): each state file is split into
//     records without decoding anything — protocol.FrameLen reads just
//     the magic byte and length prefix of a binary frame, JSON lines
//     end at their newline. This phase fixes the record order: the
//     global record index is (file order, offset order), exactly the
//     order the serial loader applies.
//  2. Decode (parallel): workers grab record indexes from an atomic
//     cursor and fully decode each record in isolation — frame CRC +
//     field parse, JSON unmarshal, run/testcase payload decode. No
//     record's decode depends on any other record, so this phase is
//     embarrassingly parallel and holds the dominant cost.
//  3. Apply (per-shard queues): the main goroutine dispatches records
//     in global order. Client and results ops go to one of 16 apply
//     queues keyed by shardFor(client id) — the same hash that shards
//     the live server — so all ops of one client apply in record
//     order, which is the only order applyOp's dedup logic (lastSeq
//     monotonicity, registration-before-upload) ever reads. Ops with
//     cross-shard effects (meta, jmeta, testcases) apply inline on the
//     dispatch goroutine, still in record order. Accepted run batches
//     are not appended to the result store by the workers — they are
//     collected per record index and concatenated in record order
//     after the queues drain, so s.results is byte-for-byte the serial
//     loader's.
//
// Why per-client order is sufficient: applyOp's replay decisions read
// only per-client state (shard.clients[id], shard.lastSeq[id]) and
// idempotent global maps (nonce → id, testcase id dedup). Two records
// touching different clients commute; two records touching the same
// client share a queue. Errors are collected with their record index
// and the minimum-index error is returned, which is exactly the first
// error the serial loader would have hit.
//
// Torn tails keep their serial semantics: only the final record of the
// active journal may be torn. A torn binary frame is dropped at the
// boundary scan; a torn JSON line is decoded and applied, with any
// error silently dropping it — if it applies cleanly it is state,
// matching the serial loader bit for bit.

// replayStats describes one LoadState replay.
type replayStats struct {
	lastNanos atomic.Int64  // wall time of the most recent replay
	records   atomic.Uint64 // records applied by the most recent replay
	files     atomic.Uint64 // state files scanned by the most recent replay
	bytes     atomic.Uint64 // bytes scanned by the most recent replay
}

// replayRec is one boundary-scanned record awaiting decode.
type replayRec struct {
	file  string // file base name, for error formatting
	rec   int    // 1-based record ordinal within its file
	pos   int    // byte offset of the record within its file
	data  []byte // raw bytes: a whole frame, or a JSON line without its newline
	frame bool   // binary frame vs JSON line
	torn  bool   // tolerated torn tail: errors drop the record instead of poisoning
	err   error  // boundary-scan error, reported when dispatch reaches it
}

// replayDec is a record's decoded form, produced by a phase-2 worker.
type replayDec struct {
	op   journalOp
	runs []*core.Run          // pre-decoded opResults payload
	tcs  []*testcase.Testcase // pre-decoded opTestcases payload
	err  error
}

// errAt formats a record-scoped error exactly as the serial scanner
// does: binary records carry their byte offset (their CRC makes the
// position meaningful), JSON records do not.
func errAt(r *replayRec, err error) error {
	if r.frame {
		return fmt.Errorf("server: %s record %d (offset %d): %w", r.file, r.rec, r.pos, err)
	}
	return fmt.Errorf("server: %s record %d: %w", r.file, r.rec, err)
}

// journalFilesIn returns dir's journal files in replay order: sealed
// segments ascending by seal sequence, then the active journal (which
// may not exist yet). A gap in the sealed sequence is corruption — a
// missing middle segment would silently drop acked ops — and poisons
// the load. A missing prefix is legal: compaction deletes covered
// segments from the front.
func journalFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return []string{journalPathIn(dir)}, nil
	}
	if err != nil {
		return nil, err
	}
	type seg struct {
		seq  int
		name string
	}
	var segs []seg
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := segmentSeq(e.Name()); ok {
			segs = append(segs, seg{seq, e.Name()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	paths := make([]string, 0, len(segs)+1)
	for i, sg := range segs {
		if i > 0 && sg.seq != segs[i-1].seq+1 {
			return nil, fmt.Errorf("server: journal segment sequence gap: %s follows %s", sg.name, segs[i-1].name)
		}
		paths = append(paths, filepath.Join(dir, sg.name))
	}
	return append(paths, journalPathIn(dir)), nil
}

// StateFiles returns every state file of dir in replay order: the
// snapshot, sealed journal segments ascending, then the active
// journal. Any file may be absent (scan a missing file as empty). It
// fails on a sealed-segment sequence gap, which a reader must treat as
// corruption rather than skip.
func StateFiles(dir string) ([]string, error) {
	jf, err := journalFilesIn(dir)
	if err != nil {
		return nil, err
	}
	return append([]string{filepath.Join(dir, snapshotFile)}, jf...), nil
}

// IsStateFileName reports whether base names a server state file (the
// snapshot, the active journal, or a sealed segment).
func IsStateFileName(base string) bool {
	if base == snapshotFile || base == journalFile {
		return true
	}
	_, ok := segmentSeq(base)
	return ok
}

// tailState describes what OpenState must do to the active journal's
// physical tail before appending to it, so that a journal that lost
// its tail to a crash is never appended to mid-record (which would
// poison the *next* replay: a torn record is only tolerated at EOF).
type tailState struct {
	// size is the length of the active journal's valid prefix — every
	// byte of every record that replay kept.
	size int64
	// terminate is set when the final kept record is a JSON line whose
	// newline the crash ate: the line applied cleanly and is state, so
	// it must be sealed with a '\n' rather than truncated away.
	terminate bool
}

// splitRecords boundary-scans one state file into records, appending to
// recs. It returns the extended slice and the file's valid prefix
// length (bytes through the last whole record, separators included).
// tolerateTail marks the file as the active journal: a torn final
// binary frame is dropped here (the serial scanner never decodes it),
// and a torn final JSON line is kept but flagged so decode/apply
// errors drop it silently. A scan error that tearing cannot explain is
// attached to a sentinel record so dispatch reports it at the exact
// record index the serial scanner would have.
func splitRecords(recs []replayRec, data []byte, base string, tolerateTail bool) ([]replayRec, int64) {
	rec := 0
	pos := 0
	valid := 0
	for pos < len(data) {
		switch data[pos] {
		case '\n', '\r', ' ', '\t':
			pos++ // blank separators between JSON lines
			valid = pos
			continue
		}
		rec++
		if data[pos] == protocol.FrameMagic {
			n, err := protocol.FrameLen(data[pos:])
			if err != nil {
				if tolerateTail && errors.Is(err, protocol.ErrShortFrame) {
					return recs, int64(valid) // torn tail: crash mid-append
				}
				r := replayRec{file: base, rec: rec, pos: pos, frame: true}
				r.err = err
				return append(recs, r), int64(valid)
			}
			recs = append(recs, replayRec{file: base, rec: rec, pos: pos, data: data[pos : pos+n], frame: true})
			pos += n
			valid = pos
			continue
		}
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			recs = append(recs, replayRec{file: base, rec: rec, pos: pos, data: data[pos:], torn: tolerateTail})
			return recs, int64(valid)
		}
		recs = append(recs, replayRec{file: base, rec: rec, pos: pos, data: data[pos : pos+nl]})
		pos += nl + 1
		valid = pos
	}
	return recs, int64(valid)
}

// decodeRec fully decodes one record: frame CRC + fields or JSON
// unmarshal, then the payload (runs or testcases). f is a per-worker
// scratch frame; the decoded op borrows views of the file buffer, not
// of f.
func decodeRec(r *replayRec, d *replayDec, f *protocol.Frame) {
	if r.err != nil {
		d.err = r.err
		return
	}
	if r.frame {
		if _, err := protocol.DecodeFrame(r.data, f); err != nil {
			d.err = err
			return
		}
		op, err := frameOp(f)
		if err != nil {
			d.err = err
			return
		}
		d.op = op
	} else if err := json.Unmarshal(r.data, &d.op); err != nil {
		d.err = err
		return
	}
	switch d.op.Op {
	case opResults:
		runs, err := core.DecodeRuns(strings.NewReader(d.op.Payload))
		if err != nil {
			d.err = err
			return
		}
		d.runs = runs
	case opTestcases:
		tcs, err := testcase.DecodeAll(strings.NewReader(d.op.Payload))
		if err != nil {
			d.err = err
			return
		}
		d.tcs = tcs
	}
}

// applyClientShard replays one opClient into the shard stores —
// applyOp's client case, shared verbatim with the parallel path.
func (s *Server) applyClientShard(op *journalOp) error {
	if op.ID == "" {
		return fmt.Errorf("client op without id")
	}
	if op.Snapshot == nil {
		return fmt.Errorf("client op without snapshot")
	}
	s.regMu.Lock()
	sh := s.shardFor(op.ID)
	sh.lock()
	sh.clients[op.ID] = *op.Snapshot
	if op.LastSeq > sh.lastSeq[op.ID] {
		sh.lastSeq[op.ID] = op.LastSeq
	}
	sh.mu.Unlock()
	if op.Nonce != "" {
		s.nonces[op.Nonce] = op.ID
	}
	s.regMu.Unlock()
	return nil
}

// applyResultsShard replays the shard-local half of one opResults:
// registration check, (id, seq) dedup, lastSeq advance. It reports
// whether the batch's runs belong in the result store; the caller owns
// the append so record order is preserved no matter which goroutine
// runs the shard half.
func (s *Server) applyResultsShard(op *journalOp) (keep bool, err error) {
	sh := s.shardFor(op.ID)
	sh.lock()
	defer sh.mu.Unlock()
	if op.Seq > 0 {
		if _, ok := sh.clients[op.ID]; !ok {
			return false, fmt.Errorf("results op for unknown client %q", op.ID)
		}
		if op.Seq <= sh.lastSeq[op.ID] {
			return false, nil // already covered by the snapshot
		}
		sh.lastSeq[op.ID] = op.Seq
	}
	return true, nil
}

// replayError collects record-indexed errors from the dispatch
// goroutine and the shard workers, keeping the minimum-index one — the
// error the serial loader, which stops at the first failure, would
// have returned.
type replayError struct {
	mu  sync.Mutex
	idx int
	err error
}

func (re *replayError) record(idx int, err error) {
	re.mu.Lock()
	if re.err == nil || idx < re.idx {
		re.idx, re.err = idx, err
	}
	re.mu.Unlock()
}

func (re *replayError) first() error {
	re.mu.Lock()
	defer re.mu.Unlock()
	return re.err
}

// loadStateDir restores the server's stores from dir's state files and
// reports what OpenState must do to the active journal's physical tail.
// This is LoadState's engine; see the file comment for the phase
// structure and the bit-identity argument.
func (s *Server) loadStateDir(dir string) (tailState, error) {
	start := time.Now()
	files, err := StateFiles(dir)
	if err != nil {
		return tailState{}, err
	}

	// Phase 1: read + boundary-scan every file. Only the last file (the
	// active journal) may be torn.
	var (
		recs       []replayRec
		tail       tailState
		totalBytes int64
		nfiles     int
	)
	for i, path := range files {
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return tailState{}, err
		}
		nfiles++
		totalBytes += int64(len(data))
		active := i == len(files)-1
		before := len(recs)
		var valid int64
		recs, valid = splitRecords(recs, data, filepath.Base(path), active)
		if active {
			tail.size = valid
			// A kept torn JSON line may extend the valid prefix to the
			// whole file — decided after apply, below.
		}
		if len(recs) > before && recs[len(recs)-1].err != nil {
			// A scan error tearing cannot explain: stop at it, exactly
			// where the serial scanner would. Later files never load.
			break
		}
	}

	// Phase 2: decode every record in parallel.
	workers := s.ReplayWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	decs := make([]replayDec, len(recs))
	if workers > 1 {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var f protocol.Frame
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(recs) {
						return
					}
					decodeRec(&recs[i], &decs[i], &f)
				}
			}()
		}
		wg.Wait()
	} else {
		var f protocol.Frame
		for i := range recs {
			decodeRec(&recs[i], &decs[i], &f)
		}
	}

	// Phase 3: dispatch in record order to per-shard apply queues.
	var (
		re      replayError
		runsOut = make([][]*core.Run, len(recs))
		applied = make([]bool, len(recs))
		chans   [numShards]chan int
		wg      sync.WaitGroup
	)
	for i := range chans {
		chans[i] = make(chan int, 128)
		wg.Add(1)
		go func(ch <-chan int) {
			defer wg.Done()
			for idx := range ch {
				r, d := &recs[idx], &decs[idx]
				switch d.op.Op {
				case opClient:
					if err := s.applyClientShard(&d.op); err != nil {
						if !r.torn {
							re.record(idx, errAt(r, err))
						}
						continue
					}
				case opResults:
					keep, err := s.applyResultsShard(&d.op)
					if err != nil {
						if !r.torn {
							re.record(idx, errAt(r, err))
						}
						continue
					}
					if keep {
						runsOut[idx] = d.runs
					}
				}
				applied[idx] = true
			}
		}(chans[i])
	}

dispatch:
	for idx := range recs {
		r, d := &recs[idx], &decs[idx]
		if d.err != nil {
			if r.torn {
				continue // torn tail that failed to decode: dropped
			}
			re.record(idx, errAt(r, d.err))
			break
		}
		switch d.op.Op {
		case opMeta:
			if d.op.Ver != stateVersion {
				if r.torn {
					continue
				}
				re.record(idx, errAt(r, fmt.Errorf("unsupported state version %d", d.op.Ver)))
				break dispatch
			}
			applied[idx] = true
		case opJournalMeta:
			if d.op.Ver != journalFormatVersion {
				if r.torn {
					continue
				}
				re.record(idx, errAt(r, fmt.Errorf("unsupported journal format version %d", d.op.Ver)))
				break dispatch
			}
			applied[idx] = true
		case opTestcases:
			// Inline, in record order: the testcase store is global and
			// its append order is part of the bit-identity contract.
			if err := s.addTestcases(d.tcs, false); err != nil {
				if r.torn {
					continue
				}
				re.record(idx, errAt(r, err))
				break dispatch
			}
			applied[idx] = true
		case opClient, opResults:
			chans[shardIndex(d.op.ID)] <- idx
		default:
			if r.torn {
				continue
			}
			re.record(idx, errAt(r, fmt.Errorf("unknown op %q", d.op.Op)))
			break dispatch
		}
	}
	for i := range chans {
		close(chans[i])
	}
	wg.Wait()
	if err := re.first(); err != nil {
		return tailState{}, err
	}

	// Accepted run batches land in the result store in record order —
	// the workers only decided, the dispatch order decides placement.
	var appliedRecs uint64
	s.resMu.Lock()
	for idx, runs := range runsOut {
		if runs != nil {
			s.results = append(s.results, runs...)
		}
		if applied[idx] {
			appliedRecs++
		}
	}
	s.resMu.Unlock()

	// A torn final JSON line that decoded and applied cleanly is state;
	// seal it with the newline the crash ate. Otherwise it was dropped
	// everywhere and its bytes must go too.
	if n := len(recs); n > 0 && recs[n-1].torn {
		last := &recs[n-1]
		if decs[n-1].err == nil && applied[n-1] {
			tail.size = int64(last.pos + len(last.data))
			tail.terminate = true
		} else {
			tail.size = int64(last.pos)
		}
	}

	s.replayStats.lastNanos.Store(time.Since(start).Nanoseconds())
	s.replayStats.records.Store(appliedRecs)
	s.replayStats.files.Store(uint64(nfiles))
	s.replayStats.bytes.Store(uint64(totalBytes))
	return tail, nil
}

// shardIndex returns the shard slot owning a client id (shardFor's
// index form, for the per-shard apply queues).
func shardIndex(clientID string) int {
	return int(hashString(0xcbf29ce484222325, clientID) & (numShards - 1))
}
