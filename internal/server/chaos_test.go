package server

import (
	"testing"
	"time"

	"uucs/internal/chaos"
	"uucs/internal/core"
	"uucs/internal/protocol"
)

// TestIdleTimeoutReapsSilentClients: a connected client that goes
// silent must be disconnected after IdleTimeout, so abandoned volunteer
// connections cannot pin server goroutines forever.
func TestIdleTimeoutReapsSilentClients(t *testing.T) {
	s := New(1)
	s.IdleTimeout = 50 * time.Millisecond
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	conn := dialT(t, addr)
	register(t, conn) // the connection works while the client talks
	// Now go silent: the server must cut the connection. Bound our own
	// wait so a regression fails fast instead of hanging.
	conn.SetTimeout(2 * time.Second)
	start := time.Now()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("server answered a request we never sent")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("idle connection reaped after %v, want ~50ms", waited)
	}
}

// TestIdleTimeoutIsPerMessage: the deadline restarts at every request,
// so a client whose requests are each faster than IdleTimeout is never
// reaped no matter how long the session runs.
func TestIdleTimeoutIsPerMessage(t *testing.T) {
	s := New(1)
	s.IdleTimeout = 500 * time.Millisecond
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	conn := dialT(t, addr)
	id := register(t, conn)
	for i := 0; i < 4; i++ {
		time.Sleep(150 * time.Millisecond) // inside the window, total beyond it
		if err := conn.Send(protocol.Message{Type: protocol.TypeSync, ClientID: id, Want: 1}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp, err := conn.Recv()
		if err != nil {
			t.Fatalf("request %d: connection reaped despite activity: %v", i, err)
		}
		if resp.Type != protocol.TypeTestcases {
			t.Fatalf("request %d: %+v", i, resp)
		}
	}
}

// TestZeroIdleTimeoutNeverReaps: the default (zero) keeps the legacy
// behavior — silent connections stay open.
func TestZeroIdleTimeoutNeverReaps(t *testing.T) {
	_, addr := startServer(t, 0) // startServer leaves IdleTimeout at 0
	conn := dialT(t, addr)
	time.Sleep(150 * time.Millisecond)
	register(t, conn) // still works after the silence
}

// TestServerSurvivesAbandonedTornFrame: a client that dies mid-message
// (the torn-frame crash) must not wedge the server; the next client
// proceeds normally.
func TestServerSurvivesAbandonedTornFrame(t *testing.T) {
	nw := chaos.NewNetwork()
	s := New(1)
	s.IdleTimeout = 100 * time.Millisecond
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })

	dead, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dead.Write([]byte(`{"type":"regi`)); err != nil {
		t.Fatal(err)
	}
	dead.Close()

	nc, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	conn := protocol.NewConn(nc)
	defer conn.Close()
	snap := testSnapshot()
	if err := conn.Send(protocol.Message{Type: protocol.TypeRegister, Ver: protocol.Version, Snapshot: &snap}); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv()
	if err != nil || resp.Type != protocol.TypeRegistered {
		t.Fatalf("registration after torn frame: %+v, %v", resp, err)
	}
	if s.ClientCount() != 1 {
		t.Errorf("client count = %d", s.ClientCount())
	}
}

// TestDuplicateBatchesNotDoubleCounted exercises the wire-level dedup:
// the same sequence-numbered batch uploaded twice lands once, and the
// retry ack is flagged Dup.
func TestDuplicateBatchesNotDoubleCounted(t *testing.T) {
	s, addr := startServer(t, 0)
	conn := dialT(t, addr)
	id := register(t, conn)
	payload := encodeRuns(t, []*core.Run{testRun()})
	send := func() protocol.Message {
		t.Helper()
		if err := conn.Send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 1}); err != nil {
			t.Fatal(err)
		}
		ack, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if ack.Type != protocol.TypeAck || ack.Seq != 1 {
			t.Fatalf("ack = %+v", ack)
		}
		return ack
	}
	if ack := send(); ack.Dup {
		t.Error("first upload flagged as duplicate")
	}
	if ack := send(); !ack.Dup {
		t.Error("retried upload not flagged as duplicate")
	}
	if got := s.Results(); len(got) != 1 {
		t.Errorf("server stored %d runs, want 1", len(got))
	}
	// A later batch with a gap (a client crash wasted seq 2) is fine.
	if err := conn.Send(protocol.Message{Type: protocol.TypeResults, ClientID: id, Payload: payload, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	ack, err := conn.Recv()
	if err != nil || ack.Dup {
		t.Fatalf("gapped batch rejected: %+v, %v", ack, err)
	}
	if got := s.Results(); len(got) != 2 {
		t.Errorf("server stored %d runs, want 2", len(got))
	}
}
