package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uucs/internal/core"
)

// seedSegmentedState drives nClients registrations and nBatches result
// uploads per client through a journaling server with the given
// rotation threshold, then closes it — leaving dir exactly the way a
// crash-free shutdown does: sealed segments plus the active journal,
// no snapshot. Every run carries a unique offset so state fingerprints
// detect any lost, duplicated, or reordered record.
func seedSegmentedState(t *testing.T, dir string, segBytes int64, nClients, nBatches int) []string {
	t.Helper()
	s := New(1)
	s.JournalSegmentBytes = segBytes
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, nClients)
	for i := range ids {
		id, err := s.register(testSnapshot(), fmt.Sprintf("seg-nonce-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for seq := 1; seq <= nBatches; seq++ {
		for i, id := range ids {
			run := testRun()
			run.Offset = float64(seq*100 + i)
			runs := []*core.Run{run}
			if _, err := s.addResults(id, uint64(seq), encodeRuns(t, runs), runs); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// stateFingerprint flattens a server's restored state into comparable
// bytes: the full result store in order plus the registry counts. Two
// replays are bit-identical iff their fingerprints match.
func stateFingerprint(t *testing.T, s *Server) string {
	t.Helper()
	var b strings.Builder
	if err := core.EncodeRuns(&b, s.Results(), true); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "clients=%d testcases=%d\n", s.ClientCount(), s.TestcaseCount())
	return b.String()
}

// loadFingerprint replays dir with the given worker count and returns
// the state fingerprint.
func loadFingerprint(t *testing.T, dir string, workers int) string {
	t.Helper()
	s := New(1)
	s.ReplayWorkers = workers
	if err := s.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	return stateFingerprint(t, s)
}

// segmentFiles returns dir's sealed segment paths in name order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestJournalRotationSealsSegments(t *testing.T) {
	dir := t.TempDir()
	ids := seedSegmentedState(t, dir, 600, 4, 10)

	segs := segmentFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("rotation sealed %d segments, want >= 2", len(segs))
	}
	if _, err := os.Stat(filepath.Join(dir, journalFile)); err != nil {
		t.Fatalf("no active journal next to the sealed segments: %v", err)
	}

	restored := New(1)
	if err := restored.LoadState(dir); err != nil {
		t.Fatal(err)
	}
	if restored.ClientCount() != 4 {
		t.Errorf("clients = %d, want 4", restored.ClientCount())
	}
	if got := len(restored.Results()); got != 40 {
		t.Errorf("results = %d, want 40", got)
	}
	// The dedup high-water marks replayed across the segment boundaries:
	// every acked (id, seq) pair is still a dup.
	runs := []*core.Run{testRun()}
	for _, id := range ids {
		dup, err := restored.addResults(id, 10, encodeRuns(t, runs), runs)
		if err != nil {
			t.Fatal(err)
		}
		if !dup {
			t.Errorf("client %s seq 10 re-applied after segmented replay", id)
		}
	}
}

// TestSegmentedReplayBitIdenticalToSingleFile drives the identical op
// sequence through a single-file journal and a multi-segment one, then
// demands byte-identical restored state from every replay mode —
// serial single-file (the pre-segmentation baseline), and segmented at
// 1, 2 and 8 decode workers — including after a torn tail is appended
// to both active journals.
func TestSegmentedReplayBitIdenticalToSingleFile(t *testing.T) {
	single, segmented := t.TempDir(), t.TempDir()
	seedSegmentedState(t, single, 0, 4, 10)
	seedSegmentedState(t, segmented, 600, 4, 10)
	if len(segmentFiles(t, segmented)) < 2 {
		t.Fatal("fixture sealed no segments; the comparison is vacuous")
	}

	baseline := loadFingerprint(t, single, 1)
	for _, workers := range []int{1, 2, 8} {
		if got := loadFingerprint(t, segmented, workers); got != baseline {
			t.Errorf("segmented replay at %d workers diverged from the serial single-file baseline", workers)
		}
	}

	// A crash mid-append tears the active journal's last record the same
	// way in both layouts; the torn record drops identically.
	torn := []byte(`{"op":"results","id":"uucs-0000000000000001","seq`)
	for _, dir := range []string{single, segmented} {
		f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	baseline = loadFingerprint(t, single, 1)
	for _, workers := range []int{1, 2, 8} {
		if got := loadFingerprint(t, segmented, workers); got != baseline {
			t.Errorf("torn-tail segmented replay at %d workers diverged from the serial baseline", workers)
		}
	}
}

// TestParallelReplayMatchesSerial pins the parallel decoder's error
// parity: a poisoned record (complete frame, corrupted CRC) mid-journal
// must produce the exact error the serial loader reports, at any worker
// count, with no partial state divergence on the clean prefix.
func TestParallelReplayMatchesSerial(t *testing.T) {
	const id = "uucs-00000000000000cc"
	clean := t.TempDir()
	seedSegmentedState(t, clean, 600, 4, 10)

	// Clean dirs first: parallel state must match serial state.
	serial := loadFingerprint(t, clean, 1)
	for _, workers := range []int{2, 8} {
		if got := loadFingerprint(t, clean, workers); got != serial {
			t.Errorf("parallel replay at %d workers diverged from serial", workers)
		}
	}

	// Poison mid-file: a complete frame whose CRC is wrong, followed by
	// more valid records, replicated into every dir layout.
	_, resWire := resultsFrame(t, id, 1, encodeRuns(t, []*core.Run{testRun()}))
	bad := append([]byte(nil), resWire...)
	bad[len(bad)-1] ^= 0x01
	poisoned := t.TempDir()
	seedSegmentedState(t, poisoned, 600, 4, 10)
	f, err := os.OpenFile(filepath.Join(poisoned, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(bad, resWire...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	errAtWorkers := func(workers int) string {
		s := New(1)
		s.ReplayWorkers = workers
		err := s.LoadState(poisoned)
		if err == nil {
			t.Fatalf("poisoned journal accepted at %d workers", workers)
		}
		return err.Error()
	}
	want := errAtWorkers(1)
	for _, workers := range []int{2, 8} {
		if got := errAtWorkers(workers); got != want {
			t.Errorf("error at %d workers:\n got %q\nwant %q", workers, got, want)
		}
	}
}

// TestMissingMiddleSegmentPoisons: compaction only ever deletes sealed
// segments from the front, so a gap in the segment sequence means
// acked ops are missing — the replay must refuse, not silently skip.
func TestMissingMiddleSegmentPoisons(t *testing.T) {
	dir := t.TempDir()
	seedSegmentedState(t, dir, 600, 4, 10)
	segs := segmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("fixture sealed %d segments, want >= 3", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	err := New(1).LoadState(dir)
	if err == nil {
		t.Fatal("journal with a missing middle segment accepted")
	}
	if !strings.Contains(err.Error(), "sequence gap") {
		t.Errorf("err = %v, want a segment sequence gap", err)
	}
}

// TestSealedSegmentTornTailPoisons pins the segment-boundary torn-tail
// rule: only the ACTIVE journal's final record may be torn (a crash
// mid-append). A sealed segment was complete when rotation renamed it,
// so a tear inside one is corruption and must poison the replay — while
// the same tear at the end of the active journal stays tolerated.
func TestSealedSegmentTornTailPoisons(t *testing.T) {
	dir := t.TempDir()
	seedSegmentedState(t, dir, 600, 4, 10)
	segs := segmentFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("fixture sealed %d segments, want >= 2", len(segs))
	}

	// Control: the same truncation applied to the active journal is a
	// crash artifact and must be tolerated.
	activeDir := t.TempDir()
	seedSegmentedState(t, activeDir, 600, 4, 10)
	active := filepath.Join(activeDir, journalFile)
	fi, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 8 {
		t.Fatalf("active journal too small to tear: %d bytes", fi.Size())
	}
	if err := os.Truncate(active, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(activeDir); err != nil {
		t.Fatalf("torn active journal tail rejected: %v", err)
	}

	// The tear inside a sealed segment must poison.
	last := segs[len(segs)-1]
	fi, err = os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if err := New(1).LoadState(dir); err == nil {
		t.Fatal("torn tail inside a sealed segment accepted")
	}
}

// TestOpenStateRepairsTornTail pins the crash-tail repair: OpenState
// must not append new records after a torn one — that would bury the
// tear mid-file and poison the NEXT replay. A torn record that did not
// decode is truncated away; one that decoded and applied cleanly IS
// state, so it is sealed with the newline the crash ate.
func TestOpenStateRepairsTornTail(t *testing.T) {
	t.Run("undecodable tear truncated", func(t *testing.T) {
		dir := t.TempDir()
		ids := seedSegmentedState(t, dir, 0, 1, 2)
		path := filepath.Join(dir, journalFile)
		before, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// The nonexistent id keeps the fragment distinguishable from any
		// record legitimately appended after the repair.
		torn := []byte(`{"op":"results","id":"torn-fragment-sentinel","seq`)
		if err := os.WriteFile(path, append(append([]byte(nil), before...), torn...), 0o644); err != nil {
			t.Fatal(err)
		}

		s := New(1)
		if err := s.OpenState(dir); err != nil {
			t.Fatal(err)
		}
		run := testRun()
		run.Offset = 777
		runs := []*core.Run{run}
		if _, err := s.addResults(ids[0], 3, encodeRuns(t, runs), runs); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// The torn bytes are gone; the new record follows the clean prefix.
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(after), string(before)) {
			t.Fatal("repair disturbed the clean journal prefix")
		}
		if strings.Contains(string(after), string(torn)) {
			t.Fatal("torn record still buried in the journal")
		}
		restored := New(1)
		if err := restored.LoadState(dir); err != nil {
			t.Fatalf("journal poisoned by append-after-tear: %v", err)
		}
		if got := len(restored.Results()); got != 3 {
			t.Errorf("results = %d, want 3 (2 seeded + 1 post-repair)", got)
		}
	})

	t.Run("cleanly applied tear sealed", func(t *testing.T) {
		dir := t.TempDir()
		ids := seedSegmentedState(t, dir, 0, 1, 2)
		path := filepath.Join(dir, journalFile)
		// A record whose newline the crash ate but whose JSON is complete:
		// it decodes, applies, and IS state — repair must keep it.
		run := testRun()
		run.Offset = 555
		op := journalOp{Op: opResults, ID: ids[0], Seq: 3, Payload: encodeRuns(t, []*core.Run{run})}
		line, err := appendJSONLine(nil, op)
		if err != nil {
			t.Fatal(err)
		}
		line = line[:len(line)-1] // eat the newline: torn but decodable
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(line); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s := New(1)
		if err := s.OpenState(dir); err != nil {
			t.Fatal(err)
		}
		if got := len(s.Results()); got != 3 {
			t.Fatalf("results after open = %d, want 3 (torn-but-complete record lost)", got)
		}
		run2 := testRun()
		run2.Offset = 888
		runs := []*core.Run{run2}
		if _, err := s.addResults(ids[0], 4, encodeRuns(t, runs), runs); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		restored := New(1)
		if err := restored.LoadState(dir); err != nil {
			t.Fatalf("journal poisoned by append-after-sealed-tear: %v", err)
		}
		if got := len(restored.Results()); got != 4 {
			t.Errorf("results = %d, want 4", got)
		}
	})
}

// TestSaveStateCompactsSegments: once a snapshot covers them, sealed
// segments are deleted outright (never rewritten) and the active
// journal truncates to empty — then the compacted dir restores the
// identical state.
func TestSaveStateCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	s := New(1)
	s.JournalSegmentBytes = 600
	if err := s.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	id, err := s.register(testSnapshot(), "n1")
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 20; seq++ {
		run := testRun()
		run.Offset = float64(seq)
		runs := []*core.Run{run}
		if _, err := s.addResults(id, uint64(seq), encodeRuns(t, runs), runs); err != nil {
			t.Fatal(err)
		}
	}
	if len(segmentFiles(t, dir)) < 2 {
		t.Fatal("fixture sealed no segments before compaction")
	}
	want := stateFingerprint(t, s)

	if err := s.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	if segs := segmentFiles(t, dir); len(segs) != 0 {
		t.Errorf("covered sealed segments survived compaction: %v", segs)
	}
	fi, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("active journal not truncated after compaction: %d bytes", fi.Size())
	}

	// The server keeps journaling into fresh segments after compaction.
	for seq := 21; seq <= 30; seq++ {
		run := testRun()
		run.Offset = float64(seq)
		runs := []*core.Run{run}
		if _, err := s.addResults(id, uint64(seq), encodeRuns(t, runs), runs); err != nil {
			t.Fatal(err)
		}
	}
	want2 := stateFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := loadFingerprint(t, dir, 0); got != want2 {
		t.Error("post-compaction state diverged from the live server")
	}
	_ = want
}

// TestDuplicatedShippedRecordsReplayIdentically models a replica
// journal that received the same shipped segment twice (a retry after
// a lost ack at a rotation boundary): the duplicated records must
// dedup on replay, restoring state bit-identical to the single-copy
// journal at every worker count.
func TestDuplicatedShippedRecordsReplayIdentically(t *testing.T) {
	single, doubled := t.TempDir(), t.TempDir()
	seedSegmentedState(t, single, 0, 2, 6)

	// The doubled dir is the single journal with its back half appended
	// twice — byte-for-byte what a re-shipped tail looks like.
	data, err := os.ReadFile(filepath.Join(single, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	// Re-ship from a record boundary: find a mid-file newline.
	cut := len(data) / 2
	for cut < len(data) && data[cut-1] != '\n' {
		cut++
	}
	if cut >= len(data) {
		t.Fatal("no record boundary in the back half")
	}
	dup := append(append([]byte(nil), data...), data[cut:]...)
	if err := os.WriteFile(filepath.Join(doubled, journalFile), dup, 0o644); err != nil {
		t.Fatal(err)
	}

	want := loadFingerprint(t, single, 1)
	for _, workers := range []int{1, 2, 8} {
		if got := loadFingerprint(t, doubled, workers); got != want {
			t.Errorf("duplicated-shipment replay at %d workers diverged from the single-copy journal", workers)
		}
	}
}
