package server

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzPersistReload throws arbitrary bytes at the journal loader — the
// file a crashed server leaves behind is exactly "whatever made it to
// disk", so reload must never panic, must reject what it cannot
// explain, and anything it does accept must survive a
// save-and-reload round trip unchanged.
func FuzzPersistReload(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		`{"op":"meta","ver":2}` + "\n",
		`{"op":"meta","ver":99}` + "\n",
		`{"op":"client","id":"uucs-1","nonce":"n-1","snapshot":{"hostname":"h","os":"winxp","cpu_ghz":2,"mem_mb":512,"disk_gb":80},"last_seq":3}` + "\n",
		`{"op":"client","snapshot":{}}` + "\n",
		`{"op":"results","id":"uucs-1","seq":1,"payload":"run tc-1\ntask word\nuser 3\nterm discomfort\noffset 55\nprimary disk\nlevel disk 2.5\nendrun\n"}` + "\n",
		`{"op":"results","payload":"run tc-1\ntask word\nuser 3\nterm discomfort\noffset 55\nprimary disk\nlevel disk 2.5\nendrun\n"}` + "\n",
		`{"op":"tc","payload":"testcase t-1\nduration 20\nblank\nendtestcase\n"}` + "\n",
		`{"op":"bogus"}` + "\n",
		"not json at all\n",
		`{"op":"meta","ver":2}` + "\n" + `{"op":"client","id":"uucs-1","snapshot":{"hostname":"h"},"trunc`, // torn tail
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := New(1)
		if err := s.LoadState(dir); err != nil {
			return // rejected cleanly
		}
		// Accepted state must round-trip: compact it and reload.
		dir2 := t.TempDir()
		if err := s.SaveState(dir2); err != nil {
			t.Fatalf("loaded state failed to save: %v", err)
		}
		s2 := New(1)
		if err := s2.LoadState(dir2); err != nil {
			t.Fatalf("saved state failed to reload: %v", err)
		}
		if s2.TestcaseCount() != s.TestcaseCount() ||
			s2.ClientCount() != s.ClientCount() ||
			len(s2.Results()) != len(s.Results()) {
			t.Fatalf("round trip changed state: tc %d->%d, clients %d->%d, results %d->%d",
				s.TestcaseCount(), s2.TestcaseCount(),
				s.ClientCount(), s2.ClientCount(),
				len(s.Results()), len(s2.Results()))
		}
	})
}
