package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"uucs/internal/core"
	"uucs/internal/protocol"
	"uucs/internal/testcase"
)

// Server-side permanent storage. Like the client, the paper's server
// stores testcases and results in text files; this file round-trips the
// server's full state through a directory so restarts lose nothing.
//
// The layout is crash-safe: a compacted snapshot file written
// atomically (temp file + rename) plus an append-only journal. Every
// registration and accepted result batch is appended to the journal and
// synced to stable storage before it is acknowledged to the client.
// SaveState compacts: it writes a fresh snapshot covering the journal
// up to a recorded offset, then atomically replaces the journal with
// whatever was appended past that offset while the snapshot was being
// written (acked ops are never dropped). A crash at any point leaves
// either the old snapshot + full journal or the new snapshot + tail
// journal — and replay is idempotent (registrations dedup by nonce,
// result batches dedup by per-client sequence number, testcases dedup
// by ID), so both recover to the same state. A partial final journal
// line (crash mid-append) is detected and dropped.
//
// Both files hold one JSON op per line. The snapshot is simply a
// compacted journal, so one parser reads both.

// State file names.
const (
	snapshotFile = "snapshot.txt"
	journalFile  = "journal.txt"
)

// Journal op kinds.
const (
	opMeta      = "meta"
	opTestcases = "tc"
	opClient    = "client"
	opResults   = "results"
)

// stateVersion identifies the state file format.
const stateVersion = 2

// testHookAfterSnapshot, when non-nil, runs between SaveState's
// snapshot write and its journal compaction — the window in which a
// live server keeps accepting (journaling and acking) ops that the
// snapshot's state copy predates. Tests use it to pin that race open.
var testHookAfterSnapshot func(*Server)

// journalOp is one line of the snapshot or journal.
type journalOp struct {
	Op string `json:"op"`
	// Ver is the format version (opMeta).
	Ver int `json:"ver,omitempty"`
	// ID is the client id (opClient: the registered id; opResults: the
	// uploading client).
	ID string `json:"id,omitempty"`
	// Nonce is the registration nonce (opClient).
	Nonce string `json:"nonce,omitempty"`
	// Snapshot is the machine description (opClient).
	Snapshot *protocol.Snapshot `json:"snapshot,omitempty"`
	// LastSeq is the client's highest applied batch (opClient, snapshot
	// compaction only).
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Seq is the batch sequence number (opResults).
	Seq uint64 `json:"seq,omitempty"`
	// Payload holds text-encoded testcases (opTestcases) or run
	// records (opResults).
	Payload string `json:"payload,omitempty"`
}

// appendJournalLocked writes one op to the journal and syncs it to
// stable storage, so an op is durable — even across an OS crash or
// power loss — before the caller acknowledges it. Callers hold s.mu.
func (s *Server) appendJournalLocked(op journalOp) error {
	b, err := json.Marshal(op)
	if err != nil {
		return err
	}
	if _, err := s.journal.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("server: journal sync: %w", err)
	}
	return nil
}

// OpenState attaches the server to a state directory: it restores any
// existing snapshot + journal, then opens the journal for appending so
// every subsequent registration and accepted result batch is durable
// before it is acknowledged. Call SaveState periodically to compact.
func (s *Server) OpenState(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.LoadState(dir); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.journal != nil {
		s.journal.Close()
	}
	s.journal = f
	s.stateDir = dir
	s.mu.Unlock()
	return nil
}

// SaveState writes a compacted snapshot of the server's stores to dir
// (creating it if needed) and compacts the journal. It is safe to call
// on a live server: registrations and result batches keep flowing while
// the snapshot is written, and any op journaled in that window — already
// acked to its client — is preserved in the compacted journal rather
// than truncated away, so the journal-before-ack guarantee holds across
// compaction.
func (s *Server) SaveState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	tcs := make([]*testcase.Testcase, len(s.testcases))
	copy(tcs, s.testcases)
	runs := make([]*core.Run, len(s.results))
	copy(runs, s.results)
	type clientEntry struct {
		id    string
		nonce string
		snap  protocol.Snapshot
		seq   uint64
	}
	clients := make([]clientEntry, 0, len(s.clients))
	nonceByID := make(map[string]string, len(s.nonces))
	for nonce, id := range s.nonces {
		nonceByID[id] = nonce
	}
	for id, snap := range s.clients {
		clients = append(clients, clientEntry{id: id, nonce: nonceByID[id], snap: snap, seq: s.lastSeq[id]})
	}
	journaling := s.journal != nil
	// The in-memory copy above covers the journal only up to this byte
	// offset; ops appended while the snapshot is being written (the lock
	// is released below) live past it and must survive compaction.
	var journalOff int64
	compactJournal := journaling && s.stateDir == dir
	if compactJournal {
		fi, err := s.journal.Stat()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		journalOff = fi.Size()
	}
	s.mu.Unlock()
	sort.Slice(clients, func(i, j int) bool { return clients[i].id < clients[j].id })

	err := writeFileAtomic(filepath.Join(dir, snapshotFile), func(f *os.File) error {
		w := bufio.NewWriter(f)
		emit := func(op journalOp) error {
			b, err := json.Marshal(op)
			if err != nil {
				return err
			}
			w.Write(b)
			return w.WriteByte('\n')
		}
		if err := emit(journalOp{Op: opMeta, Ver: stateVersion}); err != nil {
			return err
		}
		if len(tcs) > 0 {
			var b strings.Builder
			if err := testcase.EncodeAll(&b, tcs); err != nil {
				return err
			}
			if err := emit(journalOp{Op: opTestcases, Payload: b.String()}); err != nil {
				return err
			}
		}
		for _, c := range clients {
			snap := c.snap
			if err := emit(journalOp{Op: opClient, ID: c.id, Nonce: c.nonce, Snapshot: &snap, LastSeq: c.seq}); err != nil {
				return err
			}
		}
		if len(runs) > 0 {
			var b strings.Builder
			if err := core.EncodeRuns(&b, runs, true); err != nil {
				return err
			}
			if err := emit(journalOp{Op: opResults, Payload: b.String()}); err != nil {
				return err
			}
		}
		return w.Flush()
	})
	if err != nil {
		return err
	}
	if testHookAfterSnapshot != nil {
		testHookAfterSnapshot(s)
	}

	// The snapshot covers the journal up to journalOff. Ops appended
	// past it while the snapshot was being written are journaled and
	// acked but in neither the snapshot nor (after a blind truncate) the
	// journal — so carry that tail into the compacted journal. A crash
	// before the swap is harmless: old prefix + tail replay dedups.
	s.mu.Lock()
	defer s.mu.Unlock()
	if compactJournal {
		journalPath := filepath.Join(dir, journalFile)
		var tail []byte
		if fi, err := os.Stat(journalPath); err == nil && fi.Size() > journalOff {
			data, err := os.ReadFile(journalPath)
			if err != nil {
				return err
			}
			if int64(len(data)) > journalOff {
				tail = data[journalOff:]
			}
		}
		// Atomically replace the journal with just the tail (empty when
		// nothing raced the snapshot), then swap the append handle onto
		// the new file.
		if err := writeFileAtomic(journalPath, func(f *os.File) error {
			if len(tail) == 0 {
				return nil
			}
			_, err := f.Write(tail)
			return err
		}); err != nil {
			return err
		}
		if s.journal != nil {
			f, err := os.OpenFile(journalPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			s.journal.Close()
			s.journal = f
		}
		return nil
	}
	// Not journaling into dir (detached server, or a snapshot exported
	// to a foreign directory): leave any live journal alone, but empty
	// dir's own journal file so a stale one is not replayed on top of
	// the fresh snapshot.
	if journaling || fileExists(filepath.Join(dir, journalFile)) {
		return os.WriteFile(filepath.Join(dir, journalFile), nil, 0o644)
	}
	return nil
}

// LoadState restores a server's stores from dir: the snapshot first,
// then the journal replayed on top. Missing files are treated as empty
// stores, so a fresh directory loads cleanly. A truncated final journal
// line — the signature of a crash mid-append — is dropped; corruption
// anywhere else is an error.
func (s *Server) LoadState(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: empty state directory")
	}
	if err := s.loadOps(filepath.Join(dir, snapshotFile), false); err != nil {
		return err
	}
	return s.loadOps(filepath.Join(dir, journalFile), true)
}

// loadOps replays one op-per-line file. tolerateTail drops a partial or
// corrupt final line instead of failing (journals can lose their tail
// to a crash mid-append; snapshots are written atomically and cannot).
func (s *Server) loadOps(path string, tolerateTail bool) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends in '\n', leaving one empty trailing
	// element; anything after the last newline is a torn tail.
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		last := i == len(lines)-1
		var op journalOp
		if err := json.Unmarshal(line, &op); err != nil {
			if tolerateTail && last {
				return nil
			}
			return fmt.Errorf("server: %s line %d: %w", filepath.Base(path), i+1, err)
		}
		if err := s.applyOp(op); err != nil {
			if tolerateTail && last {
				return nil
			}
			return fmt.Errorf("server: %s line %d: %w", filepath.Base(path), i+1, err)
		}
	}
	return nil
}

// applyOp replays one journal op into the in-memory stores,
// deduplicating so replay is idempotent.
func (s *Server) applyOp(op journalOp) error {
	switch op.Op {
	case opMeta:
		if op.Ver != stateVersion {
			return fmt.Errorf("unsupported state version %d", op.Ver)
		}
		return nil
	case opTestcases:
		tcs, err := testcase.DecodeAll(strings.NewReader(op.Payload))
		if err != nil {
			return err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.addTestcasesLocked(tcs, false)
	case opClient:
		if op.ID == "" {
			return fmt.Errorf("client op without id")
		}
		if op.Snapshot == nil {
			return fmt.Errorf("client op without snapshot")
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.clients[op.ID] = *op.Snapshot
		if op.Nonce != "" {
			s.nonces[op.Nonce] = op.ID
		}
		if op.LastSeq > s.lastSeq[op.ID] {
			s.lastSeq[op.ID] = op.LastSeq
		}
		return nil
	case opResults:
		runs, err := core.DecodeRuns(strings.NewReader(op.Payload))
		if err != nil {
			return err
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if op.Seq > 0 {
			if _, ok := s.clients[op.ID]; !ok {
				return fmt.Errorf("results op for unknown client %q", op.ID)
			}
			if op.Seq <= s.lastSeq[op.ID] {
				return nil // already covered by the snapshot
			}
			s.lastSeq[op.ID] = op.Seq
		}
		s.results = append(s.results, runs...)
		return nil
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func writeFileAtomic(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
